#include "eval/external_indices.h"

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dbdc {
namespace {

/// Rewrites labels so every noise point becomes its own singleton
/// cluster, then renumbers densely.
std::vector<ClusterId> Canonicalize(std::span<const ClusterId> labels) {
  std::vector<ClusterId> out(labels.size());
  std::unordered_map<ClusterId, ClusterId> remap;
  ClusterId next = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      out[i] = next++;
      continue;
    }
    const auto [it, inserted] = remap.emplace(labels[i], next);
    if (inserted) ++next;
    out[i] = it->second;
  }
  return out;
}

struct PairCounts {
  // Sum over contingency cells / marginals of C(n_ij, 2) etc.
  double sum_cells = 0.0;  // sum_ij C(n_ij, 2)
  double sum_a = 0.0;      // sum_i C(a_i, 2)
  double sum_b = 0.0;      // sum_j C(b_j, 2)
  double total_pairs = 0.0;
  std::vector<std::size_t> a_sizes;
  std::vector<std::size_t> b_sizes;
  std::unordered_map<std::uint64_t, std::size_t> cells;
  std::size_t n = 0;
};

double Choose2(std::size_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

PairCounts Count(std::span<const ClusterId> a_in,
                 std::span<const ClusterId> b_in) {
  DBDC_CHECK(a_in.size() == b_in.size());
  const std::vector<ClusterId> a = Canonicalize(a_in);
  const std::vector<ClusterId> b = Canonicalize(b_in);
  PairCounts pc;
  pc.n = a.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (static_cast<std::size_t>(a[i]) >= pc.a_sizes.size()) {
      pc.a_sizes.resize(a[i] + 1, 0);
    }
    if (static_cast<std::size_t>(b[i]) >= pc.b_sizes.size()) {
      pc.b_sizes.resize(b[i] + 1, 0);
    }
    ++pc.a_sizes[a[i]];
    ++pc.b_sizes[b[i]];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a[i])) << 32) |
        static_cast<std::uint32_t>(b[i]);
    ++pc.cells[key];
  }
  for (const auto& [key, count] : pc.cells) pc.sum_cells += Choose2(count);
  for (const std::size_t s : pc.a_sizes) pc.sum_a += Choose2(s);
  for (const std::size_t s : pc.b_sizes) pc.sum_b += Choose2(s);
  pc.total_pairs = Choose2(pc.n);
  return pc;
}

}  // namespace

double RandIndex(std::span<const ClusterId> a, std::span<const ClusterId> b) {
  const PairCounts pc = Count(a, b);
  DBDC_CHECK(pc.n >= 2);
  // Agreements = pairs together in both + pairs separate in both.
  const double together_both = pc.sum_cells;
  const double separate_both =
      pc.total_pairs - pc.sum_a - pc.sum_b + pc.sum_cells;
  return (together_both + separate_both) / pc.total_pairs;
}

double AdjustedRandIndex(std::span<const ClusterId> a,
                         std::span<const ClusterId> b) {
  const PairCounts pc = Count(a, b);
  DBDC_CHECK(pc.n >= 2);
  const double expected = pc.sum_a * pc.sum_b / pc.total_pairs;
  const double max_index = 0.5 * (pc.sum_a + pc.sum_b);
  if (max_index == expected) return 1.0;  // Both trivial partitions.
  return (pc.sum_cells - expected) / (max_index - expected);
}

double NormalizedMutualInformation(std::span<const ClusterId> a,
                                   std::span<const ClusterId> b) {
  const PairCounts pc = Count(a, b);
  const double n = static_cast<double>(pc.n);
  double h_a = 0.0, h_b = 0.0, mi = 0.0;
  for (const std::size_t s : pc.a_sizes) {
    const double p = static_cast<double>(s) / n;
    if (s > 0) h_a -= p * std::log(p);
  }
  for (const std::size_t s : pc.b_sizes) {
    const double p = static_cast<double>(s) / n;
    if (s > 0) h_b -= p * std::log(p);
  }
  for (const auto& [key, count] : pc.cells) {
    const std::size_t ai = key >> 32;
    const std::size_t bi = key & 0xffffffffu;
    const double pij = static_cast<double>(count) / n;
    const double pa = static_cast<double>(pc.a_sizes[ai]) / n;
    const double pb = static_cast<double>(pc.b_sizes[bi]) / n;
    mi += pij * std::log(pij / (pa * pb));
  }
  const double denom = 0.5 * (h_a + h_b);
  if (denom == 0.0) return 1.0;  // Both single-cluster partitions: equal.
  return mi / denom;
}

double Purity(std::span<const ClusterId> a, std::span<const ClusterId> b) {
  const PairCounts pc = Count(a, b);
  // For each cluster of `a`, the size of its largest overlap with a
  // cluster of `b`.
  std::vector<std::size_t> best(pc.a_sizes.size(), 0);
  for (const auto& [key, count] : pc.cells) {
    const std::size_t ai = key >> 32;
    if (count > best[ai]) best[ai] = count;
  }
  std::size_t sum = 0;
  for (const std::size_t v : best) sum += v;
  return static_cast<double>(sum) / static_cast<double>(pc.n);
}

}  // namespace dbdc
