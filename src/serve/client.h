#ifndef DBDC_SERVE_CLIENT_H_
#define DBDC_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "serve/wire.h"

namespace dbdc::serve {

/// Knobs of a remote job submission (the client side of DESIGN.md §12).
struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Wall-clock bound on the TCP connect and on each *silent* stretch of
  /// the conversation. The server streams a JobStatus per completed
  /// pipeline stage, so the effective bound on a healthy job is per
  /// stage, not end-to-end — a stage that stays silent longer than this
  /// is treated as a dead server.
  double io_timeout_sec = 60.0;
  /// Frames declaring a larger payload poison the stream.
  std::size_t max_frame_bytes = 1u << 30;
  /// Called on every status update with the stages-completed count
  /// (1..kNumStages). Null = no progress reporting.
  std::function<void(int)> on_status;
};

/// Outcome of RunRemoteJob.
struct RemoteOutcome {
  /// True iff the job ran to completion and `result` is valid.
  bool ok = false;
  /// Human-readable failure description (transport errors, rejection,
  /// protocol violations).
  std::string error;
  /// On rejection: the offending field the server named on the wire
  /// (DbdcConfig dotted path, request limit, or "request" for an
  /// undecodable submission). Empty for transport-level failures.
  std::string reject_field;
  std::uint64_t job_id = 0;
  DbdcResult result;
  /// DBSCAN parameters the server actually used (differ from the
  /// request's when options.auto_params ran server-side).
  DbscanParams params_used;
};

/// Ships `request` to a dbdc_server, streams status, and returns the
/// full DbdcResult surface — the same labels, counters, stage breakdown,
/// and metrics snapshot a local RunDbdc of the same request produces
/// (byte-identical; the serving tests assert it). Blocking.
RemoteOutcome RunRemoteJob(const JobRequest& request,
                           const ClientOptions& options);

/// Asks the server to drain and exit (honored only when it was started
/// with allow_remote_shutdown). True iff the server acknowledged.
bool RequestRemoteShutdown(const ClientOptions& options, std::string* error);

}  // namespace dbdc::serve

#endif  // DBDC_SERVE_CLIENT_H_
