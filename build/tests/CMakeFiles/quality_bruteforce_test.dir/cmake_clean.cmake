file(REMOVE_RECURSE
  "CMakeFiles/quality_bruteforce_test.dir/quality_bruteforce_test.cc.o"
  "CMakeFiles/quality_bruteforce_test.dir/quality_bruteforce_test.cc.o.d"
  "quality_bruteforce_test"
  "quality_bruteforce_test.pdb"
  "quality_bruteforce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_bruteforce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
