#ifndef DBDC_CORE_OPTICS_GLOBAL_H_
#define DBDC_CORE_OPTICS_GLOBAL_H_

#include <span>
#include <vector>

#include "cluster/optics.h"
#include "core/global_model.h"

namespace dbdc {

/// The OPTICS-based global-model builder the paper discusses as an
/// alternative in Sec. 6: instead of running DBSCAN on the
/// representatives once per Eps_global, the server computes a single
/// OPTICS cluster-ordering and can then *extract* the global model for
/// any Eps_global <= the generating distance without re-clustering —
/// letting a user explore the Eps_global trade-off interactively.
///
/// (The paper refrains from this route because of the relabeling
/// bookkeeping and evaluation complexity; this implementation shows it
/// works and the `bench_optics_global` ablation quantifies it. Flat
/// extractions are DBSCAN-equivalent up to border representatives.)
class OpticsGlobalModelBuilder {
 public:
  /// Collects the representatives of all `locals` and computes the
  /// OPTICS ordering with MinPts_global = 2 and generating distance
  /// `max_eps_global` (0 selects 4x the paper's default, i.e.
  /// 4 * max ε_R, which comfortably covers the useful range).
  OpticsGlobalModelBuilder(std::span<const LocalModel> locals,
                           const Metric& metric, double max_eps_global = 0.0,
                           IndexType index_type = IndexType::kLinearScan,
                           const ApproxIndexOptions& approx = {});

  /// Extracts the global model for `eps_global` (must be > 0 and <=
  /// max_eps_global()). Representatives left unmerged keep singleton
  /// global clusters, exactly as in BuildGlobalModel.
  GlobalModel Extract(double eps_global) const;

  /// The generating distance actually used.
  double max_eps_global() const { return max_eps_global_; }

  /// The paper's default Eps_global for the collected representatives.
  double default_eps_global() const { return default_eps_global_; }

  std::size_t num_representatives() const { return reps_.rep_eps.size(); }

  /// The underlying cluster-ordering (e.g. for reachability plots).
  const OpticsResult& optics() const { return optics_; }

 private:
  GlobalModel reps_;  // Representative points + origin bookkeeping.
  OpticsResult optics_;
  double max_eps_global_ = 0.0;
  double default_eps_global_ = 0.0;
};

/// GlobalModelStrategy wrapping the OPTICS-based builder, so the engine
/// can run the OPTICS-global variant through the same transmit /
/// merge / broadcast stages as the paper's DBSCAN merge — inheriting
/// transport byte-accounting, protocol/degraded mode, and the DbdcResult
/// counters that the old side path (`RunDbdcOptics`) reimplemented.
///
/// Each Build computes one fresh OPTICS ordering over the received
/// representatives with generating distance `max_eps_global` (0 = 4x the
/// paper's default, as in OpticsGlobalModelBuilder) and extracts at
/// params.eps_global (0 = the paper's default ε_R maximum). The
/// weighted-core extension (params.min_weight_global) is not supported
/// by the OPTICS path and must be 0.
class OpticsGlobalStrategy final : public GlobalModelStrategy {
 public:
  explicit OpticsGlobalStrategy(double max_eps_global = 0.0)
      : max_eps_global_(max_eps_global) {}

  GlobalModel Build(std::span<const LocalModel> locals, const Metric& metric,
                    const GlobalModelParams& params) const override;
  std::string_view name() const override { return "optics_global"; }

 private:
  double max_eps_global_;
};

}  // namespace dbdc

#endif  // DBDC_CORE_OPTICS_GLOBAL_H_
