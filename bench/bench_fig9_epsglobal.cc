// Reproduces Fig. 9 of the DBDC paper: quality Q_DBDC of both local
// models as a function of the Eps_global parameter (as a multiple of
// Eps_local), measured with the discrete criterion P^I (Fig. 9a) and the
// continuous criterion P^II (Fig. 9b) on test data set A with 4 sites.
//
// Paper shape: P^I stays flat and high (it cannot discriminate), while
// P^II peaks around Eps_global = 2 * Eps_local and degrades for very
// small and very large values.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

constexpr int kSites = 4;

struct Fig9Row {
  double factor = 0.0;
  double p1_kmeans = 0.0, p2_kmeans = 0.0;
  double p1_scor = 0.0, p2_scor = 0.0;
};

std::vector<Fig9Row>& Rows() {
  static auto* rows = new std::vector<Fig9Row>();
  return *rows;
}

Fig9Row& RowFor(double factor) {
  for (Fig9Row& row : Rows()) {
    if (row.factor == factor) return row;
  }
  Rows().push_back(Fig9Row{factor, 0, 0, 0, 0});
  return Rows().back();
}

const SyntheticDataset& Workload() {
  static const auto* synth = new SyntheticDataset(MakeTestDatasetA());
  return *synth;
}

const Clustering& CentralReference() {
  static const auto* central = new Clustering(RunCentralDbscan(
      Workload().data, Euclidean(), Workload().suggested_params,
      IndexType::kGrid).clustering);
  return *central;
}

void BM_QualityVsEpsGlobal(benchmark::State& state, LocalModelType model) {
  const SyntheticDataset& synth = Workload();
  const double factor = static_cast<double>(state.range(0)) / 10.0;
  DbdcConfig config = bench::MakeDbdcConfig(synth, kSites);
  config.model_type = model;
  config.eps_global = factor * synth.suggested_params.eps;
  for (auto _ : state) {
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    const double p1 = QualityP1(result.labels, CentralReference().labels,
                                synth.suggested_params.min_pts);
    const double p2 = QualityP2(result.labels, CentralReference().labels);
    Fig9Row& row = RowFor(factor);
    if (model == LocalModelType::kKMeans) {
      row.p1_kmeans = p1;
      row.p2_kmeans = p2;
    } else {
      row.p1_scor = p1;
      row.p2_scor = p2;
    }
    state.counters["P1"] = p1;
    state.counters["P2"] = p2;
  }
}

void BM_KMeans(benchmark::State& state) {
  BM_QualityVsEpsGlobal(state, LocalModelType::kKMeans);
}
void BM_Scor(benchmark::State& state) {
  BM_QualityVsEpsGlobal(state, LocalModelType::kScor);
}

void RegisterAll() {
  // Eps_global factors 1.0, 1.5, 2.0, 2.5, 3.0, 4.0 (x10 as int args).
  for (const int f : {10, 15, 20, 25, 30, 40}) {
    benchmark::RegisterBenchmark("quality_rep_kmeans", BM_KMeans)
        ->Arg(f)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("quality_rep_scor", BM_Scor)
        ->Arg(f)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table a("Fig. 9a — Q_DBDC under P^I vs Eps_global (data set A, "
                 "4 sites)");
  a.SetHeader({"Eps_global / Eps_local", "P^I REP_kMeans [%]",
               "P^I REP_Scor [%]"});
  bench::Table b("Fig. 9b — Q_DBDC under P^II vs Eps_global (data set A, "
                 "4 sites)");
  b.SetHeader({"Eps_global / Eps_local", "P^II REP_kMeans [%]",
               "P^II REP_Scor [%]"});
  for (const Fig9Row& row : Rows()) {
    a.AddRow({bench::Fmt("%.1f", row.factor),
              bench::Fmt("%.1f", 100.0 * row.p1_kmeans),
              bench::Fmt("%.1f", 100.0 * row.p1_scor)});
    b.AddRow({bench::Fmt("%.1f", row.factor),
              bench::Fmt("%.1f", 100.0 * row.p2_kmeans),
              bench::Fmt("%.1f", 100.0 * row.p2_scor)});
  }
  a.Print();
  b.Print();
  std::printf("Paper shape check: P^I is flat/high for every Eps_global "
              "(unsuitable as a criterion); P^II peaks at Eps_global = "
              "2*Eps_local and falls off for extreme values.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
