#ifndef DBDC_BENCH_BENCH_UTIL_H_
#define DBDC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/dbdc.h"
#include "core/stage_stats.h"
#include "data/generators.h"
#include "obs/metrics.h"

namespace dbdc::bench {

/// Minimal fixed-width table printer for the paper-shaped result tables
/// every bench binary emits after its benchmark runs.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    PrintRow(header_, width);
    std::size_t total = header_.size() + 1;
    for (const std::size_t w : width) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) PrintRow(row, width);
    std::printf("\n");
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<std::size_t>& width) {
    std::printf("|");
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, ...) {
  char buffer[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

/// Options of the plain-main bench harness binaries driven by
/// tools/run_bench.sh: `--quick` shrinks workloads for CI smoke runs,
/// `--out FILE` adds machine-readable JSON output.
struct HarnessOptions {
  bool quick = false;
  std::string out_path;
};

/// Parses the shared harness flags. Returns false (after printing usage)
/// on anything unrecognized; the caller should exit 2. [[nodiscard]]:
/// ignoring a parse failure would run the harness on half-applied flags.
[[nodiscard]] inline bool ParseHarnessOptions(int argc, char** argv,
                                              HarnessOptions* options) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options->quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options->out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return false;
    }
  }
  return true;
}

/// Attaches a MetricsRegistry as the process-global registry for the
/// harness's lifetime, so the bench JSON can embed a "metrics" block
/// (Json()) covering everything the run did. The overhead of enabled
/// metrics is a few relaxed atomic adds per ε-query — negligible against
/// the workloads these harnesses time.
class HarnessMetrics {
 public:
  HarnessMetrics() { obs::SetGlobalMetrics(&registry_); }
  ~HarnessMetrics() { obs::SetGlobalMetrics(nullptr); }
  HarnessMetrics(const HarnessMetrics&) = delete;
  HarnessMetrics& operator=(const HarnessMetrics&) = delete;

  /// The MetricsSnapshot::Json() of everything counted so far.
  std::string Json() const { return registry_.Snapshot().Json(); }

 private:
  obs::MetricsRegistry registry_;
};

/// Median of timing samples (odd-biased: element n/2 of the sorted run).
inline double MedianSeconds(const std::vector<double>& samples) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

/// Escapes `"` and `\` for embedding in the bench JSON files.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// The config plumbing every DBDC bench repeats: suggested DBSCAN
/// parameters of the synthetic dataset + site count. Further knobs are
/// set on the returned value.
inline DbdcConfig MakeDbdcConfig(const SyntheticDataset& dataset,
                                 int num_sites) {
  DbdcConfig config;
  config.local_dbscan = dataset.suggested_params;
  config.num_sites = num_sites;
  return config;
}

/// One JSON object per engine stage, e.g.
///   [{"stage": "transmit", "seconds": 0.000123, "bytes_uplink": 4096,
///     "bytes_downlink": 128}, ...]
/// for embedding into a bench JSON file.
inline std::string StageStatsJson(const std::vector<StageStats>& stages) {
  std::string out = "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageStats& s = stages[i];
    out += Fmt("{\"stage\": \"%s\", \"seconds\": %.6f, ",
               std::string(StageName(s.stage)).c_str(), s.seconds);
    out += Fmt("\"bytes_uplink\": %llu, \"bytes_downlink\": %llu}",
               static_cast<unsigned long long>(s.bytes_uplink),
               static_cast<unsigned long long>(s.bytes_downlink));
    if (i + 1 < stages.size()) out += ", ";
  }
  out += "]";
  return out;
}

/// Prints the per-stage breakdown of a DbdcResult as a Table.
inline void PrintStageStats(const DbdcResult& result,
                            const std::string& title) {
  Table table(title);
  table.SetHeader({"stage", "seconds", "uplink B", "downlink B"});
  for (const StageStats& s : result.stage_stats) {
    table.AddRow({std::string(StageName(s.stage)), Fmt("%.6f", s.seconds),
                  Fmt("%llu", static_cast<unsigned long long>(s.bytes_uplink)),
                  Fmt("%llu",
                      static_cast<unsigned long long>(s.bytes_downlink))});
  }
  table.Print();
}

}  // namespace dbdc::bench

#endif  // DBDC_BENCH_BENCH_UTIL_H_
