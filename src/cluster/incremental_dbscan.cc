#include "cluster/incremental_dbscan.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "index/grid_index.h"

namespace dbdc {

IncrementalDbscan::IncrementalDbscan(const DbscanParams& params,
                                     const Metric& metric, int dim)
    : params_(params), metric_(&metric), data_(dim) {
  DBDC_CHECK(params.eps > 0.0);
  DBDC_CHECK(params.min_pts >= 1);
  index_ = std::make_unique<GridIndex>(data_, metric, params.eps,
                                       /*index_all=*/false);
}

ClusterId IncrementalDbscan::NewCluster() {
  const ClusterId c = static_cast<ClusterId>(cluster_parent_.size());
  cluster_parent_.push_back(c);
  return c;
}

ClusterId IncrementalDbscan::Find(ClusterId c) const {
  DBDC_CHECK(c >= 0 && static_cast<std::size_t>(c) < cluster_parent_.size());
  while (cluster_parent_[c] != c) {
    cluster_parent_[c] = cluster_parent_[cluster_parent_[c]];
    c = cluster_parent_[c];
  }
  return c;
}

void IncrementalDbscan::Union(ClusterId a, ClusterId b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  if (a < b) std::swap(a, b);  // Keep the smaller id as the root.
  cluster_parent_[a] = b;
}

ClusterId IncrementalDbscan::CanonicalRaw(PointId id) const {
  const ClusterId raw = raw_label_[id];
  return raw >= 0 ? Find(raw) : raw;
}

ClusterId IncrementalDbscan::Label(PointId id) const {
  DBDC_CHECK(IsActive(id));
  return CanonicalRaw(id);
}

PointId IncrementalDbscan::Insert(std::span<const double> coords) {
  const PointId id = data_.Add(coords);
  active_.push_back(true);
  ++active_count_;
  raw_label_.push_back(kUnclassified);
  neighbor_count_.push_back(0);
  index_->Insert(id);

  std::vector<PointId> neighbors;
  index_->RangeQuery(id, params_.eps, &neighbors);
  neighbor_count_[id] = static_cast<int>(neighbors.size());

  // Only points in N_eps(id) can change their core property.
  std::vector<PointId> changed;  // Newly-core points (possibly id itself).
  for (const PointId q : neighbors) {
    if (q == id) continue;
    ++neighbor_count_[q];
    if (neighbor_count_[q] == params_.min_pts) changed.push_back(q);
  }
  if (neighbor_count_[id] >= params_.min_pts) changed.push_back(id);

  if (changed.empty()) {
    // No core property changed: id is a border point of the nearest
    // adjacent core's cluster, or noise.
    ClusterId best = kNoise;
    double best_d = std::numeric_limits<double>::max();
    for (const PointId q : neighbors) {
      if (q == id || neighbor_count_[q] < params_.min_pts) continue;
      const double d = metric_->Distance(coords, data_.point(q));
      if (d < best_d) {
        best_d = d;
        best = CanonicalRaw(q);
      }
    }
    raw_label_[id] = best;
    return id;
  }

  // For every newly-core point q: all cores in N_eps(q) become mutually
  // density-connected through q (merge), and every non-core neighbor of q
  // is at least a border point of q's cluster (absorption).
  std::vector<PointId> q_neighbors;
  for (const PointId q : changed) {
    index_->RangeQuery(q, params_.eps, &q_neighbors);
    ClusterId target = kNoise;
    // Merge the clusters of all labeled cores around q (q included).
    for (const PointId r : q_neighbors) {
      if (neighbor_count_[r] < params_.min_pts) continue;
      const ClusterId c = raw_label_[r];
      if (c < 0) continue;
      if (target == kNoise) {
        target = Find(c);
      } else {
        Union(target, c);
        target = Find(target);
      }
    }
    if (target == kNoise) target = NewCluster();  // Creation of a cluster.
    raw_label_[q] = target;
    for (const PointId r : q_neighbors) {
      if (raw_label_[r] == kUnclassified || raw_label_[r] == kNoise) {
        raw_label_[r] = target;  // Border absorption (covers id as well).
      }
    }
  }
  // id is within eps of every changed point, so it was absorbed above
  // unless it is itself core (then it was labeled directly).
  DBDC_CHECK(raw_label_[id] != kUnclassified);
  return id;
}

void IncrementalDbscan::Erase(PointId id) {
  DBDC_CHECK(IsActive(id));
  std::vector<PointId> neighbors;
  index_->RangeQuery(id, params_.eps, &neighbors);
  index_->Erase(id);
  active_[id] = false;
  --active_count_;

  const bool was_core = neighbor_count_[id] >= params_.min_pts;
  const ClusterId own_cluster = CanonicalRaw(id);

  std::vector<PointId> demoted;  // Cores that lost the core property.
  for (const PointId q : neighbors) {
    if (q == id) continue;
    if (neighbor_count_[q] == params_.min_pts) demoted.push_back(q);
    --neighbor_count_[q];
  }
  neighbor_count_[id] = 0;
  raw_label_[id] = kUnclassified;

  // Clusters that can shrink or split: those of demoted cores, plus id's
  // own cluster when id was core. (Removing a border point or noise point
  // never affects other points' labels beyond the demotions.)
  std::vector<ClusterId> affected;
  auto add_affected = [&](ClusterId c) {
    if (c < 0) return;
    if (std::find(affected.begin(), affected.end(), c) == affected.end()) {
      affected.push_back(c);
    }
  };
  if (was_core) add_affected(own_cluster);
  for (const PointId q : demoted) add_affected(CanonicalRaw(q));
  if (affected.empty()) return;
  RecluterAffected(affected);
}

void IncrementalDbscan::RecluterAffected(
    const std::vector<ClusterId>& affected) {
  // Collect the member sets of the affected clusters.
  std::vector<PointId> members;
  std::vector<bool> in_members(data_.size(), false);
  for (PointId p = 0; p < static_cast<PointId>(data_.size()); ++p) {
    if (!active_[p]) continue;
    const ClusterId c = CanonicalRaw(p);
    if (c < 0) continue;
    if (std::find(affected.begin(), affected.end(), c) != affected.end()) {
      members.push_back(p);
      in_members[p] = true;
      raw_label_[p] = kUnclassified;
    }
  }
  // Re-cluster: connected components of the core graph, restricted to the
  // affected members (counts are already up to date, so the core property
  // is global and exact).
  std::vector<PointId> queue;
  std::vector<PointId> nbrs;
  for (const PointId seed : members) {
    if (raw_label_[seed] != kUnclassified) continue;
    if (neighbor_count_[seed] < params_.min_pts) continue;
    const ClusterId cluster = NewCluster();
    raw_label_[seed] = cluster;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t i = 0; i < queue.size(); ++i) {
      index_->RangeQuery(queue[i], params_.eps, &nbrs);
      for (const PointId r : nbrs) {
        if (!in_members[r] || raw_label_[r] != kUnclassified) continue;
        if (neighbor_count_[r] < params_.min_pts) continue;
        raw_label_[r] = cluster;
        queue.push_back(r);
      }
    }
  }
  // Attach border points: any remaining member joins the cluster of its
  // nearest adjacent core (from any cluster), or becomes noise.
  for (const PointId p : members) {
    if (raw_label_[p] != kUnclassified) continue;
    index_->RangeQuery(p, params_.eps, &nbrs);
    ClusterId best = kNoise;
    double best_d = std::numeric_limits<double>::max();
    for (const PointId r : nbrs) {
      if (r == p || neighbor_count_[r] < params_.min_pts) continue;
      const double d = metric_->Distance(data_.point(p), data_.point(r));
      if (d < best_d) {
        best_d = d;
        best = CanonicalRaw(r);
      }
    }
    raw_label_[p] = best;
  }
}

Clustering IncrementalDbscan::Snapshot() const {
  Clustering result;
  result.labels.assign(data_.size(), kUnclassified);
  result.is_core.assign(data_.size(), 0);
  std::unordered_map<ClusterId, ClusterId> dense;
  for (PointId p = 0; p < static_cast<PointId>(data_.size()); ++p) {
    if (!active_[p]) continue;
    const ClusterId c = CanonicalRaw(p);
    if (c < 0) {
      result.labels[p] = kNoise;
      continue;
    }
    const auto [it, inserted] =
        dense.emplace(c, static_cast<ClusterId>(dense.size()));
    result.labels[p] = it->second;
    if (neighbor_count_[p] >= params_.min_pts) result.is_core[p] = 1;
  }
  result.num_clusters = static_cast<int>(dense.size());
  return result;
}

}  // namespace dbdc
