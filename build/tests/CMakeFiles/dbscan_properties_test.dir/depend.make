# Empty dependencies file for dbscan_properties_test.
# This may be replaced when dependencies are built.
