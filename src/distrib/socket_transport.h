#ifndef DBDC_DISTRIB_SOCKET_TRANSPORT_H_
#define DBDC_DISTRIB_SOCKET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "distrib/protocol.h"
#include "distrib/socket_util.h"
#include "distrib/transport.h"

namespace dbdc {

class Timer;

/// Transport over real TCP sockets (ROADMAP item 5; DESIGN.md §12).
///
/// Topology: a loopback "hub" — every endpoint (the server and each
/// site) holds its own TCP connection to an in-process router. Send()
/// encodes the message as a checksummed DBFP frame (the same framing the
/// reliable protocol uses; payload = i32 from | i32 to | app bytes),
/// pushes it through the *sender's* connection — the bytes genuinely
/// cross the kernel's TCP stack, with all its short reads/writes and
/// buffering — and the hub's poll() loop reassembles the stream
/// (FrameAssembler), verifies the checksum, and routes the message into
/// the destination inbox. The recorded NetworkMessage carries the app
/// payload exactly as SimulatedNetwork records it, so labels, models,
/// and every byte counter of a fault-free run are byte-identical to the
/// simulated transport (asserted by socket_transport_test); framing
/// overhead is transport-internal, observable via wire_bytes().
///
/// Wall-vs-virtual clock: the engine's protocol machinery runs on a
/// virtual clock. The measured wall-clock transfer time of each message
/// (plus any injected per-endpoint delay; see SetExtraDelaySeconds) is
/// reported through DeliveryDelaySeconds(), which ReliableChannel adds
/// to its virtual timeline — so real-socket latency and stragglers feed
/// the existing deadline/degradation path with no new machinery.
///
/// Failure model: a closed endpoint (peer crash; CloseEndpoint or a real
/// disconnect observed by the hub) drops every later message from or to
/// it — Send() returns kMessageDropped, exactly FaultyNetwork's
/// dead-site semantics, so the engine's graceful degradation applies
/// unchanged. A partial frame pending at disconnect is counted in
/// stats().mid_frame_disconnects and discarded; a stream that breaks
/// framing (bad magic/checksum) closes the endpoint.
///
/// Threading: all public methods are safe to call concurrently
/// (internally serialized); one message is in flight at a time.
class SocketTransport : public Transport {
 public:
  struct Options {
    int num_sites = 4;
    /// Wall-clock budget for one Send() round trip through the kernel.
    double io_timeout_sec = 10.0;
    /// Frames declaring a larger payload poison the sender's stream.
    std::size_t max_frame_bytes = 1u << 30;
  };

  /// Diagnostics counters (monotonic).
  struct Stats {
    std::uint64_t frames_routed = 0;
    std::uint64_t sends_dropped = 0;
    std::uint64_t mid_frame_disconnects = 0;
    std::uint64_t framing_errors = 0;
  };

  /// Builds the loopback hub and connects every endpoint. Null (+
  /// `*error` when non-null) if the sockets cannot be set up.
  static std::unique_ptr<SocketTransport> CreateLoopback(
      const Options& options, std::string* error = nullptr);

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // Transport contract.
  std::size_t Send(EndpointId from, EndpointId to,
                   std::vector<std::uint8_t> payload) override;
  std::vector<const NetworkMessage*> Inbox(EndpointId endpoint)
      const override;
  std::size_t NumMessages() const override;
  const NetworkMessage& Message(std::size_t index) const override;
  /// Measured wall-clock transfer seconds of the recorded message plus
  /// the sender's injected extra delay — the wall→virtual clock bridge.
  double DeliveryDelaySeconds(std::size_t index) const override;
  std::uint64_t BytesUplink() const override;
  std::uint64_t BytesDownlink() const override;
  std::uint64_t BytesTotal() const override;
  void Clear() override;

  /// Simulates a peer crash: hard-closes the endpoint's connection. With
  /// `mid_frame` a truncated frame prefix is written first, so the hub
  /// observes a disconnect in the middle of a message (the nastiest real
  /// failure shape). Idempotent.
  void CloseEndpoint(EndpointId endpoint, bool mid_frame = false);

  /// Injects `seconds` of extra (virtual) delivery delay on every later
  /// message sent *by* `endpoint` — a straggler on a slow WAN link. The
  /// delay is charged to DeliveryDelaySeconds (and hence the protocol's
  /// virtual clock and collection deadline), not slept.
  void SetExtraDelaySeconds(EndpointId endpoint, double seconds);

  /// Total bytes that actually crossed the sockets, including DBFP
  /// framing and routing overhead (>= BytesTotal()).
  std::uint64_t wire_bytes() const;
  Stats stats() const;
  int num_sites() const { return num_sites_; }

 private:
  struct Endpoint {
    Fd client_fd;          // The endpoint's end of its hub connection.
    Fd hub_fd;             // The hub's end (nonblocking, polled).
    FrameAssembler assembler;
    bool closed = false;
    double extra_delay_sec = 0.0;

    explicit Endpoint(std::size_t max_frame_bytes)
        : assembler(max_frame_bytes) {}
  };

  /// Does all the socket setup; on failure leaves the reason in
  /// init_error_ (CreateLoopback checks and rejects).
  explicit SocketTransport(const Options& options);

  /// endpoints_ slot of an EndpointId (0 = server, 1 + site for sites).
  std::size_t Slot(EndpointId endpoint) const;

  /// Polls the hub sides and drains readable streams into the message
  /// record until `target_count` messages are recorded, the sender's
  /// stream dies, or the wall deadline passes. Returns true when the
  /// target was reached.
  bool PumpUntil(std::size_t target_count, std::size_t sender_slot)
      DBDC_REQUIRES(mu_);

  /// Drains one hub fd (nonblocking) and routes every completed frame.
  /// Closes the endpoint on EOF, error, or broken framing.
  void DrainEndpoint(std::size_t slot) DBDC_REQUIRES(mu_);

  /// Pops every completed frame off the endpoint's assembler and records
  /// the routed messages; closes the endpoint on broken framing.
  void RouteFrames(std::size_t slot) DBDC_REQUIRES(mu_);

  void CloseSlot(std::size_t slot) DBDC_REQUIRES(mu_);

  void RecordMessage(EndpointId from, EndpointId to,
                     std::vector<std::uint8_t> payload, double delay_sec)
      DBDC_REQUIRES(mu_);

  const Options options_;
  int num_sites_ = 0;
  /// Why construction failed; empty on success. Written only during
  /// construction.
  std::string init_error_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_ DBDC_GUARDED_BY(mu_);
  /// Deque-backed so recorded messages never move (Transport contract:
  /// Inbox() pointers stay valid across later Sends).
  std::deque<NetworkMessage> messages_ DBDC_GUARDED_BY(mu_);
  std::deque<double> delays_ DBDC_GUARDED_BY(mu_);
  /// Wall clock of the Send() in flight; DrainEndpoint reads it to stamp
  /// the routed message's measured transfer time.
  const Timer* send_timer_ DBDC_GUARDED_BY(mu_) = nullptr;
  std::uint32_t next_seq_ DBDC_GUARDED_BY(mu_) = 0;
  std::uint64_t wire_bytes_ DBDC_GUARDED_BY(mu_) = 0;
  Stats stats_ DBDC_GUARDED_BY(mu_);
};

}  // namespace dbdc

#endif  // DBDC_DISTRIB_SOCKET_TRANSPORT_H_
