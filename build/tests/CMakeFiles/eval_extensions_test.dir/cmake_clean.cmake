file(REMOVE_RECURSE
  "CMakeFiles/eval_extensions_test.dir/eval_extensions_test.cc.o"
  "CMakeFiles/eval_extensions_test.dir/eval_extensions_test.cc.o.d"
  "eval_extensions_test"
  "eval_extensions_test.pdb"
  "eval_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
