#ifndef DBDC_COMMON_THREAD_POOL_H_
#define DBDC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbdc {

/// Resolves a user-facing thread-count knob: values >= 1 are taken as-is,
/// 0 selects the hardware concurrency (at least 1). Negative values are
/// rejected.
int ResolveNumThreads(int requested);

/// A reusable fixed-size worker pool for intra-site parallelism.
///
/// The pool is deliberately minimal: blocking fork-join loops over index
/// ranges, no futures, no work stealing. All parallel entry points are
/// *deterministic by construction* — work is split into chunks by index
/// arithmetic only, every chunk writes to disjoint state, and reductions
/// combine per-chunk results in chunk order on the calling thread — so a
/// result never depends on thread count or scheduling (see DESIGN.md,
/// "Threading model & determinism").
///
/// A pool of size 1 executes everything inline on the calling thread and
/// spawns no workers, which makes `threads = 1` configurations behave
/// exactly like code written without a pool.
///
/// The loop body may be invoked concurrently from several threads; bodies
/// must not throw. Nested ParallelFor calls from inside a body are not
/// supported (they would deadlock on the pool's own workers); create a
/// separate pool instead.
class ThreadPool {
 public:
  /// Creates a pool with ResolveNumThreads(num_threads) workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Calls fn(i) for every i in [0, n), split into contiguous chunks that
  /// run on the pool. Blocks until every call returned.
  template <typename Fn>
  void ParallelFor(std::size_t n, Fn&& fn) {
    ParallelChunks(n, [&fn](std::size_t /*chunk*/, std::size_t begin,
                            std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

  /// Calls fn(chunk, begin, end) for every chunk of [0, n). Chunks are
  /// contiguous, disjoint, cover [0, n), and are numbered 0..num_chunks-1
  /// in index order; the split depends only on n — not on the pool size
  /// and not on scheduling — so chunk-indexed state (CSR stitching,
  /// reduction folds) is identical for every thread count. Blocks until
  /// every chunk returned.
  template <typename Fn>
  void ParallelChunks(std::size_t n, Fn&& fn) {
    const std::size_t chunks = NumChunks(n);
    if (chunks <= 1) {
      if (n > 0) fn(std::size_t{0}, std::size_t{0}, n);
      return;
    }
    const std::size_t per_chunk = (n + chunks - 1) / chunks;
    RunTasks(chunks, [&fn, n, per_chunk](std::size_t chunk) {
      const std::size_t begin = chunk * per_chunk;
      const std::size_t end = std::min(n, begin + per_chunk);
      if (begin < end) fn(chunk, begin, end);
    });
  }

  /// Deterministic parallel reduction: every chunk maps its index range to
  /// a partial result with `map(begin, end)`, and the calling thread folds
  /// the partials *in chunk order* with `reduce(acc, partial)`. Because the
  /// chunking is scheduling-independent, the result is bit-identical for
  /// every pool size — including 1 — as long as map itself is
  /// deterministic.
  template <typename T, typename MapFn, typename ReduceFn>
  T ParallelReduce(std::size_t n, T init, MapFn&& map, ReduceFn&& reduce) {
    const std::size_t chunks = NumChunks(n);
    std::vector<T> partial(chunks, init);
    ParallelChunks(n, [&partial, &map](std::size_t chunk, std::size_t begin,
                                       std::size_t end) {
      partial[chunk] = map(begin, end);
    });
    T acc = init;
    for (const T& p : partial) acc = reduce(acc, p);
    return acc;
  }

  /// The number of chunks ParallelChunks/ParallelReduce split `n` items
  /// into (stable: depends only on n, never on the pool size).
  std::size_t NumChunks(std::size_t n) const;

 private:
  /// Runs fn(task) for task in [0, num_tasks) on the workers (inline when
  /// the pool has a single thread); blocks until all tasks completed.
  void RunTasks(std::size_t num_tasks, std::function<void(std::size_t)> fn);

  void WorkerLoop();

  const int num_threads_;
  /// Written only by the constructor, before any worker can observe it;
  /// joined by the destructor after shutdown.
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  /// Current fork-join batch; null when idle.
  std::function<void(std::size_t)>* task_fn_ DBDC_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t next_task_ DBDC_GUARDED_BY(mutex_) = 0;
  std::size_t tasks_total_ DBDC_GUARDED_BY(mutex_) = 0;
  std::size_t tasks_finished_ DBDC_GUARDED_BY(mutex_) = 0;
  bool shutdown_ DBDC_GUARDED_BY(mutex_) = false;
};

}  // namespace dbdc

#endif  // DBDC_COMMON_THREAD_POOL_H_
