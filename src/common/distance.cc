#include "common/distance.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/types.h"

namespace dbdc {
namespace {

// Per-axis distance from coordinate x to the interval [lo, hi].
inline double AxisDelta(double x, double lo, double hi) {
  if (x < lo) return lo - x;
  if (x > hi) return x - hi;
  return 0.0;
}

class EuclideanMetric final : public Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override {
    DBDC_CHECK(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      sum += d * d;
    }
    return std::sqrt(sum);
  }

  double MinDistanceToBox(std::span<const double> p,
                          std::span<const double> lo,
                          std::span<const double> hi) const override {
    double sum = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double d = AxisDelta(p[i], lo[i], hi[i]);
      sum += d * d;
    }
    return std::sqrt(sum);
  }

  std::string_view name() const override { return "euclidean"; }
};

class ManhattanMetric final : public Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override {
    DBDC_CHECK(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
    return sum;
  }

  double MinDistanceToBox(std::span<const double> p,
                          std::span<const double> lo,
                          std::span<const double> hi) const override {
    double sum = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
      sum += AxisDelta(p[i], lo[i], hi[i]);
    return sum;
  }

  std::string_view name() const override { return "manhattan"; }
};

class ChebyshevMetric final : public Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override {
    DBDC_CHECK(a.size() == b.size());
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
      best = std::max(best, std::fabs(a[i] - b[i]));
    return best;
  }

  double MinDistanceToBox(std::span<const double> p,
                          std::span<const double> lo,
                          std::span<const double> hi) const override {
    double best = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
      best = std::max(best, AxisDelta(p[i], lo[i], hi[i]));
    return best;
  }

  std::string_view name() const override { return "chebyshev"; }
};

}  // namespace

bool IsEuclideanMetric(const Metric& metric) {
  // The built-in metrics are singletons, so identity is sufficient; a
  // user-defined L2 metric simply stays on the generic virtual path.
  return &metric == &Euclidean();
}

const Metric& Euclidean() {
  static const EuclideanMetric* const kMetric = new EuclideanMetric();
  return *kMetric;
}

const Metric& Manhattan() {
  static const ManhattanMetric* const kMetric = new ManhattanMetric();
  return *kMetric;
}

const Metric& Chebyshev() {
  static const ChebyshevMetric* const kMetric = new ChebyshevMetric();
  return *kMetric;
}

const Metric* MetricByName(std::string_view name) {
  if (name == "euclidean") return &Euclidean();
  if (name == "manhattan") return &Manhattan();
  if (name == "chebyshev") return &Chebyshev();
  return nullptr;
}

}  // namespace dbdc
