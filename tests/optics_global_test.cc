#include <gtest/gtest.h>

#include <vector>

#include "core/optics_global.h"

namespace dbdc {
namespace {

LocalModel MakeModel(int site, std::vector<Representative> reps) {
  LocalModel model;
  model.site_id = site;
  model.dim = reps.empty() ? 0 : static_cast<int>(reps[0].center.size());
  model.representatives = std::move(reps);
  model.num_local_clusters = 1;
  return model;
}

Representative Rep(double x, double y, double eps) {
  return Representative{{x, y}, eps, 0};
}

TEST(OpticsGlobalTest, ExtractionsMatchDbscanGlobalModels) {
  // The Fig. 4 chain: reps 1.8 apart merge at eps_global 2.0 but not 1.0.
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(0.0, 0.0, 2.0), Rep(1.8, 0.0, 2.0)}),
      MakeModel(1, {Rep(3.6, 0.0, 2.0)}),
      MakeModel(2, {Rep(5.4, 0.0, 2.0)}),
  };
  const OpticsGlobalModelBuilder builder(locals, Euclidean());
  EXPECT_DOUBLE_EQ(builder.default_eps_global(), 2.0);
  EXPECT_EQ(builder.num_representatives(), 4u);

  for (const double eps_global : {1.0, 1.9, 2.5, 4.0}) {
    const GlobalModel from_optics = builder.Extract(eps_global);
    GlobalModelParams params;
    params.eps_global = eps_global;
    const GlobalModel from_dbscan =
        BuildGlobalModel(locals, Euclidean(), params);
    EXPECT_EQ(from_optics.num_global_clusters,
              from_dbscan.num_global_clusters)
        << "eps_global=" << eps_global;
  }
}

TEST(OpticsGlobalTest, SingleOrderingServesManyEpsValues) {
  // A two-scale configuration: pairs merge at small eps, everything at
  // large eps — one OPTICS run must expose all three regimes.
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(0.0, 0.0, 1.0), Rep(0.8, 0.0, 1.0)}),
      MakeModel(1, {Rep(10.0, 0.0, 1.0), Rep(10.8, 0.0, 1.0)}),
  };
  const OpticsGlobalModelBuilder builder(locals, Euclidean(),
                                         /*max_eps_global=*/20.0);
  EXPECT_EQ(builder.Extract(0.5).num_global_clusters, 4);   // No merges.
  EXPECT_EQ(builder.Extract(1.0).num_global_clusters, 2);   // Pairs.
  EXPECT_EQ(builder.Extract(15.0).num_global_clusters, 1);  // All.
}

TEST(OpticsGlobalTest, UnmergedRepsBecomeSingletons) {
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(0.0, 0.0, 1.0)}),
      MakeModel(1, {Rep(100.0, 0.0, 1.0)}),
  };
  const OpticsGlobalModelBuilder builder(locals, Euclidean(), 5.0);
  const GlobalModel global = builder.Extract(2.0);
  EXPECT_EQ(global.num_global_clusters, 2);
  EXPECT_NE(global.rep_global_cluster[0], global.rep_global_cluster[1]);
}

TEST(OpticsGlobalTest, EmptyLocalsYieldEmptyBuilder) {
  const std::vector<LocalModel> locals;
  const OpticsGlobalModelBuilder builder(locals, Euclidean());
  EXPECT_EQ(builder.num_representatives(), 0u);
  const GlobalModel global = builder.Extract(1.0);
  EXPECT_EQ(global.num_global_clusters, 0);
}

TEST(OpticsGlobalTest, OriginBookkeepingPreserved) {
  const std::vector<LocalModel> locals = {
      MakeModel(3, {Rep(0.0, 0.0, 1.5)}),
      MakeModel(7, {Rep(1.0, 0.0, 1.2)}),
  };
  const OpticsGlobalModelBuilder builder(locals, Euclidean(), 4.0);
  const GlobalModel global = builder.Extract(2.0);
  EXPECT_EQ(global.rep_site, (std::vector<int>{3, 7}));
  EXPECT_DOUBLE_EQ(global.rep_eps[0], 1.5);
  EXPECT_DOUBLE_EQ(global.rep_eps[1], 1.2);
  EXPECT_EQ(global.num_global_clusters, 1);
}

}  // namespace
}  // namespace dbdc
