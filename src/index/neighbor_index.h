#ifndef DBDC_INDEX_NEIGHBOR_INDEX_H_
#define DBDC_INDEX_NEIGHBOR_INDEX_H_

#include <span>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/types.h"

namespace dbdc {

/// A spatial access method answering the ε-range queries that drive DBSCAN
/// (the paper cites the R*-tree for vector data and the M-tree for general
/// metric data).
///
/// An index is bound to one Dataset and one Metric at construction; the
/// Dataset must outlive the index. Indexed points are identified by their
/// PointId. Implementations that return true from SupportsDynamicUpdates()
/// additionally allow inserting/erasing individual ids (used by the
/// incremental DBSCAN substrate).
class NeighborIndex {
 public:
  virtual ~NeighborIndex() = default;

  /// All indexed ids whose distance to `q` is <= eps (inclusive, so a query
  /// at an indexed point returns that point itself). Results are appended
  /// to `*out` after clearing it; order is unspecified.
  virtual void RangeQuery(std::span<const double> q, double eps,
                          std::vector<PointId>* out) const = 0;

  /// Range query centered at an indexed point.
  void RangeQuery(PointId id, double eps, std::vector<PointId>* out) const {
    RangeQuery(data().point(id), eps, out);
  }

  /// Resolves the ε-neighborhoods of a block of indexed query points in
  /// one call: the neighbors of queries[j] are the (*out_counts)[j] ids at
  /// out_ids[sum of the previous counts...] — a concatenated CSR-style
  /// layout. Both outputs are cleared first. Per-query results are exactly
  /// RangeQuery(queries[j], ...), in the same per-query order, so callers
  /// may batch freely without affecting labels or observer events (the
  /// DBSCAN sweeps resolve their seed queues through this entry point).
  ///
  /// The default resolves queries one by one; implementations override it
  /// to hoist per-query setup out of the loop and feed candidate blocks
  /// to the batched SIMD kernels (common/simd_kernels.h).
  virtual void BatchRangeQuery(std::span<const PointId> queries, double eps,
                               std::vector<PointId>* out_ids,
                               std::vector<std::size_t>* out_counts) const {
    out_ids->clear();
    out_counts->clear();
    out_counts->reserve(queries.size());
    std::vector<PointId> buffer;
    for (const PointId q : queries) {
      RangeQuery(data().point(q), eps, &buffer);
      out_counts->push_back(buffer.size());
      out_ids->insert(out_ids->end(), buffer.begin(), buffer.end());
    }
  }

  /// The `k` indexed ids closest to `q`, ordered by increasing distance
  /// (fewer if the index holds fewer than k points). Ties are broken by
  /// ascending point id: the returned set and its order are the first k
  /// elements under (distance, id)-lexicographic order, identical across
  /// every backend — so k-NN consumers (e.g. EstimateDbscanParams) are
  /// index-invariant even on datasets with equidistant neighbors.
  virtual void KnnQuery(std::span<const double> q, int k,
                        std::vector<PointId>* out) const = 0;

  /// Number of indexed points.
  virtual std::size_t size() const = 0;

  /// Whether Insert/Erase are supported.
  virtual bool SupportsDynamicUpdates() const { return false; }

  /// Adds point `id` of the bound dataset to the index. Requires
  /// SupportsDynamicUpdates().
  virtual void Insert(PointId id) {
    (void)id;
    DBDC_CHECK(false && "index does not support dynamic updates");
  }

  /// Removes point `id` from the index (must be indexed). Requires
  /// SupportsDynamicUpdates().
  virtual void Erase(PointId id) {
    (void)id;
    DBDC_CHECK(false && "index does not support dynamic updates");
  }

  /// Implementation name ("rstar", "grid", ...).
  virtual std::string_view name() const = 0;

  /// The dataset the index was built over.
  virtual const Dataset& data() const = 0;

  /// The metric used for all distance computations.
  virtual const Metric& metric() const = 0;
};

}  // namespace dbdc

#endif  // DBDC_INDEX_NEIGHBOR_INDEX_H_
