// Command-line DBDC: cluster a CSV of points, centrally or distributed.
//
//   dbdc_cli <input.csv|gen:A|gen:B|gen:C> [options]
//     --mode central|dbdc|continuous   (default dbdc). continuous feeds
//                                the partitioned input as a stream into
//                                StreamingSites and runs ContinuousDbdc
//                                ticks instead of one batch pipeline
//     --eps <double>             Eps_local > 0 (default 1.0, or the
//                                generator's calibrated value for gen:*)
//     --minpts <int>             MinPts >= 1 (default 5, or the
//                                generator's calibrated value for gen:*)
//     --sites <int>              number of sites >= 1 (default 4)
//     --model scor|kmeans        local model (default scor)
//     --global dbscan|optics     global merge strategy (default dbscan);
//                                optics extracts the global clusters from
//                                an OPTICS ordering of the representatives
//     --eps-global <double>      0 = paper default max eps_R (default 0)
//     --index linear|grid|kdtree|rstar|rstar_bulk|mtree|vptree|approx
//                                (default grid). approx = random-projection
//                                candidate generation with exact
//                                re-verification; at the default window
//                                scale its labels match the exact indices
//     --approx-projections <int> approx index: random-projection axes >= 1
//                                (default 4)
//     --approx-cell-width <double>  approx index: projected cell side as a
//                                multiple of eps, > 0 (default 2.0)
//     --approx-window <double>   approx index: query-window scale > 0
//                                (default 1.0 = guaranteed full recall;
//                                below 1.0 trades recall for speed)
//     --approx-seed <uint>       approx index: projection-direction seed
//     --metric euclidean|manhattan|chebyshev   (default euclidean)
//     --seed <uint>              partitioning seed (default 42)
//     --condense <double>        pre-transmission condensation radius >= 0
//     --min-weight <uint>        weighted global core condition (0 = off)
//     --threads <int>            intra-site worker threads (0 = hardware
//                                concurrency, default 1); identical labels
//                                for every value
//     --topology flat|tree:<fanout>  aggregation topology (default flat =
//                                the paper's star); tree:<K> routes the
//                                local models through a balanced K-ary
//                                aggregator tree (K >= 2); lossless, so
//                                labels match flat bit-for-bit
//     --agg-condense <double>    aggregator condensation radius >= 0
//                                (default 0 = lossless concatenation);
//                                > 0 lets each aggregator merge and
//                                condense before forwarding, shrinking
//                                the root uplink (dbdc + continuous)
//     --simd auto|avx2|sse2|scalar   batched-distance kernel tier
//                                (default auto = highest the CPU supports;
//                                rejected if the CPU lacks the tier);
//                                identical labels for every tier
//     --ticks <int>              continuous mode: stream length >= 1
//                                (default 20); each tick feeds every site
//                                its next slice of points, then Tick()s
//     --auto-params              estimate (eps, minpts) from the data with
//                                the average k-th-NN-distance heuristic
//                                instead of --eps/--minpts (locally, or on
//                                the server with --connect)
//     --auto-k <int>             k of the --auto-params heuristic >= 1
//                                (default 4, the DBSCAN paper's choice)
//     --connect <host:port>      client mode: ship the dataset to a
//                                dbdc_server, stream per-stage status, and
//                                print the same result surface as a local
//                                run (--stages/--metrics/--out all work;
//                                labels are byte-identical to a local run
//                                of the same request)
//     --protocol                 frame/checksum/ack/retry the transfers
//                                (dbdc + continuous modes)
//     --drop <double>            fault injection: message drop
//                                probability in [0, 1]
//     --corrupt <double>         fault injection: message corruption
//                                probability in [0, 1]
//     --fault-seed <uint>        seed of the fault stream (default 1)
//     --stages                   print the per-stage time/byte breakdown
//     --trace <trace.json>       record a Chrome trace_event file of the
//                                run (open in chrome://tracing / Perfetto)
//     --metrics                  print the metrics-registry snapshot and
//                                reconcile it against the wire counters
//     --out <labels.csv>         write "x,...,label" rows
//
// The gen:A / gen:B / gen:C pseudo-inputs generate the paper's test data
// sets in-process (Fig. 6), so traces and metrics can be produced without
// a CSV on disk.
//
// Example:
//   dbdc_cli points.csv --eps 1.2 --minpts 5 --sites 8 --out labeled.csv
//   dbdc_cli gen:A --trace trace.json --metrics

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/param_estimation.h"
#include "common/simd_kernels.h"
#include "core/dbdc.h"
#include "core/engine.h"
#include "data/generators.h"
#include "data/io.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.csv|gen:A|gen:B|gen:C> "
               "[--mode central|dbdc|continuous] [--eps E] "
               "[--minpts M] [--sites K] [--model scor|kmeans] "
               "[--global dbscan|optics] [--eps-global G] [--index TYPE] "
               "[--approx-projections N] [--approx-cell-width F] "
               "[--approx-window W] [--approx-seed S] "
               "[--metric NAME] [--seed S] [--condense R] [--min-weight W] "
               "[--threads T] [--topology flat|tree:K] [--agg-condense R] "
               "[--simd TIER] [--ticks N] [--auto-params] "
               "[--auto-k K] [--connect host:port] [--protocol] "
               "[--drop P] "
               "[--corrupt P] [--fault-seed S] [--stages] "
               "[--trace trace.json] [--metrics] [--out labels.csv]\n",
               argv0);
  std::exit(2);
}

// Flag-value parsers: the whole argument must parse and lie in range, or
// the run aborts naming the offending flag. atof/atoi silently turned
// "0.5x" into 0.5 and "12abc" into 12 — and atoi's behavior on
// out-of-range input is undefined.

double ParseDoubleFlag(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    std::fprintf(stderr, "error: %s value '%s' is out of range\n", flag,
                 text);
    std::exit(2);
  }
  return value;
}

double ParseDoubleFlagMin(const char* flag, const char* text, double min,
                          bool exclusive) {
  const double value = ParseDoubleFlag(flag, text);
  if (exclusive ? value <= min : value < min) {
    std::fprintf(stderr, "error: %s must be %s %g, got '%s'\n", flag,
                 exclusive ? ">" : ">=", min, text);
    std::exit(2);
  }
  return value;
}

double ParseProbabilityFlag(const char* flag, const char* text) {
  const double value = ParseDoubleFlag(flag, text);
  if (value < 0.0 || value > 1.0) {
    std::fprintf(stderr, "error: %s must be in [0, 1], got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  return value;
}

int ParseIntFlag(const char* flag, const char* text, int min) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s expects an integer, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  if (errno == ERANGE || value < min || value > INT_MAX) {
    std::fprintf(stderr, "error: %s must be in [%d, %d], got '%s'\n", flag,
                 min, INT_MAX, text);
    std::exit(2);
  }
  return static_cast<int>(value);
}

/// "flat" or "tree:<fanout>" with fanout a strict integer >= 2 — anything
/// else (trailing junk included) aborts naming --topology.
void ParseTopologyFlag(const char* text, dbdc::DbdcConfig* config) {
  const std::string value = text;
  if (value == "flat") {
    config->topology.kind = dbdc::TopologyKind::kFlat;
    config->topology.fanout = 0;
    return;
  }
  if (value.rfind("tree:", 0) == 0) {
    const char* fanout_text = text + 5;
    errno = 0;
    char* end = nullptr;
    const long fanout = std::strtol(fanout_text, &end, 10);
    if (end == fanout_text || *end != '\0' || errno == ERANGE || fanout < 2 ||
        fanout > INT_MAX) {
      std::fprintf(stderr,
                   "error: --topology tree fanout must be an integer >= 2, "
                   "got '%s'\n",
                   fanout_text);
      std::exit(2);
    }
    config->topology.kind = dbdc::TopologyKind::kTree;
    config->topology.fanout = static_cast<int>(fanout);
    return;
  }
  std::fprintf(stderr,
               "error: --topology must be flat or tree:<fanout>, got '%s'\n",
               text);
  std::exit(2);
}

std::uint64_t ParseUint64Flag(const char* flag, const char* text,
                              std::uint64_t max) {
  errno = 0;
  char* end = nullptr;
  if (*text == '-') {
    std::fprintf(stderr, "error: %s expects a non-negative integer, "
                 "got '%s'\n", flag, text);
    std::exit(2);
  }
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s expects an integer, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  if (errno == ERANGE || value > max) {
    std::fprintf(stderr, "error: %s value '%s' is out of range\n", flag,
                 text);
    std::exit(2);
  }
  return value;
}

void PrintStageBreakdown(const dbdc::DbdcResult& result) {
  std::printf("  %-18s %10s %10s %10s\n", "stage", "seconds", "uplink B",
              "downlink B");
  for (const dbdc::StageStats& s : result.stage_stats) {
    std::printf("  %-18s %10.4f %10llu %10llu\n",
                std::string(dbdc::StageName(s.stage)).c_str(), s.seconds,
                static_cast<unsigned long long>(s.bytes_uplink),
                static_cast<unsigned long long>(s.bytes_downlink));
  }
  // The per-level view of the aggregation topology (root first; a flat
  // run has just the root and the sites).
  if (result.level_stats.empty()) return;
  std::printf("  %-8s %6s %7s %7s %8s %10s %10s\n", "level", "nodes",
              "failed", "models", "reps", "bytes in", "merge s");
  const int deepest = result.level_stats.back().level;
  for (const dbdc::LevelStats& l : result.level_stats) {
    char label[16];
    if (l.level == 0) {
      std::snprintf(label, sizeof(label), "root");
    } else if (l.level == deepest) {
      std::snprintf(label, sizeof(label), "sites");
    } else {
      std::snprintf(label, sizeof(label), "agg L%d", l.level);
    }
    std::printf("  %-8s %6d %7d %7d %8zu %10llu %10.4f\n", label, l.nodes,
                l.nodes_failed, l.models_in, l.representatives_in,
                static_cast<unsigned long long>(l.bytes_in), l.merge_seconds);
  }
}

void PrintMetrics(const dbdc::obs::MetricsSnapshot& snap) {
  std::printf("metrics:\n");
  for (int c = 0; c < dbdc::obs::kNumCounters; ++c) {
    const auto counter = static_cast<dbdc::obs::Counter>(c);
    const std::uint64_t value = snap.counter(counter);
    if (value == 0) continue;
    std::printf("  %-28s %12llu\n",
                std::string(dbdc::obs::CounterName(counter)).c_str(),
                static_cast<unsigned long long>(value));
  }
  for (int g = 0; g < dbdc::obs::kNumGauges; ++g) {
    const auto gauge = static_cast<dbdc::obs::Gauge>(g);
    const double value = snap.gauge(gauge);
    if (value == 0.0) continue;
    std::printf("  %-28s %12.6g\n",
                std::string(dbdc::obs::GaugeName(gauge)).c_str(), value);
  }
  for (int h = 0; h < dbdc::obs::kNumHistograms; ++h) {
    const auto histogram = static_cast<dbdc::obs::Histogram>(h);
    const dbdc::obs::HistogramData& data = snap.histogram(histogram);
    if (data.count == 0) continue;
    std::printf("  %-28s count %llu, mean %.2f\n",
                std::string(dbdc::obs::HistogramName(histogram)).c_str(),
                static_cast<unsigned long long>(data.count),
                static_cast<double>(data.sum) /
                    static_cast<double>(data.count));
  }
}

/// SIMD attribution must be self-consistent: the tier gauge, the
/// result's tier string, and the kernel counters all describe the same
/// dispatch tier, and the fused compare cannot have rejected more
/// candidates than its blocks could hold (filtered <= blocks * lanes).
bool ReconcileSimd(const dbdc::obs::MetricsSnapshot& snap,
                   const std::string& tier_name) {
  using dbdc::obs::Counter;
  dbdc::simd::Tier tier;
  if (!dbdc::simd::ParseTier(tier_name, &tier)) {
    std::fprintf(stderr, "error: result reports unknown simd tier '%s'\n",
                 tier_name.c_str());
    return false;
  }
  bool ok = true;
  const double gauge = snap.gauge(dbdc::obs::Gauge::kSimdTier);
  if (gauge != static_cast<double>(static_cast<int>(tier))) {
    std::fprintf(stderr,
                 "error: simd_tier gauge (%g) does not reconcile with the "
                 "result tier %s (%d)\n",
                 gauge, tier_name.c_str(), static_cast<int>(tier));
    ok = false;
  }
  const std::uint64_t blocks = snap.counter(Counter::kSimdBlocksScored);
  const std::uint64_t filtered =
      snap.counter(Counter::kSimdCandidatesFiltered);
  const std::uint64_t lanes =
      static_cast<std::uint64_t>(dbdc::simd::TierLanes(tier));
  if (filtered > blocks * lanes) {
    std::fprintf(stderr,
                 "error: simd_candidates_filtered (%llu) exceeds "
                 "simd_blocks_scored (%llu) x %llu lanes\n",
                 static_cast<unsigned long long>(filtered),
                 static_cast<unsigned long long>(blocks),
                 static_cast<unsigned long long>(lanes));
    ok = false;
  }
  return ok;
}

/// The registry and the engine count wire bytes independently (the
/// registry inside SimulatedNetwork::Send, the engine from the transport
/// totals); any disagreement means one of them lies.
bool ReconcileMetrics(const dbdc::obs::MetricsSnapshot& snap,
                      const dbdc::DbdcResult& result) {
  using dbdc::obs::Counter;
  struct Pair {
    const char* name;
    std::uint64_t metric;
    std::uint64_t wire;
  };
  const Pair pairs[] = {
      {"bytes_uplink", snap.counter(Counter::kBytesUplink),
       result.bytes_uplink},
      {"bytes_downlink", snap.counter(Counter::kBytesDownlink),
       result.bytes_downlink},
      {"frames_retried", snap.counter(Counter::kFramesRetried),
       result.protocol_retries},
      {"frames_dropped", snap.counter(Counter::kFramesDropped),
       result.frames_dropped},
      {"frames_corrupted", snap.counter(Counter::kFramesCorrupted),
       result.frames_corrupted},
      {"acks_lost", snap.counter(Counter::kAcksLost), result.acks_lost},
  };
  bool ok = true;
  for (const Pair& p : pairs) {
    if (p.metric != p.wire) {
      std::fprintf(stderr,
                   "error: metrics counter %s (%llu) does not reconcile "
                   "with the wire counter (%llu)\n",
                   p.name, static_cast<unsigned long long>(p.metric),
                   static_cast<unsigned long long>(p.wire));
      ok = false;
    }
  }
  // The approximate index accounts for every gathered candidate exactly
  // once: it is either accepted by the exact re-verification or pruned.
  const std::uint64_t approx_generated =
      snap.counter(Counter::kApproxCandidatesGenerated);
  const std::uint64_t approx_verified =
      snap.counter(Counter::kApproxCandidatesVerified);
  const std::uint64_t approx_pruned =
      snap.counter(Counter::kApproxCandidatesPruned);
  if (approx_generated != approx_verified + approx_pruned) {
    std::fprintf(stderr,
                 "error: approx_candidates_generated (%llu) does not "
                 "reconcile with verified (%llu) + pruned (%llu)\n",
                 static_cast<unsigned long long>(approx_generated),
                 static_cast<unsigned long long>(approx_verified),
                 static_cast<unsigned long long>(approx_pruned));
    ok = false;
  }
  if (!ReconcileSimd(snap, result.simd_tier)) ok = false;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbdc;
  if (argc < 2) Usage(argv[0]);
  const std::string input = argv[1];
  if (input.empty() || input[0] == '-') Usage(argv[0]);

  std::string mode = "dbdc";
  std::string global_strategy = "dbscan";
  std::string out_path;
  std::string trace_path;
  bool print_stages = false;
  bool print_metrics = false;
  bool eps_set = false;
  bool minpts_set = false;
  int ticks = 20;
  bool auto_params = false;
  int auto_k = 4;
  std::string connect_spec;
  bool faults_requested = false;
  FaultSpec fault_spec;
  DbdcConfig config;
  config.local_dbscan = {1.0, 5};
  const Metric* metric = &Euclidean();

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mode") {
      mode = next();
      if (mode != "central" && mode != "dbdc" && mode != "continuous") {
        std::fprintf(stderr,
                     "error: --mode must be central, dbdc, or continuous\n");
        return 2;
      }
    } else if (arg == "--eps") {
      config.local_dbscan.eps =
          ParseDoubleFlagMin("--eps", next(), 0.0, /*exclusive=*/true);
      eps_set = true;
    } else if (arg == "--minpts") {
      config.local_dbscan.min_pts = ParseIntFlag("--minpts", next(), 1);
      minpts_set = true;
    } else if (arg == "--sites") {
      config.num_sites = ParseIntFlag("--sites", next(), 1);
    } else if (arg == "--model") {
      const std::string name = next();
      if (name == "scor") {
        config.model_type = LocalModelType::kScor;
      } else if (name == "kmeans") {
        config.model_type = LocalModelType::kKMeans;
      } else {
        std::fprintf(stderr, "error: --model must be scor or kmeans\n");
        return 2;
      }
    } else if (arg == "--global") {
      global_strategy = next();
      if (global_strategy != "dbscan" && global_strategy != "optics") {
        std::fprintf(stderr, "error: --global must be dbscan or optics\n");
        return 2;
      }
    } else if (arg == "--eps-global") {
      config.eps_global =
          ParseDoubleFlagMin("--eps-global", next(), 0.0, false);
    } else if (arg == "--index") {
      const char* name = next();
      if (!ParseIndexType(name, &config.index_type)) {
        std::fprintf(stderr, "error: --index: unknown index type '%s'\n",
                     name);
        return 2;
      }
    } else if (arg == "--approx-projections") {
      config.approx.num_projections =
          ParseIntFlag("--approx-projections", next(), 1);
    } else if (arg == "--approx-cell-width") {
      config.approx.cell_width_factor =
          ParseDoubleFlagMin("--approx-cell-width", next(), 0.0,
                             /*exclusive=*/true);
    } else if (arg == "--approx-window") {
      config.approx.window_scale = ParseDoubleFlagMin(
          "--approx-window", next(), 0.0, /*exclusive=*/true);
    } else if (arg == "--approx-seed") {
      config.approx.seed = ParseUint64Flag("--approx-seed", next(),
                                           UINT64_MAX);
    } else if (arg == "--metric") {
      const char* name = next();
      metric = MetricByName(name);
      if (metric == nullptr) {
        std::fprintf(stderr, "error: --metric: unknown metric '%s'\n", name);
        return 2;
      }
    } else if (arg == "--seed") {
      config.seed = ParseUint64Flag("--seed", next(), UINT64_MAX);
    } else if (arg == "--condense") {
      config.condense_eps =
          ParseDoubleFlagMin("--condense", next(), 0.0, false);
    } else if (arg == "--min-weight") {
      config.min_weight_global = static_cast<std::uint32_t>(
          ParseUint64Flag("--min-weight", next(), UINT32_MAX));
    } else if (arg == "--threads") {
      config.num_threads = ParseIntFlag("--threads", next(), 0);
    } else if (arg == "--topology") {
      ParseTopologyFlag(next(), &config);
    } else if (arg == "--agg-condense") {
      config.topology.aggregator_condense_eps =
          ParseDoubleFlagMin("--agg-condense", next(), 0.0, false);
    } else if (arg == "--simd") {
      const std::string name = next();
      if (name == "auto") {
        dbdc::simd::ResetForcedTier();
      } else {
        dbdc::simd::Tier tier;
        if (!dbdc::simd::ParseTier(name, &tier)) {
          std::fprintf(stderr,
                       "error: --simd must be auto, avx2, sse2, or scalar, "
                       "got '%s'\n",
                       name.c_str());
          return 2;
        }
        if (!dbdc::simd::ForceTier(tier)) {
          std::fprintf(stderr,
                       "error: --simd %s is not supported on this CPU "
                       "(detected tier: %s)\n",
                       name.c_str(),
                       dbdc::simd::TierName(dbdc::simd::DetectedTier())
                           .data());
          return 2;
        }
      }
    } else if (arg == "--ticks") {
      ticks = ParseIntFlag("--ticks", next(), 1);
    } else if (arg == "--auto-params") {
      auto_params = true;
    } else if (arg == "--auto-k") {
      auto_k = ParseIntFlag("--auto-k", next(), 1);
    } else if (arg == "--connect") {
      connect_spec = next();
    } else if (arg == "--protocol") {
      config.protocol.enabled = true;
    } else if (arg == "--drop") {
      fault_spec.drop_rate = ParseProbabilityFlag("--drop", next());
      faults_requested = true;
    } else if (arg == "--corrupt") {
      fault_spec.corrupt_rate = ParseProbabilityFlag("--corrupt", next());
      faults_requested = true;
    } else if (arg == "--fault-seed") {
      fault_spec.seed = ParseUint64Flag("--fault-seed", next(), UINT64_MAX);
    } else if (arg == "--stages") {
      print_stages = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
    }
  }

  if (mode == "central" && (faults_requested || config.protocol.enabled)) {
    std::fprintf(stderr,
                 "error: --protocol/--drop/--corrupt require a distributed "
                 "mode (dbdc or continuous)\n");
    return 2;
  }
  if (faults_requested && !config.protocol.enabled) {
    std::fprintf(stderr,
                 "error: --drop/--corrupt need --protocol (without the "
                 "ack/retry protocol the transport is assumed lossless)\n");
    return 2;
  }
  if (auto_params && (eps_set || minpts_set)) {
    std::fprintf(stderr,
                 "error: --auto-params replaces --eps/--minpts; give one "
                 "or the other\n");
    return 2;
  }
  if (!connect_spec.empty()) {
    if (mode != "dbdc") {
      std::fprintf(stderr,
                   "error: --connect supports --mode dbdc only (the server "
                   "runs the batch pipeline)\n");
      return 2;
    }
    if (faults_requested) {
      std::fprintf(stderr,
                   "error: --drop/--corrupt are local fault injection; not "
                   "supported with --connect\n");
      return 2;
    }
    if (!trace_path.empty()) {
      std::fprintf(stderr,
                   "error: --trace records in-process spans; not supported "
                   "with --connect\n");
      return 2;
    }
  }
  if (mode == "continuous") {
    if (!out_path.empty()) {
      std::fprintf(stderr,
                   "error: --out is not supported with --mode continuous\n");
      return 2;
    }
    if (global_strategy == "optics") {
      std::fprintf(stderr,
                   "error: --global optics is not supported with "
                   "--mode continuous\n");
      return 2;
    }
    if (config.condense_eps != 0.0) {
      std::fprintf(stderr,
                   "error: --condense is not supported with "
                   "--mode continuous\n");
      return 2;
    }
  }

  Dataset data(2);
  if (input == "gen:A" || input == "gen:B" || input == "gen:C") {
    SyntheticDataset generated = input == "gen:A"   ? MakeTestDatasetA()
                                 : input == "gen:B" ? MakeTestDatasetB()
                                                    : MakeTestDatasetC();
    data = std::move(generated.data);
    if (!eps_set) config.local_dbscan.eps = generated.suggested_params.eps;
    if (!minpts_set) {
      config.local_dbscan.min_pts = generated.suggested_params.min_pts;
    }
    std::printf("generated %zu points (dim %d): paper test data set %s "
                "(eps %.3f, minpts %d)\n",
                data.size(), data.dim(), input.c_str() + 4,
                config.local_dbscan.eps, config.local_dbscan.min_pts);
  } else {
    auto csv = ReadDatasetCsv(input);
    if (!csv.has_value()) {
      std::fprintf(stderr, "error: cannot read '%s'\n", input.c_str());
      return 1;
    }
    data = std::move(csv->data);
    std::printf("loaded %zu points (dim %d) from %s\n", data.size(),
                data.dim(), input.c_str());
  }

  std::printf("simd tier: %s (detected: %s)\n",
              simd::TierName(simd::ActiveTier()).data(),
              simd::TierName(simd::DetectedTier()).data());

  if (auto_params && connect_spec.empty()) {
    const ParamEstimate estimate =
        EstimateDbscanParamsChecked(data, *metric, auto_k);
    if (!estimate.ok()) {
      std::fprintf(stderr, "error: --auto-params (k=%d) failed: %s\n",
                   auto_k,
                   std::string(ParamEstimationStatusMessage(estimate.status))
                       .c_str());
      return 1;
    }
    config.local_dbscan.eps = estimate.params.eps;
    config.local_dbscan.min_pts = estimate.params.min_pts;
    std::printf("estimated params (k=%d): eps %.4f, minpts %d\n", auto_k,
                estimate.params.eps, estimate.params.min_pts);
  }
  if (connect_spec.empty()) {
    // Validate up front so a bad flag combination names the offending
    // field instead of tripping the library's assertion. With --connect
    // the server validates and its rejection carries the field name.
    const ConfigStatus status = config.Validate();
    if (!status.ok) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 2;
    }
  }

  // Observability attaches for exactly the clustering run: the trace and
  // the metrics cover the pipeline, not the CSV I/O around it.
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  if (!trace_path.empty()) obs::SetGlobalTracer(&tracer);
  if (print_metrics) obs::SetGlobalMetrics(&registry);

  int exit_code = 0;
  std::vector<ClusterId> labels;
  if (mode == "central") {
    DbscanParams central_params = config.local_dbscan;
    central_params.threads = config.num_threads;
    const CentralDbscanResult central = RunCentralDbscan(
        data, *metric, central_params, config.index_type, config.approx);
    labels = central.clustering.labels;
    std::printf("central DBSCAN: %d clusters, %zu noise, %.3f s\n",
                central.clustering.num_clusters,
                central.clustering.CountNoise(), central.seconds);
    if (print_metrics) PrintMetrics(registry.Snapshot());
  } else if (mode == "continuous") {
    GlobalModelParams global_params;
    global_params.eps_global = config.eps_global;
    global_params.min_weight_global = config.min_weight_global;
    global_params.index_type = config.index_type;
    global_params.approx = config.approx;
    global_params.num_threads = config.num_threads;

    SimulatedNetwork inner;
    std::optional<FaultyNetwork> faulty;
    Transport* transport = &inner;
    if (faults_requested) {
      faulty.emplace(&inner, fault_spec);
      transport = &*faulty;
    }
    ContinuousDbdc continuous(*metric, global_params, config.protocol,
                              transport);
    if (config.topology.kind == TopologyKind::kTree) {
      continuous.SetTopology(
          Topology::KaryTree(config.num_sites, config.topology.fanout),
          config.topology.aggregator_condense_eps);
    }

    std::vector<std::unique_ptr<StreamingSite>> stream_sites;
    stream_sites.reserve(static_cast<std::size_t>(config.num_sites));
    for (int s = 0; s < config.num_sites; ++s) {
      stream_sites.push_back(std::make_unique<StreamingSite>(
          s, *metric, config.local_dbscan, data.dim(), config.model_type,
          RefreshPolicy{}));
      continuous.AttachSite(stream_sites.back().get());
    }

    // Round-robin partition of the input, fed as `ticks` equal slices:
    // tick t inserts each site's next slice, then runs one engine tick.
    const std::size_t n = data.size();
    for (int t = 0; t < ticks; ++t) {
      const std::size_t begin = n * static_cast<std::size_t>(t) /
                                static_cast<std::size_t>(ticks);
      const std::size_t end = n * static_cast<std::size_t>(t + 1) /
                              static_cast<std::size_t>(ticks);
      for (std::size_t p = begin; p < end; ++p) {
        stream_sites[p % stream_sites.size()]->Insert(
            data.point(static_cast<PointId>(p)));
      }
      continuous.Tick();
    }

    const ContinuousDbdc::Stats& stats = continuous.stats();
    std::printf(
        "continuous DBDC(%s, %d sites, %d ticks): %llu refreshes sent, "
        "%llu applied, %llu lost, %llu rebuilds, %llu broadcasts "
        "delivered, %llu uplink bytes, %.3f virtual s\n",
        LocalModelTypeName(config.model_type).data(), config.num_sites,
        ticks, static_cast<unsigned long long>(stats.refreshes_sent),
        static_cast<unsigned long long>(stats.refreshes_applied),
        static_cast<unsigned long long>(stats.refreshes_lost),
        static_cast<unsigned long long>(stats.global_rebuilds),
        static_cast<unsigned long long>(stats.broadcasts_delivered),
        static_cast<unsigned long long>(inner.BytesUplink()),
        continuous.virtual_now_sec());
    if (print_metrics) {
      const obs::MetricsSnapshot snap = registry.Snapshot();
      PrintMetrics(snap);
      // The registry counts bytes inside the lossless transport and
      // retries inside the protocol; both must agree with the engine.
      struct Pair {
        const char* name;
        std::uint64_t metric;
        std::uint64_t wire;
      };
      const Pair pairs[] = {
          {"bytes_uplink", snap.counter(obs::Counter::kBytesUplink),
           inner.BytesUplink()},
          {"bytes_downlink", snap.counter(obs::Counter::kBytesDownlink),
           inner.BytesDownlink()},
          {"frames_retried", snap.counter(obs::Counter::kFramesRetried),
           stats.protocol_retries},
      };
      for (const Pair& p : pairs) {
        if (p.metric != p.wire) {
          std::fprintf(stderr,
                       "error: metrics counter %s (%llu) does not "
                       "reconcile with the wire counter (%llu)\n",
                       p.name, static_cast<unsigned long long>(p.metric),
                       static_cast<unsigned long long>(p.wire));
          exit_code = 1;
        }
      }
    }
  } else if (!connect_spec.empty()) {
    const std::size_t colon = connect_spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == connect_spec.size()) {
      std::fprintf(stderr, "error: --connect expects host:port, got '%s'\n",
                   connect_spec.c_str());
      obs::SetGlobalTracer(nullptr);
      obs::SetGlobalMetrics(nullptr);
      return 2;
    }
    const int port =
        ParseIntFlag("--connect", connect_spec.c_str() + colon + 1, 1);
    if (port > 65535) {
      std::fprintf(stderr, "error: --connect port must be <= 65535\n");
      obs::SetGlobalTracer(nullptr);
      obs::SetGlobalMetrics(nullptr);
      return 2;
    }

    serve::JobRequest request;
    request.data = data;
    request.metric_name = std::string(metric->name());
    request.config = config;
    request.options.global_strategy =
        global_strategy == "optics" ? serve::GlobalStrategyKind::kOptics
                                    : serve::GlobalStrategyKind::kDbscanMerge;
    request.options.auto_params = auto_params;
    request.options.auto_params_k = auto_k;

    serve::ClientOptions client_options;
    client_options.host = connect_spec.substr(0, colon);
    client_options.port = static_cast<std::uint16_t>(port);
    client_options.on_status = [](int stages_done) {
      std::printf("  remote stage %d/%d complete\n", stages_done, kNumStages);
    };
    const serve::RemoteOutcome outcome =
        serve::RunRemoteJob(request, client_options);
    if (!outcome.ok) {
      std::fprintf(stderr, "error: %s\n", outcome.error.c_str());
      obs::SetGlobalTracer(nullptr);
      obs::SetGlobalMetrics(nullptr);
      return 1;
    }
    labels = outcome.result.labels;
    if (auto_params) {
      std::printf("server estimated params (k=%d): eps %.4f, minpts %d\n",
                  auto_k, outcome.params_used.eps,
                  outcome.params_used.min_pts);
    }
    const DbdcResult& result = outcome.result;
    std::printf("remote DBDC(%s, %s global, %d sites, job %llu): "
                "%d global clusters, %zu reps, eps_global %.3f, "
                "%.3f s overall, %llu uplink bytes\n",
                LocalModelTypeName(config.model_type).data(),
                global_strategy.c_str(), config.num_sites,
                static_cast<unsigned long long>(outcome.job_id),
                result.num_global_clusters, result.num_representatives,
                result.eps_global_used, result.OverallSeconds(),
                static_cast<unsigned long long>(result.bytes_uplink));
    if (print_stages) PrintStageBreakdown(result);
    if (print_metrics) {
      PrintMetrics(result.metrics_snapshot);
      if (!ReconcileMetrics(result.metrics_snapshot, result)) exit_code = 1;
    }
  } else {
    if (global_strategy == "optics" && config.min_weight_global != 0) {
      std::fprintf(stderr,
                   "error: --global optics does not support --min-weight\n");
      obs::SetGlobalTracer(nullptr);
      obs::SetGlobalMetrics(nullptr);
      return 2;
    }
    SimulatedNetwork inner;
    std::optional<FaultyNetwork> faulty;
    Transport* transport = nullptr;
    if (faults_requested) {
      faulty.emplace(&inner, fault_spec);
      transport = &*faulty;
    }
    const DbdcResult result =
        global_strategy == "optics"
            ? RunDbdcOptics(data, *metric, config, transport)
            : RunDbdc(data, *metric, config, transport);
    labels = result.labels;
    std::printf("DBDC(%s, %s global, %d sites): %d global clusters, "
                "%zu reps, eps_global %.3f, %.3f s overall, "
                "%llu uplink bytes\n",
                LocalModelTypeName(config.model_type).data(),
                global_strategy.c_str(), config.num_sites,
                result.num_global_clusters, result.num_representatives,
                result.eps_global_used, result.OverallSeconds(),
                static_cast<unsigned long long>(result.bytes_uplink));
    if (print_stages) PrintStageBreakdown(result);
    if (print_metrics) {
      PrintMetrics(result.metrics_snapshot);
      if (!ReconcileMetrics(result.metrics_snapshot, result)) exit_code = 1;
    }
  }

  obs::SetGlobalTracer(nullptr);
  obs::SetGlobalMetrics(nullptr);
  if (!trace_path.empty()) {
    if (tracer.WriteChromeTrace(trace_path)) {
      std::printf("wrote %zu trace spans to %s\n", tracer.NumSpans(),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n", trace_path.c_str());
      return 1;
    }
  }

  if (!out_path.empty()) {
    if (!WriteDatasetCsv(out_path, data, &labels)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote labeled rows to %s\n", out_path.c_str());
  }
  return exit_code;
}
