#ifndef DBDC_INDEX_M_TREE_H_
#define DBDC_INDEX_M_TREE_H_

#include <span>
#include <vector>

#include "index/neighbor_index.h"

namespace dbdc {

/// M-tree (Ciaccia, Patella, Zezula, VLDB 1997) — the access method the
/// paper cites for DBSCAN over general metric spaces.
///
/// Unlike the box-based indices, the M-tree only requires a metric (the
/// triangle inequality): routing entries store a pivot object and a
/// covering radius, and queries prune subtrees with
/// dist(q, pivot) - radius > eps. Pivots are promoted by the
/// maximum-distance heuristic and entries partitioned to the nearest
/// pivot (generalized hyperplane). Built by repeated insertion; the
/// public interface is static (no Insert/Erase after construction).
class MTree final : public NeighborIndex {
 public:
  static constexpr int kMaxEntries = 32;

  MTree(const Dataset& data, const Metric& metric);
  ~MTree() override;

  MTree(const MTree&) = delete;
  MTree& operator=(const MTree&) = delete;

  void RangeQuery(std::span<const double> q, double eps,
                  std::vector<PointId>* out) const override;
  using NeighborIndex::RangeQuery;
  void KnnQuery(std::span<const double> q, int k,
                std::vector<PointId>* out) const override;
  std::size_t size() const override { return count_; }
  std::string_view name() const override { return "mtree"; }
  const Dataset& data() const override { return *data_; }
  const Metric& metric() const override { return *metric_; }

  /// Verifies that every point of a subtree lies within the covering
  /// radius of its routing pivot, and that the tree holds exactly the
  /// indexed points. Aborts on violation. Test-only helper.
  void CheckInvariants() const;

 private:
  struct Node;

  /// Interior-node entry: subtree rooted at `child`, every object of which
  /// is within `radius` of the pivot object.
  struct RoutingEntry {
    PointId pivot;
    double radius;
    Node* child;
  };

  struct Node {
    explicit Node(bool leaf_in) : leaf(leaf_in) {}
    bool leaf;
    std::vector<RoutingEntry> routing;  // Interior nodes.
    std::vector<PointId> points;        // Leaves.
    std::size_t entry_count() const {
      return leaf ? points.size() : routing.size();
    }
  };

  void FreeNode(Node* node);
  void InsertPoint(PointId id);
  /// Splits an overfull node into two; returns the replacement routing
  /// entries in (*a, *b).
  void Split(Node* node, RoutingEntry* a, RoutingEntry* b);
  /// Recursive insert; returns true when `node` overflowed and was split,
  /// with the replacement entries in (*a, *b).
  bool InsertRecursive(Node* node, PointId id, RoutingEntry* a,
                       RoutingEntry* b);
  double Dist(PointId a, PointId b) const;
  /// Exact covering radius of `node` around `pivot` (full subtree walk;
  /// used after splits to keep radii tight).
  double SubtreeRadius(const Node* node, PointId pivot) const;
  void RangeRecursive(const Node* node, std::span<const double> q, double eps,
                      std::vector<PointId>* out) const;
  void CollectPoints(const Node* node, std::vector<PointId>* out) const;

  const Dataset* data_;
  const Metric* metric_;
  Node* root_;
  std::size_t count_ = 0;
};

}  // namespace dbdc

#endif  // DBDC_INDEX_M_TREE_H_
