#include <gtest/gtest.h>

#include <set>

#include "cluster/dbscan.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace dbdc {
namespace {

TEST(GeneratorsTest, PaperCardinalitiesAreExact) {
  EXPECT_EQ(MakeTestDatasetA(1).data.size(), 8700u);
  EXPECT_EQ(MakeTestDatasetB(1).data.size(), 4000u);
  EXPECT_EQ(MakeTestDatasetC(1).data.size(), 1021u);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  const SyntheticDataset a = MakeTestDatasetA(9);
  const SyntheticDataset b = MakeTestDatasetA(9);
  const SyntheticDataset c = MakeTestDatasetA(10);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (PointId p = 0; p < static_cast<PointId>(a.data.size()); ++p) {
    EXPECT_EQ(a.data.point(p)[0], b.data.point(p)[0]);
    EXPECT_EQ(a.data.point(p)[1], b.data.point(p)[1]);
  }
  EXPECT_NE(a.data.point(0)[0], c.data.point(0)[0]);
}

TEST(GeneratorsTest, NoiseFractionIsRespected) {
  const SyntheticDataset b = MakeTestDatasetB(2);
  std::size_t noise = 0;
  for (const ClusterId label : b.true_labels) {
    if (label == kNoise) ++noise;
  }
  EXPECT_EQ(noise, 1600u);  // 40% of 4000.
}

TEST(GeneratorsTest, TrueLabelsCoverAllComponents) {
  const SyntheticDataset a = MakeTestDatasetA(3);
  std::set<ClusterId> components;
  for (const ClusterId label : a.true_labels) {
    if (label >= 0) components.insert(label);
  }
  EXPECT_EQ(static_cast<int>(components.size()), a.num_components);
}

TEST(GeneratorsTest, SuggestedParamsRecoverClustersOnDatasetC) {
  const SyntheticDataset c = MakeTestDatasetC(4);
  const auto index = CreateIndex(IndexType::kGrid, c.data, Euclidean(),
                                 c.suggested_params.eps);
  const Clustering result = RunDbscan(*index, c.suggested_params);
  EXPECT_EQ(result.num_clusters, 3);
  EXPECT_LT(result.CountNoise(), c.data.size() / 20);
}

TEST(GeneratorsTest, SuggestedParamsFindStructureOnDatasetA) {
  const SyntheticDataset a = MakeTestDatasetA(5);
  const auto index = CreateIndex(IndexType::kGrid, a.data, Euclidean(),
                                 a.suggested_params.eps);
  const Clustering result = RunDbscan(*index, a.suggested_params);
  // The 13 generated blobs should be found approximately (merges/splits of
  // a couple of blobs are acceptable).
  EXPECT_GE(result.num_clusters, 9);
  EXPECT_LE(result.num_clusters, 18);
  // Most points belong to clusters.
  EXPECT_LT(result.CountNoise(), a.data.size() / 4);
}

TEST(GeneratorsTest, DatasetBIsGenuinelyNoisyUnderDbscan) {
  const SyntheticDataset b = MakeTestDatasetB(6);
  const auto index = CreateIndex(IndexType::kGrid, b.data, Euclidean(),
                                 b.suggested_params.eps);
  const Clustering result = RunDbscan(*index, b.suggested_params);
  EXPECT_GE(result.num_clusters, 3);
  // A large share of the points is noise — the point of data set B.
  EXPECT_GT(result.CountNoise(), b.data.size() / 5);
}

TEST(GeneratorsTest, ScaledDatasetKeepsRegionFixed) {
  // Growing n in a fixed region raises density: the average neighborhood
  // must grow with n (this is what makes central DBSCAN superlinear in
  // the runtime experiments).
  const SyntheticDataset small = MakeScaledDataset(2000, 1);
  const SyntheticDataset large = MakeScaledDataset(8000, 1);
  const double eps = small.suggested_params.eps;
  const auto small_index =
      CreateIndex(IndexType::kGrid, small.data, Euclidean(), eps);
  const auto large_index =
      CreateIndex(IndexType::kGrid, large.data, Euclidean(), eps);
  // Average neighborhood cardinality grows roughly linearly with n.
  std::vector<PointId> out;
  double small_avg = 0.0, large_avg = 0.0;
  for (PointId p = 0; p < static_cast<PointId>(small.data.size()); p += 7) {
    small_index->RangeQuery(p, eps, &out);
    small_avg += static_cast<double>(out.size());
  }
  small_avg /= static_cast<double>(small.data.size() / 7);
  for (PointId p = 0; p < static_cast<PointId>(large.data.size()); p += 7) {
    large_index->RangeQuery(p, eps, &out);
    large_avg += static_cast<double>(out.size());
  }
  large_avg /= static_cast<double>(large.data.size() / 7);
  EXPECT_GT(large_avg, 2.5 * small_avg);
}

TEST(GeneratorsTest, RingGeneratorProducesAnnulus) {
  Dataset data(2);
  std::vector<ClusterId> labels;
  Rng rng(7);
  AppendRing({50.0, 50.0}, 10.0, 0.5, 500, 0, &rng, &data, &labels);
  ASSERT_EQ(data.size(), 500u);
  for (PointId p = 0; p < 500; ++p) {
    const double d = Euclidean().Distance(data.point(p), Point{50.0, 50.0});
    EXPECT_GT(d, 6.0);
    EXPECT_LT(d, 14.0);
  }
}

TEST(GeneratorsTest, BlobSizesSumToTotal) {
  const SyntheticDataset s = MakeBlobs(5000, 7, 0.2, 1.0, 2.0, 8);
  EXPECT_EQ(s.data.size(), 5000u);
  EXPECT_EQ(s.true_labels.size(), 5000u);
}

TEST(GeneratorsTest, HighDimBlobsShapeAndCalibration) {
  const SyntheticDataset s = MakeHighDimBlobs(4000, 12, 8, 0.02, 9);
  EXPECT_EQ(s.data.size(), 4000u);
  EXPECT_EQ(s.data.dim(), 12);
  EXPECT_EQ(s.true_labels.size(), 4000u);
  EXPECT_EQ(s.num_components, 8);
  // The χ²-calibrated eps sits well above the naive "2σ" (which holds
  // almost no neighbors at dim 12) and well below the blob diameter.
  EXPECT_GT(s.suggested_params.eps, 2.0);
  EXPECT_LT(s.suggested_params.eps, 6.0);
  // The suggested parameters must actually recover the generated blobs:
  // every blob one cluster, the far-flung uniform noise mostly noise.
  const Clustering result =
      RunDbscan(*CreateIndex(IndexType::kKdTree, s.data, Euclidean(),
                             s.suggested_params.eps),
                s.suggested_params);
  EXPECT_EQ(result.num_clusters, 8);
  std::size_t noise_points = 0;
  std::size_t noise_labeled_noise = 0;
  for (std::size_t i = 0; i < s.true_labels.size(); ++i) {
    if (s.true_labels[i] != kNoise) continue;
    ++noise_points;
    if (result.labels[i] == kNoise) ++noise_labeled_noise;
  }
  ASSERT_GT(noise_points, 0u);
  EXPECT_GE(noise_labeled_noise * 10, noise_points * 9);
}

}  // namespace
}  // namespace dbdc
