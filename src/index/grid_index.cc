#include "index/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace dbdc {
namespace {

// Splitmix-style integer mix for cell-coordinate hashing.
inline std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

}  // namespace

GridIndex::GridIndex(const Dataset& data, const Metric& metric,
                     double cell_width, bool index_all)
    : data_(&data),
      metric_(&metric),
      euclidean_(IsEuclideanMetric(metric)),
      cell_width_(cell_width) {
  DBDC_CHECK(cell_width > 0.0);
  if (index_all) {
    for (PointId id = 0; id < static_cast<PointId>(data.size()); ++id) {
      Insert(id);
    }
  }
}

void GridIndex::CellCoords(std::span<const double> p,
                           std::vector<std::int64_t>* c) const {
  c->resize(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    (*c)[i] = static_cast<std::int64_t>(std::floor(p[i] / cell_width_));
  }
}

GridIndex::CellKey GridIndex::HashCoords(
    const std::vector<std::int64_t>& c) const {
  std::uint64_t h = 0x51ed270b0a1f2c3dULL;
  for (const std::int64_t v : c) h = Mix(h, static_cast<std::uint64_t>(v));
  return h;
}

GridIndex::CellKey GridIndex::KeyFor(std::span<const double> p) const {
  std::vector<std::int64_t> c;
  CellCoords(p, &c);
  return HashCoords(c);
}

void GridIndex::ScanCells(std::span<const double> q, double eps,
                          std::vector<std::int64_t>* lo,
                          std::vector<std::int64_t>* hi,
                          std::vector<std::int64_t>* cur,
                          std::uint64_t* examined, simd::KernelStats* kstats,
                          std::vector<PointId>* out) const {
  DBDC_CHECK(static_cast<int>(q.size()) == data_->dim());
  const int dim = data_->dim();
  const std::size_t sdim = static_cast<std::size_t>(dim);
  // Cell-coordinate box covering [q-eps, q+eps].
  lo->resize(sdim);
  hi->resize(sdim);
  cur->resize(sdim);
  for (int i = 0; i < dim; ++i) {
    (*lo)[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(std::floor((q[i] - eps) / cell_width_));
    (*hi)[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(std::floor((q[i] + eps) / cell_width_));
  }
  const double eps_sq = eps * eps;
  *cur = *lo;
  while (true) {
    const auto it = cells_.find(HashCoords(*cur));
    if (it != cells_.end()) {
      if (euclidean_) {
        *examined += it->second.size();
        if (simd::ReferenceScanEnabled()) {
          // Pre-batching scan: one inlined squared distance per candidate
          // (the bench baseline). Only the filtered count is accounted —
          // no kernel blocks ran.
          for (const PointId id : it->second) {
            if (simd::ReferenceSquaredL2(
                    q.data(),
                    data_->raw() + static_cast<std::size_t>(id) * sdim,
                    dim) <= eps_sq) {
              out->push_back(id);
            } else {
              ++kstats->candidates_filtered;
            }
          }
        } else {
          // A whole cell's candidate list is one block through the batched
          // kernel (squared distances vs eps², no sqrt, no virtual call).
          simd::FilterIdsSquaredEuclidean(q.data(), data_->raw(), dim, eps_sq,
                                          it->second.data(),
                                          it->second.size(), out, kstats);
        }
      } else {
        for (const PointId id : it->second) {
          if (metric_->Distance(q, data_->point(id)) <= eps) {
            out->push_back(id);
          }
        }
      }
    }
    // Odometer-style advance through the cell box.
    int axis = 0;
    while (axis < dim) {
      if (++(*cur)[static_cast<std::size_t>(axis)] <=
          (*hi)[static_cast<std::size_t>(axis)]) {
        break;
      }
      (*cur)[static_cast<std::size_t>(axis)] =
          (*lo)[static_cast<std::size_t>(axis)];
      ++axis;
    }
    if (axis == dim) break;
  }
}

namespace {

/// One registry flush per query (or per batch) — never per cell or per
/// point. `kstats.candidates_filtered` equals examined - accepted on the
/// euclidean path, which is exactly the old per-query pruned count.
void FlushGridQueryMetrics(std::uint64_t examined,
                           const simd::KernelStats& kstats) {
  if (examined == 0) return;
  if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
    metrics->Add(obs::Counter::kFastPathCandidates, examined);
    metrics->Add(obs::Counter::kFastPathPruned, kstats.candidates_filtered);
    if (kstats.blocks_scored != 0) {  // Zero in reference-scan mode.
      metrics->Add(obs::Counter::kSimdBlocksScored, kstats.blocks_scored);
      metrics->Add(obs::Counter::kSimdCandidatesFiltered,
                   kstats.candidates_filtered);
    }
  }
}

}  // namespace

void GridIndex::RangeQuery(std::span<const double> q, double eps,
                           std::vector<PointId>* out) const {
  out->clear();
  std::vector<std::int64_t> lo, hi, cur;
  std::uint64_t examined = 0;
  simd::KernelStats kstats;
  ScanCells(q, eps, &lo, &hi, &cur, &examined, &kstats, out);
  FlushGridQueryMetrics(examined, kstats);
}

void GridIndex::BatchRangeQuery(std::span<const PointId> queries, double eps,
                                std::vector<PointId>* out_ids,
                                std::vector<std::size_t>* out_counts) const {
  out_ids->clear();
  out_counts->clear();
  out_counts->reserve(queries.size());
  std::vector<std::int64_t> lo, hi, cur;
  std::uint64_t examined = 0;
  simd::KernelStats kstats;
  for (const PointId p : queries) {
    const std::size_t before = out_ids->size();
    ScanCells(data_->point(p), eps, &lo, &hi, &cur, &examined, &kstats,
              out_ids);
    out_counts->push_back(out_ids->size() - before);
  }
  FlushGridQueryMetrics(examined, kstats);
}

void GridIndex::KnnQuery(std::span<const double> q, int k,
                         std::vector<PointId>* out) const {
  out->clear();
  if (k <= 0 || count_ == 0) return;
  const std::size_t want = std::min<std::size_t>(k, count_);
  // Expanding-radius search: the answer is exact once the k-th neighbor
  // lies within the scanned radius.
  double r = cell_width_;
  std::vector<PointId> candidates;
  for (;;) {
    RangeQuery(q, r, &candidates);
    if (candidates.size() >= want) {
      std::vector<std::pair<double, PointId>> scored;
      scored.reserve(candidates.size());
      for (const PointId id : candidates) {
        scored.emplace_back(metric_->Distance(q, data_->point(id)), id);
      }
      std::sort(scored.begin(), scored.end());
      if (scored[want - 1].first <= r) {
        for (std::size_t i = 0; i < want; ++i) out->push_back(scored[i].second);
        return;
      }
    }
    r *= 2.0;
    DBDC_CHECK(r < std::numeric_limits<double>::max() / 4.0);
  }
}

void GridIndex::Insert(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  cells_[KeyFor(data_->point(id))].push_back(id);
  ++count_;
}

void GridIndex::Erase(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  const auto it = cells_.find(KeyFor(data_->point(id)));
  DBDC_CHECK(it != cells_.end());
  auto& ids = it->second;
  const auto pos = std::find(ids.begin(), ids.end(), id);
  DBDC_CHECK(pos != ids.end());
  *pos = ids.back();
  ids.pop_back();
  if (ids.empty()) cells_.erase(it);
  --count_;
}

}  // namespace dbdc
