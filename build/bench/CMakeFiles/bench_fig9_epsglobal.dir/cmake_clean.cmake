file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_epsglobal.dir/bench_fig9_epsglobal.cc.o"
  "CMakeFiles/bench_fig9_epsglobal.dir/bench_fig9_epsglobal.cc.o.d"
  "bench_fig9_epsglobal"
  "bench_fig9_epsglobal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_epsglobal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
