# Empty dependencies file for bench_ablation_epsdefault.
# This may be replaced when dependencies are built.
