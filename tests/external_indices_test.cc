#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "eval/external_indices.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

using Labels = std::vector<ClusterId>;

TEST(ExternalIndicesTest, PerfectAgreementScoresOne) {
  const Labels a = {0, 0, 1, 1, 2, 2};
  const Labels b = {5, 5, 3, 3, 9, 9};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Purity(a, b), 1.0);
}

TEST(ExternalIndicesTest, KnownRandIndexValue) {
  // Classic example: a = {0,0,1,1}, b = {0,1,0,1}: all 6 pairs disagree
  // on "together" except none; agreements = pairs separate in both = 2.
  const Labels a = {0, 0, 1, 1};
  const Labels b = {0, 1, 0, 1};
  // Pairs: (0,1) a-together b-separate; (2,3) same; (0,2) a-sep b-tog;
  // (1,3) same; (0,3),(1,2) separate in both -> 2 agreements of 6.
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 2.0 / 6.0);
}

TEST(ExternalIndicesTest, AriNearZeroForRandomLabels) {
  Rng rng(1);
  Labels a(2000), b(2000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<ClusterId>(rng.UniformInt(0, 4));
    b[i] = static_cast<ClusterId>(rng.UniformInt(0, 4));
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 0.05);
  EXPECT_GT(RandIndex(a, b), 0.5);  // RI is inflated; ARI corrects that.
}

TEST(ExternalIndicesTest, NoisePointsActAsSingletons) {
  // Two clusterings identical except noise markers: still perfect.
  const Labels a = {0, 0, kNoise, 1, 1, kNoise};
  const Labels b = {2, 2, kNoise, 0, 0, kNoise};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
  // Noise vs clustered disagree.
  const Labels c = {0, 0, 0, 1, 1, 1};
  EXPECT_LT(AdjustedRandIndex(a, c), 1.0);
}

TEST(ExternalIndicesTest, PurityOfRefinementIsOne) {
  // Every cluster of `a` is contained in one cluster of `b`.
  const Labels a = {0, 0, 1, 1, 2, 2};
  const Labels b = {0, 0, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Purity(a, b), 1.0);
  EXPECT_LT(Purity(b, a), 1.0);
}

TEST(ExternalIndicesTest, NmiZeroForConstantVersusBalanced) {
  const Labels constant = {0, 0, 0, 0};
  const Labels split = {0, 0, 1, 1};
  EXPECT_NEAR(NormalizedMutualInformation(constant, split), 0.0, 1e-12);
}

TEST(ExternalIndicesTest, OrdersClusteringsConsistentlyWithP2) {
  // P^II and ARI must agree on which of two distributed clusterings is
  // closer to the reference — the sanity check for the paper's criterion.
  const Labels central = {0, 0, 0, 0, 1, 1, 1, 1};
  const Labels good = {0, 0, 0, 0, 1, 1, 1, 2};   // One point split off.
  const Labels bad = {0, 0, 1, 1, 2, 2, 3, 3};    // Everything split.
  EXPECT_GT(QualityP2(good, central), QualityP2(bad, central));
  EXPECT_GT(AdjustedRandIndex(good, central),
            AdjustedRandIndex(bad, central));
}

}  // namespace
}  // namespace dbdc
