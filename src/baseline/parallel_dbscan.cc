#include "baseline/parallel_dbscan.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace dbdc {
namespace {

/// Union-find over dense component ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

struct WorkerState {
  std::vector<PointId> local_to_global;  // Owned first, then halo.
  std::size_t owned_count = 0;
  Dataset local = Dataset(1);
  std::unique_ptr<NeighborIndex> index;
  /// Component id per local point (-1 = unlabeled/noise so far); valid
  /// after the cluster phase.
  std::vector<std::int32_t> comp;
  std::int32_t num_comps = 0;
  double seconds = 0.0;
};

}  // namespace

ParallelDbscanResult RunParallelDbscan(const Dataset& data,
                                       const Metric& metric,
                                       const ParallelDbscanConfig& config) {
  DBDC_CHECK(config.num_workers >= 1);
  DBDC_CHECK(config.dbscan.eps > 0.0 && config.dbscan.min_pts >= 1);
  const std::size_t n = data.size();
  const int workers = config.num_workers;
  const int axis = config.slice_axis;
  DBDC_CHECK(data.dim() > axis);

  ParallelDbscanResult result;
  result.clustering.labels.assign(n, kNoise);
  result.clustering.is_core.assign(n, 0);
  if (n == 0) return result;

  // Central preprocessing (the step DBDC avoids by design): slice the
  // space into equi-count slabs along `axis`.
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    const double xa = data.point(a)[axis];
    const double xb = data.point(b)[axis];
    if (xa != xb) return xa < xb;
    return a < b;
  });
  std::vector<std::pair<std::size_t, std::size_t>> slab(workers);
  for (int w = 0; w < workers; ++w) {
    slab[w] = {n * w / workers, n * (w + 1) / workers};
  }

  // Distribute: every worker gets its owned points plus the halo — all
  // foreign points within eps of its slab's axis interval.
  std::vector<WorkerState> states(workers);
  for (int w = 0; w < workers; ++w) {
    WorkerState& state = states[w];
    state.local = Dataset(data.dim());
    const auto [begin, end] = slab[w];
    if (begin == end) continue;
    const double lo = data.point(order[begin])[axis];
    const double hi = data.point(order[end - 1])[axis];
    for (std::size_t i = begin; i < end; ++i) {
      state.local.Add(data.point(order[i]));
      state.local_to_global.push_back(order[i]);
    }
    state.owned_count = state.local_to_global.size();
    // Halo: scan outward from the slab in the sorted order.
    for (std::size_t i = begin; i-- > 0;) {
      if (data.point(order[i])[axis] < lo - config.dbscan.eps) break;
      state.local.Add(data.point(order[i]));
      state.local_to_global.push_back(order[i]);
    }
    for (std::size_t i = end; i < n; ++i) {
      if (data.point(order[i])[axis] > hi + config.dbscan.eps) break;
      state.local.Add(data.point(order[i]));
      state.local_to_global.push_back(order[i]);
    }
    const std::size_t halo = state.local_to_global.size() - state.owned_count;
    result.total_halo_points += halo;
    result.bytes_halo +=
        halo * (data.dim() * sizeof(double) + sizeof(PointId));
  }

  // The workers genuinely run concurrently on the pool (one lane per
  // thread; `num_threads = 1` degrades to a sequential loop). Every
  // worker writes only its own WorkerState plus the is_core flags of the
  // points it *owns* — disjoint byte ranges — and the fork-join barrier
  // between the phases is the core-flag exchange, so the result is
  // byte-identical to the sequential execution.
  ThreadPool pool(config.num_threads);
  const std::size_t worker_count = static_cast<std::size_t>(workers);

  // Worker phase 1: exact core flags for owned points (their full
  // eps-neighborhood is guaranteed to be inside owned + halo).
  pool.ParallelFor(worker_count, [&](std::size_t w) {
    WorkerState& state = states[w];
    Timer timer;
    std::vector<PointId> neighbors;
    state.index = CreateIndex(config.index_type, state.local, metric,
                              config.dbscan.eps, config.approx);
    for (std::size_t i = 0; i < state.owned_count; ++i) {
      state.index->RangeQuery(static_cast<PointId>(i), config.dbscan.eps,
                              &neighbors);
      if (static_cast<int>(neighbors.size()) >= config.dbscan.min_pts) {
        result.clustering.is_core[state.local_to_global[i]] = 1;
      }
    }
    state.seconds += timer.Seconds();
  });
  // Core-flag exchange for halo points (owners know the exact flags); the
  // barrier above makes every flag visible to every worker.
  result.bytes_merge += result.total_halo_points;  // 1 flag byte each.

  // Worker phase 2: connected components over the (exact) core graph of
  // owned + halo, then local border attachment.
  pool.ParallelFor(worker_count, [&](std::size_t w) {
    WorkerState& state = states[w];
    Timer timer;
    std::vector<PointId> neighbors;
    const std::size_t local_n = state.local_to_global.size();
    state.comp.assign(local_n, -1);
    std::vector<PointId> queue;
    for (std::size_t seed = 0; seed < local_n; ++seed) {
      if (state.comp[seed] >= 0) continue;
      if (!result.clustering.is_core[state.local_to_global[seed]]) continue;
      const std::int32_t comp = state.num_comps++;
      state.comp[seed] = comp;
      queue.clear();
      queue.push_back(static_cast<PointId>(seed));
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        state.index->RangeQuery(queue[qi], config.dbscan.eps, &neighbors);
        for (const PointId r : neighbors) {
          if (state.comp[r] >= 0) continue;
          if (!result.clustering.is_core[state.local_to_global[r]]) continue;
          state.comp[r] = comp;
          queue.push_back(r);
        }
      }
    }
    // Border attachment for owned non-core points.
    for (std::size_t i = 0; i < state.owned_count; ++i) {
      if (result.clustering.is_core[state.local_to_global[i]]) continue;
      state.index->RangeQuery(static_cast<PointId>(i), config.dbscan.eps,
                              &neighbors);
      for (const PointId r : neighbors) {
        if (result.clustering.is_core[state.local_to_global[r]]) {
          state.comp[i] = state.comp[r];
          break;
        }
      }
    }
    state.seconds += timer.Seconds();
  });
  for (const WorkerState& state : states) {
    result.max_worker_seconds =
        std::max(result.max_worker_seconds, state.seconds);
  }

  // Merge stage: replicated halo cores identify their component in the
  // visiting worker with their component at the owner.
  Timer merge_timer;
  std::vector<std::size_t> comp_offset(workers + 1, 0);
  for (int w = 0; w < workers; ++w) {
    comp_offset[w + 1] = comp_offset[w] + states[w].num_comps;
  }
  // Owner-side component of every core point.
  std::vector<std::size_t> owner_comp(n, 0);
  for (int w = 0; w < workers; ++w) {
    const WorkerState& state = states[w];
    for (std::size_t i = 0; i < state.owned_count; ++i) {
      const PointId g = state.local_to_global[i];
      if (result.clustering.is_core[g]) {
        DBDC_CHECK(state.comp[i] >= 0);
        owner_comp[g] = comp_offset[w] + state.comp[i];
      }
    }
  }
  UnionFind uf(comp_offset[workers]);
  for (int w = 0; w < workers; ++w) {
    const WorkerState& state = states[w];
    for (std::size_t i = state.owned_count; i < state.local_to_global.size();
         ++i) {
      const PointId g = state.local_to_global[i];
      if (!result.clustering.is_core[g]) continue;
      DBDC_CHECK(state.comp[i] >= 0);
      uf.Union(comp_offset[w] + state.comp[i], owner_comp[g]);
      result.bytes_merge += 2 * sizeof(std::int32_t);  // One merge edge.
    }
  }
  // Final labels for owned points through the union-find, densely
  // renumbered.
  std::unordered_map<std::size_t, ClusterId> dense;
  for (int w = 0; w < workers; ++w) {
    const WorkerState& state = states[w];
    for (std::size_t i = 0; i < state.owned_count; ++i) {
      if (state.comp[i] < 0) continue;  // Noise.
      const std::size_t root = uf.Find(comp_offset[w] + state.comp[i]);
      const auto [it, inserted] =
          dense.emplace(root, static_cast<ClusterId>(dense.size()));
      result.clustering.labels[state.local_to_global[i]] = it->second;
    }
  }
  result.clustering.num_clusters = static_cast<int>(dense.size());
  result.merge_seconds = merge_timer.Seconds();
  return result;
}

}  // namespace dbdc
