# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/dbscan_test[1]_include.cmake")
include("/root/repo/build/tests/kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/optics_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_dbscan_test[1]_include.cmake")
include("/root/repo/build/tests/local_model_test[1]_include.cmake")
include("/root/repo/build/tests/global_model_test[1]_include.cmake")
include("/root/repo/build/tests/relabel_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/distrib_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/external_indices_test[1]_include.cmake")
include("/root/repo/build/tests/dbdc_integration_test[1]_include.cmake")
include("/root/repo/build/tests/param_estimation_test[1]_include.cmake")
include("/root/repo/build/tests/optics_global_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_site_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/eval_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/dbscan_properties_test[1]_include.cmake")
include("/root/repo/build/tests/quality_bruteforce_test[1]_include.cmake")
include("/root/repo/build/tests/contract_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_invariants_test[1]_include.cmake")
