#include "cluster/param_estimation.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "index/index_factory.h"

namespace dbdc {

std::vector<double> SortedKDistances(const NeighborIndex& index, int k) {
  DBDC_CHECK(k >= 1);
  const Dataset& data = index.data();
  const Metric& metric = index.metric();
  std::vector<double> kdist;
  kdist.reserve(data.size());
  std::vector<PointId> knn;
  for (PointId p = 0; p < static_cast<PointId>(data.size()); ++p) {
    // k-th nearest other point = (k+1)-th including the point itself.
    index.KnnQuery(data.point(p), k + 1, &knn);
    if (static_cast<int>(knn.size()) < k + 1) continue;  // Tiny dataset.
    kdist.push_back(metric.Distance(data.point(p), data.point(knn[k])));
  }
  std::sort(kdist.begin(), kdist.end(), std::greater<>());
  return kdist;
}

double SuggestEps(const NeighborIndex& index, int min_pts) {
  DBDC_CHECK(min_pts >= 2);
  const std::vector<double> kdist = SortedKDistances(index, min_pts - 1);
  const std::size_t n = kdist.size();
  if (n < 3) return 0.0;
  // Knee = curve point with maximum distance to the chord from the first
  // to the last point of the sorted k-dist graph.
  const double x0 = 0.0, y0 = kdist.front();
  const double x1 = static_cast<double>(n - 1), y1 = kdist.back();
  const double dx = x1 - x0, dy = y1 - y0;
  const double norm = std::sqrt(dx * dx + dy * dy);
  std::size_t best_i = 0;
  double best_d = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        std::fabs(dy * (static_cast<double>(i) - x0) - dx * (kdist[i] - y0)) /
        norm;
    if (d > best_d) {
      best_d = d;
      best_i = i;
    }
  }
  return kdist[best_i];
}

DbscanParams EstimateDbscanParams(const Dataset& data, const Metric& metric,
                                  int k) {
  return EstimateDbscanParamsChecked(data, metric, k).params;
}

std::string_view ParamEstimationStatusMessage(ParamEstimationStatus status) {
  switch (status) {
    case ParamEstimationStatus::kOk:
      return "ok";
    case ParamEstimationStatus::kTooFewPoints:
      return "dataset has fewer than k+1 points, so no k-th-neighbor "
             "distance exists to average";
    case ParamEstimationStatus::kDegenerateDistances:
      return "average k-th-neighbor distance is not a positive finite eps "
             "(every point duplicates another, or coordinates are "
             "non-finite); supply eps/min_pts explicitly";
  }
  return "unknown";
}

ParamEstimate EstimateDbscanParamsChecked(const Dataset& data,
                                          const Metric& metric, int k) {
  DBDC_CHECK(k >= 1);
  ParamEstimate est;  // params stays {0, 0} on every failure path.
  if (static_cast<int>(data.size()) < k + 1) {
    est.status = ParamEstimationStatus::kTooFewPoints;
    return est;
  }
  // Linear scan: the one index type that needs no eps to build (the
  // chicken-and-egg of estimating eps *with* an eps-celled grid).
  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(IndexType::kLinearScan, data, metric, /*eps_hint=*/0.0);
  const std::vector<double> kdist = SortedKDistances(*index, k);
  if (kdist.empty()) {
    // Every per-point k-NN result came back short of k+1 neighbors.
    est.status = ParamEstimationStatus::kTooFewPoints;
    return est;
  }
  double sum = 0.0;
  for (const double d : kdist) sum += d;
  const double eps = sum / static_cast<double>(kdist.size());
  // An eps of 0 (all-duplicates dataset) or NaN/inf (non-finite
  // coordinates) would silently disable or break DBSCAN downstream.
  if (!(std::isfinite(eps) && eps > 0.0)) {
    est.status = ParamEstimationStatus::kDegenerateDistances;
    return est;
  }
  est.params.eps = eps;
  est.params.min_pts = k + 1;
  return est;
}

}  // namespace dbdc
