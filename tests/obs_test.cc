// Observability-layer suite (DESIGN.md §9): the MetricsRegistry's
// sharded counters, the Tracer's span nesting and Chrome trace export,
// the zero-cost-when-off contract (asserted via a counting operator
// new), instrumentation determinism across thread counts, and the exact
// reconciliation of the registry's wire counters against the engine's.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "cluster/dbscan.h"
#include "common/rng.h"
#include "core/dbdc.h"
#include "core/engine.h"
#include "data/generators.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "index/index_factory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// The replaced operators below pair ::operator new with std::malloc and
// ::operator delete with std::free — a valid pairing the compiler cannot
// see once it inlines them at call sites.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Counting global allocator: every operator-new call in this binary
// bumps the counter, which is how the zero-allocation contract of the
// disabled instrumentation hooks is asserted below.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dbdc {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::ScopedSpan;
using obs::SpanRecord;
using obs::Tracer;

/// Attaches for one scope and guarantees detachment even on test failure
/// (the registry/tracer destructors CHECK they are detached).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* r) { obs::SetGlobalMetrics(r); }
  ~ScopedMetrics() { obs::SetGlobalMetrics(nullptr); }
};
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* t) { obs::SetGlobalTracer(t); }
  ~ScopedTracer() { obs::SetGlobalTracer(nullptr); }
};

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  ScopedMetrics attach(&registry);

  obs::Count(Counter::kEpsRangeQueries);
  obs::Count(Counter::kEpsRangeQueries, 9);
  registry.SetGauge(Gauge::kDatasetPoints, 123.0);
  registry.Observe(Histogram::kRangeQueryNeighbors, 0);
  registry.Observe(Histogram::kRangeQueryNeighbors, 1);
  registry.Observe(Histogram::kRangeQueryNeighbors, 3);
  registry.Observe(Histogram::kRangeQueryNeighbors, 4);

  EXPECT_EQ(registry.CounterValue(Counter::kEpsRangeQueries), 10u);
  EXPECT_EQ(registry.CounterValue(Counter::kFramesSent), 0u);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter(Counter::kEpsRangeQueries), 10u);
  EXPECT_DOUBLE_EQ(snap.gauge(Gauge::kDatasetPoints), 123.0);
  const obs::HistogramData& h = snap.histogram(Histogram::kRangeQueryNeighbors);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 8u);
  // Power-of-two buckets: 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3.
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_FALSE(snap.empty());

  const std::string json = snap.Json();
  EXPECT_NE(json.find("\"eps_range_queries\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"dataset_points\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"range_query_neighbors\""), std::string::npos);
}

TEST(MetricsRegistryTest, DisabledHooksAreNoOps) {
  ASSERT_EQ(obs::GlobalMetrics(), nullptr);
  obs::Count(Counter::kEpsRangeQueries, 7);
  obs::Observe(Histogram::kRangeQueryNeighbors, 3);
  MetricsRegistry registry;
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsRegistryTest, ShardedCountersSumAcrossThreads) {
  MetricsRegistry registry;
  ScopedMetrics attach(&registry);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        obs::Count(Counter::kFramesSent);
        obs::Observe(Histogram::kFramePayloadBytes, i & 1023);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(registry.CounterValue(Counter::kFramesSent),
            kThreads * kPerThread);
  EXPECT_EQ(registry.Snapshot().histogram(Histogram::kFramePayloadBytes).count,
            kThreads * kPerThread);
}

TEST(MetricsRegistryTest, SiteByteMapsSumToTotals) {
  MetricsRegistry registry;
  registry.AddSiteBytes(Counter::kBytesUplink, 0, 100);
  registry.AddSiteBytes(Counter::kBytesUplink, 1, 50);
  registry.AddSiteBytes(Counter::kBytesDownlink, 0, 30);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter(Counter::kBytesUplink), 150u);
  EXPECT_EQ(snap.counter(Counter::kBytesDownlink), 30u);
  EXPECT_EQ(snap.bytes_uplink_by_site.at(0), 100u);
  EXPECT_EQ(snap.bytes_uplink_by_site.at(1), 50u);
  EXPECT_EQ(snap.bytes_downlink_by_site.at(0), 30u);
}

TEST(ObsDisabledTest, HooksMakeZeroAllocations) {
  ASSERT_EQ(obs::GlobalMetrics(), nullptr);
  ASSERT_EQ(obs::GlobalTracer(), nullptr);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    obs::Count(Counter::kEpsRangeQueries);
    obs::Observe(Histogram::kRangeQueryNeighbors,
                 static_cast<std::uint64_t>(i));
    ScopedSpan span("hot", "test");
    span.AddArg("i", static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(g_allocations.load(), before);
}

TEST(ObsDisabledTest, DbscanHotPathAllocationsUnchangedByInstrumentation) {
  // With observability off, an instrumented DBSCAN run must allocate
  // exactly what an identical run allocates — the hooks add nothing.
  // Run 1 warms every lazy cache; runs 2 and 3 must match exactly, and a
  // tracer+registry attach/detach cycle in between must not change the
  // steady state (stale thread-local shard caches may not allocate).
  const SyntheticDataset synth = MakeTestDatasetC(17);
  const DbscanParams params = synth.suggested_params;
  const auto run_once = [&] {
    const std::unique_ptr<NeighborIndex> index =
        CreateIndex(IndexType::kGrid, synth.data, Euclidean(), params.eps);
    return RunDbscan(*index, params);
  };
  run_once();
  const std::uint64_t before_second = g_allocations.load();
  const Clustering second = run_once();
  const std::uint64_t second_cost = g_allocations.load() - before_second;

  {
    Tracer tracer;
    MetricsRegistry registry;
    ScopedTracer attach_tracer(&tracer);
    ScopedMetrics attach_metrics(&registry);
    run_once();
  }

  const std::uint64_t before_third = g_allocations.load();
  const Clustering third = run_once();
  const std::uint64_t third_cost = g_allocations.load() - before_third;
  EXPECT_EQ(second_cost, third_cost);
  EXPECT_EQ(second.labels, third.labels);
}

TEST(TracerTest, SpansNestAndStagesTileTheRun) {
  const SyntheticDataset synth = MakeTestDatasetC(19);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 3;

  Tracer tracer;
  {
    ScopedTracer attach(&tracer);
    RunDbdc(synth.data, Euclidean(), config);
  }

  const std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_FALSE(spans.empty());

  // Exactly the seven engine stages, in pipeline order, at top level.
  std::vector<const SpanRecord*> stages;
  for (const SpanRecord& s : spans) {
    if (s.category == "stage") stages.push_back(&s);
  }
  ASSERT_EQ(stages.size(), 7u);
  for (int i = 0; i < kNumStages; ++i) {
    EXPECT_EQ(stages[static_cast<std::size_t>(i)]->name,
              StageName(static_cast<StageId>(i)));
    EXPECT_EQ(stages[static_cast<std::size_t>(i)]->depth, 0);
    EXPECT_FALSE(stages[static_cast<std::size_t>(i)]->virtual_clock);
  }
  // Stages tile the run: disjoint and in order on the wall clock.
  for (std::size_t i = 1; i < stages.size(); ++i) {
    EXPECT_GE(stages[i]->start_us,
              stages[i - 1]->start_us + stages[i - 1]->dur_us);
  }

  // Every nested wall-clock span lies inside one stage's interval
  // (sequential run: everything is on the main thread).
  std::size_t nested = 0;
  for (const SpanRecord& s : spans) {
    if (s.category == "stage" || s.virtual_clock) continue;
    EXPECT_EQ(s.tid, stages[0]->tid);
    EXPECT_GT(s.depth, 0);
    bool contained = false;
    for (const SpanRecord* stage : stages) {
      if (s.start_us >= stage->start_us &&
          s.start_us + s.dur_us <= stage->start_us + stage->dur_us) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << s.name << " escapes every stage span";
    ++nested;
  }
  // At least the per-site spans (3 sites x 3 phases) plus the DBSCAN and
  // relabel internals must have shown up.
  EXPECT_GE(nested, 9u);

  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"local_cluster\""), std::string::npos);
}

TEST(TracerTest, VirtualTransferSpansLayOutEndToEnd) {
  const SyntheticDataset synth = MakeTestDatasetC(23);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 3;
  config.protocol.enabled = true;

  Tracer tracer;
  {
    ScopedTracer attach(&tracer);
    RunDbdc(synth.data, Euclidean(), config);
  }

  const std::vector<SpanRecord> spans = tracer.Spans();
  std::vector<const SpanRecord*> transfers;
  for (const SpanRecord& s : spans) {
    if (s.virtual_clock) transfers.push_back(&s);
  }
  // One uplink per site + one broadcast per site.
  ASSERT_EQ(transfers.size(), 6u);
  std::int64_t cursor = 0;
  for (const SpanRecord* t : transfers) {
    EXPECT_EQ(t->name, "protocol.transfer");
    EXPECT_GT(t->dur_us, 0);
    // End-to-end layout on the virtual axis (±1µs of rounding per span).
    EXPECT_LE(std::abs(t->start_us - cursor), 2) << "transfer pile-up";
    cursor = t->start_us + t->dur_us;
  }
}

MetricsSnapshot SnapshotForThreads(int threads) {
  const SyntheticDataset synth = MakeTestDatasetA(11);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 4;
  config.num_threads = threads;
  MetricsRegistry registry;
  DbdcResult result;
  {
    ScopedMetrics attach(&registry);
    result = RunDbdc(synth.data, Euclidean(), config);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  // TakeResult embeds the same snapshot (modulo nothing: the run is over
  // by then and this thread is the only writer).
  EXPECT_EQ(result.metrics_snapshot.Json(), snap.Json());
  return snap;
}

TEST(MetricsDeterminismTest, SnapshotIdenticalAcrossParallelThreadCounts) {
  // The parallel DBSCAN phase issues exactly one ε-query per point and
  // all counters are order-independent sums, so the entire snapshot —
  // counters, histograms, buckets, per-site bytes — is bit-identical for
  // every worker count >= 2. (Json() is a deterministic rendering of the
  // full snapshot, so string equality is snapshot equality.)
  const MetricsSnapshot two = SnapshotForThreads(2);
  const MetricsSnapshot four = SnapshotForThreads(4);
  const MetricsSnapshot eight = SnapshotForThreads(8);
  EXPECT_EQ(two.Json(), four.Json());
  EXPECT_EQ(four.Json(), eight.Json());
  EXPECT_GT(two.counter(Counter::kEpsRangeQueries), 0u);
  EXPECT_GT(two.counter(Counter::kBytesUplink), 0u);
}

TEST(MetricsDeterminismTest, WireAndRelabelCountersInvariantToSequential) {
  // The sequential sweep re-queries noise points later claimed as border,
  // so kEpsRangeQueries legitimately differs from the parallel phase-A
  // count — but everything the network and the relabel pass count must
  // be identical even between threads=1 and threads=4.
  const MetricsSnapshot seq = SnapshotForThreads(1);
  const MetricsSnapshot par = SnapshotForThreads(4);
  for (const Counter c :
       {Counter::kBytesUplink, Counter::kBytesDownlink, Counter::kFramesSent,
        Counter::kFramesRetried, Counter::kFramesDropped,
        Counter::kRelabelPointsScanned, Counter::kRelabelDistanceComps}) {
    EXPECT_EQ(seq.counter(c), par.counter(c)) << obs::CounterName(c);
  }
  EXPECT_EQ(seq.bytes_uplink_by_site, par.bytes_uplink_by_site);
  EXPECT_EQ(seq.bytes_downlink_by_site, par.bytes_downlink_by_site);
  EXPECT_GT(seq.counter(Counter::kEpsRangeQueries),
            par.counter(Counter::kEpsRangeQueries));
}

TEST(MetricsReconciliationTest, RegistryMatchesWireCountersUnderFaults) {
  const SyntheticDataset synth = MakeTestDatasetC(29);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 4;
  config.protocol.enabled = true;

  SimulatedNetwork inner;
  FaultSpec spec;
  spec.drop_rate = 0.15;
  spec.corrupt_rate = 0.1;
  spec.seed = 77;
  FaultyNetwork network(&inner, spec);

  MetricsRegistry registry;
  DbdcResult result;
  {
    ScopedMetrics attach(&registry);
    result = RunDbdc(synth.data, Euclidean(), config, &network);
  }
  const MetricsSnapshot snap = registry.Snapshot();

  // Exact, not approximate: the registry records inside the transport.
  EXPECT_EQ(snap.counter(Counter::kBytesUplink), result.bytes_uplink);
  EXPECT_EQ(snap.counter(Counter::kBytesDownlink), result.bytes_downlink);
  EXPECT_EQ(snap.counter(Counter::kFramesRetried), result.protocol_retries);
  EXPECT_EQ(snap.counter(Counter::kFramesDropped), result.frames_dropped);
  EXPECT_EQ(snap.counter(Counter::kFramesCorrupted), result.frames_corrupted);
  EXPECT_EQ(snap.counter(Counter::kAcksLost), result.acks_lost);

  // Fault-injection accounting against the fault layer's own stats.
  EXPECT_EQ(snap.counter(Counter::kFaultDropsInjected),
            network.stats().messages_dropped);
  EXPECT_EQ(snap.counter(Counter::kFaultCorruptionsInjected),
            network.stats().messages_corrupted);

  // The per-site maps partition the totals.
  std::uint64_t uplink_sum = 0;
  for (const auto& [site, bytes] : snap.bytes_uplink_by_site) {
    EXPECT_GE(site, 0);
    EXPECT_LT(site, config.num_sites);
    uplink_sum += bytes;
  }
  EXPECT_EQ(uplink_sum, result.bytes_uplink);
}

TEST(MetricsReconciliationTest, SnapshotEmptyWithoutRegistry) {
  const SyntheticDataset synth = MakeTestDatasetC(37);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
  EXPECT_TRUE(result.metrics_snapshot.empty());
}

TEST(ContinuousObsTest, TickCountersAndVirtualClockGauge) {
  SimulatedNetwork net;
  GlobalModelParams params;
  params.min_pts_global = 2;
  ContinuousDbdc continuous(Euclidean(), params, ProtocolConfig{}, &net);
  StreamingSite a(0, Euclidean(), DbscanParams{1.0, 4}, 2,
                  LocalModelType::kScor, RefreshPolicy{});
  StreamingSite b(1, Euclidean(), DbscanParams{1.0, 4}, 2,
                  LocalModelType::kScor, RefreshPolicy{});
  continuous.AttachSite(&a);
  continuous.AttachSite(&b);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    a.Insert(Point{rng.Gaussian(0.0, 0.3), rng.Gaussian(0.0, 0.3)});
    b.Insert(Point{rng.Gaussian(10.0, 0.3), rng.Gaussian(10.0, 0.3)});
  }

  MetricsRegistry registry;
  Tracer tracer;
  {
    ScopedMetrics attach_metrics(&registry);
    ScopedTracer attach_tracer(&tracer);
    EXPECT_EQ(continuous.Tick(), 2);
    for (int t = 0; t < 3; ++t) EXPECT_EQ(continuous.Tick(), 0);
  }

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter(Counter::kContinuousTicks), 4u);
  EXPECT_EQ(snap.counter(Counter::kRefreshesSent), 2u);
  EXPECT_EQ(snap.counter(Counter::kRefreshesApplied), 2u);
  EXPECT_EQ(snap.counter(Counter::kRefreshesLost), 0u);
  EXPECT_EQ(snap.counter(Counter::kGlobalRebuilds), 1u);
  EXPECT_DOUBLE_EQ(snap.gauge(Gauge::kVirtualClockSec),
                   continuous.virtual_now_sec());

  // One wall span per tick.
  std::size_t ticks = 0;
  for (const SpanRecord& s : tracer.Spans()) {
    if (s.name == "continuous.tick") ++ticks;
  }
  EXPECT_EQ(ticks, 4u);
}

TEST(FastPathMetricsTest, PrunedIsExaminedMinusAccepted) {
  const SyntheticDataset synth = MakeTestDatasetC(41);
  const double eps = synth.suggested_params.eps;
  for (const IndexType type : {IndexType::kLinearScan, IndexType::kGrid}) {
    MetricsRegistry registry;
    ScopedMetrics attach(&registry);
    const std::unique_ptr<NeighborIndex> index =
        CreateIndex(type, synth.data, Euclidean(), eps);
    std::vector<PointId> out;
    std::uint64_t accepted = 0;
    for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
      index->RangeQuery(p, eps, &out);
      accepted += out.size();
    }
    const MetricsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.counter(Counter::kFastPathCandidates) -
                  snap.counter(Counter::kFastPathPruned),
              accepted);
    EXPECT_GT(snap.counter(Counter::kFastPathCandidates), 0u);
  }
}

}  // namespace
}  // namespace dbdc
