# Empty compiler generated dependencies file for retail_chain.
# This may be replaced when dependencies are built.
