// Reproduces Fig. 8 of the DBDC paper: overall runtime of DBDC(REP_Scor)
// on a 203,000-point data set as a function of the number of client
// sites (Fig. 8a), and the speed-up over a central DBSCAN run (Fig. 8b).
// The paper observes a speed-up "somewhere between O(n) and O(n^2)" in
// the number of sites, because DBSCAN itself is superlinear in the site
// cardinality.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"

namespace dbdc {
namespace {

constexpr std::size_t kN = 203000;

double& CentralSeconds() {
  static double seconds = 0.0;
  return seconds;
}

struct Fig8Row {
  int sites = 0;
  double overall_s = 0.0;
  double max_local_s = 0.0;
  double global_s = 0.0;
  std::size_t reps = 0;
};

std::vector<Fig8Row>& Rows() {
  static auto* rows = new std::vector<Fig8Row>();
  return *rows;
}

const SyntheticDataset& Workload() {
  static const auto* synth = new SyntheticDataset(MakeScaledDataset(kN));
  return *synth;
}

void BM_CentralReference(benchmark::State& state) {
  const SyntheticDataset& synth = Workload();
  for (auto _ : state) {
    const CentralDbscanResult result =
        RunCentralDbscan(synth.data, Euclidean(), synth.suggested_params,
                         IndexType::kGrid);
    benchmark::DoNotOptimize(result.clustering.num_clusters);
    CentralSeconds() = result.seconds;
    state.counters["clusters"] = result.clustering.num_clusters;
  }
}

void BM_DbdcSites(benchmark::State& state) {
  const SyntheticDataset& synth = Workload();
  const int sites = static_cast<int>(state.range(0));
  DbdcConfig config = bench::MakeDbdcConfig(synth, sites);
  config.model_type = LocalModelType::kScor;
  for (auto _ : state) {
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    benchmark::DoNotOptimize(result.num_global_clusters);
    Rows().push_back(Fig8Row{sites, result.OverallSeconds(),
                             result.max_local_seconds, result.global_seconds,
                             result.num_representatives});
    state.counters["overall_s"] = result.OverallSeconds();
    state.counters["speedup"] = CentralSeconds() / result.OverallSeconds();
  }
}

void RegisterAll() {
  benchmark::RegisterBenchmark("central_dbscan_203k", BM_CentralReference)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  for (const int sites : {1, 2, 4, 8, 16, 32}) {
    benchmark::RegisterBenchmark("dbdc_rep_scor_203k", BM_DbdcSites)
        ->Arg(sites)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Fig. 8 — DBDC(REP_Scor), 203,000 points: runtime vs #sites (8a) "
      "and speed-up vs central DBSCAN (8b)");
  table.SetHeader({"sites", "overall [s]", "max local [s]", "global [s]",
                   "#reps", "speedup vs central"});
  for (const Fig8Row& row : Rows()) {
    table.AddRow({bench::Fmt("%d", row.sites),
                  bench::Fmt("%.4f", row.overall_s),
                  bench::Fmt("%.4f", row.max_local_s),
                  bench::Fmt("%.4f", row.global_s),
                  bench::Fmt("%zu", row.reps),
                  bench::Fmt("%.2fx", CentralSeconds() / row.overall_s)});
  }
  table.Print();
  std::printf("central DBSCAN reference: %.4f s\n", CentralSeconds());
  std::printf("Paper shape check: the speed-up should grow superlinearly "
              "in the number of sites (between O(s) and O(s^2)) until the "
              "global clustering starts to dominate.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
