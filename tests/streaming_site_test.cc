#include <gtest/gtest.h>

#include <vector>

#include "core/server.h"
#include "core/streaming_site.h"
#include "eval/quality.h"
#include "index/linear_scan_index.h"
#include "test_util.h"

namespace dbdc {
namespace {

constexpr DbscanParams kParams{1.0, 4};

StreamingSite MakeSite(const RefreshPolicy& policy = RefreshPolicy{}) {
  return StreamingSite(0, Euclidean(), kParams, 2,
                       LocalModelType::kScor, policy);
}

void InsertBlob(StreamingSite* site, double cx, double cy, int count,
                Rng* rng, std::vector<PointId>* ids = nullptr) {
  for (int i = 0; i < count; ++i) {
    const PointId id = site->Insert(
        Point{rng->Gaussian(cx, 0.3), rng->Gaussian(cy, 0.3)});
    if (ids != nullptr) ids->push_back(id);
  }
}

TEST(StreamingSiteTest, FirstModelIsAlwaysStale) {
  StreamingSite site = MakeSite();
  EXPECT_FALSE(site.ModelNeedsRefresh());  // No data yet.
  Rng rng(1);
  InsertBlob(&site, 0.0, 0.0, 10, &rng);
  EXPECT_TRUE(site.ModelNeedsRefresh());
  site.RefreshModel();
  EXPECT_FALSE(site.ModelNeedsRefresh());
  EXPECT_EQ(site.refresh_count(), 1);
  EXPECT_GT(site.local_model().representatives.size(), 0u);
}

TEST(StreamingSiteTest, ClusterCountChangeTriggersRefresh) {
  StreamingSite site = MakeSite();
  Rng rng(2);
  InsertBlob(&site, 0.0, 0.0, 15, &rng);
  site.RefreshModel();
  // A second cluster appears far away.
  InsertBlob(&site, 20.0, 20.0, 15, &rng);
  EXPECT_TRUE(site.ModelNeedsRefresh());
  const LocalModel& model = site.RefreshModel();
  EXPECT_EQ(model.num_local_clusters, 2);
}

TEST(StreamingSiteTest, StableStreamDoesNotRetransmit) {
  StreamingSite site = MakeSite();
  Rng rng(3);
  InsertBlob(&site, 0.0, 0.0, 30, &rng);
  site.RefreshModel();
  // More points into the same cluster: structure unchanged.
  InsertBlob(&site, 0.0, 0.0, 30, &rng);
  EXPECT_FALSE(site.ModelNeedsRefresh());
}

TEST(StreamingSiteTest, UpdatedFractionPolicy) {
  RefreshPolicy policy;
  policy.min_cluster_delta = 0;    // Disable the structural criterion.
  policy.updated_fraction = 0.5;   // Refresh after 50% churn.
  StreamingSite site = MakeSite(policy);
  Rng rng(4);
  InsertBlob(&site, 0.0, 0.0, 20, &rng);
  site.RefreshModel();
  InsertBlob(&site, 0.0, 0.0, 5, &rng);
  EXPECT_FALSE(site.ModelNeedsRefresh());  // 5/25 = 20% churn.
  InsertBlob(&site, 0.0, 0.0, 15, &rng);
  EXPECT_TRUE(site.ModelNeedsRefresh());  // 20/40 = 50% churn.
}

TEST(StreamingSiteTest, MinUpdatesBetweenSuppressesRefresh) {
  RefreshPolicy policy;
  policy.min_updates_between = 100;
  StreamingSite site = MakeSite(policy);
  Rng rng(5);
  InsertBlob(&site, 0.0, 0.0, 20, &rng);
  site.RefreshModel();
  InsertBlob(&site, 30.0, 30.0, 20, &rng);  // New cluster, but too soon.
  EXPECT_FALSE(site.ModelNeedsRefresh());
  InsertBlob(&site, 30.0, 30.0, 80, &rng);  // Now 100 updates reached.
  EXPECT_TRUE(site.ModelNeedsRefresh());
}

TEST(StreamingSiteTest, ErasureCanTriggerRefresh) {
  StreamingSite site = MakeSite();
  Rng rng(6);
  std::vector<PointId> ids;
  InsertBlob(&site, 0.0, 0.0, 10, &rng, &ids);
  InsertBlob(&site, 20.0, 0.0, 10, &rng);
  site.RefreshModel();
  EXPECT_EQ(site.local_model().num_local_clusters, 2);
  for (const PointId id : ids) site.Erase(id);  // Kill cluster 1.
  EXPECT_TRUE(site.ModelNeedsRefresh());
  EXPECT_EQ(site.RefreshModel().num_local_clusters, 1);
}

TEST(StreamingSiteTest, ModelFeedsServerAndRelabelsItself) {
  // Two streaming sites, each holding half of two clusters; the global
  // model reunites them and ApplyGlobalModel labels the active points.
  StreamingSite left = MakeSite();
  StreamingSite right(1, Euclidean(), kParams, 2, LocalModelType::kScor,
                      RefreshPolicy{});
  Rng rng(7);
  InsertBlob(&left, 0.0, 0.0, 40, &rng);
  InsertBlob(&left, 9.0, 0.0, 40, &rng);
  InsertBlob(&right, 0.4, 0.0, 40, &rng);
  InsertBlob(&right, 9.4, 0.0, 40, &rng);

  Server server(Euclidean(), GlobalModelParams{});
  server.AddLocalModel(left.RefreshModel());
  server.AddLocalModel(right.RefreshModel());
  const GlobalModel& global = server.BuildGlobal();
  EXPECT_EQ(global.num_global_clusters, 2);

  const auto labeled = left.ApplyGlobalModel(global);
  ASSERT_EQ(labeled.size(), 80u);
  // All points of the same physical cluster get the same global label.
  const ClusterId first = labeled[0].second;
  EXPECT_GE(first, 0);
  int with_first = 0;
  for (const auto& [id, label] : labeled) {
    if (label == first) ++with_first;
  }
  EXPECT_EQ(with_first, 40);
}

TEST(StreamingSiteTest, SnapshotModelMatchesBatchPipeline) {
  // The streaming site's refreshed model must equal the model a batch
  // Site would produce over the same points (same params, same order).
  StreamingSite streaming = MakeSite();
  Dataset batch_data(2);
  Rng rng(8);
  for (int i = 0; i < 120; ++i) {
    const double cx = (i % 2 == 0) ? 0.0 : 15.0;
    const Point p{rng.Gaussian(cx, 0.4), rng.Gaussian(cx, 0.4)};
    streaming.Insert(p);
    batch_data.Add(p);
  }
  const LocalModel& stream_model = streaming.RefreshModel();

  const LinearScanIndex index(batch_data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, kParams);
  const LocalModel batch_model = BuildScorModel(index, local, kParams, 0);
  // The concrete specific-core-point set depends on DBSCAN's discovery
  // order (Sec. 5), which differs between the internal grid index and
  // the linear reference — but the cluster structure must agree and
  // both models must satisfy Def. 6/7, so the representative counts are
  // of the same magnitude.
  EXPECT_EQ(stream_model.num_local_clusters,
            batch_model.num_local_clusters);
  EXPECT_GT(stream_model.representatives.size(), 0u);
  // Every representative range lies in [Eps, 2*Eps] (Def. 7).
  for (const Representative& rep : stream_model.representatives) {
    EXPECT_GE(rep.eps_range, kParams.eps);
    EXPECT_LE(rep.eps_range, 2.0 * kParams.eps + 1e-12);
  }
}

}  // namespace
}  // namespace dbdc
