#ifndef DBDC_DISTRIB_PARTITIONER_H_
#define DBDC_DISTRIB_PARTITIONER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "common/types.h"

namespace dbdc {

/// Splits a dataset horizontally onto k sites (every point to exactly one
/// site). The paper's evaluation "equally distributed the data set onto
/// the different client sites" — UniformRandomPartitioner; the other
/// strategies model correlated and skewed placements for the ablation
/// benches.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Returns k id lists forming a partition of {0..data.size()-1}.
  virtual std::vector<std::vector<PointId>> Partition(const Dataset& data,
                                                      int num_sites,
                                                      Rng* rng) const = 0;

  virtual std::string_view name() const = 0;
};

/// Uniformly random assignment with (near-)equal site sizes: a random
/// permutation dealt round-robin. The paper's setting.
class UniformRandomPartitioner final : public Partitioner {
 public:
  std::vector<std::vector<PointId>> Partition(const Dataset& data,
                                              int num_sites,
                                              Rng* rng) const override;
  std::string_view name() const override { return "uniform"; }
};

/// Deterministic round-robin by id (no shuffling).
class RoundRobinPartitioner final : public Partitioner {
 public:
  std::vector<std::vector<PointId>> Partition(const Dataset& data,
                                              int num_sites,
                                              Rng* rng) const override;
  std::string_view name() const override { return "round_robin"; }
};

/// Spatially correlated placement: sites own contiguous slabs along one
/// axis (equal point counts). Models geographically collected data, where
/// a site rarely sees points of remote clusters.
class SpatialSlabPartitioner final : public Partitioner {
 public:
  /// Slabs are cut orthogonally to `axis`.
  explicit SpatialSlabPartitioner(int axis = 0) : axis_(axis) {}

  std::vector<std::vector<PointId>> Partition(const Dataset& data,
                                              int num_sites,
                                              Rng* rng) const override;
  std::string_view name() const override { return "spatial_slab"; }

 private:
  int axis_;
};

/// Random assignment with geometrically decaying site sizes: site i gets
/// roughly `ratio` times the share of site i-1. Models a chain with a few
/// large and many small data owners.
class SizeSkewedPartitioner final : public Partitioner {
 public:
  explicit SizeSkewedPartitioner(double ratio = 0.6) : ratio_(ratio) {}

  std::vector<std::vector<PointId>> Partition(const Dataset& data,
                                              int num_sites,
                                              Rng* rng) const override;
  std::string_view name() const override { return "size_skewed"; }

 private:
  double ratio_;
};

}  // namespace dbdc

#endif  // DBDC_DISTRIB_PARTITIONER_H_
