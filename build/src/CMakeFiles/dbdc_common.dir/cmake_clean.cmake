file(REMOVE_RECURSE
  "CMakeFiles/dbdc_common.dir/common/bounding_box.cc.o"
  "CMakeFiles/dbdc_common.dir/common/bounding_box.cc.o.d"
  "CMakeFiles/dbdc_common.dir/common/dataset.cc.o"
  "CMakeFiles/dbdc_common.dir/common/dataset.cc.o.d"
  "CMakeFiles/dbdc_common.dir/common/distance.cc.o"
  "CMakeFiles/dbdc_common.dir/common/distance.cc.o.d"
  "libdbdc_common.a"
  "libdbdc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
