// Reproduces Fig. 7 of the DBDC paper: overall runtime of central DBSCAN
// versus DBDC(REP_Scor) and DBDC(REP_kMeans) as the cardinality of a
// data-set-A-style workload grows. Fig. 7a covers large cardinalities
// (DBDC wins by an order of magnitude), Fig. 7b small ones (DBDC's
// overhead makes it slightly slower).
//
// The paper's cost model: DBDC runtime = max(local runtimes) + global
// clustering time; sites run sequentially on one machine, as in Sec. 9.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"

namespace dbdc {
namespace {

constexpr int kSites = 4;

struct Fig7Row {
  std::size_t n = 0;
  double central_s = 0.0;
  double dbdc_scor_s = 0.0;
  double dbdc_kmeans_s = 0.0;
};

std::vector<Fig7Row>& Rows() {
  static auto* rows = new std::vector<Fig7Row>();
  return *rows;
}

Fig7Row& RowFor(std::size_t n) {
  for (Fig7Row& row : Rows()) {
    if (row.n == n) return row;
  }
  Rows().push_back(Fig7Row{n, 0, 0, 0});
  return Rows().back();
}

void BM_CentralDbscan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SyntheticDataset synth = MakeScaledDataset(n);
  for (auto _ : state) {
    const CentralDbscanResult result =
        RunCentralDbscan(synth.data, Euclidean(), synth.suggested_params,
                         IndexType::kGrid);
    benchmark::DoNotOptimize(result.clustering.num_clusters);
    RowFor(n).central_s = result.seconds;
    state.counters["clusters"] = result.clustering.num_clusters;
  }
}

void RunDbdcBench(benchmark::State& state, LocalModelType model) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SyntheticDataset synth = MakeScaledDataset(n);
  DbdcConfig config = bench::MakeDbdcConfig(synth, kSites);
  config.model_type = model;
  for (auto _ : state) {
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    benchmark::DoNotOptimize(result.num_global_clusters);
    // Paper cost model: slowest site + server.
    const double overall = result.OverallSeconds();
    if (model == LocalModelType::kScor) {
      RowFor(n).dbdc_scor_s = overall;
    } else {
      RowFor(n).dbdc_kmeans_s = overall;
    }
    state.counters["overall_s"] = overall;
    state.counters["reps"] =
        static_cast<double>(result.num_representatives);
    state.counters["clusters"] = result.num_global_clusters;
  }
}

void BM_DbdcScor(benchmark::State& state) {
  RunDbdcBench(state, LocalModelType::kScor);
}

void BM_DbdcKMeans(benchmark::State& state) {
  RunDbdcBench(state, LocalModelType::kKMeans);
}

// Fig. 7b (small) and Fig. 7a (large) cardinalities.
const std::vector<std::int64_t> kSmall = {500, 1000, 2000, 4000};
const std::vector<std::int64_t> kLarge = {10000, 25000, 50000, 100000};

void RegisterAll() {
  for (const auto& sizes : {kSmall, kLarge}) {
    for (const std::int64_t n : sizes) {
      benchmark::RegisterBenchmark("central_dbscan", BM_CentralDbscan)
          ->Arg(n)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("dbdc_rep_scor", BM_DbdcScor)
          ->Arg(n)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("dbdc_rep_kmeans", BM_DbdcKMeans)
          ->Arg(n)
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  bench::Table small("Fig. 7b — overall runtime, small cardinalities "
                     "(seconds; DBDC = max local + global)");
  bench::Table large("Fig. 7a — overall runtime, large cardinalities");
  for (bench::Table* table : {&small, &large}) {
    table->SetHeader({"n", "central DBSCAN [s]", "DBDC(REP_Scor) [s]",
                      "DBDC(REP_kMeans) [s]", "speedup Scor",
                      "speedup kMeans"});
  }
  for (const Fig7Row& row : Rows()) {
    bench::Table& table = row.n <= 4000 ? small : large;
    table.AddRow({bench::Fmt("%zu", row.n),
                  bench::Fmt("%.4f", row.central_s),
                  bench::Fmt("%.4f", row.dbdc_scor_s),
                  bench::Fmt("%.4f", row.dbdc_kmeans_s),
                  bench::Fmt("%.2fx", row.central_s / row.dbdc_scor_s),
                  bench::Fmt("%.2fx", row.central_s / row.dbdc_kmeans_s)});
  }
  small.Print();
  large.Print();
  std::printf("Paper shape check: DBDC should win clearly at large n (>=4x "
              "at 100k with 4 sites; the paper reports >10x on its "
              "hardware) and be about break-even or slightly slower at "
              "small n.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
