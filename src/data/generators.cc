#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dbdc {
namespace {

/// Jittered-grid centers over [0,100]^2 with spacing that keeps blobs
/// separated: cells of a ceil(sqrt(k)) x ceil(sqrt(k)) grid, shuffled.
std::vector<Point> GridCenters(int k, double region, Rng* rng) {
  const int side = static_cast<int>(std::ceil(std::sqrt(k)));
  std::vector<Point> cells;
  cells.reserve(side * side);
  const double step = region / side;
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      cells.push_back({(i + 0.5) * step, (j + 0.5) * step});
    }
  }
  std::shuffle(cells.begin(), cells.end(), rng->engine());
  cells.resize(k);
  for (Point& c : cells) {
    // Jitter within a quarter cell so blobs stay apart.
    c[0] += rng->Uniform(-step / 8.0, step / 8.0);
    c[1] += rng->Uniform(-step / 8.0, step / 8.0);
  }
  return cells;
}

}  // namespace

void AppendBlob(const BlobSpec& spec, ClusterId label, Rng* rng,
                Dataset* data, std::vector<ClusterId>* labels) {
  Point p(spec.center.size());
  for (std::size_t i = 0; i < spec.count; ++i) {
    for (std::size_t d = 0; d < spec.center.size(); ++d) {
      p[d] = rng->Gaussian(spec.center[d], spec.stddev);
    }
    data->Add(p);
    labels->push_back(label);
  }
}

void AppendUniformNoise(std::size_t count, double lo, double hi, Rng* rng,
                        Dataset* data, std::vector<ClusterId>* labels) {
  Point p(data->dim());
  for (std::size_t i = 0; i < count; ++i) {
    for (int d = 0; d < data->dim(); ++d) p[d] = rng->Uniform(lo, hi);
    data->Add(p);
    labels->push_back(kNoise);
  }
}

void AppendRing(const Point& center, double radius, double thickness,
                std::size_t count, ClusterId label, Rng* rng, Dataset* data,
                std::vector<ClusterId>* labels) {
  DBDC_CHECK(center.size() == 2 && data->dim() == 2);
  for (std::size_t i = 0; i < count; ++i) {
    const double angle = rng->Uniform(0.0, 2.0 * std::numbers::pi);
    const double r = radius + rng->Gaussian(0.0, thickness);
    data->Add(Point{center[0] + r * std::cos(angle),
                    center[1] + r * std::sin(angle)});
    labels->push_back(label);
  }
}

SyntheticDataset MakeBlobs(std::size_t n, int num_blobs,
                           double noise_fraction, double stddev_lo,
                           double stddev_hi, std::uint64_t seed,
                           double region) {
  DBDC_CHECK(num_blobs >= 1);
  DBDC_CHECK(noise_fraction >= 0.0 && noise_fraction < 1.0);
  Rng rng(seed);
  SyntheticDataset out;
  out.data = Dataset(2);
  out.data.Reserve(n);
  out.num_components = num_blobs;

  const std::size_t noise_count =
      static_cast<std::size_t>(noise_fraction * static_cast<double>(n));
  const std::size_t cluster_total = n - noise_count;

  // Random blob weights (each at least half the uniform share).
  std::vector<double> weights(num_blobs);
  double weight_sum = 0.0;
  for (double& w : weights) {
    w = rng.Uniform(0.5, 1.5);
    weight_sum += w;
  }
  const std::vector<Point> centers = GridCenters(num_blobs, region, &rng);
  std::size_t assigned = 0;
  for (int b = 0; b < num_blobs; ++b) {
    std::size_t count =
        b + 1 == num_blobs
            ? cluster_total - assigned
            : static_cast<std::size_t>(
                  weights[b] / weight_sum *
                  static_cast<double>(cluster_total));
    count = std::min(count, cluster_total - assigned);
    assigned += count;
    BlobSpec spec{centers[b], rng.Uniform(stddev_lo, stddev_hi), count};
    AppendBlob(spec, b, &rng, &out.data, &out.true_labels);
  }
  AppendUniformNoise(noise_count, 0.0, region, &rng, &out.data,
                     &out.true_labels);
  return out;
}

SyntheticDataset MakeTestDatasetA(std::uint64_t seed) {
  // 8700 points, "randomly generated data/cluster": 13 blobs of varying
  // size and spread plus 5% background noise. The region is sized so that
  // some cluster pairs are only a few Eps_local apart — dense enough that
  // an oversized Eps_global (>~4x Eps_local) erroneously merges them,
  // reproducing the quality drop-off of Fig. 9b.
  SyntheticDataset out = MakeBlobs(8700, 13, 0.05, 1.2, 2.0, seed,
                                   /*region=*/56.0);
  out.name = "A";
  out.suggested_params = {1.2, 5};
  return out;
}

SyntheticDataset MakeTestDatasetB(std::uint64_t seed) {
  // 4000 points, "very noisy data": 5 diffuse blobs under 40% uniform
  // noise. The blobs are wide enough that their fringes sit close to the
  // core-density threshold — the regime in which the paper's set B lives
  // and in which the distributed clustering visibly disagrees with the
  // central one (Fig. 11: B scores lowest under P^II).
  SyntheticDataset out = MakeBlobs(4000, 5, 0.40, 2.5, 4.0, seed);
  out.name = "B";
  out.suggested_params = {2.0, 10};
  return out;
}

SyntheticDataset MakeTestDatasetC(std::uint64_t seed) {
  // 1021 points, 3 clusters.
  Rng rng(seed);
  SyntheticDataset out;
  out.name = "C";
  out.data = Dataset(2);
  out.num_components = 3;
  AppendBlob({{25.0, 25.0}, 3.0, 340}, 0, &rng, &out.data, &out.true_labels);
  AppendBlob({{75.0, 30.0}, 3.5, 340}, 1, &rng, &out.data, &out.true_labels);
  AppendBlob({{50.0, 75.0}, 4.0, 341}, 2, &rng, &out.data, &out.true_labels);
  out.suggested_params = {2.5, 5};
  return out;
}

SyntheticDataset MakeScaledDataset(std::size_t n, std::uint64_t seed) {
  // Fixed [0,100]^2 region, 13 blobs, 5% noise — density (and with it the
  // cost of every eps-range query) scales with n, as in the paper's
  // runtime experiments.
  SyntheticDataset out = MakeBlobs(n, 13, 0.05, 1.2, 2.4, seed);
  out.name = "scaled";
  out.suggested_params = {1.2, 5};
  return out;
}

SyntheticDataset MakeHighDimBlobs(std::size_t n, int dim, int num_blobs,
                                  double noise_fraction, std::uint64_t seed) {
  DBDC_CHECK(dim >= 1 && num_blobs >= 1);
  DBDC_CHECK(noise_fraction >= 0.0 && noise_fraction < 1.0);
  Rng rng(seed);
  SyntheticDataset out;
  out.name = "highdim";
  out.data = Dataset(dim);
  out.data.Reserve(n);
  out.num_components = num_blobs;

  const double region = 100.0;
  const std::size_t noise_count =
      static_cast<std::size_t>(noise_fraction * static_cast<double>(n));
  const std::size_t cluster_total = n - noise_count;

  // Uniform-random centers: in dim >= ~8 the pairwise center distances
  // concentrate near region * sqrt(dim/6) — vastly beyond any blob's
  // 3σ + eps reach — so no separation enforcement is needed.
  Point center(static_cast<std::size_t>(dim));
  for (int b = 0; b < num_blobs; ++b) {
    for (int d = 0; d < dim; ++d) center[static_cast<std::size_t>(d)] =
        rng.Uniform(0.0, region);
    const std::size_t count =
        b + 1 == num_blobs
            ? cluster_total - cluster_total / static_cast<std::size_t>(
                                                  num_blobs) *
                                  static_cast<std::size_t>(num_blobs - 1)
            : cluster_total / static_cast<std::size_t>(num_blobs);
    AppendBlob({center, 1.0, count}, b, &rng, &out.data, &out.true_labels);
  }
  AppendUniformNoise(noise_count, 0.0, region, &rng, &out.data,
                     &out.true_labels);

  // Calibrated eps: the squared distance between two points of one unit-σ
  // blob is 2·χ²_dim distributed, so the radius holding ~5 % of the blob
  // is sqrt(2 · Q_{χ²_dim}(0.05)). Wilson–Hilferty approximates the
  // quantile to well under a percent here. A fixed "2σ" would hold
  // essentially no neighbors once dim ≳ 8.
  const double z05 = -1.6448536269514722;  // 5 % standard-normal quantile.
  const double h = 2.0 / (9.0 * static_cast<double>(dim));
  const double chi_sq_quantile =
      static_cast<double>(dim) * std::pow(1.0 - h + z05 * std::sqrt(h), 3.0);
  out.suggested_params.eps = std::sqrt(2.0 * chi_sq_quantile);
  out.suggested_params.min_pts = 8;
  return out;
}

}  // namespace dbdc
