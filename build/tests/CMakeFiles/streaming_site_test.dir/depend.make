# Empty dependencies file for streaming_site_test.
# This may be replaced when dependencies are built.
