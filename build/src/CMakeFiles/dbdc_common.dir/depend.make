# Empty dependencies file for dbdc_common.
# This may be replaced when dependencies are built.
