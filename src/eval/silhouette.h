#ifndef DBDC_EVAL_SILHOUETTE_H_
#define DBDC_EVAL_SILHOUETTE_H_

#include <cstdint>
#include <span>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/types.h"

namespace dbdc {

/// Mean silhouette coefficient of a clustering in [-1, 1] — an
/// *internal* quality measure (no reference clustering needed),
/// complementing the paper's external criteria P^I / P^II.
///
/// Noise points are excluded. Points in singleton clusters score 0 (the
/// usual convention). Exact computation is O(n²) in the number of
/// clustered points; when that exceeds `max_samples`, a seeded uniform
/// sample of points is scored (distances still go against all clustered
/// points, so the estimate is unbiased).
///
/// Returns 0 when fewer than 2 clusters exist.
///
/// `threads` parallelizes the per-sample scoring (1 = sequential, 0 =
/// hardware concurrency). Each sample's score is computed independently
/// and the scores are summed in sample order on one thread, so the result
/// is bit-identical for every thread count.
double SilhouetteCoefficient(const Dataset& data,
                             std::span<const ClusterId> labels,
                             const Metric& metric,
                             std::size_t max_samples = 2000,
                             std::uint64_t seed = 1, int threads = 1);

}  // namespace dbdc

#endif  // DBDC_EVAL_SILHOUETTE_H_
