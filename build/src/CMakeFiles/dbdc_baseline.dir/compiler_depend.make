# Empty compiler generated dependencies file for dbdc_baseline.
# This may be replaced when dependencies are built.
