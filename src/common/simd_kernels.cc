#include "common/simd_kernels.h"

#include <atomic>
#include <span>

#include "common/distance.h"

// The vector tiers are compiled only for x86 GCC/Clang builds and only
// when the build did not opt out (DBDC_SIMD=OFF defines
// DBDC_SIMD_DISABLED). Everything else ships the scalar tier alone; the
// public entry points and their results are identical either way.
#if !defined(DBDC_SIMD_DISABLED) && \
    (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define DBDC_SIMD_X86 1
#include <immintrin.h>
#else
#define DBDC_SIMD_X86 0
#endif

namespace dbdc::simd {
namespace {

/// -1 = auto (CPUID); otherwise the forced Tier value.
std::atomic<int> g_forced_tier{-1};

/// Reference-scan mode (bench baseline / cross-check); off in production.
std::atomic<bool> g_reference_scan{false};

inline std::size_t RowOffset(PointId id, int dim) {
  return static_cast<std::size_t>(id) * static_cast<std::size_t>(dim);
}

/// One pair, exactly the scalar hot-path kernel: the reference sequence
/// of IEEE additions every vector lane must reproduce.
inline double PairSquaredL2(const double* query, const double* row, int dim) {
  return SquaredEuclideanDistance(
      std::span<const double>(query, static_cast<std::size_t>(dim)),
      std::span<const double>(row, static_cast<std::size_t>(dim)));
}

// ---------------------------------------------------------------------------
// Scalar tier (also the tail handler of the vector tiers; any mix of
// tiers over the same pairs yields bit-identical sums).
// ---------------------------------------------------------------------------

void BatchedScalar(const double* query, const double* rows, std::size_t n,
                   int dim, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = PairSquaredL2(query, rows + i * static_cast<std::size_t>(dim),
                           dim);
  }
}

void FilterRowsScalar(const double* query, const double* rows, std::size_t n,
                      int dim, double eps_sq, PointId first_id,
                      std::vector<PointId>* out, KernelStats* stats) {
  for (std::size_t i = 0; i < n; ++i) {
    if (PairSquaredL2(query, rows + i * static_cast<std::size_t>(dim), dim) <=
        eps_sq) {
      out->push_back(first_id + static_cast<PointId>(i));
    }
  }
  stats->blocks_scored += n;
}

void FilterIdsScalar(const double* query, const double* base, int dim,
                     double eps_sq, const PointId* ids, std::size_t n,
                     std::vector<PointId>* out, KernelStats* stats) {
  for (std::size_t i = 0; i < n; ++i) {
    if (PairSquaredL2(query, base + RowOffset(ids[i], dim), dim) <= eps_sq) {
      out->push_back(ids[i]);
    }
  }
  stats->blocks_scored += n;
}

#if DBDC_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 tier: 2 candidates per block, one lane per candidate. Lanes
// accumulate over the axes in ascending order with separate mul and add
// intrinsics (never FMA), so each lane's sum is bit-identical to the
// scalar loop's.
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) inline __m128d
Sse2PairAccumulate(const double* query, const double* r0, const double* r1,
                   int dim) {
  __m128d acc = _mm_setzero_pd();
  for (int k = 0; k < dim; ++k) {
    const __m128d x = _mm_set_pd(r1[k], r0[k]);
    const __m128d d = _mm_sub_pd(x, _mm_set1_pd(query[k]));
    acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
  }
  return acc;
}

__attribute__((target("sse2"))) void BatchedSse2(const double* query,
                                                 const double* rows,
                                                 std::size_t n, int dim,
                                                 double* out) {
  const std::size_t sdim = static_cast<std::size_t>(dim);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d acc =
        Sse2PairAccumulate(query, rows + i * sdim, rows + (i + 1) * sdim, dim);
    _mm_storeu_pd(out + i, acc);
  }
  if (i < n) out[i] = PairSquaredL2(query, rows + i * sdim, dim);
}

__attribute__((target("sse2"))) void FilterRowsSse2(
    const double* query, const double* rows, std::size_t n, int dim,
    double eps_sq, PointId first_id, std::vector<PointId>* out,
    KernelStats* stats) {
  const __m128d eps_v = _mm_set1_pd(eps_sq);
  const std::size_t sdim = static_cast<std::size_t>(dim);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d acc;
    if (dim == 2) {
      // Two consecutive 2-d rows are one aligned-free 4-double run:
      // deinterleave into x and y lanes, square-accumulate in axis order.
      const __m128d r0 = _mm_loadu_pd(rows + i * 2);
      const __m128d r1 = _mm_loadu_pd(rows + i * 2 + 2);
      const __m128d xs = _mm_unpacklo_pd(r0, r1);
      const __m128d ys = _mm_unpackhi_pd(r0, r1);
      const __m128d dx = _mm_sub_pd(xs, _mm_set1_pd(query[0]));
      const __m128d dy = _mm_sub_pd(ys, _mm_set1_pd(query[1]));
      acc = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
    } else {
      acc = Sse2PairAccumulate(query, rows + i * sdim, rows + (i + 1) * sdim,
                               dim);
    }
    const int mask = _mm_movemask_pd(_mm_cmple_pd(acc, eps_v));
    if (mask == 0) continue;  // one predictable branch per miss block
    if (mask & 1) out->push_back(first_id + static_cast<PointId>(i));
    if (mask & 2) out->push_back(first_id + static_cast<PointId>(i) + 1);
  }
  stats->blocks_scored += i / 2;
  if (i < n) {
    FilterRowsScalar(query, rows + i * sdim, n - i, dim, eps_sq,
                     first_id + static_cast<PointId>(i), out, stats);
  }
}

__attribute__((target("sse2"))) void FilterIdsSse2(
    const double* query, const double* base, int dim, double eps_sq,
    const PointId* ids, std::size_t n, std::vector<PointId>* out,
    KernelStats* stats) {
  const __m128d eps_v = _mm_set1_pd(eps_sq);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double* r0 = base + RowOffset(ids[i], dim);
    const double* r1 = base + RowOffset(ids[i + 1], dim);
    const __m128d acc = Sse2PairAccumulate(query, r0, r1, dim);
    const int mask = _mm_movemask_pd(_mm_cmple_pd(acc, eps_v));
    if (mask == 0) continue;
    if (mask & 1) out->push_back(ids[i]);
    if (mask & 2) out->push_back(ids[i + 1]);
  }
  stats->blocks_scored += i / 2;
  if (i < n) {
    FilterIdsScalar(query, base, dim, eps_sq, ids + i, n - i, out, stats);
  }
}

// ---------------------------------------------------------------------------
// AVX2 tier: 4 candidates per block, one lane per candidate; the same
// axis-order accumulation contract as the SSE2 and scalar tiers.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256d
Avx2QuadAccumulate(const double* query, const double* r0, const double* r1,
                   const double* r2, const double* r3, int dim) {
  __m256d acc = _mm256_setzero_pd();
  for (int k = 0; k < dim; ++k) {
    const __m256d x = _mm256_set_pd(r3[k], r2[k], r1[k], r0[k]);
    const __m256d d = _mm256_sub_pd(x, _mm256_set1_pd(query[k]));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  return acc;
}

__attribute__((target("avx2"))) void BatchedAvx2(const double* query,
                                                 const double* rows,
                                                 std::size_t n, int dim,
                                                 double* out) {
  const std::size_t sdim = static_cast<std::size_t>(dim);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d acc = Avx2QuadAccumulate(
        query, rows + i * sdim, rows + (i + 1) * sdim, rows + (i + 2) * sdim,
        rows + (i + 3) * sdim, dim);
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) out[i] = PairSquaredL2(query, rows + i * sdim, dim);
}

__attribute__((target("avx2"))) void FilterRowsAvx2(
    const double* query, const double* rows, std::size_t n, int dim,
    double eps_sq, PointId first_id, std::vector<PointId>* out,
    KernelStats* stats) {
  const __m256d eps_v = _mm256_set1_pd(eps_sq);
  const std::size_t sdim = static_cast<std::size_t>(dim);
  std::size_t i = 0;
  if (dim == 2) {
    // Four consecutive 2-d rows are two unaligned 256-bit loads.
    // Deinterleaving with unpacklo/hi leaves the lane order
    // [c0, c2, c1, c3], so the hit bits are consumed as 0, 2, 1, 3 to
    // emit ids in ascending order (the order the scalar loop emits —
    // neighbor order feeds the DBSCAN seed queue and observer events).
    const __m256d qx = _mm256_set1_pd(query[0]);
    const __m256d qy = _mm256_set1_pd(query[1]);
    // Two independent 4-lane blocks per iteration: the second block's
    // loads/unpacks overlap the first's arithmetic, and the merged mask
    // makes the (overwhelmingly common) all-miss iteration one branch.
    for (; i + 8 <= n; i += 8) {
      const __m256d r01 = _mm256_loadu_pd(rows + i * 2);
      const __m256d r23 = _mm256_loadu_pd(rows + i * 2 + 4);
      const __m256d r45 = _mm256_loadu_pd(rows + i * 2 + 8);
      const __m256d r67 = _mm256_loadu_pd(rows + i * 2 + 12);
      const __m256d dx_a = _mm256_sub_pd(_mm256_unpacklo_pd(r01, r23), qx);
      const __m256d dy_a = _mm256_sub_pd(_mm256_unpackhi_pd(r01, r23), qy);
      const __m256d dx_b = _mm256_sub_pd(_mm256_unpacklo_pd(r45, r67), qx);
      const __m256d dy_b = _mm256_sub_pd(_mm256_unpackhi_pd(r45, r67), qy);
      const __m256d acc_a =
          _mm256_add_pd(_mm256_mul_pd(dx_a, dx_a), _mm256_mul_pd(dy_a, dy_a));
      const __m256d acc_b =
          _mm256_add_pd(_mm256_mul_pd(dx_b, dx_b), _mm256_mul_pd(dy_b, dy_b));
      const int mask_a =
          _mm256_movemask_pd(_mm256_cmp_pd(acc_a, eps_v, _CMP_LE_OQ));
      const int mask_b =
          _mm256_movemask_pd(_mm256_cmp_pd(acc_b, eps_v, _CMP_LE_OQ));
      if ((mask_a | mask_b) == 0) continue;
      const PointId id = first_id + static_cast<PointId>(i);
      if (mask_a & 1) out->push_back(id);
      if (mask_a & 4) out->push_back(id + 1);
      if (mask_a & 2) out->push_back(id + 2);
      if (mask_a & 8) out->push_back(id + 3);
      if (mask_b & 1) out->push_back(id + 4);
      if (mask_b & 4) out->push_back(id + 5);
      if (mask_b & 2) out->push_back(id + 6);
      if (mask_b & 8) out->push_back(id + 7);
    }
    for (; i + 4 <= n; i += 4) {
      const __m256d r01 = _mm256_loadu_pd(rows + i * 2);
      const __m256d r23 = _mm256_loadu_pd(rows + i * 2 + 4);
      const __m256d xs = _mm256_unpacklo_pd(r01, r23);
      const __m256d ys = _mm256_unpackhi_pd(r01, r23);
      const __m256d dx = _mm256_sub_pd(xs, qx);
      const __m256d dy = _mm256_sub_pd(ys, qy);
      const __m256d acc =
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      const int mask =
          _mm256_movemask_pd(_mm256_cmp_pd(acc, eps_v, _CMP_LE_OQ));
      if (mask == 0) continue;  // one predictable branch per miss block
      const PointId id = first_id + static_cast<PointId>(i);
      if (mask & 1) out->push_back(id);
      if (mask & 4) out->push_back(id + 1);
      if (mask & 2) out->push_back(id + 2);
      if (mask & 8) out->push_back(id + 3);
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      const __m256d acc = Avx2QuadAccumulate(
          query, rows + i * sdim, rows + (i + 1) * sdim,
          rows + (i + 2) * sdim, rows + (i + 3) * sdim, dim);
      const int mask =
          _mm256_movemask_pd(_mm256_cmp_pd(acc, eps_v, _CMP_LE_OQ));
      if (mask == 0) continue;
      const PointId id = first_id + static_cast<PointId>(i);
      if (mask & 1) out->push_back(id);
      if (mask & 2) out->push_back(id + 1);
      if (mask & 4) out->push_back(id + 2);
      if (mask & 8) out->push_back(id + 3);
    }
  }
  stats->blocks_scored += i / 4;
  if (i < n) {
    FilterRowsScalar(query, rows + i * sdim, n - i, dim, eps_sq,
                     first_id + static_cast<PointId>(i), out, stats);
  }
}

__attribute__((target("avx2"))) void FilterIdsAvx2(
    const double* query, const double* base, int dim, double eps_sq,
    const PointId* ids, std::size_t n, std::vector<PointId>* out,
    KernelStats* stats) {
  const __m256d eps_v = _mm256_set1_pd(eps_sq);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* r0 = base + RowOffset(ids[i], dim);
    const double* r1 = base + RowOffset(ids[i + 1], dim);
    const double* r2 = base + RowOffset(ids[i + 2], dim);
    const double* r3 = base + RowOffset(ids[i + 3], dim);
    __m256d acc;
    int mask;
    if (dim == 2) {
      // Gather each 2-d row as one 128-bit load, pack pairs, then
      // deinterleave; lane order is [c0, c2, c1, c3] (see FilterRowsAvx2).
      const __m256d r01 =
          _mm256_set_m128d(_mm_loadu_pd(r1), _mm_loadu_pd(r0));
      const __m256d r23 =
          _mm256_set_m128d(_mm_loadu_pd(r3), _mm_loadu_pd(r2));
      const __m256d xs = _mm256_unpacklo_pd(r01, r23);
      const __m256d ys = _mm256_unpackhi_pd(r01, r23);
      const __m256d dx = _mm256_sub_pd(xs, _mm256_set1_pd(query[0]));
      const __m256d dy = _mm256_sub_pd(ys, _mm256_set1_pd(query[1]));
      acc = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      mask = _mm256_movemask_pd(_mm256_cmp_pd(acc, eps_v, _CMP_LE_OQ));
      if (mask == 0) continue;
      if (mask & 1) out->push_back(ids[i]);
      if (mask & 4) out->push_back(ids[i + 1]);
      if (mask & 2) out->push_back(ids[i + 2]);
      if (mask & 8) out->push_back(ids[i + 3]);
    } else {
      acc = Avx2QuadAccumulate(query, r0, r1, r2, r3, dim);
      mask = _mm256_movemask_pd(_mm256_cmp_pd(acc, eps_v, _CMP_LE_OQ));
      if (mask == 0) continue;
      if (mask & 1) out->push_back(ids[i]);
      if (mask & 2) out->push_back(ids[i + 1]);
      if (mask & 4) out->push_back(ids[i + 2]);
      if (mask & 8) out->push_back(ids[i + 3]);
    }
  }
  stats->blocks_scored += i / 4;
  if (i < n) {
    FilterIdsScalar(query, base, dim, eps_sq, ids + i, n - i, out, stats);
  }
}

#endif  // DBDC_SIMD_X86

Tier DetectTier() {
#if DBDC_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Tier::kSse2;
#endif
  return Tier::kScalar;
}

}  // namespace

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
  }
  return "unknown";
}

bool ParseTier(std::string_view name, Tier* out) {
  if (name == "scalar") {
    *out = Tier::kScalar;
  } else if (name == "sse2") {
    *out = Tier::kSse2;
  } else if (name == "avx2") {
    *out = Tier::kAvx2;
  } else {
    return false;
  }
  return true;
}

Tier DetectedTier() {
  static const Tier tier = DetectTier();
  return tier;
}

Tier ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  return forced >= 0 ? static_cast<Tier>(forced) : DetectedTier();
}

int TierLanes(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return 1;
    case Tier::kSse2: return 2;
    case Tier::kAvx2: return 4;
  }
  return 1;
}

bool ForceTier(Tier tier) {
  if (static_cast<int>(tier) > static_cast<int>(DetectedTier())) return false;
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
  return true;
}

void ResetForcedTier() {
  g_forced_tier.store(-1, std::memory_order_relaxed);
}

void SetReferenceScan(bool enabled) {
  g_reference_scan.store(enabled, std::memory_order_relaxed);
}

bool ReferenceScanEnabled() {
  return g_reference_scan.load(std::memory_order_relaxed);
}

void BatchedSquaredEuclidean(const double* query, const double* rows,
                             std::size_t n, int dim, double* out) {
  switch (ActiveTier()) {
#if DBDC_SIMD_X86
    case Tier::kAvx2:
      BatchedAvx2(query, rows, n, dim, out);
      return;
    case Tier::kSse2:
      BatchedSse2(query, rows, n, dim, out);
      return;
#endif
    default:
      BatchedScalar(query, rows, n, dim, out);
      return;
  }
}

void FilterRowsSquaredEuclidean(const double* query, const double* rows,
                                std::size_t n, int dim, double eps_sq,
                                PointId first_id, std::vector<PointId>* out,
                                KernelStats* stats) {
  const std::size_t before = out->size();
  switch (ActiveTier()) {
#if DBDC_SIMD_X86
    case Tier::kAvx2:
      FilterRowsAvx2(query, rows, n, dim, eps_sq, first_id, out, stats);
      break;
    case Tier::kSse2:
      FilterRowsSse2(query, rows, n, dim, eps_sq, first_id, out, stats);
      break;
#endif
    default:
      FilterRowsScalar(query, rows, n, dim, eps_sq, first_id, out, stats);
      break;
  }
  stats->candidates_filtered += n - (out->size() - before);
}

void FilterIdsSquaredEuclidean(const double* query, const double* base,
                               int dim, double eps_sq, const PointId* ids,
                               std::size_t n, std::vector<PointId>* out,
                               KernelStats* stats) {
  const std::size_t before = out->size();
  switch (ActiveTier()) {
#if DBDC_SIMD_X86
    case Tier::kAvx2:
      FilterIdsAvx2(query, base, dim, eps_sq, ids, n, out, stats);
      break;
    case Tier::kSse2:
      FilterIdsSse2(query, base, dim, eps_sq, ids, n, out, stats);
      break;
#endif
    default:
      FilterIdsScalar(query, base, dim, eps_sq, ids, n, out, stats);
      break;
  }
  stats->candidates_filtered += n - (out->size() - before);
}

}  // namespace dbdc::simd
