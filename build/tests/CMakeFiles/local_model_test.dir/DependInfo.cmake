
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/local_model_test.cc" "tests/CMakeFiles/local_model_test.dir/local_model_test.cc.o" "gcc" "tests/CMakeFiles/local_model_test.dir/local_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbdc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_distrib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
