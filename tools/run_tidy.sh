#!/usr/bin/env bash
# Runs clang-tidy over every library source under src/ using the
# compile-commands database of a configured build tree.
#
# Usage:
#   tools/run_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
# BUILD_DIR defaults to the first of build-tidy/, build/ that contains a
# compile_commands.json; if none exists, one is configured into
# build-tidy/ first (cmake --preset tidy).
#
# Exit status: 0 when clang-tidy produced no diagnostics beyond the
# committed baseline (tools/tidy_baseline.txt), non-zero otherwise.
# Findings are normalized to "<file>\t<check-id>" entries and diffed
# against the baseline, so pre-existing accepted findings don't block the
# gate while any NEW finding does; entries in the baseline that no longer
# occur are reported as stale so the baseline can be shrunk. The baseline
# ships empty — the tree is tidy-clean — and exists so a future toolchain
# bump that introduces checks can be landed without an atomic fix-the-
# world change.
# When no clang-tidy binary is available the script reports that and
# exits 0 so environments without LLVM (the pinned build container has
# only gcc) degrade gracefully; CI installs clang-tidy and runs the real
# pass.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "$tidy_bin" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy_bin="$candidate"
      break
    fi
  done
fi
if [[ -z "$tidy_bin" ]]; then
  echo "run_tidy.sh: no clang-tidy binary found (set CLANG_TIDY=...);" \
       "skipping the tidy pass." >&2
  exit 0
fi

build_dir=""
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi
if [[ -z "$build_dir" ]]; then
  for candidate in build-tidy build; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      build_dir="$candidate"
      break
    fi
  done
fi
if [[ -z "$build_dir" ]]; then
  echo "run_tidy.sh: no compile_commands.json found; configuring" \
       "build-tidy/ ..." >&2
  cmake --preset tidy >/dev/null || exit 1
  build_dir="build-tidy"
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy.sh: $build_dir/compile_commands.json missing" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)." >&2
  exit 1
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "run_tidy.sh: $tidy_bin over ${#sources[@]} files" \
     "(database: $build_dir)" >&2

jobs="$(nproc 2>/dev/null || echo 4)"
tidy_out="$(mktemp)"
trap 'rm -f "$tidy_out"' EXIT
printf '%s\n' "${sources[@]}" |
  xargs -P "$jobs" -n 4 "$tidy_bin" -p "$build_dir" --quiet "$@" \
  >"$tidy_out" 2>&1
cat "$tidy_out" >&2

# Normalize diagnostics to "<repo-relative file>\t<check-id>" and compare
# against the committed baseline rather than trusting the exit code: a new
# finding fails the gate, a baselined one passes, a stale baseline entry is
# reported so it can be removed.
baseline="tools/tidy_baseline.txt"
current="$(
  sed -n -E 's@^([^: ]+):[0-9]+:[0-9]+: (warning|error): .* \[([A-Za-z0-9.,*-]+)\]$@\1\t\3@p' \
      "$tidy_out" |
    sed -E "s@^$repo_root/@@" | sort -u
)"
known="$(grep -v -E '^(#|$)' "$baseline" 2>/dev/null | sort -u || true)"

new_findings="$(comm -23 <(printf '%s' "$current") <(printf '%s' "$known"))"
stale_entries="$(comm -13 <(printf '%s' "$current") <(printf '%s' "$known"))"

if [[ -n "$stale_entries" ]]; then
  echo "run_tidy.sh: stale baseline entries (no longer reported — remove" \
       "from $baseline):" >&2
  printf '%s\n' "$stale_entries" >&2
fi
if [[ -n "$new_findings" ]]; then
  echo "run_tidy.sh: NEW clang-tidy findings not in $baseline:" >&2
  printf '%s\n' "$new_findings" >&2
  exit 1
fi
echo "run_tidy.sh: clean (no findings beyond baseline)." >&2
exit 0
