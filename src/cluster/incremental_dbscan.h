#ifndef DBDC_CLUSTER_INCREMENTAL_DBSCAN_H_
#define DBDC_CLUSTER_INCREMENTAL_DBSCAN_H_

#include <memory>
#include <span>
#include <vector>

#include "cluster/dbscan.h"
#include "common/dataset.h"
#include "common/distance.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// Incrementally maintained DBSCAN clustering (after Ester, Kriegel,
/// Sander, Wimmer, Xu: "Incremental Clustering for Mining in a Data
/// Warehousing Environment", VLDB 1998).
///
/// The DBDC paper names the existence of this algorithm as one reason for
/// choosing DBSCAN locally: a site only re-transmits its local model when
/// its clustering changed considerably, and this class is what keeps the
/// local clustering current under insertions and deletions.
///
/// Semantics: after any sequence of Insert/Erase calls, the maintained
/// labeling is a valid DBSCAN clustering of the active points — the core
/// points and their partition into clusters match a batch run exactly;
/// border points are assigned to the cluster of *one* of their adjacent
/// cores (which batch DBSCAN also only guarantees up to visit order).
///
/// Insertions are handled by the update-seed analysis of the paper
/// (absorption / creation / merge); deletions re-cluster only the affected
/// clusters (potential splits), identified via the cores that lost their
/// core property.
class IncrementalDbscan {
 public:
  /// `params.eps` also sizes the dynamic grid index cells.
  IncrementalDbscan(const DbscanParams& params, const Metric& metric,
                    int dim);

  IncrementalDbscan(const IncrementalDbscan&) = delete;
  IncrementalDbscan& operator=(const IncrementalDbscan&) = delete;

  /// Adds a point and updates the clustering. Returns its id.
  PointId Insert(std::span<const double> coords);

  /// Removes an active point and updates the clustering.
  void Erase(PointId id);

  /// Whether `id` has been inserted and not erased.
  bool IsActive(PointId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < active_.size() &&
           active_[id];
  }

  /// Canonical cluster label of an active point (kNoise for noise). Labels
  /// are stable names, not dense: use Snapshot() for a dense relabeling.
  ClusterId Label(PointId id) const;

  /// Whether an active point currently satisfies the core condition.
  bool IsCore(PointId id) const {
    DBDC_CHECK(IsActive(id));
    return neighbor_count_[id] >= params_.min_pts;
  }

  /// Dense-labeled view of the current clustering. Labels of erased points
  /// are kUnclassified; active points are labeled 0..num_clusters-1 or
  /// kNoise.
  Clustering Snapshot() const;

  /// Number of active points.
  std::size_t size() const { return active_count_; }

  const Dataset& data() const { return data_; }
  const DbscanParams& params() const { return params_; }

 private:
  ClusterId NewCluster();
  ClusterId Find(ClusterId c) const;
  void Union(ClusterId a, ClusterId b);
  /// Canonical label of `id`'s raw label, or kNoise/kUnclassified.
  ClusterId CanonicalRaw(PointId id) const;
  /// Re-clusters the member sets of the given canonical clusters from
  /// scratch (cores first, then border attachment). Used after deletions.
  void RecluterAffected(const std::vector<ClusterId>& affected);

  DbscanParams params_;
  const Metric* metric_;
  Dataset data_;
  std::unique_ptr<NeighborIndex> index_;  // Over active points only.
  std::vector<bool> active_;
  std::size_t active_count_ = 0;
  /// |N_eps| among active points, including the point itself.
  std::vector<int> neighbor_count_;
  /// Raw (pre-union-find) cluster label per point.
  std::vector<ClusterId> raw_label_;
  /// Union-find forest over raw cluster ids (merges from insertions).
  mutable std::vector<ClusterId> cluster_parent_;
};

}  // namespace dbdc

#endif  // DBDC_CLUSTER_INCREMENTAL_DBSCAN_H_
