#ifndef DBDC_INDEX_RSTAR_TREE_H_
#define DBDC_INDEX_RSTAR_TREE_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/bounding_box.h"
#include "common/simd_kernels.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// Dynamic R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990) —
/// the access method the DBDC paper cites for DBSCAN's region queries.
///
/// Implements the full R* insertion heuristics: overlap-minimizing
/// ChooseSubtree at the leaf level, forced reinsertion (30 % of M, once
/// per level per insertion), and the margin-driven axis/index split.
/// Deletion condenses underfull nodes and reinserts orphaned entries at
/// their original level. Range queries prune with the metric's
/// point-to-box lower bound; kNN uses best-first search.
class RStarTree final : public NeighborIndex {
 public:
  /// Node capacity bounds: at most kMaxEntries and (except for the root)
  /// at least kMinEntries entries per node.
  static constexpr int kMaxEntries = 32;
  static constexpr int kMinEntries = 13;   // 40% of M, the R* recommendation.
  static constexpr int kReinsertCount = 10;  // 30% of M.

  /// How the initial tree over `data` is constructed.
  enum class Construction {
    /// Repeated R* insertion (forced reinsertion etc.). Dynamic-quality
    /// tree, O(n log n) with substantial constants.
    kInsert,
    /// Sort-Tile-Recursive bulk loading (Leutenegger et al., ICDE 1997):
    /// packs near-full nodes bottom-up by recursive coordinate tiling.
    /// Much faster to build and usually better clustered for static
    /// data; the tree remains fully dynamic afterwards.
    kBulkLoadStr,
  };

  RStarTree(const Dataset& data, const Metric& metric, bool index_all = true,
            Construction construction = Construction::kInsert);
  ~RStarTree() override;

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  void RangeQuery(std::span<const double> q, double eps,
                  std::vector<PointId>* out) const override;
  using NeighborIndex::RangeQuery;
  void KnnQuery(std::span<const double> q, int k,
                std::vector<PointId>* out) const override;
  std::size_t size() const override { return count_; }
  bool SupportsDynamicUpdates() const override { return true; }
  void Insert(PointId id) override;
  void Erase(PointId id) override;
  std::string_view name() const override { return "rstar"; }
  const Dataset& data() const override { return *data_; }
  const Metric& metric() const override { return *metric_; }

  /// Height of the tree (1 = root is a leaf). For tests and diagnostics.
  int height() const { return height_; }

  /// Verifies structural invariants (occupancy bounds, exact MBR
  /// containment, uniform leaf depth, entry count) with DBDC_ASSERT;
  /// aborts with file:line context on violation. Runs automatically after
  /// a bulk load in Debug / DBDC_DCHECKS builds; tests call it explicitly
  /// after incremental updates.
  void CheckInvariants() const;

 private:
  struct Node;

  /// An entry is either a (box, child) pair in an interior node or a
  /// (point-box, id) pair in a leaf.
  struct Entry {
    BoundingBox box = BoundingBox(1);  // Replaced before use.
    Node* child = nullptr;             // Owned; null in leaf entries.
    PointId id = -1;
  };

  struct Node {
    explicit Node(int level_in) : level(level_in) {}
    int level;  // 0 = leaf.
    std::vector<Entry> entries;
    bool is_leaf() const { return level == 0; }
  };

  void FreeNode(Node* node);
  BoundingBox NodeBox(const Node& node) const;
  Entry MakePointEntry(PointId id) const;

  /// Descends one step: index of the child entry of `node` to follow when
  /// inserting `box`.
  std::size_t ChooseSubtree(const Node& node, const BoundingBox& box) const;

  /// Recursive insertion of `entry` at `target_level`. Returns a split-off
  /// sibling when `node` overflowed and was split; the caller installs it.
  Node* InsertRecursive(Node* node, Entry entry, int target_level);

  /// R* overflow treatment: forced reinsertion (first time per level per
  /// top-level insert, non-root) or split. Returns the split sibling or
  /// null.
  Node* OverflowTreatment(Node* node);

  /// The R* topological split: picks axis by minimum margin sum, then the
  /// distribution with minimal overlap (ties: minimal area). Returns the
  /// new sibling holding the second group.
  Node* SplitNode(Node* node);

  /// Removes the kReinsertCount entries farthest from the node's box
  /// center and queues them for reinsertion.
  void ForcedReinsert(Node* node);

  /// Installs a split of the root, growing the tree by one level.
  void GrowRoot(Node* sibling);

  /// Drains pending_ by re-running the insertion machinery.
  void DrainPending();

  /// Recursive deletion; returns true when `id` was found and removed.
  /// Underfull descendants are dissolved into orphans_.
  bool EraseRecursive(Node* node, PointId id, std::span<const double> p);

  /// Sort-Tile-Recursive bulk load of all points (requires an empty
  /// tree).
  void BulkLoadStr();
  /// Tiles `entries` into groups of <= kMaxEntries by recursive
  /// coordinate sorting (axis cycles with recursion depth).
  void StrTile(std::vector<Entry>* entries, int axis,
               std::vector<std::vector<Entry>>* groups);

  void RangeRecursive(const Node* node, std::span<const double> q, double eps,
                      std::vector<PointId>* out) const;
  /// Euclidean fast path of RangeRecursive: squared distances vs eps²,
  /// leaves scored through the batched SIMD kernel.
  void RangeRecursiveEuclidean(const Node* node, std::span<const double> q,
                               double eps_sq, simd::KernelStats* kstats,
                               std::vector<PointId>* out) const;

  void CheckNode(const Node* node, int expected_level,
                 std::size_t* point_count) const;

  const Dataset* data_;
  const Metric* metric_;
  /// Detected at construction: range queries take the squared-distance
  /// fast path (RangeRecursiveEuclidean).
  bool euclidean_ = false;
  Node* root_;
  int height_ = 1;
  std::size_t count_ = 0;

  // Insertion bookkeeping (valid during one top-level Insert/Erase).
  std::vector<std::pair<Entry, int>> pending_;  // (entry, target level)
  std::vector<bool> reinserted_at_level_;
};

}  // namespace dbdc

#endif  // DBDC_INDEX_RSTAR_TREE_H_
