#include "core/relabel.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "index/grid_index.h"

namespace dbdc {

std::vector<ClusterId> RelabelSite(const Dataset& site_data,
                                   const GlobalModel& global,
                                   const Metric& metric) {
  std::vector<ClusterId> labels(site_data.size(), kNoise);
  const std::size_t m = global.NumRepresentatives();
  if (m == 0 || site_data.empty()) return labels;
  DBDC_CHECK(global.rep_points.dim() == site_data.dim());

  // Representatives have individual ranges; query the index at the
  // maximum range and filter by each candidate's own ε_r.
  const double max_eps =
      *std::max_element(global.rep_eps.begin(), global.rep_eps.end());
  DBDC_CHECK(max_eps > 0.0);
  const GridIndex rep_index(global.rep_points, metric, max_eps);

  std::vector<PointId> candidates;
  for (PointId p = 0; p < static_cast<PointId>(site_data.size()); ++p) {
    const auto coords = site_data.point(p);
    rep_index.RangeQuery(coords, max_eps, &candidates);
    double best_d = std::numeric_limits<double>::max();
    ClusterId best = kNoise;
    for (const PointId r : candidates) {
      const double d = metric.Distance(coords, global.rep_points.point(r));
      if (d > global.rep_eps[r]) continue;  // Outside this rep's ε_r.
      if (d < best_d) {
        best_d = d;
        best = global.rep_global_cluster[r];
      }
    }
    labels[p] = best;
  }
  return labels;
}

}  // namespace dbdc
