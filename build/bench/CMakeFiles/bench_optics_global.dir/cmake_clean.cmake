file(REMOVE_RECURSE
  "CMakeFiles/bench_optics_global.dir/bench_optics_global.cc.o"
  "CMakeFiles/bench_optics_global.dir/bench_optics_global.cc.o.d"
  "bench_optics_global"
  "bench_optics_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optics_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
