file(REMOVE_RECURSE
  "CMakeFiles/global_model_test.dir/global_model_test.cc.o"
  "CMakeFiles/global_model_test.dir/global_model_test.cc.o.d"
  "global_model_test"
  "global_model_test.pdb"
  "global_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
