
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/grid_index.cc" "src/CMakeFiles/dbdc_index.dir/index/grid_index.cc.o" "gcc" "src/CMakeFiles/dbdc_index.dir/index/grid_index.cc.o.d"
  "/root/repo/src/index/index_factory.cc" "src/CMakeFiles/dbdc_index.dir/index/index_factory.cc.o" "gcc" "src/CMakeFiles/dbdc_index.dir/index/index_factory.cc.o.d"
  "/root/repo/src/index/kd_tree_index.cc" "src/CMakeFiles/dbdc_index.dir/index/kd_tree_index.cc.o" "gcc" "src/CMakeFiles/dbdc_index.dir/index/kd_tree_index.cc.o.d"
  "/root/repo/src/index/linear_scan_index.cc" "src/CMakeFiles/dbdc_index.dir/index/linear_scan_index.cc.o" "gcc" "src/CMakeFiles/dbdc_index.dir/index/linear_scan_index.cc.o.d"
  "/root/repo/src/index/m_tree.cc" "src/CMakeFiles/dbdc_index.dir/index/m_tree.cc.o" "gcc" "src/CMakeFiles/dbdc_index.dir/index/m_tree.cc.o.d"
  "/root/repo/src/index/rstar_tree.cc" "src/CMakeFiles/dbdc_index.dir/index/rstar_tree.cc.o" "gcc" "src/CMakeFiles/dbdc_index.dir/index/rstar_tree.cc.o.d"
  "/root/repo/src/index/vp_tree.cc" "src/CMakeFiles/dbdc_index.dir/index/vp_tree.cc.o" "gcc" "src/CMakeFiles/dbdc_index.dir/index/vp_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
