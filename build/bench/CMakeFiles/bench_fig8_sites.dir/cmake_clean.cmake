file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sites.dir/bench_fig8_sites.cc.o"
  "CMakeFiles/bench_fig8_sites.dir/bench_fig8_sites.cc.o.d"
  "bench_fig8_sites"
  "bench_fig8_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
