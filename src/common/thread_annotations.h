#ifndef DBDC_COMMON_THREAD_ANNOTATIONS_H_
#define DBDC_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (DESIGN.md §10).
///
/// These macros attach compile-time lock-discipline contracts to types,
/// data members and functions: which mutex guards which field, which
/// functions must (or must not) be called with a lock held, and which
/// RAII types acquire/release a capability. Under Clang with
/// -Wthread-safety (the `tsafety` CMake preset turns this into
/// -Werror=thread-safety-analysis) every violation is a compile error;
/// under every other compiler the macros expand to nothing, so the
/// annotated code stays portable to the pinned GCC toolchain.
///
/// The vocabulary mirrors the standard attribute set
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
/// DBDC_ to keep the global namespace clean. Use dbdc::Mutex /
/// dbdc::MutexLock (common/mutex.h) rather than annotating raw
/// std::mutex members: the analysis only understands capabilities it
/// can see, and the wrapper carries the attributes.

#if defined(__clang__)
#define DBDC_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DBDC_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" names the capability
/// kind in diagnostics).
#define DBDC_CAPABILITY(x) DBDC_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (MutexLock).
#define DBDC_SCOPED_CAPABILITY \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member `x` may only be read or written while holding the given
/// capability.
#define DBDC_GUARDED_BY(x) DBDC_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member: the *pointee* is protected by the given capability
/// (the pointer itself is not).
#define DBDC_PT_GUARDED_BY(x) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define DBDC_ACQUIRED_BEFORE(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define DBDC_ACQUIRED_AFTER(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the given capabilities
/// (and does not release them).
#define DBDC_REQUIRES(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define DBDC_REQUIRES_SHARED(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define DBDC_ACQUIRE(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define DBDC_ACQUIRE_SHARED(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability the caller held on entry.
#define DBDC_RELEASE(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define DBDC_RELEASE_SHARED(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define DBDC_TRY_ACQUIRE(b, ...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// The function may not be called while holding the given capabilities
/// (it acquires them itself, or would deadlock).
#define DBDC_EXCLUDES(...) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define DBDC_ASSERT_CAPABILITY(x) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the given capability.
#define DBDC_RETURN_CAPABILITY(x) \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Reserve for
/// primitives whose correctness the analysis cannot express (CondVar's
/// wait, which unlocks and relocks through std internals); never use it
/// to silence a real finding.
#define DBDC_NO_THREAD_SAFETY_ANALYSIS \
  DBDC_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // DBDC_COMMON_THREAD_ANNOTATIONS_H_
