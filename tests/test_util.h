#ifndef DBDC_TESTS_TEST_UTIL_H_
#define DBDC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "cluster/dbscan.h"
#include "common/dataset.h"
#include "common/distance.h"
#include "common/rng.h"

namespace dbdc {

/// Uniformly random points over [lo, hi]^dim.
inline Dataset RandomDataset(std::size_t n, int dim, double lo, double hi,
                             Rng* rng) {
  Dataset data(dim);
  data.Reserve(n);
  Point p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) p[d] = rng->Uniform(lo, hi);
    data.Add(p);
  }
  return data;
}

/// How strictly border points are compared by ExpectDbscanEquivalent.
enum class BorderPolicy {
  /// Border points must be assigned to the cluster of one of their
  /// adjacent cores, and noise must match exactly (what DBSCAN itself
  /// guarantees regardless of visit order).
  kStrict,
  /// Border points in `b` may additionally be noise or carry the label of
  /// a non-adjacent cluster — the documented deviation of the flat
  /// clustering extracted from an OPTICS ordering ("only some border
  /// objects may be missed", OPTICS Sec. 4.1 equivalence discussion).
  kOpticsRelaxed,
};

/// Asserts that two clusterings are equivalent *as DBSCAN results* over
/// the same data and parameters: identical core flags, identical
/// partition of the core points (up to label renaming), border points
/// assigned to the cluster of one of their adjacent cores, and identical
/// noise. This is the strongest equality DBSCAN guarantees — the cluster
/// of a border point legitimately depends on visit order.
inline void ExpectDbscanEquivalent(
    const Dataset& data, const Metric& metric, const DbscanParams& params,
    const Clustering& a, const Clustering& b,
    BorderPolicy border_policy = BorderPolicy::kStrict) {
  ASSERT_EQ(a.labels.size(), data.size());
  ASSERT_EQ(b.labels.size(), data.size());
  const std::size_t n = data.size();
  // 1. Core flags must match exactly.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.is_core[i], b.is_core[i]) << "core flag mismatch at " << i;
  }
  // 2. Core partition must match via a consistent bijection.
  std::map<ClusterId, ClusterId> ab, ba;
  for (std::size_t i = 0; i < n; ++i) {
    if (!a.is_core[i]) continue;
    const ClusterId la = a.labels[i];
    const ClusterId lb = b.labels[i];
    ASSERT_GE(la, 0) << "core point " << i << " unlabeled in a";
    ASSERT_GE(lb, 0) << "core point " << i << " unlabeled in b";
    const auto [it1, ins1] = ab.emplace(la, lb);
    ASSERT_EQ(it1->second, lb) << "core partition differs at point " << i;
    const auto [it2, ins2] = ba.emplace(lb, la);
    ASSERT_EQ(it2->second, la) << "core partition differs at point " << i;
  }
  // 3. Non-core points: noise status is deterministic; a labeled border
  // point must carry the label of some core within eps.
  for (std::size_t i = 0; i < n; ++i) {
    if (a.is_core[i]) continue;
    std::vector<ClusterId> adjacent_a, adjacent_b;
    for (std::size_t j = 0; j < n; ++j) {
      if (!a.is_core[j]) continue;
      if (metric.Distance(data.point(i), data.point(j)) <= params.eps) {
        adjacent_a.push_back(a.labels[j]);
        adjacent_b.push_back(b.labels[j]);
      }
    }
    if (adjacent_a.empty()) {
      EXPECT_EQ(a.labels[i], kNoise) << "point " << i;
      EXPECT_EQ(b.labels[i], kNoise) << "point " << i;
    } else {
      EXPECT_NE(std::find(adjacent_a.begin(), adjacent_a.end(), a.labels[i]),
                adjacent_a.end())
          << "border point " << i << " not adjacent to its cluster in a";
      if (border_policy == BorderPolicy::kStrict) {
        EXPECT_NE(
            std::find(adjacent_b.begin(), adjacent_b.end(), b.labels[i]),
            adjacent_b.end())
            << "border point " << i << " not adjacent to its cluster in b";
      } else {
        // Relaxed: noise or any existing cluster id is acceptable for a
        // border point of b.
        EXPECT_GE(b.labels[i], kNoise);
        EXPECT_LT(b.labels[i], b.num_clusters);
      }
    }
  }
}

}  // namespace dbdc

#endif  // DBDC_TESTS_TEST_UTIL_H_
