#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/kmeans.h"
#include "test_util.h"

namespace dbdc {
namespace {

std::vector<PointId> AllIds(const Dataset& data) {
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(KMeansTest, SeparatedBlobsConvergeToTheirMeans) {
  Dataset data(2);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    data.Add(Point{rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)});
  }
  for (int i = 0; i < 100; ++i) {
    data.Add(Point{rng.Gaussian(20.0, 0.5), rng.Gaussian(20.0, 0.5)});
  }
  const std::vector<Point> init{{1.0, 1.0}, {19.0, 19.0}};
  const KMeansResult result = RunKMeans(data, AllIds(data), init, {});
  EXPECT_NEAR(result.centroids[0][0], 0.0, 0.3);
  EXPECT_NEAR(result.centroids[0][1], 0.0, 0.3);
  EXPECT_NEAR(result.centroids[1][0], 20.0, 0.3);
  EXPECT_NEAR(result.centroids[1][1], 20.0, 0.3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(result.assignment[i], 0);
  for (int i = 100; i < 200; ++i) EXPECT_EQ(result.assignment[i], 1);
}

TEST(KMeansTest, FixedPointWhenInitializedAtTheMeans) {
  Dataset data(1);
  data.Add(Point{0.0});
  data.Add(Point{2.0});
  data.Add(Point{10.0});
  data.Add(Point{12.0});
  const std::vector<Point> init{{1.0}, {11.0}};
  const KMeansResult result = RunKMeans(data, AllIds(data), init, {});
  EXPECT_DOUBLE_EQ(result.centroids[0][0], 1.0);
  EXPECT_DOUBLE_EQ(result.centroids[1][0], 11.0);
  EXPECT_LE(result.iterations, 2);
  EXPECT_DOUBLE_EQ(result.inertia, 4.0);
}

TEST(KMeansTest, KEqualsOneYieldsTheCentroidOfAllMembers) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  data.Add(Point{2.0, 0.0});
  data.Add(Point{0.0, 2.0});
  data.Add(Point{2.0, 2.0});
  const KMeansResult result =
      RunKMeans(data, AllIds(data), {{5.0, 5.0}}, {});
  EXPECT_DOUBLE_EQ(result.centroids[0][0], 1.0);
  EXPECT_DOUBLE_EQ(result.centroids[0][1], 1.0);
}

TEST(KMeansTest, SubsetOfMembersOnly) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) data.Add(Point{static_cast<double>(i)});
  // Only the even ids participate.
  const std::vector<PointId> members{0, 2, 4, 6, 8};
  const KMeansResult result = RunKMeans(data, members, {{0.0}}, {});
  EXPECT_DOUBLE_EQ(result.centroids[0][0], 4.0);
  EXPECT_EQ(result.assignment.size(), members.size());
}

TEST(KMeansTest, EmptyClusterIsRepairedAndKStaysConstant) {
  Dataset data(1);
  data.Add(Point{0.0});
  data.Add(Point{1.0});
  data.Add(Point{10.0});
  // Both initial centroids sit on the left; the right point must
  // eventually claim one (repair keeps k = 2 populated).
  const std::vector<Point> init{{0.0}, {100.0}};
  const KMeansResult result = RunKMeans(data, AllIds(data), init, {});
  EXPECT_EQ(result.centroids.size(), 2u);
  std::vector<int> counts(2, 0);
  for (const int a : result.assignment) ++counts[a];
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
}

TEST(KMeansTest, InertiaNeverIncreasesWithMoreCentroids) {
  Rng rng(3);
  const Dataset data = RandomDataset(200, 2, 0.0, 10.0, &rng);
  const std::vector<PointId> members = AllIds(data);
  double prev = std::numeric_limits<double>::max();
  for (int k = 1; k <= 5; ++k) {
    Rng init_rng(17);
    const std::vector<Point> init =
        KMeansPlusPlusInit(data, members, k, &init_rng);
    const KMeansResult result = RunKMeans(data, members, init, {});
    EXPECT_LE(result.inertia, prev * 1.0001) << "k=" << k;
    prev = result.inertia;
  }
}

TEST(KMeansTest, MoreMembersThanCentroidsNotRequired) {
  Dataset data(1);
  data.Add(Point{5.0});
  const std::vector<Point> init{{0.0}, {10.0}};
  const KMeansResult result = RunKMeans(data, {0}, init, {});
  // One centroid holds the point, the other stays empty; no crash.
  EXPECT_EQ(result.assignment.size(), 1u);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeansPlusPlusTest, DeterministicGivenSeedAndSpreadsCentroids) {
  Rng rng(4);
  const Dataset data = RandomDataset(100, 2, 0.0, 10.0, &rng);
  const std::vector<PointId> members = AllIds(data);
  Rng r1(9), r2(9);
  const auto a = KMeansPlusPlusInit(data, members, 4, &r1);
  const auto b = KMeansPlusPlusInit(data, members, 4, &r2);
  ASSERT_EQ(a.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  // All chosen centroids are distinct data points.
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i], a[j]);
    }
  }
}

TEST(KMeansTest, MaxIterationsRespected) {
  Rng rng(5);
  const Dataset data = RandomDataset(500, 2, 0.0, 10.0, &rng);
  KMeansParams params;
  params.max_iterations = 1;
  Rng init_rng(6);
  const auto init = KMeansPlusPlusInit(data, AllIds(data), 8, &init_rng);
  const KMeansResult result = RunKMeans(data, AllIds(data), init, params);
  EXPECT_EQ(result.iterations, 1);
}

}  // namespace
}  // namespace dbdc
