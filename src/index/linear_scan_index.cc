#include "index/linear_scan_index.h"

#include <algorithm>
#include <utility>

#include "common/simd_kernels.h"
#include "obs/metrics.h"

namespace dbdc {

LinearScanIndex::LinearScanIndex(const Dataset& data, const Metric& metric,
                                 bool index_all)
    : data_(&data), metric_(&metric), euclidean_(IsEuclideanMetric(metric)) {
  if (index_all) {
    present_.assign(data.size(), true);
    count_ = data.size();
  }
}

void LinearScanIndex::RangeQuery(std::span<const double> q, double eps,
                                 std::vector<PointId>* out) const {
  out->clear();
  if (euclidean_) {
    // Devirtualized fast path: squared distance against eps², no sqrt.
    // Present points form contiguous runs of the row-major store, so each
    // run is scored as one block through the batched SIMD kernel.
    const double eps_sq = eps * eps;
    const std::size_t dim = static_cast<std::size_t>(data_->dim());
    if (simd::ReferenceScanEnabled()) {
      // The pre-batching scan, point by point: the bench baseline the
      // blocked path below is measured against.
      for (PointId id = 0; id < static_cast<PointId>(present_.size()); ++id) {
        if (!present_[static_cast<std::size_t>(id)]) continue;
        if (simd::ReferenceSquaredL2(
                q.data(), data_->raw() + static_cast<std::size_t>(id) * dim,
                data_->dim()) <= eps_sq) {
          out->push_back(id);
        }
      }
      if (count_ != 0) {
        if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
          metrics->Add(obs::Counter::kFastPathCandidates, count_);
          metrics->Add(obs::Counter::kFastPathPruned, count_ - out->size());
        }
      }
      return;
    }
    simd::KernelStats kstats;
    if (count_ == present_.size()) {
      // Nothing erased (the static-DBSCAN common case): the whole store is
      // one run. Skipping the per-point present_ walk matters — scanning
      // the bit vector costs as much as the scalar distance kernel itself.
      simd::FilterRowsSquaredEuclidean(q.data(), data_->raw(), count_,
                                       data_->dim(), eps_sq, 0, out, &kstats);
    } else {
      const PointId n = static_cast<PointId>(present_.size());
      PointId id = 0;
      while (id < n) {
        if (!present_[static_cast<std::size_t>(id)]) {
          ++id;
          continue;
        }
        PointId run_end = id + 1;
        while (run_end < n && present_[static_cast<std::size_t>(run_end)]) {
          ++run_end;
        }
        simd::FilterRowsSquaredEuclidean(
            q.data(), data_->raw() + static_cast<std::size_t>(id) * dim,
            static_cast<std::size_t>(run_end - id), data_->dim(), eps_sq, id,
            out, &kstats);
        id = run_end;
      }
    }
    if (count_ != 0) {
      if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
        metrics->Add(obs::Counter::kFastPathCandidates, count_);
        metrics->Add(obs::Counter::kFastPathPruned, count_ - out->size());
        metrics->Add(obs::Counter::kSimdBlocksScored, kstats.blocks_scored);
        metrics->Add(obs::Counter::kSimdCandidatesFiltered,
                     kstats.candidates_filtered);
      }
    }
    return;
  }
  for (PointId id = 0; id < static_cast<PointId>(present_.size()); ++id) {
    if (!present_[id]) continue;
    if (metric_->Distance(q, data_->point(id)) <= eps) out->push_back(id);
  }
}

void LinearScanIndex::KnnQuery(std::span<const double> q, int k,
                               std::vector<PointId>* out) const {
  out->clear();
  if (k <= 0) return;
  // (distance, id) max-heap of the best k so far. Offers compare whole
  // pairs, pinning ties to (distance, id) ascending — the cross-index
  // KnnQuery contract (neighbor_index.h).
  std::vector<std::pair<double, PointId>> heap;
  heap.reserve(static_cast<std::size_t>(k) + 1);
  for (PointId id = 0; id < static_cast<PointId>(present_.size()); ++id) {
    if (!present_[id]) continue;
    const double d = metric_->Distance(q, data_->point(id));
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace_back(d, id);
      std::push_heap(heap.begin(), heap.end());
    } else if (std::make_pair(d, id) < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {d, id};
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  out->reserve(heap.size());
  for (const auto& [d, id] : heap) out->push_back(id);
}

void LinearScanIndex::Insert(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  if (static_cast<std::size_t>(id) >= present_.size()) {
    present_.resize(data_->size(), false);
  }
  DBDC_CHECK(!present_[id]);
  present_[id] = true;
  ++count_;
}

void LinearScanIndex::Erase(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < present_.size());
  DBDC_CHECK(present_[id]);
  present_[id] = false;
  --count_;
}

}  // namespace dbdc
