file(REMOVE_RECURSE
  "CMakeFiles/dbdc_distrib.dir/distrib/network.cc.o"
  "CMakeFiles/dbdc_distrib.dir/distrib/network.cc.o.d"
  "CMakeFiles/dbdc_distrib.dir/distrib/partitioner.cc.o"
  "CMakeFiles/dbdc_distrib.dir/distrib/partitioner.cc.o.d"
  "libdbdc_distrib.a"
  "libdbdc_distrib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_distrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
