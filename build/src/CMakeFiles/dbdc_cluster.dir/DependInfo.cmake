
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/dbscan.cc" "src/CMakeFiles/dbdc_cluster.dir/cluster/dbscan.cc.o" "gcc" "src/CMakeFiles/dbdc_cluster.dir/cluster/dbscan.cc.o.d"
  "/root/repo/src/cluster/incremental_dbscan.cc" "src/CMakeFiles/dbdc_cluster.dir/cluster/incremental_dbscan.cc.o" "gcc" "src/CMakeFiles/dbdc_cluster.dir/cluster/incremental_dbscan.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/dbdc_cluster.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/dbdc_cluster.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/optics.cc" "src/CMakeFiles/dbdc_cluster.dir/cluster/optics.cc.o" "gcc" "src/CMakeFiles/dbdc_cluster.dir/cluster/optics.cc.o.d"
  "/root/repo/src/cluster/param_estimation.cc" "src/CMakeFiles/dbdc_cluster.dir/cluster/param_estimation.cc.o" "gcc" "src/CMakeFiles/dbdc_cluster.dir/cluster/param_estimation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbdc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
