file(REMOVE_RECURSE
  "libdbdc_core.a"
)
