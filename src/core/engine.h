#ifndef DBDC_CORE_ENGINE_H_
#define DBDC_CORE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/aggregator.h"
#include "core/dbdc.h"
#include "core/server.h"
#include "core/site.h"
#include "core/stage_stats.h"
#include "core/streaming_site.h"
#include "distrib/network.h"
#include "distrib/protocol.h"
#include "distrib/topology.h"
#include "distrib/transport.h"

namespace dbdc {

/// State shared by every stage of an engine run (DESIGN.md §8): the
/// transport the models cross, the reliable channel over it (engaged iff
/// the protocol is enabled — one channel for the whole run, so frame
/// sequence numbers are continuous across transmit and broadcast), the
/// virtual clock the continuous mode advances, the site pool (engaged iff
/// parallel_sites), and the per-stage timing/byte breakdown.
struct RunContext {
  Transport* transport = nullptr;
  std::optional<ReliableChannel> channel;
  /// Virtual seconds elapsed across Tick()s (continuous mode only; batch
  /// transfers each start their own clock at 0, as in the protocol spec).
  double virtual_now_sec = 0.0;
  /// One worker per site when parallel_sites is set; null = sequential.
  std::unique_ptr<ThreadPool> site_pool;
  std::vector<StageStats> stages;
};

/// The DBDC pipeline as a long-lived object built from explicit,
/// individually-testable stages:
///
///   Partition -> LocalCluster -> BuildLocalModel -> Transmit
///             -> MergeGlobal -> Broadcast -> Relabel
///
/// Run() drives all seven in order and is bit-identical — labels, global
/// model, and byte counters — to the historical monolithic RunDbdc()
/// (the golden equivalence test freezes the monolith and asserts this).
/// Stages can also be driven one at a time; calling them out of order is
/// a contract violation (DBDC_CHECK).
///
/// Local-model and global-model construction are pluggable strategies:
/// SetLocalModelStrategy / SetGlobalModelStrategy (before the respective
/// stage runs) swap in e.g. OpticsGlobalStrategy, which is how the
/// OPTICS-global variant inherits transport byte-accounting, the
/// protocol/degraded mode, and every DbdcResult counter for free.
///
/// The engine borrows `data`, `metric`, and `network` (null = a private
/// lossless SimulatedNetwork); all must outlive it. One engine = one run;
/// construct a fresh engine per run.
class DbdcEngine {
 public:
  DbdcEngine(const Dataset& data, const Metric& metric,
             const DbdcConfig& config, Transport* network = nullptr);

  DbdcEngine(const DbdcEngine&) = delete;
  DbdcEngine& operator=(const DbdcEngine&) = delete;

  /// Swaps the local-model construction of the BuildLocalModel stage.
  /// Null (default) = the (model_type, condense_eps) legacy path. Must be
  /// called before BuildLocalModel(); the strategy must outlive the
  /// engine.
  void SetLocalModelStrategy(const LocalModelStrategy* strategy);

  /// Swaps the global-model construction of the MergeGlobal stage. Null
  /// (default) = the paper's DBSCAN merge. Must be called before
  /// MergeGlobal(); the strategy must outlive the engine.
  void SetGlobalModelStrategy(const GlobalModelStrategy* strategy);

  /// Stage 1: horizontal distribution of the data onto the sites
  /// (config.partitioner, seeded by config.seed).
  void Partition();
  /// Stage 2: independent local DBSCAN on every site (concurrently on
  /// the site pool when parallel_sites).
  void LocalCluster();
  /// Stage 3: local model determination on every site, via the local
  /// strategy when set.
  void BuildLocalModel();
  /// Stage 4: local models cross the uplink (raw, or framed under the
  /// protocol) and the server ingests what arrived intact in time.
  void Transmit();
  /// Stage 5: the server merges the received models into the global
  /// model, via the global strategy when set.
  void MergeGlobal();
  /// Stage 6: the encoded global model crosses the downlink to every
  /// site (delivery may fail under the protocol).
  void Broadcast();
  /// Stage 7: sites that received the broadcast relabel their objects;
  /// points of unreached sites keep kNoise.
  void Relabel();

  /// Drives all seven stages in order and returns the result.
  DbdcResult Run();

  /// The accumulated result after Relabel(); call at most once.
  DbdcResult TakeResult();

  const RunContext& context() const { return ctx_; }
  const std::vector<Site>& sites() const { return sites_; }
  const Server& server() const { return server_; }
  /// The aggregation topology the run routes over (config.topology;
  /// DESIGN.md §13). Flat reduces every routed stage to the historical
  /// star, byte-identically.
  const Topology& topology() const { return topology_; }

 private:
  template <typename Fn>
  void ForEachSite(Fn&& fn);

  /// Lays out result_.level_stats from the topology shape and the
  /// per-aggregator uplink accounting gathered during Transmit().
  void FillLevelStats();

  /// Runs `body` as stage `id`: enforces pipeline order and records the
  /// stage's wall-clock seconds and transport byte deltas into
  /// ctx_.stages.
  template <typename Fn>
  void RunStage(StageId id, Fn&& body);

  const Dataset* data_;
  const Metric* metric_;
  DbdcConfig config_;
  SiteConfig site_config_;
  SimulatedNetwork own_network_;
  RunContext ctx_;
  const LocalModelStrategy* local_strategy_ = nullptr;
  const GlobalModelStrategy* global_strategy_ = nullptr;
  std::vector<Site> sites_;
  Server server_;
  Topology topology_;
  /// Intermediate merge nodes, keyed by aggregator endpoint (empty under
  /// the flat topology). Created at Transmit().
  std::map<EndpointId, AggregatorNode> aggregators_;
  /// Uplink payload bytes ingested per endpoint (root + aggregators) and
  /// per-hop acceptance, gathered during Transmit() for level_stats.
  std::map<EndpointId, std::uint64_t> bytes_in_by_node_;
  std::map<EndpointId, bool> uplink_hop_ok_;
  std::vector<std::uint8_t> global_bytes_;
  /// Broadcast payload per site; disengaged = delivery failed.
  std::vector<std::optional<std::vector<std::uint8_t>>> received_;
  DbdcResult result_;
  int next_stage_ = 0;
  bool result_taken_ = false;
};

/// The engine's continuous mode: the long-lived deployment of Sec. 4,
/// where sites maintain their clusterings incrementally and "only if the
/// local clustering changes considerably" retransmit a local model.
///
/// The caller owns the StreamingSites, feeds them Insert/Erase, and calls
/// Tick(). Each tick, every attached site whose RefreshPolicy fires
/// re-derives its model and pushes it over the Transport (v3 codec;
/// framed under the protocol when enabled). The server *upserts* the
/// site's contribution, rebuilds the global model only when at least one
/// refresh arrived, and re-broadcasts it for relabeling — so quiet ticks
/// cost zero bytes and zero merges, the whole point over re-running
/// batch DBDC per tick.
///
/// Without the protocol, a dropped or corrupted refresh is counted lost
/// and the site's previous model simply stays in effect (the stream
/// self-heals on the next refresh); with it, delivery gets the full
/// retry/deadline treatment and the virtual clock advances by the
/// slowest transfer of the tick.
///
/// Membership is elastic (DESIGN.md §13): sites may AttachSite()
/// mid-stream (the upsert path needs no warning), retire explicitly
/// (RetireSite — their stored model is evicted from the global model),
/// or expire via TTL (SetSiteTtl — a site whose refreshes keep failing
/// to arrive is presumed dead after `ttl` silent ticks and its stale
/// model evicted; a later successful refresh re-admits it). Refreshes
/// route over an aggregation Topology (SetTopology; default flat):
/// aggregator nodes upsert child refreshes, re-merge, and forward one
/// intermediate model up, retrying on the next tick when a forward is
/// lost. FailAggregator() kills a merge node: its children re-parent
/// deterministically (Topology::RemoveAggregator) and re-deliver their
/// current models to the new parent on the next tick.
class ContinuousDbdc {
 public:
  /// Cumulative counters over the run's lifetime.
  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t refreshes_sent = 0;
    std::uint64_t refreshes_applied = 0;
    std::uint64_t refreshes_lost = 0;
    std::uint64_t global_rebuilds = 0;
    std::uint64_t broadcasts_delivered = 0;
    std::uint64_t broadcasts_lost = 0;
    std::uint64_t protocol_retries = 0;
    /// Elastic membership (DESIGN.md §13).
    std::uint64_t sites_retired = 0;
    std::uint64_t sites_expired = 0;
    std::uint64_t aggregator_forwards = 0;
    std::uint64_t aggregator_forwards_lost = 0;
    std::uint64_t aggregators_failed = 0;
  };

  /// `metric`, `network`, and any strategy must outlive the object.
  /// Null network = a private lossless SimulatedNetwork.
  ContinuousDbdc(const Metric& metric, const GlobalModelParams& params,
                 const ProtocolConfig& protocol,
                 Transport* network = nullptr);

  ContinuousDbdc(const ContinuousDbdc&) = delete;
  ContinuousDbdc& operator=(const ContinuousDbdc&) = delete;

  /// Swaps the server's global merge (null = the paper's DBSCAN merge).
  void SetGlobalModelStrategy(const GlobalModelStrategy* strategy) {
    server_.SetGlobalStrategy(strategy);
  }

  /// Routes the stream over `topology` (copied) instead of the default
  /// flat star; `aggregator_condense_eps` selects the merge nodes'
  /// condensation radius (0 = lossless). Must be called before the first
  /// AttachSite. Sites the topology does not pre-track join under the
  /// deterministic rule of Topology::AddSite.
  void SetTopology(Topology topology, double aggregator_condense_eps = 0.0);

  /// Evicts attached sites that have not proven alive — no applied
  /// refresh and never quiet-while-reachable — for `ticks` consecutive
  /// ticks: their stale model leaves the global model until a later
  /// refresh re-admits them. 0 (default) disables expiry.
  void SetSiteTtl(std::uint64_t ticks) { ttl_ticks_ = ticks; }

  /// Registers a streaming site (borrowed; must outlive the object).
  /// Sites may join mid-stream; their first refresh upserts like any
  /// other.
  void AttachSite(StreamingSite* site);

  /// Explicitly retires an attached site: its stored model is evicted
  /// (the next tick rebuilds the global model without it) and the site
  /// stops participating in ticks. Its labels(index) entry stays frozen.
  void RetireSite(int site_id);

  /// Kills an aggregator of the current topology: its children are
  /// re-parented deterministically onto its own parent and re-deliver
  /// their current models on the next tick; the dead node's intermediate
  /// model is evicted from its parent.
  void FailAggregator(EndpointId aggregator);

  /// One pass over the attached sites: refresh-if-stale, upsert at the
  /// parent, TTL sweep, aggregator re-merge/forward, rebuild +
  /// re-broadcast iff the root's view changed. Returns the number of
  /// refreshes applied at their first hop this tick.
  int Tick();

  /// Latest relabeled (active point id, global label) pairs of the
  /// attached site at `index` (in AttachSite order); empty until the
  /// first broadcast reaches it; frozen once the site retires.
  const std::vector<std::pair<PointId, ClusterId>>& labels(
      std::size_t index) const {
    DBDC_CHECK(index < members_.size());
    return members_[index].labels;
  }

  const Stats& stats() const { return stats_; }
  const Server& server() const { return server_; }
  const Transport& transport() const { return *ctx_.transport; }
  const Topology& topology() const { return topology_; }
  double virtual_now_sec() const { return ctx_.virtual_now_sec; }

 private:
  /// Per-site membership state, in AttachSite order (never erased:
  /// labels() indices stay stable across retirements).
  struct Member {
    StreamingSite* site = nullptr;
    std::vector<std::pair<PointId, ClusterId>> labels;
    /// Last tick index the site proved alive (applied refresh, or quiet
    /// with nothing pending); attach counts as alive.
    std::uint64_t last_alive_tick = 0;
    bool retired = false;
    /// TTL fired: the stored model is evicted until a refresh arrives.
    bool expired = false;
    /// Re-send the full model next tick even if the RefreshPolicy is
    /// quiet (set on re-parenting and on expiry, so recovery does not
    /// wait for the next structural change).
    bool force_refresh = false;
  };

  /// Sends `payload` from `from` to `to` on this tick's uplink/downlink
  /// leg; returns the delivered payload (nullopt = lost). Advances
  /// `*transfer_sec` by the transfer's virtual duration. The collection
  /// deadline applies to uplink refreshes only (`enforce_deadline`) —
  /// broadcast delivery has never been deadline-gated.
  std::optional<std::vector<std::uint8_t>> TickTransfer(
      EndpointId from, EndpointId to, std::vector<std::uint8_t> payload,
      double* transfer_sec, bool enforce_deadline);
  /// Evicts `child`'s stored model from `parent` (the root server or an
  /// aggregator); returns whether anything was evicted. Marks the parent
  /// dirty / the root changed.
  bool EvictFromParent(EndpointId parent, int child_id);

  ProtocolConfig protocol_;
  SimulatedNetwork own_network_;
  RunContext ctx_;
  Server server_;
  const Metric* metric_;
  GlobalModelParams global_params_;
  Topology topology_;
  double aggregator_condense_eps_ = 0.0;
  /// Merge-node state, keyed by aggregator endpoint.
  std::map<EndpointId, AggregatorNode> aggregators_;
  /// Aggregators whose child set changed since their last successful
  /// forward (re-merged and re-sent next tick — lost forwards retry).
  std::set<EndpointId> dirty_aggregators_;
  /// The root's stored models changed outside a tick (RetireSite /
  /// FailAggregator); the next tick rebuilds even with zero refreshes.
  bool rebuild_pending_ = false;
  std::vector<Member> members_;
  std::map<int, std::size_t> member_index_;
  std::uint64_t ttl_ticks_ = 0;
  Stats stats_;
};

}  // namespace dbdc

#endif  // DBDC_CORE_ENGINE_H_
