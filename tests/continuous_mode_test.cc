// Continuous-mode engine suite (ISSUE 4): StreamingSites push
// RefreshPolicy-triggered model refreshes over a real Transport (v3
// codec, protocol optional), the server upserts per-site contributions
// and rebuilds the global model only when a refresh arrives. Covers
// refresh-triggered rebuilds (quiet ticks are free), codec/transport
// routing (streaming mode now has byte accounting), upsert semantics, a
// dead streaming site under FaultyNetwork, and the headline uplink
// saving over naively re-running batch DBDC per tick.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/dbdc.h"
#include "core/engine.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "distrib/protocol.h"

namespace dbdc {
namespace {

constexpr DbscanParams kParams{1.0, 4};

GlobalModelParams MakeGlobalParams() {
  GlobalModelParams params;
  params.min_pts_global = 2;
  return params;
}

StreamingSite MakeStreamingSite(int site_id,
                                const RefreshPolicy& policy = {}) {
  return StreamingSite(site_id, Euclidean(), kParams, 2,
                       LocalModelType::kScor, policy);
}

void InsertBlob(StreamingSite* site, double cx, double cy, int count,
                Rng* rng, std::vector<PointId>* ids = nullptr) {
  for (int i = 0; i < count; ++i) {
    const PointId id = site->Insert(
        Point{rng->Gaussian(cx, 0.3), rng->Gaussian(cy, 0.3)});
    if (ids != nullptr) ids->push_back(id);
  }
}

TEST(ContinuousModeTest, RefreshTriggersRebuildQuietTicksAreFree) {
  SimulatedNetwork net;
  ContinuousDbdc continuous(Euclidean(), MakeGlobalParams(),
                            ProtocolConfig{}, &net);
  StreamingSite a = MakeStreamingSite(0);
  StreamingSite b = MakeStreamingSite(1);
  continuous.AttachSite(&a);
  continuous.AttachSite(&b);

  Rng rng(5);
  InsertBlob(&a, 0.0, 0.0, 20, &rng);
  InsertBlob(&b, 10.0, 10.0, 20, &rng);

  // First tick: both sites are stale (first model), so two refreshes,
  // one rebuild, one broadcast to each site.
  EXPECT_EQ(continuous.Tick(), 2);
  EXPECT_EQ(continuous.stats().refreshes_sent, 2u);
  EXPECT_EQ(continuous.stats().refreshes_applied, 2u);
  EXPECT_EQ(continuous.stats().global_rebuilds, 1u);
  EXPECT_EQ(continuous.stats().broadcasts_delivered, 2u);
  const std::uint64_t uplink_after_first = net.BytesUplink();
  const std::uint64_t downlink_after_first = net.BytesDownlink();
  EXPECT_GT(uplink_after_first, 0u);
  EXPECT_GT(downlink_after_first, 0u);

  // Quiet ticks: no structural change, no traffic, no rebuild.
  for (int t = 0; t < 5; ++t) EXPECT_EQ(continuous.Tick(), 0);
  EXPECT_EQ(continuous.stats().global_rebuilds, 1u);
  EXPECT_EQ(net.BytesUplink(), uplink_after_first);
  EXPECT_EQ(net.BytesDownlink(), downlink_after_first);

  // A new far-away cluster on one site: exactly one refresh crosses the
  // wire and exactly one rebuild happens.
  InsertBlob(&a, 30.0, 30.0, 20, &rng);
  EXPECT_EQ(continuous.Tick(), 1);
  EXPECT_EQ(continuous.stats().refreshes_sent, 3u);
  EXPECT_EQ(continuous.stats().global_rebuilds, 2u);
  EXPECT_GT(net.BytesUplink(), uplink_after_first);

  // Both sites hold fresh labels covering their active points.
  EXPECT_EQ(continuous.labels(0).size(), a.clustering().size());
  EXPECT_EQ(continuous.labels(1).size(), b.clustering().size());
  EXPECT_EQ(continuous.stats().ticks, 7u);
}

TEST(ContinuousModeTest, ServerUpsertsReplaceNotAppend) {
  SimulatedNetwork net;
  ContinuousDbdc continuous(Euclidean(), MakeGlobalParams(),
                            ProtocolConfig{}, &net);
  StreamingSite site = MakeStreamingSite(3);
  continuous.AttachSite(&site);

  Rng rng(6);
  InsertBlob(&site, 0.0, 0.0, 25, &rng);
  continuous.Tick();
  ASSERT_EQ(continuous.server().num_local_models(), 1u);
  EXPECT_EQ(continuous.server().local_models()[0].site_id, 3);
  const std::size_t reps_before =
      continuous.server().local_models()[0].representatives.size();

  // The structure changes (a second cluster appears), so the policy
  // fires and a second refresh crosses the wire.
  InsertBlob(&site, 15.0, -5.0, 25, &rng);
  continuous.Tick();

  // Still exactly one stored model for the site — replaced, not appended.
  ASSERT_EQ(continuous.server().num_local_models(), 1u);
  EXPECT_EQ(continuous.server().local_models()[0].site_id, 3);
  EXPECT_GT(reps_before, 0u);
  // The replacement describes both clusters now.
  EXPECT_EQ(continuous.server().local_models()[0].num_local_clusters, 2);
  EXPECT_GT(continuous.server().local_models()[0].representatives.size(),
            reps_before);
  EXPECT_EQ(continuous.stats().refreshes_applied, 2u);
  EXPECT_EQ(continuous.stats().global_rebuilds, 2u);
}

// Direct Server upsert semantics (unit-level counterpart).
TEST(ContinuousModeTest, UpsertLocalModelBytesRejectsGarbageUntouched) {
  Server server(Euclidean(), MakeGlobalParams());
  LocalModel model;
  model.site_id = 1;
  model.dim = 2;
  model.num_local_clusters = 1;
  model.representatives.push_back({Point{0.0, 0.0}, 1.0, 0, 5});
  server.UpsertLocalModel(model);
  ASSERT_EQ(server.num_local_models(), 1u);

  const std::vector<std::uint8_t> garbage(16, 0xAB);
  EXPECT_NE(server.UpsertLocalModelBytes(garbage), DecodeStatus::kOk);
  ASSERT_EQ(server.num_local_models(), 1u);
  EXPECT_EQ(server.local_models()[0].representatives.size(), 1u);

  model.representatives.push_back({Point{3.0, 3.0}, 1.0, 0, 7});
  server.UpsertLocalModel(model);
  ASSERT_EQ(server.num_local_models(), 1u);
  EXPECT_EQ(server.local_models()[0].representatives.size(), 2u);

  model.site_id = 2;
  server.UpsertLocalModel(model);
  EXPECT_EQ(server.num_local_models(), 2u);
}

TEST(ContinuousModeTest, StreamingExchangeIsByteAccountedAndChecksummed) {
  SimulatedNetwork net;
  ProtocolConfig protocol;
  protocol.enabled = true;
  ContinuousDbdc continuous(Euclidean(), MakeGlobalParams(), protocol,
                            &net);
  StreamingSite site = MakeStreamingSite(0);
  continuous.AttachSite(&site);

  Rng rng(7);
  InsertBlob(&site, 0.0, 0.0, 30, &rng);
  continuous.Tick();

  // Every payload crossed the wire framed: data frames carry the v3
  // model bytes plus 'DBFP' framing, acks flow back — so uplink and
  // downlink both carry bytes in both legs' directions.
  EXPECT_GT(net.BytesUplink(), 0u);
  EXPECT_GT(net.BytesDownlink(), 0u);
  ASSERT_GE(net.NumMessages(), 4u);  // data + ack per leg, at least.
  bool saw_data = false;
  bool saw_ack = false;
  for (std::size_t i = 0; i < net.NumMessages(); ++i) {
    const auto frame = DecodeFrame(net.Message(i).payload);
    ASSERT_TRUE(frame.has_value()) << "unframed message " << i;
    if (frame->type == FrameType::kData) {
      saw_data = true;
      // The framed payload is the site's v3-encoded model or the global
      // model — both must decode under the checksummed codec.
      if (net.Message(i).to == kServerEndpoint) {
        LocalModel decoded;
        EXPECT_EQ(DecodeLocalModel(frame->payload, &decoded),
                  DecodeStatus::kOk);
        EXPECT_EQ(decoded.site_id, 0);
      } else {
        GlobalModel decoded;
        EXPECT_EQ(DecodeGlobalModel(frame->payload, &decoded),
                  DecodeStatus::kOk);
      }
    } else {
      saw_ack = true;
    }
  }
  EXPECT_TRUE(saw_data);
  EXPECT_TRUE(saw_ack);
  EXPECT_GT(continuous.virtual_now_sec(), 0.0);
}

TEST(ContinuousModeTest, DeadStreamingSiteDegradesGracefully) {
  SimulatedNetwork inner;
  FaultSpec faults;
  faults.failed_sites = {1};
  faults.seed = 13;
  FaultyNetwork net(&inner, faults);

  ProtocolConfig protocol;
  protocol.enabled = true;
  protocol.max_attempts = 2;
  ContinuousDbdc continuous(Euclidean(), MakeGlobalParams(), protocol,
                            &net);
  StreamingSite alive = MakeStreamingSite(0);
  StreamingSite dead = MakeStreamingSite(1);
  continuous.AttachSite(&alive);
  continuous.AttachSite(&dead);

  Rng rng(8);
  InsertBlob(&alive, 0.0, 0.0, 25, &rng);
  InsertBlob(&dead, 10.0, 10.0, 25, &rng);
  const int applied = continuous.Tick();

  // Only the live site's refresh landed; the dead site's was lost and
  // its broadcast never arrived — but the run carried on.
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(continuous.stats().refreshes_sent, 2u);
  EXPECT_EQ(continuous.stats().refreshes_applied, 1u);
  EXPECT_EQ(continuous.stats().refreshes_lost, 1u);
  EXPECT_EQ(continuous.stats().global_rebuilds, 1u);
  EXPECT_EQ(continuous.stats().broadcasts_delivered, 1u);
  EXPECT_EQ(continuous.stats().broadcasts_lost, 1u);
  ASSERT_EQ(continuous.server().num_local_models(), 1u);
  EXPECT_EQ(continuous.server().local_models()[0].site_id, 0);
  EXPECT_GT(continuous.labels(0).size(), 0u);
  EXPECT_EQ(continuous.labels(1).size(), 0u);

  // The dead site's refresh keeps failing on later ticks but the stream
  // stays usable (retries are bounded, no livelock, no crash).
  InsertBlob(&dead, -10.0, -10.0, 25, &rng);
  continuous.Tick();
  EXPECT_EQ(continuous.stats().refreshes_lost, 2u);
}

// The headline economics (acceptance criterion): a sliding-window stream
// over k sites, where each tick only rarely changes any site's structure
// — the continuous engine uploads a model only when a RefreshPolicy
// fires, while the naive alternative re-runs batch DBDC (k fresh model
// uploads + k broadcasts) every tick. >= 5x fewer uplink bytes.
TEST(ContinuousModeTest, ContinuousUplinkAtLeastFiveTimesCheaperThanBatch) {
  constexpr int kSites = 4;
  constexpr int kTicks = 20;

  RefreshPolicy policy;
  policy.min_cluster_delta = 1;  // Refresh only on structural change.

  SimulatedNetwork net;
  ContinuousDbdc continuous(Euclidean(), MakeGlobalParams(),
                            ProtocolConfig{}, &net);
  std::vector<std::unique_ptr<StreamingSite>> sites;
  sites.reserve(kSites);
  for (int s = 0; s < kSites; ++s) {
    sites.push_back(std::make_unique<StreamingSite>(
        s, Euclidean(), kParams, 2, LocalModelType::kScor, policy));
    continuous.AttachSite(sites.back().get());
  }

  Rng rng(9);
  for (int s = 0; s < kSites; ++s) {
    InsertBlob(sites[s].get(), 12.0 * s, 0.0, 40, &rng);
  }

  std::uint64_t naive_uplink = 0;
  for (int t = 0; t < kTicks; ++t) {
    // Stream churn: points drift within each site's existing cluster —
    // no structural change, so the refresh policies stay quiet.
    for (int s = 0; s < kSites; ++s) {
      InsertBlob(sites[s].get(), 12.0 * s, 0.0, 2, &rng);
    }
    continuous.Tick();

    // The naive alternative: batch DBDC from scratch over the same
    // union-of-sites snapshot, on its own transport.
    Dataset snapshot(2);
    for (const auto& site : sites) {
      const auto& data = site->clustering().data();
      for (PointId p = 0; p < static_cast<PointId>(data.size()); ++p) {
        if (site->clustering().IsActive(p)) snapshot.Add(data.point(p));
      }
    }
    DbdcConfig batch;
    batch.local_dbscan = kParams;
    batch.num_sites = kSites;
    SimulatedNetwork batch_net;
    const DbdcResult batch_result =
        RunDbdc(snapshot, Euclidean(), batch, &batch_net);
    naive_uplink += batch_result.bytes_uplink;
  }

  EXPECT_GT(net.BytesUplink(), 0u);  // The initial models did upload.
  EXPECT_GE(naive_uplink, 5u * net.BytesUplink())
      << "continuous uplink " << net.BytesUplink() << " vs naive "
      << naive_uplink;
  // Structure never changed after the first tick, so exactly one rebuild.
  EXPECT_EQ(continuous.stats().global_rebuilds, 1u);
}

// --- Elastic membership (ISSUE 9) ------------------------------------------

TEST(ContinuousModeTest, RetireSiteEvictsItsModelAndFreezesItsLabels) {
  SimulatedNetwork net;
  ContinuousDbdc continuous(Euclidean(), MakeGlobalParams(),
                            ProtocolConfig{}, &net);
  StreamingSite a = MakeStreamingSite(0);
  StreamingSite b = MakeStreamingSite(1);
  continuous.AttachSite(&a);
  continuous.AttachSite(&b);

  Rng rng(31);
  InsertBlob(&a, 0.0, 0.0, 20, &rng);
  InsertBlob(&b, 10.0, 10.0, 20, &rng);
  continuous.Tick();
  ASSERT_EQ(continuous.server().num_local_models(), 2u);
  const auto frozen = continuous.labels(1);
  ASSERT_FALSE(frozen.empty());

  // Retirement evicts the stored model; the very next tick rebuilds the
  // global model without it even though no refresh arrived.
  continuous.RetireSite(1);
  const std::uint64_t rebuilds_before = continuous.stats().global_rebuilds;
  continuous.Tick();
  EXPECT_EQ(continuous.stats().sites_retired, 1u);
  ASSERT_EQ(continuous.server().num_local_models(), 1u);
  EXPECT_EQ(continuous.server().local_models()[0].site_id, 0);
  EXPECT_EQ(continuous.stats().global_rebuilds, rebuilds_before + 1);

  // The retired site no longer participates: new points on it trigger no
  // refresh, and its labels stay frozen at the pre-retirement value.
  InsertBlob(&b, -10.0, -10.0, 20, &rng);
  const std::uint64_t sent_before = continuous.stats().refreshes_sent;
  continuous.Tick();
  EXPECT_EQ(continuous.stats().refreshes_sent, sent_before);
  EXPECT_EQ(continuous.labels(1), frozen);
}

TEST(ContinuousModeTest, TtlExpiryEvictsVanishedSiteAndRefreshReadmits) {
  // Site 1 goes dark (FaultyNetwork drops everything from/to it) while
  // holding a changing stream, so it keeps trying — and failing — to
  // refresh. After ttl quiet-less ticks its stale model leaves the global
  // model; healing the link re-admits it on the next delivered refresh.
  SimulatedNetwork inner;
  FaultSpec faults;
  faults.failed_sites = {1};
  faults.seed = 33;
  FaultyNetwork net(&inner, faults);

  ProtocolConfig protocol;
  protocol.enabled = true;
  protocol.max_attempts = 2;
  ContinuousDbdc continuous(Euclidean(), MakeGlobalParams(), protocol,
                            &net);
  continuous.SetSiteTtl(3);
  StreamingSite alive = MakeStreamingSite(0);
  StreamingSite dying = MakeStreamingSite(1);
  continuous.AttachSite(&alive);
  continuous.AttachSite(&dying);

  Rng rng(34);
  InsertBlob(&alive, 0.0, 0.0, 20, &rng);
  InsertBlob(&dying, 10.0, 10.0, 20, &rng);
  continuous.Tick();  // Site 1's first refresh is lost: never stored.
  ASSERT_EQ(continuous.server().num_local_models(), 1u);

  // Keep the dying site structurally stale so every tick retries (a
  // pending refresh that keeps failing is not a heartbeat).
  for (int t = 0; t < 3; ++t) {
    InsertBlob(&dying, 10.0 * (t + 2), 10.0 * (t + 2), 20, &rng);
    continuous.Tick();
  }
  EXPECT_EQ(continuous.stats().sites_expired, 1u);
  EXPECT_EQ(continuous.server().num_local_models(), 1u);

  // The link heals: the site's next refresh re-admits its model.
  FaultSpec healed;
  healed.seed = 33;
  net.SetSpec(healed);
  InsertBlob(&dying, -20.0, -20.0, 20, &rng);
  continuous.Tick();
  EXPECT_EQ(continuous.server().num_local_models(), 2u);
  EXPECT_EQ(continuous.stats().sites_expired, 1u);  // No re-expiry.
}

TEST(ContinuousModeTest, SiteJoinsMidStreamAndParticipatesImmediately) {
  SimulatedNetwork net;
  ContinuousDbdc continuous(Euclidean(), MakeGlobalParams(),
                            ProtocolConfig{}, &net);
  StreamingSite first = MakeStreamingSite(0);
  continuous.AttachSite(&first);

  Rng rng(35);
  InsertBlob(&first, 0.0, 0.0, 20, &rng);
  continuous.Tick();
  ASSERT_EQ(continuous.server().num_local_models(), 1u);

  // A second site joins mid-stream: its first refresh upserts like any
  // other and the next broadcast labels it too.
  StreamingSite joiner = MakeStreamingSite(7);
  continuous.AttachSite(&joiner);
  InsertBlob(&joiner, 10.0, 10.0, 20, &rng);
  continuous.Tick();
  EXPECT_EQ(continuous.server().num_local_models(), 2u);
  EXPECT_FALSE(continuous.labels(1).empty());
  EXPECT_TRUE(continuous.topology().IsSite(7));
}

}  // namespace
}  // namespace dbdc
