#include "distrib/network.h"

#include "obs/metrics.h"

namespace dbdc {

std::size_t SimulatedNetwork::Send(EndpointId from, EndpointId to,
                                   std::vector<std::uint8_t> payload) {
  // Wire accounting mirrors BytesUplink()/BytesDownlink() exactly: a
  // message to the server is uplink charged to the sending site, a
  // message from the server is downlink charged to the receiving site —
  // so an attached registry reconciles byte-for-byte with the transport
  // counters (and with DbdcResult's wire counters).
  if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
    if (to == kServerEndpoint) {
      metrics->AddSiteBytes(obs::Counter::kBytesUplink, from,
                            payload.size());
    } else if (from == kServerEndpoint) {
      metrics->AddSiteBytes(obs::Counter::kBytesDownlink, to,
                            payload.size());
    }
  }
  messages_.push_back({from, to, std::move(payload)});
  return messages_.size() - 1;
}

std::vector<const NetworkMessage*> SimulatedNetwork::Inbox(
    EndpointId endpoint) const {
  std::vector<const NetworkMessage*> inbox;
  for (const NetworkMessage& m : messages_) {
    if (m.to == endpoint) inbox.push_back(&m);
  }
  return inbox;
}

std::uint64_t SimulatedNetwork::BytesUplink() const {
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) {
    if (m.to == kServerEndpoint) total += m.payload.size();
  }
  return total;
}

std::uint64_t SimulatedNetwork::BytesDownlink() const {
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) {
    if (m.from == kServerEndpoint) total += m.payload.size();
  }
  return total;
}

std::uint64_t SimulatedNetwork::BytesTotal() const {
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) total += m.payload.size();
  return total;
}

}  // namespace dbdc
