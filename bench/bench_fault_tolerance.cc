// Fault-tolerance benchmark: how gracefully does DBDC degrade when the
// wide-area links misbehave?
//
// Sweeps message drop rate x failed-site count over a FaultyNetwork with
// the reliable-delivery protocol enabled, and scores every degraded run
// against the complete (fault-free) run with the paper's Sec. 8 quality
// criteria P^I / P^II. The protocol counters expose what the faults cost
// on the wire (retries, extra bytes).
//
// With --out FILE the results are emitted as machine-readable JSON
// (schema "dbdc-fault-bench-v1"); --quick shrinks the dataset and the
// sweep for CI smoke runs. Every fault stream is seeded, so two runs of
// this benchmark produce identical deliveries, failures, and quality
// numbers (only the timing columns vary with the hardware).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "eval/quality.h"

namespace {

struct FaultRow {
  double drop_rate = 0.0;
  int failed_sites = 0;
  int sites_reporting = 0;
  int sites_failed = 0;
  int sites_relabeled = 0;
  std::uint64_t retries = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t bytes_uplink = 0;
  double p1 = 0.0;
  double p2 = 0.0;
  double noise_fraction = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using dbdc::bench::Fmt;
  dbdc::bench::HarnessOptions options;
  if (!dbdc::bench::ParseHarnessOptions(argc, argv, &options)) return 2;
  const dbdc::bench::HarnessMetrics metrics;
  const bool quick = options.quick;
  const std::string& out_path = options.out_path;

  const dbdc::SyntheticDataset synth =
      quick ? dbdc::MakeTestDatasetC() : dbdc::MakeTestDatasetA();
  const int num_sites = 8;

  dbdc::DbdcConfig config = dbdc::bench::MakeDbdcConfig(synth, num_sites);
  config.protocol.enabled = true;
  config.protocol.max_attempts = 6;

  // The fault-free protocol run is the "complete global model" baseline
  // every degraded run is scored against.
  const dbdc::DbdcResult complete =
      dbdc::RunDbdc(synth.data, dbdc::Euclidean(), config);
  if (complete.sites_failed != 0) {
    std::fprintf(stderr, "FATAL: fault-free run reports failed sites\n");
    return 1;
  }

  const std::vector<double> drop_rates =
      quick ? std::vector<double>{0.0, 0.25}
            : std::vector<double>{0.0, 0.1, 0.25, 0.5};
  const std::vector<int> failure_counts =
      quick ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 4};

  std::vector<FaultRow> rows;
  dbdc::bench::Table table(
      "Degraded vs complete global model (Sec. 8 quality) under "
      "drop rate x failed sites, 8 sites, protocol max_attempts=6");
  table.SetHeader({"drop", "dead", "reporting", "relabeled", "retries",
                   "uplink B", "P^I", "P^II", "noise"});

  for (const double drop_rate : drop_rates) {
    for (const int failures : failure_counts) {
      dbdc::FaultSpec spec;
      spec.drop_rate = drop_rate;
      spec.corrupt_rate = drop_rate / 5.0;
      spec.seed = 20260806;
      for (int s = 0; s < failures; ++s) spec.failed_sites.push_back(s);

      dbdc::SimulatedNetwork inner;
      dbdc::FaultyNetwork net(&inner, spec);
      const dbdc::DbdcResult degraded =
          dbdc::RunDbdc(synth.data, dbdc::Euclidean(), config, &net);

      FaultRow row;
      row.drop_rate = drop_rate;
      row.failed_sites = failures;
      row.sites_reporting = degraded.sites_reporting;
      row.sites_failed = degraded.sites_failed;
      row.sites_relabeled = degraded.sites_relabeled;
      row.retries = degraded.protocol_retries;
      row.frames_dropped = degraded.frames_dropped;
      row.frames_corrupted = degraded.frames_corrupted;
      row.bytes_uplink = degraded.bytes_uplink;
      row.p1 = dbdc::QualityP1(degraded.labels, complete.labels,
                               config.local_dbscan.min_pts);
      row.p2 = dbdc::QualityP2(degraded.labels, complete.labels);
      std::size_t noise = 0;
      for (const dbdc::ClusterId label : degraded.labels) {
        if (label == dbdc::kNoise) ++noise;
      }
      row.noise_fraction = static_cast<double>(noise) /
                           static_cast<double>(degraded.labels.size());
      rows.push_back(row);
      table.AddRow({Fmt("%.2f", row.drop_rate), Fmt("%d", row.failed_sites),
                    Fmt("%d/%d", row.sites_reporting, num_sites),
                    Fmt("%d", row.sites_relabeled),
                    Fmt("%llu", static_cast<unsigned long long>(row.retries)),
                    Fmt("%llu",
                        static_cast<unsigned long long>(row.bytes_uplink)),
                    Fmt("%.3f", row.p1), Fmt("%.3f", row.p2),
                    Fmt("%.3f", row.noise_fraction)});
    }
  }
  table.Print();
  std::printf(
      "Reading the table: with 0 dead sites the degraded model should match "
      "the complete one (P^II = 1) at every drop rate the retry budget "
      "absorbs — drops cost retries and bytes, not quality. Dead sites "
      "remove their points (they stay noise), so P^II falls roughly with "
      "the dead fraction while the surviving sites' clusters persist.\n");

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"dbdc-fault-bench-v1\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"dataset\": \"" << synth.name << "\",\n";
    out << "  \"n\": " << synth.data.size() << ",\n";
    out << "  \"num_sites\": " << num_sites << ",\n";
    out << "  \"max_attempts\": " << config.protocol.max_attempts << ",\n";
    out << "  \"complete\": {\"num_global_clusters\": "
        << complete.num_global_clusters
        << ", \"bytes_uplink\": " << complete.bytes_uplink << "},\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const FaultRow& r = rows[i];
      out << "    {\"drop_rate\": " << Fmt("%.4f", r.drop_rate)
          << ", \"failed_sites\": " << r.failed_sites
          << ", \"sites_reporting\": " << r.sites_reporting
          << ", \"sites_failed\": " << r.sites_failed
          << ", \"sites_relabeled\": " << r.sites_relabeled
          << ", \"retries\": " << r.retries
          << ", \"frames_dropped\": " << r.frames_dropped
          << ", \"frames_corrupted\": " << r.frames_corrupted
          << ", \"bytes_uplink\": " << r.bytes_uplink
          << ", \"p1\": " << Fmt("%.6f", r.p1)
          << ", \"p2\": " << Fmt("%.6f", r.p2)
          << ", \"noise_fraction\": " << Fmt("%.6f", r.noise_fraction) << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"metrics\": " << metrics.Json() << "\n";
    out << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
