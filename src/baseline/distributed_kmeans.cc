#include "baseline/distributed_kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "cluster/kmeans.h"
#include "common/timer.h"

namespace dbdc {
namespace {

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

DistributedKMeansResult RunDistributedKMeans(
    const Dataset& data, const DistributedKMeansConfig& config) {
  DBDC_CHECK(config.k >= 1);
  DBDC_CHECK(config.num_sites >= 1);
  const int dim = data.dim();
  const int k = config.k;

  DistributedKMeansResult result;
  result.labels.assign(data.size(), 0);
  if (data.empty()) return result;

  // Placement, as in the DBDC runs.
  const UniformRandomPartitioner default_partitioner;
  const Partitioner* partitioner = config.partitioner != nullptr
                                       ? config.partitioner
                                       : &default_partitioner;
  Rng rng(config.seed);
  const std::vector<std::vector<PointId>> sites =
      partitioner->Partition(data, config.num_sites, &rng);

  // Server initialization: k-means++ over all ids (in a deployment this
  // would be a sample; the choice does not affect the round protocol).
  std::vector<PointId> all_ids(data.size());
  std::iota(all_ids.begin(), all_ids.end(), 0);
  result.centroids = KMeansPlusPlusInit(
      data, all_ids,
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(k),
                                             data.size())),
      &rng);
  while (static_cast<int>(result.centroids.size()) < k) {
    result.centroids.push_back(result.centroids.back());  // Degenerate k>n.
  }

  // Wire cost per round: broadcast k centroids to every site; each site
  // replies with k partial sums + counts.
  const std::uint64_t broadcast_bytes =
      static_cast<std::uint64_t>(config.num_sites) * k * dim * sizeof(double);
  const std::uint64_t reduce_bytes =
      static_cast<std::uint64_t>(config.num_sites) * k *
      (dim * sizeof(double) + sizeof(std::uint64_t));

  std::vector<Point> sums(k, Point(dim, 0.0));
  std::vector<std::size_t> counts(k, 0);
  for (int round = 0; round < config.max_rounds; ++round) {
    result.rounds = round + 1;
    result.bytes_total += broadcast_bytes;
    for (int c = 0; c < k; ++c) {
      std::fill(sums[c].begin(), sums[c].end(), 0.0);
      counts[c] = 0;
    }
    // Local assignment + partial accumulation per site; the cost model
    // charges the slowest site of the round.
    double round_max_site = 0.0;
    for (const std::vector<PointId>& site : sites) {
      Timer timer;
      for (const PointId p : site) {
        const auto coords = data.point(p);
        int best = 0;
        double best_d = std::numeric_limits<double>::max();
        for (int c = 0; c < k; ++c) {
          const double d = SquaredDistance(coords, result.centroids[c]);
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        result.labels[p] = best;
        for (int d2 = 0; d2 < dim; ++d2) sums[best][d2] += coords[d2];
        ++counts[best];
      }
      round_max_site = std::max(round_max_site, timer.Seconds());
    }
    result.max_site_seconds += round_max_site;
    result.bytes_total += reduce_bytes;

    // Global reduction on the server.
    Timer server_timer;
    double max_shift = 0.0;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Empty centroid stays in place.
      Point updated(dim);
      for (int d2 = 0; d2 < dim; ++d2) {
        updated[d2] = sums[c][d2] / static_cast<double>(counts[c]);
      }
      max_shift = std::max(
          max_shift,
          std::sqrt(SquaredDistance(updated, result.centroids[c])));
      result.centroids[c] = std::move(updated);
    }
    result.server_seconds += server_timer.Seconds();
    if (max_shift <= config.tolerance) break;
  }

  result.inertia = 0.0;
  for (PointId p = 0; p < static_cast<PointId>(data.size()); ++p) {
    result.inertia +=
        SquaredDistance(data.point(p), result.centroids[result.labels[p]]);
  }
  return result;
}

}  // namespace dbdc
