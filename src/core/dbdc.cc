#include "core/dbdc.h"

#include <memory>

#include "common/timer.h"
#include "core/engine.h"
#include "core/optics_global.h"

namespace dbdc {

DbdcResult RunDbdc(const Dataset& data, const Metric& metric,
                   const DbdcConfig& config, Transport* network) {
  DbdcEngine engine(data, metric, config, network);
  return engine.Run();
}

DbdcResult RunDbdcOptics(const Dataset& data, const Metric& metric,
                         const DbdcConfig& config, Transport* network,
                         double max_eps_global) {
  const OpticsGlobalStrategy strategy(max_eps_global);
  DbdcEngine engine(data, metric, config, network);
  engine.SetGlobalModelStrategy(&strategy);
  return engine.Run();
}

CentralDbscanResult RunCentralDbscan(const Dataset& data, const Metric& metric,
                                     const DbscanParams& params,
                                     IndexType index_type) {
  Timer timer;
  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(index_type, data, metric, params.eps);
  CentralDbscanResult result;
  result.clustering = RunDbscan(*index, params);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace dbdc
