// Clean variant: every status is consumed — assigned, compared,
// returned, or explicitly discarded with (void). Definitions whose
// *name* matches a status-returning function must not fire either.
#include "core/model_codec.h"
#include "core/server.h"

namespace dbdc {

DecodeStatus GoodIngest(Server* server,
                        std::span<const std::uint8_t> bytes) {
  const DecodeStatus status = server->AddLocalModelBytes(bytes);
  if (status != DecodeStatus::kOk) return status;
  LocalModel model;
  (void)DecodeLocalModel(bytes, &model);
  return DecodeLocalModel(bytes, &model);
}

}  // namespace dbdc
