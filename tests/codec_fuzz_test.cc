// Property / fuzz-ish tests for the model codec: randomly generated
// models must round-trip byte-exactly, and mutilated payloads
// (truncations, bit flips, random garbage) must either be rejected or
// decode into a structurally valid model — never crash, never return a
// model that fails validation. Run under the ASan+UBSan preset this is
// the codec's memory-safety net.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/model_codec.h"

namespace dbdc {
namespace {

LocalModel RandomLocalModel(Rng* rng) {
  LocalModel model;
  model.dim = static_cast<int>(rng->UniformInt(1, 6));
  model.site_id = static_cast<int>(rng->UniformInt(0, 100));
  model.num_local_clusters = static_cast<int>(rng->UniformInt(0, 8));
  const int reps = static_cast<int>(rng->UniformInt(0, 40));
  for (int i = 0; i < reps; ++i) {
    Representative rep;
    rep.local_cluster = static_cast<ClusterId>(rng->UniformInt(0, 7));
    rep.eps_range = rng->Uniform(0.0, 10.0);
    rep.weight = static_cast<std::uint32_t>(rng->UniformInt(1, 1000));
    for (int d = 0; d < model.dim; ++d) {
      rep.center.push_back(rng->Uniform(-1e6, 1e6));
    }
    model.representatives.push_back(std::move(rep));
  }
  return model;
}

GlobalModel RandomGlobalModel(Rng* rng) {
  GlobalModel model;
  const int dim = static_cast<int>(rng->UniformInt(1, 5));
  model.rep_points = Dataset(dim);
  const int reps = static_cast<int>(rng->UniformInt(0, 30));
  model.num_global_clusters =
      reps == 0 ? 0 : static_cast<int>(rng->UniformInt(1, reps));
  model.eps_global_used = rng->Uniform(0.0, 20.0);
  Point p(static_cast<std::size_t>(dim));
  for (int i = 0; i < reps; ++i) {
    for (double& c : p) c = rng->Uniform(-1e3, 1e3);
    model.rep_points.Add(p);
    model.rep_eps.push_back(rng->Uniform(0.0, 5.0));
    model.rep_weight.push_back(
        static_cast<std::uint32_t>(rng->UniformInt(1, 500)));
    model.rep_global_cluster.push_back(static_cast<ClusterId>(
        rng->UniformInt(0, model.num_global_clusters - 1)));
    model.rep_site.push_back(static_cast<int>(rng->UniformInt(0, 31)));
    model.rep_local_cluster.push_back(
        static_cast<ClusterId>(rng->UniformInt(0, 9)));
  }
  return model;
}

TEST(CodecFuzzTest, RandomLocalModelsRoundTripByteExactly) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const LocalModel model = RandomLocalModel(&rng);
    const std::vector<std::uint8_t> bytes = EncodeLocalModel(model);
    const std::optional<LocalModel> decoded = DecodeLocalModel(bytes);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    ValidateLocalModel(*decoded);
    ASSERT_EQ(EncodeLocalModel(*decoded), bytes) << "trial " << trial;
  }
}

TEST(CodecFuzzTest, RandomGlobalModelsRoundTripByteExactly) {
  Rng rng(5678);
  for (int trial = 0; trial < 200; ++trial) {
    const GlobalModel model = RandomGlobalModel(&rng);
    const std::vector<std::uint8_t> bytes = EncodeGlobalModel(model);
    const std::optional<GlobalModel> decoded = DecodeGlobalModel(bytes);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    ValidateGlobalModel(*decoded);
    ASSERT_EQ(EncodeGlobalModel(*decoded), bytes) << "trial " << trial;
  }
}

TEST(CodecFuzzTest, EveryTruncationIsRejected) {
  Rng rng(42);
  const LocalModel local = RandomLocalModel(&rng);
  const std::vector<std::uint8_t> lbytes = EncodeLocalModel(local);
  for (std::size_t len = 0; len < lbytes.size(); ++len) {
    EXPECT_FALSE(DecodeLocalModel(std::span(lbytes.data(), len)).has_value())
        << "local payload truncated to " << len << " accepted";
  }
  const GlobalModel global = RandomGlobalModel(&rng);
  const std::vector<std::uint8_t> gbytes = EncodeGlobalModel(global);
  for (std::size_t len = 0; len < gbytes.size(); ++len) {
    EXPECT_FALSE(DecodeGlobalModel(std::span(gbytes.data(), len)).has_value())
        << "global payload truncated to " << len << " accepted";
  }
}

TEST(CodecFuzzTest, EverySingleByteCorruptionIsRejected) {
  // Flip bits in every byte position of a real payload. Since v3 every
  // payload carries an end-to-end FNV-1a checksum, so ALL single-byte
  // corruptions must be rejected — including flips inside coordinate
  // data that older versions could not distinguish from different data.
  // With ASan/UBSan active this also proves there is no out-of-bounds
  // access or UB on any of the corrupted variants.
  Rng rng(99);
  const LocalModel local = RandomLocalModel(&rng);
  const std::vector<std::uint8_t> lbytes = EncodeLocalModel(local);
  for (std::size_t pos = 0; pos < lbytes.size(); ++pos) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80},
                                    std::uint8_t{0xff}}) {
      std::vector<std::uint8_t> corrupt = lbytes;
      corrupt[pos] ^= flip;
      EXPECT_FALSE(DecodeLocalModel(corrupt).has_value())
          << "flip 0x" << std::hex << int{flip} << " at byte " << std::dec
          << pos << " accepted";
    }
  }

  const GlobalModel global = RandomGlobalModel(&rng);
  const std::vector<std::uint8_t> gbytes = EncodeGlobalModel(global);
  for (std::size_t pos = 0; pos < gbytes.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = gbytes;
    corrupt[pos] ^= 0xa5;
    EXPECT_FALSE(DecodeGlobalModel(corrupt).has_value())
        << "global flip at byte " << pos << " accepted";
  }
}

TEST(CodecFuzzTest, RandomGarbageBuffersAreRejectedWithoutUb) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.UniformInt(0, 256)));
    for (std::uint8_t& b : garbage) {
      b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    }
    // Nearly all garbage fails the magic check; whatever survives must
    // still be structurally valid.
    const std::optional<LocalModel> local = DecodeLocalModel(garbage);
    if (local.has_value()) ValidateLocalModel(*local);
    const std::optional<GlobalModel> global = DecodeGlobalModel(garbage);
    if (global.has_value()) ValidateGlobalModel(*global);
  }
}

TEST(CodecFuzzTest, HugeDeclaredCountsAreRejectedWithoutAllocation) {
  // A corrupted rep_count must fail fast instead of provoking a giant
  // allocation: craft a valid header with an absurd count and no payload.
  // v3 payloads die at the checksum before the count is even read, so
  // downgrade the frame to v2 (no trailer) to reach the count guard.
  std::vector<std::uint8_t> bytes = EncodeLocalModel(LocalModel{
      .site_id = 0, .dim = 2, .num_local_clusters = 0, .representatives = {}});
  bytes.resize(bytes.size() - 8);  // Strip the v3 checksum trailer.
  bytes[4] = 2;                    // Version field: pretend v2.
  // rep_count lives in the last 4 header bytes; set it to 0xffffffff.
  for (std::size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = 0xff;
  }
  EXPECT_FALSE(DecodeLocalModel(bytes).has_value());
}

}  // namespace
}  // namespace dbdc
