#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dbdc {
namespace {

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

KMeansResult RunKMeans(const Dataset& data,
                       const std::vector<PointId>& members,
                       const std::vector<Point>& initial_centroids,
                       const KMeansParams& params) {
  const int k = static_cast<int>(initial_centroids.size());
  DBDC_CHECK(k >= 1);
  DBDC_CHECK(!members.empty());
  const int dim = data.dim();
  for (const Point& c : initial_centroids) {
    DBDC_CHECK(static_cast<int>(c.size()) == dim);
  }

  KMeansResult result;
  result.centroids = initial_centroids;
  result.assignment.assign(members.size(), 0);

  std::vector<Point> sums(k, Point(dim, 0.0));
  std::vector<std::size_t> counts(k, 0);

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto p = data.point(members[i]);
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double d = SquaredDistance(p, result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      result.assignment[i] = best;
    }
    // Update step.
    for (int c = 0; c < k; ++c) {
      std::fill(sums[c].begin(), sums[c].end(), 0.0);
      counts[c] = 0;
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto p = data.point(members[i]);
      const int c = result.assignment[i];
      for (int d = 0; d < dim; ++d) sums[c][d] += p[d];
      ++counts[c];
    }
    // Empty-cluster repair: reseed at the member farthest from its own
    // centroid, so k stays constant (DBDC relies on |Scor_C| centroids).
    for (int c = 0; c < k; ++c) {
      if (counts[c] != 0) continue;
      // Donor points must come from clusters that keep at least one member.
      std::size_t far_i = members.size();
      double far_d = -1.0;
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (counts[result.assignment[i]] < 2) continue;
        const double d = SquaredDistance(
            data.point(members[i]), result.centroids[result.assignment[i]]);
        if (d > far_d) {
          far_d = d;
          far_i = i;
        }
      }
      if (far_i == members.size()) continue;  // Fewer members than centroids.
      const auto p = data.point(members[far_i]);
      // Move the farthest point into the empty cluster.
      const int old = result.assignment[far_i];
      for (int d = 0; d < dim; ++d) {
        sums[old][d] -= p[d];
        sums[c][d] += p[d];
      }
      --counts[old];
      ++counts[c];
      result.assignment[far_i] = c;
    }
    double max_shift = 0.0;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Fewer members than centroids.
      Point updated(dim);
      for (int d = 0; d < dim; ++d) {
        updated[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
      max_shift = std::max(
          max_shift, std::sqrt(SquaredDistance(updated, result.centroids[c])));
      result.centroids[c] = std::move(updated);
    }
    if (max_shift <= params.tolerance) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    result.inertia += SquaredDistance(data.point(members[i]),
                                      result.centroids[result.assignment[i]]);
  }
  return result;
}

std::vector<Point> KMeansPlusPlusInit(const Dataset& data,
                                      const std::vector<PointId>& members,
                                      int k, Rng* rng) {
  DBDC_CHECK(k >= 1);
  DBDC_CHECK(!members.empty());
  std::vector<Point> centroids;
  centroids.reserve(k);
  const auto first =
      data.point(members[rng->UniformInt(0, members.size() - 1)]);
  centroids.emplace_back(first.begin(), first.end());
  std::vector<double> best_d2(members.size(),
                              std::numeric_limits<double>::max());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      best_d2[i] = std::min(
          best_d2[i], SquaredDistance(data.point(members[i]),
                                      centroids.back()));
      total += best_d2[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double r = rng->Uniform(0.0, total);
      for (std::size_t i = 0; i < members.size(); ++i) {
        r -= best_d2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<std::size_t>(
          rng->UniformInt(0, members.size() - 1));
    }
    const auto p = data.point(members[chosen]);
    centroids.emplace_back(p.begin(), p.end());
  }
  return centroids;
}

}  // namespace dbdc
