#include "index/vp_tree.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace dbdc {

VpTree::VpTree(const Dataset& data, const Metric& metric)
    : data_(&data), metric_(&metric), count_(data.size()) {
  if (count_ == 0) return;
  // items carry (distance-to-current-vantage, id); the distance slot is
  // recomputed at every level.
  std::vector<std::pair<double, PointId>> items;
  items.reserve(count_);
  for (PointId id = 0; id < static_cast<PointId>(count_); ++id) {
    items.emplace_back(0.0, id);
  }
  ids_.reserve(count_);
  nodes_.reserve(2 * count_ / kLeafSize + 2);
  root_ = Build(&items, 0, static_cast<std::int32_t>(items.size()));
}

std::int32_t VpTree::Build(std::vector<std::pair<double, PointId>>* items,
                           std::int32_t begin, std::int32_t end) {
  const std::int32_t node_idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    Node& node = nodes_[node_idx];
    node.begin = static_cast<std::int32_t>(ids_.size());
    for (std::int32_t i = begin; i < end; ++i) {
      ids_.push_back((*items)[i].second);
    }
    node.end = static_cast<std::int32_t>(ids_.size());
    return node_idx;
  }
  // Deterministic vantage choice: the first item of the range.
  const PointId vantage = (*items)[begin].second;
  const auto vp = data_->point(vantage);
  for (std::int32_t i = begin + 1; i < end; ++i) {
    (*items)[i].first = metric_->Distance(vp, data_->point((*items)[i].second));
  }
  const std::int32_t mid = begin + 1 + (end - begin - 1) / 2;
  std::nth_element(items->begin() + begin + 1, items->begin() + mid,
                   items->begin() + end);
  const double threshold = (*items)[mid].first;
  const std::int32_t inner = Build(items, begin + 1, mid + 1);
  const std::int32_t outer = Build(items, mid + 1, end);
  Node& node = nodes_[node_idx];
  node.vantage = vantage;
  node.threshold = threshold;
  node.inner = inner;
  node.outer = outer;
  return node_idx;
}

void VpTree::RangeQuery(std::span<const double> q, double eps,
                        std::vector<PointId>* out) const {
  out->clear();
  if (root_ >= 0) RangeRecursive(root_, q, eps, out);
}

void VpTree::RangeRecursive(std::int32_t node_idx, std::span<const double> q,
                            double eps, std::vector<PointId>* out) const {
  const Node& node = nodes_[node_idx];
  if (node.is_leaf()) {
    for (std::int32_t i = node.begin; i < node.end; ++i) {
      const PointId id = ids_[i];
      if (metric_->Distance(q, data_->point(id)) <= eps) out->push_back(id);
    }
    return;
  }
  const double d = metric_->Distance(q, data_->point(node.vantage));
  if (d <= eps) out->push_back(node.vantage);
  // Triangle inequality: the inner ball holds points within threshold of
  // the vantage; it can contain answers only if d - eps <= threshold.
  if (d - eps <= node.threshold) RangeRecursive(node.inner, q, eps, out);
  if (d + eps >= node.threshold) RangeRecursive(node.outer, q, eps, out);
}

void VpTree::KnnQuery(std::span<const double> q, int k,
                      std::vector<PointId>* out) const {
  out->clear();
  if (k <= 0 || root_ < 0) return;
  const std::size_t want = std::min<std::size_t>(k, count_);
  std::vector<std::pair<double, PointId>> heap;  // Max-heap on distance.
  KnnRecursive(root_, q, want, &heap);
  std::sort_heap(heap.begin(), heap.end());
  out->reserve(heap.size());
  for (const auto& [d, id] : heap) out->push_back(id);
}

void VpTree::KnnRecursive(
    std::int32_t node_idx, std::span<const double> q, std::size_t k,
    std::vector<std::pair<double, PointId>>* heap) const {
  const Node& node = nodes_[node_idx];
  auto offer = [&](double d, PointId id) {
    if (heap->size() < k) {
      heap->emplace_back(d, id);
      std::push_heap(heap->begin(), heap->end());
    } else if (std::make_pair(d, id) < heap->front()) {
      // Whole-pair compare pins ties to (distance, id) ascending.
      std::pop_heap(heap->begin(), heap->end());
      heap->back() = {d, id};
      std::push_heap(heap->begin(), heap->end());
    }
  };
  if (node.is_leaf()) {
    for (std::int32_t i = node.begin; i < node.end; ++i) {
      const PointId id = ids_[i];
      offer(metric_->Distance(q, data_->point(id)), id);
    }
    return;
  }
  const double d = metric_->Distance(q, data_->point(node.vantage));
  offer(d, node.vantage);
  const bool inner_first = d <= node.threshold;
  for (int pass = 0; pass < 2; ++pass) {
    const bool take_inner = (pass == 0) == inner_first;
    const double tau = heap->size() < k
                           ? std::numeric_limits<double>::max()
                           : heap->front().first;
    if (take_inner) {
      if (d - tau <= node.threshold) KnnRecursive(node.inner, q, k, heap);
    } else {
      if (d + tau >= node.threshold) KnnRecursive(node.outer, q, k, heap);
    }
  }
}

}  // namespace dbdc
