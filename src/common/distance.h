#ifndef DBDC_COMMON_DISTANCE_H_
#define DBDC_COMMON_DISTANCE_H_

#include <cstddef>
#include <span>
#include <string_view>

namespace dbdc {

/// A distance function on coordinate vectors.
///
/// DBSCAN and the spatial indices are metric-generic: the paper stresses
/// that DBSCAN "can be used for all kinds of metric data spaces and is not
/// confined to vector spaces". Implementations must satisfy the metric
/// axioms (the M-tree relies on the triangle inequality for pruning).
///
/// For the box-based indices (grid, k-d tree, R*-tree) a metric must also
/// provide a lower bound of the distance from a point to an axis-aligned
/// box; any Lp metric admits this via per-axis deltas.
class Metric {
 public:
  virtual ~Metric() = default;

  /// Distance between two points of equal dimensionality.
  virtual double Distance(std::span<const double> a,
                          std::span<const double> b) const = 0;

  /// Lower bound of Distance(p, x) over all x inside the box [lo, hi].
  /// Zero when p lies inside the box.
  virtual double MinDistanceToBox(std::span<const double> p,
                                  std::span<const double> lo,
                                  std::span<const double> hi) const = 0;

  /// Human-readable metric name ("euclidean", ...).
  virtual std::string_view name() const = 0;
};

/// The standard L2 metric.
const Metric& Euclidean();

/// True iff `metric` is the built-in Euclidean metric. The spatial indices
/// use this to take a devirtualized hot path on ε-range queries: candidate
/// filtering compares *squared* distances against eps² via the inline
/// kernels below — no virtual call and no sqrt per candidate. sqrt is
/// strictly monotone, so the accepted candidate set is unchanged.
bool IsEuclideanMetric(const Metric& metric);

/// Squared L2 distance; the hot-path kernel behind IsEuclideanMetric().
/// Sizes must match (checked by the callers' index invariants).
inline double SquaredEuclideanDistance(std::span<const double> a,
                                       std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Squared L2 lower bound of the distance from p to the box [lo, hi];
/// the hot-path companion of Metric::MinDistanceToBox.
inline double SquaredEuclideanMinDistanceToBox(std::span<const double> p,
                                               std::span<const double> lo,
                                               std::span<const double> hi) {
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    double d = 0.0;
    if (p[i] < lo[i]) {
      d = lo[i] - p[i];
    } else if (p[i] > hi[i]) {
      d = p[i] - hi[i];
    }
    sum += d * d;
  }
  return sum;
}
/// The L1 (city-block) metric.
const Metric& Manhattan();
/// The L-infinity (maximum) metric.
const Metric& Chebyshev();

/// Looks up a metric by name; returns nullptr for unknown names.
const Metric* MetricByName(std::string_view name);

}  // namespace dbdc

#endif  // DBDC_COMMON_DISTANCE_H_
