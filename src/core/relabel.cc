#include "core/relabel.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace dbdc {

RelabelContext::RelabelContext(const GlobalModel& global, const Metric& metric)
    : global_(&global) {
  if (global.NumRepresentatives() == 0) return;
  // Representatives have individual ranges; the index is queried at the
  // maximum range and candidates are filtered by their own ε_r.
  max_eps_ = *std::max_element(global.rep_eps.begin(), global.rep_eps.end());
  DBDC_CHECK(max_eps_ > 0.0);
  rep_index_ =
      std::make_unique<GridIndex>(global.rep_points, metric, max_eps_);
}

std::vector<ClusterId> RelabelSite(const Dataset& site_data,
                                   const RelabelContext& context,
                                   const Metric& metric, int threads) {
  const GlobalModel& global = context.global();
  std::vector<ClusterId> labels(site_data.size(), kNoise);
  if (global.NumRepresentatives() == 0 || site_data.empty()) return labels;
  DBDC_CHECK(global.rep_points.dim() == site_data.dim());
  DBDC_CHECK(context.rep_index() != nullptr);

  // Every point is labeled independently, so chunks write disjoint label
  // ranges and the result cannot depend on scheduling.
  ThreadPool pool(threads);
  pool.ParallelChunks(
      site_data.size(),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        std::vector<PointId> candidates;
        // Per-chunk locals, flushed once at chunk end: instrumentation
        // stays off the per-candidate inner loop.
        std::uint64_t distance_comps = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const PointId p = static_cast<PointId>(i);
          const auto coords = site_data.point(p);
          context.rep_index()->RangeQuery(coords, context.max_eps(),
                                          &candidates);
          obs::Observe(obs::Histogram::kRelabelCandidates, candidates.size());
          distance_comps += candidates.size();
          double best_d = std::numeric_limits<double>::max();
          PointId best_rep = std::numeric_limits<PointId>::max();
          ClusterId best = kNoise;
          for (const PointId r : candidates) {
            const double d =
                metric.Distance(coords, global.rep_points.point(r));
            if (d > global.rep_eps[r]) continue;  // Outside this rep's ε_r.
            // Nearest representative wins; exact distance ties go to the
            // smaller rep id so the choice is independent of candidate
            // order.
            if (d < best_d || (d == best_d && r < best_rep)) {
              best_d = d;
              best_rep = r;
              best = global.rep_global_cluster[r];
            }
          }
          labels[i] = best;
        }
        obs::Count(obs::Counter::kEpsRangeQueries, end - begin);
        obs::Count(obs::Counter::kRelabelPointsScanned, end - begin);
        obs::Count(obs::Counter::kRelabelDistanceComps, distance_comps);
      });
  return labels;
}

std::vector<ClusterId> RelabelSite(const Dataset& site_data,
                                   const GlobalModel& global,
                                   const Metric& metric, int threads) {
  const RelabelContext context(global, metric);
  return RelabelSite(site_data, context, metric, threads);
}

}  // namespace dbdc
