#include "common/thread_pool.h"

#include <algorithm>

#include "common/obs_context.h"

namespace dbdc {

int ResolveNumThreads(int requested) {
  DBDC_CHECK(requested >= 0 && "thread count must be >= 0 (0 = auto)");
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveNumThreads(num_threads)) {
  if (num_threads_ == 1) return;  // Inline execution; no workers.
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  // Workers inherit the creating thread's observability scope (per-job
  // metrics/tracer override): a pool spawned while a job scope is active
  // reports to that job's registry, not to another tenant's.
  const internal::ObsTlsScope obs_scope = internal::tls_obs_scope;
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, obs_scope] {
      internal::tls_obs_scope = obs_scope;
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::NumChunks(std::size_t n) const {
  if (n == 0) return 0;
  // The split must NOT depend on the pool size: chunk boundaries are
  // observable through ParallelReduce (a float fold groups differently
  // under a different split), and results must be bit-identical for every
  // thread count. A fixed chunk count gives enough granularity to smooth
  // out imbalance (chunks differ in cost: dense regions have larger
  // neighborhoods) for any sane pool size, and a single-thread pool just
  // walks the same chunks inline in order.
  constexpr std::size_t kFixedChunks = 32;
  return std::min(n, kFixedChunks);
}

void ThreadPool::RunTasks(std::size_t num_tasks,
                          std::function<void(std::size_t)> fn) {
  if (num_tasks == 0) return;
  if (num_threads_ == 1) {
    for (std::size_t t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  {
    const MutexLock lock(&mutex_);
    DBDC_CHECK(task_fn_ == nullptr &&
               "nested ParallelFor on the same pool is not supported");
    task_fn_ = &fn;
    next_task_ = 0;
    tasks_total_ = num_tasks;
    tasks_finished_ = 0;
  }
  work_ready_.NotifyAll();
  // The calling thread works too: the pool then provides num_threads_
  // concurrent lanes total without idling the caller.
  for (;;) {
    std::size_t task;
    {
      const MutexLock lock(&mutex_);
      if (next_task_ >= tasks_total_) break;
      task = next_task_++;
    }
    fn(task);
    {
      const MutexLock lock(&mutex_);
      ++tasks_finished_;
    }
  }
  {
    const MutexLock lock(&mutex_);
    // Conditions are re-checked in a while loop in this body (not in a
    // predicate lambda) so the guarded reads are visibly under the lock
    // for the thread-safety analysis.
    while (tasks_finished_ != tasks_total_) work_done_.Wait(&mutex_);
    task_fn_ = nullptr;
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void(std::size_t)>* fn = nullptr;
    std::size_t task = 0;
    {
      const MutexLock lock(&mutex_);
      while (!shutdown_ &&
             (task_fn_ == nullptr || next_task_ >= tasks_total_)) {
        work_ready_.Wait(&mutex_);
      }
      if (shutdown_) return;
      fn = task_fn_;
      task = next_task_++;
    }
    (*fn)(task);
    {
      const MutexLock lock(&mutex_);
      ++tasks_finished_;
      if (tasks_finished_ == tasks_total_) work_done_.NotifyAll();
    }
  }
}

}  // namespace dbdc
