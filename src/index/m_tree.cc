#include "index/m_tree.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

namespace dbdc {

MTree::MTree(const Dataset& data, const Metric& metric)
    : data_(&data), metric_(&metric), root_(new Node(/*leaf_in=*/true)) {
  for (PointId id = 0; id < static_cast<PointId>(data.size()); ++id) {
    InsertPoint(id);
  }
}

MTree::~MTree() { FreeNode(root_); }

void MTree::FreeNode(Node* node) {
  for (RoutingEntry& e : node->routing) FreeNode(e.child);
  delete node;
}

double MTree::Dist(PointId a, PointId b) const {
  return metric_->Distance(data_->point(a), data_->point(b));
}

void MTree::InsertPoint(PointId id) {
  RoutingEntry a, b;
  if (InsertRecursive(root_, id, &a, &b)) {
    Node* new_root = new Node(/*leaf_in=*/false);
    new_root->routing.push_back(a);
    new_root->routing.push_back(b);
    root_ = new_root;
  }
  ++count_;
}

bool MTree::InsertRecursive(Node* node, PointId id, RoutingEntry* a,
                            RoutingEntry* b) {
  if (node->leaf) {
    node->points.push_back(id);
  } else {
    // Prefer a subtree already covering the point (minimal distance);
    // otherwise the one whose radius grows least.
    std::size_t best = 0;
    double best_key = std::numeric_limits<double>::max();
    bool best_covers = false;
    for (std::size_t i = 0; i < node->routing.size(); ++i) {
      const double d = Dist(id, node->routing[i].pivot);
      const bool covers = d <= node->routing[i].radius;
      const double key = covers ? d : d - node->routing[i].radius;
      if ((covers && !best_covers) ||
          (covers == best_covers && key < best_key)) {
        best = i;
        best_key = key;
        best_covers = covers;
      }
    }
    RoutingEntry& target = node->routing[best];
    target.radius = std::max(target.radius, Dist(id, target.pivot));
    RoutingEntry ca, cb;
    if (InsertRecursive(target.child, id, &ca, &cb)) {
      node->routing.erase(node->routing.begin() + best);
      node->routing.push_back(ca);
      node->routing.push_back(cb);
    }
  }
  if (static_cast<int>(node->entry_count()) > kMaxEntries) {
    Split(node, a, b);
    return true;
  }
  return false;
}

void MTree::Split(Node* node, RoutingEntry* a, RoutingEntry* b) {
  // Promotion: the pair of entry pivots with maximum mutual distance.
  std::vector<PointId> pivots;
  if (node->leaf) {
    pivots = node->points;
  } else {
    pivots.reserve(node->routing.size());
    for (const RoutingEntry& e : node->routing) pivots.push_back(e.pivot);
  }
  std::size_t pa = 0, pb = 1;
  double best = -1.0;
  for (std::size_t i = 0; i < pivots.size(); ++i) {
    for (std::size_t j = i + 1; j < pivots.size(); ++j) {
      const double d = Dist(pivots[i], pivots[j]);
      if (d > best) {
        best = d;
        pa = i;
        pb = j;
      }
    }
  }
  const PointId pivot_a = pivots[pa];
  const PointId pivot_b = pivots[pb];

  // Generalized-hyperplane partition: each entry to its nearest pivot.
  Node* na = new Node(node->leaf);
  Node* nb = new Node(node->leaf);
  double ra = 0.0, rb = 0.0;
  if (node->leaf) {
    for (const PointId p : node->points) {
      const double da = Dist(p, pivot_a);
      const double db = Dist(p, pivot_b);
      if (da <= db) {
        na->points.push_back(p);
        ra = std::max(ra, da);
      } else {
        nb->points.push_back(p);
        rb = std::max(rb, db);
      }
    }
  } else {
    for (const RoutingEntry& e : node->routing) {
      const double da = Dist(e.pivot, pivot_a);
      const double db = Dist(e.pivot, pivot_b);
      if (da <= db) {
        na->routing.push_back(e);
        ra = std::max(ra, da + e.radius);
      } else {
        nb->routing.push_back(e);
        rb = std::max(rb, db + e.radius);
      }
    }
  }
  // When every pairwise distance is zero the partition can be one-sided;
  // rebalance so neither node is empty.
  if (node->leaf && nb->points.empty()) {
    nb->points.push_back(na->points.back());
    na->points.pop_back();
  } else if (!node->leaf && nb->routing.empty()) {
    nb->routing.push_back(na->routing.back());
    rb = na->routing.back().radius;
    na->routing.pop_back();
  }
  node->routing.clear();
  node->points.clear();
  *a = {pivot_a, ra, na};
  *b = {pivot_b, rb, nb};
  // The caller replaces its routing entry (or the root) with *a and *b;
  // the original node is dead.
  delete node;
}

double MTree::SubtreeRadius(const Node* node, PointId pivot) const {
  double r = 0.0;
  if (node->leaf) {
    for (const PointId p : node->points) r = std::max(r, Dist(p, pivot));
  } else {
    for (const RoutingEntry& e : node->routing) {
      r = std::max(r, SubtreeRadius(e.child, pivot));
    }
  }
  return r;
}

void MTree::RangeQuery(std::span<const double> q, double eps,
                       std::vector<PointId>* out) const {
  out->clear();
  RangeRecursive(root_, q, eps, out);
}

void MTree::RangeRecursive(const Node* node, std::span<const double> q,
                           double eps, std::vector<PointId>* out) const {
  if (node->leaf) {
    for (const PointId p : node->points) {
      if (metric_->Distance(q, data_->point(p)) <= eps) out->push_back(p);
    }
    return;
  }
  for (const RoutingEntry& e : node->routing) {
    // Triangle inequality: anything within radius of the pivot is at least
    // dist(q, pivot) - radius away from q.
    const double d = metric_->Distance(q, data_->point(e.pivot));
    if (d - e.radius <= eps) RangeRecursive(e.child, q, eps, out);
  }
}

void MTree::KnnQuery(std::span<const double> q, int k,
                     std::vector<PointId>* out) const {
  out->clear();
  if (k <= 0 || count_ == 0) return;
  const std::size_t want = std::min<std::size_t>(k, count_);
  struct QueueItem {
    double dist;
    const Node* node;  // Null for point results.
    PointId id;
    // Ordering pins ties: nodes expand before equal-distance points pop
    // (so an equal-distance smaller-id point inside an unexpanded subtree
    // cannot be missed), and equal-distance points emit id-ascending —
    // the cross-index KnnQuery contract (neighbor_index.h).
    bool operator>(const QueueItem& other) const {
      return std::make_tuple(dist, node == nullptr, id) >
             std::make_tuple(other.dist, other.node == nullptr, other.id);
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({0.0, root_, -1});
  while (!pq.empty()) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      out->push_back(item.id);
      if (out->size() == want) return;
      continue;
    }
    if (item.node->leaf) {
      for (const PointId p : item.node->points) {
        pq.push({metric_->Distance(q, data_->point(p)), nullptr, p});
      }
    } else {
      for (const RoutingEntry& e : item.node->routing) {
        const double d = metric_->Distance(q, data_->point(e.pivot));
        pq.push({std::max(0.0, d - e.radius), e.child, -1});
      }
    }
  }
}

void MTree::CheckInvariants() const {
  std::vector<PointId> all;
  CollectPoints(root_, &all);
  DBDC_CHECK(all.size() == count_);
  std::sort(all.begin(), all.end());
  DBDC_CHECK(std::adjacent_find(all.begin(), all.end()) == all.end());
  // Every routing entry's covering radius bounds its whole subtree.
  struct Checker {
    const MTree* tree;
    void Check(const Node* node) const {
      if (node->leaf) return;
      for (const RoutingEntry& e : node->routing) {
        const double actual = tree->SubtreeRadius(e.child, e.pivot);
        DBDC_CHECK(actual <= e.radius + 1e-9);
        Check(e.child);
      }
    }
  };
  Checker{this}.Check(root_);
}

void MTree::CollectPoints(const Node* node, std::vector<PointId>* out) const {
  if (node->leaf) {
    out->insert(out->end(), node->points.begin(), node->points.end());
    return;
  }
  for (const RoutingEntry& e : node->routing) CollectPoints(e.child, out);
}

}  // namespace dbdc
