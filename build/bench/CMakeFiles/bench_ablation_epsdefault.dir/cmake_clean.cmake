file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_epsdefault.dir/bench_ablation_epsdefault.cc.o"
  "CMakeFiles/bench_ablation_epsdefault.dir/bench_ablation_epsdefault.cc.o.d"
  "bench_ablation_epsdefault"
  "bench_ablation_epsdefault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_epsdefault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
