#ifndef DBDC_CORE_SERVER_H_
#define DBDC_CORE_SERVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/global_model.h"
#include "core/model_codec.h"

namespace dbdc {

/// The central server (Sec. 3, 6): collects the local models of all
/// sites, merges them into the global model, and serializes it for the
/// broadcast back to the sites.
///
/// Local models may arrive one by one (the paper notes that incremental
/// DBSCAN would even allow building the global model before all clients
/// have transmitted); BuildGlobal() can be called repeatedly and always
/// reflects every model received so far.
class Server {
 public:
  Server(const Metric& metric, const GlobalModelParams& params)
      : metric_(&metric), params_(params) {}

  /// Registers a local model received as bytes. On anything but kOk the
  /// payload is ignored and the status says why it was rejected (so
  /// fault-injection tests can assert the rejection reason).
  DecodeStatus AddLocalModelBytes(std::span<const std::uint8_t> bytes);

  /// Registers an already-decoded local model (tests).
  void AddLocalModel(LocalModel model);

  /// Replaces the stored model of the same site_id (appends when the site
  /// has not reported before) — the continuous-mode ingestion path, where
  /// a refresh supersedes the site's previous contribution.
  void UpsertLocalModel(LocalModel model);

  /// Upsert variant of AddLocalModelBytes; on anything but kOk the stored
  /// models are untouched.
  DecodeStatus UpsertLocalModelBytes(std::span<const std::uint8_t> bytes);

  /// Drops the stored model of `site_id` — elastic membership: a retired
  /// or TTL-expired site (or a dead aggregator) stops contributing to the
  /// next BuildGlobal(). Returns whether a model was stored. The current
  /// global_model() is untouched until the next BuildGlobal().
  bool RemoveLocalModel(int site_id);

  /// Selects how BuildGlobal merges the collected models. Null (default)
  /// restores the built-in paper merge (BuildGlobalModel). The strategy
  /// must outlive the server.
  void SetGlobalStrategy(const GlobalModelStrategy* strategy) {
    strategy_ = strategy;
  }

  /// Merges everything received so far into a global model.
  const GlobalModel& BuildGlobal();

  /// The last BuildGlobal() result, serialized for broadcast.
  std::vector<std::uint8_t> EncodeGlobalModelBytes() const;

  std::size_t num_local_models() const { return locals_.size(); }
  const std::vector<LocalModel>& local_models() const { return locals_; }
  const GlobalModel& global_model() const { return global_; }
  double global_clustering_seconds() const { return global_seconds_; }

 private:
  const Metric* metric_;
  GlobalModelParams params_;
  const GlobalModelStrategy* strategy_ = nullptr;
  std::vector<LocalModel> locals_;
  GlobalModel global_;
  double global_seconds_ = 0.0;
};

}  // namespace dbdc

#endif  // DBDC_CORE_SERVER_H_
