#ifndef DBDC_COMMON_CHECKSUM_H_
#define DBDC_COMMON_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace dbdc {

/// 64-bit FNV-1a over a byte range. Used as the end-to-end integrity
/// check of the wire formats (model codec trailer, protocol frames):
/// cheap, dependency-free, and any single flipped byte changes the value.
/// Not cryptographic — it guards against transmission corruption, not
/// adversaries.
inline std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

/// SplitMix64 finalizer: decorrelates structured inputs (endpoint ids,
/// per-link sequence counters) into independent-looking seed material.
inline std::uint64_t MixBits(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace dbdc

#endif  // DBDC_COMMON_CHECKSUM_H_
