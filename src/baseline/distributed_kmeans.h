#ifndef DBDC_BASELINE_DISTRIBUTED_KMEANS_H_
#define DBDC_BASELINE_DISTRIBUTED_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "common/types.h"
#include "distrib/partitioner.h"

namespace dbdc {

/// Configuration of the distributed k-means baseline.
struct DistributedKMeansConfig {
  int k = 8;
  int num_sites = 4;
  int max_rounds = 100;
  double tolerance = 1e-6;
  std::uint64_t seed = 42;
  /// Null = uniform random placement (like the DBDC experiments).
  const Partitioner* partitioner = nullptr;
};

struct DistributedKMeansResult {
  /// Centroid assignment per point (k-means has no noise concept).
  std::vector<ClusterId> labels;
  std::vector<Point> centroids;
  int rounds = 0;
  double inertia = 0.0;
  /// Bytes moved over the simulated links: per round, the server
  /// broadcasts k centroids to every site and every site returns k
  /// partial (sum, count) accumulators.
  std::uint64_t bytes_total = 0;
  double max_site_seconds = 0.0;
  double server_seconds = 0.0;
};

/// The parallel/distributed k-means of Dhillon & Modha (SIGKDD 1999),
/// the paper's related-work baseline [5]: k centroids iterate through
/// broadcast / local-assignment / global-reduction rounds until they
/// stop moving.
///
/// Implemented as the same kind of single-process simulation as DBDC
/// (sites run sequentially, the cost model charges the slowest site per
/// round), so runtimes and byte counts are directly comparable. The
/// paper's critique applies verbatim: k must be chosen by the user, and
/// non-globular clusters / noise are handled poorly — the
/// `bench_baseline_comparison` harness demonstrates both.
DistributedKMeansResult RunDistributedKMeans(
    const Dataset& data, const DistributedKMeansConfig& config);

}  // namespace dbdc

#endif  // DBDC_BASELINE_DISTRIBUTED_KMEANS_H_
