// Contract tests: programming errors must abort loudly through
// DBDC_ASSERT (the library is exception-free; contract violations are
// never silently absorbed).

#include <gtest/gtest.h>

#include "cluster/dbscan.h"
#include "common/dataset.h"
#include "index/grid_index.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"

namespace dbdc {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, DatasetRejectsWrongDimensionality) {
  Dataset data(2);
  EXPECT_DEATH(data.Add(Point{1.0, 2.0, 3.0}), "DBDC_ASSERT");
  EXPECT_DEATH(data.Add(Point{1.0}), "DBDC_ASSERT");
}

TEST(ContractDeathTest, DatasetRejectsOutOfRangeIds) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  EXPECT_DEATH(data.point(1), "DBDC_ASSERT");
  EXPECT_DEATH(data.point(-1), "DBDC_ASSERT");
}

TEST(ContractDeathTest, DatasetAppendRejectsDimensionMismatch) {
  Dataset a(2);
  Dataset b(3);
  EXPECT_DEATH(a.Append(b), "DBDC_ASSERT");
}

TEST(ContractDeathTest, DbscanRejectsInvalidParameters) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  const LinearScanIndex index(data, Euclidean());
  EXPECT_DEATH(RunDbscan(index, {0.0, 3}), "DBDC_ASSERT");
  EXPECT_DEATH(RunDbscan(index, {1.0, 0}), "DBDC_ASSERT");
}

TEST(ContractDeathTest, GridIndexRejectsNonPositiveCellWidth) {
  Dataset data(2);
  EXPECT_DEATH(GridIndex(data, Euclidean(), 0.0), "DBDC_ASSERT");
}

TEST(ContractDeathTest, StaticIndexRejectsDynamicUpdates) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  const KdTreeIndex index(data, Euclidean());
  EXPECT_FALSE(index.SupportsDynamicUpdates());
  KdTreeIndex mutable_index(data, Euclidean());
  EXPECT_DEATH(mutable_index.Insert(0), "DBDC_ASSERT");
  EXPECT_DEATH(mutable_index.Erase(0), "DBDC_ASSERT");
}

TEST(ContractDeathTest, DynamicIndexRejectsDoubleInsertAndGhostErase) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  LinearScanIndex index(data, Euclidean(), /*index_all=*/false);
  index.Insert(0);
  EXPECT_DEATH(index.Insert(0), "DBDC_ASSERT");
  index.Erase(0);
  EXPECT_DEATH(index.Erase(0), "DBDC_ASSERT");
}

}  // namespace
}  // namespace dbdc
