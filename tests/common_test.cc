#include <gtest/gtest.h>

#include "common/bounding_box.h"
#include "common/dataset.h"
#include "common/distance.h"
#include "common/rng.h"

namespace dbdc {
namespace {

TEST(DatasetTest, AddAndRead) {
  Dataset data(2);
  EXPECT_TRUE(data.empty());
  const PointId a = data.Add(Point{1.0, 2.0});
  const PointId b = data.Add(Point{-3.5, 4.25});
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.dim(), 2);
  EXPECT_DOUBLE_EQ(data.point(a)[0], 1.0);
  EXPECT_DOUBLE_EQ(data.point(b)[1], 4.25);
}

TEST(DatasetTest, AppendMergesAllPoints) {
  Dataset a(2);
  a.Add(Point{0.0, 0.0});
  Dataset b(2);
  b.Add(Point{1.0, 1.0});
  b.Add(Point{2.0, 2.0});
  a.Append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.point(2)[0], 2.0);
}

TEST(DistanceTest, EuclideanBasics) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Euclidean().Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Euclidean().Distance(a, a), 0.0);
}

TEST(DistanceTest, ManhattanAndChebyshev) {
  const Point a{1.0, 2.0};
  const Point b{4.0, -2.0};
  EXPECT_DOUBLE_EQ(Manhattan().Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(Chebyshev().Distance(a, b), 4.0);
}

TEST(DistanceTest, MetricByNameRoundTrip) {
  EXPECT_EQ(MetricByName("euclidean"), &Euclidean());
  EXPECT_EQ(MetricByName("manhattan"), &Manhattan());
  EXPECT_EQ(MetricByName("chebyshev"), &Chebyshev());
  EXPECT_EQ(MetricByName("nope"), nullptr);
}

class MetricAxiomsTest : public ::testing::TestWithParam<const Metric*> {};

TEST_P(MetricAxiomsTest, TriangleInequalityAndSymmetryOnRandomPoints) {
  const Metric& metric = *GetParam();
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Point a(3), b(3), c(3);
    for (int d = 0; d < 3; ++d) {
      a[d] = rng.Uniform(-10.0, 10.0);
      b[d] = rng.Uniform(-10.0, 10.0);
      c[d] = rng.Uniform(-10.0, 10.0);
    }
    const double ab = metric.Distance(a, b);
    const double ba = metric.Distance(b, a);
    const double ac = metric.Distance(a, c);
    const double cb = metric.Distance(c, b);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, ac + cb + 1e-12);
    EXPECT_DOUBLE_EQ(metric.Distance(a, a), 0.0);
  }
}

TEST_P(MetricAxiomsTest, MinDistanceToBoxIsALowerBound) {
  const Metric& metric = *GetParam();
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Point lo(2), hi(2), q(2), inside(2);
    for (int d = 0; d < 2; ++d) {
      const double a = rng.Uniform(-5.0, 5.0);
      const double b = rng.Uniform(-5.0, 5.0);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
      q[d] = rng.Uniform(-10.0, 10.0);
      inside[d] = rng.Uniform(lo[d], hi[d]);
    }
    const double bound = metric.MinDistanceToBox(q, lo, hi);
    EXPECT_LE(bound, metric.Distance(q, inside) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values(&Euclidean(), &Manhattan(),
                                           &Chebyshev()),
                         [](const auto& info) {
                           return std::string(info.param->name());
                         });

TEST(BoundingBoxTest, ExtendAndContains) {
  BoundingBox box(2);
  EXPECT_TRUE(box.empty());
  box.Extend(Point{1.0, 1.0});
  box.Extend(Point{3.0, -1.0});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains(Point{2.0, 0.0}));
  EXPECT_FALSE(box.Contains(Point{0.0, 0.0}));
  EXPECT_DOUBLE_EQ(box.Volume(), 4.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 4.0);
}

TEST(BoundingBoxTest, OverlapAndEnlargement) {
  BoundingBox a = BoundingBox::FromPoint(Point{0.0, 0.0});
  a.Extend(Point{2.0, 2.0});
  BoundingBox b = BoundingBox::FromPoint(Point{1.0, 1.0});
  b.Extend(Point{3.0, 3.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 1.0);
  BoundingBox far = BoundingBox::FromPoint(Point{10.0, 10.0});
  EXPECT_FALSE(a.Intersects(far));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(far), 0.0);
  // Enlarging a to cover b adds 9 - 4 = 5.
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 5.0);
}

TEST(BoundingBoxTest, CenterOfDegenerateBox) {
  const BoundingBox box = BoundingBox::FromPoint(Point{4.0, -2.0});
  const std::vector<double> c = box.Center();
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], -2.0);
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
  }
  EXPECT_EQ(a.UniformInt(0, 100), b.UniformInt(0, 100));
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

}  // namespace
}  // namespace dbdc
