// Clean variant: RAII ownership, plus the two shapes that must NOT
// fire — `= delete` on special members, and identifiers that merely
// contain the keywords (new_root, delete_count).
#include <memory>

namespace dbdc {

struct Node {
  int value = 0;

  Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
};

int GoodOwnership() {
  auto new_root = std::make_unique<Node>();
  int delete_count = 0;
  ++delete_count;
  return new_root->value + delete_count;
}

}  // namespace dbdc
