#ifndef DBDC_COMMON_RNG_H_
#define DBDC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace dbdc {

/// Seeded deterministic random number generator.
///
/// Every randomized component of the library (generators, partitioners,
/// k-means++) takes an explicit Rng so experiments are exactly
/// reproducible. A thin wrapper around std::mt19937_64 with the
/// distributions this codebase needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Derives an independent child generator (for per-site streams).
  Rng Fork() { return Rng(engine_()); }

  /// The underlying engine, for std::shuffle and friends.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dbdc

#endif  // DBDC_COMMON_RNG_H_
