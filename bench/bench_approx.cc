// Approximate-index crossover benchmark (ROADMAP item 2, DESIGN.md §14).
//
// The question this harness answers: at what cardinality do the exact
// NeighborIndex backends fall over on the workload the approximate tier
// targets — moderate-dimension (dim 12) Gaussian blobs, eps calibrated
// to hold ~5 % of a blob — and does ApproxIndex beat them there while
// staying exact on the answers?
//
//   1. n-sweep: per (n, index), build time plus the median wall time of a
//      Q-query BatchRangeQuery block (the DBSCAN expansion access
//      pattern), with recall measured against the linear scan's ground
//      truth. An index whose build or batch leg exceeds the time budget
//      is recorded as-is and skipped at every larger n ("fell over"):
//      at dim 12 the grid must odometer 3^12 cells per query, and the
//      metric trees lose their pruning to distance concentration.
//   2. Quality gate: full DBSCAN (exact k-d tree vs ApproxIndex) at a
//      moderate n, compared with the paper's Q_DBDC criteria (QualityP1
//      with qp = MinPts, QualityP2). window_scale = 1.0 makes the
//      approximate index exact, so both must be 1.0 — the gate would
//      catch any regression that breaks the Cauchy–Schwarz window.
//
// With --out FILE the results are emitted as machine-readable JSON
// (schema "dbdc-approx-bench-v1"; tools/run_bench.sh validates it and
// asserts recall >= 0.99 plus the n >= 10^6 wall-clock win). --quick
// shrinks the sweep to {20k, 50k} for CI smoke runs. Absolute times are
// hardware-dependent; the crossover shape is not.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "common/timer.h"
#include "data/generators.h"
#include "eval/quality.h"
#include "index/index_factory.h"

namespace {

using dbdc::bench::Fmt;
using dbdc::bench::Table;

struct SweepRow {
  std::size_t n = 0;
  int num_blobs = 0;
  double eps = 0.0;
  std::string index;
  bool skipped = false;
  std::string skip_reason;
  double build_seconds = 0.0;
  double batch_seconds = 0.0;
  double seconds_per_query = 0.0;
  std::size_t queries = 0;
  std::size_t neighbors_returned = 0;
  double recall = 1.0;
};

// Blob count scaled with n so per-blob neighborhoods stay in the
// hundreds — dense enough for DBSCAN, small enough that candidate
// verification is not the only cost.
int BlobsFor(std::size_t n) {
  if (n <= 50000) return 16;
  if (n <= 300000) return 64;
  return 256;
}

// Fraction of the ground truth's (query, neighbor) pairs the index
// reproduced. Both CSR blocks hold per-query sorted-unique ids for the
// same query order, so per-query sorted intersection counts suffice.
double Recall(const std::vector<dbdc::PointId>& truth_ids,
              const std::vector<std::size_t>& truth_counts,
              const std::vector<dbdc::PointId>& got_ids,
              const std::vector<std::size_t>& got_counts) {
  std::size_t truth_total = 0, hit = 0;
  std::size_t t_off = 0, g_off = 0;
  for (std::size_t q = 0; q < truth_counts.size(); ++q) {
    std::vector<dbdc::PointId> t(truth_ids.begin() + static_cast<long>(t_off),
                                 truth_ids.begin() +
                                     static_cast<long>(t_off +
                                                       truth_counts[q]));
    std::vector<dbdc::PointId> g(got_ids.begin() + static_cast<long>(g_off),
                                 got_ids.begin() +
                                     static_cast<long>(g_off +
                                                       got_counts[q]));
    std::sort(t.begin(), t.end());
    std::sort(g.begin(), g.end());
    std::vector<dbdc::PointId> both;
    std::set_intersection(t.begin(), t.end(), g.begin(), g.end(),
                          std::back_inserter(both));
    truth_total += t.size();
    hit += both.size();
    t_off += truth_counts[q];
    g_off += got_counts[q];
  }
  return truth_total == 0
             ? 1.0
             : static_cast<double>(hit) / static_cast<double>(truth_total);
}

}  // namespace

int main(int argc, char** argv) {
  using dbdc::bench::JsonEscape;
  using dbdc::bench::MedianSeconds;
  dbdc::bench::HarnessOptions options;
  if (!dbdc::bench::ParseHarnessOptions(argc, argv, &options)) return 2;
  const dbdc::bench::HarnessMetrics metrics;
  const bool quick = options.quick;

  const int kDim = 12;
  const double kNoiseFraction = 0.02;
  const std::vector<std::size_t> sweep =
      quick ? std::vector<std::size_t>{20000, 50000}
            : std::vector<std::size_t>{100000, 300000, 1000000};
  const std::size_t kQueries = quick ? 50 : 200;
  const double kBudgetSeconds = quick ? 2.0 : 30.0;
  const int repeats = quick ? 1 : 3;
  // The linear scan stays un-skipped at every n: it is the recall ground
  // truth, and its O(n) per query IS the baseline the crossover is
  // measured against.
  const std::vector<dbdc::IndexType> index_types = {
      dbdc::IndexType::kLinearScan,    dbdc::IndexType::kGrid,
      dbdc::IndexType::kKdTree,        dbdc::IndexType::kRStarTreeBulk,
      dbdc::IndexType::kMTree,         dbdc::IndexType::kVpTree,
      dbdc::IndexType::kApprox};

  std::vector<SweepRow> rows;
  std::vector<bool> fell_over(index_types.size(), false);
  Table sweep_table(
      Fmt("eps-query crossover, dim=%d blobs (Q=%zu queries per cell)", kDim,
          kQueries));
  sweep_table.SetHeader({"n", "index", "build_s", "batch_s", "s/query",
                         "recall", "note"});
  for (const std::size_t n : sweep) {
    const dbdc::SyntheticDataset ds =
        dbdc::MakeHighDimBlobs(n, kDim, BlobsFor(n), kNoiseFraction, 42);
    const double eps = ds.suggested_params.eps;
    std::vector<dbdc::PointId> queries;
    for (std::size_t j = 0; j < kQueries; ++j) {
      queries.push_back(
          static_cast<dbdc::PointId>(j * (ds.data.size() / kQueries)));
    }
    std::vector<dbdc::PointId> truth_ids;
    std::vector<std::size_t> truth_counts;
    for (std::size_t t = 0; t < index_types.size(); ++t) {
      const dbdc::IndexType type = index_types[t];
      SweepRow row;
      row.n = n;
      row.num_blobs = BlobsFor(n);
      row.eps = eps;
      row.index = std::string(dbdc::IndexTypeName(type));
      row.queries = kQueries;
      if (fell_over[t]) {
        row.skipped = true;
        row.skip_reason = "exceeded_budget";
        rows.push_back(row);
        sweep_table.AddRow({Fmt("%zu", n), row.index, "-", "-", "-", "-",
                            "skipped (exceeded budget at smaller n)"});
        continue;
      }
      dbdc::Timer build_timer;
      const std::unique_ptr<dbdc::NeighborIndex> index =
          dbdc::CreateIndex(type, ds.data, dbdc::Euclidean(), eps);
      row.build_seconds = build_timer.Seconds();
      std::vector<double> samples;
      std::vector<dbdc::PointId> out_ids;
      std::vector<std::size_t> out_counts;
      for (int r = 0; r < repeats; ++r) {
        dbdc::Timer timer;
        index->BatchRangeQuery(queries, eps, &out_ids, &out_counts);
        samples.push_back(timer.Seconds());
        // One over-budget sample is answer enough; don't triple the pain.
        if (samples.back() > kBudgetSeconds) break;
      }
      row.batch_seconds = MedianSeconds(samples);
      row.seconds_per_query =
          row.batch_seconds / static_cast<double>(kQueries);
      for (const std::size_t c : out_counts) row.neighbors_returned += c;
      if (type == dbdc::IndexType::kLinearScan) {
        truth_ids = out_ids;
        truth_counts = out_counts;
      } else {
        row.recall = Recall(truth_ids, truth_counts, out_ids, out_counts);
      }
      std::string note;
      if ((row.build_seconds > kBudgetSeconds ||
           row.batch_seconds > kBudgetSeconds) &&
          type != dbdc::IndexType::kLinearScan) {
        fell_over[t] = true;
        note = "over budget; skipped at larger n";
      }
      rows.push_back(row);
      sweep_table.AddRow({Fmt("%zu", n), row.index,
                          Fmt("%.3f", row.build_seconds),
                          Fmt("%.4f", row.batch_seconds),
                          Fmt("%.6f", row.seconds_per_query),
                          Fmt("%.4f", row.recall), note});
    }
  }
  sweep_table.Print();

  // --- Quality gate: full DBSCAN, exact vs approximate ----------------
  const std::size_t quality_n = quick ? 20000 : 100000;
  const dbdc::SyntheticDataset qds = dbdc::MakeHighDimBlobs(
      quality_n, kDim, BlobsFor(quality_n), kNoiseFraction, 43);
  dbdc::DbscanParams params = qds.suggested_params;
  params.threads = 0;  // Bit-identical for every thread count.
  const std::unique_ptr<dbdc::NeighborIndex> exact_index = dbdc::CreateIndex(
      dbdc::IndexType::kKdTree, qds.data, dbdc::Euclidean(), params.eps);
  dbdc::Timer exact_timer;
  const dbdc::Clustering exact = dbdc::RunDbscan(*exact_index, params);
  const double exact_seconds = exact_timer.Seconds();
  const std::unique_ptr<dbdc::NeighborIndex> approx_index = dbdc::CreateIndex(
      dbdc::IndexType::kApprox, qds.data, dbdc::Euclidean(), params.eps);
  dbdc::Timer approx_timer;
  const dbdc::Clustering approx = dbdc::RunDbscan(*approx_index, params);
  const double approx_seconds = approx_timer.Seconds();
  const double p1 =
      dbdc::QualityP1(approx.labels, exact.labels, params.min_pts, 0);
  const double p2 = dbdc::QualityP2(approx.labels, exact.labels, 0);
  Table quality_table(Fmt("Q_DBDC quality gate: full DBSCAN at n=%zu",
                          quality_n));
  quality_table.SetHeader(
      {"index", "seconds", "clusters", "P^I (qp=MinPts)", "P^II"});
  quality_table.AddRow({"kdtree (exact)", Fmt("%.3f", exact_seconds),
                        Fmt("%d", exact.num_clusters), "1.0000", "1.0000"});
  quality_table.AddRow({"approx", Fmt("%.3f", approx_seconds),
                        Fmt("%d", approx.num_clusters), Fmt("%.4f", p1),
                        Fmt("%.4f", p2)});
  quality_table.Print();

  if (!options.out_path.empty()) {
    std::ofstream out(options.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.out_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"dbdc-approx-bench-v1\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"dim\": " << kDim << ",\n";
    out << "  \"queries_per_cell\": " << kQueries << ",\n";
    out << "  \"budget_seconds\": " << Fmt("%.1f", kBudgetSeconds) << ",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      out << "    {\"n\": " << r.n << ", \"num_blobs\": " << r.num_blobs
          << ", \"eps\": " << Fmt("%.6f", r.eps) << ", \"index\": \""
          << JsonEscape(r.index) << "\", \"skipped\": "
          << (r.skipped ? "true" : "false") << ", \"skip_reason\": \""
          << JsonEscape(r.skip_reason) << "\", \"build_seconds\": "
          << Fmt("%.6f", r.build_seconds) << ", \"batch_seconds\": "
          << Fmt("%.6f", r.batch_seconds) << ", \"seconds_per_query\": "
          << Fmt("%.8f", r.seconds_per_query) << ", \"queries\": "
          << r.queries << ", \"neighbors_returned\": " << r.neighbors_returned
          << ", \"recall\": " << Fmt("%.6f", r.recall) << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"quality\": {\"n\": " << quality_n
        << ", \"eps\": " << Fmt("%.6f", params.eps)
        << ", \"min_pts\": " << params.min_pts
        << ", \"exact_seconds\": " << Fmt("%.6f", exact_seconds)
        << ", \"approx_seconds\": " << Fmt("%.6f", approx_seconds)
        << ", \"exact_clusters\": " << exact.num_clusters
        << ", \"approx_clusters\": " << approx.num_clusters
        << ", \"p1\": " << Fmt("%.6f", p1) << ", \"p2\": " << Fmt("%.6f", p2)
        << "},\n";
    out << "  \"metrics\": " << metrics.Json() << "\n";
    out << "}\n";
    std::printf("wrote %s\n", options.out_path.c_str());
  }
  return 0;
}
