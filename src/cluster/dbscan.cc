#include "cluster/dbscan.h"

#include <algorithm>

namespace dbdc {

std::size_t Clustering::CountNoise() const {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), kNoise));
}

std::size_t Clustering::CountCore() const {
  return static_cast<std::size_t>(
      std::count(is_core.begin(), is_core.end(), std::uint8_t{1}));
}

std::vector<std::size_t> Clustering::ClusterSizes() const {
  std::vector<std::size_t> sizes(num_clusters, 0);
  for (const ClusterId label : labels) {
    if (label >= 0) ++sizes[label];
  }
  return sizes;
}

Clustering RunDbscan(const NeighborIndex& index, const DbscanParams& params,
                     DbscanObserver* observer) {
  DBDC_CHECK(params.eps > 0.0);
  DBDC_CHECK(params.min_pts >= 1);
  const Dataset& data = index.data();
  const std::size_t n = data.size();
  DBDC_CHECK(index.size() == n && "RunDbscan requires a fully-built index");

  Clustering result;
  result.labels.assign(n, kUnclassified);
  result.is_core.assign(n, 0);

  std::vector<PointId> neighbors;
  std::vector<PointId> seeds;  // FIFO expansion queue of the current cluster.
  std::vector<PointId> expansion;

  ClusterId next_cluster = 0;
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    if (result.labels[p] != kUnclassified) continue;
    index.RangeQuery(p, params.eps, &neighbors);
    if (static_cast<int>(neighbors.size()) < params.min_pts) {
      // Tentative noise; may later be claimed as a border point.
      result.labels[p] = kNoise;
      continue;
    }
    // p is a core point: start a new cluster and expand it.
    const ClusterId cluster = next_cluster++;
    if (observer != nullptr) observer->OnClusterStarted(cluster);
    result.labels[p] = cluster;
    result.is_core[p] = 1;
    if (observer != nullptr) observer->OnCorePoint(p, cluster);
    seeds.clear();
    for (const PointId q : neighbors) {
      if (q == p) continue;
      if (result.labels[q] == kUnclassified || result.labels[q] == kNoise) {
        result.labels[q] = cluster;
        seeds.push_back(q);
      }
    }
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const PointId q = seeds[i];
      index.RangeQuery(q, params.eps, &expansion);
      if (static_cast<int>(expansion.size()) < params.min_pts) continue;
      result.is_core[q] = 1;
      if (observer != nullptr) observer->OnCorePoint(q, cluster);
      for (const PointId r : expansion) {
        if (result.labels[r] == kUnclassified || result.labels[r] == kNoise) {
          result.labels[r] = cluster;
          seeds.push_back(r);
        }
      }
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace dbdc
