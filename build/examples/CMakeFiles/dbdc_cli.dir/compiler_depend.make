# Empty compiler generated dependencies file for dbdc_cli.
# This may be replaced when dependencies are built.
