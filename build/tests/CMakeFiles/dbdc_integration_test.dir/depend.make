# Empty dependencies file for dbdc_integration_test.
# This may be replaced when dependencies are built.
