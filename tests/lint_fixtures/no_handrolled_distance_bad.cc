// Seeded violation for the no-handrolled-distance rule: a per-point
// Euclidean scoring loop that calls the scalar reference kernel once per
// candidate instead of handing the whole run to the batched kernels
// (common/simd_kernels.h). Such a loop sits outside the SIMD/scalar
// bit-identity contract of DESIGN.md §11 and never benefits from the
// vector tiers.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

double SquaredEuclideanDistance(std::span<const double> a,
                                std::span<const double> b);

void ScoreCellTheSlowWay(std::span<const double> query, const double* rows,
                         std::size_t n, std::size_t dim, double eps_sq,
                         std::vector<std::int32_t>* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double d = SquaredEuclideanDistance(
        query, std::span<const double>(rows + i * dim, dim));
    if (d <= eps_sq) {
      out->push_back(static_cast<std::int32_t>(i));
    }
  }
}
