// Scenario from the paper's introduction: space telescopes spread over
// the world gather gigabytes per hour that cannot be shipped to one
// site. Each observatory sees a *spatially correlated* slice of the sky
// (its own field of view), clusters its detections locally, and sends
// only the local model to the coordination server. The server merges the
// models as they arrive — it does not wait for the slowest observatory —
// and broadcasts the global source catalogue back.
//
//   $ ./astronomy_sites
//
// Demonstrates: Site/Server used directly (instead of the RunDbdc
// convenience driver), spatially correlated placement, incremental
// global-model construction, and the transmission ledger.

#include <cstdio>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/server.h"
#include "core/site.h"
#include "data/generators.h"
#include "distrib/network.h"
#include "distrib/partitioner.h"
#include "eval/quality.h"

int main() {
  using namespace dbdc;

  // Sky survey: point sources (clusters) over a noisy background.
  const SyntheticDataset sky = MakeBlobs(/*n=*/20000, /*num_blobs=*/9,
                                         /*noise_fraction=*/0.12, 1.0, 2.0,
                                         /*seed=*/2026);
  const DbscanParams params{1.0, 10};
  std::printf("sky catalogue: %zu detections, %d true sources\n",
              sky.data.size(), sky.num_components);

  // Each of the 6 observatories covers one declination band.
  const int kObservatories = 6;
  const SpatialSlabPartitioner bands(/*axis=*/1);
  Rng rng(1);
  const auto parts = bands.Partition(sky.data, kObservatories, &rng);

  SiteConfig site_config;
  site_config.dbscan = params;
  site_config.model_type = LocalModelType::kScor;

  SimulatedNetwork network;
  SimulatedNetwork::LinkModel satellite_link;
  satellite_link.bandwidth_bytes_per_sec = 128.0 * 1024;  // 1 Mbit/s.
  satellite_link.latency_sec = 0.6;

  Server server(Euclidean(), GlobalModelParams{});
  std::vector<Site> observatories;
  observatories.reserve(kObservatories);

  // Phase 1: every observatory clusters its own band and uplinks its
  // model. The server refreshes the global model after each arrival.
  for (int s = 0; s < kObservatories; ++s) {
    Dataset band(sky.data.dim());
    for (const PointId id : parts[s]) band.Add(sky.data.point(id));
    observatories.emplace_back(s, Euclidean(), std::move(band), parts[s]);
    Site& obs = observatories.back();
    obs.RunLocalPipeline(site_config);

    auto bytes = obs.EncodeLocalModelBytes();
    const double uplink_s =
        SimulatedNetwork::EstimateTransferSeconds(bytes.size(),
                                                  satellite_link);
    network.Send(s, kServerEndpoint, std::move(bytes));
    const DecodeStatus uplink_status =
        server.AddLocalModelBytes(network.messages().back().payload);
    DBDC_CHECK(uplink_status == DecodeStatus::kOk);
    server.BuildGlobal();  // Incremental arrival: merge what we have.
    std::printf(
        "observatory %d: %5zu detections, %2d local clusters, "
        "%3zu reps, uplink %.2fs -> global model now %2d clusters\n",
        s, obs.data().size(), obs.local_clustering().clustering.num_clusters,
        obs.local_model().representatives.size(), uplink_s,
        server.global_model().num_global_clusters);
  }

  // Phase 2: broadcast and relabel.
  const auto global_bytes = server.EncodeGlobalModelBytes();
  std::vector<ClusterId> merged(sky.data.size(), kNoise);
  for (Site& obs : observatories) {
    network.Send(kServerEndpoint, obs.site_id(), global_bytes);
    const DecodeStatus downlink_status =
        obs.ApplyGlobalModelBytes(global_bytes);
    DBDC_CHECK(downlink_status == DecodeStatus::kOk);
    for (std::size_t i = 0; i < obs.global_labels().size(); ++i) {
      merged[obs.origin_ids()[i]] = obs.global_labels()[i];
    }
  }

  // How good is the merged catalogue versus clustering everything in one
  // place?
  const Clustering central = [&] {
    const auto index =
        CreateIndex(IndexType::kGrid, sky.data, Euclidean(), params.eps);
    return RunDbscan(*index, params);
  }();
  std::printf("\nglobal catalogue: %d sources (central reference: %d)\n",
              server.global_model().num_global_clusters,
              central.num_clusters);
  std::printf("quality vs central: P^II = %.1f%%\n",
              100.0 * QualityP2(merged, central.labels));
  std::printf("total uplink %llu bytes, downlink %llu bytes (raw data: "
              "%zu points x %d doubles)\n",
              static_cast<unsigned long long>(network.BytesUplink()),
              static_cast<unsigned long long>(network.BytesDownlink()),
              sky.data.size(), sky.data.dim());
  return 0;
}
