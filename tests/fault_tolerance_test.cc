// Fault-injection matrix for the Transport/protocol layer (DESIGN.md §7):
// deterministic seeded faults, byte-identity of the zero-fault decorator,
// graceful degradation of the full pipeline when sites die or straggle,
// and the DecodeStatus taxonomy of rejected payloads. Runs under ASan and
// TSan as the fault layer's memory-safety net.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/dbdc.h"
#include "core/model_codec.h"
#include "data/generators.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "distrib/protocol.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

// ---------------------------------------------------------------------------
// Frame codec.

TEST(FrameCodecTest, RoundTripsDataAndAckFrames) {
  Frame data{FrameType::kData, 7, {1, 2, 3, 0xff, 0}};
  const std::vector<std::uint8_t> bytes = EncodeFrame(data);
  EXPECT_EQ(bytes.size(), FrameOverheadBytes() + data.payload.size());
  const auto back = DecodeFrame(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, FrameType::kData);
  EXPECT_EQ(back->seq, 7u);
  EXPECT_EQ(back->payload, data.payload);

  const auto ack = DecodeFrame(EncodeFrame(Frame{FrameType::kAck, 9, {}}));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, FrameType::kAck);
  EXPECT_EQ(ack->seq, 9u);
  EXPECT_TRUE(ack->payload.empty());
}

TEST(FrameCodecTest, EverySingleByteCorruptionIsRejected) {
  const std::vector<std::uint8_t> bytes =
      EncodeFrame(Frame{FrameType::kData, 3, {10, 20, 30, 40}});
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[pos] ^= 0x40;
    EXPECT_FALSE(DecodeFrame(corrupt).has_value())
        << "flip at byte " << pos << " accepted";
  }
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        DecodeFrame(std::span(bytes.data(), len)).has_value())
        << "truncation to " << len << " accepted";
  }
}

// ---------------------------------------------------------------------------
// Satellite 1 regression: inbox pointers must survive later Send calls.
// With the old vector-backed storage the reallocation on Send left the
// snapshot dangling; ASan flags any regression here immediately.

TEST(SimulatedNetworkTest, InboxPointersStableAcrossManySends) {
  SimulatedNetwork net;
  net.Send(0, kServerEndpoint, {1, 2, 3});
  net.Send(1, kServerEndpoint, {4, 5});
  const std::vector<const NetworkMessage*> snapshot =
      net.Inbox(kServerEndpoint);
  ASSERT_EQ(snapshot.size(), 2u);
  const NetworkMessage& first_ref = net.Message(0);

  // Enough traffic to force several grows of any contiguous storage.
  for (int i = 0; i < 1000; ++i) {
    net.Send(i % 7, kServerEndpoint,
             std::vector<std::uint8_t>(64, static_cast<std::uint8_t>(i)));
  }

  EXPECT_EQ(snapshot[0]->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(snapshot[1]->payload, (std::vector<std::uint8_t>{4, 5}));
  EXPECT_EQ(snapshot[0]->from, 0);
  EXPECT_EQ(&first_ref, snapshot[0]);
  EXPECT_EQ(net.Inbox(kServerEndpoint).size(), 1002u);
}

// ---------------------------------------------------------------------------
// FaultyNetwork decorator.

TEST(FaultyNetworkTest, ZeroFaultSpecIsExactPassThrough) {
  SimulatedNetwork plain;
  SimulatedNetwork inner;
  FaultyNetwork faulty(&inner, FaultSpec{});
  for (int i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> payload(17, static_cast<std::uint8_t>(i));
    const std::size_t a = plain.Send(i % 5, kServerEndpoint, payload);
    const std::size_t b = faulty.Send(i % 5, kServerEndpoint, payload);
    EXPECT_EQ(a, b);
  }
  ASSERT_EQ(faulty.NumMessages(), plain.NumMessages());
  for (std::size_t i = 0; i < plain.NumMessages(); ++i) {
    EXPECT_EQ(faulty.Message(i).payload, plain.Message(i).payload);
    EXPECT_EQ(faulty.DeliveryDelaySeconds(i), 0.0);
  }
  EXPECT_EQ(faulty.BytesUplink(), plain.BytesUplink());
  EXPECT_EQ(faulty.BytesTotal(), plain.BytesTotal());
  EXPECT_EQ(faulty.stats().messages_dropped, 0u);
  EXPECT_EQ(faulty.stats().messages_corrupted, 0u);
  EXPECT_EQ(faulty.stats().messages_delivered, 20u);
}

TEST(FaultyNetworkTest, SameSeedReproducesTheExactFaultSequence) {
  FaultSpec spec;
  spec.drop_rate = 0.3;
  spec.corrupt_rate = 0.2;
  spec.delay_mean_sec = 0.1;
  spec.seed = 1234;

  auto run = [&spec]() {
    SimulatedNetwork inner;
    FaultyNetwork net(&inner, spec);
    std::vector<std::size_t> indices;
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<double> delays;
    for (int i = 0; i < 200; ++i) {
      const std::size_t idx = net.Send(
          i % 4, kServerEndpoint,
          std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(i)));
      indices.push_back(idx);
      if (idx != kMessageDropped) {
        payloads.push_back(net.Message(idx).payload);
        delays.push_back(net.DeliveryDelaySeconds(idx));
      }
    }
    return std::tuple(indices, payloads, delays, net.stats().messages_dropped,
                      net.stats().messages_corrupted);
  };

  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<3>(a), 0u);
  EXPECT_GT(std::get<4>(a), 0u);
}

TEST(FaultyNetworkTest, FaultDecisionsAreIndependentOfLinkInterleaving) {
  // The per-message RNG is keyed on (seed, link, position-on-link), so
  // what happens to site 0's k-th message must not depend on how its
  // sends interleave with other sites'.
  FaultSpec spec;
  spec.drop_rate = 0.5;
  spec.seed = 99;
  const std::vector<std::uint8_t> payload(16, 0xab);

  std::vector<bool> alone, interleaved;
  {
    SimulatedNetwork inner;
    FaultyNetwork net(&inner, spec);
    for (int k = 0; k < 50; ++k) {
      alone.push_back(net.Send(0, kServerEndpoint, payload) !=
                      kMessageDropped);
    }
  }
  {
    SimulatedNetwork inner;
    FaultyNetwork net(&inner, spec);
    for (int k = 0; k < 50; ++k) {
      net.Send(1, kServerEndpoint, payload);
      interleaved.push_back(net.Send(0, kServerEndpoint, payload) !=
                            kMessageDropped);
      net.Send(2, kServerEndpoint, payload);
    }
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultyNetworkTest, DeadSitesAreBlackHolesInBothDirections) {
  FaultSpec spec;
  spec.failed_sites = {1};
  SimulatedNetwork inner;
  FaultyNetwork net(&inner, spec);
  EXPECT_EQ(net.Send(1, kServerEndpoint, {1, 2}), kMessageDropped);
  EXPECT_EQ(net.Send(kServerEndpoint, 1, {3, 4}), kMessageDropped);
  EXPECT_NE(net.Send(0, kServerEndpoint, {5, 6}), kMessageDropped);
  EXPECT_TRUE(net.SiteFailed(1));
  EXPECT_FALSE(net.SiteFailed(0));
  EXPECT_EQ(net.NumMessages(), 1u);
  EXPECT_EQ(net.stats().messages_dropped, 2u);
  EXPECT_EQ(net.stats().bytes_dropped, 4u);
}

// ---------------------------------------------------------------------------
// Reliable channel.

TEST(ReliableChannelTest, LosslessTransportDeliversOnFirstAttempt) {
  SimulatedNetwork net;
  ProtocolConfig config;
  config.enabled = true;
  ReliableChannel channel(&net, config);
  const std::vector<std::uint8_t> payload{9, 8, 7};
  const TransferOutcome out = channel.Transfer(0, kServerEndpoint, payload);
  EXPECT_TRUE(out.delivered);
  EXPECT_TRUE(out.acked);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.retries, 0);
  // Data frame + ack frame crossed the wire, nothing else.
  EXPECT_EQ(net.NumMessages(), 2u);
  const auto frame = DecodeFrame(net.Message(out.delivered_index).payload);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
}

TEST(ReliableChannelTest, RetriesRecoverFromDropsAndCorruption) {
  FaultSpec spec;
  spec.drop_rate = 0.25;
  spec.corrupt_rate = 0.15;
  spec.seed = 7;
  SimulatedNetwork inner;
  FaultyNetwork net(&inner, spec);
  ProtocolConfig config;
  config.enabled = true;
  config.max_attempts = 10;
  ReliableChannel channel(&net, config);

  int delivered = 0;
  for (int i = 0; i < 40; ++i) {
    const TransferOutcome out = channel.Transfer(
        i % 4, kServerEndpoint,
        std::vector<std::uint8_t>(100, static_cast<std::uint8_t>(i)));
    if (out.delivered) ++delivered;
    EXPECT_LE(out.attempts, config.max_attempts);
  }
  // With 10 attempts at 40% failure the success probability is ~1.
  EXPECT_EQ(delivered, 40);
  EXPECT_GT(channel.stats().retries, 0u);
  EXPECT_GT(channel.stats().data_drops + channel.stats().data_corruptions,
            0u);
}

TEST(ReliableChannelTest, ExhaustedAttemptBudgetReportsUndelivered) {
  FaultSpec spec;
  spec.drop_rate = 1.0;
  SimulatedNetwork inner;
  FaultyNetwork net(&inner, spec);
  ProtocolConfig config;
  config.enabled = true;
  config.max_attempts = 4;
  config.retry_backoff_sec = 0.05;
  ReliableChannel channel(&net, config);
  const TransferOutcome out =
      channel.Transfer(0, kServerEndpoint, std::vector<std::uint8_t>(50, 1));
  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.acked);
  EXPECT_EQ(out.attempts, 4);
  EXPECT_EQ(out.retries, 3);
  EXPECT_EQ(out.data_drops, 4);
  // Virtual clock: 4 transfer estimates + backoff 0.05*(1+2+4).
  const double frame_sec =
      EstimateTransferSeconds(50 + FrameOverheadBytes(), config.link);
  EXPECT_NEAR(out.elapsed_seconds, 4 * frame_sec + 0.05 * 7.0, 1e-12);
}

// ---------------------------------------------------------------------------
// DecodeStatus taxonomy.

TEST(DecodeStatusTest, RejectionReasonsAreDistinguished) {
  const SyntheticDataset synth = MakeTestDatasetC(3);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 2;
  SimulatedNetwork net;
  (void)RunDbdc(synth.data, Euclidean(), config, &net);
  const std::vector<const NetworkMessage*> inbox = net.Inbox(kServerEndpoint);
  ASSERT_FALSE(inbox.empty());
  const std::vector<std::uint8_t>& good = inbox[0]->payload;

  Server server(Euclidean(), GlobalModelParams{});
  EXPECT_EQ(server.AddLocalModelBytes(good), DecodeStatus::kOk);

  std::vector<std::uint8_t> corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_EQ(server.AddLocalModelBytes(corrupt),
            DecodeStatus::kChecksumMismatch);

  EXPECT_EQ(server.AddLocalModelBytes(std::span(good.data(), 7)),
            DecodeStatus::kTruncated);

  std::vector<std::uint8_t> future = good;
  future[4] = 99;  // Version field.
  EXPECT_EQ(server.AddLocalModelBytes(future),
            DecodeStatus::kVersionMismatch);

  std::vector<std::uint8_t> wrong_magic = good;
  wrong_magic[0] ^= 0xff;
  EXPECT_EQ(server.AddLocalModelBytes(wrong_magic), DecodeStatus::kBadMagic);

  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kChecksumMismatch),
               "checksum mismatch");
}

// ---------------------------------------------------------------------------
// Full pipeline under faults.

DbdcConfig BaseConfig(const SyntheticDataset& synth, int sites) {
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = sites;
  return config;
}

TEST(DegradedDbdcTest, ZeroFaultRunIsBitIdenticalToSimulatedNetwork) {
  const SyntheticDataset synth = MakeTestDatasetA(21);
  const DbdcConfig config = BaseConfig(synth, 4);

  SimulatedNetwork plain;
  const DbdcResult reference = RunDbdc(synth.data, Euclidean(), config,
                                       &plain);

  SimulatedNetwork inner;
  FaultyNetwork faulty(&inner, FaultSpec{});
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config, &faulty);

  EXPECT_EQ(result.labels, reference.labels);
  EXPECT_EQ(result.bytes_uplink, reference.bytes_uplink);
  EXPECT_EQ(result.bytes_downlink, reference.bytes_downlink);
  EXPECT_EQ(EncodeGlobalModel(result.global_model),
            EncodeGlobalModel(reference.global_model));
  ASSERT_EQ(faulty.NumMessages(), plain.NumMessages());
  for (std::size_t i = 0; i < plain.NumMessages(); ++i) {
    EXPECT_EQ(faulty.Message(i).payload, plain.Message(i).payload);
  }
  EXPECT_EQ(result.sites_failed, 0);
  EXPECT_EQ(result.sites_reporting, config.num_sites);
}

TEST(DegradedDbdcTest, ZeroFaultProtocolRunMatchesAcrossTransports) {
  // With the protocol on but no injected faults the two transports must
  // still agree bit for bit (framing is deterministic).
  const SyntheticDataset synth = MakeTestDatasetA(21);
  DbdcConfig config = BaseConfig(synth, 4);
  config.protocol.enabled = true;

  SimulatedNetwork plain;
  const DbdcResult reference = RunDbdc(synth.data, Euclidean(), config,
                                       &plain);
  SimulatedNetwork inner;
  FaultyNetwork faulty(&inner, FaultSpec{});
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config, &faulty);

  EXPECT_EQ(result.labels, reference.labels);
  EXPECT_EQ(result.bytes_uplink, reference.bytes_uplink);
  EXPECT_EQ(result.bytes_downlink, reference.bytes_downlink);
  EXPECT_EQ(result.sites_failed, 0);
  EXPECT_EQ(result.protocol_retries, 0u);
  EXPECT_EQ(reference.protocol_retries, 0u);
  EXPECT_EQ(result.sites_relabeled, config.num_sites);
}

TEST(DegradedDbdcTest, SameSeedSameDegradedOutcome) {
  const SyntheticDataset synth = MakeTestDatasetA(22);
  DbdcConfig config = BaseConfig(synth, 6);
  config.protocol.enabled = true;
  config.protocol.max_attempts = 3;

  FaultSpec spec;
  spec.drop_rate = 0.35;
  spec.corrupt_rate = 0.1;
  spec.seed = 4242;

  auto run = [&]() {
    SimulatedNetwork inner;
    FaultyNetwork net(&inner, spec);
    return RunDbdc(synth.data, Euclidean(), config, &net);
  };
  const DbdcResult a = run();
  const DbdcResult b = run();
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.failed_site_ids, b.failed_site_ids);
  EXPECT_EQ(a.sites_failed, b.sites_failed);
  EXPECT_EQ(a.protocol_retries, b.protocol_retries);
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_EQ(a.frames_corrupted, b.frames_corrupted);
  EXPECT_EQ(a.bytes_uplink, b.bytes_uplink);
}

TEST(DegradedDbdcTest, KFailedSitesAreReportedAndTheRestCluster) {
  const SyntheticDataset synth = MakeTestDatasetA(23);
  DbdcConfig config = BaseConfig(synth, 5);
  config.protocol.enabled = true;

  FaultSpec spec;
  spec.failed_sites = {1, 3};
  SimulatedNetwork inner;
  FaultyNetwork net(&inner, spec);
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config, &net);

  EXPECT_EQ(result.sites_failed, 2);
  EXPECT_EQ(result.sites_reporting, 3);
  EXPECT_EQ(result.failed_site_ids, (std::vector<int>{1, 3}));
  EXPECT_EQ(result.sites_relabeled, 3);
  EXPECT_GT(result.num_global_clusters, 0);
  // Failed sites' points keep kNoise; surviving sites still cluster.
  std::size_t failed_points = 0;
  for (const int s : result.failed_site_ids) {
    failed_points += result.site_sizes[static_cast<std::size_t>(s)];
  }
  std::size_t noise = 0;
  for (const ClusterId label : result.labels) noise += label == kNoise;
  EXPECT_GE(noise, failed_points);
  EXPECT_LT(noise, result.labels.size());
}

TEST(DegradedDbdcTest, AllSitesFailedYieldsEmptyModelAndAllNoise) {
  const SyntheticDataset synth = MakeTestDatasetC(24);
  DbdcConfig config = BaseConfig(synth, 4);
  config.protocol.enabled = true;

  FaultSpec spec;
  spec.failed_sites = {0, 1, 2, 3};
  SimulatedNetwork inner;
  FaultyNetwork net(&inner, spec);
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config, &net);

  EXPECT_EQ(result.sites_reporting, 0);
  EXPECT_EQ(result.sites_failed, 4);
  EXPECT_EQ(result.sites_relabeled, 0);
  EXPECT_EQ(result.num_global_clusters, 0);
  EXPECT_EQ(result.global_model.NumRepresentatives(), 0u);
  EXPECT_EQ(result.num_representatives, 0u);
  for (const ClusterId label : result.labels) EXPECT_EQ(label, kNoise);
  // Nothing crossed the wire.
  EXPECT_EQ(net.NumMessages(), 0u);
}

TEST(DegradedDbdcTest, CollectionDeadlineExpiresStragglers) {
  const SyntheticDataset synth = MakeTestDatasetA(25);
  DbdcConfig config = BaseConfig(synth, 4);
  config.protocol.enabled = true;
  config.protocol.collection_deadline_sec = 60.0;

  FaultSpec spec;
  spec.straggler_sites = {2};
  spec.straggler_delay_sec = 300.0;  // Far past the deadline.
  SimulatedNetwork inner;
  FaultyNetwork net(&inner, spec);
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config, &net);

  EXPECT_EQ(result.sites_failed, 1);
  EXPECT_EQ(result.failed_site_ids, (std::vector<int>{2}));
  // The straggler's frames did arrive (late) — they are on the wire, the
  // server just refused to wait for them.
  EXPECT_GT(net.stats().messages_delayed, 0u);
  // The broadcast still reaches the straggler eventually, so its points
  // are relabeled against the (degraded) global model.
  EXPECT_EQ(result.sites_relabeled, 4);
}

TEST(DegradedDbdcTest, DegradedRunStaysUsableUnderModerateDrops) {
  const SyntheticDataset synth = MakeTestDatasetA(26);
  const DbdcConfig clean_config = BaseConfig(synth, 4);
  const DbdcResult complete = RunDbdc(synth.data, Euclidean(), clean_config);

  DbdcConfig config = clean_config;
  config.protocol.enabled = true;
  config.protocol.max_attempts = 6;
  FaultSpec spec;
  spec.drop_rate = 0.2;
  spec.corrupt_rate = 0.05;
  spec.seed = 11;
  SimulatedNetwork inner;
  FaultyNetwork net(&inner, spec);
  const DbdcResult degraded = RunDbdc(synth.data, Euclidean(), config, &net);

  // With 6 attempts per transfer a 25% per-frame fault rate is far below
  // the retry budget: every site should get through...
  EXPECT_EQ(degraded.sites_failed, 0);
  // ...at the price of retransmissions, which the counters expose.
  EXPECT_GT(degraded.protocol_retries, 0u);
  EXPECT_GT(degraded.bytes_uplink, complete.bytes_uplink);
  // And the result matches the fault-free protocol run exactly: retries
  // change the traffic, not the model.
  EXPECT_EQ(degraded.labels, complete.labels);
}

}  // namespace
}  // namespace dbdc
