#ifndef DBDC_CORE_MODEL_CODEC_H_
#define DBDC_CORE_MODEL_CODEC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/global_model.h"
#include "core/local_model.h"

namespace dbdc {

/// Wire format for the models exchanged between sites and server.
///
/// Everything that crosses the simulated network is serialized through
/// this codec, so the byte counters of SimulatedNetwork measure the real
/// transmission cost of DBDC (the paper's headline saving: the local
/// models are a small fraction of the raw data).
///
/// Encoding is little-endian, versioned and self-describing enough for
/// Decode to reject truncated or corrupt payloads (recoverable error, no
/// exceptions) — and, since version 3, to say *why* via DecodeStatus.
///
/// LocalModel layout (version 3; v1 payloads lack the weight field and
/// decode with weight = 1, v1/v2 payloads lack the checksum trailer):
///   u32 magic 'DBLM' | u32 version | i32 site_id | i32 dim
///   i32 num_local_clusters | u32 rep_count
///   rep_count x { i32 local_cluster | f64 eps_range | u32 weight
///                 | dim x f64 coords }
///   u64 fnv1a(all preceding bytes)            [v3+]
///
/// GlobalModel layout:
///   u32 magic 'DBGM' | u32 version | i32 dim | i32 num_global_clusters
///   f64 eps_global_used | u32 rep_count
///   rep_count x { i32 global_cluster | i32 site | i32 local_cluster
///                 | f64 eps_range | u32 weight | dim x f64 coords }
///   u64 fnv1a(all preceding bytes)            [v3+]

/// Why a payload was rejected. kOk is the only success value; the
/// fault-injection tests assert the specific failure reason for each
/// corruption mode. [[nodiscard]] on the type: every function returning
/// a DecodeStatus is implicitly must-check, so a silently dropped wire
/// error cannot compile (tools/dbdc_lint.py additionally flags bare
/// discarding calls for builds that lack the warning).
enum class [[nodiscard]] DecodeStatus {
  kOk = 0,
  /// First four bytes are not the expected model magic.
  kBadMagic,
  /// Version field outside the [min, current] range this build decodes.
  kVersionMismatch,
  /// Payload ends before a declared field (or before the checksum
  /// trailer).
  kTruncated,
  /// The v3 checksum trailer does not match the payload bytes.
  kChecksumMismatch,
  /// Structurally complete but semantically invalid (non-finite or
  /// negative eps, zero weight, out-of-range ids, trailing garbage).
  kMalformed,
};

/// Human-readable name, for logs and test diagnostics.
const char* DecodeStatusName(DecodeStatus status);

std::vector<std::uint8_t> EncodeLocalModel(const LocalModel& model);
std::vector<std::uint8_t> EncodeGlobalModel(const GlobalModel& model);

/// Primary decode API: fills `*out` and returns kOk, or returns the
/// failure reason leaving `*out` unspecified.
DecodeStatus DecodeLocalModel(std::span<const std::uint8_t> bytes,
                              LocalModel* out);
DecodeStatus DecodeGlobalModel(std::span<const std::uint8_t> bytes,
                               GlobalModel* out);

/// Convenience wrappers collapsing the failure reason to nullopt.
[[nodiscard]] std::optional<LocalModel> DecodeLocalModel(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<GlobalModel> DecodeGlobalModel(
    std::span<const std::uint8_t> bytes);

/// Structural validation of a model about to be encoded or just decoded:
/// consistent dimensions, finite non-negative ε-ranges, positive weights,
/// cluster ids within range, and (for the global model) equally-sized
/// parallel arrays. Aborts with file:line context on violation — these are
/// programming errors, not wire corruption (corruption is rejected by the
/// decoders returning nullopt).
///
/// In Debug / DBDC_DCHECKS builds the encoders additionally self-check:
/// every encode is immediately decoded and re-encoded, and the round trip
/// must reproduce the original bytes exactly.
void ValidateLocalModel(const LocalModel& model);
void ValidateGlobalModel(const GlobalModel& model);

/// Serialized size in bytes of a raw dataset shipped naively (the
/// baseline DBDC's transmission saving is measured against): dim doubles
/// per point plus a small header.
std::uint64_t RawDatasetWireSize(std::size_t num_points, int dim);

}  // namespace dbdc

#endif  // DBDC_CORE_MODEL_CODEC_H_
