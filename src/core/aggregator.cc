#include "core/aggregator.h"

#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace dbdc {

AggregatorNode::AggregatorNode(EndpointId node_id, const Metric& metric,
                               const GlobalModelParams& params,
                               double condense_eps,
                               const GlobalModelStrategy* strategy)
    : node_id_(node_id),
      metric_(&metric),
      params_(params),
      condense_eps_(condense_eps),
      strategy_(strategy) {
  DBDC_CHECK(node_id >= 0 && "aggregator ids are non-negative endpoints");
  DBDC_CHECK(condense_eps >= 0.0);
}

DecodeStatus AggregatorNode::AddChildModelBytes(
    std::span<const std::uint8_t> bytes) {
  LocalModel model;
  const DecodeStatus status = DecodeLocalModel(bytes, &model);
  if (status == DecodeStatus::kOk) AddChildModel(std::move(model));
  return status;
}

void AggregatorNode::AddChildModel(LocalModel model) {
  if (!children_.empty()) {
    DBDC_CHECK(model.dim == children_.front().dim &&
               "child models must agree on dimensionality");
  }
  children_.push_back(std::move(model));
}

void AggregatorNode::UpsertChildModel(LocalModel model) {
  for (LocalModel& existing : children_) {
    if (existing.site_id == model.site_id) {
      existing = std::move(model);
      return;
    }
  }
  AddChildModel(std::move(model));
}

DecodeStatus AggregatorNode::UpsertChildModelBytes(
    std::span<const std::uint8_t> bytes) {
  LocalModel model;
  const DecodeStatus status = DecodeLocalModel(bytes, &model);
  if (status == DecodeStatus::kOk) UpsertChildModel(std::move(model));
  return status;
}

bool AggregatorNode::RemoveChildModel(int child_id) {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].site_id == child_id) {
      children_.erase(children_.begin() +
                      static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::size_t AggregatorNode::representatives_in() const {
  std::size_t total = 0;
  for (const LocalModel& child : children_) {
    total += child.representatives.size();
  }
  return total;
}

const LocalModel& AggregatorNode::BuildIntermediateModel() {
  Timer timer;
  // Concatenate in child order with the local-cluster ids offset apart,
  // so clusters of different children never alias. In lossless mode this
  // *is* the merged model: the children's representative sequences,
  // verbatim and in order.
  LocalModel merged;
  merged.site_id = node_id_;
  merged.dim = children_.empty() ? 0 : children_.front().dim;
  ClusterId offset = 0;
  for (const LocalModel& child : children_) {
    for (const Representative& rep : child.representatives) {
      Representative shifted = rep;
      shifted.local_cluster = rep.local_cluster + offset;
      merged.representatives.push_back(std::move(shifted));
    }
    offset += child.num_local_clusters;
  }
  merged.num_local_clusters = offset;

  if (condense_eps_ > 0.0 && !children_.empty()) {
    // Discover which representatives — across children — describe the
    // same density area, with the same machinery the root uses, then
    // condense within those intermediate clusters.
    const DbscanGlobalStrategy default_strategy;
    const GlobalModelStrategy* strategy =
        strategy_ != nullptr ? strategy_ : &default_strategy;
    const GlobalModel intermediate =
        strategy->Build(children_, *metric_, params_);
    DBDC_CHECK(intermediate.NumRepresentatives() ==
                   merged.representatives.size() &&
               "intermediate merge must cover every child representative");
    for (std::size_t i = 0; i < merged.representatives.size(); ++i) {
      merged.representatives[i].local_cluster =
          intermediate.rep_global_cluster[i];
    }
    merged.num_local_clusters = intermediate.num_global_clusters;
    merged = CondenseLocalModel(merged, condense_eps_, *metric_);
  }

  merged_ = std::move(merged);
  merge_seconds_ = timer.Seconds();
  obs::Count(obs::Counter::kAggregatorMerges);
  return merged_;
}

std::vector<std::uint8_t> AggregatorNode::EncodeIntermediateModelBytes() {
  BuildIntermediateModel();
  DBDC_CHECK(!children_.empty() &&
             "an aggregator with no child models sends nothing");
  return EncodeLocalModel(merged_);
}

}  // namespace dbdc
