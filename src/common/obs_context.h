#ifndef DBDC_COMMON_OBS_CONTEXT_H_
#define DBDC_COMMON_OBS_CONTEXT_H_

namespace dbdc::internal {

/// Thread-local observability scope: the metrics registry and tracer a
/// job scope (obs::ObsScope) installed on this thread, overriding the
/// process-wide hooks. Slots are opaque pointers because this header
/// lives in common/ — *below* the obs layer — so that the ThreadPool can
/// capture the creating thread's scope and re-install it on its workers
/// without a common -> obs dependency cycle. Only src/obs reads or
/// writes the slots, through typed accessors; everything else treats the
/// struct as an opaque token.
///
/// Null slot = no override: the obs hooks fall through to the
/// process-wide SetGlobalMetrics / SetGlobalTracer registration. This is
/// what gives the multi-tenant server per-job isolation — each job's
/// executor thread (and every pool thread it spawns) reports to that
/// job's own registry, while single-job tools keep using the process
/// globals unchanged.
struct ObsTlsScope {
  void* metrics = nullptr;
  void* tracer = nullptr;
};

inline thread_local ObsTlsScope tls_obs_scope;

}  // namespace dbdc::internal

#endif  // DBDC_COMMON_OBS_CONTEXT_H_
