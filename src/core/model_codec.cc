#include "core/model_codec.h"

#include <cstring>

namespace dbdc {
namespace {

constexpr std::uint32_t kLocalMagic = 0x4442544Du;   // "MTBD" LE -> 'DBLM'.
constexpr std::uint32_t kGlobalMagic = 0x4442474Du;  // 'DBGM'.
// Version 2 added the per-representative weight (see Representative).
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

  std::size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// Guards decoders against corrupted counts: the declared payload must
// fit in the bytes actually present, otherwise a flipped count could
// provoke a giant allocation before the per-field reads fail.
bool PayloadFits(const Reader& r, std::uint64_t count,
                 std::uint64_t bytes_per_item) {
  return count <= r.Remaining() / bytes_per_item;
}

}  // namespace

std::vector<std::uint8_t> EncodeLocalModel(const LocalModel& model) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  w.Put(kLocalMagic);
  w.Put(kVersion);
  w.Put(static_cast<std::int32_t>(model.site_id));
  w.Put(static_cast<std::int32_t>(model.dim));
  w.Put(static_cast<std::int32_t>(model.num_local_clusters));
  w.Put(static_cast<std::uint32_t>(model.representatives.size()));
  for (const Representative& rep : model.representatives) {
    DBDC_CHECK(static_cast<int>(rep.center.size()) == model.dim);
    w.Put(static_cast<std::int32_t>(rep.local_cluster));
    w.Put(rep.eps_range);
    w.Put(rep.weight);
    for (const double c : rep.center) w.Put(c);
  }
  return out;
}

std::optional<LocalModel> DecodeLocalModel(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  std::uint32_t magic = 0, version = 0, rep_count = 0;
  std::int32_t site_id = 0, dim = 0, num_clusters = 0;
  if (!r.Get(&magic) || magic != kLocalMagic) return std::nullopt;
  if (!r.Get(&version) || version < kMinVersion || version > kVersion) {
    return std::nullopt;
  }
  if (!r.Get(&site_id) || !r.Get(&dim) || !r.Get(&num_clusters) ||
      !r.Get(&rep_count)) {
    return std::nullopt;
  }
  if (dim < 1 || num_clusters < 0) return std::nullopt;
  // Each representative occupies 4 + 8 [+ 4 in v2] + dim*8 bytes.
  const std::uint64_t rep_bytes = (version >= 2 ? 16 : 12) +
                                  static_cast<std::uint64_t>(dim) * 8;
  if (!PayloadFits(r, rep_count, rep_bytes)) return std::nullopt;
  LocalModel model;
  model.site_id = site_id;
  model.dim = dim;
  model.num_local_clusters = num_clusters;
  model.representatives.reserve(rep_count);
  for (std::uint32_t i = 0; i < rep_count; ++i) {
    Representative rep;
    std::int32_t cluster = 0;
    if (!r.Get(&cluster) || !r.Get(&rep.eps_range)) return std::nullopt;
    if (version >= 2 && !r.Get(&rep.weight)) return std::nullopt;
    rep.local_cluster = cluster;
    rep.center.resize(dim);
    for (std::int32_t d = 0; d < dim; ++d) {
      if (!r.Get(&rep.center[d])) return std::nullopt;
    }
    model.representatives.push_back(std::move(rep));
  }
  if (!r.AtEnd()) return std::nullopt;  // Trailing garbage.
  return model;
}

std::vector<std::uint8_t> EncodeGlobalModel(const GlobalModel& model) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  const std::size_t m = model.NumRepresentatives();
  w.Put(kGlobalMagic);
  w.Put(kVersion);
  w.Put(static_cast<std::int32_t>(model.rep_points.dim()));
  w.Put(static_cast<std::int32_t>(model.num_global_clusters));
  w.Put(model.eps_global_used);
  w.Put(static_cast<std::uint32_t>(m));
  for (std::size_t i = 0; i < m; ++i) {
    w.Put(static_cast<std::int32_t>(model.rep_global_cluster[i]));
    w.Put(static_cast<std::int32_t>(model.rep_site[i]));
    w.Put(static_cast<std::int32_t>(model.rep_local_cluster[i]));
    w.Put(model.rep_eps[i]);
    w.Put(i < model.rep_weight.size() ? model.rep_weight[i] : 1u);
    for (const double c : model.rep_points.point(static_cast<PointId>(i))) {
      w.Put(c);
    }
  }
  return out;
}

std::optional<GlobalModel> DecodeGlobalModel(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  std::uint32_t magic = 0, version = 0, rep_count = 0;
  std::int32_t dim = 0, num_clusters = 0;
  double eps_global = 0.0;
  if (!r.Get(&magic) || magic != kGlobalMagic) return std::nullopt;
  if (!r.Get(&version) || version < kMinVersion || version > kVersion) {
    return std::nullopt;
  }
  if (!r.Get(&dim) || !r.Get(&num_clusters) || !r.Get(&eps_global) ||
      !r.Get(&rep_count)) {
    return std::nullopt;
  }
  if (dim < 1 || num_clusters < 0) return std::nullopt;
  // Each representative occupies 3*4 + 8 [+ 4 in v2] + dim*8 bytes.
  const std::uint64_t rep_bytes = (version >= 2 ? 24 : 20) +
                                  static_cast<std::uint64_t>(dim) * 8;
  if (!PayloadFits(r, rep_count, rep_bytes)) return std::nullopt;
  GlobalModel model;
  model.rep_points = Dataset(dim);
  model.num_global_clusters = num_clusters;
  model.eps_global_used = eps_global;
  if (rep_count == 0) {
    if (!r.AtEnd()) return std::nullopt;
    return model;
  }
  Point coords(dim);
  for (std::uint32_t i = 0; i < rep_count; ++i) {
    std::int32_t global_cluster = 0, site = 0, local_cluster = 0;
    double eps = 0.0;
    std::uint32_t weight = 1;
    if (!r.Get(&global_cluster) || !r.Get(&site) || !r.Get(&local_cluster) ||
        !r.Get(&eps)) {
      return std::nullopt;
    }
    if (version >= 2 && !r.Get(&weight)) return std::nullopt;
    for (std::int32_t d = 0; d < dim; ++d) {
      if (!r.Get(&coords[d])) return std::nullopt;
    }
    model.rep_points.Add(coords);
    model.rep_eps.push_back(eps);
    model.rep_weight.push_back(weight);
    model.rep_global_cluster.push_back(global_cluster);
    model.rep_site.push_back(site);
    model.rep_local_cluster.push_back(local_cluster);
  }
  if (!r.AtEnd()) return std::nullopt;
  return model;
}

std::uint64_t RawDatasetWireSize(std::size_t num_points, int dim) {
  return 16 + static_cast<std::uint64_t>(num_points) * dim * sizeof(double);
}

}  // namespace dbdc
