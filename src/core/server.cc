#include "core/server.h"

#include <utility>

#include "common/timer.h"
#include "core/model_codec.h"

namespace dbdc {

bool Server::AddLocalModelBytes(std::span<const std::uint8_t> bytes) {
  std::optional<LocalModel> model = DecodeLocalModel(bytes);
  if (!model.has_value()) return false;
  locals_.push_back(*std::move(model));
  return true;
}

void Server::AddLocalModel(LocalModel model) {
  locals_.push_back(std::move(model));
}

const GlobalModel& Server::BuildGlobal() {
  Timer timer;
  global_ = BuildGlobalModel(locals_, *metric_, params_);
  global_seconds_ = timer.Seconds();
  return global_;
}

std::vector<std::uint8_t> Server::EncodeGlobalModelBytes() const {
  return EncodeGlobalModel(global_);
}

}  // namespace dbdc
