# Empty compiler generated dependencies file for bench_optics_global.
# This may be replaced when dependencies are built.
