#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cluster/dbscan.h"
#include "data/generators.h"
#include "index/index_factory.h"
#include "index/linear_scan_index.h"
#include "test_util.h"

namespace dbdc {
namespace {

/// Two tight blobs far apart plus two isolated points.
Dataset TwoBlobsAndNoise() {
  Dataset data(2);
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    data.Add(Point{rng.Gaussian(0.0, 0.3), rng.Gaussian(0.0, 0.3)});
  }
  for (int i = 0; i < 30; ++i) {
    data.Add(Point{rng.Gaussian(10.0, 0.3), rng.Gaussian(10.0, 0.3)});
  }
  data.Add(Point{5.0, 5.0});
  data.Add(Point{-20.0, 7.0});
  return data;
}

TEST(DbscanTest, FindsTwoBlobsAndMarksNoise) {
  const Dataset data = TwoBlobsAndNoise();
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, {1.0, 4});
  EXPECT_EQ(result.num_clusters, 2);
  // All of blob 1 in one cluster, all of blob 2 in another.
  for (int i = 1; i < 30; ++i) EXPECT_EQ(result.labels[i], result.labels[0]);
  for (int i = 31; i < 60; ++i) {
    EXPECT_EQ(result.labels[i], result.labels[30]);
  }
  EXPECT_NE(result.labels[0], result.labels[30]);
  EXPECT_EQ(result.labels[60], kNoise);
  EXPECT_EQ(result.labels[61], kNoise);
  EXPECT_EQ(result.CountNoise(), 2u);
  EXPECT_EQ(result.ClusterSizes(), (std::vector<std::size_t>{30, 30}));
}

TEST(DbscanTest, ChainIsOneClusterThroughDensityReachability) {
  // A chain of points each 0.9 apart: with eps=1, min_pts=2 every point is
  // core and the chain is a single cluster despite its length.
  Dataset data(2);
  for (int i = 0; i < 50; ++i) data.Add(Point{i * 0.9, 0.0});
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, {1.0, 2});
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.CountNoise(), 0u);
  EXPECT_EQ(result.CountCore(), 50u);
}

TEST(DbscanTest, BorderPointBetweenTwoClustersJoinsExactlyOne) {
  // Two 4-point cores with one shared border point in the middle.
  //   A A A A  m  B B B B  with eps covering each side's span and m within
  //   eps of one core of each side but itself not core.
  Dataset data(2);
  for (int i = 0; i < 4; ++i) data.Add(Point{0.0 + i * 0.1, 0.0});  // 0-3
  for (int i = 0; i < 4; ++i) data.Add(Point{2.0 + i * 0.1, 0.0});  // 4-7
  data.Add(Point{1.15, 0.0});  // 8: within 1.0 of points 2,3 and 4,5.
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, {0.4, 3});
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_FALSE(result.is_core[8]);
  // eps=0.4: the middle point is within eps of neither side; make a second
  // run with a larger eps where it becomes a border of one cluster.
  const Clustering wide = RunDbscan(index, {0.9, 4});
  EXPECT_EQ(wide.num_clusters, 2);
  EXPECT_FALSE(wide.is_core[8]);
  EXPECT_GE(wide.labels[8], 0);  // Claimed by exactly one side.
}

TEST(DbscanTest, MinPtsOneMakesEveryPointACoreSingleton) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  data.Add(Point{100.0, 0.0});
  data.Add(Point{0.0, 100.0});
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, {1.0, 1});
  EXPECT_EQ(result.num_clusters, 3);
  EXPECT_EQ(result.CountNoise(), 0u);
  EXPECT_EQ(result.CountCore(), 3u);
}

TEST(DbscanTest, AllNoiseWhenMinPtsTooHigh) {
  Rng rng(2);
  const Dataset data = RandomDataset(20, 2, 0.0, 100.0, &rng);
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, {0.5, 10});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_EQ(result.CountNoise(), data.size());
}

TEST(DbscanTest, EmptyDataset) {
  Dataset data(2);
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, {1.0, 3});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.labels.empty());
}

TEST(DbscanTest, SinglePointIsNoiseUnlessMinPtsOne) {
  Dataset data(2);
  data.Add(Point{1.0, 1.0});
  const LinearScanIndex index(data, Euclidean());
  EXPECT_EQ(RunDbscan(index, {1.0, 2}).CountNoise(), 1u);
  EXPECT_EQ(RunDbscan(index, {1.0, 1}).num_clusters, 1);
}

TEST(DbscanTest, DuplicatePointsClusterTogether) {
  Dataset data(2);
  for (int i = 0; i < 10; ++i) data.Add(Point{3.0, 3.0});
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, {0.5, 5});
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.CountCore(), 10u);
}

// Every index type must produce an equivalent DBSCAN result.
class DbscanIndexAgnosticTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(DbscanIndexAgnosticTest, EquivalentToLinearScanResult) {
  const SyntheticDataset synth = MakeTestDatasetC(/*seed=*/9);
  const DbscanParams params = synth.suggested_params;
  const LinearScanIndex reference(synth.data, Euclidean());
  const Clustering want = RunDbscan(reference, params);
  const auto index =
      CreateIndex(GetParam(), synth.data, Euclidean(), params.eps);
  const Clustering got = RunDbscan(*index, params);
  ExpectDbscanEquivalent(synth.data, Euclidean(), params, want, got);
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, DbscanIndexAgnosticTest,
                         ::testing::Values(IndexType::kLinearScan,
                                           IndexType::kGrid,
                                           IndexType::kKdTree,
                                           IndexType::kRStarTree,
                                           IndexType::kMTree),
                         [](const auto& info) {
                           return std::string(IndexTypeName(info.param));
                         });

// Observer contract: OnCorePoint fires once per core point, after its
// cluster exists, in discovery order.
class RecordingObserver final : public DbscanObserver {
 public:
  void OnClusterStarted(ClusterId cluster) override {
    started_.push_back(cluster);
  }
  void OnCorePoint(PointId id, ClusterId cluster) override {
    core_events_.emplace_back(id, cluster);
  }
  std::vector<ClusterId> started_;
  std::vector<std::pair<PointId, ClusterId>> core_events_;
};

TEST(DbscanObserverTest, FiresOncePerCorePointWithFinalCluster) {
  const Dataset data = TwoBlobsAndNoise();
  const LinearScanIndex index(data, Euclidean());
  RecordingObserver observer;
  const Clustering result = RunDbscan(index, {1.0, 4}, &observer);
  EXPECT_EQ(observer.started_, (std::vector<ClusterId>{0, 1}));
  EXPECT_EQ(observer.core_events_.size(), result.CountCore());
  std::set<PointId> seen;
  for (const auto& [id, cluster] : observer.core_events_) {
    EXPECT_TRUE(seen.insert(id).second) << "duplicate core event for " << id;
    EXPECT_TRUE(result.is_core[id]);
    EXPECT_EQ(result.labels[id], cluster);
  }
}

TEST(DbscanTest, NoiseCanBecomeBorderOfLaterCluster) {
  // Point 0 is visited first, initially marked noise, then claimed as a
  // border point by the cluster around points 1..5.
  Dataset data(2);
  data.Add(Point{0.0, 0.0});  // Non-core; within eps of the core at 0.45.
  for (int i = 0; i < 5; ++i) data.Add(Point{0.45 + 0.05 * i, 0.0});
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, {0.5, 4});
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.labels[0], 0);
  EXPECT_FALSE(result.is_core[0]);
}

}  // namespace
}  // namespace dbdc
