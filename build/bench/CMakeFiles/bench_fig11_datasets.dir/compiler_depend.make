# Empty compiler generated dependencies file for bench_fig11_datasets.
# This may be replaced when dependencies are built.
