#ifndef DBDC_INDEX_INDEX_FACTORY_H_
#define DBDC_INDEX_INDEX_FACTORY_H_

#include <memory>
#include <string_view>

#include "index/neighbor_index.h"

namespace dbdc {

/// The spatial access methods available to DBSCAN and the DBDC driver.
enum class IndexType {
  kLinearScan,
  kGrid,
  kKdTree,
  kRStarTree,
  /// R*-tree built with Sort-Tile-Recursive bulk loading instead of
  /// repeated insertion (same queries, much faster static construction).
  kRStarTreeBulk,
  kMTree,
  /// Vantage-point tree (metric-only, static, balanced).
  kVpTree,
};

/// Builds an index of the requested type over `data`.
///
/// `eps_hint` sizes the grid cells (ignored by the other types); it should
/// be the DBSCAN ε the index will mostly be queried with and must be
/// positive when `type == kGrid`.
std::unique_ptr<NeighborIndex> CreateIndex(IndexType type, const Dataset& data,
                                           const Metric& metric,
                                           double eps_hint);

/// Parses "linear" / "grid" / "kdtree" / "rstar" / "rstar_bulk" /
/// "mtree" / "vptree"; returns false for unknown names.
bool ParseIndexType(std::string_view name, IndexType* out);

/// The inverse of ParseIndexType.
std::string_view IndexTypeName(IndexType type);

}  // namespace dbdc

#endif  // DBDC_INDEX_INDEX_FACTORY_H_
