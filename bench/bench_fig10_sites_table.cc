// Reproduces Fig. 10 of the DBDC paper (a table): quality Q_DBDC on test
// data set A as a function of the number of client sites, for both local
// models and both object quality functions, at Eps_global = 2*Eps_local.
// Also reports the number of local representatives as a percentage of
// the data set (the paper observes ~16-17%).
//
// Paper shape: P^I is insensitive to the number of sites (again showing
// it is unsuitable); P^II decreases slightly as sites increase but stays
// high.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

struct Fig10Row {
  int sites = 0;
  double rep_pct = 0.0;
  double p1_kmeans = 0.0, p2_kmeans = 0.0;
  double p1_scor = 0.0, p2_scor = 0.0;
};

std::vector<Fig10Row>& Rows() {
  static auto* rows = new std::vector<Fig10Row>();
  return *rows;
}

Fig10Row& RowFor(int sites) {
  for (Fig10Row& row : Rows()) {
    if (row.sites == sites) return row;
  }
  Rows().push_back(Fig10Row{sites, 0, 0, 0, 0, 0});
  return Rows().back();
}

const SyntheticDataset& Workload() {
  static const auto* synth = new SyntheticDataset(MakeTestDatasetA());
  return *synth;
}

const Clustering& CentralReference() {
  static const auto* central = new Clustering(RunCentralDbscan(
      Workload().data, Euclidean(), Workload().suggested_params,
      IndexType::kGrid).clustering);
  return *central;
}

void BM_QualityVsSites(benchmark::State& state, LocalModelType model) {
  const SyntheticDataset& synth = Workload();
  const int sites = static_cast<int>(state.range(0));
  DbdcConfig config = bench::MakeDbdcConfig(synth, sites);
  config.model_type = model;
  config.eps_global = 2.0 * synth.suggested_params.eps;
  for (auto _ : state) {
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    const double p1 = QualityP1(result.labels, CentralReference().labels,
                                synth.suggested_params.min_pts);
    const double p2 = QualityP2(result.labels, CentralReference().labels);
    Fig10Row& row = RowFor(sites);
    row.rep_pct = 100.0 * static_cast<double>(result.num_representatives) /
                  static_cast<double>(synth.data.size());
    if (model == LocalModelType::kKMeans) {
      row.p1_kmeans = p1;
      row.p2_kmeans = p2;
    } else {
      row.p1_scor = p1;
      row.p2_scor = p2;
    }
    state.counters["P1"] = p1;
    state.counters["P2"] = p2;
    state.counters["rep_pct"] = row.rep_pct;
  }
}

void BM_KMeans(benchmark::State& state) {
  BM_QualityVsSites(state, LocalModelType::kKMeans);
}
void BM_Scor(benchmark::State& state) {
  BM_QualityVsSites(state, LocalModelType::kScor);
}

void RegisterAll() {
  for (const int sites : {2, 4, 5, 8, 10, 14, 20}) {
    benchmark::RegisterBenchmark("quality_rep_kmeans", BM_KMeans)
        ->Arg(sites)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("quality_rep_scor", BM_Scor)
        ->Arg(sites)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Fig. 10 — Q_DBDC vs number of client sites (data set A, "
      "Eps_global = 2*Eps_local)");
  table.SetHeader({"sites", "local repr. [%]", "kMeans P^I", "kMeans P^II",
                   "Scor P^I", "Scor P^II"});
  for (const Fig10Row& row : Rows()) {
    table.AddRow({bench::Fmt("%d", row.sites),
                  bench::Fmt("%.0f", row.rep_pct),
                  bench::Fmt("%.0f", 100.0 * row.p1_kmeans),
                  bench::Fmt("%.0f", 100.0 * row.p2_kmeans),
                  bench::Fmt("%.0f", 100.0 * row.p1_scor),
                  bench::Fmt("%.0f", 100.0 * row.p2_scor)});
  }
  table.Print();
  std::printf("Paper reference (Fig. 10): ~16-17%% representatives; P^I "
              "constant at 98-99; P^II 96-98 dropping to ~89-91 at 14-20 "
              "sites.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
