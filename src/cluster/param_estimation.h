#ifndef DBDC_CLUSTER_PARAM_ESTIMATION_H_
#define DBDC_CLUSTER_PARAM_ESTIMATION_H_

#include <vector>

#include "index/neighbor_index.h"

namespace dbdc {

/// The sorted k-dist graph from the DBSCAN paper (Sec. 4.2): for every
/// indexed point, the distance to its k-th nearest *other* neighbor,
/// sorted in descending order. Its "valley"/knee separates noise (left,
/// large k-dist) from cluster points (right, small k-dist), and the
/// k-dist value at the knee is the suggested Eps.
std::vector<double> SortedKDistances(const NeighborIndex& index, int k);

/// Suggests a DBSCAN Eps for the indexed data with min_pts = k + 1,
/// using the maximum-deviation knee heuristic on the sorted k-dist
/// graph: the knee is the point of the curve farthest from the straight
/// line connecting its endpoints. Returns 0 for datasets with fewer
/// than 3 points.
double SuggestEps(const NeighborIndex& index, int min_pts);

}  // namespace dbdc

#endif  // DBDC_CLUSTER_PARAM_ESTIMATION_H_
