#ifndef DBDC_DISTRIB_TOPOLOGY_H_
#define DBDC_DISTRIB_TOPOLOGY_H_

#include <map>
#include <string>
#include <vector>

#include "distrib/transport.h"

namespace dbdc {

/// How the sites are wired to the root server (DESIGN.md §13).
enum class TopologyKind : int {
  kFlat = 0,  // The paper's star: every site uplinks straight to the root.
  kTree = 1,  // Balanced k-ary aggregation tree built from a fanout.
  kExplicit = 2,  // Caller-supplied parent map (arbitrary shapes).
};

/// Stable lower-case name for flags, JSON, and logs.
const char* TopologyKindName(TopologyKind kind);

/// The aggregation topology the DBDC pipeline routes over: which parent
/// each endpoint uplinks its (local or intermediate) model to, and which
/// children each aggregator merges. The root server is always
/// kServerEndpoint; sites keep their non-negative ids; aggregators get
/// fresh endpoint ids above every site id, assigned in construction
/// order — so the Transport's uplink/downlink counters (keyed on
/// kServerEndpoint) keep meaning "bytes over the root link" under any
/// shape.
///
/// A flat topology has zero aggregators and reduces the engine's routing
/// to exactly the historical star (same messages, same order, same
/// bytes — the equivalence test pins this).
///
/// All mutation (elastic membership: AddSite / RemoveSite /
/// RemoveAggregator) is deterministic: the same call sequence yields the
/// same shape, independent of any runtime state — re-parenting after an
/// aggregator death is reproducible across runs and across machines.
class Topology {
 public:
  /// The paper's star over sites 0..num_sites-1.
  static Topology Flat(int num_sites);

  /// Balanced k-ary aggregation tree over sites 0..num_sites-1:
  /// consecutive sites are grouped under consecutive bottom-level
  /// aggregators (site i -> aggregator i / fanout), aggregator layers are
  /// grouped the same way until at most `fanout` top-level nodes remain;
  /// those uplink to the root. Child order everywhere is ascending site
  /// order, so a lossless bottom-up concatenation presents the
  /// representatives to the root in exactly flat order. With
  /// num_sites <= fanout there are no aggregators (the tree *is* the
  /// star). fanout must be >= 2.
  static Topology KaryTree(int num_sites, int fanout);

  /// Arbitrary shape from an explicit parent map: `site_parent[i]` is the
  /// parent endpoint of site i (kServerEndpoint or an aggregator id),
  /// `aggregator_parent[k]` the parent of aggregator `num_sites + k`.
  /// Aggregator ids must be `num_sites + k`, the map acyclic and rooted
  /// at kServerEndpoint; Validate() reports the first violation.
  static Topology FromParentMap(int num_sites,
                                std::vector<EndpointId> site_parent,
                                std::vector<EndpointId> aggregator_parent);

  /// Structural check: every tracked endpoint reaches kServerEndpoint
  /// through tracked parents, with no cycles. Returns an empty string
  /// when sound, else a human-readable description of the first problem.
  std::string Validate() const;

  int num_sites() const { return num_sites_; }
  /// Aggregators currently alive (dead ones are gone for good).
  int num_aggregators() const { return static_cast<int>(aggregators_.size()); }
  /// Longest root-to-leaf path length in hops (1 for flat with sites).
  int depth() const;

  bool IsSite(EndpointId node) const {
    return node >= 0 && parents_.count(node) != 0 && !IsAggregator(node);
  }
  bool IsAggregator(EndpointId node) const {
    return aggregator_set_.count(node) != 0;
  }
  /// The smallest endpoint id FromParentMap/KaryTree may assign to an
  /// aggregator; explicit maps must use ids from this range.
  EndpointId FirstAggregatorId() const { return first_aggregator_id_; }

  /// Parent endpoint of a tracked site or aggregator.
  EndpointId ParentOf(EndpointId node) const;
  /// Ordered children of an aggregator or of kServerEndpoint.
  const std::vector<EndpointId>& ChildrenOf(EndpointId node) const;
  /// Hops from the root: root children are level 1, their children 2, ...
  int LevelOf(EndpointId node) const;

  /// All live aggregators ordered deepest level first (ties: ascending
  /// endpoint id) — the order a bottom-up merge pass must visit them in.
  std::vector<EndpointId> AggregatorsBottomUp() const;
  /// The same set ordered shallowest first (top-down broadcast order).
  std::vector<EndpointId> AggregatorsTopDown() const;

  /// Elastic membership. AddSite attaches a new site id under the
  /// deterministic join rule: the deepest-level aggregator with the
  /// fewest children (ties: ascending endpoint id), or the root when the
  /// topology has no aggregators. The id must not be tracked yet.
  void AddSite(EndpointId site);
  /// Detaches a tracked site (its parent keeps its other children).
  void RemoveSite(EndpointId site);
  /// Kills an aggregator: its children are re-parented onto its own
  /// parent, spliced into the parent's child list at the dead node's
  /// position in their existing order — the deterministic re-parenting
  /// rule (DESIGN.md §13).
  void RemoveAggregator(EndpointId aggregator);

  /// An empty flat topology over zero sites (equivalent to Flat(0));
  /// useful as a placeholder before the real shape is chosen, and as the
  /// starting point of a purely elastic (AddSite-grown) star.
  Topology() = default;

 private:
  void Link(EndpointId child, EndpointId parent);

  int num_sites_ = 0;
  EndpointId first_aggregator_id_ = 0;
  /// child -> parent, for every tracked site and aggregator.
  std::map<EndpointId, EndpointId> parents_;
  /// parent (aggregator or kServerEndpoint) -> ordered children.
  std::map<EndpointId, std::vector<EndpointId>> children_;
  /// Live aggregators in creation order.
  std::vector<EndpointId> aggregators_;
  std::map<EndpointId, int> aggregator_set_;
};

}  // namespace dbdc

#endif  // DBDC_DISTRIB_TOPOLOGY_H_
