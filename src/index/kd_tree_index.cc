#include "index/kd_tree_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "obs/metrics.h"

namespace dbdc {

KdTreeIndex::KdTreeIndex(const Dataset& data, const Metric& metric)
    : data_(&data), metric_(&metric), euclidean_(IsEuclideanMetric(metric)) {
  ids_.resize(data.size());
  std::iota(ids_.begin(), ids_.end(), 0);
  if (!ids_.empty()) {
    nodes_.reserve(2 * ids_.size() / kLeafSize + 2);
    root_ = BuildRecursive(0, static_cast<std::int32_t>(ids_.size()));
  }
}

std::int32_t KdTreeIndex::BuildRecursive(std::int32_t begin,
                                         std::int32_t end) {
  const std::int32_t node_idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  if (end - begin <= kLeafSize) {
    nodes_[node_idx].begin = begin;
    nodes_[node_idx].end = end;
    return node_idx;
  }
  // Split on the widest axis at the median.
  const int dim = data_->dim();
  int best_axis = 0;
  double best_extent = -1.0;
  for (int a = 0; a < dim; ++a) {
    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
    for (std::int32_t i = begin; i < end; ++i) {
      const double v = data_->point(ids_[i])[a];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      best_axis = a;
    }
  }
  const std::int32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](PointId a, PointId b) {
                     return data_->point(a)[best_axis] <
                            data_->point(b)[best_axis];
                   });
  const double split = data_->point(ids_[mid])[best_axis];
  const std::int32_t left = BuildRecursive(begin, mid);
  const std::int32_t right = BuildRecursive(mid, end);
  Node& node = nodes_[node_idx];
  node.axis = best_axis;
  node.split = split;
  node.left = left;
  node.right = right;
  return node_idx;
}

void KdTreeIndex::RangeQuery(std::span<const double> q, double eps,
                             std::vector<PointId>* out) const {
  out->clear();
  if (root_ < 0) return;
  simd::KernelStats kstats;
  RangeRecursive(root_, q, eps, eps * eps, &kstats, out);
  if (kstats.blocks_scored != 0) {
    if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
      metrics->Add(obs::Counter::kSimdBlocksScored, kstats.blocks_scored);
      metrics->Add(obs::Counter::kSimdCandidatesFiltered,
                   kstats.candidates_filtered);
    }
  }
}

void KdTreeIndex::RangeRecursive(std::int32_t node_idx,
                                 std::span<const double> q, double eps,
                                 double eps_sq, simd::KernelStats* kstats,
                                 std::vector<PointId>* out) const {
  const Node& node = nodes_[node_idx];
  if (node.axis < 0) {
    if (euclidean_) {
      if (simd::ReferenceScanEnabled()) {
        // Pre-batching scan: one inlined squared distance per leaf point
        // (the bench baseline; no kernel blocks are accounted).
        const std::size_t dim = static_cast<std::size_t>(data_->dim());
        for (std::int32_t i = node.begin; i < node.end; ++i) {
          const PointId id = ids_[i];
          if (simd::ReferenceSquaredL2(
                  q.data(), data_->raw() + static_cast<std::size_t>(id) * dim,
                  data_->dim()) <= eps_sq) {
            out->push_back(id);
          }
        }
        return;
      }
      // Devirtualized fast path: the leaf's id bucket is one block
      // through the batched kernel (squared distances vs eps², no sqrt).
      simd::FilterIdsSquaredEuclidean(
          q.data(), data_->raw(), data_->dim(), eps_sq,
          ids_.data() + node.begin,
          static_cast<std::size_t>(node.end - node.begin), out, kstats);
      return;
    }
    for (std::int32_t i = node.begin; i < node.end; ++i) {
      const PointId id = ids_[i];
      if (metric_->Distance(q, data_->point(id)) <= eps) out->push_back(id);
    }
    return;
  }
  // The true distance dominates any per-axis delta, so a subtree on the far
  // side of the split plane by more than eps cannot contain answers.
  if (q[node.axis] - eps <= node.split) {
    RangeRecursive(node.left, q, eps, eps_sq, kstats, out);
  }
  if (q[node.axis] + eps >= node.split) {
    RangeRecursive(node.right, q, eps, eps_sq, kstats, out);
  }
}

void KdTreeIndex::KnnQuery(std::span<const double> q, int k,
                           std::vector<PointId>* out) const {
  out->clear();
  if (k <= 0 || root_ < 0) return;
  const std::size_t want = std::min<std::size_t>(k, ids_.size());
  std::vector<std::pair<double, PointId>> heap;  // Max-heap on distance.
  KnnRecursive(root_, q, want, &heap);
  std::sort_heap(heap.begin(), heap.end());
  out->reserve(heap.size());
  for (const auto& [d, id] : heap) out->push_back(id);
}

void KdTreeIndex::KnnRecursive(
    std::int32_t node_idx, std::span<const double> q, std::size_t k,
    std::vector<std::pair<double, PointId>>* heap) const {
  const Node& node = nodes_[node_idx];
  if (node.axis < 0) {
    for (std::int32_t i = node.begin; i < node.end; ++i) {
      const PointId id = ids_[i];
      const double d = metric_->Distance(q, data_->point(id));
      if (heap->size() < k) {
        heap->emplace_back(d, id);
        std::push_heap(heap->begin(), heap->end());
      } else if (std::make_pair(d, id) < heap->front()) {
        // Whole-pair compare pins ties to (distance, id) ascending.
        std::pop_heap(heap->begin(), heap->end());
        heap->back() = {d, id};
        std::push_heap(heap->begin(), heap->end());
      }
    }
    return;
  }
  const double delta = q[node.axis] - node.split;
  const std::int32_t near = delta <= 0.0 ? node.left : node.right;
  const std::int32_t far = delta <= 0.0 ? node.right : node.left;
  KnnRecursive(near, q, k, heap);
  const double worst = heap->size() < k
                           ? std::numeric_limits<double>::max()
                           : heap->front().first;
  if (std::fabs(delta) <= worst) KnnRecursive(far, q, k, heap);
}

}  // namespace dbdc
