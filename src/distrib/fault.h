#ifndef DBDC_DISTRIB_FAULT_H_
#define DBDC_DISTRIB_FAULT_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "distrib/transport.h"

namespace dbdc {

/// What can go wrong on the wide-area links (the fault taxonomy of
/// DESIGN.md §7). All faults are drawn from a seeded per-message RNG, so
/// the same spec + seed reproduces the exact same fault sequence.
struct FaultSpec {
  /// Probability that a message vanishes in transit (never recorded).
  double drop_rate = 0.0;
  /// Probability that a delivered message has bytes flipped in transit.
  double corrupt_rate = 0.0;
  /// Upper bound on the number of bytes a corruption event flips (>= 1).
  int max_corrupt_bytes = 8;
  /// Mean extra in-transit delay per delivered message; the actual delay
  /// is uniform in [0.5, 1.5) x mean. 0 = no extra delay.
  double delay_mean_sec = 0.0;
  /// Dead sites: every message from or to these endpoints is dropped
  /// (the site crashed / its link is down — it neither transmits its
  /// local model nor receives the broadcast).
  std::vector<int> failed_sites;
  /// Straggling sites: delivered, but every message from or to them is
  /// additionally delayed by straggler_delay_sec (so a server-side
  /// collection deadline can expire them).
  std::vector<int> straggler_sites;
  double straggler_delay_sec = 0.0;
  /// Seed of the deterministic fault stream.
  std::uint64_t seed = 1;
};

/// Counters of what the fault layer did (transport-level view; the
/// protocol layer keeps its own end-to-end counters).
struct FaultStats {
  std::uint64_t messages_seen = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_corrupted = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t bytes_dropped = 0;
};

/// Transport decorator that injects deterministic, seeded faults into an
/// inner transport: message drop, byte corruption, per-message delay,
/// and whole-site failure/straggling.
///
/// Fault decisions are drawn from an RNG seeded per message with
/// hash(seed, from, to, per-link sequence number), so the outcome for
/// every message is a pure function of the spec and the message's
/// position on its link — independent of interleaving with other links
/// and reproducible run to run. With a default FaultSpec (all rates 0, no
/// failed sites) the decorator is an exact pass-through: the inner
/// transport records byte-identical messages.
///
/// The inner transport owns the recorded messages; byte counters and
/// inboxes delegate to it, so they count what was actually delivered.
class FaultyNetwork : public Transport {
 public:
  /// `inner` must outlive this decorator.
  FaultyNetwork(Transport* inner, const FaultSpec& spec);

  std::size_t Send(EndpointId from, EndpointId to,
                   std::vector<std::uint8_t> payload) override;

  std::vector<const NetworkMessage*> Inbox(EndpointId endpoint) const override {
    return inner_->Inbox(endpoint);
  }
  std::size_t NumMessages() const override { return inner_->NumMessages(); }
  const NetworkMessage& Message(std::size_t index) const override {
    return inner_->Message(index);
  }
  double DeliveryDelaySeconds(std::size_t index) const override;

  std::uint64_t BytesUplink() const override { return inner_->BytesUplink(); }
  std::uint64_t BytesDownlink() const override {
    return inner_->BytesDownlink();
  }
  std::uint64_t BytesTotal() const override { return inner_->BytesTotal(); }

  void Clear() override;

  /// Swaps the fault spec mid-stream (a link that heals or degrades while
  /// a continuous run is live — the elastic-membership tests script
  /// exactly this). The per-link sequence counters are kept, so messages
  /// after the swap continue the same deterministic fault stream.
  void SetSpec(const FaultSpec& spec) { spec_ = spec; }

  const FaultSpec& spec() const { return spec_; }
  const FaultStats& stats() const { return stats_; }
  bool SiteFailed(EndpointId endpoint) const;
  bool SiteStraggling(EndpointId endpoint) const;

 private:
  Transport* inner_;
  FaultSpec spec_;
  FaultStats stats_;
  /// Per-link monotonic send counters feeding the per-message seeds.
  std::map<std::pair<EndpointId, EndpointId>, std::uint64_t> link_sequence_;
  /// Extra delay per inner message index (only delivered messages).
  std::map<std::size_t, double> delays_;
};

}  // namespace dbdc

#endif  // DBDC_DISTRIB_FAULT_H_
