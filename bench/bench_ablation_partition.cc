// Ablation (DESIGN.md): the paper's evaluation assumes the data is
// "equally distributed" over the sites (uniform random placement). Real
// deployments are rarely uniform — geographically collected data is
// spatially correlated and site sizes are skewed. This bench quantifies
// how DBDC's quality depends on the placement, holding everything else
// fixed.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

constexpr int kSites = 8;

struct Row {
  std::string partitioner;
  std::string model;
  double p1 = 0.0;
  double p2 = 0.0;
  std::size_t reps = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

const SyntheticDataset& Workload() {
  static const auto* synth = new SyntheticDataset(MakeTestDatasetA());
  return *synth;
}

const Clustering& CentralReference() {
  static const auto* central = new Clustering(RunCentralDbscan(
      Workload().data, Euclidean(), Workload().suggested_params,
      IndexType::kGrid).clustering);
  return *central;
}

const Partitioner& PartitionerByIndex(int idx) {
  static const UniformRandomPartitioner* const uniform =
      new UniformRandomPartitioner();
  static const SpatialSlabPartitioner* const slab =
      new SpatialSlabPartitioner(0);
  static const SizeSkewedPartitioner* const skewed =
      new SizeSkewedPartitioner(0.6);
  switch (idx) {
    case 0:
      return *uniform;
    case 1:
      return *slab;
    default:
      return *skewed;
  }
}

void BM_Partitioning(benchmark::State& state, LocalModelType model) {
  const SyntheticDataset& synth = Workload();
  const Partitioner& partitioner =
      PartitionerByIndex(static_cast<int>(state.range(0)));
  DbdcConfig config = bench::MakeDbdcConfig(synth, kSites);
  config.model_type = model;
  config.eps_global = 2.0 * synth.suggested_params.eps;
  config.partitioner = &partitioner;
  for (auto _ : state) {
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    Row row;
    row.partitioner = std::string(partitioner.name());
    row.model = std::string(LocalModelTypeName(model));
    row.p1 = QualityP1(result.labels, CentralReference().labels,
                       synth.suggested_params.min_pts);
    row.p2 = QualityP2(result.labels, CentralReference().labels);
    row.reps = result.num_representatives;
    Rows().push_back(row);
    state.counters["P2"] = row.p2;
  }
}

void BM_Scor(benchmark::State& state) {
  BM_Partitioning(state, LocalModelType::kScor);
}
void BM_KMeans(benchmark::State& state) {
  BM_Partitioning(state, LocalModelType::kKMeans);
}

void RegisterAll() {
  for (const int idx : {0, 1, 2}) {
    benchmark::RegisterBenchmark("partition_rep_scor", BM_Scor)
        ->Arg(idx)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("partition_rep_kmeans", BM_KMeans)
        ->Arg(idx)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Ablation — data placement across sites (data set A, 8 sites, "
      "Eps_global = 2*Eps_local)");
  table.SetHeader({"placement", "local model", "P^I [%]", "P^II [%]",
                   "#reps"});
  for (const Row& row : Rows()) {
    table.AddRow({row.partitioner, row.model,
                  bench::Fmt("%.1f", 100.0 * row.p1),
                  bench::Fmt("%.1f", 100.0 * row.p2),
                  bench::Fmt("%zu", row.reps)});
  }
  table.Print();
  std::printf("Expectation: uniform placement (the paper's setting) gives "
              "the best quality; spatially correlated slabs remain good "
              "because the global merge reunites split clusters; size "
              "skew mostly affects the per-site noise floor.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
