# Empty compiler generated dependencies file for bench_ablation_condense.
# This may be replaced when dependencies are built.
