#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/generators.h"
#include "data/io.h"

namespace dbdc {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(IoTest, DatasetRoundTrip) {
  Dataset data(3);
  data.Add(Point{1.5, -2.25, 0.0});
  data.Add(Point{1e-12, 3.14159265358979, -1e6});
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteDatasetCsv(path, data));
  const auto loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->data.size(), 2u);
  ASSERT_EQ(loaded->data.dim(), 3);
  for (PointId p = 0; p < 2; ++p) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(loaded->data.point(p)[d], data.point(p)[d]);
    }
  }
  EXPECT_FALSE(loaded->labels.has_value());
}

TEST_F(IoTest, LabeledRoundTrip) {
  const SyntheticDataset synth = MakeTestDatasetC(1);
  const std::string path = TempPath("labeled.csv");
  ASSERT_TRUE(WriteDatasetCsv(path, synth.data, &synth.true_labels));
  const auto loaded = ReadDatasetCsv(path, /*has_label_column=*/true);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->data.size(), synth.data.size());
  EXPECT_EQ(loaded->data.dim(), 2);
  ASSERT_TRUE(loaded->labels.has_value());
  EXPECT_EQ(*loaded->labels, synth.true_labels);
}

TEST_F(IoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadDatasetCsv(TempPath("does_not_exist.csv")).has_value());
}

TEST_F(IoTest, MalformedRowsRejected) {
  const std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "1.0,2.0\n1.0\n";  // Ragged.
  }
  EXPECT_FALSE(ReadDatasetCsv(path).has_value());
  {
    std::ofstream out(path);
    out << "1.0,abc\n";  // Not a number.
  }
  EXPECT_FALSE(ReadDatasetCsv(path).has_value());
  {
    std::ofstream out(path);  // Empty file.
  }
  EXPECT_FALSE(ReadDatasetCsv(path).has_value());
}

TEST_F(IoTest, NonFiniteFieldsRejected) {
  // strtod happily parses all of these; every one would poison the
  // distance computations downstream.
  const char* bad_rows[] = {"nan,1.0\n",  "1.0,inf\n",      "-inf,2.0\n",
                            "NaN,NAN\n",  "infinity,1.0\n", "1e999,1.0\n",
                            "1.0,-1e999\n"};
  for (const char* row : bad_rows) {
    const std::string path = TempPath("nonfinite.csv");
    {
      std::ofstream out(path);
      out << row;
    }
    EXPECT_FALSE(ReadDatasetCsv(path).has_value()) << "accepted: " << row;
  }
}

TEST_F(IoTest, TrailingJunkRejected) {
  const char* bad_rows[] = {"2x,1.0\n", "1.0,3.5q\n", "1.0 2.0,3.0\n"};
  for (const char* row : bad_rows) {
    const std::string path = TempPath("junk.csv");
    {
      std::ofstream out(path);
      out << row;
    }
    EXPECT_FALSE(ReadDatasetCsv(path).has_value()) << "accepted: " << row;
  }
}

TEST_F(IoTest, SurroundingBlanksAccepted) {
  const std::string path = TempPath("blanks.csv");
  {
    std::ofstream out(path);
    out << " 1.5 ,\t-2.0\n";
  }
  const auto loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->data.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded->data.point(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(loaded->data.point(0)[1], -2.0);
}

TEST_F(IoTest, CrlfLineEndingsAccepted) {
  const std::string path = TempPath("crlf.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "1.0,2.0\r\n3.0,4.0\r\n";
  }
  const auto loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->data.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->data.point(1)[1], 4.0);
}

TEST_F(IoTest, LabelColumnOnSingleColumnFileRejected) {
  // One column and has_label_column leaves zero coordinate columns.
  const std::string path = TempPath("onecol.csv");
  {
    std::ofstream out(path);
    out << "1.0\n2.0\n";
  }
  EXPECT_FALSE(ReadDatasetCsv(path, /*has_label_column=*/true).has_value());
  EXPECT_TRUE(ReadDatasetCsv(path).has_value());
}

TEST_F(IoTest, LabelSizeMismatchFailsWrite) {
  Dataset data(2);
  data.Add(Point{1.0, 2.0});
  const std::vector<ClusterId> labels = {0, 1};  // Wrong length.
  EXPECT_FALSE(WriteDatasetCsv(TempPath("mismatch.csv"), data, &labels));
}

}  // namespace
}  // namespace dbdc
