#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/incremental_dbscan.h"
#include "index/linear_scan_index.h"
#include "test_util.h"

namespace dbdc {
namespace {

constexpr DbscanParams kParams{1.0, 4};

/// Runs batch DBSCAN on the active points of `inc` and asserts the
/// incremental state is an equivalent DBSCAN clustering.
void ExpectMatchesBatch(const IncrementalDbscan& inc) {
  // Rebuild a dataset of the active points; keep the id mapping.
  Dataset active(inc.data().dim());
  std::vector<PointId> ids;
  for (PointId p = 0; p < static_cast<PointId>(inc.data().size()); ++p) {
    if (!inc.IsActive(p)) continue;
    active.Add(inc.data().point(p));
    ids.push_back(p);
  }
  const LinearScanIndex index(active, Euclidean());
  const Clustering batch = RunDbscan(index, inc.params());
  // Project the incremental labels onto the compact dataset.
  const Clustering snapshot = inc.Snapshot();
  Clustering projected;
  projected.num_clusters = snapshot.num_clusters;
  projected.labels.reserve(ids.size());
  projected.is_core.reserve(ids.size());
  for (const PointId p : ids) {
    projected.labels.push_back(snapshot.labels[p]);
    projected.is_core.push_back(snapshot.is_core[p]);
  }
  ExpectDbscanEquivalent(active, Euclidean(), inc.params(), batch,
                         projected);
}

TEST(IncrementalDbscanTest, FirstPointsAreNoiseUntilDensityReached) {
  IncrementalDbscan inc(kParams, Euclidean(), 2);
  const PointId a = inc.Insert(Point{0.0, 0.0});
  const PointId b = inc.Insert(Point{0.1, 0.0});
  const PointId c = inc.Insert(Point{0.2, 0.0});
  EXPECT_EQ(inc.Label(a), kNoise);
  EXPECT_EQ(inc.Label(b), kNoise);
  EXPECT_EQ(inc.Label(c), kNoise);
  // Fourth point: all four are mutual neighbors -> everything turns core.
  const PointId d = inc.Insert(Point{0.3, 0.0});
  EXPECT_GE(inc.Label(a), 0);
  EXPECT_EQ(inc.Label(a), inc.Label(b));
  EXPECT_EQ(inc.Label(a), inc.Label(c));
  EXPECT_EQ(inc.Label(a), inc.Label(d));
  EXPECT_TRUE(inc.IsCore(a));
  ExpectMatchesBatch(inc);
}

TEST(IncrementalDbscanTest, AbsorptionOfABorderPoint) {
  IncrementalDbscan inc(kParams, Euclidean(), 2);
  for (int i = 0; i < 5; ++i) {
    inc.Insert(Point{0.1 * i, 0.0});
  }
  // New point near the cluster but with a sparse own neighborhood: border.
  const PointId p = inc.Insert(Point{1.35, 0.0});
  EXPECT_GE(inc.Label(p), 0);
  EXPECT_FALSE(inc.IsCore(p));
  ExpectMatchesBatch(inc);
}

TEST(IncrementalDbscanTest, InsertionMergesTwoClusters) {
  IncrementalDbscan inc(kParams, Euclidean(), 2);
  // Two dense groups 1.8 apart.
  std::vector<PointId> left, right;
  for (int i = 0; i < 5; ++i) {
    left.push_back(inc.Insert(Point{0.0 + 0.05 * i, 0.0}));
    right.push_back(inc.Insert(Point{1.8 + 0.05 * i, 0.0}));
  }
  ASSERT_NE(inc.Label(left[0]), inc.Label(right[0]));
  ASSERT_GE(inc.Label(left[0]), 0);
  // A bridge point in the middle is within eps of both groups and becomes
  // core -> merge.
  const PointId bridge = inc.Insert(Point{1.0, 0.0});
  EXPECT_EQ(inc.Label(left[0]), inc.Label(right[0]));
  EXPECT_EQ(inc.Label(bridge), inc.Label(left[0]));
  ExpectMatchesBatch(inc);
}

TEST(IncrementalDbscanTest, DeletionSplitsACluster) {
  IncrementalDbscan inc({1.0, 3}, Euclidean(), 2);
  // Dumbbell: two dense groups connected through one bridge point.
  std::vector<PointId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(inc.Insert(Point{0.1 * i, 0.0}));
  for (int i = 0; i < 4; ++i) {
    ids.push_back(inc.Insert(Point{1.7 + 0.1 * i, 0.0}));
  }
  const PointId bridge = inc.Insert(Point{0.95, 0.0});
  ASSERT_EQ(inc.Label(ids[0]), inc.Label(ids[4]));  // One merged cluster.
  inc.Erase(bridge);
  EXPECT_NE(inc.Label(ids[0]), inc.Label(ids[4]));  // Split again.
  ExpectMatchesBatch(inc);
}

TEST(IncrementalDbscanTest, DeletionDemotesClusterToNoise) {
  IncrementalDbscan inc(kParams, Euclidean(), 2);
  std::vector<PointId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(inc.Insert(Point{0.1 * i, 0.0}));
  ASSERT_GE(inc.Label(ids[0]), 0);
  inc.Erase(ids[3]);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(inc.Label(ids[i]), kNoise);
  ExpectMatchesBatch(inc);
}

TEST(IncrementalDbscanTest, EraseBorderPointLeavesClusterIntact) {
  IncrementalDbscan inc(kParams, Euclidean(), 2);
  std::vector<PointId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(inc.Insert(Point{0.1 * i, 0.0}));
  const PointId border = inc.Insert(Point{1.4, 0.0});
  ASSERT_FALSE(inc.IsCore(border));
  ASSERT_GE(inc.Label(border), 0);
  inc.Erase(border);
  EXPECT_GE(inc.Label(ids[0]), 0);
  EXPECT_EQ(inc.size(), 6u);
  ExpectMatchesBatch(inc);
}

class IncrementalRandomizedTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalRandomizedTest, InsertOnlyStreamMatchesBatch) {
  Rng rng(GetParam());
  IncrementalDbscan inc(kParams, Euclidean(), 2);
  for (int i = 0; i < 300; ++i) {
    // Mix of clustered and background points.
    if (rng.UniformInt(0, 3) == 0) {
      inc.Insert(Point{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)});
    } else {
      const double cx = 5.0 * rng.UniformInt(0, 3);
      inc.Insert(Point{rng.Gaussian(cx, 0.4), rng.Gaussian(cx, 0.4)});
    }
  }
  ExpectMatchesBatch(inc);
}

TEST_P(IncrementalRandomizedTest, MixedInsertEraseStreamMatchesBatch) {
  Rng rng(GetParam() + 1000);
  IncrementalDbscan inc(kParams, Euclidean(), 2);
  std::vector<PointId> alive;
  for (int step = 0; step < 400; ++step) {
    if (alive.empty() || rng.UniformInt(0, 9) < 6) {
      const double cx = 4.0 * rng.UniformInt(0, 2);
      const PointId id = inc.Insert(
          Point{rng.Gaussian(cx, 0.5), rng.Gaussian(cx, 0.5)});
      alive.push_back(id);
    } else {
      const std::size_t pos = rng.UniformInt(0, alive.size() - 1);
      inc.Erase(alive[pos]);
      alive.erase(alive.begin() + pos);
    }
    if (step % 80 == 79) ExpectMatchesBatch(inc);
  }
  ExpectMatchesBatch(inc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalRandomizedTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(IncrementalDbscanTest, SnapshotDenseLabelsAndInactiveMarking) {
  IncrementalDbscan inc(kParams, Euclidean(), 2);
  std::vector<PointId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(inc.Insert(Point{0.1 * i, 0.0}));
  for (int i = 0; i < 4; ++i) {
    ids.push_back(inc.Insert(Point{10.0 + 0.1 * i, 0.0}));
  }
  inc.Erase(ids[0]);
  const Clustering snap = inc.Snapshot();
  EXPECT_EQ(snap.labels[ids[0]], kUnclassified);
  // Remaining left group fell below min_pts -> noise; right group intact.
  EXPECT_EQ(snap.num_clusters, 1);
  EXPECT_EQ(snap.labels[ids[4]], 0);
}

}  // namespace
}  // namespace dbdc
