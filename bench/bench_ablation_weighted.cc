// Ablation (extension beyond EDBT'04): the weighted global core
// condition. Version-2 local models carry per-representative weights
// (covered object counts); the server can require a minimum *object*
// weight instead of MinPts_global = 2 representatives to form a global
// cluster. On the noisy data set B this suppresses global clusters that
// exist only because a few tiny spurious local clusters touch, at the
// cost of occasionally dropping genuine thin structures.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

constexpr int kSites = 8;

struct Row {
  std::string dataset;
  std::string condition;
  int clusters = 0;
  double p2 = 0.0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void BM_WeightedCondition(benchmark::State& state) {
  const int idx = static_cast<int>(state.range(0));
  const std::uint32_t min_weight = static_cast<std::uint32_t>(state.range(1));
  const SyntheticDataset synth =
      idx == 0 ? MakeTestDatasetA() : MakeTestDatasetB();
  const Clustering central = RunCentralDbscan(
      synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
  DbdcConfig config = bench::MakeDbdcConfig(synth, kSites);
  config.eps_global = 2.0 * synth.suggested_params.eps;
  config.min_weight_global = min_weight;
  for (auto _ : state) {
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    Row row;
    row.dataset = synth.name;
    row.condition = min_weight == 0
                        ? "unweighted (MinPts=2, paper)"
                        : bench::Fmt("weighted >= %u objects", min_weight);
    row.clusters = result.num_global_clusters;
    row.p2 = QualityP2(result.labels, central.labels);
    Rows().push_back(row);
    state.counters["clusters"] = row.clusters;
    state.counters["P2"] = row.p2;
  }
}

void RegisterAll() {
  for (const int idx : {0, 1}) {
    for (const int w : {0, 5, 20, 60}) {
      benchmark::RegisterBenchmark("weighted_global_core",
                                   BM_WeightedCondition)
          ->Args({idx, w})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Ablation — weighted global core condition (8 sites, Eps_global = "
      "2*Eps_local)");
  table.SetHeader({"data set", "server core condition", "global clusters",
                   "Q_DBDC (P^II) [%]"});
  for (const Row& row : Rows()) {
    table.AddRow({row.dataset, row.condition,
                  bench::Fmt("%d", row.clusters),
                  bench::Fmt("%.1f", 100.0 * row.p2)});
  }
  table.Print();
  std::printf("Expectation: moderate weights prune singleton/spurious "
              "global clusters (fewer clusters at equal or better P^II, "
              "most visible on the noisy set B); extreme weights start "
              "dropping genuine structure.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
