#ifndef DBDC_OBS_SCOPE_H_
#define DBDC_OBS_SCOPE_H_

#include "common/obs_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbdc::obs {

/// RAII per-thread observability scope: while alive, instrumentation on
/// this thread (and on any ThreadPool whose workers were spawned on this
/// thread while the scope was active) reports to `metrics` / `tracer`
/// instead of the process-wide hooks. Destruction restores whatever the
/// thread had before, so scopes nest.
///
/// This is the multi-tenant isolation primitive of the serving layer
/// (DESIGN.md §12): every job executor wraps a job run in an ObsScope
/// holding that job's own MetricsRegistry and Tracer, so concurrent jobs
/// in one server process never mix counters or spans — without threading
/// a registry pointer through every engine, DBSCAN, and index call.
///
/// Null arguments are legal and mean "no override for that slot": the
/// lookup falls through to the process-wide registration, exactly the
/// pre-scope behavior. The scope is thread-confined: create and destroy
/// it on the same thread.
class ObsScope {
 public:
  ObsScope(MetricsRegistry* metrics, Tracer* tracer)
      : saved_(::dbdc::internal::tls_obs_scope) {
    ::dbdc::internal::tls_obs_scope.metrics = metrics;
    ::dbdc::internal::tls_obs_scope.tracer = tracer;
  }

  ~ObsScope() { ::dbdc::internal::tls_obs_scope = saved_; }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  ::dbdc::internal::ObsTlsScope saved_;
};

}  // namespace dbdc::obs

#endif  // DBDC_OBS_SCOPE_H_
