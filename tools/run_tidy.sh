#!/usr/bin/env bash
# Runs clang-tidy over every library source under src/ using the
# compile-commands database of a configured build tree.
#
# Usage:
#   tools/run_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
# BUILD_DIR defaults to the first of build-tidy/, build/ that contains a
# compile_commands.json; if none exists, one is configured into
# build-tidy/ first (cmake --preset tidy).
#
# Exit status: 0 when clang-tidy produced no diagnostics (WarningsAsErrors
# is '*' in .clang-tidy, so any finding is fatal), non-zero otherwise.
# When no clang-tidy binary is available the script reports that and
# exits 0 so environments without LLVM (the pinned build container has
# only gcc) degrade gracefully; CI installs clang-tidy and runs the real
# pass.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "$tidy_bin" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy_bin="$candidate"
      break
    fi
  done
fi
if [[ -z "$tidy_bin" ]]; then
  echo "run_tidy.sh: no clang-tidy binary found (set CLANG_TIDY=...);" \
       "skipping the tidy pass." >&2
  exit 0
fi

build_dir=""
if [[ $# -gt 0 && "$1" != "--" ]]; then
  build_dir="$1"
  shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
  shift
fi
if [[ -z "$build_dir" ]]; then
  for candidate in build-tidy build; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      build_dir="$candidate"
      break
    fi
  done
fi
if [[ -z "$build_dir" ]]; then
  echo "run_tidy.sh: no compile_commands.json found; configuring" \
       "build-tidy/ ..." >&2
  cmake --preset tidy >/dev/null || exit 1
  build_dir="build-tidy"
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy.sh: $build_dir/compile_commands.json missing" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)." >&2
  exit 1
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "run_tidy.sh: $tidy_bin over ${#sources[@]} files" \
     "(database: $build_dir)" >&2

jobs="$(nproc 2>/dev/null || echo 4)"
printf '%s\n' "${sources[@]}" |
  xargs -P "$jobs" -n 4 "$tidy_bin" -p "$build_dir" --quiet "$@"
status=$?

if [[ $status -eq 0 ]]; then
  echo "run_tidy.sh: clean." >&2
else
  echo "run_tidy.sh: clang-tidy reported diagnostics (exit $status)." >&2
fi
exit "$status"
