#ifndef DBDC_INDEX_KD_TREE_INDEX_H_
#define DBDC_INDEX_KD_TREE_INDEX_H_

#include <span>
#include <utility>
#include <vector>

#include "common/simd_kernels.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// Static balanced k-d tree.
///
/// Built once over the whole dataset by recursive median splits on the
/// widest axis; leaves hold small point buckets. Pruning uses per-axis
/// coordinate deltas, which is correct for any metric dominating them
/// (all Lp metrics). No dynamic updates — use GridIndex or RStarTree for
/// incremental workloads.
class KdTreeIndex final : public NeighborIndex {
 public:
  KdTreeIndex(const Dataset& data, const Metric& metric);

  void RangeQuery(std::span<const double> q, double eps,
                  std::vector<PointId>* out) const override;
  using NeighborIndex::RangeQuery;
  void KnnQuery(std::span<const double> q, int k,
                std::vector<PointId>* out) const override;
  std::size_t size() const override { return ids_.size(); }
  std::string_view name() const override { return "kdtree"; }
  const Dataset& data() const override { return *data_; }
  const Metric& metric() const override { return *metric_; }

 private:
  struct Node {
    int axis = -1;       // -1 marks a leaf.
    double split = 0.0;  // Split coordinate for interior nodes.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t begin = 0;  // Leaf: range [begin, end) into ids_.
    std::int32_t end = 0;
  };

  std::int32_t BuildRecursive(std::int32_t begin, std::int32_t end);
  void RangeRecursive(std::int32_t node, std::span<const double> q, double eps,
                      double eps_sq, simd::KernelStats* kstats,
                      std::vector<PointId>* out) const;
  void KnnRecursive(std::int32_t node, std::span<const double> q,
                    std::size_t k,
                    std::vector<std::pair<double, PointId>>* heap) const;

  static constexpr std::int32_t kLeafSize = 16;

  const Dataset* data_;
  const Metric* metric_;
  /// Detected at construction: leaf scans then filter by squared distance
  /// against eps² (no virtual call, no sqrt).
  bool euclidean_ = false;
  std::vector<PointId> ids_;  // Permutation of all ids, bucketed by leaves.
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace dbdc

#endif  // DBDC_INDEX_KD_TREE_INDEX_H_
