file(REMOVE_RECURSE
  "CMakeFiles/dbdc_viz.dir/viz/render.cc.o"
  "CMakeFiles/dbdc_viz.dir/viz/render.cc.o.d"
  "libdbdc_viz.a"
  "libdbdc_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
