// Parameter exploration, end to end:
//
//  1. Eps_local is *estimated* from the data with the sorted k-dist knee
//     heuristic of the DBSCAN paper (no hand tuning).
//  2. The sites cluster locally and ship their models.
//  3. The server computes ONE OPTICS ordering of the representatives and
//     extracts the global clustering for a whole range of Eps_global
//     candidates — the interactive exploration the paper sketches in
//     Sec. 6 as the OPTICS alternative.
//
//   $ ./eps_explorer
//
// For each candidate the cluster count and the quality against a
// central reference are printed, making the 2*Eps_local sweet spot
// visible.

#include <cstdio>
#include <vector>

#include "cluster/param_estimation.h"
#include "core/dbdc.h"
#include "distrib/network.h"
#include "core/model_codec.h"
#include "core/optics_global.h"
#include "core/relabel.h"
#include "data/generators.h"
#include "eval/quality.h"

int main() {
  using namespace dbdc;

  const SyntheticDataset synth = MakeTestDatasetA();
  constexpr int kMinPts = 5;
  constexpr int kSites = 4;

  // 1. Estimate Eps_local from the data.
  const auto kdist_index =
      CreateIndex(IndexType::kKdTree, synth.data, Euclidean(), 1.0);
  const double eps_local = SuggestEps(*kdist_index, kMinPts);
  std::printf("estimated Eps_local (k-dist knee, MinPts=%d): %.3f "
              "(hand-calibrated value: %.3f)\n",
              kMinPts, eps_local, synth.suggested_params.eps);

  const DbscanParams params{eps_local, kMinPts};
  const Clustering central = RunCentralDbscan(synth.data, Euclidean(),
                                              params, IndexType::kGrid).clustering;
  std::printf("central reference with estimated params: %d clusters\n\n",
              central.num_clusters);

  // 2. Local phase: run DBDC once just to obtain the transmitted models.
  DbdcConfig config;
  config.local_dbscan = params;
  config.num_sites = kSites;
  SimulatedNetwork network;
  (void)RunDbdc(synth.data, Euclidean(), config, &network);
  std::vector<LocalModel> locals;
  for (const NetworkMessage* msg : network.Inbox(kServerEndpoint)) {
    auto model = DecodeLocalModel(msg->payload);
    if (model.has_value()) locals.push_back(*std::move(model));
  }
  std::size_t reps = 0;
  for (const LocalModel& m : locals) reps += m.representatives.size();
  std::printf("%d sites transmitted %zu representatives\n\n", kSites, reps);

  // 3. One OPTICS ordering, many extractions.
  const OpticsGlobalModelBuilder builder(locals, Euclidean(),
                                         /*max_eps_global=*/5 * eps_local);
  std::printf("%-22s %-16s %-10s\n", "Eps_global/Eps_local",
              "global clusters", "P^II [%]");
  for (const double f :
       {1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 4.0}) {
    const GlobalModel global = builder.Extract(f * eps_local);
    const std::vector<ClusterId> labels =
        RelabelSite(synth.data, global, Euclidean());
    std::printf("%-22.2f %-16d %-10.1f\n", f, global.num_global_clusters,
                100.0 * QualityP2(labels, central.labels));
  }
  std::printf("\ndefault Eps_global (max eps_R) = %.3f = %.2f x "
              "Eps_local\n",
              builder.default_eps_global(),
              builder.default_eps_global() / eps_local);
  return 0;
}
