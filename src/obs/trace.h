#ifndef DBDC_OBS_TRACE_H_
#define DBDC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/obs_context.h"
#include "common/thread_annotations.h"

namespace dbdc::obs {

/// One key/value annotation on a span (rendered into the Chrome trace's
/// "args" object).
struct SpanArg {
  enum class Kind { kInt, kDouble, kString };
  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

/// A completed span. Timestamps are microseconds — since the tracer's
/// construction on the wall-clock track, or since virtual time 0 on the
/// virtual track (virtual_clock spans; see Tracer::RecordVirtualSpan).
struct SpanRecord {
  std::string name;
  std::string category;
  /// Tracer-assigned dense thread id (0 = first thread seen).
  int tid = 0;
  /// Nesting depth on its thread when the span opened (0 = top level).
  int depth = 0;
  bool virtual_clock = false;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
  std::vector<SpanArg> args;
};

/// Records nested spans of the DBDC pipeline and exports them as Chrome
/// trace_event JSON, loadable in chrome://tracing and Perfetto
/// (DESIGN.md §9).
///
/// Spans open and close per thread (Begin/EndSpan must pair on one
/// thread; ScopedSpan enforces this); nesting is the per-thread
/// begin/end stack. Each thread appends to its own buffer, so tracing
/// parallel stages never serializes the workers on a shared lock beyond
/// the brief buffer registration.
///
/// Two time bases, exported as two Chrome "processes": wall-clock spans
/// (pid 1) measured on a steady clock from the tracer's construction,
/// and virtual-clock spans (pid 2) placed explicitly by the simulation
/// (protocol transfers, continuous-mode ticks) on the deterministic
/// virtual axis. The tracer keeps a virtual cursor (SetVirtualNow /
/// AdvanceVirtual) so successive transfers lay out end to end.
///
/// The global hook (SetGlobalTracer) is null by default; every
/// instrumentation site is one acquire load + branch when tracing is
/// off — no allocations, no stores (the zero-cost-when-off contract).
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span on the calling thread's wall-clock track.
  void BeginSpan(std::string_view name, std::string_view category = "dbdc");
  /// Annotates the innermost open span of the calling thread.
  void AddSpanArg(std::string_view key, std::int64_t value);
  void AddSpanArg(std::string_view key, double value);
  void AddSpanArg(std::string_view key, std::string_view value);
  /// Closes the innermost open span of the calling thread.
  void EndSpan();

  /// Records a completed span on the virtual-clock track.
  void RecordVirtualSpan(std::string_view name, std::string_view category,
                         double start_sec, double duration_sec,
                         std::vector<SpanArg> args = {});

  /// Virtual cursor for trace layout (seconds on the virtual axis).
  void SetVirtualNow(double seconds);
  void AdvanceVirtual(double seconds);
  double VirtualNow() const;

  /// All completed spans, sorted by (tid, start, -duration). Call after
  /// the traced work quiesced (open spans are not included).
  std::vector<SpanRecord> Spans() const;
  std::size_t NumSpans() const;

  /// Chrome trace_event JSON ("X" complete events + process/thread
  /// metadata).
  std::string ChromeTraceJson() const;
  /// Writes ChromeTraceJson() to `path`; false on IO failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer;
  ThreadBuffer* ThisThreadBuffer();
  std::int64_t NowMicros() const;

  const std::uint64_t id_;  // Process-unique; never reused.
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  /// The vector is guarded; each ThreadBuffer's `open` stack is confined
  /// to its owning thread, and `done` is appended/read under mu_.
  std::vector<std::unique_ptr<ThreadBuffer>> threads_ DBDC_GUARDED_BY(mu_);
  std::atomic<double> virtual_now_{0.0};
};

namespace internal {
extern std::atomic<Tracer*> g_tracer;
}  // namespace internal

/// The tracer instrumentation reports to, or null when tracing is off
/// (the default). A thread-local scope override (obs::ObsScope — the
/// multi-tenant server's per-job isolation) wins over the process-wide
/// registration; ThreadPool workers inherit the scope of the thread that
/// created the pool.
inline Tracer* GlobalTracer() {
  if (void* scoped = ::dbdc::internal::tls_obs_scope.tracer) {
    return static_cast<Tracer*>(scoped);
  }
  return internal::g_tracer.load(std::memory_order_acquire);
}

/// Attaches `tracer` (borrowed; detach — SetGlobalTracer(nullptr) —
/// before destroying it).
void SetGlobalTracer(Tracer* tracer);

/// RAII span against the global tracer; a no-op (no allocation, no
/// atomic RMW) when tracing is off. The tracer is resolved once at
/// construction so Begin/End always pair on the same tracer.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      std::string_view category = "dbdc")
      : tracer_(GlobalTracer()) {
    if (tracer_ != nullptr) tracer_->BeginSpan(name, category);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool enabled() const { return tracer_ != nullptr; }

  /// Callers pass explicitly-typed values (cast integers to
  /// std::int64_t) so overload resolution never has to pick between the
  /// integer and floating representations.
  void AddArg(std::string_view key, std::int64_t value) {
    if (tracer_ != nullptr) tracer_->AddSpanArg(key, value);
  }
  void AddArg(std::string_view key, double value) {
    if (tracer_ != nullptr) tracer_->AddSpanArg(key, value);
  }
  void AddArg(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->AddSpanArg(key, value);
  }

 private:
  Tracer* tracer_;
};

}  // namespace dbdc::obs

#endif  // DBDC_OBS_TRACE_H_
