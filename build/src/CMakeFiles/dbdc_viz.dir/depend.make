# Empty dependencies file for dbdc_viz.
# This may be replaced when dependencies are built.
