#include <gtest/gtest.h>

#include <vector>

#include "eval/quality.h"

namespace dbdc {
namespace {

using Labels = std::vector<ClusterId>;

TEST(QualityTest, IdenticalClusteringsScoreOneUnderBothCriteria) {
  const Labels labels = {0, 0, 0, 1, 1, 1, kNoise, kNoise, 2, 2, 2};
  EXPECT_DOUBLE_EQ(QualityP1(labels, labels, 3), 1.0);
  EXPECT_DOUBLE_EQ(QualityP2(labels, labels), 1.0);
}

TEST(QualityTest, LabelValuesDoNotMatterOnlyCoMembership) {
  const Labels a = {0, 0, 1, 1, kNoise};
  const Labels b = {7, 7, 3, 3, kNoise};
  EXPECT_DOUBLE_EQ(QualityP1(a, b, 2), 1.0);
  EXPECT_DOUBLE_EQ(QualityP2(a, b), 1.0);
}

TEST(QualityTest, NoiseDisagreementScoresZeroForThatObject) {
  //            x0 x1 x2 x3
  const Labels distr = {0, 0, 0, kNoise};
  const Labels central = {0, 0, 0, 0};
  // x3: noise in distributed, clustered centrally -> 0.
  const auto p2 = ObjectQualityP2(distr, central);
  EXPECT_DOUBLE_EQ(p2[3], 0.0);
  // x0..x2: |Cd ∩ Cc| = 3, |Cd ∪ Cc| = 4 -> 0.75.
  EXPECT_DOUBLE_EQ(p2[0], 0.75);
  EXPECT_DOUBLE_EQ(QualityP2(distr, central), (3 * 0.75 + 0.0) / 4.0);
}

TEST(QualityTest, P1UsesTheQualityParameterThreshold) {
  // Two clusters overlapping in exactly 2 objects.
  const Labels distr = {0, 0, 0, 1, 1};
  const Labels central = {0, 0, 1, 1, 1};
  // x0,x1: inter(d0,c0)=2. x2: inter(d0,c1)=1. x3,x4: inter(d1,c1)=2.
  EXPECT_DOUBLE_EQ(QualityP1(distr, central, 2), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(QualityP1(distr, central, 3), 0.0);
  EXPECT_DOUBLE_EQ(QualityP1(distr, central, 1), 1.0);
}

TEST(QualityTest, P2IsFinerThanP1) {
  // A distributed clustering that splits one central cluster in half:
  // P^I (qp=2) still says "perfect", P^II penalizes the split. This is
  // the paper's Sec. 9 argument for preferring P^II.
  const Labels central = {0, 0, 0, 0};
  const Labels split = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(QualityP1(split, central, 2), 1.0);
  // Each object: inter=2, union=4 -> 0.5.
  EXPECT_DOUBLE_EQ(QualityP2(split, central), 0.5);
}

TEST(QualityTest, BothNoiseScoresOne) {
  const Labels a = {kNoise, kNoise};
  const Labels b = {kNoise, kNoise};
  EXPECT_DOUBLE_EQ(QualityP1(a, b, 2), 1.0);
  EXPECT_DOUBLE_EQ(QualityP2(a, b), 1.0);
}

TEST(QualityTest, CompletelyWrongClusteringScoresLow) {
  // Distributed says everything is noise; central has one cluster.
  const Labels distr(10, kNoise);
  Labels central(10, 0);
  EXPECT_DOUBLE_EQ(QualityP1(distr, central, 2), 0.0);
  EXPECT_DOUBLE_EQ(QualityP2(distr, central), 0.0);
}

TEST(QualityTest, MergeOfTwoCentralClustersPenalizedByP2Only) {
  // Distributed merges two central clusters of size 3 each.
  const Labels central = {0, 0, 0, 1, 1, 1};
  const Labels merged = {5, 5, 5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(QualityP1(merged, central, 3), 1.0);
  // Every object: inter=3, union=6 -> 0.5.
  EXPECT_DOUBLE_EQ(QualityP2(merged, central), 0.5);
}

TEST(QualityTest, PerObjectVectorsHaveInputLength) {
  const Labels a = {0, kNoise, 1};
  const Labels b = {0, 0, 1};
  EXPECT_EQ(ObjectQualityP1(a, b, 1).size(), 3u);
  EXPECT_EQ(ObjectQualityP2(a, b).size(), 3u);
}

TEST(QualityTest, P2SymmetricInItsArguments) {
  const Labels a = {0, 0, 1, 1, kNoise, 2};
  const Labels b = {0, 1, 1, 1, 2, kNoise};
  EXPECT_DOUBLE_EQ(QualityP2(a, b), QualityP2(b, a));
}

TEST(QualityTest, EmptyInputIsTriviallyPerfect) {
  const Labels empty;
  EXPECT_DOUBLE_EQ(QualityP1(empty, empty, 2), 1.0);
  EXPECT_DOUBLE_EQ(QualityP2(empty, empty), 1.0);
}

}  // namespace
}  // namespace dbdc
