file(REMOVE_RECURSE
  "CMakeFiles/relabel_test.dir/relabel_test.cc.o"
  "CMakeFiles/relabel_test.dir/relabel_test.cc.o.d"
  "relabel_test"
  "relabel_test.pdb"
  "relabel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relabel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
