// Ablation (extension beyond EDBT'04): pre-transmission model
// condensation. For bandwidth-constrained uplinks (the paper's telescope
// motivation), sites can trade model fidelity for bytes by merging
// nearby same-cluster representatives before transmitting. This bench
// sweeps the condensation radius on data set A and reports the
// size/quality trade-off curve.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

constexpr int kSites = 4;

struct Row {
  double factor = 0.0;
  std::size_t reps = 0;
  std::uint64_t uplink = 0;
  double p2_fixed = 0.0;    // Eps_global pinned at 2*Eps_local.
  double p2_default = 0.0;  // Paper default: max eps_R (adapts).
  double default_eps = 0.0;
  int clusters_default = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

const SyntheticDataset& Workload() {
  static const auto* synth = new SyntheticDataset(MakeTestDatasetA());
  return *synth;
}

const Clustering& CentralReference() {
  static const auto* central = new Clustering(RunCentralDbscan(
      Workload().data, Euclidean(), Workload().suggested_params,
      IndexType::kGrid).clustering);
  return *central;
}

void BM_Condense(benchmark::State& state) {
  const SyntheticDataset& synth = Workload();
  const double factor = static_cast<double>(state.range(0)) / 10.0;
  DbdcConfig config = bench::MakeDbdcConfig(synth, kSites);
  config.condense_eps = factor * synth.suggested_params.eps;
  for (auto _ : state) {
    // Pinned Eps_global: shows that condensation *requires* the global
    // radius to adapt.
    config.eps_global = 2.0 * synth.suggested_params.eps;
    const DbdcResult fixed = RunDbdc(synth.data, Euclidean(), config);
    // The paper's default (max eps_R) adapts automatically, because
    // condensation inflates the transmitted ranges.
    config.eps_global = 0.0;
    const DbdcResult adaptive = RunDbdc(synth.data, Euclidean(), config);
    Rows().push_back(
        {factor, adaptive.num_representatives, adaptive.bytes_uplink,
         QualityP2(fixed.labels, CentralReference().labels),
         QualityP2(adaptive.labels, CentralReference().labels),
         adaptive.eps_global_used, adaptive.num_global_clusters});
    state.counters["reps"] =
        static_cast<double>(adaptive.num_representatives);
    state.counters["P2_default"] = Rows().back().p2_default;
  }
}

void RegisterAll() {
  for (const int f : {0, 15, 20, 30, 40, 60}) {
    benchmark::RegisterBenchmark("condense_model", BM_Condense)
        ->Arg(f)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Ablation — pre-transmission model condensation (data set A, 4 "
      "sites)");
  table.SetHeader({"condense radius / Eps_local", "#reps", "uplink bytes",
                   "P^II fixed Eps_g [%]", "P^II default Eps_g [%]",
                   "default Eps_g used", "clusters (default)"});
  for (const Row& row : Rows()) {
    table.AddRow({bench::Fmt("%.1f", row.factor),
                  bench::Fmt("%zu", row.reps),
                  bench::Fmt("%llu",
                             static_cast<unsigned long long>(row.uplink)),
                  bench::Fmt("%.1f", 100.0 * row.p2_fixed),
                  bench::Fmt("%.1f", 100.0 * row.p2_default),
                  bench::Fmt("%.2f", row.default_eps),
                  bench::Fmt("%d", row.clusters_default)});
  }
  table.Print();
  std::printf("Reading: condensation up to ~2x Eps_local cuts the uplink "
              "by >3x at a 1-2 point P^II cost (with Eps_global pinned at "
              "its uncondensed value). Beyond that the inflated ranges "
              "blur cluster boundaries and quality becomes erratic under "
              "either Eps_global policy — the usable operating range of "
              "this knob ends around 2x Eps_local.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
