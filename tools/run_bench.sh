#!/usr/bin/env bash
# Builds (if needed) and runs the machine-readable benchmarks, writing the
# perf baseline to BENCH_parallel.json, the fault-tolerance sweep to
# BENCH_fault.json, the continuous-mode economics to BENCH_continuous.json,
# the aggregation-topology scaling numbers to BENCH_topology.json, and the
# approximate-index crossover sweep to BENCH_approx.json at the repo root.
#
# Usage:
#   tools/run_bench.sh [--quick] [--out FILE] [--fault-out FILE] \
#                      [--continuous-out FILE] [--topology-out FILE] \
#                      [--approx-out FILE] [BUILD_DIR]
#
#   --quick     Shrunk datasets + sweeps; for CI smoke runs.
#   --out FILE  Parallel-bench output (default: BENCH_parallel.json).
#   --fault-out FILE  Fault-bench output (default: BENCH_fault.json).
#   --continuous-out FILE  Continuous-bench output
#               (default: BENCH_continuous.json).
#   --topology-out FILE  Topology-bench output
#               (default: BENCH_topology.json).
#   --approx-out FILE  Approx-bench output (default: BENCH_approx.json).
#   BUILD_DIR   Existing build tree to use (default: build-release/ via the
#               `release` preset, falling back to build/ when it already
#               contains the benchmark targets).
#
# After each run the emitted JSON is schema-validated (python3 when
# available; a pure-bash key check otherwise). Exit status is non-zero if
# a benchmark fails, a file is missing, or validation fails.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

quick_flag=""
out_file="$repo_root/BENCH_parallel.json"
fault_out_file="$repo_root/BENCH_fault.json"
continuous_out_file="$repo_root/BENCH_continuous.json"
topology_out_file="$repo_root/BENCH_topology.json"
approx_out_file="$repo_root/BENCH_approx.json"
build_dir=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick_flag="--quick"; shift ;;
    --out) out_file="$2"; shift 2 ;;
    --fault-out) fault_out_file="$2"; shift 2 ;;
    --continuous-out) continuous_out_file="$2"; shift 2 ;;
    --topology-out) topology_out_file="$2"; shift 2 ;;
    --approx-out) approx_out_file="$2"; shift 2 ;;
    -h|--help) sed -n '2,28p' "$0"; exit 0 ;;
    *) build_dir="$1"; shift ;;
  esac
done

# A 1-hardware-thread host cannot measure thread scaling: every speedup
# in the "results" section is noise around 1x. Say so loudly (the JSON
# carries a matching "degraded_host": true) so such numbers are never
# again mistaken for a parallelism regression.
hw_threads="$(nproc 2>/dev/null || echo 1)"
if [[ "$hw_threads" -le 1 ]]; then
  cat >&2 <<'EOF'
run_bench.sh: ********************************************************
run_bench.sh: ** WARNING: this host has only 1 hardware thread.     **
run_bench.sh: ** Thread-scaling speedups recorded in this run are   **
run_bench.sh: ** MEANINGLESS (expect ~1x or worse at every thread   **
run_bench.sh: ** count). The JSON will carry "degraded_host": true; **
run_bench.sh: ** only single-core sections (fastpath, simd) carry   **
run_bench.sh: ** signal. Re-run on a multi-core host for scaling.   **
run_bench.sh: ********************************************************
EOF
fi

bench_rel="bench/bench_parallel_scaling"
if [[ -z "$build_dir" ]]; then
  for candidate in build-release build; do
    if [[ -x "$candidate/$bench_rel" ]]; then
      build_dir="$candidate"
      break
    fi
  done
fi
if [[ -z "$build_dir" ]]; then
  echo "run_bench.sh: no built benchmark found; building the release" \
       "preset ..." >&2
  cmake --preset release >/dev/null || exit 1
  build_dir="build-release"
fi
cmake --build "$build_dir" \
      --target bench_parallel_scaling bench_fault_tolerance \
               bench_continuous bench_topology bench_approx \
      -j "$(nproc 2>/dev/null || echo 4)" >/dev/null || exit 1

echo "run_bench.sh: running $build_dir/$bench_rel $quick_flag" \
     "-> $out_file" >&2
"$build_dir/$bench_rel" $quick_flag --out "$out_file" || exit 1

if [[ ! -s "$out_file" ]]; then
  echo "run_bench.sh: $out_file missing or empty." >&2
  exit 1
fi

# Schema validation: JSON well-formedness + required keys and row fields.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out_file" <<'PY' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "dbdc-parallel-bench-v2", doc.get("schema")
assert isinstance(doc["quick"], bool)
assert isinstance(doc["hardware_threads"], int)
assert isinstance(doc["degraded_host"], bool)
assert doc["degraded_host"] == (doc["hardware_threads"] <= 1)
assert doc["detected_tier"] in ("scalar", "sse2", "avx2"), doc["detected_tier"]
assert isinstance(doc["results"], list) and doc["results"]
assert isinstance(doc["fastpath"], list) and doc["fastpath"]
assert isinstance(doc["simd"], list) and doc["simd"]
for row in doc["results"]:
    for key in ("phase", "dataset", "n", "index", "threads", "seconds",
                "speedup_vs_1t"):
        assert key in row, f"results row missing {key}: {row}"
    assert row["phase"] in ("dbscan", "relabel"), row["phase"]
    assert row["threads"] >= 1 and row["seconds"] >= 0.0
for row in doc["fastpath"]:
    for key in ("dataset", "n", "index", "generic_seconds", "fast_seconds",
                "speedup"):
        assert key in row, f"fastpath row missing {key}: {row}"
for row in doc["simd"]:
    for key in ("dataset", "n", "index", "tier", "scalar_seconds",
                "batched_seconds", "speedup"):
        assert key in row, f"simd row missing {key}: {row}"
    assert row["tier"] == doc["detected_tier"], row
# When a vector tier is available, batched throughput must not regress
# below scalar on the best index (the CI release gate; timing noise on
# the weakest index is tolerated, a regression everywhere is not).
if doc["detected_tier"] != "scalar":
    best = max(r["speedup"] for r in doc["simd"])
    assert best >= 1.0, \
        f"batched kernels slower than scalar on every index: {doc['simd']}"
baseline = [r for r in doc["results"] if r["threads"] == 1]
assert baseline and all(r["speedup_vs_1t"] == 1.0 for r in baseline)
metrics = doc["metrics"]
assert isinstance(metrics["counters"], dict)
assert metrics["counters"].get("eps_range_queries", 0) > 0, metrics
print(f"run_bench.sh: schema OK "
      f"({len(doc['results'])} scaling rows, "
      f"{len(doc['fastpath'])} fastpath rows, "
      f"{len(doc['simd'])} simd rows, tier {doc['detected_tier']}).")
PY
else
  echo "run_bench.sh: python3 unavailable; falling back to key check." >&2
  for key in '"schema": "dbdc-parallel-bench-v2"' '"results"' '"fastpath"' \
             '"simd"' '"degraded_host"' '"detected_tier"' \
             '"hardware_threads"' '"metrics"'; do
    if ! grep -qF "$key" "$out_file"; then
      echo "run_bench.sh: $out_file missing expected key $key" >&2
      exit 1
    fi
  done
  echo "run_bench.sh: key check OK (install python3 for full validation)." >&2
fi

# --- Fault-tolerance sweep -------------------------------------------------
fault_rel="bench/bench_fault_tolerance"
echo "run_bench.sh: running $build_dir/$fault_rel $quick_flag" \
     "-> $fault_out_file" >&2
"$build_dir/$fault_rel" $quick_flag --out "$fault_out_file" || exit 1

if [[ ! -s "$fault_out_file" ]]; then
  echo "run_bench.sh: $fault_out_file missing or empty." >&2
  exit 1
fi

if command -v python3 >/dev/null 2>&1; then
  python3 - "$fault_out_file" <<'PY' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "dbdc-fault-bench-v1", doc.get("schema")
assert isinstance(doc["quick"], bool)
assert isinstance(doc["num_sites"], int) and doc["num_sites"] >= 1
assert isinstance(doc["complete"], dict)
assert doc["complete"]["num_global_clusters"] >= 0
assert isinstance(doc["results"], list) and doc["results"]
for row in doc["results"]:
    for key in ("drop_rate", "failed_sites", "sites_reporting",
                "sites_failed", "sites_relabeled", "retries",
                "frames_dropped", "frames_corrupted", "bytes_uplink",
                "p1", "p2", "noise_fraction"):
        assert key in row, f"fault row missing {key}: {row}"
    assert row["sites_reporting"] + row["sites_failed"] == doc["num_sites"]
    assert row["sites_failed"] >= row["failed_sites"], row
    assert 0.0 <= row["p1"] <= 1.0 and 0.0 <= row["p2"] <= 1.0
    assert 0.0 <= row["noise_fraction"] <= 1.0
clean = [r for r in doc["results"]
         if r["failed_sites"] == 0 and r["drop_rate"] == 0.0]
assert clean and all(r["p2"] == 1.0 for r in clean), \
    "fault-free cell must match the complete run exactly"
metrics = doc["metrics"]
assert isinstance(metrics["counters"], dict)
assert metrics["counters"].get("eps_range_queries", 0) > 0, metrics
assert metrics["counters"].get("frames_sent", 0) > 0, metrics
print(f"run_bench.sh: fault schema OK ({len(doc['results'])} sweep rows).")
PY
else
  for key in '"schema": "dbdc-fault-bench-v1"' '"results"' '"complete"' \
             '"num_sites"' '"metrics"'; do
    if ! grep -qF "$key" "$fault_out_file"; then
      echo "run_bench.sh: $fault_out_file missing expected key $key" >&2
      exit 1
    fi
  done
  echo "run_bench.sh: fault key check OK." >&2
fi

# --- Continuous-mode economics ---------------------------------------------
continuous_rel="bench/bench_continuous"
echo "run_bench.sh: running $build_dir/$continuous_rel $quick_flag" \
     "-> $continuous_out_file" >&2
"$build_dir/$continuous_rel" $quick_flag --out "$continuous_out_file" \
    || exit 1

if [[ ! -s "$continuous_out_file" ]]; then
  echo "run_bench.sh: $continuous_out_file missing or empty." >&2
  exit 1
fi

if command -v python3 >/dev/null 2>&1; then
  python3 - "$continuous_out_file" <<'PY' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "dbdc-continuous-bench-v1", doc.get("schema")
assert isinstance(doc["quick"], bool)
assert isinstance(doc["num_sites"], int) and doc["num_sites"] >= 1
assert isinstance(doc["ticks"], int) and doc["ticks"] >= 1
cont, naive = doc["continuous"], doc["naive"]
for key in ("bytes_uplink", "bytes_downlink", "refreshes_sent",
            "refreshes_applied", "global_rebuilds", "broadcasts_delivered",
            "virtual_seconds"):
    assert key in cont, f"continuous missing {key}"
for key in ("bytes_uplink", "bytes_downlink", "runs"):
    assert key in naive, f"naive missing {key}"
assert cont["bytes_uplink"] > 0 and naive["bytes_uplink"] > 0
assert cont["refreshes_applied"] <= cont["refreshes_sent"]
assert cont["global_rebuilds"] >= 1
stages = doc["batch_stage_stats"]
assert isinstance(stages, list) and len(stages) == 7, stages
assert [s["stage"] for s in stages] == [
    "partition", "local_cluster", "build_local_model", "transmit",
    "merge_global", "broadcast", "relabel"]
assert sum(s["bytes_uplink"] for s in stages) > 0
# The acceptance criterion: continuous mode must beat naive per-tick
# batch re-runs by at least 5x on uplink bytes.
assert doc["uplink_savings"] >= 5.0, \
    f"continuous uplink savings below 5x: {doc['uplink_savings']}"
metrics = doc["metrics"]
assert isinstance(metrics["counters"], dict)
assert metrics["counters"].get("eps_range_queries", 0) > 0, metrics
assert metrics["counters"].get("continuous_ticks", 0) >= doc["ticks"], metrics
print(f"run_bench.sh: continuous schema OK "
      f"(uplink savings {doc['uplink_savings']:.1f}x, "
      f"{cont['global_rebuilds']} rebuilds over {doc['ticks']} ticks).")
PY
else
  for key in '"schema": "dbdc-continuous-bench-v1"' '"continuous"' \
             '"naive"' '"uplink_savings"' '"batch_stage_stats"' \
             '"metrics"'; do
    if ! grep -qF "$key" "$continuous_out_file"; then
      echo "run_bench.sh: $continuous_out_file missing expected key $key" >&2
      exit 1
    fi
  done
  echo "run_bench.sh: continuous key check OK." >&2
fi

# --- Aggregation-topology scaling -------------------------------------------
topology_rel="bench/bench_topology"
echo "run_bench.sh: running $build_dir/$topology_rel $quick_flag" \
     "-> $topology_out_file" >&2
"$build_dir/$topology_rel" $quick_flag --out "$topology_out_file" || exit 1

if [[ ! -s "$topology_out_file" ]]; then
  echo "run_bench.sh: $topology_out_file missing or empty." >&2
  exit 1
fi

if command -v python3 >/dev/null 2>&1; then
  python3 - "$topology_out_file" <<'PY' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "dbdc-topology-bench-v1", doc.get("schema")
assert isinstance(doc["quick"], bool)
fanout = doc["fanout"]
assert isinstance(fanout, int) and fanout >= 2
assert 0.0 < doc["drop_rate"] < 1.0, "topology bench must run under faults"
rows = doc["results"]
assert isinstance(rows, list) and rows
by_sites = {}
for row in rows:
    for key in ("sites", "topology", "points", "levels",
                "root_uplink_bytes", "bytes_total", "root_merge_seconds",
                "root_models_in", "sites_reporting", "sites_failed",
                "clusters"):
        assert key in row, f"topology row missing {key}: {row}"
    assert row["sites_reporting"] + row["sites_failed"] == row["sites"], row
    assert row["root_uplink_bytes"] > 0 and row["clusters"] >= 1, row
    by_sites.setdefault(row["sites"], {})[row["topology"]] = row
for sites, pair in sorted(by_sites.items()):
    flat = pair.get("flat")
    tree = pair.get(f"tree:{fanout}")
    assert flat and tree, f"need a flat/tree pair at {sites} sites: {pair}"
    # The star's fan-in is every reporting site; the tree's is bounded by
    # the fanout no matter how many sites there are.
    assert flat["levels"] == 2 and flat["root_models_in"] == \
        flat["sites_reporting"], flat
    assert tree["levels"] >= 3 and tree["root_models_in"] <= fanout, tree
    # The release-smoke criterion: once the star's fan-in dwarfs the
    # fanout, the condensing tree must beat it on bytes into the root.
    if sites >= 100:
        assert tree["root_uplink_bytes"] < flat["root_uplink_bytes"], \
            f"tree root uplink not below flat at {sites} sites: {pair}"
metrics = doc["metrics"]
assert isinstance(metrics["counters"], dict)
assert metrics["counters"].get("aggregator_merges", 0) > 0, metrics
assert metrics["counters"].get("intermediate_models_forwarded", 0) > 0, metrics
largest = max(by_sites)
ratio = (by_sites[largest]["flat"]["root_uplink_bytes"]
         / by_sites[largest][f"tree:{fanout}"]["root_uplink_bytes"])
print(f"run_bench.sh: topology schema OK ({len(rows)} rows; at {largest} "
      f"sites the fanout-{fanout} tree carries {ratio:.1f}x less root "
      f"uplink than the star).")
PY
else
  for key in '"schema": "dbdc-topology-bench-v1"' '"results"' '"fanout"' \
             '"drop_rate"' '"root_uplink_bytes"' '"root_models_in"' \
             '"metrics"'; do
    if ! grep -qF "$key" "$topology_out_file"; then
      echo "run_bench.sh: $topology_out_file missing expected key $key" >&2
      exit 1
    fi
  done
  echo "run_bench.sh: topology key check OK." >&2
fi

# --- Approximate-index crossover ---------------------------------------------
approx_rel="bench/bench_approx"
echo "run_bench.sh: running $build_dir/$approx_rel $quick_flag" \
     "-> $approx_out_file" >&2
"$build_dir/$approx_rel" $quick_flag --out "$approx_out_file" || exit 1

if [[ ! -s "$approx_out_file" ]]; then
  echo "run_bench.sh: $approx_out_file missing or empty." >&2
  exit 1
fi

if command -v python3 >/dev/null 2>&1; then
  python3 - "$approx_out_file" <<'PY' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "dbdc-approx-bench-v1", doc.get("schema")
assert isinstance(doc["quick"], bool)
assert isinstance(doc["dim"], int) and doc["dim"] >= 2
rows = doc["results"]
assert isinstance(rows, list) and rows
by_n = {}
for row in rows:
    for key in ("n", "num_blobs", "eps", "index", "skipped", "skip_reason",
                "build_seconds", "batch_seconds", "seconds_per_query",
                "queries", "neighbors_returned", "recall"):
        assert key in row, f"approx row missing {key}: {row}"
    by_n.setdefault(row["n"], {})[row["index"]] = row
    if row["skipped"]:
        assert row["skip_reason"] == "exceeded_budget", row
for n, cell in sorted(by_n.items()):
    assert "linear" in cell and "approx" in cell, f"n={n}: {sorted(cell)}"
    assert not cell["linear"]["skipped"], "ground truth must never be skipped"
    approx = cell["approx"]
    # The release-smoke criterion: recall >= 0.99 at the default
    # projection budget (window_scale = 1.0 actually guarantees 1.0).
    assert not approx["skipped"] and approx["recall"] >= 0.99, approx
    # Exact indices answering at all must answer exactly.
    for name, row in cell.items():
        if name not in ("approx",) and not row["skipped"]:
            assert row["recall"] == 1.0, f"exact index lost neighbors: {row}"
    # The crossover criterion: at n >= 10^6 the approximate tier must
    # beat every exact index still inside the time budget on wall-clock
    # per query (a skipped index already fell over at a smaller n).
    if n >= 1000000:
        for name, row in cell.items():
            if name == "approx" or row["skipped"]:
                continue
            assert approx["seconds_per_query"] < row["seconds_per_query"], \
                f"approx not fastest at n={n}: {name} " \
                f"{row['seconds_per_query']} <= {approx['seconds_per_query']}"
quality = doc["quality"]
for key in ("n", "eps", "min_pts", "exact_seconds", "approx_seconds",
            "exact_clusters", "approx_clusters", "p1", "p2"):
    assert key in quality, f"quality missing {key}"
# Q_DBDC within 1% of the exact run under both paper criteria.
assert quality["p1"] >= 0.99 and quality["p2"] >= 0.99, quality
metrics = doc["metrics"]
counters = metrics["counters"]
assert counters.get("approx_candidates_generated", 0) > 0, metrics
assert counters["approx_candidates_generated"] == \
    counters.get("approx_candidates_verified", 0) + \
    counters.get("approx_candidates_pruned", 0), \
    "approx candidate accounting does not reconcile"
largest = max(by_n)
cell = by_n[largest]
contenders = {name: row["seconds_per_query"] for name, row in cell.items()
              if name != "approx" and not row["skipped"]}
best = min(contenders, key=contenders.get)
ratio = contenders[best] / cell["approx"]["seconds_per_query"]
print(f"run_bench.sh: approx schema OK ({len(rows)} sweep rows; at "
      f"n={largest} approx is {ratio:.1f}x faster per query than the best "
      f"exact index ({best}); quality P1={quality['p1']:.4f} "
      f"P2={quality['p2']:.4f}).")
PY
else
  for key in '"schema": "dbdc-approx-bench-v1"' '"results"' '"quality"' \
             '"recall"' '"seconds_per_query"' '"metrics"'; do
    if ! grep -qF "$key" "$approx_out_file"; then
      echo "run_bench.sh: $approx_out_file missing expected key $key" >&2
      exit 1
    fi
  done
  echo "run_bench.sh: approx key check OK." >&2
fi
