# Empty compiler generated dependencies file for eval_extensions_test.
# This may be replaced when dependencies are built.
