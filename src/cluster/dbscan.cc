#include "cluster/dbscan.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <span>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbdc {

std::size_t Clustering::CountNoise() const {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), kNoise));
}

std::size_t Clustering::CountCore() const {
  return static_cast<std::size_t>(
      std::count(is_core.begin(), is_core.end(), std::uint8_t{1}));
}

std::vector<std::size_t> Clustering::ClusterSizes() const {
  std::vector<std::size_t> sizes(num_clusters, 0);
  for (const ClusterId label : labels) {
    if (label >= 0) ++sizes[label];
  }
  return sizes;
}

namespace {

/// Seed-queue expansion resolves neighborhoods in blocks of up to this
/// many queries (one BatchRangeQuery per block). Every queued seed is
/// queried in the scalar control flow too, in the same queue order, so
/// the block size affects throughput only — never the query multiset,
/// labels, or observer events.
constexpr std::size_t kSeedBlock = 32;

/// The DBSCAN control flow, generic over where neighborhoods come from.
/// A resolver materializes neighborhoods for a block of query points:
///
///   resolver.Resolve(std::span<const PointId> queries);
///   std::span<const PointId> ns = resolver.Neighbors(j);  // of queries[j]
///
/// Neighbors(j) stays valid until the next Resolve call. The sequential
/// path issues live (batched) range queries; the parallel path reads the
/// materialized core graph. Keeping one sweep guarantees the two paths
/// cannot diverge behaviorally.
template <typename Resolver>
Clustering DbscanSweep(std::size_t n, const DbscanParams& params,
                       DbscanObserver* observer, Resolver&& resolver) {
  Clustering result;
  result.labels.assign(n, kUnclassified);
  result.is_core.assign(n, 0);

  std::vector<PointId> seeds;  // FIFO expansion queue of the current cluster.
  ClusterId next_cluster = 0;
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    if (result.labels[p] != kUnclassified) continue;
    resolver.Resolve(std::span<const PointId>(&p, 1));
    const std::span<const PointId> neighbors = resolver.Neighbors(0);
    if (static_cast<int>(neighbors.size()) < params.min_pts) {
      // Tentative noise; may later be claimed as a border point.
      result.labels[p] = kNoise;
      continue;
    }
    // p is a core point: start a new cluster and expand it.
    const ClusterId cluster = next_cluster++;
    if (observer != nullptr) observer->OnClusterStarted(cluster);
    result.labels[p] = cluster;
    result.is_core[p] = 1;
    if (observer != nullptr) observer->OnCorePoint(p, cluster);
    seeds.clear();
    for (const PointId q : neighbors) {
      if (q == p) continue;
      if (result.labels[q] == kUnclassified || result.labels[q] == kNoise) {
        result.labels[q] = cluster;
        seeds.push_back(q);
      }
    }
    // Expansion wave: resolve the queue in blocks, then replay each
    // block's results in queue order. Neighborhoods depend only on the
    // (static) index contents, never on labels, so resolving queries
    // ahead of processing cannot change any result. Each block is copied
    // out of `seeds` first: the inner loop grows `seeds` (reallocating
    // it), and a resolver may hold the query span until the next Resolve.
    std::array<PointId, kSeedBlock> block_queries;
    for (std::size_t i = 0; i < seeds.size();) {
      const std::size_t block = std::min(seeds.size() - i, kSeedBlock);
      std::copy_n(seeds.data() + i, block, block_queries.data());
      resolver.Resolve(std::span<const PointId>(block_queries.data(), block));
      for (std::size_t j = 0; j < block; ++j) {
        const PointId q = block_queries[j];
        const std::span<const PointId> expansion = resolver.Neighbors(j);
        if (static_cast<int>(expansion.size()) < params.min_pts) continue;
        result.is_core[q] = 1;
        if (observer != nullptr) observer->OnCorePoint(q, cluster);
        for (const PointId r : expansion) {
          if (result.labels[r] == kUnclassified ||
              result.labels[r] == kNoise) {
            result.labels[r] = cluster;
            seeds.push_back(r);
          }
        }
      }
      i += block;
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

/// Live resolver of the sequential path: one BatchRangeQuery per block,
/// with the per-query histogram/counter instrumentation of the old
/// query-at-a-time loop (same values, same order).
class IndexBatchResolver {
 public:
  IndexBatchResolver(const NeighborIndex& index, double eps)
      : index_(&index), eps_(eps) {}

  void Resolve(std::span<const PointId> queries) {
    index_->BatchRangeQuery(queries, eps_, &ids_, &counts_);
    queries_ += queries.size();
    offsets_.assign(counts_.size() + 1, 0);
    for (std::size_t j = 0; j < counts_.size(); ++j) {
      obs::Observe(obs::Histogram::kRangeQueryNeighbors, counts_[j]);
      offsets_[j + 1] = offsets_[j] + counts_[j];
    }
  }

  std::span<const PointId> Neighbors(std::size_t j) const {
    return {ids_.data() + offsets_[j], counts_[j]};
  }

  std::uint64_t queries() const { return queries_; }

 private:
  const NeighborIndex* index_;
  double eps_;
  std::uint64_t queries_ = 0;
  std::vector<PointId> ids_;
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> offsets_;
};

/// Resolver of the parallel path's phase B: neighborhoods were already
/// materialized into a CSR graph, so Resolve just notes the block and
/// Neighbors returns the adjacency slice in place.
class CsrResolver {
 public:
  CsrResolver(const std::vector<std::size_t>& offsets,
              const std::vector<PointId>& adjacency)
      : offsets_(&offsets), adjacency_(&adjacency) {}

  void Resolve(std::span<const PointId> queries) { queries_ = queries; }

  std::span<const PointId> Neighbors(std::size_t j) const {
    const std::size_t p = static_cast<std::size_t>(queries_[j]);
    const std::size_t begin = (*offsets_)[p];
    const std::size_t end = (*offsets_)[p + 1];
    return {adjacency_->data() + begin, end - begin};
  }

 private:
  const std::vector<std::size_t>* offsets_;
  const std::vector<PointId>* adjacency_;
  std::span<const PointId> queries_;
};

}  // namespace

Clustering RunDbscan(const NeighborIndex& index, const DbscanParams& params,
                     DbscanObserver* observer) {
  DBDC_CHECK(params.eps > 0.0);
  DBDC_CHECK(params.min_pts >= 1);
  if (params.threads != 1) {
    return RunDbscanParallel(index, params, params.threads, observer);
  }
  const Dataset& data = index.data();
  const std::size_t n = data.size();
  DBDC_CHECK(index.size() == n && "RunDbscan requires a fully-built index");

  obs::ScopedSpan span("dbscan", "cluster");
  span.AddArg("points", static_cast<std::int64_t>(n));

  // Queries accumulate in the resolver; one registry add per run, not
  // per query, keeps the disabled path to a single branch inside Observe.
  IndexBatchResolver resolver(index, params.eps);
  Clustering result = DbscanSweep(n, params, observer, resolver);
  obs::Count(obs::Counter::kEpsRangeQueries, resolver.queries());
#if DBDC_DCHECK_IS_ON()
  ValidateDbscanResult(index, params, result);
#endif
  return result;
}

Clustering RunDbscanParallel(const NeighborIndex& index,
                             const DbscanParams& params, int threads,
                             DbscanObserver* observer) {
  DBDC_CHECK(params.eps > 0.0);
  DBDC_CHECK(params.min_pts >= 1);
  const int resolved = ResolveNumThreads(threads);
  if (resolved == 1) {
    // No workers to win anything with; skip the graph materialization.
    DbscanParams sequential = params;
    sequential.threads = 1;
    return RunDbscan(index, sequential, observer);
  }
  const Dataset& data = index.data();
  const std::size_t n = data.size();
  DBDC_CHECK(index.size() == n && "RunDbscan requires a fully-built index");

  ThreadPool pool(resolved);

  // Phase A: all ε-neighborhoods via parallel range queries. Every chunk
  // appends its points' neighbor lists to a private buffer; the chunking
  // is pure index arithmetic, so buffer contents are independent of
  // scheduling and thread count.
  std::vector<std::size_t> offsets(n + 1, 0);  // offsets[p+1] = |N(p)| here.
  std::vector<std::vector<PointId>> chunk_ids(pool.NumChunks(n));
  {
    obs::ScopedSpan phase_a("dbscan.range_queries", "cluster");
    phase_a.AddArg("points", static_cast<std::int64_t>(n));
    phase_a.AddArg("threads", static_cast<std::int64_t>(resolved));
    pool.ParallelChunks(n, [&](std::size_t chunk, std::size_t begin,
                               std::size_t end) {
      // A chunk's buffer is the concatenation of its points' neighbor
      // lists — exactly BatchRangeQuery's output layout, so the whole
      // chunk is one batched call (per-query setup hoisted, candidate
      // blocks scored through the SIMD kernels).
      std::vector<PointId> queries(end - begin);
      std::iota(queries.begin(), queries.end(), static_cast<PointId>(begin));
      std::vector<std::size_t> counts;
      index.BatchRangeQuery(queries, params.eps, &chunk_ids[chunk], &counts);
      for (std::size_t i = begin; i < end; ++i) {
        obs::Observe(obs::Histogram::kRangeQueryNeighbors, counts[i - begin]);
        offsets[i + 1] = counts[i - begin];
      }
    });
    // Exactly one query per point here — a different count than the
    // sequential path, which re-queries noise points later claimed as
    // border (see obs_test's thread-invariance matrix).
    obs::Count(obs::Counter::kEpsRangeQueries, n);
  }
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  // Stitch the per-chunk buffers into one CSR adjacency. A chunk's buffer
  // is exactly the concatenation of its points' lists, and chunks cover
  // contiguous point ranges, so each copies to adjacency[offsets[begin]...).
  std::vector<PointId> adjacency(offsets[n]);
  pool.ParallelChunks(n, [&](std::size_t chunk, std::size_t begin,
                             std::size_t /*end*/) {
    std::copy(chunk_ids[chunk].begin(), chunk_ids[chunk].end(),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[begin]));
  });
  chunk_ids.clear();

  // Phase B: sequential expansion over the materialized core graph —
  // the exact sequential control flow, consuming the exact data a
  // sequential run would have queried, hence bit-identical output.
  obs::ScopedSpan phase_b("dbscan.sweep", "cluster");
  CsrResolver resolver(offsets, adjacency);
  Clustering result = DbscanSweep(n, params, observer, resolver);
#if DBDC_DCHECK_IS_ON()
  ValidateDbscanResult(index, params, result);
#endif
  return result;
}

namespace {

// Union-find over point ids, used to recompute the ε-connected components
// of the core points independently of the clustering under validation.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<PointId>(i);
  }

  PointId Find(PointId x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void Union(PointId a, PointId b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[static_cast<std::size_t>(a)] = b;
  }

 private:
  std::vector<PointId> parent_;
};

}  // namespace

void ValidateDbscanResult(const NeighborIndex& index,
                          const DbscanParams& params,
                          const Clustering& result) {
  const Dataset& data = index.data();
  const std::size_t n = data.size();
  DBDC_ASSERT(result.labels.size() == n);
  DBDC_ASSERT(result.is_core.size() == n);
  DBDC_ASSERT(result.num_clusters >= 0);

  std::vector<std::uint8_t> cluster_has_core(
      static_cast<std::size_t>(result.num_clusters), 0);
  DisjointSets core_components(n);
  std::vector<PointId> neighbors;
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    const ClusterId label = result.labels[p];
    DBDC_ASSERT(label == kNoise || (label >= 0 && label < result.num_clusters));

    index.RangeQuery(p, params.eps, &neighbors);
    const bool core = static_cast<int>(neighbors.size()) >= params.min_pts;
    DBDC_ASSERT((result.is_core[p] != 0) == core &&
                "core predicate disagrees with a recomputation");
    if (core) {
      DBDC_ASSERT(label >= 0 && "every core point must be labeled");
      cluster_has_core[static_cast<std::size_t>(label)] = 1;
      for (const PointId q : neighbors) {
        // Everything a core point reaches is density-reachable: never noise.
        DBDC_ASSERT(result.labels[q] != kNoise);
        if (result.is_core[q] != 0) core_components.Union(p, q);
      }
    } else {
      // Border points touch a core point of their own cluster; noise points
      // touch no core point at all.
      bool has_core_neighbor_in_cluster = false;
      bool has_core_neighbor = false;
      for (const PointId q : neighbors) {
        if (result.is_core[q] == 0) continue;
        has_core_neighbor = true;
        if (result.labels[q] == label) has_core_neighbor_in_cluster = true;
      }
      if (label >= 0) {
        DBDC_ASSERT(has_core_neighbor_in_cluster &&
                    "border point without a core point of its cluster");
      } else {
        DBDC_ASSERT(!has_core_neighbor &&
                    "noise point within eps of a core point");
      }
    }
  }
  for (std::size_t c = 0; c < cluster_has_core.size(); ++c) {
    DBDC_ASSERT(cluster_has_core[c] != 0 && "cluster without a core point");
  }

  // The core points of a cluster must form exactly one ε-connected
  // component: label -> component must be a bijection. A cluster covering
  // two components was merged beyond its ε-connectivity; one component
  // split over two labels was torn apart.
  std::vector<PointId> label_to_root(
      static_cast<std::size_t>(result.num_clusters), -1);
  std::vector<ClusterId> root_to_label(n, kUnclassified);
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    if (result.is_core[p] == 0) continue;
    const std::size_t label = static_cast<std::size_t>(result.labels[p]);
    const PointId root = core_components.Find(p);
    if (label_to_root[label] == -1) {
      label_to_root[label] = root;
    } else {
      DBDC_ASSERT(label_to_root[label] == root &&
                  "cluster spans beyond its ε-connectivity");
    }
    ClusterId& seen = root_to_label[static_cast<std::size_t>(root)];
    if (seen == kUnclassified) {
      seen = result.labels[p];
    } else {
      DBDC_ASSERT(seen == result.labels[p] &&
                  "one ε-connected component split across clusters");
    }
  }
}

}  // namespace dbdc
