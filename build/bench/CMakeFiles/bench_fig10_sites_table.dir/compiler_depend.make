# Empty compiler generated dependencies file for bench_fig10_sites_table.
# This may be replaced when dependencies are built.
