#include "distrib/fault.h"

#include <algorithm>
#include <random>

#include "common/check.h"
#include "common/checksum.h"
#include "obs/metrics.h"

namespace dbdc {
namespace {

bool Contains(const std::vector<int>& ids, EndpointId endpoint) {
  return std::find(ids.begin(), ids.end(), endpoint) != ids.end();
}

/// Per-message seed: a pure function of (stream seed, link, position on
/// the link). Endpoint ids are offset by 2 so kServerEndpoint (-1) maps
/// to a distinct non-negative value.
std::uint64_t MessageSeed(std::uint64_t seed, EndpointId from, EndpointId to,
                          std::uint64_t sequence) {
  const std::uint64_t link =
      (static_cast<std::uint64_t>(static_cast<std::int64_t>(from) + 2) << 32) |
      static_cast<std::uint64_t>(static_cast<std::int64_t>(to) + 2);
  return MixBits(seed ^ MixBits(link) ^ MixBits(sequence));
}

bool Bernoulli(double p, std::mt19937_64* rng) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::uniform_real_distribution<double>(0.0, 1.0)(*rng) < p;
}

}  // namespace

FaultyNetwork::FaultyNetwork(Transport* inner, const FaultSpec& spec)
    : inner_(inner), spec_(spec) {
  DBDC_CHECK(inner != nullptr);
  DBDC_CHECK(spec.drop_rate >= 0.0 && spec.drop_rate <= 1.0);
  DBDC_CHECK(spec.corrupt_rate >= 0.0 && spec.corrupt_rate <= 1.0);
  DBDC_CHECK(spec.max_corrupt_bytes >= 1);
  DBDC_CHECK(spec.delay_mean_sec >= 0.0);
  DBDC_CHECK(spec.straggler_delay_sec >= 0.0);
}

bool FaultyNetwork::SiteFailed(EndpointId endpoint) const {
  return Contains(spec_.failed_sites, endpoint);
}

bool FaultyNetwork::SiteStraggling(EndpointId endpoint) const {
  return Contains(spec_.straggler_sites, endpoint);
}

std::size_t FaultyNetwork::Send(EndpointId from, EndpointId to,
                                std::vector<std::uint8_t> payload) {
  ++stats_.messages_seen;
  const std::uint64_t sequence = link_sequence_[{from, to}]++;

  // Dead endpoints are black holes in both directions.
  if (SiteFailed(from) || SiteFailed(to)) {
    ++stats_.messages_dropped;
    stats_.bytes_dropped += payload.size();
    obs::Count(obs::Counter::kFaultDropsInjected);
    return kMessageDropped;
  }

  std::mt19937_64 rng(MessageSeed(spec_.seed, from, to, sequence));
  if (Bernoulli(spec_.drop_rate, &rng)) {
    ++stats_.messages_dropped;
    stats_.bytes_dropped += payload.size();
    obs::Count(obs::Counter::kFaultDropsInjected);
    return kMessageDropped;
  }

  if (!payload.empty() && Bernoulli(spec_.corrupt_rate, &rng)) {
    ++stats_.messages_corrupted;
    obs::Count(obs::Counter::kFaultCorruptionsInjected);
    const int flips = static_cast<int>(std::uniform_int_distribution<int>(
        1, spec_.max_corrupt_bytes)(rng));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = std::uniform_int_distribution<std::size_t>(
          0, payload.size() - 1)(rng);
      // XOR with a non-zero byte, so the payload always actually changes.
      payload[pos] ^= static_cast<std::uint8_t>(
          std::uniform_int_distribution<int>(1, 255)(rng));
    }
  }

  double delay = 0.0;
  if (spec_.delay_mean_sec > 0.0) {
    delay += spec_.delay_mean_sec *
             std::uniform_real_distribution<double>(0.5, 1.5)(rng);
  }
  if (SiteStraggling(from) || SiteStraggling(to)) {
    delay += spec_.straggler_delay_sec;
  }

  const std::size_t index = inner_->Send(from, to, std::move(payload));
  DBDC_CHECK(index != kMessageDropped);
  ++stats_.messages_delivered;
  if (delay > 0.0) {
    ++stats_.messages_delayed;
    obs::Count(obs::Counter::kFaultDelaysInjected);
    delays_[index] = delay;
  }
  return index;
}

double FaultyNetwork::DeliveryDelaySeconds(std::size_t index) const {
  const auto it = delays_.find(index);
  return it != delays_.end() ? it->second : 0.0;
}

void FaultyNetwork::Clear() {
  inner_->Clear();
  stats_ = FaultStats{};
  link_sequence_.clear();
  delays_.clear();
}

}  // namespace dbdc
