#ifndef DBDC_OBS_METRICS_H_
#define DBDC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/obs_context.h"
#include "common/thread_annotations.h"

namespace dbdc::obs {

/// The well-known counters of the DBDC pipeline (DESIGN.md §9). A fixed
/// enum instead of string lookup keeps the hot-path cost of an increment
/// at one array index into the calling thread's shard.
enum class Counter : int {
  /// ε-range queries issued by the clustering drivers (DBSCAN sweeps and
  /// relabel passes; one per neighborhood materialization).
  kEpsRangeQueries = 0,
  /// Candidates the Euclidean squared-distance fast path examined ...
  kFastPathCandidates,
  /// ... and rejected without a sqrt or a virtual metric call.
  kFastPathPruned,
  /// Data frames the reliable channel put on the wire (incl. retries).
  kFramesSent,
  kFramesRetried,
  kFramesDropped,
  kFramesCorrupted,
  kAcksLost,
  /// Bytes recorded by the transport, per direction — byte-identical to
  /// Transport::BytesUplink()/BytesDownlink() when the registry was
  /// attached for the transport's whole lifetime.
  kBytesUplink,
  kBytesDownlink,
  /// What the fault-injection layer actually did.
  kFaultDropsInjected,
  kFaultCorruptionsInjected,
  kFaultDelaysInjected,
  /// Representative distance evaluations during relabeling.
  kRelabelDistanceComps,
  kRelabelPointsScanned,
  /// Continuous-mode lifecycle.
  kRefreshesSent,
  kRefreshesApplied,
  kRefreshesLost,
  kGlobalRebuilds,
  kContinuousTicks,
  /// SIMD blocks the batched distance kernels evaluated (one block =
  /// TierLanes(active) candidates, tail lanes counted as one block each)...
  kSimdBlocksScored,
  /// ... and candidates their fused eps² compare rejected. Invariant:
  /// filtered <= blocks * TierLanes(active tier).
  kSimdCandidatesFiltered,
  /// Hierarchical topology (DESIGN.md §13): intermediate merges run by
  /// aggregator nodes, and the merged models they forwarded up the tree.
  kAggregatorMerges,
  kIntermediateModelsForwarded,
  /// Elastic membership in continuous mode: sites explicitly retired,
  /// and stale sites evicted by TTL expiry.
  kSitesRetired,
  kSitesExpired,
  /// Approximate index tier (ApproxIndex): candidates the projected-grid
  /// window gathered, of which every one is re-verified exactly —
  /// accepted as true ε-neighbors or pruned. Invariant:
  /// generated == verified + pruned.
  kApproxCandidatesGenerated,
  kApproxCandidatesVerified,
  kApproxCandidatesPruned,
};
inline constexpr int kNumCounters = 29;

/// Stable snake_case name for tables, JSON, and tests.
std::string_view CounterName(Counter counter);

enum class Gauge : int {
  /// Latest virtual-clock reading (continuous mode).
  kVirtualClockSec = 0,
  /// Points in the dataset of the most recent run.
  kDatasetPoints,
  /// Active SIMD dispatch tier (simd::Tier as a number: 0 scalar,
  /// 1 sse2, 2 avx2).
  kSimdTier,
};
inline constexpr int kNumGauges = 3;
std::string_view GaugeName(Gauge gauge);

/// Power-of-two-bucketed histograms: bucket 0 counts value 0, bucket b
/// counts values in [2^(b-1), 2^b).
enum class Histogram : int {
  kFramePayloadBytes = 0,
  kRangeQueryNeighbors,
  kRelabelCandidates,
};
inline constexpr int kNumHistograms = 3;
inline constexpr int kHistogramBuckets = 65;
std::string_view HistogramName(Histogram histogram);

struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// Point-in-time merged view of a registry. Plain values — safe to copy,
/// compare, and embed (DbdcResult::metrics_snapshot).
struct MetricsSnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<double, kNumGauges> gauges{};
  std::array<HistogramData, kNumHistograms> histograms{};
  /// Per-site wire bytes (site id -> bytes), summing to the kBytesUplink /
  /// kBytesDownlink totals.
  std::map<int, std::uint64_t> bytes_uplink_by_site;
  std::map<int, std::uint64_t> bytes_downlink_by_site;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(static_cast<int>(c))];
  }
  double gauge(Gauge g) const {
    return gauges[static_cast<std::size_t>(static_cast<int>(g))];
  }
  const HistogramData& histogram(Histogram h) const {
    return histograms[static_cast<std::size_t>(static_cast<int>(h))];
  }
  bool empty() const;

  /// Deterministic JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "bytes_uplink_by_site": {...}, ...} with keys
  /// in enum/site order.
  std::string Json() const;
};

/// Registry of the process's DBDC metrics. Counter and histogram updates
/// go to a per-thread shard (relaxed atomics, created lazily per thread),
/// so concurrent instrumented code never contends on a shared cache line
/// and stays TSan-clean; Snapshot() merges the shards. Gauges and the
/// per-site byte maps are updated on cold control paths and are
/// mutex-guarded.
///
/// Totals are sums over shards, hence independent of which thread did
/// which share of the work: for a deterministic workload the snapshot is
/// identical for every thread count.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Add(Counter counter, std::uint64_t delta);
  void SetGauge(Gauge gauge, double value);
  void Observe(Histogram histogram, std::uint64_t value);
  /// Per-site wire accounting; `direction` must be kBytesUplink or
  /// kBytesDownlink. Also feeds the corresponding total counter.
  void AddSiteBytes(Counter direction, int site_id, std::uint64_t delta);

  /// Merged value of one counter (same merge as Snapshot()).
  std::uint64_t CounterValue(Counter counter) const;
  MetricsSnapshot Snapshot() const;

 private:
  struct Shard;
  Shard* ThisThreadShard();

  const std::uint64_t id_;  // Process-unique; never reused.
  mutable Mutex mu_;
  /// Append-only; the Shard pointees are updated lock-free by their
  /// owning threads (relaxed atomics), only the vector itself is guarded.
  std::vector<std::unique_ptr<Shard>> shards_ DBDC_GUARDED_BY(mu_);
  std::array<std::atomic<double>, kNumGauges> gauges_;
  std::map<int, std::uint64_t> site_uplink_ DBDC_GUARDED_BY(mu_);
  std::map<int, std::uint64_t> site_downlink_ DBDC_GUARDED_BY(mu_);
};

namespace internal {
extern std::atomic<MetricsRegistry*> g_metrics;
}  // namespace internal

/// The registry instrumentation reports to, or null when observability
/// is off (the default). A thread-local scope override (obs::ObsScope —
/// the multi-tenant server's per-job isolation) wins over the
/// process-wide registration; ThreadPool workers inherit the scope of
/// the thread that created the pool. The zero-cost-when-off contract:
/// every hook is one thread-local load plus one acquire load + branch
/// when disabled — no locks, no allocations, no stores.
inline MetricsRegistry* GlobalMetrics() {
  if (void* scoped = ::dbdc::internal::tls_obs_scope.metrics) {
    return static_cast<MetricsRegistry*>(scoped);
  }
  return internal::g_metrics.load(std::memory_order_acquire);
}

/// Attaches `registry` (borrowed; caller keeps ownership and must detach
/// — SetGlobalMetrics(nullptr) — before destroying it). Not intended for
/// concurrent re-attachment while instrumented code runs.
void SetGlobalMetrics(MetricsRegistry* registry);

inline void Count(Counter counter, std::uint64_t delta = 1) {
  if (MetricsRegistry* m = GlobalMetrics()) m->Add(counter, delta);
}

inline void Observe(Histogram histogram, std::uint64_t value) {
  if (MetricsRegistry* m = GlobalMetrics()) m->Observe(histogram, value);
}

inline void SetGauge(Gauge gauge, double value) {
  if (MetricsRegistry* m = GlobalMetrics()) m->SetGauge(gauge, value);
}

}  // namespace dbdc::obs

#endif  // DBDC_OBS_METRICS_H_
