// Seeded violation: ambient, unseeded randomness. rand()/srand() and
// std::random_device produce different streams per run, so any component
// using them is unreproducible by construction.
#include <cstdlib>
#include <random>

namespace dbdc {

int BadRandomInt() {
  std::srand(42);
  std::random_device device;
  return static_cast<int>(std::rand() + device());
}

}  // namespace dbdc
