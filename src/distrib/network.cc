#include "distrib/network.h"

namespace dbdc {

std::size_t SimulatedNetwork::Send(EndpointId from, EndpointId to,
                                   std::vector<std::uint8_t> payload) {
  messages_.push_back({from, to, std::move(payload)});
  return messages_.size() - 1;
}

std::vector<const NetworkMessage*> SimulatedNetwork::Inbox(
    EndpointId endpoint) const {
  std::vector<const NetworkMessage*> inbox;
  for (const NetworkMessage& m : messages_) {
    if (m.to == endpoint) inbox.push_back(&m);
  }
  return inbox;
}

std::uint64_t SimulatedNetwork::BytesUplink() const {
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) {
    if (m.to == kServerEndpoint) total += m.payload.size();
  }
  return total;
}

std::uint64_t SimulatedNetwork::BytesDownlink() const {
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) {
    if (m.from == kServerEndpoint) total += m.payload.size();
  }
  return total;
}

std::uint64_t SimulatedNetwork::BytesTotal() const {
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) total += m.payload.size();
  return total;
}

}  // namespace dbdc
