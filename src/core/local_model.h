#ifndef DBDC_CORE_LOCAL_MODEL_H_
#define DBDC_CORE_LOCAL_MODEL_H_

#include <string_view>
#include <vector>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// One transmitted (representative, ε-range) pair: the representative
/// approximates every local object within eps_range of it (Sec. 5).
struct Representative {
  Point center;
  double eps_range = 0.0;
  /// Local cluster the representative describes (diagnostics/tests only;
  /// the global model treats representatives independently).
  ClusterId local_cluster = kNoise;
  /// Number of local objects the representative stands for (the objects
  /// within its ε-range for REP_Scor, the assigned objects for
  /// REP_kMeans). Not part of the EDBT'04 model — an implemented
  /// extension in the direction of the authors' follow-up work: it
  /// enables the *weighted* global core condition of GlobalModelParams,
  /// at 4 extra bytes per representative on the wire.
  std::uint32_t weight = 1;
};

/// The aggregated information a site sends to the server: one entry per
/// representative of each locally found cluster.
struct LocalModel {
  int site_id = 0;
  int dim = 0;
  int num_local_clusters = 0;
  std::vector<Representative> representatives;
};

/// The two local model schemes of the paper (Sec. 5.1 / 5.2).
enum class LocalModelType {
  kScor,    // REP_Scor: specific core points + specific ε-ranges.
  kKMeans,  // REP_kMeans: k-means centroids seeded by specific core points.
};

std::string_view LocalModelTypeName(LocalModelType type);

/// DbscanObserver that computes a complete set of specific core points
/// per cluster (Def. 6) on the fly, exactly as Sec. 4 describes: a core
/// point becomes *specific* iff no earlier specific core point of its
/// cluster lies within Eps of it. The DBSCAN processing order determines
/// the concrete set.
class SpecificCorePointCollector final : public DbscanObserver {
 public:
  SpecificCorePointCollector(const Dataset& data, const Metric& metric,
                             double eps)
      : data_(&data), metric_(&metric), eps_(eps) {}

  void OnClusterStarted(ClusterId cluster) override;
  void OnCorePoint(PointId id, ClusterId cluster) override;

  /// Specific core points per cluster, in discovery order.
  const std::vector<std::vector<PointId>>& per_cluster() const {
    return scor_;
  }

 private:
  const Dataset* data_;
  const Metric* metric_;
  double eps_;
  std::vector<std::vector<PointId>> scor_;
};

/// A local DBSCAN run together with the specific core points it produced.
struct LocalClustering {
  Clustering clustering;
  /// scor[c] = complete set of specific core points of cluster c.
  std::vector<std::vector<PointId>> scor;
};

/// Runs DBSCAN over the site's index and collects the specific core
/// points in the same pass.
LocalClustering RunLocalDbscan(const NeighborIndex& index,
                               const DbscanParams& params);

/// Builds the REP_Scor local model (Sec. 5.1): the representatives are
/// the specific core points themselves; each carries the specific ε-range
/// of Def. 7,  ε_s = Eps + max{dist(s, c) : c core ∧ c ∈ N_Eps(s)}.
LocalModel BuildScorModel(const NeighborIndex& index,
                          const LocalClustering& local,
                          const DbscanParams& params, int site_id);

/// Builds the REP_kMeans local model (Sec. 5.2): per cluster C, k-means
/// with k = |Scor_C| and the specific core points as starting centers;
/// the centroids become the representatives and each ε-range is the
/// maximum distance of the centroid's assigned objects,
/// ε_c = max{dist(o, c) : o assigned to c}.
///
/// k-means averages coordinates, so this model requires a vector space
/// (Euclidean geometry); use REP_Scor for general metric data.
LocalModel BuildKMeansModel(const NeighborIndex& index,
                            const LocalClustering& local,
                            const DbscanParams& params,
                            const KMeansParams& kmeans_params, int site_id);

/// Convenience dispatcher over the two model types.
LocalModel BuildLocalModel(LocalModelType type, const NeighborIndex& index,
                           const LocalClustering& local,
                           const DbscanParams& params,
                           const KMeansParams& kmeans_params, int site_id);

/// Lossy model condensation for constrained uplinks (extension): greedily
/// merges representatives of the same local cluster whose centers are
/// within `condense_eps` of each other, enlarging the survivor's ε-range
/// to ε_new = max(ε_survivor, dist + ε_merged) and summing the weights.
///
/// Guarantee: every local object covered by the input model remains
/// covered by the output model (ranges only grow over the merged areas),
/// so relabeling still reaches every cluster member — the trade-off is
/// coarser ranges, i.e. more aggressive absorption. condense_eps = 0
/// returns the model unchanged. Survivors are chosen heaviest-first
/// (deterministic).
LocalModel CondenseLocalModel(const LocalModel& model, double condense_eps,
                              const Metric& metric);

}  // namespace dbdc

#endif  // DBDC_CORE_LOCAL_MODEL_H_
