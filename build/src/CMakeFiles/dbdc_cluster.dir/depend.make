# Empty dependencies file for dbdc_cluster.
# This may be replaced when dependencies are built.
