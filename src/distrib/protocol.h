#ifndef DBDC_DISTRIB_PROTOCOL_H_
#define DBDC_DISTRIB_PROTOCOL_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "distrib/transport.h"

namespace dbdc {

/// Reliable-delivery protocol over an unreliable Transport (DESIGN.md §7).
///
/// Every application payload (a serialized local/global model) is wrapped
/// in a checksummed frame; the receiver acknowledges intact frames, and
/// the sender retries with exponential backoff until the ack arrives or
/// the attempt budget is exhausted. Elapsed time accrues on a *virtual*
/// clock (LinkModel transfer estimate + injected fault delay + backoff),
/// so straggler classification and the server-side collection deadline
/// are deterministic — independent of the wall clock of the machine
/// running the simulation.
///
/// Frame layout (little-endian):
///   u32 magic 'DBFP' | u8 type (0 data, 1 ack) | u32 seq
///   | u32 payload_size | payload bytes | u64 fnv1a(all preceding bytes)

enum class FrameType : std::uint8_t { kData = 0, kAck = 1 };

struct Frame {
  FrameType type = FrameType::kData;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;  // Empty for acks.
};

std::vector<std::uint8_t> EncodeFrame(const Frame& frame);
/// nullopt on truncation, bad magic, or checksum mismatch — the receiver
/// treats all three identically (discard, no ack), so no reason enum.
[[nodiscard]] std::optional<Frame> DecodeFrame(
    std::span<const std::uint8_t> bytes);

/// Fixed per-frame overhead of EncodeFrame in bytes.
std::size_t FrameOverheadBytes();

/// Incremental reassembly of DBFP frames from a byte *stream* (a TCP
/// connection delivers bytes, not records: a frame may arrive split
/// across many reads, and one read may carry several frames). Feed raw
/// stream bytes with Append() and pop complete, checksum-verified frames
/// with Next().
///
/// The stream has no resynchronization points — a bad magic, an
/// oversized declared payload, or a checksum mismatch poisons it
/// (corrupted() goes true and stays true; Next() returns nothing more).
/// That is the right model for the socket transports: on TCP, garbage
/// means a broken or hostile peer, not a recoverable bit flip, and the
/// connection is torn down.
class FrameAssembler {
 public:
  /// Frames declaring a payload larger than `max_frame_bytes` poison the
  /// stream (admission control against hostile or insane senders).
  explicit FrameAssembler(std::size_t max_frame_bytes = 1u << 30);

  /// Appends raw stream bytes. No-op once the stream is corrupted.
  void Append(std::span<const std::uint8_t> bytes);

  /// Pops the next complete frame, or nullopt when the buffered bytes do
  /// not yet hold one (or the stream is corrupted).
  std::optional<Frame> Next();

  /// True once the stream broke framing (bad magic, oversized payload,
  /// or checksum mismatch). Unrecoverable.
  bool corrupted() const { return corrupted_; }

  /// Bytes buffered but not yet consumed by Next() — nonzero at peer
  /// disconnect means the peer died mid-frame.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  /// Prefix of buffer_ already handed out as frames; compacted lazily.
  std::size_t consumed_ = 0;
  bool corrupted_ = false;
};

/// Knobs of the reliable channel and of RunDbdc's degraded mode.
struct ProtocolConfig {
  /// Master switch for RunDbdc: false = the paper's setting — raw
  /// payloads, no framing/acks/retries, every site assumed reliable.
  bool enabled = false;
  /// Total send attempts per transfer (1 original + max_attempts-1
  /// retries).
  int max_attempts = 4;
  /// Backoff before retry k (1-based): retry_backoff_sec * 2^(k-1). This
  /// doubles as the sender's ack-timeout model.
  double retry_backoff_sec = 0.05;
  /// Server-side collection deadline on the virtual clock: local models
  /// whose first intact arrival is later than this are excluded from the
  /// global model (the site is reported as failed/straggling). Infinity =
  /// wait for everyone.
  double collection_deadline_sec = std::numeric_limits<double>::infinity();
  /// Bytes -> virtual seconds for every frame and ack.
  LinkModel link;
};

/// End-to-end result of one reliable transfer.
struct TransferOutcome {
  /// The sender saw an ack.
  bool acked = false;
  /// An intact data frame reached the receiver (possible without an ack:
  /// the ack itself may have been lost).
  bool delivered = false;
  /// Transport index of the first intact data frame (valid iff
  /// delivered); its payload is what the receiver decodes.
  std::size_t delivered_index = kMessageDropped;
  /// Virtual time of the first intact arrival at the receiver (valid iff
  /// delivered) — what the collection deadline is compared against.
  double delivered_seconds = 0.0;
  /// Virtual time when the sender stopped (ack received or budget
  /// exhausted).
  double elapsed_seconds = 0.0;
  int attempts = 0;
  int retries = 0;
  int data_drops = 0;
  int data_corruptions = 0;
  int ack_losses = 0;
};

/// Aggregate counters over a channel's lifetime.
struct ChannelStats {
  std::uint64_t transfers = 0;
  std::uint64_t acked = 0;
  std::uint64_t retries = 0;
  std::uint64_t data_drops = 0;
  std::uint64_t data_corruptions = 0;
  std::uint64_t ack_losses = 0;
};

/// Sender-side state machine of the protocol. In a real deployment sender
/// and receiver are separate machines; the in-process simulation collapses
/// the receiver's verify-and-ack step into Transfer(), while every frame
/// and ack still crosses the Transport as real bytes — retransmissions
/// and protocol overhead are charged to the byte counters.
class ReliableChannel {
 public:
  /// `transport` must outlive the channel.
  ReliableChannel(Transport* transport, const ProtocolConfig& config);

  /// Sends `payload` from `from` to `to` under the protocol. Each
  /// transfer starts its own virtual clock at 0 (concurrent senders).
  TransferOutcome Transfer(EndpointId from, EndpointId to,
                           std::vector<std::uint8_t> payload);

  const ChannelStats& stats() const { return stats_; }

 private:
  Transport* transport_;
  ProtocolConfig config_;
  std::uint32_t next_seq_ = 0;
  ChannelStats stats_;
};

}  // namespace dbdc

#endif  // DBDC_DISTRIB_PROTOCOL_H_
