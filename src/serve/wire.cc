#include "serve/wire.h"

#include <cstring>
#include <limits>
#include <type_traits>
#include <utility>

namespace dbdc::serve {
namespace {

// Little-endian raw readers/writers, mirroring the model codec's idiom.

template <typename T>
void PutRaw(std::vector<std::uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
bool GetRaw(std::span<const std::uint8_t> bytes, std::size_t* pos,
            T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*pos + sizeof(T) > bytes.size()) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutString(std::vector<std::uint8_t>* out, const std::string& s) {
  PutRaw(out, static_cast<std::uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

bool GetString(std::span<const std::uint8_t> bytes, std::size_t* pos,
               std::string* s) {
  std::uint32_t len = 0;
  if (!GetRaw(bytes, pos, &len)) return false;
  if (*pos + len > bytes.size()) return false;
  s->assign(bytes.begin() + static_cast<std::ptrdiff_t>(*pos),
            bytes.begin() + static_cast<std::ptrdiff_t>(*pos + len));
  *pos += len;
  return true;
}

/// Decode epilogue shared by every message: the payload must be fully
/// consumed — trailing garbage means a framing or version mismatch.
DecodeStatus Finish(std::span<const std::uint8_t> payload, std::size_t pos) {
  return pos == payload.size() ? DecodeStatus::kOk : DecodeStatus::kMalformed;
}

/// Checks and strips the leading MsgType byte.
bool ConsumeType(std::span<const std::uint8_t> payload, std::size_t* pos,
                 MsgType expected) {
  std::uint8_t type = 0;
  return GetRaw(payload, pos, &type) &&
         type == static_cast<std::uint8_t>(expected);
}

void PutConfig(std::vector<std::uint8_t>* out, const DbdcConfig& config) {
  PutRaw(out, config.local_dbscan.eps);
  PutRaw(out, static_cast<std::int32_t>(config.local_dbscan.min_pts));
  PutRaw(out, static_cast<std::int32_t>(config.local_dbscan.threads));
  PutRaw(out, static_cast<std::uint8_t>(config.model_type));
  PutRaw(out, config.eps_global);
  PutRaw(out, config.min_weight_global);
  PutRaw(out, config.condense_eps);
  PutRaw(out, static_cast<std::int32_t>(config.num_sites));
  PutRaw(out, static_cast<std::uint8_t>(config.index_type));
  PutRaw(out, config.seed);
  PutRaw(out, static_cast<std::int32_t>(config.kmeans.max_iterations));
  PutRaw(out, config.kmeans.tolerance);
  PutRaw(out, static_cast<std::uint8_t>(config.parallel_sites ? 1 : 0));
  PutRaw(out, static_cast<std::int32_t>(config.num_threads));
  PutRaw(out, static_cast<std::uint8_t>(config.protocol.enabled ? 1 : 0));
  PutRaw(out, static_cast<std::int32_t>(config.protocol.max_attempts));
  PutRaw(out, config.protocol.retry_backoff_sec);
  PutRaw(out, config.protocol.collection_deadline_sec);
  PutRaw(out, config.protocol.link.bandwidth_bytes_per_sec);
  PutRaw(out, config.protocol.link.latency_sec);
  PutRaw(out, config.optics.max_eps_global);
  PutRaw(out, static_cast<std::uint8_t>(config.topology.kind));
  PutRaw(out, static_cast<std::int32_t>(config.topology.fanout));
  PutRaw(out, config.topology.aggregator_condense_eps);
  PutRaw(out, static_cast<std::int32_t>(config.approx.num_projections));
  PutRaw(out, config.approx.cell_width_factor);
  PutRaw(out, config.approx.window_scale);
  PutRaw(out, config.approx.seed);
}

bool GetConfig(std::span<const std::uint8_t> bytes, std::size_t* pos,
               DbdcConfig* config, bool* malformed) {
  std::int32_t min_pts = 0, threads = 0, num_sites = 0, max_iterations = 0,
               num_threads = 0, max_attempts = 0, fanout = 0,
               approx_projections = 0;
  std::uint8_t model_type = 0, index_type = 0, parallel_sites = 0,
               protocol_enabled = 0, topology_kind = 0;
  if (!GetRaw(bytes, pos, &config->local_dbscan.eps) ||
      !GetRaw(bytes, pos, &min_pts) || !GetRaw(bytes, pos, &threads) ||
      !GetRaw(bytes, pos, &model_type) ||
      !GetRaw(bytes, pos, &config->eps_global) ||
      !GetRaw(bytes, pos, &config->min_weight_global) ||
      !GetRaw(bytes, pos, &config->condense_eps) ||
      !GetRaw(bytes, pos, &num_sites) ||
      !GetRaw(bytes, pos, &index_type) ||
      !GetRaw(bytes, pos, &config->seed) ||
      !GetRaw(bytes, pos, &max_iterations) ||
      !GetRaw(bytes, pos, &config->kmeans.tolerance) ||
      !GetRaw(bytes, pos, &parallel_sites) ||
      !GetRaw(bytes, pos, &num_threads) ||
      !GetRaw(bytes, pos, &protocol_enabled) ||
      !GetRaw(bytes, pos, &max_attempts) ||
      !GetRaw(bytes, pos, &config->protocol.retry_backoff_sec) ||
      !GetRaw(bytes, pos, &config->protocol.collection_deadline_sec) ||
      !GetRaw(bytes, pos, &config->protocol.link.bandwidth_bytes_per_sec) ||
      !GetRaw(bytes, pos, &config->protocol.link.latency_sec) ||
      !GetRaw(bytes, pos, &config->optics.max_eps_global) ||
      !GetRaw(bytes, pos, &topology_kind) || !GetRaw(bytes, pos, &fanout) ||
      !GetRaw(bytes, pos, &config->topology.aggregator_condense_eps) ||
      !GetRaw(bytes, pos, &approx_projections) ||
      !GetRaw(bytes, pos, &config->approx.cell_width_factor) ||
      !GetRaw(bytes, pos, &config->approx.window_scale) ||
      !GetRaw(bytes, pos, &config->approx.seed)) {
    return false;
  }
  // kExplicit never travels: the Topology object is a borrowed pointer on
  // the client and has no wire form, so a remote job may only ask for the
  // shapes the server can build itself.
  if (model_type > 1 || parallel_sites > 1 || protocol_enabled > 1 ||
      index_type > static_cast<std::uint8_t>(IndexType::kApprox) ||
      topology_kind > static_cast<std::uint8_t>(TopologyKind::kTree)) {
    *malformed = true;
    return false;
  }
  config->local_dbscan.min_pts = min_pts;
  config->local_dbscan.threads = threads;
  config->model_type = static_cast<LocalModelType>(model_type);
  config->num_sites = num_sites;
  config->index_type = static_cast<IndexType>(index_type);
  config->kmeans.max_iterations = max_iterations;
  config->parallel_sites = parallel_sites != 0;
  config->num_threads = num_threads;
  config->protocol.enabled = protocol_enabled != 0;
  config->protocol.max_attempts = max_attempts;
  config->topology.kind = static_cast<TopologyKind>(topology_kind);
  config->topology.fanout = fanout;
  config->approx.num_projections = approx_projections;
  config->partitioner = nullptr;        // Never travels.
  config->explicit_topology = nullptr;  // Never travels.
  return true;
}

void PutSnapshot(std::vector<std::uint8_t>* out,
                 const obs::MetricsSnapshot& snap) {
  for (const std::uint64_t c : snap.counters) PutRaw(out, c);
  for (const double g : snap.gauges) PutRaw(out, g);
  for (const obs::HistogramData& h : snap.histograms) {
    PutRaw(out, h.count);
    PutRaw(out, h.sum);
    for (const std::uint64_t b : h.buckets) PutRaw(out, b);
  }
  for (const auto* map : {&snap.bytes_uplink_by_site,
                          &snap.bytes_downlink_by_site}) {
    PutRaw(out, static_cast<std::uint32_t>(map->size()));
    for (const auto& [site, bytes] : *map) {
      PutRaw(out, static_cast<std::int32_t>(site));
      PutRaw(out, bytes);
    }
  }
}

bool GetSnapshot(std::span<const std::uint8_t> bytes, std::size_t* pos,
                 obs::MetricsSnapshot* snap) {
  for (std::uint64_t& c : snap->counters) {
    if (!GetRaw(bytes, pos, &c)) return false;
  }
  for (double& g : snap->gauges) {
    if (!GetRaw(bytes, pos, &g)) return false;
  }
  for (obs::HistogramData& h : snap->histograms) {
    if (!GetRaw(bytes, pos, &h.count) || !GetRaw(bytes, pos, &h.sum)) {
      return false;
    }
    for (std::uint64_t& b : h.buckets) {
      if (!GetRaw(bytes, pos, &b)) return false;
    }
  }
  for (auto* map : {&snap->bytes_uplink_by_site,
                    &snap->bytes_downlink_by_site}) {
    std::uint32_t n = 0;
    if (!GetRaw(bytes, pos, &n)) return false;
    map->clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::int32_t site = 0;
      std::uint64_t site_bytes = 0;
      if (!GetRaw(bytes, pos, &site) || !GetRaw(bytes, pos, &site_bytes)) {
        return false;
      }
      (*map)[site] = site_bytes;
    }
  }
  return true;
}

}  // namespace

std::optional<MsgType> PeekMsgType(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return std::nullopt;
  const std::uint8_t type = payload[0];
  if (type < static_cast<std::uint8_t>(MsgType::kJobRequest) ||
      type > static_cast<std::uint8_t>(MsgType::kShutdownAck)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(type);
}

std::vector<std::uint8_t> EncodeJobRequest(const JobRequest& request) {
  std::vector<std::uint8_t> out;
  const std::size_t n = request.data.size();
  out.reserve(64 + request.metric_name.size() +
              n * static_cast<std::size_t>(request.data.dim()) * 8);
  PutRaw(&out, static_cast<std::uint8_t>(MsgType::kJobRequest));
  PutString(&out, request.metric_name);
  PutRaw(&out, static_cast<std::int32_t>(request.data.dim()));
  PutRaw(&out, static_cast<std::uint64_t>(n));
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    for (const double coord : request.data.point(p)) PutRaw(&out, coord);
  }
  PutConfig(&out, request.config);
  PutRaw(&out, static_cast<std::uint8_t>(request.options.global_strategy));
  PutRaw(&out,
         static_cast<std::uint8_t>(request.options.auto_params ? 1 : 0));
  PutRaw(&out, static_cast<std::int32_t>(request.options.auto_params_k));
  return out;
}

DecodeStatus DecodeJobRequest(std::span<const std::uint8_t> payload,
                              JobRequest* out) {
  std::size_t pos = 0;
  if (!ConsumeType(payload, &pos, MsgType::kJobRequest)) {
    return DecodeStatus::kBadMagic;
  }
  if (!GetString(payload, &pos, &out->metric_name)) {
    return DecodeStatus::kTruncated;
  }
  std::int32_t dim = 0;
  std::uint64_t count = 0;
  if (!GetRaw(payload, &pos, &dim) || !GetRaw(payload, &pos, &count)) {
    return DecodeStatus::kTruncated;
  }
  if (dim < 1) return DecodeStatus::kMalformed;
  // The declared point data must fit in what actually arrived — checked
  // up front so a hostile count cannot trigger a giant allocation.
  const std::uint64_t coord_bytes =
      count * static_cast<std::uint64_t>(dim) * 8;
  if (coord_bytes > payload.size() - pos) return DecodeStatus::kTruncated;
  out->data = Dataset(dim);
  std::vector<double> point(static_cast<std::size_t>(dim));
  for (std::uint64_t p = 0; p < count; ++p) {
    for (double& coord : point) {
      if (!GetRaw(payload, &pos, &coord)) return DecodeStatus::kTruncated;
    }
    out->data.Add(point);
  }
  bool malformed = false;
  if (!GetConfig(payload, &pos, &out->config, &malformed)) {
    return malformed ? DecodeStatus::kMalformed : DecodeStatus::kTruncated;
  }
  std::uint8_t strategy = 0, auto_params = 0;
  std::int32_t auto_k = 0;
  if (!GetRaw(payload, &pos, &strategy) ||
      !GetRaw(payload, &pos, &auto_params) ||
      !GetRaw(payload, &pos, &auto_k)) {
    return DecodeStatus::kTruncated;
  }
  if (strategy > 1 || auto_params > 1) return DecodeStatus::kMalformed;
  out->options.global_strategy = static_cast<GlobalStrategyKind>(strategy);
  out->options.auto_params = auto_params != 0;
  out->options.auto_params_k = auto_k;
  return Finish(payload, pos);
}

std::vector<std::uint8_t> EncodeJobAccepted(const JobAccepted& msg) {
  std::vector<std::uint8_t> out;
  PutRaw(&out, static_cast<std::uint8_t>(MsgType::kJobAccepted));
  PutRaw(&out, msg.job_id);
  PutRaw(&out, static_cast<std::int32_t>(msg.queue_depth));
  return out;
}

DecodeStatus DecodeJobAccepted(std::span<const std::uint8_t> payload,
                               JobAccepted* out) {
  std::size_t pos = 0;
  std::int32_t depth = 0;
  if (!ConsumeType(payload, &pos, MsgType::kJobAccepted)) {
    return DecodeStatus::kBadMagic;
  }
  if (!GetRaw(payload, &pos, &out->job_id) ||
      !GetRaw(payload, &pos, &depth)) {
    return DecodeStatus::kTruncated;
  }
  out->queue_depth = depth;
  return Finish(payload, pos);
}

std::vector<std::uint8_t> EncodeJobRejected(const JobRejected& msg) {
  std::vector<std::uint8_t> out;
  PutRaw(&out, static_cast<std::uint8_t>(MsgType::kJobRejected));
  PutString(&out, msg.field);
  PutString(&out, msg.message);
  return out;
}

DecodeStatus DecodeJobRejected(std::span<const std::uint8_t> payload,
                               JobRejected* out) {
  std::size_t pos = 0;
  if (!ConsumeType(payload, &pos, MsgType::kJobRejected)) {
    return DecodeStatus::kBadMagic;
  }
  if (!GetString(payload, &pos, &out->field) ||
      !GetString(payload, &pos, &out->message)) {
    return DecodeStatus::kTruncated;
  }
  return Finish(payload, pos);
}

std::vector<std::uint8_t> EncodeJobStatus(const JobStatusUpdate& msg) {
  std::vector<std::uint8_t> out;
  PutRaw(&out, static_cast<std::uint8_t>(MsgType::kJobStatus));
  PutRaw(&out, msg.job_id);
  PutRaw(&out, msg.stages_done);
  return out;
}

DecodeStatus DecodeJobStatus(std::span<const std::uint8_t> payload,
                             JobStatusUpdate* out) {
  std::size_t pos = 0;
  if (!ConsumeType(payload, &pos, MsgType::kJobStatus)) {
    return DecodeStatus::kBadMagic;
  }
  if (!GetRaw(payload, &pos, &out->job_id) ||
      !GetRaw(payload, &pos, &out->stages_done)) {
    return DecodeStatus::kTruncated;
  }
  return Finish(payload, pos);
}

std::vector<std::uint8_t> EncodeJobResult(const JobResultMsg& msg) {
  const DbdcResult& r = msg.result;
  std::vector<std::uint8_t> out;
  out.reserve(256 + r.labels.size() * 4);
  PutRaw(&out, static_cast<std::uint8_t>(MsgType::kJobResult));
  PutRaw(&out, msg.job_id);
  PutRaw(&out, msg.params_used.eps);
  PutRaw(&out, static_cast<std::int32_t>(msg.params_used.min_pts));

  PutRaw(&out, static_cast<std::uint64_t>(r.labels.size()));
  for (const ClusterId label : r.labels) {
    PutRaw(&out, static_cast<std::int32_t>(label));
  }
  PutRaw(&out, static_cast<std::int32_t>(r.num_global_clusters));
  PutRaw(&out, static_cast<std::uint64_t>(r.num_representatives));
  PutRaw(&out, r.bytes_uplink);
  PutRaw(&out, r.bytes_downlink);
  PutRaw(&out, r.max_local_seconds);
  PutRaw(&out, r.sum_local_seconds);
  PutRaw(&out, r.global_seconds);
  PutRaw(&out, r.max_relabel_seconds);
  PutRaw(&out, r.eps_global_used);
  PutRaw(&out, static_cast<std::uint32_t>(r.site_sizes.size()));
  for (const std::size_t s : r.site_sizes) {
    PutRaw(&out, static_cast<std::uint64_t>(s));
  }
  const std::vector<std::uint8_t> model = EncodeGlobalModel(r.global_model);
  PutRaw(&out, static_cast<std::uint32_t>(model.size()));
  out.insert(out.end(), model.begin(), model.end());
  PutRaw(&out, static_cast<std::int32_t>(r.sites_reporting));
  PutRaw(&out, static_cast<std::int32_t>(r.sites_failed));
  PutRaw(&out, static_cast<std::uint32_t>(r.failed_site_ids.size()));
  for (const int site : r.failed_site_ids) {
    PutRaw(&out, static_cast<std::int32_t>(site));
  }
  PutRaw(&out, static_cast<std::int32_t>(r.sites_relabeled));
  PutRaw(&out, r.protocol_retries);
  PutRaw(&out, r.frames_dropped);
  PutRaw(&out, r.frames_corrupted);
  PutRaw(&out, r.acks_lost);
  PutRaw(&out, static_cast<std::uint32_t>(r.stage_stats.size()));
  for (const StageStats& s : r.stage_stats) {
    PutRaw(&out, static_cast<std::uint8_t>(s.stage));
    PutRaw(&out, s.seconds);
    PutRaw(&out, s.bytes_uplink);
    PutRaw(&out, s.bytes_downlink);
  }
  PutRaw(&out, static_cast<std::uint32_t>(r.level_stats.size()));
  for (const LevelStats& l : r.level_stats) {
    PutRaw(&out, static_cast<std::int32_t>(l.level));
    PutRaw(&out, static_cast<std::int32_t>(l.nodes));
    PutRaw(&out, static_cast<std::int32_t>(l.nodes_failed));
    PutRaw(&out, static_cast<std::int32_t>(l.models_in));
    PutRaw(&out, static_cast<std::uint64_t>(l.representatives_in));
    PutRaw(&out, l.bytes_in);
    PutRaw(&out, l.merge_seconds);
  }
  PutSnapshot(&out, r.metrics_snapshot);
  PutString(&out, r.simd_tier);
  return out;
}

DecodeStatus DecodeJobResult(std::span<const std::uint8_t> payload,
                             JobResultMsg* out) {
  std::size_t pos = 0;
  if (!ConsumeType(payload, &pos, MsgType::kJobResult)) {
    return DecodeStatus::kBadMagic;
  }
  DbdcResult& r = out->result;
  std::int32_t min_pts = 0;
  if (!GetRaw(payload, &pos, &out->job_id) ||
      !GetRaw(payload, &pos, &out->params_used.eps) ||
      !GetRaw(payload, &pos, &min_pts)) {
    return DecodeStatus::kTruncated;
  }
  out->params_used.min_pts = min_pts;

  std::uint64_t num_labels = 0;
  if (!GetRaw(payload, &pos, &num_labels)) return DecodeStatus::kTruncated;
  if (num_labels * 4 > payload.size() - pos) return DecodeStatus::kTruncated;
  r.labels.clear();
  r.labels.reserve(static_cast<std::size_t>(num_labels));
  for (std::uint64_t i = 0; i < num_labels; ++i) {
    std::int32_t label = 0;
    if (!GetRaw(payload, &pos, &label)) return DecodeStatus::kTruncated;
    r.labels.push_back(label);
  }
  std::int32_t num_clusters = 0;
  std::uint64_t num_reps = 0;
  if (!GetRaw(payload, &pos, &num_clusters) ||
      !GetRaw(payload, &pos, &num_reps) ||
      !GetRaw(payload, &pos, &r.bytes_uplink) ||
      !GetRaw(payload, &pos, &r.bytes_downlink) ||
      !GetRaw(payload, &pos, &r.max_local_seconds) ||
      !GetRaw(payload, &pos, &r.sum_local_seconds) ||
      !GetRaw(payload, &pos, &r.global_seconds) ||
      !GetRaw(payload, &pos, &r.max_relabel_seconds) ||
      !GetRaw(payload, &pos, &r.eps_global_used)) {
    return DecodeStatus::kTruncated;
  }
  r.num_global_clusters = num_clusters;
  r.num_representatives = static_cast<std::size_t>(num_reps);

  std::uint32_t num_sites = 0;
  if (!GetRaw(payload, &pos, &num_sites)) return DecodeStatus::kTruncated;
  r.site_sizes.clear();
  for (std::uint32_t i = 0; i < num_sites; ++i) {
    std::uint64_t size = 0;
    if (!GetRaw(payload, &pos, &size)) return DecodeStatus::kTruncated;
    r.site_sizes.push_back(static_cast<std::size_t>(size));
  }
  std::uint32_t model_len = 0;
  if (!GetRaw(payload, &pos, &model_len)) return DecodeStatus::kTruncated;
  if (model_len > payload.size() - pos) return DecodeStatus::kTruncated;
  const DecodeStatus model_status =
      DecodeGlobalModel(payload.subspan(pos, model_len), &r.global_model);
  if (model_status != DecodeStatus::kOk) return model_status;
  pos += model_len;

  std::int32_t reporting = 0, failed = 0, relabeled = 0;
  std::uint32_t num_failed_ids = 0;
  if (!GetRaw(payload, &pos, &reporting) ||
      !GetRaw(payload, &pos, &failed) ||
      !GetRaw(payload, &pos, &num_failed_ids)) {
    return DecodeStatus::kTruncated;
  }
  r.sites_reporting = reporting;
  r.sites_failed = failed;
  r.failed_site_ids.clear();
  for (std::uint32_t i = 0; i < num_failed_ids; ++i) {
    std::int32_t site = 0;
    if (!GetRaw(payload, &pos, &site)) return DecodeStatus::kTruncated;
    r.failed_site_ids.push_back(site);
  }
  if (!GetRaw(payload, &pos, &relabeled) ||
      !GetRaw(payload, &pos, &r.protocol_retries) ||
      !GetRaw(payload, &pos, &r.frames_dropped) ||
      !GetRaw(payload, &pos, &r.frames_corrupted) ||
      !GetRaw(payload, &pos, &r.acks_lost)) {
    return DecodeStatus::kTruncated;
  }
  r.sites_relabeled = relabeled;

  std::uint32_t num_stages = 0;
  if (!GetRaw(payload, &pos, &num_stages)) return DecodeStatus::kTruncated;
  if (num_stages > static_cast<std::uint32_t>(kNumStages)) {
    return DecodeStatus::kMalformed;
  }
  r.stage_stats.clear();
  for (std::uint32_t i = 0; i < num_stages; ++i) {
    std::uint8_t stage = 0;
    StageStats stats;
    if (!GetRaw(payload, &pos, &stage) ||
        !GetRaw(payload, &pos, &stats.seconds) ||
        !GetRaw(payload, &pos, &stats.bytes_uplink) ||
        !GetRaw(payload, &pos, &stats.bytes_downlink)) {
      return DecodeStatus::kTruncated;
    }
    if (stage >= static_cast<std::uint8_t>(kNumStages)) {
      return DecodeStatus::kMalformed;
    }
    stats.stage = static_cast<StageId>(stage);
    r.stage_stats.push_back(stats);
  }
  std::uint32_t num_levels = 0;
  if (!GetRaw(payload, &pos, &num_levels)) return DecodeStatus::kTruncated;
  // Levels tile a parent chain from the root to the sites; a chain
  // longer than the label count cannot describe a real topology.
  if (num_levels > num_labels + 2) return DecodeStatus::kMalformed;
  r.level_stats.clear();
  for (std::uint32_t i = 0; i < num_levels; ++i) {
    LevelStats level;
    std::int32_t lvl = 0, nodes = 0, nodes_failed = 0, models_in = 0;
    std::uint64_t reps_in = 0;
    if (!GetRaw(payload, &pos, &lvl) || !GetRaw(payload, &pos, &nodes) ||
        !GetRaw(payload, &pos, &nodes_failed) ||
        !GetRaw(payload, &pos, &models_in) ||
        !GetRaw(payload, &pos, &reps_in) ||
        !GetRaw(payload, &pos, &level.bytes_in) ||
        !GetRaw(payload, &pos, &level.merge_seconds)) {
      return DecodeStatus::kTruncated;
    }
    level.level = lvl;
    level.nodes = nodes;
    level.nodes_failed = nodes_failed;
    level.models_in = models_in;
    level.representatives_in = static_cast<std::size_t>(reps_in);
    r.level_stats.push_back(level);
  }
  if (!GetSnapshot(payload, &pos, &r.metrics_snapshot)) {
    return DecodeStatus::kTruncated;
  }
  if (!GetString(payload, &pos, &r.simd_tier)) {
    return DecodeStatus::kTruncated;
  }
  return Finish(payload, pos);
}

std::vector<std::uint8_t> EncodeShutdown() {
  return {static_cast<std::uint8_t>(MsgType::kShutdown)};
}

std::vector<std::uint8_t> EncodeShutdownAck() {
  return {static_cast<std::uint8_t>(MsgType::kShutdownAck)};
}

}  // namespace dbdc::serve
