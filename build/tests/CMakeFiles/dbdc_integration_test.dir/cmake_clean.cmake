file(REMOVE_RECURSE
  "CMakeFiles/dbdc_integration_test.dir/dbdc_integration_test.cc.o"
  "CMakeFiles/dbdc_integration_test.dir/dbdc_integration_test.cc.o.d"
  "dbdc_integration_test"
  "dbdc_integration_test.pdb"
  "dbdc_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
