// Command-line DBDC: cluster a CSV of points, centrally or distributed.
//
//   dbdc_cli <input.csv> [options]
//     --mode central|dbdc        (default dbdc)
//     --eps <double>             Eps_local (default 1.0)
//     --minpts <int>             MinPts (default 5)
//     --sites <int>              number of sites (default 4)
//     --model scor|kmeans        local model (default scor)
//     --global dbscan|optics     global merge strategy (default dbscan);
//                                optics extracts the global clusters from
//                                an OPTICS ordering of the representatives
//     --eps-global <double>      0 = paper default max eps_R (default 0)
//     --index linear|grid|kdtree|rstar|rstar_bulk|mtree|vptree (default grid)
//     --metric euclidean|manhattan|chebyshev   (default euclidean)
//     --seed <uint>              partitioning seed (default 42)
//     --condense <double>        pre-transmission condensation radius
//     --min-weight <uint>        weighted global core condition (0 = off)
//     --threads <int>            intra-site worker threads (0 = hardware
//                                concurrency, default 1); identical labels
//                                for every value
//     --stages                   print the per-stage time/byte breakdown
//     --out <labels.csv>         write "x,...,label" rows
//
// Example:
//   dbdc_cli points.csv --eps 1.2 --minpts 5 --sites 8 --out labeled.csv

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dbdc.h"
#include "data/io.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.csv> [--mode central|dbdc] [--eps E] "
               "[--minpts M] [--sites K] [--model scor|kmeans] "
               "[--global dbscan|optics] [--eps-global G] [--index TYPE] "
               "[--metric NAME] [--seed S] [--condense R] [--min-weight W] "
               "[--threads T] [--stages] [--out labels.csv]\n",
               argv0);
  std::exit(2);
}

void PrintStageBreakdown(const dbdc::DbdcResult& result) {
  std::printf("  %-18s %10s %10s %10s\n", "stage", "seconds", "uplink B",
              "downlink B");
  for (const dbdc::StageStats& s : result.stage_stats) {
    std::printf("  %-18s %10.4f %10llu %10llu\n",
                std::string(dbdc::StageName(s.stage)).c_str(), s.seconds,
                static_cast<unsigned long long>(s.bytes_uplink),
                static_cast<unsigned long long>(s.bytes_downlink));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbdc;
  if (argc < 2) Usage(argv[0]);
  const std::string input = argv[1];

  std::string mode = "dbdc";
  std::string global_strategy = "dbscan";
  std::string out_path;
  bool print_stages = false;
  DbdcConfig config;
  config.local_dbscan = {1.0, 5};
  const Metric* metric = &Euclidean();

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--mode") {
      mode = next();
    } else if (arg == "--eps") {
      config.local_dbscan.eps = std::atof(next());
    } else if (arg == "--minpts") {
      config.local_dbscan.min_pts = std::atoi(next());
    } else if (arg == "--sites") {
      config.num_sites = std::atoi(next());
    } else if (arg == "--model") {
      const std::string name = next();
      if (name == "scor") {
        config.model_type = LocalModelType::kScor;
      } else if (name == "kmeans") {
        config.model_type = LocalModelType::kKMeans;
      } else {
        Usage(argv[0]);
      }
    } else if (arg == "--global") {
      global_strategy = next();
      if (global_strategy != "dbscan" && global_strategy != "optics") {
        Usage(argv[0]);
      }
    } else if (arg == "--eps-global") {
      config.eps_global = std::atof(next());
    } else if (arg == "--index") {
      if (!ParseIndexType(next(), &config.index_type)) Usage(argv[0]);
    } else if (arg == "--metric") {
      metric = MetricByName(next());
      if (metric == nullptr) Usage(argv[0]);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--condense") {
      config.condense_eps = std::atof(next());
    } else if (arg == "--min-weight") {
      config.min_weight_global =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--threads") {
      config.num_threads = std::atoi(next());
    } else if (arg == "--stages") {
      print_stages = true;
    } else if (arg == "--out") {
      out_path = next();
    } else {
      Usage(argv[0]);
    }
  }
  if (config.local_dbscan.eps <= 0.0 || config.local_dbscan.min_pts < 1) {
    std::fprintf(stderr, "error: --eps must be > 0 and --minpts >= 1\n");
    return 2;
  }

  const auto csv = ReadDatasetCsv(input);
  if (!csv.has_value()) {
    std::fprintf(stderr, "error: cannot read '%s'\n", input.c_str());
    return 1;
  }
  std::printf("loaded %zu points (dim %d) from %s\n", csv->data.size(),
              csv->data.dim(), input.c_str());

  std::vector<ClusterId> labels;
  if (mode == "central") {
    DbscanParams central_params = config.local_dbscan;
    central_params.threads = config.num_threads;
    const CentralDbscanResult central = RunCentralDbscan(
        csv->data, *metric, central_params, config.index_type);
    labels = central.clustering.labels;
    std::printf("central DBSCAN: %d clusters, %zu noise, %.3f s\n",
                central.clustering.num_clusters,
                central.clustering.CountNoise(), central.seconds);
  } else if (mode == "dbdc") {
    if (global_strategy == "optics" && config.min_weight_global != 0) {
      std::fprintf(stderr,
                   "error: --global optics does not support --min-weight\n");
      return 2;
    }
    const DbdcResult result =
        global_strategy == "optics"
            ? RunDbdcOptics(csv->data, *metric, config)
            : RunDbdc(csv->data, *metric, config);
    labels = result.labels;
    std::printf("DBDC(%s, %s global, %d sites): %d global clusters, "
                "%zu reps, eps_global %.3f, %.3f s overall, "
                "%llu uplink bytes\n",
                LocalModelTypeName(config.model_type).data(),
                global_strategy.c_str(), config.num_sites,
                result.num_global_clusters, result.num_representatives,
                result.eps_global_used, result.OverallSeconds(),
                static_cast<unsigned long long>(result.bytes_uplink));
    if (print_stages) PrintStageBreakdown(result);
  } else {
    Usage(argv[0]);
  }

  if (!out_path.empty()) {
    if (!WriteDatasetCsv(out_path, csv->data, &labels)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote labeled rows to %s\n", out_path.c_str());
  }
  return 0;
}
