#include "cluster/optics.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace dbdc {

OpticsResult RunOptics(const NeighborIndex& index,
                       const OpticsParams& params) {
  DBDC_CHECK(params.eps > 0.0);
  DBDC_CHECK(params.min_pts >= 1);
  const Dataset& data = index.data();
  const std::size_t n = data.size();
  DBDC_CHECK(index.size() == n && "RunOptics requires a fully-built index");
  const Metric& metric = index.metric();

  OpticsResult result;
  result.ordering.reserve(n);
  result.reachability.assign(n, OpticsResult::kUndefined);
  result.core_distance.assign(n, OpticsResult::kUndefined);

  std::vector<bool> processed(n, false);
  std::vector<PointId> neighbors;
  std::vector<double> neighbor_dist;

  // Computes the core distance of p and caches neighbors/distances.
  auto load_neighborhood = [&](PointId p) {
    index.RangeQuery(p, params.eps, &neighbors);
    neighbor_dist.resize(neighbors.size());
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      neighbor_dist[i] =
          metric.Distance(data.point(p), data.point(neighbors[i]));
    }
    if (static_cast<int>(neighbors.size()) >= params.min_pts) {
      std::vector<double> sorted = neighbor_dist;
      std::nth_element(sorted.begin(), sorted.begin() + (params.min_pts - 1),
                       sorted.end());
      result.core_distance[p] = sorted[params.min_pts - 1];
    } else {
      result.core_distance[p] = OpticsResult::kUndefined;
    }
  };

  // Lazy-deletion min-heap of (reachability, id); stale entries are
  // skipped by comparing against the authoritative reachability array.
  using Seed = std::pair<double, PointId>;
  std::priority_queue<Seed, std::vector<Seed>, std::greater<>> seeds;

  auto update_seeds = [&](PointId p) {
    const double core_d = result.core_distance[p];
    if (core_d == OpticsResult::kUndefined) return;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const PointId q = neighbors[i];
      if (processed[q]) continue;
      const double new_reach = std::max(core_d, neighbor_dist[i]);
      if (new_reach < result.reachability[q]) {
        result.reachability[q] = new_reach;
        seeds.emplace(new_reach, q);
      }
    }
  };

  for (PointId start = 0; start < static_cast<PointId>(n); ++start) {
    if (processed[start]) continue;
    load_neighborhood(start);
    processed[start] = true;
    result.ordering.push_back(start);
    update_seeds(start);
    while (!seeds.empty()) {
      const auto [reach, q] = seeds.top();
      seeds.pop();
      if (processed[q] || reach != result.reachability[q]) continue;  // Stale.
      load_neighborhood(q);
      processed[q] = true;
      result.ordering.push_back(q);
      update_seeds(q);
    }
  }
  return result;
}

Clustering ExtractDbscanClustering(const OpticsResult& optics,
                                   double eps_prime) {
  const std::size_t n = optics.ordering.size();
  Clustering result;
  result.labels.assign(n, kNoise);
  result.is_core.assign(n, 0);
  ClusterId current = kNoise;
  ClusterId next_cluster = 0;
  for (const PointId p : optics.ordering) {
    if (optics.reachability[p] > eps_prime) {
      if (optics.core_distance[p] <= eps_prime) {
        current = next_cluster++;
        result.labels[p] = current;
      } else {
        result.labels[p] = kNoise;
        current = kNoise;
      }
    } else {
      // Density-reachable from the preceding part of the ordering.
      result.labels[p] = current;
    }
    if (optics.core_distance[p] <= eps_prime) result.is_core[p] = 1;
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace dbdc
