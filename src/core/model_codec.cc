#include "core/model_codec.h"

#include <cmath>
#include <cstring>

#include "common/checksum.h"

namespace dbdc {
namespace {

constexpr std::uint32_t kLocalMagic = 0x4442544Du;   // "MTBD" LE -> 'DBLM'.
constexpr std::uint32_t kGlobalMagic = 0x4442474Du;  // 'DBGM'.
// Version 2 added the per-representative weight (see Representative);
// version 3 added the trailing FNV-1a checksum so in-transit corruption
// is detected (and reported) at the wire instead of surfacing as a
// field-level decode failure.
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kMinVersion = 1;
constexpr std::size_t kChecksumBytes = 8;

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t offset = out_->size();
    out_->resize(offset + sizeof(T));
    std::memcpy(out_->data() + offset, &value, sizeof(T));
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

  std::size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// Guards decoders against corrupted counts: the declared payload must
// fit in the bytes actually present, otherwise a flipped count could
// provoke a giant allocation before the per-field reads fail.
bool PayloadFits(const Reader& r, std::uint64_t count,
                 std::uint64_t bytes_per_item) {
  return count <= r.Remaining() / bytes_per_item;
}

// A finite, non-negative double — the only shape the codec accepts for
// ε-ranges and eps_global. Corrupted bytes frequently decode to NaN or
// huge negatives; both would silently poison every later distance
// comparison, so they are rejected at the wire.
bool IsValidEps(double eps) { return std::isfinite(eps) && eps >= 0.0; }

std::vector<std::uint8_t> EncodeLocalModelImpl(const LocalModel& model) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  w.Put(kLocalMagic);
  w.Put(kVersion);
  w.Put(static_cast<std::int32_t>(model.site_id));
  w.Put(static_cast<std::int32_t>(model.dim));
  w.Put(static_cast<std::int32_t>(model.num_local_clusters));
  w.Put(static_cast<std::uint32_t>(model.representatives.size()));
  for (const Representative& rep : model.representatives) {
    w.Put(static_cast<std::int32_t>(rep.local_cluster));
    w.Put(rep.eps_range);
    w.Put(rep.weight);
    for (const double c : rep.center) w.Put(c);
  }
  w.Put(Fnv1a64(out));
  return out;
}

std::vector<std::uint8_t> EncodeGlobalModelImpl(const GlobalModel& model) {
  std::vector<std::uint8_t> out;
  Writer w(&out);
  const std::size_t m = model.NumRepresentatives();
  w.Put(kGlobalMagic);
  w.Put(kVersion);
  w.Put(static_cast<std::int32_t>(model.rep_points.dim()));
  w.Put(static_cast<std::int32_t>(model.num_global_clusters));
  w.Put(model.eps_global_used);
  w.Put(static_cast<std::uint32_t>(m));
  for (std::size_t i = 0; i < m; ++i) {
    w.Put(static_cast<std::int32_t>(model.rep_global_cluster[i]));
    w.Put(static_cast<std::int32_t>(model.rep_site[i]));
    w.Put(static_cast<std::int32_t>(model.rep_local_cluster[i]));
    w.Put(model.rep_eps[i]);
    w.Put(i < model.rep_weight.size() ? model.rep_weight[i] : 1u);
    for (const double c : model.rep_points.point(static_cast<PointId>(i))) {
      w.Put(c);
    }
  }
  w.Put(Fnv1a64(out));
  return out;
}

/// Shared v3+ preamble check: magic, version window, checksum trailer.
/// On kOk, `*body` is the payload with the checksum trailer stripped
/// (everything the per-model parser consumes) and `*version` is set.
DecodeStatus CheckPreamble(std::span<const std::uint8_t> bytes,
                           std::uint32_t expected_magic,
                           std::uint32_t* version,
                           std::span<const std::uint8_t>* body) {
  Reader header(bytes);
  std::uint32_t magic = 0;
  if (!header.Get(&magic)) return DecodeStatus::kTruncated;
  if (magic != expected_magic) return DecodeStatus::kBadMagic;
  if (!header.Get(version)) return DecodeStatus::kTruncated;
  if (*version < kMinVersion || *version > kVersion) {
    return DecodeStatus::kVersionMismatch;
  }
  *body = bytes;
  if (*version >= 3) {
    if (bytes.size() < 8 + kChecksumBytes) return DecodeStatus::kTruncated;
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + bytes.size() - kChecksumBytes,
                kChecksumBytes);
    if (Fnv1a64(bytes.first(bytes.size() - kChecksumBytes)) != stored) {
      return DecodeStatus::kChecksumMismatch;
    }
    *body = bytes.first(bytes.size() - kChecksumBytes);
  }
  return DecodeStatus::kOk;
}

}  // namespace

void ValidateLocalModel(const LocalModel& model) {
  DBDC_ASSERT(model.dim >= 1);
  DBDC_ASSERT(model.site_id >= 0);
  DBDC_ASSERT(model.num_local_clusters >= 0);
  for (const Representative& rep : model.representatives) {
    DBDC_ASSERT(static_cast<int>(rep.center.size()) == model.dim);
    DBDC_ASSERT(IsValidEps(rep.eps_range));
    DBDC_ASSERT(rep.weight >= 1);
    // num_local_clusters is diagnostic, so only the sign is checked here:
    // every representative must describe some concrete local cluster.
    DBDC_ASSERT(rep.local_cluster >= 0);
    for (const double c : rep.center) DBDC_ASSERT(std::isfinite(c));
  }
}

void ValidateGlobalModel(const GlobalModel& model) {
  const std::size_t m = model.NumRepresentatives();
  DBDC_ASSERT(model.rep_points.dim() >= 1);
  DBDC_ASSERT(model.rep_points.size() == m);
  // Weights may be absent entirely (pre-v2 models; the encoder defaults
  // them to 1 on the wire) but never partially populated.
  DBDC_ASSERT(model.rep_weight.size() == m || model.rep_weight.empty());
  DBDC_ASSERT(model.rep_global_cluster.size() == m);
  DBDC_ASSERT(model.rep_site.size() == m);
  DBDC_ASSERT(model.rep_local_cluster.size() == m);
  DBDC_ASSERT(model.num_global_clusters >= 0);
  DBDC_ASSERT(IsValidEps(model.eps_global_used));
  for (std::size_t i = 0; i < m; ++i) {
    DBDC_ASSERT(model.rep_global_cluster[i] >= 0 &&
                model.rep_global_cluster[i] < model.num_global_clusters);
    DBDC_ASSERT(model.rep_site[i] >= 0);
    DBDC_ASSERT(model.rep_local_cluster[i] >= 0);
    DBDC_ASSERT(IsValidEps(model.rep_eps[i]));
    DBDC_ASSERT(i >= model.rep_weight.size() || model.rep_weight[i] >= 1);
    for (const double c : model.rep_points.point(static_cast<PointId>(i))) {
      DBDC_ASSERT(std::isfinite(c));
    }
  }
}

std::vector<std::uint8_t> EncodeLocalModel(const LocalModel& model) {
  ValidateLocalModel(model);
  std::vector<std::uint8_t> out = EncodeLocalModelImpl(model);
#if DBDC_DCHECK_IS_ON()
  // Round-trip self-check: whatever this encoder produced must decode and
  // re-encode to the identical byte string.
  // DBDC_ASSERT, not DBDC_DCHECK: on codec/wire paths every compiled-in
  // check is unconditional (the whole block is already gated on
  // DBDC_DCHECK_IS_ON(), which keeps it out of plain Release builds).
  const std::optional<LocalModel> back = DecodeLocalModel(out);
  DBDC_ASSERT(back.has_value() && "encoder output does not decode");
  DBDC_ASSERT(EncodeLocalModelImpl(*back) == out &&
              "local model round trip is not byte-exact");
#endif
  return out;
}

DecodeStatus DecodeLocalModel(std::span<const std::uint8_t> bytes,
                              LocalModel* out) {
  std::uint32_t version = 0;
  std::span<const std::uint8_t> body;
  const DecodeStatus preamble =
      CheckPreamble(bytes, kLocalMagic, &version, &body);
  if (preamble != DecodeStatus::kOk) return preamble;

  Reader r(body);
  std::uint32_t magic = 0, version_again = 0, rep_count = 0;
  std::int32_t site_id = 0, dim = 0, num_clusters = 0;
  (void)r.Get(&magic);          // Re-reads the fields CheckPreamble
  (void)r.Get(&version_again);  // already validated.
  if (!r.Get(&site_id) || !r.Get(&dim) || !r.Get(&num_clusters) ||
      !r.Get(&rep_count)) {
    return DecodeStatus::kTruncated;
  }
  if (dim < 1 || num_clusters < 0 || site_id < 0) {
    return DecodeStatus::kMalformed;
  }
  // Each representative occupies 4 + 8 [+ 4 in v2+] + dim*8 bytes.
  const std::uint64_t rep_bytes = (version >= 2 ? 16 : 12) +
                                  static_cast<std::uint64_t>(dim) * 8;
  if (!PayloadFits(r, rep_count, rep_bytes)) return DecodeStatus::kTruncated;
  LocalModel model;
  model.site_id = site_id;
  model.dim = dim;
  model.num_local_clusters = num_clusters;
  model.representatives.reserve(rep_count);
  for (std::uint32_t i = 0; i < rep_count; ++i) {
    Representative rep;
    std::int32_t cluster = 0;
    if (!r.Get(&cluster) || !r.Get(&rep.eps_range)) {
      return DecodeStatus::kTruncated;
    }
    if (version >= 2 && !r.Get(&rep.weight)) return DecodeStatus::kTruncated;
    if (cluster < 0 || !IsValidEps(rep.eps_range) || rep.weight < 1) {
      return DecodeStatus::kMalformed;
    }
    rep.local_cluster = cluster;
    rep.center.resize(static_cast<std::size_t>(dim));
    for (std::int32_t d = 0; d < dim; ++d) {
      if (!r.Get(&rep.center[d])) return DecodeStatus::kTruncated;
      if (!std::isfinite(rep.center[d])) return DecodeStatus::kMalformed;
    }
    model.representatives.push_back(std::move(rep));
  }
  if (!r.AtEnd()) return DecodeStatus::kMalformed;  // Trailing garbage.
  *out = std::move(model);
  return DecodeStatus::kOk;
}

std::optional<LocalModel> DecodeLocalModel(
    std::span<const std::uint8_t> bytes) {
  LocalModel model;
  if (DecodeLocalModel(bytes, &model) != DecodeStatus::kOk) {
    return std::nullopt;
  }
  return model;
}

std::vector<std::uint8_t> EncodeGlobalModel(const GlobalModel& model) {
  ValidateGlobalModel(model);
  std::vector<std::uint8_t> out = EncodeGlobalModelImpl(model);
#if DBDC_DCHECK_IS_ON()
  const std::optional<GlobalModel> back = DecodeGlobalModel(out);
  DBDC_ASSERT(back.has_value() && "encoder output does not decode");
  DBDC_ASSERT(EncodeGlobalModelImpl(*back) == out &&
              "global model round trip is not byte-exact");
#endif
  return out;
}

DecodeStatus DecodeGlobalModel(std::span<const std::uint8_t> bytes,
                               GlobalModel* out) {
  std::uint32_t version = 0;
  std::span<const std::uint8_t> body;
  const DecodeStatus preamble =
      CheckPreamble(bytes, kGlobalMagic, &version, &body);
  if (preamble != DecodeStatus::kOk) return preamble;

  Reader r(body);
  std::uint32_t magic = 0, version_again = 0, rep_count = 0;
  std::int32_t dim = 0, num_clusters = 0;
  double eps_global = 0.0;
  (void)r.Get(&magic);
  (void)r.Get(&version_again);
  if (!r.Get(&dim) || !r.Get(&num_clusters) || !r.Get(&eps_global) ||
      !r.Get(&rep_count)) {
    return DecodeStatus::kTruncated;
  }
  if (dim < 1 || num_clusters < 0 || !IsValidEps(eps_global)) {
    return DecodeStatus::kMalformed;
  }
  // Each representative occupies 3*4 + 8 [+ 4 in v2+] + dim*8 bytes.
  const std::uint64_t rep_bytes = (version >= 2 ? 24 : 20) +
                                  static_cast<std::uint64_t>(dim) * 8;
  if (!PayloadFits(r, rep_count, rep_bytes)) return DecodeStatus::kTruncated;
  GlobalModel model;
  model.rep_points = Dataset(dim);
  model.num_global_clusters = num_clusters;
  model.eps_global_used = eps_global;
  if (rep_count == 0) {
    if (!r.AtEnd()) return DecodeStatus::kMalformed;
    *out = std::move(model);
    return DecodeStatus::kOk;
  }
  Point coords(static_cast<std::size_t>(dim));
  for (std::uint32_t i = 0; i < rep_count; ++i) {
    std::int32_t global_cluster = 0, site = 0, local_cluster = 0;
    double eps = 0.0;
    std::uint32_t weight = 1;
    if (!r.Get(&global_cluster) || !r.Get(&site) || !r.Get(&local_cluster) ||
        !r.Get(&eps)) {
      return DecodeStatus::kTruncated;
    }
    if (version >= 2 && !r.Get(&weight)) return DecodeStatus::kTruncated;
    if (global_cluster < 0 || global_cluster >= num_clusters || site < 0 ||
        local_cluster < 0 || !IsValidEps(eps) || weight < 1) {
      return DecodeStatus::kMalformed;
    }
    for (std::int32_t d = 0; d < dim; ++d) {
      if (!r.Get(&coords[d])) return DecodeStatus::kTruncated;
      if (!std::isfinite(coords[d])) return DecodeStatus::kMalformed;
    }
    model.rep_points.Add(coords);
    model.rep_eps.push_back(eps);
    model.rep_weight.push_back(weight);
    model.rep_global_cluster.push_back(global_cluster);
    model.rep_site.push_back(site);
    model.rep_local_cluster.push_back(local_cluster);
  }
  if (!r.AtEnd()) return DecodeStatus::kMalformed;
  *out = std::move(model);
  return DecodeStatus::kOk;
}

std::optional<GlobalModel> DecodeGlobalModel(
    std::span<const std::uint8_t> bytes) {
  GlobalModel model;
  if (DecodeGlobalModel(bytes, &model) != DecodeStatus::kOk) {
    return std::nullopt;
  }
  return model;
}

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kBadMagic:
      return "bad magic";
    case DecodeStatus::kVersionMismatch:
      return "version mismatch";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kChecksumMismatch:
      return "checksum mismatch";
    case DecodeStatus::kMalformed:
      return "malformed";
  }
  return "unknown";
}

std::uint64_t RawDatasetWireSize(std::size_t num_points, int dim) {
  return 16 + static_cast<std::uint64_t>(num_points) * dim * sizeof(double);
}

}  // namespace dbdc
