#ifndef DBDC_EVAL_QUALITY_H_
#define DBDC_EVAL_QUALITY_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace dbdc {

/// The paper's quality framework (Sec. 8): the quality Q_DBDC of a
/// distributed clustering is the mean of a per-object quality P(x)
/// comparing the object's distributed cluster C_d against its cluster C_c
/// in the central reference clustering.
///
/// Both label vectors use kNoise for noise and non-negative ids for
/// clusters; label *values* need not correspond between the two
/// clusterings — only co-membership matters.
///
/// The printed case lists of Defs. 10/11 are garbled in the paper; the
/// implementations here use the only consistent reading (see DESIGN.md):
/// identical clusterings score exactly 1 under both criteria.

/// Per-object values of the discrete criterion P^I (Def. 10) w.r.t. the
/// quality parameter qp (the paper suggests qp = MinPts):
///   1  if x is noise in both clusterings,
///   1  if x is clustered in both and |C_d ∩ C_c| >= qp,
///   0  otherwise.
///
/// `threads` parallelizes the per-object scoring (1 = sequential, 0 =
/// hardware concurrency). The contingency table is built once up front
/// and only read afterwards; each object writes its own slot, so the
/// result is identical for every thread count.
std::vector<double> ObjectQualityP1(std::span<const ClusterId> distributed,
                                    std::span<const ClusterId> central,
                                    int qp, int threads = 1);

/// Per-object values of the continuous criterion P^II (Def. 11):
///   1                        if x is noise in both,
///   0                        if x is noise in exactly one,
///   |C_d ∩ C_c| / |C_d ∪ C_c|  otherwise (Jaccard of x's two clusters).
///
/// `threads` as in ObjectQualityP1.
std::vector<double> ObjectQualityP2(std::span<const ClusterId> distributed,
                                    std::span<const ClusterId> central,
                                    int threads = 1);

/// Q_DBDC (Def. 9): the mean object quality.
double QualityP1(std::span<const ClusterId> distributed,
                 std::span<const ClusterId> central, int qp, int threads = 1);
double QualityP2(std::span<const ClusterId> distributed,
                 std::span<const ClusterId> central, int threads = 1);

}  // namespace dbdc

#endif  // DBDC_EVAL_QUALITY_H_
