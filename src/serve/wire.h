#ifndef DBDC_SERVE_WIRE_H_
#define DBDC_SERVE_WIRE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/dbdc.h"
#include "core/model_codec.h"

namespace dbdc::serve {

/// Wire format of the serving layer (DESIGN.md §12).
///
/// Every serve message is the payload of one DBFP frame (the same
/// checksummed framing the reliable protocol uses; FrameAssembler
/// reassembles them from the TCP stream). The first payload byte is the
/// MsgType; the rest is the little-endian body encoded here. Decoders
/// reuse the model codec's DecodeStatus vocabulary, so a truncated or
/// corrupt serve message is reported exactly like a corrupt model
/// payload.
///
/// Conversation: the client sends one JobRequest and then only reads;
/// the server answers JobAccepted or JobRejected, streams a JobStatus
/// per completed pipeline stage, and finishes with JobResult. Shutdown
/// (when the server allows it) is acknowledged with ShutdownAck and
/// drains the server.

enum class MsgType : std::uint8_t {
  kJobRequest = 1,
  kJobAccepted = 2,
  kJobRejected = 3,
  kJobStatus = 4,
  kJobResult = 5,
  kShutdown = 6,
  kShutdownAck = 7,
};

/// MsgType of a frame payload, or nullopt for an empty/unknown payload.
std::optional<MsgType> PeekMsgType(std::span<const std::uint8_t> payload);

/// Which global-model construction the job runs (the serve-layer
/// projection of RunDbdc vs RunDbdcOptics).
enum class GlobalStrategyKind : std::uint8_t {
  kDbscanMerge = 0,
  kOptics = 1,
};

/// Server-side execution options that are not DbdcConfig knobs.
struct JobOptions {
  GlobalStrategyKind global_strategy = GlobalStrategyKind::kDbscanMerge;
  /// Estimate local_dbscan (eps, min_pts) on the server from the shipped
  /// dataset via EstimateDbscanParams(data, metric, auto_params_k),
  /// overriding whatever the request's config carries.
  bool auto_params = false;
  /// k of the average k-th-NN-distance heuristic (classic default: 4).
  int auto_params_k = 4;
};

/// One clustering job: the dataset (shipped in full — the client may not
/// share a filesystem with the server), the run configuration, and the
/// execution options. `config.partitioner` does not travel (function
/// pointers have no wire form); remote jobs always use the paper's
/// uniform random split.
struct JobRequest {
  Dataset data{1};
  std::string metric_name = "euclidean";
  DbdcConfig config;
  JobOptions options;
};

struct JobAccepted {
  std::uint64_t job_id = 0;
  /// Jobs ahead of this one (0 = started immediately).
  int queue_depth = 0;
};

/// Admission or validation failure. `field` names the offending
/// DbdcConfig field (ConfigStatus::field) or the request-level limit
/// ("data.points", "options.auto_params_k", ...), so the remote caller
/// can fix exactly the knob that was wrong.
struct JobRejected {
  std::string field;
  std::string message;
};

struct JobStatusUpdate {
  std::uint64_t job_id = 0;
  /// Pipeline stages completed so far (0..kNumStages).
  std::int32_t stages_done = 0;
};

/// Terminal message of a successful job: the full DbdcResult surface a
/// local run produces (labels, counters, stage breakdown, per-job
/// metrics snapshot, global model) plus the DBSCAN parameters actually
/// used — which differ from the request's when auto_params ran.
struct JobResultMsg {
  std::uint64_t job_id = 0;
  DbdcResult result;
  DbscanParams params_used;
};

std::vector<std::uint8_t> EncodeJobRequest(const JobRequest& request);
std::vector<std::uint8_t> EncodeJobAccepted(const JobAccepted& msg);
std::vector<std::uint8_t> EncodeJobRejected(const JobRejected& msg);
std::vector<std::uint8_t> EncodeJobStatus(const JobStatusUpdate& msg);
std::vector<std::uint8_t> EncodeJobResult(const JobResultMsg& msg);
std::vector<std::uint8_t> EncodeShutdown();
std::vector<std::uint8_t> EncodeShutdownAck();

DecodeStatus DecodeJobRequest(std::span<const std::uint8_t> payload,
                              JobRequest* out);
DecodeStatus DecodeJobAccepted(std::span<const std::uint8_t> payload,
                               JobAccepted* out);
DecodeStatus DecodeJobRejected(std::span<const std::uint8_t> payload,
                               JobRejected* out);
DecodeStatus DecodeJobStatus(std::span<const std::uint8_t> payload,
                             JobStatusUpdate* out);
DecodeStatus DecodeJobResult(std::span<const std::uint8_t> payload,
                             JobResultMsg* out);

}  // namespace dbdc::serve

#endif  // DBDC_SERVE_WIRE_H_
