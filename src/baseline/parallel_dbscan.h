#ifndef DBDC_BASELINE_PARALLEL_DBSCAN_H_
#define DBDC_BASELINE_PARALLEL_DBSCAN_H_

#include <cstdint>

#include "cluster/dbscan.h"
#include "index/index_factory.h"

namespace dbdc {

/// Configuration of the exact parallel DBSCAN baseline.
struct ParallelDbscanConfig {
  DbscanParams dbscan;
  int num_workers = 4;
  IndexType index_type = IndexType::kGrid;
  /// Tuning for index_type == kApprox; ignored by the exact indices.
  ApproxIndexOptions approx;
  /// Axis along which the data space is sliced into worker partitions.
  int slice_axis = 0;
  /// Threads executing the workers (ThreadPool size): 0 = hardware
  /// concurrency (default), 1 = sequential execution of the workers.
  /// Workers write disjoint state and the phases are fork-join barriers,
  /// so the merged labeling is byte-identical for every value.
  int num_threads = 0;
};

struct ParallelDbscanResult {
  /// Exact DBSCAN clustering of the full dataset (core partition and
  /// noise identical to a sequential run; border assignment valid).
  Clustering clustering;
  /// Replicated halo points shipped to workers (the method's
  /// communication cost, absent in DBDC).
  std::uint64_t bytes_halo = 0;
  /// Core-flag exchange + cluster merge tables.
  std::uint64_t bytes_merge = 0;
  /// Cost model as in the DBDC evaluation: slowest worker + merge.
  double max_worker_seconds = 0.0;
  double merge_seconds = 0.0;
  std::size_t total_halo_points = 0;

  double OverallSeconds() const {
    return max_worker_seconds + merge_seconds;
  }
};

/// Exact parallel DBSCAN in the spirit of the paper's related work [21]
/// (Xu, Jäger, Kriegel: "A Fast Parallel Clustering Algorithm for Large
/// Spatial Databases"): the data space is sliced into per-worker
/// partitions, every worker receives its slice *plus a halo of width
/// eps*, clusters locally, and a merge stage unions clusters that share
/// cross-boundary core-core edges.
///
/// Unlike DBDC this reproduces the central clustering *exactly* — but it
/// requires central preprocessing (the spatial partitioning over all
/// data) and ships every boundary point to two workers, which is
/// precisely the contrast Sec. 2.2 of the DBDC paper draws. The
/// `bench_baseline_comparison` harness quantifies it.
ParallelDbscanResult RunParallelDbscan(const Dataset& data,
                                       const Metric& metric,
                                       const ParallelDbscanConfig& config);

}  // namespace dbdc

#endif  // DBDC_BASELINE_PARALLEL_DBSCAN_H_
