#ifndef DBDC_DISTRIB_TRANSPORT_H_
#define DBDC_DISTRIB_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"

namespace dbdc {

/// Endpoint id on the transport. The server is kServerEndpoint; sites use
/// their non-negative site index.
using EndpointId = int;
inline constexpr EndpointId kServerEndpoint = -1;

/// A recorded transmission.
struct NetworkMessage {
  EndpointId from = 0;
  EndpointId to = 0;
  std::vector<std::uint8_t> payload;
};

/// Returned by Transport::Send when the transport discarded the message
/// in transit (fault injection); no message was recorded.
inline constexpr std::size_t kMessageDropped =
    std::numeric_limits<std::size_t>::max();

/// Bandwidth/latency model translating recorded bytes into transfer-time
/// estimates (the paper reports no wire times — sites were simulated on
/// one machine — so counters plus this model are the faithful
/// reproduction).
struct LinkModel {
  double bandwidth_bytes_per_sec = 1e6;  // ~8 Mbit/s WAN default.
  double latency_sec = 0.05;
};

/// Transfer-time estimate for a payload of `bytes` under `link`.
inline double EstimateTransferSeconds(std::uint64_t bytes,
                                      const LinkModel& link) {
  return link.latency_sec +
         static_cast<double>(bytes) / link.bandwidth_bytes_per_sec;
}

/// The wide-area links between sites and server, as seen by the DBDC
/// pipeline. RunDbdc, the protocol layer, and the benches program against
/// this interface; concrete implementations decide what happens to a
/// message in transit:
///
///   SimulatedNetwork — perfect lossless recorder (the paper's setting).
///   FaultyNetwork    — decorator injecting deterministic seeded faults
///                      (drops, corruption, delay, dead sites).
///
/// Contract:
///   - Send() either records the (possibly mutated) message and returns
///     its index, or discards it and returns kMessageDropped.
///   - Recorded messages are stable: pointers and indices obtained from
///     Inbox()/Message() stay valid across later Send() calls, until
///     Clear().
///   - Byte counters cover recorded messages only — what actually crossed
///     the wire, including retransmissions and protocol overhead.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers `payload` from `from` to `to`. Returns the index of the
  /// recorded message, or kMessageDropped if the transport lost it.
  virtual std::size_t Send(EndpointId from, EndpointId to,
                           std::vector<std::uint8_t> payload) = 0;

  /// Messages received by `endpoint`, in arrival order. The pointers stay
  /// valid across later Send() calls (until Clear()).
  virtual std::vector<const NetworkMessage*> Inbox(EndpointId endpoint)
      const = 0;

  /// Number of recorded messages.
  virtual std::size_t NumMessages() const = 0;
  /// The recorded message at `index` (< NumMessages()).
  virtual const NetworkMessage& Message(std::size_t index) const = 0;

  /// Extra in-transit delay the transport imposed on recorded message
  /// `index`, in (virtual) seconds, on top of the LinkModel estimate.
  /// 0 for fault-free transports.
  virtual double DeliveryDelaySeconds(std::size_t index) const {
    (void)index;
    return 0.0;
  }

  /// Total bytes sent from sites to the server (local models).
  virtual std::uint64_t BytesUplink() const = 0;
  /// Total bytes sent from the server to sites (global model broadcast).
  virtual std::uint64_t BytesDownlink() const = 0;
  virtual std::uint64_t BytesTotal() const = 0;

  virtual void Clear() = 0;
};

}  // namespace dbdc

#endif  // DBDC_DISTRIB_TRANSPORT_H_
