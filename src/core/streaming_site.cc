#include "core/streaming_site.h"

#include <cstdlib>
#include <utility>

#include "index/grid_index.h"

namespace dbdc {

StreamingSite::StreamingSite(int site_id, const Metric& metric,
                             const DbscanParams& params, int dim,
                             LocalModelType model_type,
                             const RefreshPolicy& policy)
    : site_id_(site_id),
      metric_(&metric),
      params_(params),
      model_type_(model_type),
      policy_(policy),
      clustering_(params, metric, dim) {}

PointId StreamingSite::Insert(std::span<const double> coords) {
  ++updates_since_refresh_;
  return clustering_.Insert(coords);
}

void StreamingSite::Erase(PointId id) {
  ++updates_since_refresh_;
  clustering_.Erase(id);
}

bool StreamingSite::ModelNeedsRefresh() const {
  if (refresh_count_ == 0) return clustering_.size() > 0;
  if (updates_since_refresh_ < policy_.min_updates_between) return false;
  const int clusters = clustering_.Snapshot().num_clusters;
  if (policy_.min_cluster_delta > 0 &&
      std::abs(clusters - clusters_at_refresh_) >=
          policy_.min_cluster_delta) {
    return true;
  }
  if (policy_.updated_fraction > 0.0 && clustering_.size() > 0) {
    const double fraction = static_cast<double>(updates_since_refresh_) /
                            static_cast<double>(clustering_.size());
    if (fraction >= policy_.updated_fraction) return true;
  }
  return false;
}

void StreamingSite::ActiveSnapshot(Dataset* active,
                                   std::vector<PointId>* ids) const {
  for (PointId p = 0; p < static_cast<PointId>(clustering_.data().size());
       ++p) {
    if (!clustering_.IsActive(p)) continue;
    active->Add(clustering_.data().point(p));
    ids->push_back(p);
  }
}

const LocalModel& StreamingSite::RefreshModel() {
  Dataset active(clustering_.data().dim());
  std::vector<PointId> ids;
  ActiveSnapshot(&active, &ids);
  const GridIndex index(active, *metric_, params_.eps);
  const LocalClustering local = RunLocalDbscan(index, params_);
  model_ = BuildLocalModel(model_type_, index, local, params_,
                           KMeansParams{}, site_id_);
  clusters_at_refresh_ = local.clustering.num_clusters;
  updates_since_refresh_ = 0;
  ++refresh_count_;
  return model_;
}

std::vector<std::uint8_t> StreamingSite::EncodeLocalModelBytes() const {
  return EncodeLocalModel(model_);
}

DecodeStatus StreamingSite::ApplyGlobalModelBytes(
    std::span<const std::uint8_t> bytes,
    std::vector<std::pair<PointId, ClusterId>>* labeled) const {
  GlobalModel global;
  const DecodeStatus status = DecodeGlobalModel(bytes, &global);
  if (status != DecodeStatus::kOk) return status;
  *labeled = ApplyGlobalModel(global);
  return DecodeStatus::kOk;
}

std::vector<std::pair<PointId, ClusterId>> StreamingSite::ApplyGlobalModel(
    const GlobalModel& global) const {
  Dataset active(clustering_.data().dim());
  std::vector<PointId> ids;
  ActiveSnapshot(&active, &ids);
  const std::vector<ClusterId> labels =
      RelabelSite(active, global, *metric_);
  std::vector<std::pair<PointId, ClusterId>> result;
  result.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    result.emplace_back(ids[i], labels[i]);
  }
  return result;
}

}  // namespace dbdc
