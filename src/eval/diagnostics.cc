#include "eval/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace dbdc {

DiagnosticsReport DiagnoseClustering(std::span<const ClusterId> distributed,
                                     std::span<const ClusterId> central,
                                     double min_overlap_fraction) {
  DBDC_CHECK(distributed.size() == central.size());
  DiagnosticsReport report;

  std::unordered_map<ClusterId, std::size_t> distr_size, central_size;
  std::map<std::pair<ClusterId, ClusterId>, std::size_t> overlap;
  for (std::size_t i = 0; i < distributed.size(); ++i) {
    const ClusterId d = distributed[i];
    const ClusterId c = central[i];
    if (d >= 0) ++distr_size[d];
    if (c >= 0) ++central_size[c];
    if (d >= 0 && c >= 0) {
      ++overlap[{d, c}];
    } else if (d >= 0 && c < 0) {
      ++report.noise_absorbed;
    } else if (d < 0 && c >= 0) {
      ++report.noise_lost;
    } else {
      ++report.noise_agreed;
    }
  }
  report.num_distributed_clusters = static_cast<int>(distr_size.size());
  report.num_central_clusters = static_cast<int>(central_size.size());

  // Best match per distributed cluster.
  std::unordered_map<ClusterId, ClusterOverlap> best;
  for (const auto& [pair, size] : overlap) {
    const auto [d, c] = pair;
    ClusterOverlap entry;
    entry.distributed = d;
    entry.central = c;
    entry.size = size;
    entry.jaccard = static_cast<double>(size) /
                    static_cast<double>(distr_size[d] + central_size[c] -
                                        size);
    auto [it, inserted] = best.emplace(d, entry);
    if (!inserted && size > it->second.size) it->second = entry;
  }
  for (const auto& [d, entry] : best) {
    report.best_match_per_distributed.push_back(entry);
  }
  std::sort(report.best_match_per_distributed.begin(),
            report.best_match_per_distributed.end(),
            [](const ClusterOverlap& a, const ClusterOverlap& b) {
              return a.distributed < b.distributed;
            });

  // Split events: central clusters covered substantially by >= 2
  // distributed clusters.
  std::map<ClusterId, std::vector<ClusterId>> central_parts;
  std::map<ClusterId, std::vector<ClusterId>> distr_parts;
  for (const auto& [pair, size] : overlap) {
    const auto [d, c] = pair;
    if (static_cast<double>(size) >=
        min_overlap_fraction * static_cast<double>(central_size[c])) {
      central_parts[c].push_back(d);
    }
    if (static_cast<double>(size) >=
        min_overlap_fraction * static_cast<double>(distr_size[d])) {
      distr_parts[d].push_back(c);
    }
  }
  for (auto& [c, parts] : central_parts) {
    if (parts.size() >= 2) {
      std::sort(parts.begin(), parts.end());
      report.splits.push_back(SplitEvent{c, parts});
    }
  }
  for (auto& [d, parts] : distr_parts) {
    if (parts.size() >= 2) {
      std::sort(parts.begin(), parts.end());
      report.merges.push_back(MergeEvent{d, parts});
    }
  }
  return report;
}

std::string FormatDiagnostics(const DiagnosticsReport& report) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "clusters: %d distributed vs %d central\n",
                report.num_distributed_clusters,
                report.num_central_clusters);
  out += line;
  std::snprintf(line, sizeof(line),
                "noise: %zu agreed, %zu absorbed into clusters, %zu lost "
                "to noise\n",
                report.noise_agreed, report.noise_absorbed,
                report.noise_lost);
  out += line;
  for (const SplitEvent& split : report.splits) {
    std::snprintf(line, sizeof(line),
                  "SPLIT: central cluster %d covered by %zu distributed "
                  "clusters\n",
                  split.central, split.parts.size());
    out += line;
  }
  for (const MergeEvent& merge : report.merges) {
    std::snprintf(line, sizeof(line),
                  "MERGE: distributed cluster %d spans %zu central "
                  "clusters\n",
                  merge.distributed, merge.parts.size());
    out += line;
  }
  if (report.splits.empty() && report.merges.empty()) {
    out += "structure: one-to-one cluster correspondence\n";
  }
  return out;
}

}  // namespace dbdc
