// Aggregation-topology suite (ISSUE 9): Topology construction /
// validation / elastic-membership rules, the AggregatorNode merge
// semantics, and the engine running over trees — flat-vs-tree label
// bit-identity under lossless aggregation, root-uplink shrinkage under
// condensing aggregation, per-level stats tiling, dead aggregators
// failing exactly their subtree deterministically, and continuous-mode
// membership churn (join / retire / TTL-expire / aggregator death)
// reproducing bit-identically across runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/aggregator.h"
#include "core/dbdc.h"
#include "core/engine.h"
#include "data/generators.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "distrib/topology.h"

namespace dbdc {
namespace {

// ---------------------------------------------------------------------------
// Topology shape and validation.

TEST(TopologyTest, FlatIsTheStar) {
  const Topology t = Topology::Flat(4);
  EXPECT_EQ(t.num_sites(), 4);
  EXPECT_EQ(t.num_aggregators(), 0);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.ChildrenOf(kServerEndpoint),
            (std::vector<EndpointId>{0, 1, 2, 3}));
  for (EndpointId s = 0; s < 4; ++s) {
    EXPECT_TRUE(t.IsSite(s));
    EXPECT_FALSE(t.IsAggregator(s));
    EXPECT_EQ(t.ParentOf(s), kServerEndpoint);
    EXPECT_EQ(t.LevelOf(s), 1);
  }
  EXPECT_TRUE(t.Validate().empty()) << t.Validate();
}

TEST(TopologyTest, KaryTreeDegeneratesToStarWhenEverythingFits) {
  const Topology t = Topology::KaryTree(3, 4);
  EXPECT_EQ(t.num_aggregators(), 0);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.ChildrenOf(kServerEndpoint),
            (std::vector<EndpointId>{0, 1, 2}));
}

TEST(TopologyTest, KaryTreeTwoLevelShape) {
  // 9 sites, fanout 3: three bottom aggregators (ids 9..11) of three
  // consecutive sites each, all uplinking to the root.
  const Topology t = Topology::KaryTree(9, 3);
  EXPECT_EQ(t.num_sites(), 9);
  EXPECT_EQ(t.num_aggregators(), 3);
  EXPECT_EQ(t.depth(), 2);
  EXPECT_EQ(t.FirstAggregatorId(), 9);
  EXPECT_EQ(t.ChildrenOf(kServerEndpoint),
            (std::vector<EndpointId>{9, 10, 11}));
  EXPECT_EQ(t.ChildrenOf(9), (std::vector<EndpointId>{0, 1, 2}));
  EXPECT_EQ(t.ChildrenOf(10), (std::vector<EndpointId>{3, 4, 5}));
  EXPECT_EQ(t.ChildrenOf(11), (std::vector<EndpointId>{6, 7, 8}));
  EXPECT_TRUE(t.IsAggregator(10));
  EXPECT_FALSE(t.IsSite(10));
  EXPECT_EQ(t.LevelOf(10), 1);
  EXPECT_EQ(t.LevelOf(4), 2);
  EXPECT_TRUE(t.Validate().empty()) << t.Validate();
}

TEST(TopologyTest, KaryTreeThreeLevelShapeAndTraversalOrders) {
  // 27 sites, fanout 3: nine bottom aggregators (27..35), three middle
  // ones (36..38), depth 3.
  const Topology t = Topology::KaryTree(27, 3);
  EXPECT_EQ(t.num_aggregators(), 12);
  EXPECT_EQ(t.depth(), 3);
  EXPECT_EQ(t.ChildrenOf(kServerEndpoint),
            (std::vector<EndpointId>{36, 37, 38}));
  EXPECT_EQ(t.ChildrenOf(36), (std::vector<EndpointId>{27, 28, 29}));
  EXPECT_EQ(t.ChildrenOf(27), (std::vector<EndpointId>{0, 1, 2}));

  // Bottom-up visits the deepest layer first (merge order); top-down is
  // the exact reverse (broadcast order).
  const std::vector<EndpointId> up = t.AggregatorsBottomUp();
  ASSERT_EQ(up.size(), 12u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(up[static_cast<std::size_t>(i)],
                                        27 + i);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(up[static_cast<std::size_t>(9 + i)], 36 + i);
  std::vector<EndpointId> down = t.AggregatorsTopDown();
  std::reverse(down.begin(), down.end());
  EXPECT_EQ(down, up);
}

TEST(TopologyTest, FromParentMapRoundTripsAndValidateCatchesCycles) {
  // sites 0,1 -> agg 3; site 2 -> root; agg 3 -> root.
  const Topology good = Topology::FromParentMap(
      3, {3, 3, kServerEndpoint}, {kServerEndpoint});
  EXPECT_TRUE(good.Validate().empty()) << good.Validate();
  EXPECT_EQ(good.ParentOf(0), 3);
  EXPECT_EQ(good.ChildrenOf(3), (std::vector<EndpointId>{0, 1}));
  EXPECT_EQ(good.ChildrenOf(kServerEndpoint),
            (std::vector<EndpointId>{2, 3}));

  // Two aggregators parenting each other never reach the root.
  const Topology cyclic =
      Topology::FromParentMap(1, {1}, {2, 1});
  EXPECT_FALSE(cyclic.Validate().empty());

  // A site naming a parent that is not a tracked aggregator.
  const Topology untracked = Topology::FromParentMap(1, {7}, {});
  EXPECT_FALSE(untracked.Validate().empty());
}

// ---------------------------------------------------------------------------
// Elastic membership rules.

TEST(TopologyTest, AddSiteJoinsDeepestLeastLoadedAggregator) {
  Topology t = Topology::KaryTree(9, 3);
  // All three aggregators sit at the same level with equal load; the tie
  // breaks to the lowest endpoint id.
  t.AddSite(12);
  EXPECT_EQ(t.ParentOf(12), 9);
  EXPECT_EQ(t.ChildrenOf(9), (std::vector<EndpointId>{0, 1, 2, 12}));
  // Now 9 carries four children; the next join picks 10.
  t.AddSite(13);
  EXPECT_EQ(t.ParentOf(13), 10);
  // Without aggregators a join lands under the root.
  Topology star = Topology::Flat(2);
  star.AddSite(2);
  EXPECT_EQ(star.ParentOf(2), kServerEndpoint);
  EXPECT_EQ(star.ChildrenOf(kServerEndpoint),
            (std::vector<EndpointId>{0, 1, 2}));
}

TEST(TopologyTest, RemoveSiteDetachesOnlyThatSite) {
  Topology t = Topology::KaryTree(9, 3);
  t.RemoveSite(4);
  EXPECT_FALSE(t.IsSite(4));
  EXPECT_EQ(t.ChildrenOf(10), (std::vector<EndpointId>{3, 5}));
  EXPECT_TRUE(t.Validate().empty()) << t.Validate();
}

TEST(TopologyTest, RemoveAggregatorSplicesOrphansInPlace) {
  // Killing middle aggregator 10 re-parents its sites onto the root at
  // the dead node's position: the root's child list becomes
  // {9, 3, 4, 5, 11} — a pure function of the prior shape.
  Topology t = Topology::KaryTree(9, 3);
  t.RemoveAggregator(10);
  EXPECT_EQ(t.num_aggregators(), 2);
  EXPECT_FALSE(t.IsAggregator(10));
  EXPECT_EQ(t.ChildrenOf(kServerEndpoint),
            (std::vector<EndpointId>{9, 3, 4, 5, 11}));
  for (const EndpointId s : {3, 4, 5}) {
    EXPECT_EQ(t.ParentOf(s), kServerEndpoint);
  }
  EXPECT_TRUE(t.Validate().empty()) << t.Validate();

  // Determinism: the same death on an identically-built twin yields the
  // identical shape.
  Topology twin = Topology::KaryTree(9, 3);
  twin.RemoveAggregator(10);
  EXPECT_EQ(twin.ChildrenOf(kServerEndpoint),
            t.ChildrenOf(kServerEndpoint));
}

// ---------------------------------------------------------------------------
// AggregatorNode merge semantics.

LocalModel TwoRepModel(int site_id, double x0, double x1) {
  LocalModel model;
  model.site_id = site_id;
  model.dim = 2;
  model.num_local_clusters = 1;
  model.representatives.push_back({Point{x0, 0.0}, 1.0, 0, 5});
  model.representatives.push_back({Point{x1, 0.0}, 1.0, 0, 5});
  return model;
}

TEST(AggregatorNodeTest, LosslessMergeConcatenatesInChildOrder) {
  const GlobalModelParams params;
  AggregatorNode node(100, Euclidean(), params, /*condense_eps=*/0.0);
  node.AddChildModel(TwoRepModel(0, 0.0, 1.0));
  node.AddChildModel(TwoRepModel(1, 10.0, 11.0));
  const LocalModel& merged = node.BuildIntermediateModel();
  EXPECT_EQ(merged.site_id, 100);
  ASSERT_EQ(merged.representatives.size(), 4u);
  // Concatenation preserves child order and remaps local_cluster ids into
  // disjoint ranges, so the root reconstructs the flat rep sequence.
  EXPECT_EQ(merged.num_local_clusters, 2);
  EXPECT_EQ(merged.representatives[0].local_cluster, 0);
  EXPECT_EQ(merged.representatives[2].local_cluster, 1);
  EXPECT_DOUBLE_EQ(merged.representatives[2].center[0], 10.0);
}

TEST(AggregatorNodeTest, UpsertReplacesAndRemoveEvicts) {
  const GlobalModelParams params;
  AggregatorNode node(100, Euclidean(), params, 0.0);
  node.UpsertChildModel(TwoRepModel(0, 0.0, 1.0));
  node.UpsertChildModel(TwoRepModel(0, 5.0, 6.0));
  ASSERT_EQ(node.num_child_models(), 1u);
  EXPECT_DOUBLE_EQ(node.child_models()[0].representatives[0].center[0], 5.0);
  EXPECT_TRUE(node.RemoveChildModel(0));
  EXPECT_FALSE(node.RemoveChildModel(0));
  EXPECT_EQ(node.num_child_models(), 0u);
}

TEST(AggregatorNodeTest, CondensingMergeShrinksTheForwardedModel) {
  // Two children whose clusters overlap within eps: the condensing node
  // joins them into one intermediate cluster and collapses nearby
  // representatives, so fewer reps travel up than came in.
  GlobalModelParams params;
  params.eps_global = 2.5;
  AggregatorNode node(100, Euclidean(), params, /*condense_eps=*/2.5);
  node.AddChildModel(TwoRepModel(0, 0.0, 1.0));
  node.AddChildModel(TwoRepModel(1, 1.5, 2.0));
  const LocalModel& merged = node.BuildIntermediateModel();
  EXPECT_EQ(merged.num_local_clusters, 1);
  EXPECT_LT(merged.representatives.size(), 4u);
  EXPECT_GE(merged.representatives.size(), 1u);
  EXPECT_EQ(node.representatives_in(), 4u);
  EXPECT_EQ(node.representatives_out(), merged.representatives.size());
}

// ---------------------------------------------------------------------------
// Batch engine over trees.

DbdcConfig TreeConfig(int num_sites, int fanout) {
  DbdcConfig config;
  config.num_sites = num_sites;
  config.local_dbscan = {1.2, 5};
  config.topology.kind = TopologyKind::kTree;
  config.topology.fanout = fanout;
  return config;
}

TEST(TopologyEngineTest, LosslessTreeLabelsAreBitIdenticalToFlat) {
  const SyntheticDataset gen = MakeTestDatasetA();
  DbdcConfig flat_config = TreeConfig(16, 4);
  flat_config.topology.kind = TopologyKind::kFlat;
  flat_config.topology.fanout = 0;

  SimulatedNetwork flat_net;
  const DbdcResult flat =
      RunDbdc(gen.data, Euclidean(), flat_config, &flat_net);
  SimulatedNetwork tree_net;
  const DbdcResult tree =
      RunDbdc(gen.data, Euclidean(), TreeConfig(16, 4), &tree_net);

  // Lossless aggregation concatenates child models in flat site order, so
  // the root's rep sequence — and with it every label — is identical.
  EXPECT_EQ(tree.labels, flat.labels);
  EXPECT_EQ(tree.num_global_clusters, flat.num_global_clusters);
  EXPECT_EQ(tree.num_representatives, flat.num_representatives);
  EXPECT_EQ(tree.eps_global_used, flat.eps_global_used);
  EXPECT_EQ(tree.sites_reporting, 16);

  // The topology changes the fan-in, not the outcome: the root of the
  // tree merges 4 intermediate models instead of 16 site models.
  ASSERT_EQ(flat.level_stats.size(), 2u);
  ASSERT_EQ(tree.level_stats.size(), 3u);
  EXPECT_EQ(flat.level_stats[0].models_in, 16);
  EXPECT_EQ(tree.level_stats[0].models_in, 4);
  EXPECT_EQ(tree.level_stats[1].nodes, 4);
  EXPECT_EQ(tree.level_stats[2].nodes, 16);

  // The same tree run with the sites' local pipelines on concurrent
  // threads and a 2-thread worker pool per site must stay bit-identical
  // too — the configuration the sanitizer CI gates race-check.
  DbdcConfig threaded_config = TreeConfig(16, 4);
  threaded_config.parallel_sites = true;
  threaded_config.num_threads = 2;
  SimulatedNetwork threaded_net;
  const DbdcResult threaded =
      RunDbdc(gen.data, Euclidean(), threaded_config, &threaded_net);
  EXPECT_EQ(threaded.labels, flat.labels);
  EXPECT_EQ(threaded.bytes_uplink, tree.bytes_uplink);
  EXPECT_EQ(threaded.num_global_clusters, flat.num_global_clusters);
}

TEST(TopologyEngineTest, CondensingTreeShrinksRootUplink) {
  const SyntheticDataset gen = MakeTestDatasetA();
  DbdcConfig flat_config = TreeConfig(16, 4);
  flat_config.topology.kind = TopologyKind::kFlat;
  flat_config.topology.fanout = 0;
  DbdcConfig tree_config = TreeConfig(16, 4);
  tree_config.topology.aggregator_condense_eps = 1.2;

  SimulatedNetwork flat_net;
  const DbdcResult flat =
      RunDbdc(gen.data, Euclidean(), flat_config, &flat_net);
  SimulatedNetwork tree_net;
  const DbdcResult tree =
      RunDbdc(gen.data, Euclidean(), tree_config, &tree_net);

  // bytes_uplink counts only root-link traffic (site->aggregator and
  // aggregator->aggregator hops live in BytesTotal), so condensation at
  // the aggregators must show up as a strictly smaller root uplink.
  EXPECT_LT(tree.bytes_uplink, flat.bytes_uplink);
  EXPECT_EQ(tree.bytes_uplink, tree_net.BytesUplink());
  EXPECT_GE(tree.num_global_clusters, 1);

  // Condensation preserves coverage: every point the flat run considered
  // part of a cluster stays clustered (it may move to a merged cluster).
  for (std::size_t i = 0; i < flat.labels.size(); ++i) {
    if (flat.labels[i] != kNoise) {
      EXPECT_NE(tree.labels[i], kNoise) << "point " << i << " lost coverage";
    }
  }
}

TEST(TopologyEngineTest, DeadAggregatorFailsExactlyItsSubtree) {
  const SyntheticDataset gen = MakeTestDatasetA();
  DbdcConfig config = TreeConfig(9, 3);
  config.protocol.enabled = true;
  config.protocol.max_attempts = 2;

  // Aggregator endpoints for 9 sites / fanout 3 are 9, 10, 11; killing
  // endpoint 10 severs sites 3..5 from the root.
  FaultSpec spec;
  spec.failed_sites = {10};
  spec.seed = 21;

  const auto run = [&] {
    SimulatedNetwork inner;
    FaultyNetwork net(&inner, spec);
    return RunDbdc(gen.data, Euclidean(), config, &net);
  };
  const DbdcResult a = run();

  EXPECT_EQ(a.sites_reporting, 6);
  EXPECT_EQ(a.sites_failed, 3);
  EXPECT_EQ(a.failed_site_ids, (std::vector<int>{3, 4, 5}));
  EXPECT_GE(a.num_global_clusters, 1);

  // Per-level accounting: the dead node lives on level 1 of 2.
  ASSERT_EQ(a.level_stats.size(), 3u);
  EXPECT_EQ(a.level_stats[1].nodes, 3);
  EXPECT_EQ(a.level_stats[1].nodes_failed, 1);
  EXPECT_EQ(a.level_stats[0].models_in, 2);

  // Deterministic degradation: an identically-seeded rerun is
  // bit-identical, labels included.
  const DbdcResult b = run();
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.failed_site_ids, b.failed_site_ids);
  EXPECT_EQ(a.bytes_uplink, b.bytes_uplink);
}

TEST(TopologyEngineTest, LevelStatsTileTheTopology) {
  const SyntheticDataset gen = MakeTestDatasetA();
  const DbdcResult result =
      RunDbdc(gen.data, Euclidean(), TreeConfig(27, 3));
  // 27 sites / fanout 3: root + 3 middle + 9 bottom aggregators + sites.
  ASSERT_EQ(result.level_stats.size(), 4u);
  EXPECT_EQ(result.level_stats[0].nodes, 1);
  EXPECT_EQ(result.level_stats[1].nodes, 3);
  EXPECT_EQ(result.level_stats[2].nodes, 9);
  EXPECT_EQ(result.level_stats[3].nodes, 27);
  EXPECT_EQ(result.level_stats[0].models_in, 3);
  EXPECT_GT(result.level_stats[0].bytes_in, 0u);
  for (std::size_t level = 0; level < result.level_stats.size(); ++level) {
    EXPECT_EQ(result.level_stats[level].level, static_cast<int>(level));
    EXPECT_EQ(result.level_stats[level].nodes_failed, 0);
  }
}

// ---------------------------------------------------------------------------
// Continuous mode: membership churn.

GlobalModelParams ChurnGlobalParams() {
  GlobalModelParams params;
  params.min_pts_global = 2;
  return params;
}

std::unique_ptr<StreamingSite> MakeChurnSite(int site_id) {
  return std::make_unique<StreamingSite>(site_id, Euclidean(),
                                         DbscanParams{1.0, 4}, 2,
                                         LocalModelType::kScor,
                                         RefreshPolicy{});
}

void FeedBlob(StreamingSite* site, double cx, double cy, int count,
              Rng* rng) {
  for (int i = 0; i < count; ++i) {
    site->Insert(Point{rng->Gaussian(cx, 0.3), rng->Gaussian(cy, 0.3)});
  }
}

struct ChurnOutcome {
  ContinuousDbdc::Stats stats;
  std::vector<std::vector<std::pair<PointId, ClusterId>>> labels;
  std::size_t root_models = 0;
  std::uint64_t uplink = 0;
};

// A fixed churn script over a 3-level tree (6 sites, fanout 2: bottom
// aggregators {6, 7, 8} under middle aggregators {9, 10}): one
// mid-stream join, one explicit retirement, one aggregator death. Used
// twice to pin determinism. The joiner's id (20) is clear of the
// aggregator endpoint range.
ChurnOutcome RunChurnScript() {
  SimulatedNetwork net;
  ContinuousDbdc continuous(Euclidean(), ChurnGlobalParams(),
                            ProtocolConfig{}, &net);
  continuous.SetTopology(Topology::KaryTree(6, 2));

  std::vector<std::unique_ptr<StreamingSite>> sites;
  for (int s = 0; s < 6; ++s) {
    sites.push_back(MakeChurnSite(s));
    continuous.AttachSite(sites.back().get());
  }
  Rng rng(17);
  for (int s = 0; s < 6; ++s) {
    FeedBlob(sites[static_cast<std::size_t>(s)].get(), 4.0 * s, 0.0, 15,
             &rng);
  }
  continuous.Tick();
  continuous.Tick();

  // Mid-stream join: a seventh site appears and lands under the join
  // rule's pick; its first refresh upserts like any other.
  sites.push_back(MakeChurnSite(20));
  continuous.AttachSite(sites.back().get());
  FeedBlob(sites.back().get(), -8.0, -8.0, 15, &rng);
  continuous.Tick();

  // Explicit retirement evicts site 1's model.
  continuous.RetireSite(1);
  continuous.Tick();

  // Aggregator death: the dead node's children re-parent and re-deliver.
  const EndpointId agg = continuous.topology().AggregatorsBottomUp()[0];
  continuous.FailAggregator(agg);
  continuous.Tick();
  continuous.Tick();

  ChurnOutcome out;
  out.stats = continuous.stats();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    out.labels.push_back(continuous.labels(i));
  }
  out.root_models = continuous.server().num_local_models();
  out.uplink = net.BytesUplink();
  return out;
}

TEST(ContinuousTopologyTest, ChurnScriptIsDeterministic) {
  const ChurnOutcome a = RunChurnScript();
  const ChurnOutcome b = RunChurnScript();
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.root_models, b.root_models);
  EXPECT_EQ(a.uplink, b.uplink);
  EXPECT_EQ(a.stats.refreshes_applied, b.stats.refreshes_applied);
  EXPECT_EQ(a.stats.aggregator_forwards, b.stats.aggregator_forwards);

  // The script's membership arithmetic: 7 attached, 1 retired, 1 dead
  // aggregator. The root's own fan-in stays the two middle aggregators —
  // it stores exactly their intermediate models, whatever churns below.
  EXPECT_EQ(a.stats.sites_retired, 1u);
  EXPECT_EQ(a.stats.aggregators_failed, 1u);
  EXPECT_EQ(a.root_models, 2u);
  // Everyone alive ended up labeled; the retired site's labels froze at
  // their pre-retirement value.
  for (std::size_t i = 0; i < a.labels.size(); ++i) {
    EXPECT_FALSE(a.labels[i].empty()) << "site " << i;
  }
}

TEST(ContinuousTopologyTest, TreeStreamMatchesFlatStreamLosslessly) {
  // The same stream over the flat default and over a lossless 2-level
  // tree must produce identical labels on every site — continuous mode's
  // equivalent of the batch bit-identity pin.
  const auto run = [](bool tree) {
    SimulatedNetwork net;
    ContinuousDbdc continuous(Euclidean(), ChurnGlobalParams(),
                              ProtocolConfig{}, &net);
    if (tree) continuous.SetTopology(Topology::KaryTree(6, 2));
    std::vector<std::unique_ptr<StreamingSite>> sites;
    for (int s = 0; s < 6; ++s) {
      sites.push_back(MakeChurnSite(s));
      continuous.AttachSite(sites.back().get());
    }
    Rng rng(23);
    std::vector<std::vector<std::pair<PointId, ClusterId>>> labels;
    for (int t = 0; t < 4; ++t) {
      for (int s = 0; s < 6; ++s) {
        FeedBlob(sites[static_cast<std::size_t>(s)].get(), 4.0 * s,
                 2.0 * t, 8, &rng);
      }
      continuous.Tick();
    }
    for (std::size_t i = 0; i < sites.size(); ++i) {
      labels.push_back(continuous.labels(i));
    }
    return labels;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace dbdc
