#include "obs/metrics.h"

#include <bit>
#include <cstdio>

#include "common/check.h"

namespace dbdc::obs {

namespace internal {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
}  // namespace internal

void SetGlobalMetrics(MetricsRegistry* registry) {
  internal::g_metrics.store(registry, std::memory_order_release);
}

std::string_view CounterName(Counter counter) {
  switch (counter) {
    case Counter::kEpsRangeQueries: return "eps_range_queries";
    case Counter::kFastPathCandidates: return "fastpath_candidates";
    case Counter::kFastPathPruned: return "fastpath_pruned";
    case Counter::kFramesSent: return "frames_sent";
    case Counter::kFramesRetried: return "frames_retried";
    case Counter::kFramesDropped: return "frames_dropped";
    case Counter::kFramesCorrupted: return "frames_corrupted";
    case Counter::kAcksLost: return "acks_lost";
    case Counter::kBytesUplink: return "bytes_uplink";
    case Counter::kBytesDownlink: return "bytes_downlink";
    case Counter::kFaultDropsInjected: return "fault_drops_injected";
    case Counter::kFaultCorruptionsInjected:
      return "fault_corruptions_injected";
    case Counter::kFaultDelaysInjected: return "fault_delays_injected";
    case Counter::kRelabelDistanceComps: return "relabel_distance_comps";
    case Counter::kRelabelPointsScanned: return "relabel_points_scanned";
    case Counter::kRefreshesSent: return "refreshes_sent";
    case Counter::kRefreshesApplied: return "refreshes_applied";
    case Counter::kRefreshesLost: return "refreshes_lost";
    case Counter::kGlobalRebuilds: return "global_rebuilds";
    case Counter::kContinuousTicks: return "continuous_ticks";
    case Counter::kSimdBlocksScored: return "simd_blocks_scored";
    case Counter::kSimdCandidatesFiltered: return "simd_candidates_filtered";
    case Counter::kAggregatorMerges: return "aggregator_merges";
    case Counter::kIntermediateModelsForwarded:
      return "intermediate_models_forwarded";
    case Counter::kSitesRetired: return "sites_retired";
    case Counter::kSitesExpired: return "sites_expired";
    case Counter::kApproxCandidatesGenerated:
      return "approx_candidates_generated";
    case Counter::kApproxCandidatesVerified:
      return "approx_candidates_verified";
    case Counter::kApproxCandidatesPruned:
      return "approx_candidates_pruned";
  }
  return "unknown";
}

std::string_view GaugeName(Gauge gauge) {
  switch (gauge) {
    case Gauge::kVirtualClockSec: return "virtual_clock_sec";
    case Gauge::kDatasetPoints: return "dataset_points";
    case Gauge::kSimdTier: return "simd_tier";
  }
  return "unknown";
}

std::string_view HistogramName(Histogram histogram) {
  switch (histogram) {
    case Histogram::kFramePayloadBytes: return "frame_payload_bytes";
    case Histogram::kRangeQueryNeighbors: return "range_query_neighbors";
    case Histogram::kRelabelCandidates: return "relabel_candidates";
  }
  return "unknown";
}

namespace {

/// Bucket 0 holds value 0; bucket b holds [2^(b-1), 2^b).
inline int BucketOf(std::uint64_t value) {
  return value == 0 ? 0 : static_cast<int>(std::bit_width(value));
}

std::atomic<std::uint64_t> g_next_registry_id{1};

}  // namespace

struct MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kNumHistograms> hist_count{};
  std::array<std::atomic<std::uint64_t>, kNumHistograms> hist_sum{};
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(kNumHistograms) * kHistogramBuckets>
      hist_buckets{};
};

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() {
  DBDC_CHECK(GlobalMetrics() != this &&
             "detach a registry (SetGlobalMetrics(nullptr)) before "
             "destroying it");
}

MetricsRegistry::Shard* MetricsRegistry::ThisThreadShard() {
  // Registry ids are process-unique and never reused, so a stale cache
  // entry for a destroyed registry can never match a live one.
  thread_local struct {
    std::uint64_t registry_id = 0;
    Shard* shard = nullptr;
  } cache;
  if (cache.registry_id == id_) return cache.shard;
  const MutexLock lock(&mu_);
  shards_.push_back(std::make_unique<Shard>());
  cache.registry_id = id_;
  cache.shard = shards_.back().get();
  return cache.shard;
}

void MetricsRegistry::Add(Counter counter, std::uint64_t delta) {
  ThisThreadShard()
      ->counters[static_cast<std::size_t>(static_cast<int>(counter))]
      .fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::SetGauge(Gauge gauge, double value) {
  gauges_[static_cast<std::size_t>(static_cast<int>(gauge))].store(
      value, std::memory_order_relaxed);
}

void MetricsRegistry::Observe(Histogram histogram, std::uint64_t value) {
  Shard* shard = ThisThreadShard();
  const std::size_t h = static_cast<std::size_t>(static_cast<int>(histogram));
  shard->hist_count[h].fetch_add(1, std::memory_order_relaxed);
  shard->hist_sum[h].fetch_add(value, std::memory_order_relaxed);
  shard
      ->hist_buckets[h * kHistogramBuckets +
                     static_cast<std::size_t>(BucketOf(value))]
      .fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::AddSiteBytes(Counter direction, int site_id,
                                   std::uint64_t delta) {
  DBDC_CHECK(direction == Counter::kBytesUplink ||
             direction == Counter::kBytesDownlink);
  Add(direction, delta);
  const MutexLock lock(&mu_);
  if (direction == Counter::kBytesUplink) {
    site_uplink_[site_id] += delta;
  } else {
    site_downlink_[site_id] += delta;
  }
}

std::uint64_t MetricsRegistry::CounterValue(Counter counter) const {
  const std::size_t c = static_cast<std::size_t>(static_cast<int>(counter));
  std::uint64_t total = 0;
  const MutexLock lock(&mu_);
  for (const auto& shard : shards_) {
    total += shard->counters[c].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  const MutexLock lock(&mu_);
  for (const auto& shard : shards_) {
    for (int c = 0; c < kNumCounters; ++c) {
      snap.counters[static_cast<std::size_t>(c)] +=
          shard->counters[static_cast<std::size_t>(c)].load(
              std::memory_order_relaxed);
    }
    for (int h = 0; h < kNumHistograms; ++h) {
      HistogramData& data = snap.histograms[static_cast<std::size_t>(h)];
      data.count += shard->hist_count[static_cast<std::size_t>(h)].load(
          std::memory_order_relaxed);
      data.sum += shard->hist_sum[static_cast<std::size_t>(h)].load(
          std::memory_order_relaxed);
      for (int b = 0; b < kHistogramBuckets; ++b) {
        data.buckets[static_cast<std::size_t>(b)] +=
            shard
                ->hist_buckets[static_cast<std::size_t>(h) *
                                   kHistogramBuckets +
                               static_cast<std::size_t>(b)]
                .load(std::memory_order_relaxed);
      }
    }
  }
  for (int g = 0; g < kNumGauges; ++g) {
    snap.gauges[static_cast<std::size_t>(g)] =
        gauges_[static_cast<std::size_t>(g)].load(std::memory_order_relaxed);
  }
  snap.bytes_uplink_by_site = site_uplink_;
  snap.bytes_downlink_by_site = site_downlink_;
  return snap;
}

bool MetricsSnapshot::empty() const {
  for (const std::uint64_t v : counters) {
    if (v != 0) return false;
  }
  for (const double v : gauges) {
    if (v != 0.0) return false;
  }
  for (const HistogramData& h : histograms) {
    if (h.count != 0) return false;
  }
  return bytes_uplink_by_site.empty() && bytes_downlink_by_site.empty();
}

namespace {

void AppendKv(std::string* out, std::string_view key, std::uint64_t value,
              bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += std::to_string(value);
}

}  // namespace

std::string MetricsSnapshot::Json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (int c = 0; c < kNumCounters; ++c) {
    AppendKv(&out, CounterName(static_cast<Counter>(c)),
             counters[static_cast<std::size_t>(c)], &first);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (int g = 0; g < kNumGauges; ++g) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += GaugeName(static_cast<Gauge>(g));
    out += "\": ";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9g",
                  gauges[static_cast<std::size_t>(g)]);
    out += buffer;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (int h = 0; h < kNumHistograms; ++h) {
    const HistogramData& data = histograms[static_cast<std::size_t>(h)];
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += HistogramName(static_cast<Histogram>(h));
    out += "\": {\"count\": " + std::to_string(data.count) +
           ", \"sum\": " + std::to_string(data.sum) + ", \"buckets\": [";
    // Trailing zero buckets are elided; bucket index = position.
    int last = kHistogramBuckets - 1;
    while (last > 0 && data.buckets[static_cast<std::size_t>(last)] == 0) {
      --last;
    }
    for (int b = 0; b <= last; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(data.buckets[static_cast<std::size_t>(b)]);
    }
    out += "]}";
  }
  out += "}, \"bytes_uplink_by_site\": {";
  first = true;
  for (const auto& [site, bytes] : bytes_uplink_by_site) {
    AppendKv(&out, std::to_string(site), bytes, &first);
  }
  out += "}, \"bytes_downlink_by_site\": {";
  first = true;
  for (const auto& [site, bytes] : bytes_downlink_by_site) {
    AppendKv(&out, std::to_string(site), bytes, &first);
  }
  out += "}}";
  return out;
}

}  // namespace dbdc::obs
