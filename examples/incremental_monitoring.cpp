// The paper motivates DBSCAN for the local sites partly because an
// incremental version exists [6]: a site whose data changes keeps its
// clustering current and only re-transmits its local model when the
// clustering changed considerably.
//
//   $ ./incremental_monitoring
//
// Simulates two sensor sites over a day on the continuous DBDC engine:
// detections stream in, stale ones expire, each site maintains its
// clustering incrementally, and a refresh (local model upload + global
// rebuild + broadcast) crosses the simulated network only when a site's
// RefreshPolicy fires. Quiet hours are free — no bytes move and the
// server does not rebuild.

#include <cstdio>
#include <deque>
#include <vector>

#include "core/engine.h"
#include "data/generators.h"
#include "distrib/network.h"

int main() {
  using namespace dbdc;

  const DbscanParams params{1.0, 5};
  RefreshPolicy policy;
  policy.min_cluster_delta = 1;  // Re-transmit only on structural change.

  SimulatedNetwork net;
  GlobalModelParams global_params;
  global_params.min_pts_global = 2;
  ContinuousDbdc continuous(Euclidean(), global_params, ProtocolConfig{},
                            &net);

  StreamingSite east(0, Euclidean(), params, /*dim=*/2,
                     LocalModelType::kScor, policy);
  StreamingSite west(1, Euclidean(), params, /*dim=*/2,
                     LocalModelType::kScor, policy);
  continuous.AttachSite(&east);
  continuous.AttachSite(&west);
  std::vector<StreamingSite*> sites = {&east, &west};

  Rng rng(99);

  // Per site, a sliding window of the freshest 300 detections.
  std::vector<std::deque<PointId>> windows(sites.size());
  constexpr std::size_t kWindow = 300;

  std::size_t events = 0;

  // Over the "day", activity sits on two hot spots per site; a third
  // appears at the east site mid-day.
  for (int hour = 0; hour < 24; ++hour) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      const int spots = (s == 0 && hour >= 12) ? 3 : 2;
      for (int e = 0; e < 50; ++e) {
        const int spot = static_cast<int>(rng.UniformInt(0, spots - 1));
        const double cx = 20.0 * static_cast<double>(s) + 6.0 * spot;
        const double cy = 4.0 * (spot % 2);
        if (rng.UniformInt(0, 9) == 0) {  // 10% stray readings.
          windows[s].push_back(sites[s]->Insert(Point{
              rng.Uniform(-5.0, 35.0), rng.Uniform(-5.0, 10.0)}));
        } else {
          windows[s].push_back(sites[s]->Insert(
              Point{rng.Gaussian(cx, 0.4), rng.Gaussian(cy, 0.4)}));
        }
        ++events;
        if (windows[s].size() > kWindow) {
          sites[s]->Erase(windows[s].front());
          windows[s].pop_front();
        }
      }
    }

    const std::uint64_t uplink_before = net.BytesUplink();
    const int refreshes = continuous.Tick();
    if (refreshes > 0) {
      std::printf("hour %2d: %d refresh(es) -> rebuild #%llu, %llu new "
                  "uplink bytes, %d global clusters\n",
                  hour, refreshes,
                  static_cast<unsigned long long>(
                      continuous.stats().global_rebuilds),
                  static_cast<unsigned long long>(net.BytesUplink() -
                                                  uplink_before),
                  continuous.server().global_model().num_global_clusters);
    } else {
      std::printf("hour %2d: quiet (no transmission, no rebuild)\n", hour);
    }
  }

  const ContinuousDbdc::Stats& stats = continuous.stats();
  std::printf("\nprocessed %zu insertions across %zu sites; %llu model "
              "uploads and %llu global rebuilds instead of %d hourly "
              "batch runs (%llu B up, %llu B down)\n",
              events, sites.size(),
              static_cast<unsigned long long>(stats.refreshes_applied),
              static_cast<unsigned long long>(stats.global_rebuilds), 24,
              static_cast<unsigned long long>(net.BytesUplink()),
              static_cast<unsigned long long>(net.BytesDownlink()));
  return 0;
}
