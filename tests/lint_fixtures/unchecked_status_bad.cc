// Seeded violation: DecodeStatus-returning calls whose result is
// discarded. A corrupted payload would be silently ignored instead of
// being counted/refused.
#include "core/model_codec.h"
#include "core/server.h"

namespace dbdc {

void BadIngest(Server* server, std::span<const std::uint8_t> bytes) {
  server->AddLocalModelBytes(bytes);
  LocalModel model;
  DecodeLocalModel(bytes, &model);
}

}  // namespace dbdc
