# Empty dependencies file for bench_fig8_sites.
# This may be replaced when dependencies are built.
