// Golden byte-identity suite for the DbdcEngine refactor (ISSUE 4):
// `ReferenceRunDbdc` below is the pre-refactor monolithic RunDbdc body,
// frozen verbatim at the commit that introduced the engine. Every test
// runs both implementations on identically-seeded transports and asserts
// the results match bit for bit — labels, the full global model, wire
// byte counters, degraded-mode breakdown, and protocol counters — across
// the {model_type, index_type, protocol on/off, num_threads,
// parallel_sites} matrix. A divergence means the staged engine changed
// observable behavior, which the refactor contract forbids.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/dbdc.h"
#include "core/engine.h"
#include "core/optics_global.h"
#include "data/generators.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "distrib/protocol.h"

namespace dbdc {
namespace {

// ---------------------------------------------------------------------------
// The frozen pre-refactor monolith (verbatim, helpers included). Uses only
// public APIs, so it keeps compiling as long as those stay stable.

void AccumulateProtocolCounters(const TransferOutcome& outcome,
                                DbdcResult* result) {
  result->protocol_retries += static_cast<std::uint64_t>(outcome.retries);
  result->frames_dropped += static_cast<std::uint64_t>(outcome.data_drops);
  result->frames_corrupted +=
      static_cast<std::uint64_t>(outcome.data_corruptions);
  result->acks_lost += static_cast<std::uint64_t>(outcome.ack_losses);
}

std::vector<std::uint8_t> DeliveredPayload(const Transport& network,
                                           const TransferOutcome& outcome) {
  DBDC_CHECK(outcome.delivered);
  std::optional<Frame> frame =
      DecodeFrame(network.Message(outcome.delivered_index).payload);
  DBDC_CHECK(frame.has_value() && "delivered frame no longer decodes");
  return std::move(frame->payload);
}

DbdcResult ReferenceRunDbdc(const Dataset& data, const Metric& metric,
                            const DbdcConfig& config, Transport* network) {
  DBDC_CHECK(config.num_sites >= 1);
  SimulatedNetwork own_network;
  if (network == nullptr) network = &own_network;

  const UniformRandomPartitioner default_partitioner;
  const Partitioner* partitioner = config.partitioner != nullptr
                                       ? config.partitioner
                                       : &default_partitioner;
  Rng rng(config.seed);
  const std::vector<std::vector<PointId>> parts =
      partitioner->Partition(data, config.num_sites, &rng);

  std::vector<Site> sites;
  sites.reserve(parts.size());
  for (int s = 0; s < config.num_sites; ++s) {
    Dataset site_data(data.dim());
    site_data.Reserve(parts[s].size());
    for (const PointId id : parts[s]) site_data.Add(data.point(id));
    sites.emplace_back(s, metric, std::move(site_data), parts[s]);
  }

  const SiteConfig site_config{config.local_dbscan, config.model_type,
                               config.kmeans,       config.index_type,
                               config.condense_eps, config.num_threads,
                               nullptr,             config.approx};
  DbdcResult result;
  result.site_sizes.reserve(sites.size());
  if (config.parallel_sites) {
    std::vector<std::thread> workers;
    workers.reserve(sites.size());
    for (Site& site : sites) {
      workers.emplace_back(
          [&site, &site_config] { site.RunLocalPipeline(site_config); });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (Site& site : sites) site.RunLocalPipeline(site_config);
  }
  for (Site& site : sites) {
    result.site_sizes.push_back(site.data().size());
    const double local_seconds =
        site.local_clustering_seconds() + site.model_seconds();
    result.max_local_seconds =
        std::max(result.max_local_seconds, local_seconds);
    result.sum_local_seconds += local_seconds;
  }

  GlobalModelParams global_params;
  global_params.eps_global = config.eps_global;
  global_params.min_pts_global = 2;
  global_params.index_type = config.index_type;
  global_params.min_weight_global = config.min_weight_global;
  global_params.num_threads = config.num_threads;
  Server server(metric, global_params);

  ReliableChannel channel(network, config.protocol);
  if (!config.protocol.enabled) {
    for (Site& site : sites) {
      result.num_representatives += site.local_model().representatives.size();
      network->Send(site.site_id(), kServerEndpoint,
                    site.EncodeLocalModelBytes());
    }
    for (const NetworkMessage* msg : network->Inbox(kServerEndpoint)) {
      const DecodeStatus status = server.AddLocalModelBytes(msg->payload);
      DBDC_CHECK(status == DecodeStatus::kOk &&
                 "local model payload failed to decode");
    }
    result.sites_reporting = config.num_sites;
  } else {
    for (Site& site : sites) {
      const TransferOutcome up = channel.Transfer(
          site.site_id(), kServerEndpoint, site.EncodeLocalModelBytes());
      AccumulateProtocolCounters(up, &result);
      bool accepted =
          up.delivered &&
          up.delivered_seconds <= config.protocol.collection_deadline_sec;
      if (accepted) {
        accepted = server.AddLocalModelBytes(
                       DeliveredPayload(*network, up)) == DecodeStatus::kOk;
      }
      if (accepted) {
        ++result.sites_reporting;
        result.num_representatives +=
            site.local_model().representatives.size();
      } else {
        result.failed_site_ids.push_back(site.site_id());
      }
    }
  }
  result.sites_failed = config.num_sites - result.sites_reporting;

  server.BuildGlobal();
  result.global_seconds = server.global_clustering_seconds();
  result.eps_global_used = server.global_model().eps_global_used;

  const std::vector<std::uint8_t> global_bytes =
      server.EncodeGlobalModelBytes();
  const RelabelContext relabel_context(server.global_model(), metric);
  result.labels.assign(data.size(), kNoise);
  for (Site& site : sites) {
    std::vector<std::uint8_t> received;
    if (!config.protocol.enabled) {
      network->Send(kServerEndpoint, site.site_id(), global_bytes);
      received = global_bytes;
    } else {
      const TransferOutcome down =
          channel.Transfer(kServerEndpoint, site.site_id(), global_bytes);
      AccumulateProtocolCounters(down, &result);
      if (!down.delivered) continue;
      received = DeliveredPayload(*network, down);
    }
    const DecodeStatus status =
        site.ApplyGlobalModelBytes(received, &relabel_context);
    if (!config.protocol.enabled) {
      DBDC_CHECK(status == DecodeStatus::kOk &&
                 "global model payload failed to decode");
    } else if (status != DecodeStatus::kOk) {
      continue;
    }
    ++result.sites_relabeled;
    result.max_relabel_seconds =
        std::max(result.max_relabel_seconds, site.relabel_seconds());
    const std::vector<ClusterId>& labels = site.global_labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      result.labels[site.origin_ids()[i]] = labels[i];
    }
  }

  result.num_global_clusters = server.global_model().num_global_clusters;
  result.bytes_uplink = network->BytesUplink();
  result.bytes_downlink = network->BytesDownlink();
  result.global_model = server.global_model();
  return result;
}

// ---------------------------------------------------------------------------
// Bit-identity assertions.

void ExpectGlobalModelsIdentical(const GlobalModel& a, const GlobalModel& b) {
  ASSERT_EQ(a.NumRepresentatives(), b.NumRepresentatives());
  EXPECT_EQ(a.num_global_clusters, b.num_global_clusters);
  EXPECT_EQ(a.eps_global_used, b.eps_global_used);
  EXPECT_EQ(a.rep_eps, b.rep_eps);
  EXPECT_EQ(a.rep_weight, b.rep_weight);
  EXPECT_EQ(a.rep_global_cluster, b.rep_global_cluster);
  EXPECT_EQ(a.rep_site, b.rep_site);
  EXPECT_EQ(a.rep_local_cluster, b.rep_local_cluster);
  ASSERT_EQ(a.rep_points.size(), b.rep_points.size());
  for (std::size_t i = 0; i < a.rep_points.size(); ++i) {
    const auto pa = a.rep_points.point(i);
    const auto pb = b.rep_points.point(i);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t d = 0; d < pa.size(); ++d) {
      EXPECT_EQ(pa[d], pb[d]) << "rep " << i << " axis " << d;
    }
  }
}

void ExpectResultsIdentical(const DbdcResult& engine,
                            const DbdcResult& reference) {
  EXPECT_EQ(engine.labels, reference.labels);
  EXPECT_EQ(engine.num_global_clusters, reference.num_global_clusters);
  EXPECT_EQ(engine.num_representatives, reference.num_representatives);
  EXPECT_EQ(engine.bytes_uplink, reference.bytes_uplink);
  EXPECT_EQ(engine.bytes_downlink, reference.bytes_downlink);
  EXPECT_EQ(engine.eps_global_used, reference.eps_global_used);
  EXPECT_EQ(engine.site_sizes, reference.site_sizes);
  EXPECT_EQ(engine.sites_reporting, reference.sites_reporting);
  EXPECT_EQ(engine.sites_failed, reference.sites_failed);
  EXPECT_EQ(engine.failed_site_ids, reference.failed_site_ids);
  EXPECT_EQ(engine.sites_relabeled, reference.sites_relabeled);
  EXPECT_EQ(engine.protocol_retries, reference.protocol_retries);
  EXPECT_EQ(engine.frames_dropped, reference.frames_dropped);
  EXPECT_EQ(engine.frames_corrupted, reference.frames_corrupted);
  EXPECT_EQ(engine.acks_lost, reference.acks_lost);
  ExpectGlobalModelsIdentical(engine.global_model, reference.global_model);
}

// ---------------------------------------------------------------------------
// The configuration matrix.

struct MatrixCase {
  std::string name;
  DbdcConfig config;
  /// Engaged = run both sides over identically-seeded FaultyNetworks.
  std::optional<FaultSpec> faults;
};

DbdcConfig BaseConfig(const SyntheticDataset& dataset) {
  DbdcConfig config;
  config.local_dbscan = dataset.suggested_params;
  config.num_sites = 4;
  config.seed = 42;
  return config;
}

std::vector<MatrixCase> BuildMatrix(const SyntheticDataset& dataset) {
  std::vector<MatrixCase> cases;
  const DbdcConfig base = BaseConfig(dataset);

  cases.push_back({"defaults_scor_grid", base, std::nullopt});

  {
    DbdcConfig c = base;
    c.model_type = LocalModelType::kKMeans;
    cases.push_back({"kmeans_model", c, std::nullopt});
  }
  for (const IndexType index :
       {IndexType::kLinearScan, IndexType::kKdTree, IndexType::kRStarTree}) {
    DbdcConfig c = base;
    c.index_type = index;
    cases.push_back({"index_" + std::string(IndexTypeName(index)), c,
                     std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.condense_eps = 0.8 * c.local_dbscan.eps;
    cases.push_back({"condensed_model", c, std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.min_weight_global = 4;
    cases.push_back({"weighted_global_core", c, std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.eps_global = 2.0 * c.local_dbscan.eps;
    cases.push_back({"explicit_eps_global", c, std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.num_threads = 4;
    cases.push_back({"intra_site_threads", c, std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.parallel_sites = true;
    cases.push_back({"parallel_sites", c, std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.parallel_sites = true;
    c.num_threads = 2;
    c.num_sites = 7;
    cases.push_back({"parallel_sites_and_threads", c, std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.num_sites = 1;
    cases.push_back({"single_site", c, std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.protocol.enabled = true;
    cases.push_back({"protocol_lossless", c, std::nullopt});
  }
  {
    DbdcConfig c = base;
    c.protocol.enabled = true;
    c.protocol.max_attempts = 3;
    FaultSpec faults;
    faults.drop_rate = 0.2;
    faults.corrupt_rate = 0.1;
    faults.seed = 99;
    cases.push_back({"protocol_lossy", c, faults});
  }
  {
    DbdcConfig c = base;
    c.protocol.enabled = true;
    c.protocol.collection_deadline_sec = 5.0;
    FaultSpec faults;
    faults.failed_sites = {1};
    faults.straggler_sites = {3};
    faults.straggler_delay_sec = 60.0;
    faults.seed = 7;
    cases.push_back({"protocol_dead_and_straggler", c, faults});
  }
  return cases;
}

class EngineEquivalenceTest : public ::testing::Test {
 protected:
  SyntheticDataset dataset_ = MakeTestDatasetC();
};

TEST_F(EngineEquivalenceTest, MatrixMatchesFrozenReferenceBitForBit) {
  for (const MatrixCase& matrix_case : BuildMatrix(dataset_)) {
    SCOPED_TRACE(matrix_case.name);

    SimulatedNetwork reference_inner;
    SimulatedNetwork engine_inner;
    std::optional<FaultyNetwork> reference_net;
    std::optional<FaultyNetwork> engine_net;
    Transport* reference_transport = &reference_inner;
    Transport* engine_transport = &engine_inner;
    if (matrix_case.faults.has_value()) {
      reference_net.emplace(&reference_inner, *matrix_case.faults);
      engine_net.emplace(&engine_inner, *matrix_case.faults);
      reference_transport = &*reference_net;
      engine_transport = &*engine_net;
    }

    const DbdcResult reference = ReferenceRunDbdc(
        dataset_.data, Euclidean(), matrix_case.config, reference_transport);
    const DbdcResult engine = RunDbdc(dataset_.data, Euclidean(),
                                      matrix_case.config, engine_transport);
    ExpectResultsIdentical(engine, reference);
  }
}

// Driving the seven stages one at a time is the same run as Run() — the
// wrapper adds nothing beyond stage order.
TEST_F(EngineEquivalenceTest, ManualStageDrivingMatchesRun) {
  DbdcConfig config = BaseConfig(dataset_);
  config.protocol.enabled = true;

  const DbdcResult via_run = RunDbdc(dataset_.data, Euclidean(), config);

  DbdcEngine engine(dataset_.data, Euclidean(), config);
  engine.Partition();
  engine.LocalCluster();
  engine.BuildLocalModel();
  engine.Transmit();
  engine.MergeGlobal();
  engine.Broadcast();
  engine.Relabel();
  const DbdcResult manual = engine.TakeResult();

  ExpectResultsIdentical(manual, via_run);
}

// ---------------------------------------------------------------------------
// Stage stats: the per-stage byte deltas must tile the transport totals,
// stages must appear once each in pipeline order, and traffic must land
// on the stages that caused it.

TEST_F(EngineEquivalenceTest, StageStatsTileTheByteCounters) {
  for (const bool protocol : {false, true}) {
    SCOPED_TRACE(protocol ? "protocol" : "raw");
    DbdcConfig config = BaseConfig(dataset_);
    config.protocol.enabled = protocol;
    const DbdcResult result = RunDbdc(dataset_.data, Euclidean(), config);

    ASSERT_EQ(result.stage_stats.size(),
              static_cast<std::size_t>(kNumStages));
    std::uint64_t uplink = 0;
    std::uint64_t downlink = 0;
    for (int i = 0; i < kNumStages; ++i) {
      EXPECT_EQ(result.stage_stats[i].stage, static_cast<StageId>(i));
      EXPECT_GE(result.stage_stats[i].seconds, 0.0);
      uplink += result.stage_stats[i].bytes_uplink;
      downlink += result.stage_stats[i].bytes_downlink;
    }
    EXPECT_EQ(uplink, result.bytes_uplink);
    EXPECT_EQ(downlink, result.bytes_downlink);

    const StageStats& transmit =
        result.stage_stats[static_cast<int>(StageId::kTransmit)];
    const StageStats& broadcast =
        result.stage_stats[static_cast<int>(StageId::kBroadcast)];
    EXPECT_GT(transmit.bytes_uplink, 0u);
    EXPECT_GT(broadcast.bytes_downlink, 0u);
    // Model payloads only cross the wire in transmit/broadcast; without
    // the protocol no other stage may move a byte (with it, acks flow in
    // the opposite direction of their stage's transfer).
    for (const StageId stage :
         {StageId::kPartition, StageId::kLocalCluster,
          StageId::kBuildLocalModel, StageId::kMergeGlobal,
          StageId::kRelabel}) {
      EXPECT_EQ(result.stage_stats[static_cast<int>(stage)].bytes_uplink, 0u);
      EXPECT_EQ(result.stage_stats[static_cast<int>(stage)].bytes_downlink,
                0u);
    }
    if (!protocol) {
      EXPECT_EQ(transmit.bytes_downlink, 0u);
      EXPECT_EQ(broadcast.bytes_uplink, 0u);
    } else {
      // Acks: the server acks every uplink frame (downlink bytes in the
      // transmit stage), sites ack the broadcast (uplink bytes there).
      EXPECT_GT(transmit.bytes_downlink, 0u);
      EXPECT_GT(broadcast.bytes_uplink, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// The OPTICS-global path through the engine: same uplink traffic as the
// DBSCAN merge (the stages up to Transmit are shared), and the global
// model equals extracting directly from an OpticsGlobalModelBuilder over
// the transmitted local models — i.e. the strategy is the old side path,
// now with full byte accounting.

TEST_F(EngineEquivalenceTest, OpticsStrategyMatchesDirectBuilder) {
  const DbdcConfig config = BaseConfig(dataset_);

  const DbdcResult optics =
      RunDbdcOptics(dataset_.data, Euclidean(), config);
  const DbdcResult dbscan = RunDbdc(dataset_.data, Euclidean(), config);

  // Shared pipeline prefix: identical partitions, models, uplink bytes.
  EXPECT_EQ(optics.num_representatives, dbscan.num_representatives);
  EXPECT_EQ(optics.site_sizes, dbscan.site_sizes);
  const StageStats& optics_transmit =
      optics.stage_stats[static_cast<int>(StageId::kTransmit)];
  const StageStats& dbscan_transmit =
      dbscan.stage_stats[static_cast<int>(StageId::kTransmit)];
  EXPECT_EQ(optics_transmit.bytes_uplink, dbscan_transmit.bytes_uplink);

  // The strategy's output is the direct builder's extraction.
  DbdcEngine probe(dataset_.data, Euclidean(), config);
  probe.Partition();
  probe.LocalCluster();
  probe.BuildLocalModel();
  probe.Transmit();
  const OpticsGlobalModelBuilder builder(probe.server().local_models(),
                                         Euclidean());
  const GlobalModel direct = builder.Extract(builder.default_eps_global());
  ExpectGlobalModelsIdentical(optics.global_model, direct);
  EXPECT_EQ(optics.eps_global_used, builder.default_eps_global());

  // And the labels are a faithful relabeling: every point labeled, label
  // ids within range.
  ASSERT_EQ(optics.labels.size(), dataset_.data.size());
  for (const ClusterId label : optics.labels) {
    EXPECT_GE(label, kNoise);
    EXPECT_LT(label, optics.num_global_clusters);
  }
}

// Degraded mode flows through the OPTICS strategy unchanged: a dead site
// is excluded from the ordering and reported as failed.
TEST_F(EngineEquivalenceTest, OpticsStrategyInheritsDegradedMode) {
  DbdcConfig config = BaseConfig(dataset_);
  config.protocol.enabled = true;

  FaultSpec faults;
  faults.failed_sites = {2};
  faults.seed = 11;
  SimulatedNetwork inner;
  FaultyNetwork net(&inner, faults);

  const DbdcResult result =
      RunDbdcOptics(dataset_.data, Euclidean(), config, &net);
  EXPECT_EQ(result.sites_reporting, config.num_sites - 1);
  EXPECT_EQ(result.sites_failed, 1);
  ASSERT_EQ(result.failed_site_ids.size(), 1u);
  EXPECT_EQ(result.failed_site_ids[0], 2);
  // The dead site contributed nothing to the ordering.
  for (const int site : result.global_model.rep_site) {
    EXPECT_NE(site, 2);
  }
  EXPECT_GT(result.num_global_clusters, 0);
}

// The local-model strategy seam: an explicit strategy mirroring the
// legacy (model_type, condense_eps) pair reproduces the default path.
TEST_F(EngineEquivalenceTest, ExplicitLocalStrategyMatchesLegacyKnobs) {
  DbdcConfig config = BaseConfig(dataset_);
  config.condense_eps = 0.8 * config.local_dbscan.eps;

  const DbdcResult legacy = RunDbdc(dataset_.data, Euclidean(), config);

  const std::unique_ptr<LocalModelStrategy> strategy =
      MakeLocalModelStrategy(config.model_type, config.condense_eps,
                             Euclidean());
  DbdcEngine engine(dataset_.data, Euclidean(), config);
  engine.SetLocalModelStrategy(strategy.get());
  const DbdcResult explicit_strategy = engine.Run();

  ExpectResultsIdentical(explicit_strategy, legacy);
}

}  // namespace
}  // namespace dbdc
