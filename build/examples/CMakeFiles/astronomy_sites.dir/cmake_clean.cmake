file(REMOVE_RECURSE
  "CMakeFiles/astronomy_sites.dir/astronomy_sites.cpp.o"
  "CMakeFiles/astronomy_sites.dir/astronomy_sites.cpp.o.d"
  "astronomy_sites"
  "astronomy_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astronomy_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
