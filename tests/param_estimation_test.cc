#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/param_estimation.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "index/index_factory.h"
#include "index/linear_scan_index.h"
#include "test_util.h"

namespace dbdc {
namespace {

TEST(SortedKDistancesTest, DescendingAndSizedLikeTheData) {
  Rng rng(1);
  const Dataset data = RandomDataset(200, 2, 0.0, 10.0, &rng);
  const LinearScanIndex index(data, Euclidean());
  const std::vector<double> kdist = SortedKDistances(index, 4);
  ASSERT_EQ(kdist.size(), data.size());
  EXPECT_TRUE(std::is_sorted(kdist.begin(), kdist.end(), std::greater<>()));
}

TEST(SortedKDistancesTest, ExactValuesOnALine) {
  // Points at 0, 1, 2, 3: 1-dist (nearest other point) is 1 for all.
  Dataset data(1);
  for (int i = 0; i < 4; ++i) data.Add(Point{static_cast<double>(i)});
  const LinearScanIndex index(data, Euclidean());
  const std::vector<double> d1 = SortedKDistances(index, 1);
  for (const double d : d1) EXPECT_DOUBLE_EQ(d, 1.0);
  // 2-dist: endpoints see {1,2} -> 2; middle points see {1,1} -> 1.
  const std::vector<double> d2 = SortedKDistances(index, 2);
  EXPECT_DOUBLE_EQ(d2[0], 2.0);
  EXPECT_DOUBLE_EQ(d2[1], 2.0);
  EXPECT_DOUBLE_EQ(d2[2], 1.0);
  EXPECT_DOUBLE_EQ(d2[3], 1.0);
}

TEST(SuggestEpsTest, SeparatesClusterScaleFromNoiseScale) {
  // Dense blobs (within-cluster k-dist ~0.2) plus sparse noise
  // (k-dist >> 1): the knee must land between the two scales.
  Dataset data(2);
  Rng rng(2);
  std::vector<ClusterId> unused;
  AppendBlob({{10.0, 10.0}, 0.4, 300}, 0, &rng, &data, &unused);
  AppendBlob({{30.0, 30.0}, 0.4, 300}, 1, &rng, &data, &unused);
  AppendUniformNoise(60, 0.0, 40.0, &rng, &data, &unused);
  const LinearScanIndex index(data, Euclidean());
  const double eps = SuggestEps(index, 5);
  EXPECT_GT(eps, 0.05);
  EXPECT_LT(eps, 3.0);
  // The suggested eps must make DBSCAN recover the two blobs.
  const Clustering result = RunDbscan(index, {eps, 5});
  EXPECT_GE(result.num_clusters, 2);
  EXPECT_LE(result.num_clusters, 6);
}

TEST(SuggestEpsTest, WorksOnThePaperDatasets) {
  for (int idx = 0; idx < 3; ++idx) {
    const SyntheticDataset synth = idx == 0   ? MakeTestDatasetA(3)
                                   : idx == 1 ? MakeTestDatasetB(3)
                                              : MakeTestDatasetC(3);
    const auto index = CreateIndex(IndexType::kKdTree, synth.data,
                                   Euclidean(), 1.0);
    const double eps = SuggestEps(*index, synth.suggested_params.min_pts);
    ASSERT_GT(eps, 0.0) << synth.name;
    // Within a factor ~3 of the hand-calibrated value.
    EXPECT_GT(eps, synth.suggested_params.eps / 3.0) << synth.name;
    EXPECT_LT(eps, synth.suggested_params.eps * 3.0) << synth.name;
  }
}

TEST(SuggestEpsTest, TinyDatasetsReturnZero) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  data.Add(Point{1.0, 1.0});
  const LinearScanIndex index(data, Euclidean());
  EXPECT_DOUBLE_EQ(SuggestEps(index, 3), 0.0);
}

TEST(EstimateDbscanParamsTest, ExactValuesOnALine) {
  // Points at 0, 1, 2, 3: every point's 1-NN distance is 1, so the mean
  // 1st-NN distance is exactly 1 and min_pts = k + 1 = 2.
  Dataset data(1);
  for (int i = 0; i < 4; ++i) data.Add(Point{static_cast<double>(i)});
  const DbscanParams params = EstimateDbscanParams(data, Euclidean(), 1);
  EXPECT_DOUBLE_EQ(params.eps, 1.0);
  EXPECT_EQ(params.min_pts, 2);
}

TEST(EstimateDbscanParamsTest, UsableOnThePaperDatasets) {
  for (int idx = 0; idx < 3; ++idx) {
    const SyntheticDataset synth = idx == 0   ? MakeTestDatasetA(5)
                                   : idx == 1 ? MakeTestDatasetB(5)
                                              : MakeTestDatasetC(5);
    const DbscanParams params =
        EstimateDbscanParams(synth.data, Euclidean(), 4);
    EXPECT_EQ(params.min_pts, 5) << synth.name;
    ASSERT_GT(params.eps, 0.0) << synth.name;
    // Same ballpark as the hand-calibrated value (the mean k-NN distance
    // runs a bit below the knee, which sits at the noise/cluster border).
    EXPECT_GT(params.eps, synth.suggested_params.eps / 4.0) << synth.name;
    EXPECT_LT(params.eps, synth.suggested_params.eps * 4.0) << synth.name;
    // Validates, and drives DBSCAN to a non-degenerate clustering.
    DbdcConfig config;
    config.local_dbscan = params;
    EXPECT_TRUE(config.Validate().ok) << synth.name;
    const auto index = CreateIndex(IndexType::kKdTree, synth.data,
                                   Euclidean(), params.eps);
    const Clustering result = RunDbscan(*index, params);
    EXPECT_GE(result.num_clusters, 1) << synth.name;
  }
}

TEST(EstimateDbscanParamsTest, DeterministicAcrossCalls) {
  const SyntheticDataset synth = MakeTestDatasetC(6);
  const DbscanParams first = EstimateDbscanParams(synth.data, Euclidean(), 4);
  const DbscanParams second =
      EstimateDbscanParams(synth.data, Euclidean(), 4);
  EXPECT_EQ(first.eps, second.eps);
  EXPECT_EQ(first.min_pts, second.min_pts);
}

TEST(EstimateDbscanParamsTest, TooFewPointsReturnsInvalidParams) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  data.Add(Point{1.0, 1.0});
  data.Add(Point{2.0, 0.0});
  // k = 4 needs at least 5 points.
  const DbscanParams params = EstimateDbscanParams(data, Euclidean(), 4);
  EXPECT_DOUBLE_EQ(params.eps, 0.0);
  EXPECT_EQ(params.min_pts, 0);
  DbdcConfig config;
  config.local_dbscan = params;
  EXPECT_FALSE(config.Validate().ok);
  const ParamEstimate estimate =
      EstimateDbscanParamsChecked(data, Euclidean(), 4);
  EXPECT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status, ParamEstimationStatus::kTooFewPoints);
}

// The regression this PR fixes: on an all-duplicates dataset every k-th
// neighbor distance is exactly 0, so the averaged eps is 0 — never a
// legal DBSCAN radius. The checked API must name the degeneracy instead
// of handing the caller garbage params, and the legacy wrapper must
// return the (invalid, rejected-by-Validate) zero params rather than
// NaN or a stale average.
TEST(EstimateDbscanParamsTest, AllDuplicatesReportsDegenerateDistances) {
  Dataset data(2);
  for (int i = 0; i < 50; ++i) data.Add(Point{7.0, -3.0});
  const ParamEstimate estimate =
      EstimateDbscanParamsChecked(data, Euclidean(), 4);
  EXPECT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status, ParamEstimationStatus::kDegenerateDistances);
  EXPECT_DOUBLE_EQ(estimate.params.eps, 0.0);
  EXPECT_EQ(estimate.params.min_pts, 0);
  const DbscanParams params = EstimateDbscanParams(data, Euclidean(), 4);
  EXPECT_DOUBLE_EQ(params.eps, 0.0);
  EXPECT_EQ(params.min_pts, 0);
  DbdcConfig config;
  config.local_dbscan = params;
  EXPECT_FALSE(config.Validate().ok);
  // Every failure status renders a non-empty human-readable message (the
  // CLI and job manager surface it verbatim).
  EXPECT_FALSE(
      std::string(ParamEstimationStatusMessage(estimate.status)).empty());
  EXPECT_FALSE(std::string(ParamEstimationStatusMessage(
                               ParamEstimationStatus::kTooFewPoints))
                   .empty());
}

TEST(EstimateDbscanParamsTest, OkStatusOnHealthyData) {
  const SyntheticDataset synth = MakeTestDatasetC(8);
  const ParamEstimate estimate =
      EstimateDbscanParamsChecked(synth.data, Euclidean(), 4);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate.status, ParamEstimationStatus::kOk);
  EXPECT_GT(estimate.params.eps, 0.0);
  EXPECT_EQ(estimate.params.min_pts, 5);
  // The wrapper agrees with the checked API on success.
  const DbscanParams params = EstimateDbscanParams(synth.data, Euclidean(), 4);
  EXPECT_EQ(params.eps, estimate.params.eps);
  EXPECT_EQ(params.min_pts, estimate.params.min_pts);
}

// The tie-pinning bugfix: on a dataset with equidistant neighbors every
// index backend must return the same (distance, id)-ascending k-NN ids,
// which makes the k-dist sample — and therefore the estimated eps —
// index-invariant.
TEST(EstimateDbscanParamsTest, IndexInvariantOnEquidistantNeighbors) {
  // A grid of unit-spaced points: each interior point has 4 neighbors at
  // distance exactly 1, 4 at sqrt(2), 4 at 2, ... — ties everywhere.
  Dataset data(2);
  for (int x = 0; x < 12; ++x) {
    for (int y = 0; y < 12; ++y) {
      data.Add(Point{static_cast<double>(x), static_cast<double>(y)});
    }
  }
  const std::vector<IndexType> kAllIndexTypes = {
      IndexType::kLinearScan, IndexType::kGrid,
      IndexType::kKdTree,     IndexType::kRStarTree,
      IndexType::kRStarTreeBulk, IndexType::kMTree,
      IndexType::kVpTree,     IndexType::kApprox};
  const auto truth = CreateIndex(IndexType::kLinearScan, data, Euclidean(),
                                 1.0);
  std::vector<PointId> want, got;
  for (const IndexType type : kAllIndexTypes) {
    const auto index = CreateIndex(type, data, Euclidean(), 1.0);
    for (PointId q = 0; q < static_cast<PointId>(data.size()); q += 5) {
      for (const int k : {3, 6, 13}) {
        truth->KnnQuery(data.point(q), k, &want);
        index->KnnQuery(data.point(q), k, &got);
        // Exact id sequences, not just distances: the tie-pin contract.
        EXPECT_EQ(got, want)
            << IndexTypeName(type) << " q=" << q << " k=" << k;
      }
    }
    // And the derived estimate is identical across backends.
    const std::vector<double> kdist = SortedKDistances(*index, 4);
    const std::vector<double> kdist_truth = SortedKDistances(*truth, 4);
    EXPECT_EQ(kdist, kdist_truth) << IndexTypeName(type);
  }
  const DbscanParams params = EstimateDbscanParams(data, Euclidean(), 4);
  EXPECT_GT(params.eps, 0.0);
}

}  // namespace
}  // namespace dbdc
