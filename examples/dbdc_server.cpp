// The DBDC serving daemon: hosts many concurrent clustering jobs over
// TCP (loopback), each in its own engine with its own metrics/tracing.
//
//   dbdc_server [options]
//     --port <int>          TCP port on 127.0.0.1 (default 0 = ephemeral;
//                           the bound port is printed either way)
//     --max-active <int>    concurrent executor threads / running jobs
//                           (default 2)
//     --max-queued <int>    admitted jobs waiting for an executor;
//                           further submissions are rejected with
//                           "server.queue" (default 8)
//     --max-points <int>    largest dataset a job may ship (default 2M)
//     --max-sites <int>     largest num_sites a job may request
//                           (default 256)
//     --job-threads <int>   per-job worker-thread clamp, 0 = none
//                           (default 4)
//     --aggregator <int>    force every job onto a k-ary aggregation
//                           tree of this fanout (>= 2), whatever topology
//                           the request asked for; lossless, so labels
//                           stay bit-identical to the flat run
//                           (default 0 = honor the request)
//     --max-sessions <int>  concurrent client connections (default 16)
//     --max-jobs <int>      serve this many jobs, then exit cleanly
//                           (default 0 = run until SIGINT/--allow-shutdown;
//                           the CI smoke test's clean-exit knob)
//     --allow-shutdown      honor the wire Shutdown message
//     --quiet               suppress the per-event log lines
//
// Submit work with the CLI's client mode:
//   dbdc_server --port 7979 &
//   dbdc_cli gen:A --connect 127.0.0.1:7979 --metrics
//
// A job request carries the dataset, the full DbdcConfig, the global
// strategy (dbscan|optics), and optionally asks the server to estimate
// (eps, minpts) from the shipped data (--auto-params). Bad configs are
// rejected with the offending field named on the wire.

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/server.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--max-active N] [--max-queued N] "
               "[--max-points N] [--max-sites N] [--job-threads N] "
               "[--aggregator K] [--max-sessions N] [--max-jobs N] "
               "[--allow-shutdown] [--quiet]\n",
               argv0);
  std::exit(2);
}

int ParseIntFlag(const char* flag, const char* text, int min, int max) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < min || value > max) {
    std::fprintf(stderr, "error: %s must be an integer in [%d, %d], "
                 "got '%s'\n", flag, min, max, text);
    std::exit(2);
  }
  return static_cast<int>(value);
}

}  // namespace

int main(int argc, char** argv) {
  dbdc::serve::ServerOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(
          ParseIntFlag("--port", next(), 0, 65535));
    } else if (arg == "--max-active") {
      options.limits.max_active = ParseIntFlag("--max-active", next(), 1,
                                               1024);
    } else if (arg == "--max-queued") {
      options.limits.max_queued = ParseIntFlag("--max-queued", next(), 0,
                                               1 << 20);
    } else if (arg == "--max-points") {
      options.limits.max_points = static_cast<std::size_t>(
          ParseIntFlag("--max-points", next(), 1, INT_MAX));
    } else if (arg == "--max-sites") {
      options.limits.max_sites = ParseIntFlag("--max-sites", next(), 1,
                                              1 << 20);
    } else if (arg == "--job-threads") {
      options.limits.max_threads_per_job =
          ParseIntFlag("--job-threads", next(), 0, 1024);
    } else if (arg == "--aggregator") {
      options.limits.force_tree_fanout =
          ParseIntFlag("--aggregator", next(), 2, 1 << 20);
    } else if (arg == "--max-sessions") {
      options.max_sessions = ParseIntFlag("--max-sessions", next(), 1,
                                          1 << 16);
    } else if (arg == "--max-jobs") {
      options.max_jobs_served = static_cast<std::uint64_t>(
          ParseIntFlag("--max-jobs", next(), 0, INT_MAX));
    } else if (arg == "--allow-shutdown") {
      options.allow_remote_shutdown = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
    }
  }
  if (!quiet) {
    options.log = [](const std::string& line) {
      std::fprintf(stderr, "dbdc_server: %s\n", line.c_str());
      std::fflush(stderr);
    };
  }

  dbdc::serve::DbdcServer server(std::move(options));
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: cannot start server: %s\n", error.c_str());
    return 1;
  }
  // The port line goes to stdout (and is flushed) so scripts — the CI
  // smoke test among them — can scrape it even under an ephemeral port.
  std::printf("dbdc_server listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  server.Wait();
  std::printf("dbdc_server exiting after %llu served jobs\n",
              static_cast<unsigned long long>(server.jobs_served()));
  return 0;
}
