#include "distrib/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dbdc {
namespace {

std::vector<PointId> AllIds(const Dataset& data) {
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

}  // namespace

std::vector<std::vector<PointId>> UniformRandomPartitioner::Partition(
    const Dataset& data, int num_sites, Rng* rng) const {
  DBDC_CHECK(num_sites >= 1);
  std::vector<PointId> ids = AllIds(data);
  std::shuffle(ids.begin(), ids.end(), rng->engine());
  std::vector<std::vector<PointId>> sites(num_sites);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    sites[i % num_sites].push_back(ids[i]);
  }
  return sites;
}

std::vector<std::vector<PointId>> RoundRobinPartitioner::Partition(
    const Dataset& data, int num_sites, Rng* /*rng*/) const {
  DBDC_CHECK(num_sites >= 1);
  std::vector<std::vector<PointId>> sites(num_sites);
  for (PointId id = 0; id < static_cast<PointId>(data.size()); ++id) {
    sites[id % num_sites].push_back(id);
  }
  return sites;
}

std::vector<std::vector<PointId>> SpatialSlabPartitioner::Partition(
    const Dataset& data, int num_sites, Rng* /*rng*/) const {
  DBDC_CHECK(num_sites >= 1);
  DBDC_CHECK(axis_ >= 0 && axis_ < data.dim());
  std::vector<PointId> ids = AllIds(data);
  std::sort(ids.begin(), ids.end(), [&](PointId a, PointId b) {
    const double xa = data.point(a)[axis_];
    const double xb = data.point(b)[axis_];
    if (xa != xb) return xa < xb;
    return a < b;
  });
  std::vector<std::vector<PointId>> sites(num_sites);
  const std::size_t n = ids.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t site = i * num_sites / n;
    sites[site].push_back(ids[i]);
  }
  return sites;
}

std::vector<std::vector<PointId>> SizeSkewedPartitioner::Partition(
    const Dataset& data, int num_sites, Rng* rng) const {
  DBDC_CHECK(num_sites >= 1);
  DBDC_CHECK(ratio_ > 0.0 && ratio_ <= 1.0);
  std::vector<PointId> ids = AllIds(data);
  std::shuffle(ids.begin(), ids.end(), rng->engine());
  // Geometric shares, normalized.
  std::vector<double> share(num_sites);
  double total = 0.0;
  for (int s = 0; s < num_sites; ++s) {
    share[s] = std::pow(ratio_, s);
    total += share[s];
  }
  std::vector<std::vector<PointId>> sites(num_sites);
  std::size_t next = 0;
  for (int s = 0; s < num_sites; ++s) {
    std::size_t take = static_cast<std::size_t>(
        std::llround(share[s] / total * static_cast<double>(ids.size())));
    if (s == num_sites - 1) take = ids.size() - next;
    take = std::min(take, ids.size() - next);
    for (std::size_t i = 0; i < take; ++i) sites[s].push_back(ids[next++]);
  }
  // Leftovers from rounding go to the largest site.
  while (next < ids.size()) sites[0].push_back(ids[next++]);
  return sites;
}

}  // namespace dbdc
