#ifndef DBDC_INDEX_LINEAR_SCAN_INDEX_H_
#define DBDC_INDEX_LINEAR_SCAN_INDEX_H_

#include <span>
#include <vector>

#include "index/neighbor_index.h"

namespace dbdc {

/// O(n)-per-query reference index. Supports any metric and dynamic
/// updates; it is the ground truth the other indices are validated
/// against in the test suite.
class LinearScanIndex final : public NeighborIndex {
 public:
  /// Indexes every point of `data` (pass index_all=false to start empty).
  LinearScanIndex(const Dataset& data, const Metric& metric,
                  bool index_all = true);

  void RangeQuery(std::span<const double> q, double eps,
                  std::vector<PointId>* out) const override;
  using NeighborIndex::RangeQuery;
  void KnnQuery(std::span<const double> q, int k,
                std::vector<PointId>* out) const override;
  std::size_t size() const override { return count_; }
  bool SupportsDynamicUpdates() const override { return true; }
  void Insert(PointId id) override;
  void Erase(PointId id) override;
  std::string_view name() const override { return "linear"; }
  const Dataset& data() const override { return *data_; }
  const Metric& metric() const override { return *metric_; }

 private:
  const Dataset* data_;
  const Metric* metric_;
  /// Detected at construction: range scans then filter by squared distance
  /// against eps² (no virtual call, no sqrt).
  bool euclidean_ = false;
  std::vector<bool> present_;
  std::size_t count_ = 0;
};

}  // namespace dbdc

#endif  // DBDC_INDEX_LINEAR_SCAN_INDEX_H_
