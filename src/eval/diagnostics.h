#ifndef DBDC_EVAL_DIAGNOSTICS_H_
#define DBDC_EVAL_DIAGNOSTICS_H_

#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace dbdc {

/// One (distributed cluster, central cluster) overlap.
struct ClusterOverlap {
  ClusterId distributed = kNoise;
  ClusterId central = kNoise;
  std::size_t size = 0;     // |C_d ∩ C_c|
  double jaccard = 0.0;     // |C_d ∩ C_c| / |C_d ∪ C_c|
};

/// A central cluster that the distributed clustering split into several
/// pieces (or vice versa for MergeEvent).
struct SplitEvent {
  ClusterId central = kNoise;
  std::vector<ClusterId> parts;  // Distributed clusters covering it.
};

struct MergeEvent {
  ClusterId distributed = kNoise;
  std::vector<ClusterId> parts;  // Central clusters it swallowed.
};

/// A structural comparison of a distributed clustering against the
/// central reference — the qualitative view behind the Q_DBDC number:
/// *which* clusters were split, merged, or exchanged with noise.
struct DiagnosticsReport {
  /// Best-matching central cluster per distributed cluster (by overlap).
  std::vector<ClusterOverlap> best_match_per_distributed;
  std::vector<SplitEvent> splits;
  std::vector<MergeEvent> merges;
  /// Points that are noise centrally but clustered distributedly.
  std::size_t noise_absorbed = 0;
  /// Points clustered centrally but noise distributedly.
  std::size_t noise_lost = 0;
  /// Points that are noise in both.
  std::size_t noise_agreed = 0;
  int num_distributed_clusters = 0;
  int num_central_clusters = 0;
};

/// Builds the report. An overlap counts towards a split/merge event when
/// it covers at least `min_overlap_fraction` of the cluster being
/// split/merged (filters incidental single-point contacts).
DiagnosticsReport DiagnoseClustering(std::span<const ClusterId> distributed,
                                     std::span<const ClusterId> central,
                                     double min_overlap_fraction = 0.05);

/// Human-readable multi-line rendering of the report.
std::string FormatDiagnostics(const DiagnosticsReport& report);

}  // namespace dbdc

#endif  // DBDC_EVAL_DIAGNOSTICS_H_
