# Empty dependencies file for dbdc_eval.
# This may be replaced when dependencies are built.
