// Seeded violation: naked new/delete ownership outside the audited
// arena-style index structures.
namespace dbdc {

struct Node {
  int value = 0;
};

int BadOwnership() {
  Node* node = new Node();
  const int value = node->value;
  delete node;
  return value;
}

}  // namespace dbdc
