#include "distrib/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace dbdc {
namespace {

/// Routing envelope carried as the DBFP frame payload:
///   i32 from | i32 to | application bytes.
/// Host byte order — both ends of the loopback hub are this process.
constexpr std::size_t kEnvelopeBytes = 8;

std::vector<std::uint8_t> EncodeEnvelope(
    EndpointId from, EndpointId to,
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kEnvelopeBytes + payload.size());
  const std::int32_t from32 = from;
  const std::int32_t to32 = to;
  out.resize(kEnvelopeBytes);
  std::memcpy(out.data(), &from32, 4);
  std::memcpy(out.data() + 4, &to32, 4);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool DecodeEnvelope(const std::vector<std::uint8_t>& envelope,
                    EndpointId* from, EndpointId* to,
                    std::vector<std::uint8_t>* payload) {
  if (envelope.size() < kEnvelopeBytes) return false;
  std::int32_t from32 = 0;
  std::int32_t to32 = 0;
  std::memcpy(&from32, envelope.data(), 4);
  std::memcpy(&to32, envelope.data() + 4, 4);
  *from = from32;
  *to = to32;
  payload->assign(
      envelope.begin() + static_cast<std::ptrdiff_t>(kEnvelopeBytes),
      envelope.end());
  return true;
}

/// Poll budget in whole ms out of what remains of `timeout_sec` on
/// `timer`; >= 1 while the deadline has not passed (0 would busy-spin).
int PollBudgetMillis(const Timer& timer, double timeout_sec) {
  const double remaining = timeout_sec - timer.Seconds();
  if (remaining <= 0.0) return 0;
  const double ms = remaining * 1e3;
  if (ms >= 60000.0) return 60000;
  const int whole = static_cast<int>(ms);
  return whole < 1 ? 1 : whole;
}

}  // namespace

std::unique_ptr<SocketTransport> SocketTransport::CreateLoopback(
    const Options& options, std::string* error) {
  // make_unique cannot reach the private constructor; the unique_ptr
  // takes ownership on the same line. dbdc-lint: allow(no-naked-new)
  std::unique_ptr<SocketTransport> transport(new SocketTransport(options));
  if (!transport->init_error_.empty()) {
    if (error != nullptr) *error = transport->init_error_;
    return nullptr;
  }
  return transport;
}

SocketTransport::SocketTransport(const Options& options)
    : options_(options), num_sites_(options.num_sites) {
  if (options.num_sites < 1) {
    init_error_ = "SocketTransport needs at least one site";
    return;
  }
  std::uint16_t port = 0;
  const Fd listener = ListenTcp(0, options.num_sites + 1, &port,
                                &init_error_);
  if (!listener.valid()) return;

  // One connection per endpoint: slot 0 = the server, slot 1+s = site s.
  // Connect and accept strictly one at a time, so the accepted fd is
  // unambiguously the endpoint that just connected — no handshake needed.
  endpoints_.reserve(static_cast<std::size_t>(options.num_sites) + 1);
  for (int i = 0; i <= options.num_sites; ++i) {
    auto endpoint = std::make_unique<Endpoint>(options.max_frame_bytes);
    endpoint->client_fd = ConnectTcp("127.0.0.1", port,
                                     options.io_timeout_sec, &init_error_);
    if (!endpoint->client_fd.valid()) return;
    endpoint->hub_fd = AcceptTcp(listener.get());
    if (!endpoint->hub_fd.valid()) {
      init_error_ = "accept failed for endpoint " + std::to_string(i);
      return;
    }
    // The hub side is polled, never blocked on.
    if (!SetNonBlocking(endpoint->hub_fd.get())) {
      init_error_ = "cannot make hub socket nonblocking";
      return;
    }
    endpoints_.push_back(std::move(endpoint));
  }
}

SocketTransport::~SocketTransport() = default;

std::size_t SocketTransport::Slot(EndpointId endpoint) const {
  const std::size_t slot =
      endpoint == kServerEndpoint
          ? 0
          : static_cast<std::size_t>(endpoint) + 1;
  DBDC_CHECK(endpoint >= kServerEndpoint && endpoint < num_sites_);
  return slot;
}

std::size_t SocketTransport::Send(EndpointId from, EndpointId to,
                                  std::vector<std::uint8_t> payload) {
  MutexLock lock(&mu_);
  const std::size_t from_slot = Slot(from);
  const std::size_t to_slot = Slot(to);
  // Dead-peer semantics (matches FaultyNetwork's dead sites): a closed
  // endpoint neither sends nor receives.
  if (endpoints_[from_slot]->closed || endpoints_[to_slot]->closed) {
    ++stats_.sends_dropped;
    return kMessageDropped;
  }

  Frame frame;
  frame.type = FrameType::kData;
  frame.seq = next_seq_++;
  frame.payload = EncodeEnvelope(from, to, payload);
  const std::vector<std::uint8_t> wire = EncodeFrame(frame);

  // The wall clock starts when the first byte enters the kernel; its
  // reading when the frame is routed is the measured transfer time.
  Timer timer;
  send_timer_ = &timer;
  bool ok = WriteAllFd(endpoints_[from_slot]->client_fd.get(), wire,
                       options_.io_timeout_sec);
  if (ok) {
    wire_bytes_ += wire.size();
    ok = PumpUntil(messages_.size() + 1, from_slot);
  } else {
    // Write failure = the peer is gone; close both directions.
    CloseSlot(from_slot);
  }
  send_timer_ = nullptr;
  if (!ok) {
    ++stats_.sends_dropped;
    return kMessageDropped;
  }
  return messages_.size() - 1;
}

bool SocketTransport::PumpUntil(std::size_t target_count,
                                std::size_t sender_slot) {
  // send_timer_ is the deadline reference: the whole Send() round trip
  // shares one io_timeout_sec budget.
  DBDC_CHECK(send_timer_ != nullptr);
  while (messages_.size() < target_count) {
    if (endpoints_[sender_slot]->closed) return false;
    std::vector<pollfd> pfds;
    std::vector<std::size_t> slots;
    pfds.reserve(endpoints_.size());
    slots.reserve(endpoints_.size());
    for (std::size_t slot = 0; slot < endpoints_.size(); ++slot) {
      if (endpoints_[slot]->closed) continue;
      pfds.push_back(pollfd{endpoints_[slot]->hub_fd.get(), POLLIN, 0});
      slots.push_back(slot);
    }
    if (pfds.empty()) return false;
    const int ms = PollBudgetMillis(*send_timer_, options_.io_timeout_sec);
    if (ms == 0) return false;
    const int rc = ::poll(pfds.data(),
                          static_cast<nfds_t>(pfds.size()), ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        DrainEndpoint(slots[i]);
      }
    }
  }
  return true;
}

void SocketTransport::DrainEndpoint(std::size_t slot) {
  Endpoint& endpoint = *endpoints_[slot];
  if (endpoint.closed) return;

  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n =
        ::recv(endpoint.hub_fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      endpoint.assembler.Append(
          std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Orderly EOF. Bytes short of a full frame = the peer died
      // mid-message; the partial frame is discarded, never delivered.
      if (endpoint.assembler.buffered_bytes() > 0) {
        ++stats_.mid_frame_disconnects;
      }
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Stream drained; route what completed and keep the endpoint.
      RouteFrames(slot);
      return;
    }
    break;  // Hard socket error.
  }
  // EOF or error: route any frames that did complete, then close.
  RouteFrames(slot);
  CloseSlot(slot);
}

void SocketTransport::RouteFrames(std::size_t slot) {
  Endpoint& endpoint = *endpoints_[slot];
  while (std::optional<Frame> frame = endpoint.assembler.Next()) {
    EndpointId from = 0;
    EndpointId to = 0;
    std::vector<std::uint8_t> payload;
    if (!DecodeEnvelope(frame->payload, &from, &to, &payload)) {
      ++stats_.framing_errors;
      CloseSlot(slot);
      return;
    }
    const double delay =
        (send_timer_ != nullptr ? send_timer_->Seconds() : 0.0) +
        endpoint.extra_delay_sec;
    RecordMessage(from, to, std::move(payload), delay);
    ++stats_.frames_routed;
  }
  if (endpoint.assembler.corrupted()) {
    ++stats_.framing_errors;
    CloseSlot(slot);
  }
}

void SocketTransport::CloseSlot(std::size_t slot) {
  Endpoint& endpoint = *endpoints_[slot];
  endpoint.closed = true;
  endpoint.client_fd.Close();
  endpoint.hub_fd.Close();
}

void SocketTransport::RecordMessage(EndpointId from, EndpointId to,
                                    std::vector<std::uint8_t> payload,
                                    double delay_sec) {
  // Byte accounting mirrors SimulatedNetwork::Send exactly, so an
  // attached per-job registry reconciles with the transport counters
  // regardless of which transport ran the job.
  if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
    if (to == kServerEndpoint) {
      metrics->AddSiteBytes(obs::Counter::kBytesUplink, from,
                            payload.size());
    } else if (from == kServerEndpoint) {
      metrics->AddSiteBytes(obs::Counter::kBytesDownlink, to,
                            payload.size());
    }
  }
  messages_.push_back({from, to, std::move(payload)});
  delays_.push_back(delay_sec);
}

std::vector<const NetworkMessage*> SocketTransport::Inbox(
    EndpointId endpoint) const {
  MutexLock lock(&mu_);
  std::vector<const NetworkMessage*> inbox;
  for (const NetworkMessage& m : messages_) {
    if (m.to == endpoint) inbox.push_back(&m);
  }
  return inbox;
}

std::size_t SocketTransport::NumMessages() const {
  MutexLock lock(&mu_);
  return messages_.size();
}

const NetworkMessage& SocketTransport::Message(std::size_t index) const {
  MutexLock lock(&mu_);
  DBDC_CHECK(index < messages_.size());
  return messages_[index];
}

double SocketTransport::DeliveryDelaySeconds(std::size_t index) const {
  MutexLock lock(&mu_);
  DBDC_CHECK(index < delays_.size());
  return delays_[index];
}

std::uint64_t SocketTransport::BytesUplink() const {
  MutexLock lock(&mu_);
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) {
    if (m.to == kServerEndpoint) total += m.payload.size();
  }
  return total;
}

std::uint64_t SocketTransport::BytesDownlink() const {
  MutexLock lock(&mu_);
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) {
    if (m.from == kServerEndpoint) total += m.payload.size();
  }
  return total;
}

std::uint64_t SocketTransport::BytesTotal() const {
  MutexLock lock(&mu_);
  std::uint64_t total = 0;
  for (const NetworkMessage& m : messages_) total += m.payload.size();
  return total;
}

void SocketTransport::Clear() {
  MutexLock lock(&mu_);
  messages_.clear();
  delays_.clear();
}

void SocketTransport::CloseEndpoint(EndpointId endpoint_id, bool mid_frame) {
  MutexLock lock(&mu_);
  const std::size_t slot = Slot(endpoint_id);
  Endpoint& endpoint = *endpoints_[slot];
  if (endpoint.closed) return;
  if (mid_frame && endpoint.client_fd.valid()) {
    // Write the front half of a legitimate frame, then vanish — the
    // nastiest real failure shape a TCP peer can produce.
    Frame frame;
    frame.type = FrameType::kData;
    frame.seq = next_seq_++;
    frame.payload.assign(64, std::uint8_t{0xAB});
    const std::vector<std::uint8_t> wire = EncodeFrame(frame);
    const std::span<const std::uint8_t> prefix =
        std::span<const std::uint8_t>(wire).first(wire.size() / 2);
    if (WriteAllFd(endpoint.client_fd.get(), prefix,
                   options_.io_timeout_sec)) {
      wire_bytes_ += prefix.size();
    }
  }
  endpoint.client_fd.Close();
  // Pump the hub side until it observes the EOF (and the mid-frame
  // counter fires), so the failure is fully accounted before return.
  Timer timer;
  while (!endpoint.closed &&
         timer.Seconds() < options_.io_timeout_sec) {
    pollfd pfd{endpoint.hub_fd.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 10);
    if (rc < 0 && errno != EINTR) break;
    if (rc > 0) DrainEndpoint(slot);
  }
  if (!endpoint.closed) CloseSlot(slot);
}

void SocketTransport::SetExtraDelaySeconds(EndpointId endpoint_id,
                                           double seconds) {
  MutexLock lock(&mu_);
  endpoints_[Slot(endpoint_id)]->extra_delay_sec = seconds;
}

std::uint64_t SocketTransport::wire_bytes() const {
  MutexLock lock(&mu_);
  return wire_bytes_;
}

SocketTransport::Stats SocketTransport::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace dbdc
