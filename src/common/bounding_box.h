#ifndef DBDC_COMMON_BOUNDING_BOX_H_
#define DBDC_COMMON_BOUNDING_BOX_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace dbdc {

/// An axis-aligned d-dimensional rectangle, used by the grid index and the
/// R*-tree. An empty (default) box contains nothing and unions as identity.
class BoundingBox {
 public:
  /// Creates the empty box of dimension `dim`.
  explicit BoundingBox(int dim);

  /// Creates the degenerate box covering a single point.
  static BoundingBox FromPoint(std::span<const double> p);

  /// Extends the box to cover `p`.
  void Extend(std::span<const double> p);

  /// Extends the box to cover `other` (dimensions must match).
  void Extend(const BoundingBox& other);

  /// True when the box covers no point (never extended).
  bool empty() const { return empty_; }

  /// True when `p` lies inside the box (inclusive).
  bool Contains(std::span<const double> p) const;

  /// True when the two boxes share at least one point.
  bool Intersects(const BoundingBox& other) const;

  /// Sum of side lengths ("margin" in R*-tree terms).
  double Margin() const;

  /// d-dimensional volume (product of side lengths).
  double Volume() const;

  /// Volume of the intersection with `other` (0 when disjoint).
  double OverlapVolume(const BoundingBox& other) const;

  /// Volume increase required to also cover `other`.
  double Enlargement(const BoundingBox& other) const;

  /// Coordinates of the box center.
  std::vector<double> Center() const;

  int dim() const { return static_cast<int>(lo_.size()); }
  std::span<const double> lo() const { return lo_; }
  std::span<const double> hi() const { return hi_; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  bool empty_ = true;
};

}  // namespace dbdc

#endif  // DBDC_COMMON_BOUNDING_BOX_H_
