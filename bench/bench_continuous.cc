// Continuous-mode economics benchmark: what does the streaming DBDC
// deployment save on the wide-area links?
//
// Simulates k StreamingSites over T ticks of drift churn (points keep
// arriving inside each site's existing clusters) with a few structural
// changes sprinkled in (a new cluster appears at one site). The
// continuous engine uploads a refreshed local model only when a site's
// RefreshPolicy fires; the naive alternative re-runs batch DBDC over the
// union snapshot every tick (k model uploads + k broadcasts each time).
// Both run over real Transports, so the comparison is in actual bytes.
//
// Also surfaces the per-stage StageStats breakdown of one representative
// batch run, since the batch pipeline is the per-tick unit of the naive
// alternative.
//
// With --out FILE the results are emitted as machine-readable JSON
// (schema "dbdc-continuous-bench-v1"); --quick shrinks the stream for CI
// smoke runs. Every stream is seeded, so byte counts and refresh counts
// are identical across runs (only timings vary with the hardware).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/dbdc.h"
#include "core/engine.h"
#include "distrib/network.h"

namespace {

void InsertBlob(dbdc::StreamingSite* site, double cx, double cy, int count,
                dbdc::Rng* rng) {
  for (int i = 0; i < count; ++i) {
    site->Insert(dbdc::Point{rng->Gaussian(cx, 0.3), rng->Gaussian(cy, 0.3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using dbdc::bench::Fmt;
  dbdc::bench::HarnessOptions options;
  if (!dbdc::bench::ParseHarnessOptions(argc, argv, &options)) return 2;
  const dbdc::bench::HarnessMetrics metrics;
  const bool quick = options.quick;

  const int num_sites = quick ? 4 : 8;
  const int ticks = quick ? 10 : 40;
  const int structural_every = quick ? 5 : 10;  // New cluster every N ticks.
  const dbdc::DbscanParams params{1.0, 4};

  dbdc::GlobalModelParams global_params;
  global_params.min_pts_global = 2;

  dbdc::RefreshPolicy policy;
  policy.min_cluster_delta = 1;  // Refresh only on structural change.

  dbdc::SimulatedNetwork net;
  dbdc::ContinuousDbdc continuous(dbdc::Euclidean(), global_params,
                                  dbdc::ProtocolConfig{}, &net);
  std::vector<std::unique_ptr<dbdc::StreamingSite>> sites;
  sites.reserve(static_cast<std::size_t>(num_sites));
  for (int s = 0; s < num_sites; ++s) {
    sites.push_back(std::make_unique<dbdc::StreamingSite>(
        s, dbdc::Euclidean(), params, 2, dbdc::LocalModelType::kScor,
        policy));
    continuous.AttachSite(sites.back().get());
  }

  dbdc::Rng rng(20260806);
  for (int s = 0; s < num_sites; ++s) {
    InsertBlob(sites[s].get(), 12.0 * s, 0.0, 40, &rng);
  }

  std::uint64_t naive_uplink = 0;
  std::uint64_t naive_downlink = 0;
  int structural_changes = 0;
  dbdc::DbdcResult last_batch;
  dbdc::bench::Table tick_table(Fmt(
      "Continuous vs naive-batch uplink, %d streaming sites x %d ticks",
      num_sites, ticks));
  tick_table.SetHeader({"tick", "refreshes", "rebuilds", "cont uplink B",
                        "naive uplink B"});

  for (int t = 1; t <= ticks; ++t) {
    // Drift churn: more observations inside each site's existing
    // cluster. No structural change, so the refresh policies stay quiet.
    for (int s = 0; s < num_sites; ++s) {
      InsertBlob(sites[s].get(), 12.0 * s, 0.0, 2, &rng);
    }
    // Occasionally one site's structure actually changes: a new cluster
    // far from its existing one. Its policy fires; the others stay quiet.
    if (t % structural_every == 0) {
      const int s = structural_changes % num_sites;
      InsertBlob(sites[static_cast<std::size_t>(s)].get(), 12.0 * s,
                 25.0 + 10.0 * structural_changes, 25, &rng);
      ++structural_changes;
    }
    continuous.Tick();

    // The naive alternative: batch DBDC from scratch over the same
    // union-of-sites snapshot, on its own transport.
    dbdc::Dataset snapshot(2);
    for (const auto& site : sites) {
      const auto& data = site->clustering().data();
      for (dbdc::PointId p = 0;
           p < static_cast<dbdc::PointId>(data.size()); ++p) {
        if (site->clustering().IsActive(p)) snapshot.Add(data.point(p));
      }
    }
    dbdc::DbdcConfig batch;
    batch.local_dbscan = params;
    batch.num_sites = num_sites;
    dbdc::SimulatedNetwork batch_net;
    last_batch = dbdc::RunDbdc(snapshot, dbdc::Euclidean(), batch,
                               &batch_net);
    naive_uplink += last_batch.bytes_uplink;
    naive_downlink += last_batch.bytes_downlink;

    if (t == 1 || t % structural_every == 0 || t == ticks) {
      tick_table.AddRow(
          {Fmt("%d", t),
           Fmt("%llu", static_cast<unsigned long long>(
                           continuous.stats().refreshes_applied)),
           Fmt("%llu", static_cast<unsigned long long>(
                           continuous.stats().global_rebuilds)),
           Fmt("%llu", static_cast<unsigned long long>(net.BytesUplink())),
           Fmt("%llu", static_cast<unsigned long long>(naive_uplink))});
    }
  }
  tick_table.Print();

  const dbdc::ContinuousDbdc::Stats& stats = continuous.stats();
  const double uplink_savings =
      net.BytesUplink() > 0
          ? static_cast<double>(naive_uplink) /
                static_cast<double>(net.BytesUplink())
          : 0.0;
  const double downlink_savings =
      net.BytesDownlink() > 0
          ? static_cast<double>(naive_downlink) /
                static_cast<double>(net.BytesDownlink())
          : 0.0;
  std::printf(
      "continuous: %llu B up / %llu B down (%llu refreshes, %llu rebuilds "
      "over %d ticks)\n",
      static_cast<unsigned long long>(net.BytesUplink()),
      static_cast<unsigned long long>(net.BytesDownlink()),
      static_cast<unsigned long long>(stats.refreshes_applied),
      static_cast<unsigned long long>(stats.global_rebuilds), ticks);
  std::printf("naive batch: %llu B up / %llu B down (%d full re-runs)\n",
              static_cast<unsigned long long>(naive_uplink),
              static_cast<unsigned long long>(naive_downlink), ticks);
  std::printf("uplink savings: %.1fx (downlink %.1fx)\n", uplink_savings,
              downlink_savings);

  // The per-stage anatomy of the batch run the naive alternative pays for
  // on every tick.
  dbdc::bench::PrintStageStats(last_batch,
                               "Per-tick naive batch run, by stage");

  if (!options.out_path.empty()) {
    std::ofstream out(options.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.out_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"dbdc-continuous-bench-v1\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"num_sites\": " << num_sites << ",\n";
    out << "  \"ticks\": " << ticks << ",\n";
    out << "  \"structural_changes\": " << structural_changes << ",\n";
    out << "  \"continuous\": {\"bytes_uplink\": " << net.BytesUplink()
        << ", \"bytes_downlink\": " << net.BytesDownlink()
        << ", \"refreshes_sent\": " << stats.refreshes_sent
        << ", \"refreshes_applied\": " << stats.refreshes_applied
        << ", \"global_rebuilds\": " << stats.global_rebuilds
        << ", \"broadcasts_delivered\": " << stats.broadcasts_delivered
        << ", \"virtual_seconds\": "
        << Fmt("%.6f", continuous.virtual_now_sec()) << "},\n";
    out << "  \"naive\": {\"bytes_uplink\": " << naive_uplink
        << ", \"bytes_downlink\": " << naive_downlink
        << ", \"runs\": " << ticks << "},\n";
    out << "  \"uplink_savings\": " << Fmt("%.4f", uplink_savings) << ",\n";
    out << "  \"downlink_savings\": " << Fmt("%.4f", downlink_savings)
        << ",\n";
    out << "  \"batch_stage_stats\": "
        << dbdc::bench::StageStatsJson(last_batch.stage_stats) << ",\n";
    out << "  \"metrics\": " << metrics.Json() << "\n";
    out << "}\n";
    std::printf("wrote %s\n", options.out_path.c_str());
  }
  return 0;
}
