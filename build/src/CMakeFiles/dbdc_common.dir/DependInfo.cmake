
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bounding_box.cc" "src/CMakeFiles/dbdc_common.dir/common/bounding_box.cc.o" "gcc" "src/CMakeFiles/dbdc_common.dir/common/bounding_box.cc.o.d"
  "/root/repo/src/common/dataset.cc" "src/CMakeFiles/dbdc_common.dir/common/dataset.cc.o" "gcc" "src/CMakeFiles/dbdc_common.dir/common/dataset.cc.o.d"
  "/root/repo/src/common/distance.cc" "src/CMakeFiles/dbdc_common.dir/common/distance.cc.o" "gcc" "src/CMakeFiles/dbdc_common.dir/common/distance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
