file(REMOVE_RECURSE
  "libdbdc_distrib.a"
)
