# Empty compiler generated dependencies file for quality_bruteforce_test.
# This may be replaced when dependencies are built.
