#ifndef DBDC_DATA_GENERATORS_H_
#define DBDC_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/dbscan.h"
#include "common/dataset.h"
#include "common/rng.h"

namespace dbdc {

/// A synthetic dataset together with its generating ground truth and the
/// DBSCAN parameters calibrated for it.
struct SyntheticDataset {
  std::string name;
  Dataset data = Dataset(2);
  /// Generating component per point; kNoise for background noise. This is
  /// the *generator's* truth, used for sanity checks — the quality
  /// criteria of the paper compare against a central DBSCAN run instead.
  std::vector<ClusterId> true_labels;
  /// Eps_local / MinPts calibrated so central DBSCAN recovers the
  /// generated structure.
  DbscanParams suggested_params;
  int num_components = 0;
};

/// A Gaussian blob specification.
struct BlobSpec {
  Point center;
  double stddev = 1.0;
  std::size_t count = 0;
};

/// Appends `spec.count` Gaussian-distributed points around spec.center.
void AppendBlob(const BlobSpec& spec, ClusterId label, Rng* rng,
                Dataset* data, std::vector<ClusterId>* labels);

/// Appends uniform background noise over the box [lo, hi]^dim.
void AppendUniformNoise(std::size_t count, double lo, double hi, Rng* rng,
                        Dataset* data, std::vector<ClusterId>* labels);

/// Appends a ring (annulus) of points — a non-globular shape k-means
/// cannot capture but DBSCAN can (the paper's Sec. 4 motivation).
void AppendRing(const Point& center, double radius, double thickness,
                std::size_t count, ClusterId label, Rng* rng, Dataset* data,
                std::vector<ClusterId>* labels);

/// General blob generator: `num_blobs` Gaussian clusters with centers on a
/// jittered grid over [0,region]^2 (guaranteed separation), plus
/// `noise_fraction` uniform noise over the same square. Total point count
/// is `n`. Smaller regions move the clusters closer together, which is
/// what makes an over-sized Eps_global erroneously merge clusters
/// (Fig. 9's quality drop-off).
SyntheticDataset MakeBlobs(std::size_t n, int num_blobs,
                           double noise_fraction, double stddev_lo,
                           double stddev_hi, std::uint64_t seed,
                           double region = 100.0);

/// Paper test data set A (Fig. 6a): 8700 points, randomly generated
/// clusters of varying size and extent plus light background noise.
SyntheticDataset MakeTestDatasetA(std::uint64_t seed = 1);

/// Paper test data set B (Fig. 6b): 4000 points, very noisy (~40 %
/// uniform background noise around a few clusters).
SyntheticDataset MakeTestDatasetB(std::uint64_t seed = 2);

/// Paper test data set C (Fig. 6c): 1021 points in 3 clusters.
SyntheticDataset MakeTestDatasetC(std::uint64_t seed = 3);

/// Dataset-A-style generator at arbitrary cardinality, used by the
/// runtime experiments (Figs. 7 and 8): the spatial region stays fixed
/// while n grows, so neighborhood sizes — and central DBSCAN's cost —
/// grow with n exactly as in the paper's setup.
SyntheticDataset MakeScaledDataset(std::size_t n, std::uint64_t seed = 7);

/// Moderate/high-dimensional unit-σ Gaussian blobs with uniform-random
/// centers in [0,100]^dim plus `noise_fraction` uniform background noise —
/// the 10⁶–10⁷-point regime the approximate index targets (bench_approx).
/// This is the workload where every *exact* index degrades: the grid
/// must scan ~3^dim cells per ε-query, metric trees lose their pruning to
/// distance concentration, and the k-d tree cannot prune inside a blob
/// once eps spans it — while random projections keep candidate sets near
/// one blob.
///
/// suggested_params is calibrated for the dimension: eps is the distance
/// within which ~5 % of a blob's own points fall (Wilson–Hilferty
/// approximation of the χ²_dim quantile — in high dimensions "2σ" holds
/// almost no neighbors), so clusters recover and the far-flung noise
/// stays noise for any n where n/num_blobs ≳ 200.
SyntheticDataset MakeHighDimBlobs(std::size_t n, int dim, int num_blobs,
                                  double noise_fraction, std::uint64_t seed);

}  // namespace dbdc

#endif  // DBDC_DATA_GENERATORS_H_
