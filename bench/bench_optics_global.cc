// Ablation (DESIGN.md / paper Sec. 6): the paper mentions OPTICS as an
// alternative way to build the global model — one cluster-ordering of
// the representatives supports extracting the global clustering for
// *any* Eps_global without re-running. This bench quantifies the trade:
// exploring k Eps_global candidates costs one OPTICS run + k cheap
// extractions versus k full DBSCAN runs, with identical cluster counts.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/dbdc.h"
#include "distrib/network.h"
#include "core/model_codec.h"
#include "core/optics_global.h"
#include "data/generators.h"

namespace dbdc {
namespace {

constexpr int kSites = 4;
const std::vector<double> kFactors = {1.0, 1.25, 1.5, 1.75, 2.0, 2.25,
                                      2.5, 3.0, 3.5, 4.0};

struct Results {
  double dbscan_total_s = 0.0;
  double optics_build_s = 0.0;
  double optics_extract_total_s = 0.0;
  std::vector<int> dbscan_clusters;
  std::vector<int> optics_clusters;
  std::size_t reps = 0;
};

Results& R() {
  static auto* results = new Results();
  return *results;
}

std::vector<LocalModel> CollectLocalModels() {
  const SyntheticDataset synth = MakeTestDatasetA();
  DbdcConfig config = bench::MakeDbdcConfig(synth, kSites);
  // Run the local phase once via the driver, then pull the models back
  // out of a server fed by a fresh run. Simpler: rebuild sites manually.
  SimulatedNetwork network;
  (void)RunDbdc(synth.data, Euclidean(), config, &network);
  std::vector<LocalModel> locals;
  for (const NetworkMessage* msg : network.Inbox(kServerEndpoint)) {
    auto model = DecodeLocalModel(msg->payload);
    if (model.has_value()) locals.push_back(*std::move(model));
  }
  return locals;
}

void BM_RepeatedDbscan(benchmark::State& state) {
  const std::vector<LocalModel> locals = CollectLocalModels();
  const double eps_local = MakeTestDatasetA().suggested_params.eps;
  for (auto _ : state) {
    Timer timer;
    R().dbscan_clusters.clear();
    for (const double f : kFactors) {
      GlobalModelParams params;
      params.eps_global = f * eps_local;
      const GlobalModel global =
          BuildGlobalModel(locals, Euclidean(), params);
      R().dbscan_clusters.push_back(global.num_global_clusters);
    }
    R().dbscan_total_s = timer.Seconds();
    state.counters["total_s"] = R().dbscan_total_s;
  }
}

void BM_OpticsOnceExtractMany(benchmark::State& state) {
  const std::vector<LocalModel> locals = CollectLocalModels();
  const double eps_local = MakeTestDatasetA().suggested_params.eps;
  for (auto _ : state) {
    Timer build_timer;
    const OpticsGlobalModelBuilder builder(locals, Euclidean(),
                                           /*max_eps_global=*/5 * eps_local);
    R().optics_build_s = build_timer.Seconds();
    R().reps = builder.num_representatives();
    Timer extract_timer;
    R().optics_clusters.clear();
    for (const double f : kFactors) {
      const GlobalModel global = builder.Extract(f * eps_local);
      R().optics_clusters.push_back(global.num_global_clusters);
    }
    R().optics_extract_total_s = extract_timer.Seconds();
    state.counters["build_s"] = R().optics_build_s;
    state.counters["extract_total_s"] = R().optics_extract_total_s;
  }
}

void RegisterAll() {
  benchmark::RegisterBenchmark("global_model_repeated_dbscan",
                               BM_RepeatedDbscan)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("global_model_optics_extract",
                               BM_OpticsOnceExtractMany)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void PrintPaperTables() {
  bench::Table table(
      "Sec. 6 alternative — exploring Eps_global: repeated DBSCAN vs one "
      "OPTICS ordering (data set A, 4 sites)");
  table.SetHeader({"Eps_global/Eps_local", "clusters (DBSCAN)",
                   "clusters (OPTICS extract)"});
  for (std::size_t i = 0; i < kFactors.size(); ++i) {
    table.AddRow(
        {bench::Fmt("%.2f", kFactors[i]),
         bench::Fmt("%d", i < R().dbscan_clusters.size()
                              ? R().dbscan_clusters[i]
                              : -1),
         bench::Fmt("%d", i < R().optics_clusters.size()
                              ? R().optics_clusters[i]
                              : -1)});
  }
  table.Print();
  std::printf("%zu representatives; %zu candidate Eps_global values.\n",
              R().reps, kFactors.size());
  std::printf("repeated DBSCAN: %.4fs total; OPTICS: %.4fs build + %.4fs "
              "for all extractions (%.1fx cheaper per additional "
              "candidate)\n",
              R().dbscan_total_s, R().optics_build_s,
              R().optics_extract_total_s,
              (R().dbscan_total_s / kFactors.size()) /
                  (R().optics_extract_total_s / kFactors.size()));
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
