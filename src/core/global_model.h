#ifndef DBDC_CORE_GLOBAL_MODEL_H_
#define DBDC_CORE_GLOBAL_MODEL_H_

#include <span>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "core/local_model.h"
#include "index/index_factory.h"

namespace dbdc {

/// Parameters for the server-side clustering of the representatives
/// (Sec. 6). With eps_global == 0 the paper's default is used: the
/// maximum ε_R over all transmitted representatives, which is "generally
/// close to 2·Eps_local". MinPts_global is 2 because every representative
/// already stands for a cluster of its own.
struct GlobalModelParams {
  double eps_global = 0.0;  // 0 = default: max ε_R of all representatives.
  int min_pts_global = 2;
  IndexType index_type = IndexType::kLinearScan;
  /// Tuning for index_type == kApprox; ignored by the exact indices.
  ApproxIndexOptions approx;
  /// Extension beyond the EDBT'04 scheme: when > 0, the server-side core
  /// condition counts represented *objects* instead of representatives —
  /// a representative is core iff the weights of the representatives in
  /// its Eps_global-neighborhood (itself included) sum to at least
  /// `min_weight_global`. Suppresses merges through lightweight
  /// representatives of tiny spurious local clusters. 0 (default)
  /// selects the paper's unweighted MinPts_global = 2 condition.
  std::uint32_t min_weight_global = 0;
  /// Worker threads for the server-side DBSCAN over the representatives
  /// (1 = sequential, 0 = hardware concurrency; results are identical for
  /// every value). The weighted-core path stays sequential — the
  /// representative sets it handles are small.
  int num_threads = 1;
};

/// The global model the server broadcasts back: every local
/// representative annotated with its global cluster id. Representatives
/// that DBSCAN left unmerged keep a singleton global cluster — "the
/// merged local representatives together with the unmerged local
/// representatives form the global model".
struct GlobalModel {
  /// All representatives of all sites, concatenated.
  Dataset rep_points = Dataset(1);
  std::vector<double> rep_eps;
  std::vector<std::uint32_t> rep_weight;
  std::vector<ClusterId> rep_global_cluster;
  /// Origin bookkeeping (diagnostics; not needed for relabeling).
  std::vector<int> rep_site;
  std::vector<ClusterId> rep_local_cluster;
  int num_global_clusters = 0;
  /// The eps_global value actually used (after applying the default).
  double eps_global_used = 0.0;

  std::size_t NumRepresentatives() const { return rep_eps.size(); }
};

/// The paper's default Eps_global: the maximum ε_R over all
/// representatives of all local models (Sec. 6). Returns 0 when there are
/// no representatives.
double DefaultEpsGlobal(std::span<const LocalModel> locals);

/// Merges the local models into the global model: DBSCAN over the
/// representative points with (eps_global, min_pts_global); noise
/// representatives become singleton global clusters.
GlobalModel BuildGlobalModel(std::span<const LocalModel> locals,
                             const Metric& metric,
                             const GlobalModelParams& params);

/// Strategy interface for the engine's MergeGlobal stage: how the server
/// turns the collected local models into the global model. The paper's
/// DBSCAN merge (Sec. 6) and the OPTICS-global variant are the stock
/// implementations. Build must be deterministic and const; one strategy
/// instance may serve many runs.
class GlobalModelStrategy {
 public:
  virtual ~GlobalModelStrategy() = default;

  virtual GlobalModel Build(std::span<const LocalModel> locals,
                            const Metric& metric,
                            const GlobalModelParams& params) const = 0;

  virtual std::string_view name() const = 0;
};

/// The paper's merge as a strategy — forwards to BuildGlobalModel.
class DbscanGlobalStrategy final : public GlobalModelStrategy {
 public:
  GlobalModel Build(std::span<const LocalModel> locals, const Metric& metric,
                    const GlobalModelParams& params) const override;
  std::string_view name() const override { return "dbscan_global"; }
};

}  // namespace dbdc

#endif  // DBDC_CORE_GLOBAL_MODEL_H_
