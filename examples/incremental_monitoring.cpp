// The paper motivates DBSCAN for the local sites partly because an
// incremental version exists [6]: a site whose data changes keeps its
// clustering current and only re-transmits its local model when the
// clustering changed considerably.
//
//   $ ./incremental_monitoring
//
// Simulates one sensor site over a day: detections stream in, stale ones
// expire, the clustering is maintained incrementally, and the site
// re-derives its local model only when the cluster count changes.

#include <cstdio>
#include <deque>

#include "cluster/incremental_dbscan.h"
#include "core/local_model.h"
#include "core/model_codec.h"
#include "data/generators.h"
#include "index/linear_scan_index.h"

int main() {
  using namespace dbdc;

  const DbscanParams params{1.0, 5};
  IncrementalDbscan clustering(params, Euclidean(), /*dim=*/2);
  Rng rng(99);

  // A sliding window of the freshest 600 detections.
  std::deque<PointId> window;
  constexpr std::size_t kWindow = 600;

  int last_cluster_count = -1;
  int transmissions = 0;
  std::size_t events = 0;

  // Over the "day", activity moves between three hot spots; a fourth
  // appears mid-day.
  for (int hour = 0; hour < 24; ++hour) {
    for (int e = 0; e < 100; ++e) {
      double cx, cy;
      const int spot = (hour < 12) ? static_cast<int>(rng.UniformInt(0, 2))
                                   : static_cast<int>(rng.UniformInt(0, 3));
      cx = 10.0 * spot;
      cy = 5.0 * (spot % 2);
      if (rng.UniformInt(0, 9) == 0) {  // 10% stray readings.
        cx = rng.Uniform(-5.0, 35.0);
        cy = rng.Uniform(-5.0, 10.0);
        window.push_back(
            clustering.Insert(Point{cx, cy}));
      } else {
        window.push_back(clustering.Insert(
            Point{rng.Gaussian(cx, 0.5), rng.Gaussian(cy, 0.5)}));
      }
      ++events;
      if (window.size() > kWindow) {
        clustering.Erase(window.front());
        window.pop_front();
      }
    }

    const Clustering snapshot = clustering.Snapshot();
    // Re-derive and "transmit" the local model only on structural change.
    if (snapshot.num_clusters != last_cluster_count) {
      last_cluster_count = snapshot.num_clusters;
      ++transmissions;
      // Rebuild a compact dataset of active points for model extraction.
      Dataset active(2);
      for (PointId p = 0;
           p < static_cast<PointId>(clustering.data().size()); ++p) {
        if (clustering.IsActive(p)) active.Add(clustering.data().point(p));
      }
      const LinearScanIndex index(active, Euclidean());
      const LocalClustering local = RunLocalDbscan(index, params);
      const LocalModel model =
          BuildScorModel(index, local, params, /*site_id=*/0);
      std::printf("hour %2d: %zu active, %d clusters -> transmit model "
                  "(%zu reps, %zu bytes)\n",
                  hour, clustering.size(), snapshot.num_clusters,
                  model.representatives.size(),
                  EncodeLocalModel(model).size());
    } else {
      std::printf("hour %2d: %zu active, %d clusters (unchanged, no "
                  "transmission)\n",
                  hour, clustering.size(), snapshot.num_clusters);
    }
  }

  std::printf("\nprocessed %zu insertions in total; transmitted %d local "
              "models instead of %d hourly snapshots\n",
              events, transmissions, 24);
  return 0;
}
