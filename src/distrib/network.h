#ifndef DBDC_DISTRIB_NETWORK_H_
#define DBDC_DISTRIB_NETWORK_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "distrib/transport.h"

namespace dbdc {

/// In-process stand-in for the wide-area links between sites and server:
/// a perfect lossless recorder (every Send is delivered, unmodified).
///
/// DBDC's efficiency claim rests on transmitting only the local models
/// instead of the raw data; this class makes that cost observable: every
/// model crosses it as real serialized bytes, and byte counters plus an
/// optional bandwidth/latency model translate them into transfer-time
/// estimates.
///
/// Storage is deque-backed so recorded messages never move: pointers
/// returned by Inbox() (and references from Message()/messages()) stay
/// valid across later Send() calls, as the Transport contract requires.
class SimulatedNetwork : public Transport {
 public:
  SimulatedNetwork() = default;

  /// Legacy spelling of the free dbdc::LinkModel (pre-Transport API).
  using LinkModel = ::dbdc::LinkModel;

  /// Delivers `payload` from `from` to `to`, recording it. Returns the
  /// message index (never kMessageDropped: this transport is lossless).
  std::size_t Send(EndpointId from, EndpointId to,
                   std::vector<std::uint8_t> payload) override;

  /// Messages received by `endpoint`, in arrival order. Pointers stay
  /// valid until Clear().
  std::vector<const NetworkMessage*> Inbox(EndpointId endpoint) const override;

  std::size_t NumMessages() const override { return messages_.size(); }
  const NetworkMessage& Message(std::size_t index) const override {
    return messages_[index];
  }

  /// All recorded messages in send order.
  const std::deque<NetworkMessage>& messages() const { return messages_; }

  /// Total bytes sent from sites to the server (local models).
  std::uint64_t BytesUplink() const override;
  /// Total bytes sent from the server to sites (global model broadcast).
  std::uint64_t BytesDownlink() const override;
  std::uint64_t BytesTotal() const override;

  /// Transfer-time estimate for a payload of `bytes` under `link`
  /// (forwards to the free dbdc::EstimateTransferSeconds).
  static double EstimateTransferSeconds(std::uint64_t bytes,
                                        const LinkModel& link) {
    return ::dbdc::EstimateTransferSeconds(bytes, link);
  }

  void Clear() override { messages_.clear(); }

 private:
  std::deque<NetworkMessage> messages_;
};

}  // namespace dbdc

#endif  // DBDC_DISTRIB_NETWORK_H_
