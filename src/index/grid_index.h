#ifndef DBDC_INDEX_GRID_INDEX_H_
#define DBDC_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/simd_kernels.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// Uniform in-memory grid index.
///
/// Points are hashed into hypercubic cells of side `cell_width` (typically
/// the DBSCAN ε). A range query of radius r inspects the cells overlapping
/// the axis-aligned box [q-r, q+r]; this is correct for any metric whose
/// distance dominates every per-axis coordinate difference (all Lp metrics).
/// For the low-dimensional workloads of the paper this gives expected
/// O(neighborhood) range queries. Supports dynamic updates.
class GridIndex final : public NeighborIndex {
 public:
  /// Indexes every point of `data` (index_all=false starts empty).
  /// `cell_width` must be positive.
  GridIndex(const Dataset& data, const Metric& metric, double cell_width,
            bool index_all = true);

  void RangeQuery(std::span<const double> q, double eps,
                  std::vector<PointId>* out) const override;
  using NeighborIndex::RangeQuery;
  /// Batched override: reuses one set of cell-coordinate scratch vectors
  /// across the block and flushes candidate/kernel accounting to the
  /// registry once, instead of per query.
  void BatchRangeQuery(std::span<const PointId> queries, double eps,
                       std::vector<PointId>* out_ids,
                       std::vector<std::size_t>* out_counts) const override;
  void KnnQuery(std::span<const double> q, int k,
                std::vector<PointId>* out) const override;
  std::size_t size() const override { return count_; }
  bool SupportsDynamicUpdates() const override { return true; }
  void Insert(PointId id) override;
  void Erase(PointId id) override;
  std::string_view name() const override { return "grid"; }
  const Dataset& data() const override { return *data_; }
  const Metric& metric() const override { return *metric_; }

  double cell_width() const { return cell_width_; }

 private:
  using CellKey = std::uint64_t;

  CellKey KeyFor(std::span<const double> p) const;
  void CellCoords(std::span<const double> p, std::vector<std::int64_t>* c) const;
  CellKey HashCoords(const std::vector<std::int64_t>& c) const;

  /// One range query's cell-box scan, appending hits to *out without
  /// clearing it. Cell-coordinate scratch is caller-provided so batched
  /// queries reuse the allocations; candidate and kernel accounting
  /// accumulate into *examined / *kstats for a single registry flush.
  void ScanCells(std::span<const double> q, double eps,
                 std::vector<std::int64_t>* lo, std::vector<std::int64_t>* hi,
                 std::vector<std::int64_t>* cur, std::uint64_t* examined,
                 simd::KernelStats* kstats, std::vector<PointId>* out) const;

  const Dataset* data_;
  const Metric* metric_;
  /// Detected at construction: range queries then filter candidates by
  /// squared distance against eps² (no virtual call, no sqrt).
  bool euclidean_;
  double cell_width_;
  // Hashed cell -> ids. Hash collisions between distinct cells are
  // tolerated: queries re-check true distances, so collisions only cost
  // extra candidate checks.
  std::unordered_map<CellKey, std::vector<PointId>> cells_;
  std::size_t count_ = 0;
};

}  // namespace dbdc

#endif  // DBDC_INDEX_GRID_INDEX_H_
