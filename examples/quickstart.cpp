// Quickstart: cluster a distributed point set with DBDC and compare the
// result against a central DBSCAN run.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: generate data, configure a
// DBDC run, inspect the per-phase costs and the transmission savings,
// and score the result with the paper's quality criteria.

#include <cstdio>

#include "core/dbdc.h"
#include "distrib/network.h"
#include "core/model_codec.h"
#include "data/generators.h"
#include "eval/diagnostics.h"
#include "eval/quality.h"
#include "eval/silhouette.h"

int main() {
  using namespace dbdc;

  // 1. A workload: the paper's test data set A (8700 points, 13 random
  //    clusters plus noise). Any Dataset works here.
  const SyntheticDataset synth = MakeTestDatasetA();
  std::printf("workload: data set %s, %zu points, dim %d\n",
              synth.name.c_str(), synth.data.size(), synth.data.dim());

  // 2. The central reference: plain DBSCAN over all data on one machine.
  const CentralDbscanResult central_run =
      RunCentralDbscan(synth.data, Euclidean(), synth.suggested_params,
                       IndexType::kGrid);
  const Clustering& central = central_run.clustering;
  std::printf("central DBSCAN: %d clusters, %zu noise points, %.3f s\n",
              central.num_clusters, central.CountNoise(),
              central_run.seconds);

  // 3. DBDC: the data lives on 4 independent sites; only the local models
  //    (representatives + eps-ranges) travel to the server.
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;  // Eps_local, MinPts.
  config.model_type = LocalModelType::kScor;     // or kKMeans.
  config.num_sites = 4;
  config.eps_global = 0.0;  // 0 = paper default: max eps_R (~2*Eps_local).

  SimulatedNetwork network;
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config,
                                    &network);

  std::printf("\nDBDC(%s) over %d sites:\n",
              LocalModelTypeName(config.model_type).data(),
              config.num_sites);
  std::printf("  global clusters:      %d\n", result.num_global_clusters);
  std::printf("  representatives:      %zu (%.1f%% of the data)\n",
              result.num_representatives,
              100.0 * static_cast<double>(result.num_representatives) /
                  static_cast<double>(synth.data.size()));
  std::printf("  eps_global used:      %.3f (= %.2f x Eps_local)\n",
              result.eps_global_used,
              result.eps_global_used / config.local_dbscan.eps);
  std::printf("  overall runtime:      %.3f s (max local %.3f + global "
              "%.3f)\n",
              result.OverallSeconds(), result.max_local_seconds,
              result.global_seconds);
  std::printf("  speedup vs central:   %.1fx\n",
              central_run.seconds / result.OverallSeconds());

  // 4. Transmission cost: what actually crossed the (simulated) wire.
  const std::uint64_t raw_bytes =
      RawDatasetWireSize(synth.data.size(), synth.data.dim());
  std::printf("  uplink bytes:         %llu (raw data would be %llu -> "
              "%.1fx saving)\n",
              static_cast<unsigned long long>(result.bytes_uplink),
              static_cast<unsigned long long>(raw_bytes),
              static_cast<double>(raw_bytes) /
                  static_cast<double>(result.bytes_uplink));

  // 5. Quality: the paper's two criteria against the central reference.
  const double p1 = QualityP1(result.labels, central.labels,
                              config.local_dbscan.min_pts);
  const double p2 = QualityP2(result.labels, central.labels);
  std::printf("  quality P^I:          %.1f%%\n", 100.0 * p1);
  std::printf("  quality P^II:         %.1f%% (the finer criterion)\n",
              100.0 * p2);

  // 6. Where do the (few) differences come from? The structural report
  //    names the split/merged clusters and the noise exchange; the
  //    silhouette confirms both clusterings are internally sound.
  std::printf("\nstructural comparison vs central:\n%s",
              FormatDiagnostics(
                  DiagnoseClustering(result.labels, central.labels))
                  .c_str());
  std::printf("silhouette: DBDC %.3f vs central %.3f\n",
              SilhouetteCoefficient(synth.data, result.labels, Euclidean()),
              SilhouetteCoefficient(synth.data, central.labels, Euclidean()));
  return 0;
}
