#include "index/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace dbdc {
namespace {

// Splitmix-style integer mix for cell-coordinate hashing.
inline std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

}  // namespace

GridIndex::GridIndex(const Dataset& data, const Metric& metric,
                     double cell_width, bool index_all)
    : data_(&data),
      metric_(&metric),
      euclidean_(IsEuclideanMetric(metric)),
      cell_width_(cell_width) {
  DBDC_CHECK(cell_width > 0.0);
  if (index_all) {
    for (PointId id = 0; id < static_cast<PointId>(data.size()); ++id) {
      Insert(id);
    }
  }
}

void GridIndex::CellCoords(std::span<const double> p,
                           std::vector<std::int64_t>* c) const {
  c->resize(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    (*c)[i] = static_cast<std::int64_t>(std::floor(p[i] / cell_width_));
  }
}

GridIndex::CellKey GridIndex::HashCoords(
    const std::vector<std::int64_t>& c) const {
  std::uint64_t h = 0x51ed270b0a1f2c3dULL;
  for (const std::int64_t v : c) h = Mix(h, static_cast<std::uint64_t>(v));
  return h;
}

GridIndex::CellKey GridIndex::KeyFor(std::span<const double> p) const {
  std::vector<std::int64_t> c;
  CellCoords(p, &c);
  return HashCoords(c);
}

void GridIndex::RangeQuery(std::span<const double> q, double eps,
                           std::vector<PointId>* out) const {
  out->clear();
  DBDC_CHECK(static_cast<int>(q.size()) == data_->dim());
  const int dim = data_->dim();
  // Cell-coordinate box covering [q-eps, q+eps].
  std::vector<std::int64_t> lo(dim), hi(dim), cur(dim);
  for (int i = 0; i < dim; ++i) {
    lo[i] = static_cast<std::int64_t>(std::floor((q[i] - eps) / cell_width_));
    hi[i] = static_cast<std::int64_t>(std::floor((q[i] + eps) / cell_width_));
  }
  const double eps_sq = eps * eps;
  // Fast-path accounting is per cell (one add), never per point; pruned
  // candidates fall out arithmetically as examined - accepted.
  std::uint64_t examined = 0;
  cur = lo;
  while (true) {
    const auto it = cells_.find(HashCoords(cur));
    if (it != cells_.end()) {
      if (euclidean_) {
        examined += it->second.size();
        for (const PointId id : it->second) {
          if (SquaredEuclideanDistance(q, data_->point(id)) <= eps_sq) {
            out->push_back(id);
          }
        }
      } else {
        for (const PointId id : it->second) {
          if (metric_->Distance(q, data_->point(id)) <= eps) {
            out->push_back(id);
          }
        }
      }
    }
    // Odometer-style advance through the cell box.
    int axis = 0;
    while (axis < dim) {
      if (++cur[axis] <= hi[axis]) break;
      cur[axis] = lo[axis];
      ++axis;
    }
    if (axis == dim) break;
  }
  if (examined != 0) {
    if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
      metrics->Add(obs::Counter::kFastPathCandidates, examined);
      metrics->Add(obs::Counter::kFastPathPruned, examined - out->size());
    }
  }
}

void GridIndex::KnnQuery(std::span<const double> q, int k,
                         std::vector<PointId>* out) const {
  out->clear();
  if (k <= 0 || count_ == 0) return;
  const std::size_t want = std::min<std::size_t>(k, count_);
  // Expanding-radius search: the answer is exact once the k-th neighbor
  // lies within the scanned radius.
  double r = cell_width_;
  std::vector<PointId> candidates;
  for (;;) {
    RangeQuery(q, r, &candidates);
    if (candidates.size() >= want) {
      std::vector<std::pair<double, PointId>> scored;
      scored.reserve(candidates.size());
      for (const PointId id : candidates) {
        scored.emplace_back(metric_->Distance(q, data_->point(id)), id);
      }
      std::sort(scored.begin(), scored.end());
      if (scored[want - 1].first <= r) {
        for (std::size_t i = 0; i < want; ++i) out->push_back(scored[i].second);
        return;
      }
    }
    r *= 2.0;
    DBDC_CHECK(r < std::numeric_limits<double>::max() / 4.0);
  }
}

void GridIndex::Insert(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  cells_[KeyFor(data_->point(id))].push_back(id);
  ++count_;
}

void GridIndex::Erase(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  const auto it = cells_.find(KeyFor(data_->point(id)));
  DBDC_CHECK(it != cells_.end());
  auto& ids = it->second;
  const auto pos = std::find(ids.begin(), ids.end(), id);
  DBDC_CHECK(pos != ids.end());
  *pos = ids.back();
  ids.pop_back();
  if (ids.empty()) cells_.erase(it);
  --count_;
}

}  // namespace dbdc
