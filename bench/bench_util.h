#ifndef DBDC_BENCH_BENCH_UTIL_H_
#define DBDC_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace dbdc::bench {

/// Minimal fixed-width table printer for the paper-shaped result tables
/// every bench binary emits after its benchmark runs.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    PrintRow(header_, width);
    std::size_t total = header_.size() + 1;
    for (const std::size_t w : width) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) PrintRow(row, width);
    std::printf("\n");
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<std::size_t>& width) {
    std::printf("|");
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, ...) {
  char buffer[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

}  // namespace dbdc::bench

#endif  // DBDC_BENCH_BENCH_UTIL_H_
