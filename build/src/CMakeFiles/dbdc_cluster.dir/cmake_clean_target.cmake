file(REMOVE_RECURSE
  "libdbdc_cluster.a"
)
