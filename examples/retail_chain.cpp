// Scenario from the paper's introduction: a supermarket chain whose
// check-out scanners gather data at many stores of very different sizes.
// Head office wants customer segments over (spend, visit-recency)
// features without hauling every transaction into one warehouse.
//
//   $ ./retail_chain
//
// Demonstrates: size-skewed data placement, the REP_Scor vs REP_kMeans
// trade-off (model size is identical, quality and cost differ), and the
// per-phase/transmission accounting a capacity planner would look at.

#include <cstdio>

#include "core/dbdc.h"
#include "distrib/network.h"
#include "core/model_codec.h"
#include "data/generators.h"
#include "distrib/partitioner.h"
#include "eval/external_indices.h"
#include "eval/quality.h"

int main() {
  using namespace dbdc;

  // Customer segments: 6 behavioural clusters + diffuse one-off shoppers.
  const SyntheticDataset customers =
      MakeBlobs(/*n=*/30000, /*num_blobs=*/6, /*noise_fraction=*/0.2, 1.5,
                2.5, /*seed=*/7);
  const DbscanParams params{1.1, 12};

  // 10 stores; the flagship holds ~40% of all customers.
  const SizeSkewedPartitioner stores(/*ratio=*/0.6);
  const Clustering central = RunCentralDbscan(customers.data, Euclidean(),
                                              params, IndexType::kGrid).clustering;
  std::printf("chain-wide reference: %d segments over %zu customers\n\n",
              central.num_clusters, customers.data.size());

  for (const LocalModelType model :
       {LocalModelType::kScor, LocalModelType::kKMeans}) {
    DbdcConfig config;
    config.local_dbscan = params;
    config.model_type = model;
    config.num_sites = 10;
    config.partitioner = &stores;
    config.seed = 4711;

    SimulatedNetwork network;
    const DbdcResult result =
        RunDbdc(customers.data, Euclidean(), config, &network);

    std::printf("--- %s ---\n", LocalModelTypeName(model).data());
    std::printf("store sizes: ");
    for (const std::size_t s : result.site_sizes) std::printf("%zu ", s);
    std::printf("\nsegments found: %d, representatives: %zu\n",
                result.num_global_clusters, result.num_representatives);
    std::printf("runtime: %.3fs overall (slowest store %.3fs, head office "
                "%.3fs, relabel %.3fs)\n",
                result.OverallSeconds(), result.max_local_seconds,
                result.global_seconds, result.max_relabel_seconds);
    const std::uint64_t raw =
        RawDatasetWireSize(customers.data.size(), customers.data.dim());
    std::printf("uplink: %llu bytes (vs %llu raw -> %.0fx cheaper)\n",
                static_cast<unsigned long long>(result.bytes_uplink),
                static_cast<unsigned long long>(raw),
                static_cast<double>(raw) /
                    static_cast<double>(result.bytes_uplink));
    std::printf("quality: P^I %.1f%%, P^II %.1f%%, ARI %.3f\n\n",
                100.0 * QualityP1(result.labels, central.labels,
                                  params.min_pts),
                100.0 * QualityP2(result.labels, central.labels),
                AdjustedRandIndex(result.labels, central.labels));
  }

  std::printf("Head office can now ask any store: \"which of your "
              "customers belong to global segment 3?\" — each store "
              "answers locally from its relabeled data.\n");
  return 0;
}
