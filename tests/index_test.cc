#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "index/approx_index.h"
#include "index/grid_index.h"
#include "index/index_factory.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/m_tree.h"
#include "index/rstar_tree.h"
#include "index/vp_tree.h"
#include "test_util.h"

namespace dbdc {
namespace {

std::vector<PointId> Sorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Cross-validation of every index type against the linear scan, over all
// metrics and several dataset shapes.

using IndexCase = std::tuple<IndexType, const Metric*>;

class IndexEquivalenceTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  IndexType index_type() const { return std::get<0>(GetParam()); }
  const Metric& metric() const { return *std::get<1>(GetParam()); }
};

TEST_P(IndexEquivalenceTest, RangeQueryMatchesLinearScanOnRandomData) {
  Rng rng(11);
  const Dataset data = RandomDataset(400, 2, 0.0, 10.0, &rng);
  const LinearScanIndex truth(data, metric());
  const auto index = CreateIndex(index_type(), data, metric(), 0.7);
  ASSERT_EQ(index->size(), data.size());
  std::vector<PointId> got, want;
  for (int trial = 0; trial < 60; ++trial) {
    const Point q{rng.Uniform(-1.0, 11.0), rng.Uniform(-1.0, 11.0)};
    for (const double eps : {0.2, 0.7, 2.5}) {
      truth.RangeQuery(q, eps, &want);
      index->RangeQuery(q, eps, &got);
      EXPECT_EQ(Sorted(got), Sorted(want))
          << index->name() << " eps=" << eps;
    }
  }
}

TEST_P(IndexEquivalenceTest, RangeQueryMatchesOnClusteredData) {
  Rng rng(23);
  Dataset data(3);
  Point p(3);
  // Three tight 3-d blobs: stresses unbalanced trees.
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 120; ++i) {
      for (int d = 0; d < 3; ++d) p[d] = rng.Gaussian(b * 10.0, 0.5);
      data.Add(p);
    }
  }
  const LinearScanIndex truth(data, metric());
  const auto index = CreateIndex(index_type(), data, metric(), 1.0);
  std::vector<PointId> got, want;
  for (PointId q = 0; q < static_cast<PointId>(data.size()); q += 17) {
    truth.RangeQuery(q, 1.3, &want);
    index->RangeQuery(q, 1.3, &got);
    EXPECT_EQ(Sorted(got), Sorted(want));
  }
}

TEST_P(IndexEquivalenceTest, RangeQueryIsInclusiveAtExactDistance) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  data.Add(Point{3.0, 0.0});
  const auto index = CreateIndex(index_type(), data, metric(), 3.0);
  std::vector<PointId> out;
  index->RangeQuery(Point{0.0, 0.0}, 3.0, &out);
  EXPECT_EQ(Sorted(out), (std::vector<PointId>{0, 1}));
}

TEST_P(IndexEquivalenceTest, KnnMatchesLinearScan) {
  Rng rng(31);
  const Dataset data = RandomDataset(300, 2, 0.0, 10.0, &rng);
  const LinearScanIndex truth(data, metric());
  const auto index = CreateIndex(index_type(), data, metric(), 0.7);
  std::vector<PointId> got, want;
  for (int trial = 0; trial < 30; ++trial) {
    const Point q{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    for (const int k : {1, 5, 17}) {
      truth.KnnQuery(q, k, &want);
      index->KnnQuery(q, k, &got);
      ASSERT_EQ(got.size(), want.size());
      // Ties make exact id comparison fragile; compare distances.
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(metric().Distance(q, data.point(got[i])),
                    metric().Distance(q, data.point(want[i])), 1e-12);
      }
    }
  }
}

TEST_P(IndexEquivalenceTest, KnnWithKLargerThanDataset) {
  Rng rng(5);
  const Dataset data = RandomDataset(7, 2, 0.0, 1.0, &rng);
  const auto index = CreateIndex(index_type(), data, metric(), 0.5);
  std::vector<PointId> out;
  index->KnnQuery(Point{0.5, 0.5}, 100, &out);
  EXPECT_EQ(out.size(), 7u);
  index->KnnQuery(Point{0.5, 0.5}, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST_P(IndexEquivalenceTest, HandlesDuplicatePoints) {
  Dataset data(2);
  for (int i = 0; i < 40; ++i) data.Add(Point{1.0, 1.0});
  for (int i = 0; i < 40; ++i) data.Add(Point{5.0, 5.0});
  const auto index = CreateIndex(index_type(), data, metric(), 0.5);
  std::vector<PointId> out;
  index->RangeQuery(Point{1.0, 1.0}, 0.1, &out);
  EXPECT_EQ(out.size(), 40u);
  index->KnnQuery(Point{1.0, 1.0}, 50, &out);
  EXPECT_EQ(out.size(), 50u);
}

TEST_P(IndexEquivalenceTest, EmptyRegionReturnsNothing) {
  Rng rng(3);
  const Dataset data = RandomDataset(100, 2, 0.0, 1.0, &rng);
  const auto index = CreateIndex(index_type(), data, metric(), 0.2);
  std::vector<PointId> out{1, 2, 3};  // Must be cleared.
  index->RangeQuery(Point{100.0, 100.0}, 0.5, &out);
  EXPECT_TRUE(out.empty());
}

std::string IndexCaseName(
    const ::testing::TestParamInfo<IndexCase>& info) {
  return std::string(IndexTypeName(std::get<0>(info.param))) + "_" +
         std::string(std::get<1>(info.param)->name());
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexEquivalenceTest,
    ::testing::Combine(::testing::Values(IndexType::kLinearScan,
                                         IndexType::kGrid, IndexType::kKdTree,
                                         IndexType::kRStarTree,
                                         IndexType::kRStarTreeBulk,
                                         IndexType::kMTree,
                                         IndexType::kVpTree,
                                         IndexType::kApprox),
                       ::testing::Values(&Euclidean(), &Manhattan(),
                                         &Chebyshev())),
    IndexCaseName);

// ---------------------------------------------------------------------------
// Dynamic updates (linear, grid, R*).

class DynamicIndexTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(DynamicIndexTest, InsertEraseMatchesLinearTruth) {
  Rng rng(41);
  const Dataset data = RandomDataset(250, 2, 0.0, 10.0, &rng);
  LinearScanIndex truth(data, Euclidean(), /*index_all=*/false);
  // The factory always indexes everything; construct empty ones directly.
  std::unique_ptr<NeighborIndex> dynamic;
  switch (GetParam()) {
    case IndexType::kLinearScan:
      dynamic = std::make_unique<LinearScanIndex>(data, Euclidean(), false);
      break;
    case IndexType::kGrid:
      dynamic = std::make_unique<GridIndex>(data, Euclidean(), 0.8, false);
      break;
    case IndexType::kRStarTree:
      dynamic = std::make_unique<RStarTree>(data, Euclidean(), false);
      break;
    case IndexType::kApprox:
      dynamic = std::make_unique<ApproxIndex>(data, Euclidean(), 0.8,
                                              ApproxIndexOptions{}, false);
      break;
    default:
      FAIL() << "not a dynamic index";
  }
  ASSERT_TRUE(dynamic->SupportsDynamicUpdates());
  std::vector<PointId> present;
  std::vector<PointId> got, want;
  for (int step = 0; step < 500; ++step) {
    const bool do_insert =
        present.empty() || (present.size() < data.size() &&
                            rng.UniformInt(0, 2) != 0);
    if (do_insert) {
      PointId id;
      do {
        id = static_cast<PointId>(rng.UniformInt(0, data.size() - 1));
      } while (std::find(present.begin(), present.end(), id) !=
               present.end());
      present.push_back(id);
      dynamic->Insert(id);
      truth.Insert(id);
    } else {
      const std::size_t pos = rng.UniformInt(0, present.size() - 1);
      const PointId id = present[pos];
      present.erase(present.begin() + pos);
      dynamic->Erase(id);
      truth.Erase(id);
    }
    ASSERT_EQ(dynamic->size(), present.size());
    if (step % 25 == 0) {
      const Point q{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
      truth.RangeQuery(q, 1.5, &want);
      dynamic->RangeQuery(q, 1.5, &got);
      ASSERT_EQ(Sorted(got), Sorted(want)) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DynamicIndexes, DynamicIndexTest,
                         ::testing::Values(IndexType::kLinearScan,
                                           IndexType::kGrid,
                                           IndexType::kRStarTree,
                                           IndexType::kApprox),
                         [](const auto& info) {
                           return std::string(IndexTypeName(info.param));
                         });

// ---------------------------------------------------------------------------
// R*-tree structural invariants.

TEST(RStarTreeTest, InvariantsHoldDuringBulkInsert) {
  Rng rng(51);
  const Dataset data = RandomDataset(2000, 2, 0.0, 100.0, &rng);
  RStarTree tree(data, Euclidean(), /*index_all=*/false);
  for (PointId id = 0; id < static_cast<PointId>(data.size()); ++id) {
    tree.Insert(id);
    if (id % 157 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_GT(tree.height(), 1);
  EXPECT_EQ(tree.size(), data.size());
}

TEST(RStarTreeTest, InvariantsHoldDuringDrain) {
  Rng rng(52);
  const Dataset data = RandomDataset(800, 2, 0.0, 50.0, &rng);
  RStarTree tree(data, Euclidean());
  std::vector<PointId> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<PointId>(i);
  }
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (std::size_t i = 0; i < order.size(); ++i) {
    tree.Erase(order[i]);
    if (i % 61 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
}

TEST(RStarTreeTest, EraseKeepsRemainingPointsQueryable) {
  Rng rng(53);
  const Dataset data = RandomDataset(300, 2, 0.0, 10.0, &rng);
  RStarTree tree(data, Euclidean());
  LinearScanIndex truth(data, Euclidean());
  for (PointId id = 0; id < 150; ++id) {
    tree.Erase(id);
    truth.Erase(id);
  }
  std::vector<PointId> got, want;
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    truth.RangeQuery(q, 2.0, &want);
    tree.RangeQuery(q, 2.0, &got);
    EXPECT_EQ(Sorted(got), Sorted(want));
  }
}

TEST(RStarTreeTest, HighDimensionalData) {
  Rng rng(54);
  const Dataset data = RandomDataset(400, 6, 0.0, 1.0, &rng);
  RStarTree tree(data, Euclidean());
  tree.CheckInvariants();
  LinearScanIndex truth(data, Euclidean());
  std::vector<PointId> got, want;
  truth.RangeQuery(data.point(0), 0.5, &want);
  tree.RangeQuery(data.point(0), 0.5, &got);
  EXPECT_EQ(Sorted(got), Sorted(want));
}

// ---------------------------------------------------------------------------
// STR bulk loading.

TEST(RStarTreeBulkLoadTest, InvariantsAndQueriesMatchInsertedTree) {
  Rng rng(55);
  const Dataset data = RandomDataset(5000, 2, 0.0, 100.0, &rng);
  RStarTree bulk(data, Euclidean(), /*index_all=*/true,
                 RStarTree::Construction::kBulkLoadStr);
  bulk.CheckInvariants();
  EXPECT_EQ(bulk.size(), data.size());
  const RStarTree inserted(data, Euclidean());
  std::vector<PointId> got, want;
  for (int trial = 0; trial < 40; ++trial) {
    const Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    inserted.RangeQuery(q, 3.0, &want);
    bulk.RangeQuery(q, 3.0, &got);
    EXPECT_EQ(Sorted(got), Sorted(want));
  }
  // Bulk loading packs nodes tighter, so the tree is never taller.
  EXPECT_LE(bulk.height(), inserted.height());
}

TEST(RStarTreeBulkLoadTest, RemainsFullyDynamicAfterBulkLoad) {
  Rng rng(56);
  const Dataset data = RandomDataset(1200, 2, 0.0, 50.0, &rng);
  RStarTree bulk(data, Euclidean(), /*index_all=*/true,
                 RStarTree::Construction::kBulkLoadStr);
  LinearScanIndex truth(data, Euclidean());
  for (PointId id = 0; id < 600; ++id) {
    bulk.Erase(id);
    truth.Erase(id);
    if (id % 97 == 0) bulk.CheckInvariants();
  }
  for (PointId id = 0; id < 300; ++id) {
    bulk.Insert(id);
    truth.Insert(id);
  }
  bulk.CheckInvariants();
  std::vector<PointId> got, want;
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 50.0)};
    truth.RangeQuery(q, 2.5, &want);
    bulk.RangeQuery(q, 2.5, &got);
    EXPECT_EQ(Sorted(got), Sorted(want));
  }
}

class BulkLoadSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(BulkLoadSizeTest, InvariantsHoldAtAwkwardCardinalities) {
  // Cardinalities around node-capacity boundaries, where tiling produces
  // underfull trailing groups.
  Rng rng(57);
  const Dataset data =
      RandomDataset(GetParam(), 2, 0.0, 10.0, &rng);
  RStarTree bulk(data, Euclidean(), /*index_all=*/true,
                 RStarTree::Construction::kBulkLoadStr);
  bulk.CheckInvariants();
  EXPECT_EQ(bulk.size(), data.size());
  std::vector<PointId> out;
  bulk.RangeQuery(Point{5.0, 5.0}, 100.0, &out);
  EXPECT_EQ(out.size(), data.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadSizeTest,
                         ::testing::Values(1, 13, 32, 33, 64, 65, 1024,
                                           1025, 1057));

// ---------------------------------------------------------------------------
// M-tree invariants.

TEST(MTreeTest, CoveringRadiiBoundSubtrees) {
  Rng rng(61);
  const Dataset data = RandomDataset(1500, 2, 0.0, 100.0, &rng);
  const MTree tree(data, Euclidean());
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), data.size());
}

TEST(MTreeTest, WorksWithNonEuclideanMetric) {
  Rng rng(62);
  const Dataset data = RandomDataset(500, 4, -1.0, 1.0, &rng);
  const MTree tree(data, Manhattan());
  tree.CheckInvariants();
  const LinearScanIndex truth(data, Manhattan());
  std::vector<PointId> got, want;
  for (PointId q = 0; q < 50; ++q) {
    truth.RangeQuery(q, 0.8, &want);
    tree.RangeQuery(q, 0.8, &got);
    EXPECT_EQ(Sorted(got), Sorted(want));
  }
}

TEST(MTreeTest, AllIdenticalPoints) {
  Dataset data(2);
  for (int i = 0; i < 100; ++i) data.Add(Point{2.0, 2.0});
  const MTree tree(data, Euclidean());
  tree.CheckInvariants();
  std::vector<PointId> out;
  tree.RangeQuery(Point{2.0, 2.0}, 0.0, &out);
  EXPECT_EQ(out.size(), 100u);
}

// ---------------------------------------------------------------------------
// Grid index specifics.

TEST(GridIndexTest, NegativeCoordinatesBinCorrectly) {
  Dataset data(2);
  data.Add(Point{-0.1, -0.1});
  data.Add(Point{0.1, 0.1});
  const GridIndex grid(data, Euclidean(), 1.0);
  std::vector<PointId> out;
  grid.RangeQuery(Point{0.0, 0.0}, 0.2, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(GridIndexTest, QueryRadiusLargerThanCellWidth) {
  Rng rng(71);
  const Dataset data = RandomDataset(300, 2, 0.0, 10.0, &rng);
  const GridIndex grid(data, Euclidean(), 0.25);
  const LinearScanIndex truth(data, Euclidean());
  std::vector<PointId> got, want;
  truth.RangeQuery(Point{5.0, 5.0}, 4.0, &want);
  grid.RangeQuery(Point{5.0, 5.0}, 4.0, &got);
  EXPECT_EQ(Sorted(got), Sorted(want));
}

// ---------------------------------------------------------------------------
// Factory.

TEST(IndexFactoryTest, ParseAndNameRoundTrip) {
  for (const IndexType type :
       {IndexType::kLinearScan, IndexType::kGrid, IndexType::kKdTree,
        IndexType::kRStarTree, IndexType::kMTree, IndexType::kApprox}) {
    IndexType parsed;
    ASSERT_TRUE(ParseIndexType(IndexTypeName(type), &parsed));
    EXPECT_EQ(parsed, type);
  }
  IndexType parsed;
  EXPECT_FALSE(ParseIndexType("btree", &parsed));
}

TEST(IndexFactoryTest, CreatedIndexReportsItsName) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  const auto index =
      CreateIndex(IndexType::kRStarTree, data, Euclidean(), 1.0);
  EXPECT_EQ(index->name(), "rstar");
  EXPECT_EQ(&index->metric(), &Euclidean());
  EXPECT_EQ(&index->data(), &data);
}

}  // namespace
}  // namespace dbdc
