#include "viz/render.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <vector>

namespace dbdc {
namespace {

struct Bounds {
  double lo_x, hi_x, lo_y, hi_y;
};

Bounds ComputeBounds(const Dataset& data) {
  Bounds b{std::numeric_limits<double>::max(),
           std::numeric_limits<double>::lowest(),
           std::numeric_limits<double>::max(),
           std::numeric_limits<double>::lowest()};
  for (PointId p = 0; p < static_cast<PointId>(data.size()); ++p) {
    const auto pt = data.point(p);
    b.lo_x = std::min(b.lo_x, pt[0]);
    b.hi_x = std::max(b.hi_x, pt[0]);
    b.lo_y = std::min(b.lo_y, pt[1]);
    b.hi_y = std::max(b.hi_y, pt[1]);
  }
  // Avoid zero-width ranges.
  if (b.hi_x <= b.lo_x) b.hi_x = b.lo_x + 1.0;
  if (b.hi_y <= b.lo_y) b.hi_y = b.lo_y + 1.0;
  return b;
}

/// A fixed, visually distinct color palette (cycled for many clusters).
constexpr unsigned char kPalette[][3] = {
    {230, 25, 75},   {60, 180, 75},   {0, 130, 200},  {245, 130, 48},
    {145, 30, 180},  {70, 240, 240},  {240, 50, 230}, {210, 245, 60},
    {250, 190, 212}, {0, 128, 128},   {220, 190, 255}, {170, 110, 40},
    {128, 0, 0},     {170, 255, 195}, {128, 128, 0},  {0, 0, 128},
};
constexpr int kPaletteSize = 16;

}  // namespace

std::string AsciiScatter(const Dataset& data,
                         std::span<const ClusterId> labels, int width,
                         int height) {
  DBDC_CHECK(data.dim() >= 2);
  DBDC_CHECK(width >= 2 && height >= 2);
  if (data.empty()) return std::string("(empty dataset)\n");
  const Bounds b = ComputeBounds(data);
  // Per cell: votes per label.
  std::vector<std::map<ClusterId, int>> cells(width * height);
  for (PointId p = 0; p < static_cast<PointId>(data.size()); ++p) {
    const auto pt = data.point(p);
    int cx = static_cast<int>((pt[0] - b.lo_x) / (b.hi_x - b.lo_x) *
                              (width - 1));
    int cy = static_cast<int>((pt[1] - b.lo_y) / (b.hi_y - b.lo_y) *
                              (height - 1));
    cx = std::clamp(cx, 0, width - 1);
    cy = std::clamp(cy, 0, height - 1);
    const ClusterId label =
        labels.empty() ? 0 : labels[static_cast<std::size_t>(p)];
    ++cells[cy * width + cx][label];
  }
  std::string out;
  out.reserve(static_cast<std::size_t>(height) * (width + 1));
  for (int y = height - 1; y >= 0; --y) {  // y axis points up.
    for (int x = 0; x < width; ++x) {
      const auto& votes = cells[y * width + x];
      if (votes.empty()) {
        out += ' ';
        continue;
      }
      ClusterId best = kNoise;
      int best_votes = -1;
      for (const auto& [label, count] : votes) {
        if (count > best_votes) {
          best_votes = count;
          best = label;
        }
      }
      if (best < 0) {
        out += '.';
      } else if (labels.empty()) {
        out += 'o';
      } else {
        out += static_cast<char>('a' + best % 26);
      }
    }
    out += '\n';
  }
  return out;
}

bool WriteScatterPpm(const std::string& path, const Dataset& data,
                     std::span<const ClusterId> labels, int width,
                     int height) {
  DBDC_CHECK(data.dim() >= 2);
  DBDC_CHECK(width >= 2 && height >= 2);
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;
  std::vector<unsigned char> pixels(
      static_cast<std::size_t>(width) * height * 3, 255);
  if (!data.empty()) {
    const Bounds b = ComputeBounds(data);
    for (PointId p = 0; p < static_cast<PointId>(data.size()); ++p) {
      const auto pt = data.point(p);
      int cx = static_cast<int>((pt[0] - b.lo_x) / (b.hi_x - b.lo_x) *
                                (width - 1));
      int cy = static_cast<int>((pt[1] - b.lo_y) / (b.hi_y - b.lo_y) *
                                (height - 1));
      cx = std::clamp(cx, 0, width - 1);
      cy = std::clamp(cy, 0, height - 1);
      const ClusterId label =
          labels.empty() ? 0 : labels[static_cast<std::size_t>(p)];
      unsigned char r = 160, g = 160, bch = 160;  // Noise: gray.
      if (label >= 0) {
        const auto& color = kPalette[label % kPaletteSize];
        r = color[0];
        g = color[1];
        bch = color[2];
      }
      // Image row 0 is the top; flip y.
      const std::size_t idx =
          (static_cast<std::size_t>(height - 1 - cy) * width + cx) * 3;
      pixels[idx] = r;
      pixels[idx + 1] = g;
      pixels[idx + 2] = bch;
    }
  }
  out << "P6\n" << width << " " << height << "\n255\n";
  // Audited byte-type pun: ostream::write takes char*, the pixel buffer
  // is unsigned char. Casting between the two byte types for I/O is
  // well-defined ([basic.lval] allows char access to any object) and the
  // only reinterpret_cast in the library; std::memcpy into a char buffer
  // would add a full-frame copy for no safety gain.
  // dbdc-lint: allow(no-reinterpret-cast)
  out.write(reinterpret_cast<const char*>(pixels.data()),
            static_cast<std::streamsize>(pixels.size()));
  return out.good();
}

std::string AsciiReachabilityPlot(const OpticsResult& optics, int width,
                                  int height) {
  DBDC_CHECK(width >= 2 && height >= 2);
  const std::size_t n = optics.ordering.size();
  if (n == 0) return std::string("(empty ordering)\n");
  // Subsample ordering positions to `width` columns.
  const std::size_t columns = std::min<std::size_t>(width, n);
  std::vector<double> value(columns, 0.0);
  double max_finite = 0.0;
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t pos = c * n / columns;
    value[c] = optics.reachability[optics.ordering[pos]];
    if (value[c] != OpticsResult::kUndefined) {
      max_finite = std::max(max_finite, value[c]);
    }
  }
  if (max_finite <= 0.0) max_finite = 1.0;
  std::string out;
  for (int row = height; row >= 1; --row) {
    const double threshold =
        max_finite * static_cast<double>(row) / static_cast<double>(height);
    for (std::size_t c = 0; c < columns; ++c) {
      const bool undefined = value[c] == OpticsResult::kUndefined;
      out += (undefined || value[c] >= threshold) ? '#' : ' ';
    }
    out += '\n';
  }
  out += std::string(columns, '-');
  out += '\n';
  return out;
}

}  // namespace dbdc
