// Seeded violation: DBDC_DCHECK guarding wire-facing logic. On codec /
// protocol / model-exchange paths the check would vanish in Release
// builds — exactly where corrupt bytes arrive. (The self-test lints this
// file as if it lived on a wire path.)
#include "common/check.h"

namespace dbdc {

void BadWireCheck(unsigned magic) {
  DBDC_DCHECK(magic == 0x4d4c4244u && "bad magic must abort everywhere");
}

}  // namespace dbdc
