file(REMOVE_RECURSE
  "CMakeFiles/dbdc_cli.dir/dbdc_cli.cpp.o"
  "CMakeFiles/dbdc_cli.dir/dbdc_cli.cpp.o.d"
  "dbdc_cli"
  "dbdc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
