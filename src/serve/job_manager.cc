#include "serve/job_manager.h"

#include <atomic>
#include <utility>

#include "cluster/param_estimation.h"
#include "common/check.h"
#include "common/distance.h"
#include "core/engine.h"
#include "core/optics_global.h"
#include "core/stage_stats.h"
#include "obs/scope.h"

namespace dbdc::serve {
namespace {

/// Clamps a requested thread count to the per-job ceiling (0 = no clamp).
int ClampThreads(int requested, int ceiling) {
  if (ceiling <= 0) return requested;
  // 0 means "hardware concurrency" downstream, which would dodge the
  // ceiling — pin it to the ceiling instead.
  if (requested <= 0 || requested > ceiling) return ceiling;
  return requested;
}

}  // namespace

/// All fields except `stages_done` are guarded by JobManager::mu_; the
/// stage counter is atomic so the executor can bump it mid-run without
/// taking the manager lock on the pipeline's hot path.
struct JobManager::Job {
  std::uint64_t id = 0;
  JobRequest request;
  std::atomic<int> stages_done{0};
  JobState state = JobState::kQueued;
  JobOutcome outcome;
  bool terminal = false;
};

JobManager::JobManager(const JobLimits& limits) : limits_(limits) {
  DBDC_CHECK(limits_.max_active >= 1);
  DBDC_CHECK(limits_.max_queued >= 0);
  executors_.reserve(static_cast<std::size_t>(limits_.max_active));
  for (int i = 0; i < limits_.max_active; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

JobManager::~JobManager() { Shutdown(); }

AdmitDecision JobManager::Submit(JobRequest request) {
  AdmitDecision decision;
  auto reject = [&decision](std::string field,
                            std::string message) -> AdmitDecision& {
    decision.accepted = false;
    decision.field = std::move(field);
    decision.message = std::move(message);
    return decision;
  };

  // Request-level limits first: they are cheap and independent of the
  // manager lock.
  if (request.data.size() == 0) {
    return reject("data.points", "dataset is empty");
  }
  if (request.data.size() > limits_.max_points) {
    return reject("data.points",
                  "dataset exceeds the server's max_points limit");
  }
  if (MetricByName(request.metric_name) == nullptr) {
    return reject("metric", "unknown metric name '" + request.metric_name +
                                "'");
  }
  if (request.config.num_sites > limits_.max_sites) {
    return reject("num_sites",
                  "num_sites exceeds the server's max_sites limit");
  }
  if (request.options.auto_params_k < 1) {
    return reject("options.auto_params_k", "must be >= 1");
  }
  if (request.options.auto_params &&
      request.data.size() <
          static_cast<std::size_t>(request.options.auto_params_k) + 1) {
    return reject("options.auto_params_k",
                  "dataset has fewer than k + 1 points; no k-th neighbor "
                  "distance to estimate from");
  }
  if (request.options.global_strategy == GlobalStrategyKind::kOptics &&
      request.config.min_weight_global != 0.0) {
    return reject("min_weight_global",
                  "the OPTICS global strategy does not support the "
                  "weighted-core extension; must be 0");
  }
  if (!request.options.auto_params) {
    // With auto_params the shipped (eps, min_pts) are placeholders and the
    // estimate is validated after it is computed, in the executor.
    const ConfigStatus status = request.config.Validate();
    if (!status.ok) return reject(status.field, status.message);
  } else {
    // Still validate everything that auto_params does not overwrite, by
    // validating with provisional legal local parameters.
    DbdcConfig probe = request.config;
    probe.local_dbscan.eps = 1.0;
    probe.local_dbscan.min_pts = 1;
    const ConfigStatus status = probe.Validate();
    if (!status.ok) return reject(status.field, status.message);
  }

  MutexLock lock(&mu_);
  if (shutdown_) {
    return reject("server.shutdown", "server is shutting down");
  }
  if (static_cast<int>(queue_.size()) >= limits_.max_queued) {
    return reject("server.queue",
                  "admission queue is full; retry after a job finishes");
  }

  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->request = std::move(request);
  decision.accepted = true;
  decision.job_id = job->id;
  decision.queue_depth = static_cast<int>(queue_.size());
  queue_.push_back(job.get());
  jobs_.emplace(job->id, std::move(job));
  work_cv_.NotifyOne();
  return decision;
}

JobProgress JobManager::Poll(std::uint64_t job_id) const {
  MutexLock lock(&mu_);
  const auto it = jobs_.find(job_id);
  DBDC_CHECK(it != jobs_.end() && "Poll() on a job id never admitted");
  JobProgress progress;
  progress.state = it->second->state;
  progress.stages_done = it->second->stages_done.load(std::memory_order_relaxed);
  return progress;
}

const JobOutcome& JobManager::Wait(std::uint64_t job_id) {
  MutexLock lock(&mu_);
  const auto it = jobs_.find(job_id);
  DBDC_CHECK(it != jobs_.end() && "Wait() on a job id never admitted");
  Job* job = it->second.get();
  while (!job->terminal) done_cv_.Wait(&mu_);
  return job->outcome;
}

void JobManager::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_ && executors_.empty()) return;
    shutdown_ = true;
    work_cv_.NotifyAll();
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
}

std::uint64_t JobManager::jobs_finished() const {
  MutexLock lock(&mu_);
  return finished_;
}

void JobManager::ExecutorLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !shutdown_) work_cv_.Wait(&mu_);
      // Admitted means promised: drain the queue even under shutdown.
      if (queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
      job->state = JobState::kRunning;
      ++active_;
    }
    RunJob(job);
    {
      MutexLock lock(&mu_);
      --active_;
      job->state = job->outcome.state;
      job->terminal = true;
      ++finished_;
      done_cv_.NotifyAll();
    }
  }
}

void JobManager::RunJob(Job* job) {
  // The isolation boundary: everything the pipeline reports on this
  // thread (and on ThreadPool workers it spawns) lands in this job's own
  // registry/tracer, so the snapshot TakeResult() embeds is exactly this
  // job's telemetry. Declared before the scope so the scope unwinds
  // first.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObsScope scope(&registry, &tracer);

  JobRequest& request = job->request;
  JobOutcome& outcome = job->outcome;
  const Metric* metric = MetricByName(request.metric_name);
  DBDC_CHECK(metric != nullptr && "admission validated the metric name");

  DbdcConfig config = request.config;
  config.partitioner = nullptr;        // Never travels; uniform random split.
  config.explicit_topology = nullptr;  // Never travels either.
  if (limits_.force_tree_fanout >= 2) {
    config.topology.kind = TopologyKind::kTree;
    config.topology.fanout = limits_.force_tree_fanout;
  }
  if (request.options.auto_params) {
    const ParamEstimate estimate = EstimateDbscanParamsChecked(
        request.data, *metric, request.options.auto_params_k);
    if (!estimate.ok()) {
      // A named failure beats the {0, 0} params Validate() would reject
      // below with a message blaming the wrong field.
      outcome.state = JobState::kFailed;
      outcome.field = "options.auto_params";
      outcome.message = std::string(
          ParamEstimationStatusMessage(estimate.status));
      return;
    }
    config.local_dbscan.eps = estimate.params.eps;
    config.local_dbscan.min_pts = estimate.params.min_pts;
  }
  config.num_threads = ClampThreads(config.num_threads,
                                    limits_.max_threads_per_job);
  config.local_dbscan.threads =
      ClampThreads(config.local_dbscan.threads, limits_.max_threads_per_job);
  outcome.params_used = config.local_dbscan;

  // Admission only validated what it could see; the auto-params estimate
  // (e.g. eps = 0 on a dataset of coincident points) is validated here.
  const ConfigStatus status = config.Validate();
  if (!status.ok) {
    outcome.state = JobState::kFailed;
    outcome.field = status.field;
    outcome.message = status.message;
    return;
  }

  // Private engine + private lossless SimulatedNetwork (network =
  // nullptr): the same execution a local RunDbdc performs, which is what
  // makes a remote job's labels and byte counters byte-identical to a
  // local run of the same request.
  DbdcEngine engine(request.data, *metric, config);
  const OpticsGlobalStrategy optics(config.optics.max_eps_global);
  if (request.options.global_strategy == GlobalStrategyKind::kOptics) {
    engine.SetGlobalModelStrategy(&optics);
  }

  // Stage by stage (not Run()) so sessions can stream per-stage progress.
  const auto bump = [job](int done) {
    job->stages_done.store(done, std::memory_order_relaxed);
  };
  engine.Partition();
  bump(1);
  engine.LocalCluster();
  bump(2);
  engine.BuildLocalModel();
  bump(3);
  engine.Transmit();
  bump(4);
  engine.MergeGlobal();
  bump(5);
  engine.Broadcast();
  bump(6);
  engine.Relabel();
  bump(kNumStages);

  outcome.result = engine.TakeResult();
  outcome.state = JobState::kDone;
}

}  // namespace dbdc::serve
