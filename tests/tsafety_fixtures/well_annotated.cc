// Positive control for the tsafety preset: the same shape as
// misannotated.cc but with every guarded access under a MutexLock and a
// DBDC_REQUIRES helper. This translation unit must compile clean under
// -Werror=thread-safety-analysis, proving the preset does not reject
// correctly annotated code.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbdc {

class Counter {
 public:
  void Increment() DBDC_EXCLUDES(mu_) {
    const MutexLock lock(&mu_);
    IncrementLocked();
  }

  int Read() const DBDC_EXCLUDES(mu_) {
    const MutexLock lock(&mu_);
    return value_;
  }

 private:
  void IncrementLocked() DBDC_REQUIRES(mu_) { ++value_; }

  mutable Mutex mu_;
  int value_ DBDC_GUARDED_BY(mu_) = 0;
};

int Drive() {
  Counter counter;
  counter.Increment();
  return counter.Read();
}

}  // namespace dbdc
