// Failure-injection and edge-case suite: corrupt payloads, degenerate
// datasets, extreme configurations. Nothing here may crash; recoverable
// failures must surface as nullopt/false.

#include <gtest/gtest.h>

#include <vector>

#include "core/dbdc.h"
#include "core/model_codec.h"
#include "data/generators.h"
#include "eval/quality.h"
#include "index/index_factory.h"
#include "test_util.h"

namespace dbdc {
namespace {

// ---------------------------------------------------------------------------
// Codec fuzzing.

class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, RandomByteFlipsNeverCrashTheDecoder) {
  LocalModel model;
  model.site_id = 1;
  model.dim = 2;
  model.num_local_clusters = 3;
  for (int i = 0; i < 20; ++i) {
    model.representatives.push_back(
        {{static_cast<double>(i), -static_cast<double>(i)}, 1.0 + i,
         static_cast<ClusterId>(i % 3)});
  }
  const std::vector<std::uint8_t> clean = EncodeLocalModel(model);
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> bytes = clean;
    const int flips = 1 + static_cast<int>(rng.UniformInt(0, 4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.UniformInt(0, bytes.size() - 1);
      bytes[pos] ^= static_cast<std::uint8_t>(rng.UniformInt(1, 255));
    }
    // Must not crash; if it decodes, the structure must be coherent.
    const auto decoded = DecodeLocalModel(bytes);
    if (decoded.has_value()) {
      EXPECT_GE(decoded->dim, 1);
      for (const Representative& rep : decoded->representatives) {
        EXPECT_EQ(static_cast<int>(rep.center.size()), decoded->dim);
      }
    }
  }
}

TEST_P(CodecFuzzTest, RandomGarbageIsRejected) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bytes(rng.UniformInt(0, 200));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    }
    // Garbage essentially never carries the magic; decoding must simply
    // return nullopt or a coherent value, never crash.
    (void)DecodeLocalModel(bytes);
    (void)DecodeGlobalModel(bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest, ::testing::Values(1u, 2u));

TEST(CodecFuzzTest, TruncationSweepOnGlobalModel) {
  GlobalModel model;
  model.rep_points = Dataset(3);
  for (int i = 0; i < 10; ++i) {
    model.rep_points.Add(Point{1.0 * i, 2.0 * i, 3.0 * i});
    model.rep_eps.push_back(1.0);
    model.rep_global_cluster.push_back(i % 2);
    model.rep_site.push_back(i);
    model.rep_local_cluster.push_back(0);
  }
  model.num_global_clusters = 2;
  model.eps_global_used = 1.0;
  const std::vector<std::uint8_t> bytes = EncodeGlobalModel(model);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        DecodeGlobalModel(std::span(bytes.data(), len)).has_value())
        << "truncation to " << len << " accepted";
  }
  EXPECT_TRUE(DecodeGlobalModel(bytes).has_value());
}

// ---------------------------------------------------------------------------
// Degenerate DBDC configurations.

TEST(DbdcEdgeCaseTest, MoreSitesThanPoints) {
  Dataset data(2);
  for (int i = 0; i < 5; ++i) {
    data.Add(Point{static_cast<double>(i), 0.0});
  }
  DbdcConfig config;
  config.local_dbscan = {1.5, 2};
  config.num_sites = 12;  // Most sites hold nothing.
  const DbdcResult result = RunDbdc(data, Euclidean(), config);
  EXPECT_EQ(result.labels.size(), 5u);
  EXPECT_EQ(result.site_sizes.size(), 12u);
}

TEST(DbdcEdgeCaseTest, EmptyDataset) {
  Dataset data(2);
  DbdcConfig config;
  config.local_dbscan = {1.0, 3};
  const DbdcResult result = RunDbdc(data, Euclidean(), config);
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.num_global_clusters, 0);
  EXPECT_EQ(result.num_representatives, 0u);
}

TEST(DbdcEdgeCaseTest, AllNoiseDataset) {
  Rng rng(1);
  const Dataset data = RandomDataset(100, 2, 0.0, 1000.0, &rng);
  DbdcConfig config;
  config.local_dbscan = {0.5, 5};
  const DbdcResult result = RunDbdc(data, Euclidean(), config);
  EXPECT_EQ(result.num_global_clusters, 0);
  for (const ClusterId label : result.labels) EXPECT_EQ(label, kNoise);
  // Nothing to transmit but the (tiny) empty models.
  EXPECT_LT(result.bytes_uplink, 200u);
}

TEST(DbdcEdgeCaseTest, SingleClusterSpanningAllSites) {
  Dataset data(2);
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    data.Add(Point{rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)});
  }
  DbdcConfig config;
  config.local_dbscan = {0.8, 5};
  config.num_sites = 8;
  const DbdcResult result = RunDbdc(data, Euclidean(), config);
  EXPECT_EQ(result.num_global_clusters, 1);
}

TEST(DbdcEdgeCaseTest, OneDimensionalData) {
  Dataset data(1);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) data.Add(Point{rng.Gaussian(0.0, 0.5)});
  for (int i = 0; i < 100; ++i) data.Add(Point{rng.Gaussian(50.0, 0.5)});
  DbdcConfig config;
  config.local_dbscan = {0.5, 4};
  config.num_sites = 3;
  const DbdcResult result = RunDbdc(data, Euclidean(), config);
  EXPECT_EQ(result.num_global_clusters, 2);
}

TEST(DbdcEdgeCaseTest, FiveDimensionalData) {
  Dataset data(5);
  Rng rng(4);
  Point p(5);
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 150; ++i) {
      for (int d = 0; d < 5; ++d) p[d] = rng.Gaussian(b * 20.0, 0.8);
      data.Add(p);
    }
  }
  DbdcConfig config;
  config.local_dbscan = {3.0, 5};
  config.num_sites = 3;
  config.index_type = IndexType::kRStarTreeBulk;
  const DbdcResult result = RunDbdc(data, Euclidean(), config);
  EXPECT_EQ(result.num_global_clusters, 3);
}

TEST(DbdcEdgeCaseTest, ManhattanMetricEndToEnd) {
  const SyntheticDataset synth = MakeTestDatasetC(5);
  const DbscanParams params{3.0, 5};
  const Clustering central = RunCentralDbscan(synth.data, Manhattan(),
                                              params, IndexType::kGrid).clustering;
  DbdcConfig config;
  config.local_dbscan = params;
  config.model_type = LocalModelType::kScor;  // Metric-safe model.
  config.index_type = IndexType::kMTree;      // Metric-generic index.
  const DbdcResult result = RunDbdc(synth.data, Manhattan(), config);
  EXPECT_GT(QualityP2(result.labels, central.labels), 0.9);
}

TEST(DbdcEdgeCaseTest, ParallelSitesMatchSequentialExactly) {
  const SyntheticDataset synth = MakeTestDatasetA(6);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 6;
  const DbdcResult sequential = RunDbdc(synth.data, Euclidean(), config);
  config.parallel_sites = true;
  const DbdcResult parallel = RunDbdc(synth.data, Euclidean(), config);
  EXPECT_EQ(sequential.labels, parallel.labels);
  EXPECT_EQ(sequential.num_representatives, parallel.num_representatives);
  EXPECT_EQ(sequential.bytes_uplink, parallel.bytes_uplink);
}

// ---------------------------------------------------------------------------
// Quality-measure properties on random labelings.

class QualityPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(QualityPropertyTest, SelfComparisonIsPerfectAndPermutationInvariant) {
  Rng rng(GetParam());
  std::vector<ClusterId> labels(300);
  for (auto& label : labels) {
    label = static_cast<ClusterId>(rng.UniformInt(-1, 5));
  }
  EXPECT_DOUBLE_EQ(QualityP1(labels, labels, 2), 1.0);
  EXPECT_DOUBLE_EQ(QualityP2(labels, labels), 1.0);
  // Renaming cluster ids changes nothing.
  std::vector<ClusterId> renamed(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    renamed[i] = labels[i] < 0 ? kNoise : 100 - labels[i];
  }
  EXPECT_DOUBLE_EQ(QualityP2(renamed, labels), 1.0);
  EXPECT_DOUBLE_EQ(QualityP1(renamed, labels, 3), 1.0);
}

TEST_P(QualityPropertyTest, BoundedAndP2NeverAboveP1WithQpOne) {
  Rng rng(GetParam() + 50);
  std::vector<ClusterId> a(200), b(200);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<ClusterId>(rng.UniformInt(-1, 3));
    b[i] = static_cast<ClusterId>(rng.UniformInt(-1, 3));
  }
  const double p2 = QualityP2(a, b);
  EXPECT_GE(p2, 0.0);
  EXPECT_LE(p2, 1.0);
  // With qp = 1, P^I counts any overlap as perfect, so it dominates the
  // Jaccard-based P^II.
  EXPECT_LE(p2, QualityP1(a, b, 1) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Index edge cases.

TEST(IndexEdgeCaseTest, ZeroRadiusRangeQueryFindsExactDuplicates) {
  Dataset data(2);
  data.Add(Point{1.0, 1.0});
  data.Add(Point{1.0, 1.0});
  data.Add(Point{1.0000001, 1.0});
  for (const IndexType type :
       {IndexType::kLinearScan, IndexType::kGrid, IndexType::kKdTree,
        IndexType::kRStarTree, IndexType::kMTree}) {
    const auto index = CreateIndex(type, data, Euclidean(), 1.0);
    std::vector<PointId> out;
    index->RangeQuery(Point{1.0, 1.0}, 0.0, &out);
    EXPECT_EQ(out.size(), 2u) << IndexTypeName(type);
  }
}

TEST(IndexEdgeCaseTest, HugeCoordinates) {
  Dataset data(2);
  data.Add(Point{1e12, -1e12});
  data.Add(Point{1e12 + 1.0, -1e12});
  data.Add(Point{-1e12, 1e12});
  for (const IndexType type :
       {IndexType::kLinearScan, IndexType::kGrid, IndexType::kKdTree,
        IndexType::kRStarTree, IndexType::kMTree}) {
    const auto index = CreateIndex(type, data, Euclidean(), 2.0);
    std::vector<PointId> out;
    index->RangeQuery(Point{1e12, -1e12}, 1.5, &out);
    EXPECT_EQ(out.size(), 2u) << IndexTypeName(type);
  }
}

}  // namespace
}  // namespace dbdc
