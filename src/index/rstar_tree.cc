#include "index/rstar_tree.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <tuple>

#include "obs/metrics.h"

namespace dbdc {

RStarTree::RStarTree(const Dataset& data, const Metric& metric,
                     bool index_all, Construction construction)
    : data_(&data),
      metric_(&metric),
      euclidean_(IsEuclideanMetric(metric)),
      root_(new Node(0)) {
  if (!index_all) return;
  if (construction == Construction::kBulkLoadStr && data.size() > 0) {
    BulkLoadStr();
    return;
  }
  for (PointId id = 0; id < static_cast<PointId>(data.size()); ++id) {
    Insert(id);
  }
}

void RStarTree::StrTile(std::vector<Entry>* entries, int axis,
                        std::vector<std::vector<Entry>>* groups) {
  const int dim = data_->dim();
  const std::size_t n = entries->size();
  auto center_key = [&](const Entry& e, int a) {
    return 0.5 * (e.box.lo()[a] + e.box.hi()[a]);
  };
  std::sort(entries->begin(), entries->end(),
            [&](const Entry& a, const Entry& b) {
              return center_key(a, axis) < center_key(b, axis);
            });
  if (axis == dim - 1 || n <= static_cast<std::size_t>(kMaxEntries)) {
    // Final axis: chunk the sorted run into full nodes.
    for (std::size_t begin = 0; begin < n; begin += kMaxEntries) {
      const std::size_t end = std::min(n, begin + kMaxEntries);
      groups->emplace_back(std::make_move_iterator(entries->begin() + begin),
                           std::make_move_iterator(entries->begin() + end));
    }
    // Rebalance an underfull trailing group against its predecessor so
    // the occupancy invariant (>= kMinEntries) holds everywhere.
    if (groups->size() >= 2 &&
        groups->back().size() < static_cast<std::size_t>(kMinEntries)) {
      std::vector<Entry>& prev = (*groups)[groups->size() - 2];
      std::vector<Entry>& last = groups->back();
      while (last.size() < static_cast<std::size_t>(kMinEntries)) {
        last.insert(last.begin(), std::move(prev.back()));
        prev.pop_back();
      }
    }
    return;
  }
  // Slice along this axis into about (n / M)^(1/(remaining axes)) slabs,
  // then recurse within each slab on the next axis.
  const double pages = std::ceil(static_cast<double>(n) / kMaxEntries);
  const int slabs = std::max(
      1, static_cast<int>(
             std::ceil(std::pow(pages, 1.0 / (dim - axis)))));
  const std::size_t per_slab = (n + slabs - 1) / slabs;
  for (std::size_t begin = 0; begin < n; begin += per_slab) {
    const std::size_t end = std::min(n, begin + per_slab);
    std::vector<Entry> slab(std::make_move_iterator(entries->begin() + begin),
                            std::make_move_iterator(entries->begin() + end));
    StrTile(&slab, axis + 1, groups);
  }
}

void RStarTree::BulkLoadStr() {
  DBDC_CHECK(count_ == 0 && root_->entries.empty());
  std::vector<Entry> entries;
  entries.reserve(data_->size());
  for (PointId id = 0; id < static_cast<PointId>(data_->size()); ++id) {
    entries.push_back(MakePointEntry(id));
  }
  int level = 0;
  while (entries.size() > static_cast<std::size_t>(kMaxEntries)) {
    std::vector<std::vector<Entry>> groups;
    StrTile(&entries, /*axis=*/0, &groups);
    // Safety net: tiling can leave an undersized group when a slice holds
    // fewer than kMinEntries entries; top it up from the largest group so
    // the occupancy invariant holds. (Rare; spatial quality of the stolen
    // entries is secondary to correctness.)
    for (std::vector<Entry>& group : groups) {
      while (group.size() < static_cast<std::size_t>(kMinEntries)) {
        std::vector<Entry>* largest = nullptr;
        for (std::vector<Entry>& other : groups) {
          if (&other == &group) continue;
          if (largest == nullptr || other.size() > largest->size()) {
            largest = &other;
          }
        }
        if (largest == nullptr ||
            largest->size() <= static_cast<std::size_t>(kMinEntries)) {
          break;
        }
        group.push_back(std::move(largest->back()));
        largest->pop_back();
      }
    }
    std::vector<Entry> parents;
    parents.reserve(groups.size());
    for (std::vector<Entry>& group : groups) {
      Node* node = new Node(level);
      node->entries = std::move(group);
      Entry parent;
      parent.box = NodeBox(*node);
      parent.child = node;
      parents.push_back(std::move(parent));
    }
    entries = std::move(parents);
    ++level;
  }
  delete root_;
  root_ = new Node(level);
  root_->entries = std::move(entries);
  height_ = level + 1;
  count_ = data_->size();
  reinserted_at_level_.assign(static_cast<std::size_t>(height_) + 1, false);
#if DBDC_DCHECK_IS_ON()
  // One O(n) structural pass per bulk load; incremental paths are covered
  // by the explicit CheckInvariants calls in the index tests.
  CheckInvariants();
#endif
}

RStarTree::~RStarTree() { FreeNode(root_); }

void RStarTree::FreeNode(Node* node) {
  for (Entry& e : node->entries) {
    if (e.child != nullptr) FreeNode(e.child);
  }
  delete node;
}

BoundingBox RStarTree::NodeBox(const Node& node) const {
  BoundingBox box(data_->dim());
  for (const Entry& e : node.entries) box.Extend(e.box);
  return box;
}

RStarTree::Entry RStarTree::MakePointEntry(PointId id) const {
  Entry e;
  e.box = BoundingBox::FromPoint(data_->point(id));
  e.id = id;
  return e;
}

std::size_t RStarTree::ChooseSubtree(const Node& node,
                                     const BoundingBox& box) const {
  DBDC_CHECK(!node.entries.empty());
  const bool children_are_leaves = node.level == 1;
  std::size_t best = 0;
  if (children_are_leaves) {
    // R*: minimize overlap enlargement; ties by area enlargement, then area.
    double best_overlap = std::numeric_limits<double>::max();
    double best_enlarge = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      BoundingBox grown = node.entries[i].box;
      grown.Extend(box);
      double overlap_before = 0.0;
      double overlap_after = 0.0;
      for (std::size_t j = 0; j < node.entries.size(); ++j) {
        if (j == i) continue;
        overlap_before += node.entries[i].box.OverlapVolume(node.entries[j].box);
        overlap_after += grown.OverlapVolume(node.entries[j].box);
      }
      const double overlap_enlarge = overlap_after - overlap_before;
      const double enlarge = node.entries[i].box.Enlargement(box);
      const double area = node.entries[i].box.Volume();
      if (overlap_enlarge < best_overlap ||
          (overlap_enlarge == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best_overlap = overlap_enlarge;
        best_enlarge = enlarge;
        best_area = area;
        best = i;
      }
    }
  } else {
    // Minimize area enlargement; ties by smaller area.
    double best_enlarge = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      const double enlarge = node.entries[i].box.Enlargement(box);
      const double area = node.entries[i].box.Volume();
      if (enlarge < best_enlarge ||
          (enlarge == best_enlarge && area < best_area)) {
        best_enlarge = enlarge;
        best_area = area;
        best = i;
      }
    }
  }
  return best;
}

void RStarTree::Insert(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  reinserted_at_level_.assign(height_ + 1, false);
  pending_.clear();
  pending_.emplace_back(MakePointEntry(id), 0);
  DrainPending();
  ++count_;
}

void RStarTree::DrainPending() {
  while (!pending_.empty()) {
    auto [entry, level] = std::move(pending_.back());
    pending_.pop_back();
    Node* sibling = InsertRecursive(root_, std::move(entry), level);
    if (sibling != nullptr) GrowRoot(sibling);
  }
}

RStarTree::Node* RStarTree::InsertRecursive(Node* node, Entry entry,
                                            int target_level) {
  if (node->level == target_level) {
    node->entries.push_back(std::move(entry));
  } else {
    const std::size_t idx = ChooseSubtree(*node, entry.box);
    Node* child = node->entries[idx].child;
    Node* sibling = InsertRecursive(child, std::move(entry), target_level);
    node->entries[idx].box = NodeBox(*child);
    if (sibling != nullptr) {
      Entry e;
      e.box = NodeBox(*sibling);
      e.child = sibling;
      node->entries.push_back(std::move(e));
    }
  }
  if (static_cast<int>(node->entries.size()) > kMaxEntries) {
    return OverflowTreatment(node);
  }
  return nullptr;
}

RStarTree::Node* RStarTree::OverflowTreatment(Node* node) {
  const int level = node->level;
  if (node != root_ && !reinserted_at_level_[level]) {
    reinserted_at_level_[level] = true;
    ForcedReinsert(node);
    return nullptr;
  }
  return SplitNode(node);
}

void RStarTree::ForcedReinsert(Node* node) {
  const BoundingBox box = NodeBox(*node);
  const std::vector<double> center = box.Center();
  // Sort entries by decreasing distance of their box center to the node
  // center and remove the farthest kReinsertCount ("far reinsert").
  std::vector<std::size_t> order(node->entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> dist(node->entries.size());
  for (std::size_t i = 0; i < node->entries.size(); ++i) {
    dist[i] = metric_->Distance(center, node->entries[i].box.Center());
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });
  std::vector<bool> removed(node->entries.size(), false);
  for (int i = 0; i < kReinsertCount; ++i) {
    const std::size_t idx = order[i];
    removed[idx] = true;
    pending_.emplace_back(std::move(node->entries[idx]), node->level);
  }
  std::vector<Entry> kept;
  kept.reserve(node->entries.size() - kReinsertCount);
  for (std::size_t i = 0; i < node->entries.size(); ++i) {
    if (!removed[i]) kept.push_back(std::move(node->entries[i]));
  }
  node->entries = std::move(kept);
}

RStarTree::Node* RStarTree::SplitNode(Node* node) {
  const int total = static_cast<int>(node->entries.size());
  DBDC_CHECK(total == kMaxEntries + 1);
  const int dim = data_->dim();
  const int num_dists = kMaxEntries - 2 * kMinEntries + 2;

  // ChooseSplitAxis: for every axis and both sortings (by lower and by
  // upper box edge) sum the margins of all legal distributions.
  auto sort_by = [&](int axis, bool by_upper) {
    std::vector<std::size_t> order(node->entries.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto& ba = node->entries[a].box;
      const auto& bb = node->entries[b].box;
      const double ka = by_upper ? ba.hi()[axis] : ba.lo()[axis];
      const double kb = by_upper ? bb.hi()[axis] : bb.lo()[axis];
      return ka < kb;
    });
    return order;
  };

  int best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::max();
  for (int axis = 0; axis < dim; ++axis) {
    double margin_sum = 0.0;
    for (const bool by_upper : {false, true}) {
      const std::vector<std::size_t> order = sort_by(axis, by_upper);
      // Prefix/suffix boxes over the sorted order.
      std::vector<BoundingBox> prefix(total, BoundingBox(dim));
      std::vector<BoundingBox> suffix(total, BoundingBox(dim));
      for (int i = 0; i < total; ++i) {
        prefix[i] = i == 0 ? BoundingBox(dim) : prefix[i - 1];
        prefix[i].Extend(node->entries[order[i]].box);
      }
      for (int i = total - 1; i >= 0; --i) {
        suffix[i] = i == total - 1 ? BoundingBox(dim) : suffix[i + 1];
        suffix[i].Extend(node->entries[order[i]].box);
      }
      for (int k = 0; k < num_dists; ++k) {
        const int first_count = kMinEntries + k;
        margin_sum += prefix[first_count - 1].Margin() +
                      suffix[first_count].Margin();
      }
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }

  // ChooseSplitIndex on the best axis: minimal overlap, ties minimal area.
  double best_overlap = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  std::vector<std::size_t> best_order;
  int best_first_count = kMinEntries;
  for (const bool by_upper : {false, true}) {
    const std::vector<std::size_t> order = sort_by(best_axis, by_upper);
    std::vector<BoundingBox> prefix(total, BoundingBox(dim));
    std::vector<BoundingBox> suffix(total, BoundingBox(dim));
    for (int i = 0; i < total; ++i) {
      prefix[i] = i == 0 ? BoundingBox(dim) : prefix[i - 1];
      prefix[i].Extend(node->entries[order[i]].box);
    }
    for (int i = total - 1; i >= 0; --i) {
      suffix[i] = i == total - 1 ? BoundingBox(dim) : suffix[i + 1];
      suffix[i].Extend(node->entries[order[i]].box);
    }
    for (int k = 0; k < num_dists; ++k) {
      const int first_count = kMinEntries + k;
      const BoundingBox& g1 = prefix[first_count - 1];
      const BoundingBox& g2 = suffix[first_count];
      const double overlap = g1.OverlapVolume(g2);
      const double area = g1.Volume() + g2.Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_order = order;
        best_first_count = first_count;
      }
    }
  }

  Node* sibling = new Node(node->level);
  std::vector<Entry> group1;
  group1.reserve(best_first_count);
  for (int i = 0; i < total; ++i) {
    Entry& e = node->entries[best_order[i]];
    if (i < best_first_count) {
      group1.push_back(std::move(e));
    } else {
      sibling->entries.push_back(std::move(e));
    }
  }
  node->entries = std::move(group1);
  return sibling;
}

void RStarTree::GrowRoot(Node* sibling) {
  Node* new_root = new Node(root_->level + 1);
  Entry e1;
  e1.box = NodeBox(*root_);
  e1.child = root_;
  Entry e2;
  e2.box = NodeBox(*sibling);
  e2.child = sibling;
  new_root->entries.push_back(std::move(e1));
  new_root->entries.push_back(std::move(e2));
  root_ = new_root;
  ++height_;
  reinserted_at_level_.resize(height_ + 1, false);
}

void RStarTree::Erase(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  pending_.clear();
  const bool found = EraseRecursive(root_, id, data_->point(id));
  DBDC_CHECK(found && "Erase of an id that is not indexed");
  // Shrink the root while it is an interior node with a single child.
  while (!root_->is_leaf() && root_->entries.size() == 1) {
    Node* child = root_->entries[0].child;
    root_->entries[0].child = nullptr;
    delete root_;
    root_ = child;
    --height_;
  }
  // Reinsert orphaned entries at their original levels. Forced reinsertion
  // is allowed to kick in again (fresh bookkeeping).
  reinserted_at_level_.assign(height_ + 1, false);
  DrainPending();
  --count_;
}

bool RStarTree::EraseRecursive(Node* node, PointId id,
                               std::span<const double> p) {
  if (node->is_leaf()) {
    for (std::size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == id) {
        node->entries.erase(node->entries.begin() + i);
        return true;
      }
    }
    return false;
  }
  for (std::size_t i = 0; i < node->entries.size(); ++i) {
    Entry& e = node->entries[i];
    if (!e.box.Contains(p)) continue;
    if (!EraseRecursive(e.child, id, p)) continue;
    // Found in this subtree. Condense: dissolve the child if underfull.
    if (static_cast<int>(e.child->entries.size()) < kMinEntries) {
      Node* child = e.child;
      for (Entry& orphan : child->entries) {
        pending_.emplace_back(std::move(orphan), child->level);
      }
      child->entries.clear();
      delete child;
      node->entries.erase(node->entries.begin() + i);
    } else {
      e.box = NodeBox(*e.child);
    }
    return true;
  }
  return false;
}

void RStarTree::RangeQuery(std::span<const double> q, double eps,
                           std::vector<PointId>* out) const {
  out->clear();
  if (euclidean_) {
    // Devirtualized fast path: leaf filtering and interior pruning both
    // compare squared distances against eps² (no virtual call, no sqrt).
    simd::KernelStats kstats;
    RangeRecursiveEuclidean(root_, q, eps * eps, &kstats, out);
    if (kstats.blocks_scored != 0) {
      if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
        metrics->Add(obs::Counter::kSimdBlocksScored, kstats.blocks_scored);
        metrics->Add(obs::Counter::kSimdCandidatesFiltered,
                     kstats.candidates_filtered);
      }
    }
    return;
  }
  RangeRecursive(root_, q, eps, out);
}

void RStarTree::RangeRecursive(const Node* node, std::span<const double> q,
                               double eps, std::vector<PointId>* out) const {
  if (node->is_leaf()) {
    for (const Entry& e : node->entries) {
      if (metric_->Distance(q, data_->point(e.id)) <= eps) {
        out->push_back(e.id);
      }
    }
    return;
  }
  for (const Entry& e : node->entries) {
    if (e.box.empty()) continue;
    if (metric_->MinDistanceToBox(q, e.box.lo(), e.box.hi()) <= eps) {
      RangeRecursive(e.child, q, eps, out);
    }
  }
}

void RStarTree::RangeRecursiveEuclidean(const Node* node,
                                        std::span<const double> q,
                                        double eps_sq,
                                        simd::KernelStats* kstats,
                                        std::vector<PointId>* out) const {
  if (node->is_leaf()) {
    if (simd::ReferenceScanEnabled()) {
      // Pre-batching scan: one inlined squared distance per leaf entry
      // (the bench baseline; no kernel blocks are accounted).
      const std::size_t dim = static_cast<std::size_t>(data_->dim());
      for (const Entry& e : node->entries) {
        if (simd::ReferenceSquaredL2(
                q.data(), data_->raw() + static_cast<std::size_t>(e.id) * dim,
                data_->dim()) <= eps_sq) {
          out->push_back(e.id);
        }
      }
      return;
    }
    // Gather the leaf's ids (entries hold non-contiguous rows) and score
    // them as one block through the batched kernel. Queries never run
    // mid-insert, so a leaf holds at most kMaxEntries entries.
    std::array<PointId, kMaxEntries> leaf_ids;
    const std::size_t count = node->entries.size();
    DBDC_CHECK(count <= leaf_ids.size());
    for (std::size_t i = 0; i < count; ++i) {
      leaf_ids[i] = node->entries[i].id;
    }
    simd::FilterIdsSquaredEuclidean(q.data(), data_->raw(), data_->dim(),
                                    eps_sq, leaf_ids.data(), count, out,
                                    kstats);
    return;
  }
  for (const Entry& e : node->entries) {
    if (e.box.empty()) continue;
    if (SquaredEuclideanMinDistanceToBox(q, e.box.lo(), e.box.hi()) <=
        eps_sq) {
      RangeRecursiveEuclidean(e.child, q, eps_sq, kstats, out);
    }
  }
}

void RStarTree::KnnQuery(std::span<const double> q, int k,
                         std::vector<PointId>* out) const {
  out->clear();
  if (k <= 0 || count_ == 0) return;
  const std::size_t want = std::min<std::size_t>(k, count_);
  // Best-first search over (min-distance, node-or-point).
  struct QueueItem {
    double dist;
    const Node* node;  // Null for point results.
    PointId id;
    // Ordering pins ties: nodes expand before equal-distance points pop
    // (so an equal-distance smaller-id point inside an unexpanded subtree
    // cannot be missed), and equal-distance points emit id-ascending —
    // the cross-index KnnQuery contract (neighbor_index.h).
    bool operator>(const QueueItem& other) const {
      return std::make_tuple(dist, node == nullptr, id) >
             std::make_tuple(other.dist, other.node == nullptr, other.id);
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({0.0, root_, -1});
  while (!pq.empty()) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      out->push_back(item.id);
      if (out->size() == want) return;
      continue;
    }
    if (item.node->is_leaf()) {
      for (const Entry& e : item.node->entries) {
        pq.push({metric_->Distance(q, data_->point(e.id)), nullptr, e.id});
      }
    } else {
      for (const Entry& e : item.node->entries) {
        if (e.box.empty()) continue;
        pq.push({metric_->MinDistanceToBox(q, e.box.lo(), e.box.hi()),
                 e.child, -1});
      }
    }
  }
}

void RStarTree::CheckInvariants() const {
  std::size_t point_count = 0;
  CheckNode(root_, height_ - 1, &point_count);
  DBDC_ASSERT(point_count == count_ && "tree holds a wrong number of points");
  DBDC_ASSERT(pending_.empty() && "reinsertion queue left non-empty");
}

void RStarTree::CheckNode(const Node* node, int expected_level,
                          std::size_t* point_count) const {
  // Uniform leaf depth: every path from the root reaches level 0 after
  // exactly height_ - 1 steps.
  DBDC_ASSERT(node->level == expected_level);
  // Fill factors: every node respects the capacity bound; only the root
  // may be underfull (an interior root still needs two children).
  DBDC_ASSERT(static_cast<int>(node->entries.size()) <= kMaxEntries);
  if (node != root_) {
    DBDC_ASSERT(static_cast<int>(node->entries.size()) >= kMinEntries);
  } else if (!node->is_leaf()) {
    DBDC_ASSERT(node->entries.size() >= 2);
  }
  for (const Entry& e : node->entries) {
    if (node->is_leaf()) {
      DBDC_ASSERT(e.child == nullptr);
      DBDC_ASSERT(e.id >= 0 &&
                  static_cast<std::size_t>(e.id) < data_->size());
      DBDC_ASSERT(e.box.Contains(data_->point(e.id)));
      ++*point_count;
    } else {
      // MBR containment, exactly: every interior box is the tight union of
      // its child's boxes — no slack, no leaks.
      DBDC_ASSERT(e.child != nullptr);
      const BoundingBox expect = NodeBox(*e.child);
      for (int d = 0; d < data_->dim(); ++d) {
        DBDC_ASSERT(e.box.lo()[d] == expect.lo()[d]);
        DBDC_ASSERT(e.box.hi()[d] == expect.hi()[d]);
      }
      CheckNode(e.child, expected_level - 1, point_count);
    }
  }
}

}  // namespace dbdc
