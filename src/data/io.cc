#include "data/io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dbdc {

bool WriteDatasetCsv(const std::string& path, const Dataset& data,
                     const std::vector<ClusterId>* labels) {
  if (labels != nullptr && labels->size() != data.size()) return false;
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out.precision(17);
  for (PointId id = 0; id < static_cast<PointId>(data.size()); ++id) {
    const auto p = data.point(id);
    for (int d = 0; d < data.dim(); ++d) {
      if (d > 0) out << ',';
      out << p[d];
    }
    if (labels != nullptr) out << ',' << (*labels)[id];
    out << '\n';
  }
  return out.good();
}

std::optional<CsvDataset> ReadDatasetCsv(const std::string& path,
                                         bool has_label_column) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;

  std::string line;
  std::vector<std::vector<double>> rows;
  std::size_t columns = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF file.
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || errno != 0) return std::nullopt;
      // The whole field must parse (modulo surrounding blanks): "2x" is a
      // malformed file, not the number 2.
      while (*end == ' ' || *end == '\t') ++end;
      if (*end != '\0') return std::nullopt;
      // strtod accepts "nan"/"inf", but non-finite coordinates poison
      // every distance downstream; reject them at the boundary.
      if (!std::isfinite(v)) return std::nullopt;
      row.push_back(v);
    }
    if (row.empty()) return std::nullopt;
    if (columns == 0) {
      columns = row.size();
    } else if (row.size() != columns) {
      return std::nullopt;  // Ragged rows.
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return std::nullopt;
  const int label_cols = has_label_column ? 1 : 0;
  if (static_cast<int>(columns) - label_cols < 1) return std::nullopt;

  CsvDataset result;
  result.data = Dataset(static_cast<int>(columns) - label_cols);
  if (has_label_column) result.labels.emplace();
  for (const std::vector<double>& row : rows) {
    result.data.Add(
        std::span<const double>(row.data(), columns - label_cols));
    if (has_label_column) {
      result.labels->push_back(static_cast<ClusterId>(row.back()));
    }
  }
  return result;
}

}  // namespace dbdc
