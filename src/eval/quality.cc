#include "eval/quality.h"

#include <cstdint>
#include <unordered_map>

#include "common/thread_pool.h"

namespace dbdc {
namespace {

/// Pairwise co-occurrence counts |C_d ∩ C_c| for every (distributed,
/// central) cluster pair, plus the cluster sizes.
struct Contingency {
  std::unordered_map<std::uint64_t, std::size_t> pair_count;
  std::unordered_map<ClusterId, std::size_t> distr_size;
  std::unordered_map<ClusterId, std::size_t> central_size;

  static std::uint64_t Key(ClusterId d, ClusterId c) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d)) << 32) |
           static_cast<std::uint32_t>(c);
  }
};

Contingency BuildContingency(std::span<const ClusterId> distributed,
                             std::span<const ClusterId> central) {
  DBDC_CHECK(distributed.size() == central.size());
  Contingency table;
  for (std::size_t i = 0; i < distributed.size(); ++i) {
    const ClusterId d = distributed[i];
    const ClusterId c = central[i];
    if (d >= 0) ++table.distr_size[d];
    if (c >= 0) ++table.central_size[c];
    if (d >= 0 && c >= 0) ++table.pair_count[Contingency::Key(d, c)];
  }
  return table;
}

}  // namespace

std::vector<double> ObjectQualityP1(std::span<const ClusterId> distributed,
                                    std::span<const ClusterId> central,
                                    int qp, int threads) {
  DBDC_CHECK(qp >= 1);
  // The table is built once here and only read below; each object writes
  // its own slot, so the scoring loop parallelizes without coordination.
  const Contingency table = BuildContingency(distributed, central);
  std::vector<double> quality(distributed.size(), 0.0);
  ThreadPool pool(threads);
  pool.ParallelFor(distributed.size(), [&](std::size_t i) {
    const ClusterId d = distributed[i];
    const ClusterId c = central[i];
    if (d < 0 && c < 0) {
      quality[i] = 1.0;
    } else if (d >= 0 && c >= 0) {
      const auto it = table.pair_count.find(Contingency::Key(d, c));
      const std::size_t inter = it == table.pair_count.end() ? 0 : it->second;
      quality[i] = inter >= static_cast<std::size_t>(qp) ? 1.0 : 0.0;
    }
    // Noise in exactly one clustering: 0.
  });
  return quality;
}

std::vector<double> ObjectQualityP2(std::span<const ClusterId> distributed,
                                    std::span<const ClusterId> central,
                                    int threads) {
  const Contingency table = BuildContingency(distributed, central);
  std::vector<double> quality(distributed.size(), 0.0);
  ThreadPool pool(threads);
  pool.ParallelFor(distributed.size(), [&](std::size_t i) {
    const ClusterId d = distributed[i];
    const ClusterId c = central[i];
    if (d < 0 && c < 0) {
      quality[i] = 1.0;
    } else if (d >= 0 && c >= 0) {
      const auto it = table.pair_count.find(Contingency::Key(d, c));
      const std::size_t inter = it == table.pair_count.end() ? 0 : it->second;
      const std::size_t uni = table.distr_size.at(d) +
                              table.central_size.at(c) - inter;
      quality[i] = uni == 0 ? 0.0
                            : static_cast<double>(inter) /
                                  static_cast<double>(uni);
    }
  });
  return quality;
}

namespace {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 1.0;  // Empty database: trivially perfect.
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace

double QualityP1(std::span<const ClusterId> distributed,
                 std::span<const ClusterId> central, int qp, int threads) {
  return Mean(ObjectQualityP1(distributed, central, qp, threads));
}

double QualityP2(std::span<const ClusterId> distributed,
                 std::span<const ClusterId> central, int threads) {
  return Mean(ObjectQualityP2(distributed, central, threads));
}

}  // namespace dbdc
