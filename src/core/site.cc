#include "core/site.h"

#include <utility>

#include "common/timer.h"
#include "core/model_codec.h"
#include "obs/trace.h"

namespace dbdc {

Site::Site(int site_id, const Metric& metric, Dataset data,
           std::vector<PointId> origin_ids)
    : site_id_(site_id),
      metric_(&metric),
      data_(std::move(data)),
      origin_ids_(std::move(origin_ids)) {
  DBDC_CHECK(origin_ids_.size() == data_.size());
}

void Site::RunLocalPipeline(const SiteConfig& config) {
  RunLocalClustering(config);
  BuildModel(config);
}

void Site::RunLocalClustering(const SiteConfig& config) {
  obs::ScopedSpan span("site.local_cluster", "site");
  span.AddArg("site", static_cast<std::int64_t>(site_id_));
  span.AddArg("points", static_cast<std::int64_t>(data_.size()));
  num_threads_ = config.num_threads;
  Timer timer;
  index_ = CreateIndex(config.index_type, data_, *metric_,
                       config.dbscan.eps, config.approx);
  DbscanParams dbscan = config.dbscan;
  dbscan.threads = config.num_threads;
  local_ = RunLocalDbscan(*index_, dbscan);
  cluster_seconds_ = timer.Seconds();
}

void Site::BuildModel(const SiteConfig& config) {
  obs::ScopedSpan span("site.build_model", "site");
  span.AddArg("site", static_cast<std::int64_t>(site_id_));
  DBDC_CHECK(index_ != nullptr && "RunLocalClustering must run first");
  Timer timer;
  if (config.model_strategy != nullptr) {
    model_ = config.model_strategy->Build(*index_, local_, config.dbscan,
                                          config.kmeans, site_id_);
  } else {
    model_ = BuildLocalModel(config.model_type, *index_, local_,
                             config.dbscan, config.kmeans, site_id_);
    if (config.condense_eps > 0.0) {
      model_ = CondenseLocalModel(model_, config.condense_eps, *metric_);
    }
  }
  model_seconds_ = timer.Seconds();
}

std::vector<std::uint8_t> Site::EncodeLocalModelBytes() const {
  return EncodeLocalModel(model_);
}

DecodeStatus Site::ApplyGlobalModelBytes(std::span<const std::uint8_t> bytes,
                                         const RelabelContext* shared_context) {
  GlobalModel global;
  const DecodeStatus status = DecodeGlobalModel(bytes, &global);
  if (status != DecodeStatus::kOk) return status;
  ApplyGlobalModel(global, shared_context);
  return DecodeStatus::kOk;
}

void Site::ApplyGlobalModel(const GlobalModel& global,
                            const RelabelContext* shared_context) {
  obs::ScopedSpan span("site.relabel", "site");
  span.AddArg("site", static_cast<std::int64_t>(site_id_));
  Timer timer;
  global_labels_ =
      shared_context != nullptr
          ? RelabelSite(data_, *shared_context, *metric_, num_threads_)
          : RelabelSite(data_, global, *metric_, num_threads_);
  relabel_seconds_ = timer.Seconds();
}

}  // namespace dbdc
