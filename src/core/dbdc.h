#ifndef DBDC_CORE_DBDC_H_
#define DBDC_CORE_DBDC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/server.h"
#include "core/site.h"
#include "core/stage_stats.h"
#include "distrib/partitioner.h"
#include "distrib/protocol.h"
#include "distrib/topology.h"
#include "distrib/transport.h"
#include "obs/metrics.h"

namespace dbdc {

/// Outcome of DbdcConfig::Validate(): ok, or the dotted path of the
/// first offending field plus a human-readable reason. The field name is
/// part of the API — dbdc_cli prints it and dbdc_server sends it back to
/// the rejected client verbatim, so a remote caller can fix exactly the
/// knob that was wrong.
struct ConfigStatus {
  bool ok = true;
  /// Dotted field path relative to DbdcConfig ("local_dbscan.eps",
  /// "protocol.max_attempts"); empty when ok.
  std::string field;
  /// Why the value is invalid ("must be > 0"); empty when ok.
  std::string message;

  static ConfigStatus Ok() { return ConfigStatus{}; }
  static ConfigStatus Invalid(std::string field, std::string message) {
    return ConfigStatus{false, std::move(field), std::move(message)};
  }
  explicit operator bool() const { return ok; }
  /// "config.local_dbscan.eps: must be > 0" (empty when ok).
  std::string ToString() const {
    return ok ? std::string() : "config." + field + ": " + message;
  }
};

/// Validates the protocol/link knobs shared by RunDbdc and
/// ContinuousDbdc; `field_prefix` ("protocol") prefixes the reported
/// field path.
ConfigStatus ValidateProtocolConfig(const ProtocolConfig& protocol,
                                    const std::string& field_prefix);

/// Configuration of a full DBDC run.
struct DbdcConfig {
  /// Local DBSCAN parameters (Eps_local, MinPts).
  DbscanParams local_dbscan;
  /// Which local model the sites build (REP_Scor / REP_kMeans).
  LocalModelType model_type = LocalModelType::kScor;
  /// Server-side Eps_global; 0 selects the paper's default (max ε_R,
  /// generally close to 2·Eps_local). MinPts_global is fixed at 2.
  double eps_global = 0.0;
  /// Weighted global core condition (extension; see GlobalModelParams).
  /// 0 = the paper's unweighted scheme.
  std::uint32_t min_weight_global = 0;
  /// Pre-transmission model condensation radius (extension; see
  /// CondenseLocalModel). 0 = transmit the full model.
  double condense_eps = 0.0;
  /// Number of client sites.
  int num_sites = 4;
  /// Spatial index the sites (and the server) use.
  IndexType index_type = IndexType::kGrid;
  /// Tuning for index_type == kApprox (random-projection candidate
  /// generation with exact re-verification); ignored by the exact
  /// indices. Travels with index_type everywhere it goes: sites, the
  /// global model, baselines, and the serve wire.
  ApproxIndexOptions approx;
  /// How the data is spread over the sites; null = the paper's uniform
  /// random split.
  const Partitioner* partitioner = nullptr;
  /// Seed for the partitioning.
  std::uint64_t seed = 42;
  KMeansParams kmeans;
  /// Run the sites' local pipelines on concurrent threads (the real
  /// deployment: sites are independent machines). The result is
  /// identical to the sequential run; the paper's cost model
  /// (max local + global) is unaffected because it already charges only
  /// the slowest site.
  bool parallel_sites = false;
  /// Intra-site/-server worker threads (the axis parallel_sites does not
  /// cover): local DBSCAN range queries, the server's global DBSCAN, and
  /// relabeling all run on a pool of this size. 1 = sequential (default),
  /// 0 = hardware concurrency. Results are bit-identical for every value.
  /// Combined with parallel_sites each site runs its own pool, so the
  /// total thread count is roughly num_sites × num_threads.
  int num_threads = 1;
  /// Fault-tolerant transport protocol (checksummed frames, acks, bounded
  /// retries with exponential backoff, server-side collection deadline).
  /// Disabled by default: payloads cross the transport raw and every site
  /// is assumed reliable, exactly the paper's setting. With
  /// protocol.enabled the run degrades gracefully instead of aborting:
  /// the server builds the global model from whichever local models
  /// arrived intact by the deadline, and unreachable sites' points stay
  /// noise (see DbdcResult's sites_reporting / sites_failed breakdown).
  ProtocolConfig protocol;

  /// Knobs specific to the OPTICS-based global-model variant
  /// (RunDbdcOptics); ignored by the DBSCAN-merge path.
  struct OpticsOptions {
    /// OPTICS generating distance on the server; 0 = 4x the default
    /// Eps_global.
    double max_eps_global = 0.0;
  };
  OpticsOptions optics;

  /// Aggregation topology (DESIGN.md §13). Flat (default) is the paper's
  /// star and is pinned bit-identical to the historical pipeline; kTree
  /// routes the uplink through a balanced k-ary tree of AggregatorNodes
  /// so the root's fan-in is bounded by `fanout` instead of num_sites.
  struct TopologyOptions {
    TopologyKind kind = TopologyKind::kFlat;
    /// Tree fanout; required >= 2 for kTree, required 0 for kFlat.
    int fanout = 0;
    /// Intermediate-model condensation radius at the aggregators
    /// (AggregatorNode): 0 = lossless concatenation (tree labels
    /// bit-identical to flat in fault-free runs), > 0 = cross-child
    /// representatives of one intermediate cluster within this radius
    /// collapse before traveling up (sub-linear root uplink).
    double aggregator_condense_eps = 0.0;
  };
  TopologyOptions topology;
  /// Optional explicit topology (TopologyKind::kExplicit shapes that a
  /// (kind, fanout) pair cannot express). Borrowed, must outlive the run,
  /// must satisfy Topology::Validate() and cover exactly num_sites sites.
  /// Like `partitioner`, this pointer does NOT travel over the serve-layer
  /// wire; remote jobs use the (kind, fanout) knobs.
  const Topology* explicit_topology = nullptr;

  /// Checks every knob for structural validity (positivity, ranges,
  /// cross-field constraints) and names the first offending field.
  /// RunDbdc/RunDbdcOptics assert this; callers with a reporting channel
  /// (dbdc_cli, dbdc_server) call it first and surface field + message.
  ConfigStatus Validate() const;
};

/// Outcome of a DBDC run, including the per-phase cost breakdown of the
/// paper's evaluation model.
struct DbdcResult {
  /// Global cluster label (or kNoise) per point of the input dataset.
  std::vector<ClusterId> labels;
  int num_global_clusters = 0;

  /// Transmission cost: representatives sent up, model broadcast down.
  std::size_t num_representatives = 0;
  std::uint64_t bytes_uplink = 0;
  std::uint64_t bytes_downlink = 0;

  /// Per-phase wall-clock times. The paper's overall runtime is
  /// max_local_seconds + global_seconds (sites run concurrently in the
  /// real deployment; the evaluation simulated them sequentially and
  /// charged only the slowest).
  double max_local_seconds = 0.0;
  double sum_local_seconds = 0.0;
  double global_seconds = 0.0;
  double max_relabel_seconds = 0.0;

  double eps_global_used = 0.0;
  std::vector<std::size_t> site_sizes;
  GlobalModel global_model;

  /// Degraded-mode breakdown (trivial when the protocol is disabled:
  /// every site reports and relabels, nothing fails).
  ///
  /// Sites whose local model reached the server intact by the collection
  /// deadline and entered the global model.
  int sites_reporting = 0;
  /// num_sites - sites_reporting: dead, straggling past the deadline, or
  /// retry budget exhausted.
  int sites_failed = 0;
  std::vector<int> failed_site_ids;
  /// Sites that received the broadcast and relabeled their points; points
  /// of unreached sites keep kNoise.
  int sites_relabeled = 0;
  /// Protocol-level counters summed over all transfers (both directions).
  std::uint64_t protocol_retries = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t acks_lost = 0;

  /// Per-stage wall-clock/byte breakdown of the engine's seven pipeline
  /// stages, in pipeline order (see stage_stats.h).
  std::vector<StageStats> stage_stats;

  /// Per-level breakdown of the aggregation topology (root-first; see
  /// LevelStats). A flat run has two levels: the root and the sites. The
  /// root entry's models_in is its fan-in — the number that stays bounded
  /// by the fanout as sites scale.
  std::vector<LevelStats> level_stats;

  /// Snapshot of the global MetricsRegistry taken as the pipeline
  /// finished; empty() when no registry was attached (the default).
  obs::MetricsSnapshot metrics_snapshot;

  /// The SIMD dispatch tier the batched distance kernels ran on
  /// ("scalar", "sse2", "avx2") — results are attributable to a kernel
  /// tier even though labels are tier-independent by construction.
  std::string simd_tier;

  /// The paper's overall-runtime formula (Sec. 9).
  double OverallSeconds() const {
    return max_local_seconds + global_seconds;
  }
};

/// Runs the complete DBDC pipeline (Fig. 2) on `data`:
/// partition onto sites -> independent local clustering -> local models
/// -> transmission -> global model -> broadcast -> local relabeling.
///
/// All model transfer happens as serialized bytes over a Transport; pass
/// `network` to inspect the traffic or to substitute an unreliable
/// implementation (FaultyNetwork). Null = a private lossless
/// SimulatedNetwork. With config.protocol.enabled the transfers run
/// under the reliable-delivery protocol and the pipeline degrades
/// gracefully when sites fail; without it any undecodable payload is a
/// programming error (the transport is assumed lossless) and aborts.
DbdcResult RunDbdc(const Dataset& data, const Metric& metric,
                   const DbdcConfig& config, Transport* network = nullptr);

/// RunDbdc with the OPTICS-based global-model variant (Sec. 6
/// alternative; see OpticsGlobalStrategy): the server computes one OPTICS
/// ordering over the received representatives and extracts the global
/// model at config.eps_global (0 = the paper's default). All other stages
/// — transport byte-accounting, protocol/degraded mode, relabeling, every
/// DbdcResult counter — are shared with RunDbdc through the engine.
/// The OPTICS generating distance comes from config.optics.max_eps_global
/// (0 = 4x the default Eps_global); config.min_weight_global must be 0.
DbdcResult RunDbdcOptics(const Dataset& data, const Metric& metric,
                         const DbdcConfig& config,
                         Transport* network = nullptr);

/// Deprecated forwarding overload: pre-PR-8 callers passed the OPTICS
/// generating distance as a dangling function parameter. Copies it into
/// config.optics.max_eps_global and forwards. Prefer the config field —
/// it is what travels over the serve-layer wire, so a parameter-only
/// value would silently vanish on a remote run.
DbdcResult RunDbdcOptics(const Dataset& data, const Metric& metric,
                         const DbdcConfig& config, Transport* network,
                         double max_eps_global);

/// Outcome of the centralized baseline run.
struct CentralDbscanResult {
  Clustering clustering;
  /// Wall-clock seconds for index build + DBSCAN.
  double seconds = 0.0;
};

/// Convenience baseline: central DBSCAN over the full dataset with the
/// same parameters and index type (what DBDC is compared against
/// throughout Sec. 9).
CentralDbscanResult RunCentralDbscan(const Dataset& data, const Metric& metric,
                                     const DbscanParams& params,
                                     IndexType index_type,
                                     const ApproxIndexOptions& approx = {});

}  // namespace dbdc

#endif  // DBDC_CORE_DBDC_H_
