file(REMOVE_RECURSE
  "CMakeFiles/dbdc_data.dir/data/generators.cc.o"
  "CMakeFiles/dbdc_data.dir/data/generators.cc.o.d"
  "CMakeFiles/dbdc_data.dir/data/io.cc.o"
  "CMakeFiles/dbdc_data.dir/data/io.cc.o.d"
  "libdbdc_data.a"
  "libdbdc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
