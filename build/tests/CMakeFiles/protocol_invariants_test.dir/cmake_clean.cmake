file(REMOVE_RECURSE
  "CMakeFiles/protocol_invariants_test.dir/protocol_invariants_test.cc.o"
  "CMakeFiles/protocol_invariants_test.dir/protocol_invariants_test.cc.o.d"
  "protocol_invariants_test"
  "protocol_invariants_test.pdb"
  "protocol_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
