#ifndef DBDC_COMMON_DISTANCE_H_
#define DBDC_COMMON_DISTANCE_H_

#include <span>
#include <string_view>

namespace dbdc {

/// A distance function on coordinate vectors.
///
/// DBSCAN and the spatial indices are metric-generic: the paper stresses
/// that DBSCAN "can be used for all kinds of metric data spaces and is not
/// confined to vector spaces". Implementations must satisfy the metric
/// axioms (the M-tree relies on the triangle inequality for pruning).
///
/// For the box-based indices (grid, k-d tree, R*-tree) a metric must also
/// provide a lower bound of the distance from a point to an axis-aligned
/// box; any Lp metric admits this via per-axis deltas.
class Metric {
 public:
  virtual ~Metric() = default;

  /// Distance between two points of equal dimensionality.
  virtual double Distance(std::span<const double> a,
                          std::span<const double> b) const = 0;

  /// Lower bound of Distance(p, x) over all x inside the box [lo, hi].
  /// Zero when p lies inside the box.
  virtual double MinDistanceToBox(std::span<const double> p,
                                  std::span<const double> lo,
                                  std::span<const double> hi) const = 0;

  /// Human-readable metric name ("euclidean", ...).
  virtual std::string_view name() const = 0;
};

/// The standard L2 metric.
const Metric& Euclidean();
/// The L1 (city-block) metric.
const Metric& Manhattan();
/// The L-infinity (maximum) metric.
const Metric& Chebyshev();

/// Looks up a metric by name; returns nullptr for unknown names.
const Metric* MetricByName(std::string_view name);

}  // namespace dbdc

#endif  // DBDC_COMMON_DISTANCE_H_
