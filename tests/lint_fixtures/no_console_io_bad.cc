// Seeded violation: console I/O in library code. The library reports
// through return values and the obs layer; printing from inside it
// corrupts harness output and cannot be disabled.
#include <cstdio>
#include <iostream>

namespace dbdc {

void BadReport(int clusters) {
  std::printf("clusters: %d\n", clusters);
  std::fprintf(stderr, "clusters: %d\n", clusters);
  std::cout << "clusters: " << clusters << "\n";
  std::cerr << "warning\n";
}

}  // namespace dbdc
