#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/model_codec.h"

namespace dbdc {
namespace {

LocalModel SampleLocalModel() {
  LocalModel model;
  model.site_id = 7;
  model.dim = 3;
  model.num_local_clusters = 2;
  model.representatives = {
      {{1.0, 2.0, 3.0}, 1.5, 0, 12},
      {{-4.0, 5.5, 0.25}, 2.25, 0, 7},
      {{100.0, -200.0, 0.0}, 1.0, 1, 33},
  };
  return model;
}

GlobalModel SampleGlobalModel() {
  GlobalModel model;
  model.rep_points = Dataset(2);
  model.rep_points.Add(Point{1.0, 2.0});
  model.rep_points.Add(Point{3.5, -1.5});
  model.rep_eps = {1.25, 2.5};
  model.rep_weight = {40, 9};
  model.rep_global_cluster = {0, 0};
  model.rep_site = {0, 1};
  model.rep_local_cluster = {2, 0};
  model.num_global_clusters = 1;
  model.eps_global_used = 2.5;
  return model;
}

TEST(ModelCodecTest, LocalModelRoundTrip) {
  const LocalModel model = SampleLocalModel();
  const std::vector<std::uint8_t> bytes = EncodeLocalModel(model);
  const auto decoded = DecodeLocalModel(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->site_id, model.site_id);
  EXPECT_EQ(decoded->dim, model.dim);
  EXPECT_EQ(decoded->num_local_clusters, model.num_local_clusters);
  ASSERT_EQ(decoded->representatives.size(), model.representatives.size());
  for (std::size_t i = 0; i < model.representatives.size(); ++i) {
    EXPECT_EQ(decoded->representatives[i].center,
              model.representatives[i].center);
    EXPECT_DOUBLE_EQ(decoded->representatives[i].eps_range,
                     model.representatives[i].eps_range);
    EXPECT_EQ(decoded->representatives[i].local_cluster,
              model.representatives[i].local_cluster);
    EXPECT_EQ(decoded->representatives[i].weight,
              model.representatives[i].weight);
  }
}

TEST(ModelCodecTest, VersionOnePayloadsDecodeWithDefaultWeight) {
  // Hand-craft a v1 local payload (no weight field): the decoder must
  // accept it and default every weight to 1.
  std::vector<std::uint8_t> bytes;
  auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  auto put_f64 = [&](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(v));
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }
  };
  put_u32(0x4442544Du);  // 'DBLM' magic.
  put_u32(1);            // Version 1.
  put_u32(5);            // site_id.
  put_u32(2);            // dim.
  put_u32(1);            // num_local_clusters.
  put_u32(1);            // rep_count.
  put_u32(0);            // local_cluster.
  put_f64(1.5);          // eps_range.
  put_f64(3.0);          // x.
  put_f64(4.0);          // y.
  const auto decoded = DecodeLocalModel(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->representatives.size(), 1u);
  EXPECT_EQ(decoded->representatives[0].weight, 1u);
  EXPECT_DOUBLE_EQ(decoded->representatives[0].eps_range, 1.5);
  EXPECT_EQ(decoded->representatives[0].center, (Point{3.0, 4.0}));
}

TEST(ModelCodecTest, UnknownFutureVersionRejected) {
  std::vector<std::uint8_t> bytes = EncodeLocalModel(SampleLocalModel());
  bytes[4] = 99;  // Version field.
  EXPECT_FALSE(DecodeLocalModel(bytes).has_value());
}

TEST(ModelCodecTest, EmptyLocalModelRoundTrip) {
  LocalModel model;
  model.site_id = 3;
  model.dim = 2;
  const auto decoded = DecodeLocalModel(EncodeLocalModel(model));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->representatives.empty());
  EXPECT_EQ(decoded->site_id, 3);
}

TEST(ModelCodecTest, GlobalModelRoundTrip) {
  const GlobalModel model = SampleGlobalModel();
  const auto decoded = DecodeGlobalModel(EncodeGlobalModel(model));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->NumRepresentatives(), 2u);
  EXPECT_EQ(decoded->num_global_clusters, 1);
  EXPECT_DOUBLE_EQ(decoded->eps_global_used, 2.5);
  EXPECT_EQ(decoded->rep_global_cluster, model.rep_global_cluster);
  EXPECT_EQ(decoded->rep_weight, model.rep_weight);
  EXPECT_EQ(decoded->rep_site, model.rep_site);
  EXPECT_EQ(decoded->rep_local_cluster, model.rep_local_cluster);
  for (PointId i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(decoded->rep_points.point(i)[0],
                     model.rep_points.point(i)[0]);
    EXPECT_DOUBLE_EQ(decoded->rep_points.point(i)[1],
                     model.rep_points.point(i)[1]);
  }
}

TEST(ModelCodecTest, RejectsTruncatedPayloads) {
  const std::vector<std::uint8_t> bytes =
      EncodeLocalModel(SampleLocalModel());
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_FALSE(
        DecodeLocalModel(std::span(bytes.data(), len)).has_value())
        << "accepted truncation to " << len;
  }
}

TEST(ModelCodecTest, RejectsWrongMagicAndCrossDecoding) {
  std::vector<std::uint8_t> bytes = EncodeLocalModel(SampleLocalModel());
  // A local payload must not decode as a global model and vice versa.
  EXPECT_FALSE(DecodeGlobalModel(bytes).has_value());
  const std::vector<std::uint8_t> global_bytes =
      EncodeGlobalModel(SampleGlobalModel());
  EXPECT_FALSE(DecodeLocalModel(global_bytes).has_value());
  // Corrupt magic.
  bytes[0] ^= 0xff;
  EXPECT_FALSE(DecodeLocalModel(bytes).has_value());
}

TEST(ModelCodecTest, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = EncodeLocalModel(SampleLocalModel());
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodeLocalModel(bytes).has_value());
}

TEST(ModelCodecTest, WireSizeIsLinearInRepresentatives) {
  LocalModel model;
  model.dim = 2;
  const std::size_t empty_size = EncodeLocalModel(model).size();
  model.representatives.assign(10, {{1.0, 2.0}, 1.0, 0, 1});
  const std::size_t full_size = EncodeLocalModel(model).size();
  // Per-rep cost: i32 cluster + f64 eps + u32 weight + 2 f64 = 32 bytes.
  EXPECT_EQ(full_size - empty_size, 10u * 32u);
}

TEST(ModelCodecTest, RawDatasetWireSizeBaseline) {
  EXPECT_EQ(RawDatasetWireSize(1000, 2), 16u + 1000u * 16u);
  // DBDC's saving: a model with 16% representatives is ~6x smaller than
  // shipping the raw points (plus eps overhead).
  LocalModel model;
  model.dim = 2;
  model.representatives.assign(160, {{0.0, 0.0}, 1.0, 0});
  EXPECT_LT(EncodeLocalModel(model).size(), RawDatasetWireSize(1000, 2) / 2);
}

}  // namespace
}  // namespace dbdc
