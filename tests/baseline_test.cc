#include <gtest/gtest.h>

#include <set>
#include <string>

#include "baseline/distributed_kmeans.h"
#include "baseline/parallel_dbscan.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/external_indices.h"
#include "index/linear_scan_index.h"
#include "test_util.h"

namespace dbdc {
namespace {

// ---------------------------------------------------------------------------
// Exact parallel DBSCAN (related work [21]).

class ParallelDbscanEquivalenceTest
    : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDbscanEquivalenceTest, ExactlyMatchesSequentialDbscan) {
  const SyntheticDataset synth = MakeTestDatasetA(17);
  const DbscanParams params = synth.suggested_params;
  const LinearScanIndex reference(synth.data, Euclidean());
  const Clustering sequential = RunDbscan(reference, params);

  ParallelDbscanConfig config;
  config.dbscan = params;
  config.num_workers = GetParam();
  const ParallelDbscanResult parallel =
      RunParallelDbscan(synth.data, Euclidean(), config);

  // The strongest claim: full DBSCAN equivalence (core partition exact,
  // noise exact, borders adjacent) — unlike DBDC, which approximates.
  ExpectDbscanEquivalent(synth.data, Euclidean(), params, sequential,
                         parallel.clustering);
  EXPECT_EQ(parallel.clustering.num_clusters, sequential.num_clusters);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelDbscanEquivalenceTest,
                         ::testing::Values(1, 2, 3, 7, 16));

TEST(ParallelDbscanTest, NoisyDatasetStaysExact) {
  const SyntheticDataset synth = MakeTestDatasetB(18);
  const LinearScanIndex reference(synth.data, Euclidean());
  const Clustering sequential =
      RunDbscan(reference, synth.suggested_params);
  ParallelDbscanConfig config;
  config.dbscan = synth.suggested_params;
  config.num_workers = 5;
  const ParallelDbscanResult parallel =
      RunParallelDbscan(synth.data, Euclidean(), config);
  ExpectDbscanEquivalent(synth.data, Euclidean(), synth.suggested_params,
                         sequential, parallel.clustering);
}

TEST(ParallelDbscanTest, SliceAlongSecondAxis) {
  const SyntheticDataset synth = MakeTestDatasetC(19);
  const LinearScanIndex reference(synth.data, Euclidean());
  const Clustering sequential =
      RunDbscan(reference, synth.suggested_params);
  ParallelDbscanConfig config;
  config.dbscan = synth.suggested_params;
  config.num_workers = 4;
  config.slice_axis = 1;
  const ParallelDbscanResult parallel =
      RunParallelDbscan(synth.data, Euclidean(), config);
  ExpectDbscanEquivalent(synth.data, Euclidean(), synth.suggested_params,
                         sequential, parallel.clustering);
}

TEST(ParallelDbscanTest, HaloCostGrowsWithWorkers) {
  const SyntheticDataset synth = MakeTestDatasetA(20);
  ParallelDbscanConfig config;
  config.dbscan = synth.suggested_params;
  config.num_workers = 2;
  const auto two = RunParallelDbscan(synth.data, Euclidean(), config);
  config.num_workers = 8;
  const auto eight = RunParallelDbscan(synth.data, Euclidean(), config);
  EXPECT_GT(eight.bytes_halo, two.bytes_halo);
  EXPECT_GT(two.bytes_halo, 0u);
  EXPECT_GT(two.total_halo_points, 0u);
}

TEST(ParallelDbscanTest, EmptyAndTinyInputs) {
  Dataset empty(2);
  ParallelDbscanConfig config;
  config.dbscan = {1.0, 3};
  config.num_workers = 4;
  const auto none = RunParallelDbscan(empty, Euclidean(), config);
  EXPECT_EQ(none.clustering.num_clusters, 0);

  Dataset tiny(2);
  tiny.Add(Point{0.0, 0.0});
  tiny.Add(Point{0.1, 0.0});
  tiny.Add(Point{0.2, 0.0});
  config.num_workers = 8;  // More workers than points.
  const auto small = RunParallelDbscan(tiny, Euclidean(), config);
  EXPECT_EQ(small.clustering.num_clusters, 1);
  EXPECT_EQ(small.clustering.CountNoise(), 0u);
}

// ---------------------------------------------------------------------------
// Distributed k-means (related work [5]).

TEST(DistributedKMeansTest, RecoversWellSeparatedGlobularClusters) {
  const SyntheticDataset synth = MakeTestDatasetC(21);  // 3 blobs.
  DistributedKMeansConfig config;
  config.k = 3;
  config.num_sites = 4;
  const DistributedKMeansResult result =
      RunDistributedKMeans(synth.data, config);
  // All three centroids used, and assignment matches the generator truth
  // almost everywhere (blobs are globular — k-means' home turf).
  std::set<ClusterId> used(result.labels.begin(), result.labels.end());
  EXPECT_EQ(used.size(), 3u);
  EXPECT_GT(AdjustedRandIndex(result.labels, synth.true_labels), 0.95);
  EXPECT_GT(result.rounds, 1);
  EXPECT_GT(result.bytes_total, 0u);
}

TEST(DistributedKMeansTest, MatchesCentralizedRoundsExactly) {
  // The reduction is exact: distributing the same points over any number
  // of sites must give identical centroids to a 1-site run (floating
  // point aside, summation order differs — compare loosely).
  const SyntheticDataset synth = MakeTestDatasetC(22);
  DistributedKMeansConfig config;
  config.k = 3;
  config.seed = 9;
  config.num_sites = 1;
  const auto one = RunDistributedKMeans(synth.data, config);
  config.num_sites = 7;
  const auto seven = RunDistributedKMeans(synth.data, config);
  EXPECT_NEAR(one.inertia, seven.inertia, 1e-6 * one.inertia);
  EXPECT_NEAR(one.rounds, seven.rounds, 1);  // FP summation order only.
}

TEST(DistributedKMeansTest, FailsOnNonGlobularShapes) {
  // The paper's Sec. 4 motivation: k-means cannot capture a ring around
  // a blob; DBSCAN-based DBDC can.
  Dataset data(2);
  std::vector<ClusterId> truth;
  Rng rng(5);
  AppendBlob({{50.0, 50.0}, 1.5, 400}, 0, &rng, &data, &truth);
  AppendRing({50.0, 50.0}, 15.0, 0.5, 800, 1, &rng, &data, &truth);

  DistributedKMeansConfig km_config;
  km_config.k = 2;
  km_config.num_sites = 4;
  const auto km = RunDistributedKMeans(data, km_config);
  const double km_ari = AdjustedRandIndex(km.labels, truth);

  DbdcConfig dbdc_config;
  dbdc_config.local_dbscan = {2.0, 5};
  dbdc_config.num_sites = 4;
  const DbdcResult dbdc = RunDbdc(data, Euclidean(), dbdc_config);
  const double dbdc_ari = AdjustedRandIndex(dbdc.labels, truth);

  EXPECT_LT(km_ari, 0.5) << "k-means should fail on the ring";
  EXPECT_GT(dbdc_ari, 0.9) << "DBDC should capture the ring";
}

TEST(DistributedKMeansTest, DeterministicGivenSeed) {
  const SyntheticDataset synth = MakeTestDatasetC(23);
  DistributedKMeansConfig config;
  config.k = 3;
  const auto a = RunDistributedKMeans(synth.data, config);
  const auto b = RunDistributedKMeans(synth.data, config);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(DistributedKMeansTest, ByteCostLinearInRoundsAndK) {
  const SyntheticDataset synth = MakeTestDatasetC(24);
  DistributedKMeansConfig config;
  config.k = 3;
  config.num_sites = 4;
  const auto result = RunDistributedKMeans(synth.data, config);
  const std::uint64_t per_round =
      4ull * 3 * (2 * sizeof(double)) +          // Broadcast.
      4ull * 3 * (2 * sizeof(double) + sizeof(std::uint64_t));  // Reduce.
  EXPECT_EQ(result.bytes_total,
            per_round * static_cast<std::uint64_t>(result.rounds));
}

TEST(DistributedKMeansTest, EmptyDataset) {
  Dataset data(2);
  DistributedKMeansConfig config;
  const auto result = RunDistributedKMeans(data, config);
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.rounds, 0);
}

}  // namespace
}  // namespace dbdc
