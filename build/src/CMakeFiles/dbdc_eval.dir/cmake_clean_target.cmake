file(REMOVE_RECURSE
  "libdbdc_eval.a"
)
