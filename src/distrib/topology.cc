#include "distrib/topology.h"

#include <algorithm>

#include "common/check.h"

namespace dbdc {

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFlat: return "flat";
    case TopologyKind::kTree: return "tree";
    case TopologyKind::kExplicit: return "explicit";
  }
  return "unknown";
}

void Topology::Link(EndpointId child, EndpointId parent) {
  parents_[child] = parent;
  children_[parent].push_back(child);
}

Topology Topology::Flat(int num_sites) {
  DBDC_CHECK(num_sites >= 0);
  Topology t;
  t.num_sites_ = num_sites;
  t.first_aggregator_id_ = num_sites;
  t.children_[kServerEndpoint];  // The root exists even with no sites.
  for (EndpointId s = 0; s < num_sites; ++s) t.Link(s, kServerEndpoint);
  return t;
}

Topology Topology::KaryTree(int num_sites, int fanout) {
  DBDC_CHECK(num_sites >= 0);
  DBDC_CHECK(fanout >= 2 && "aggregation tree fanout must be >= 2");
  // With everything fitting under the root directly there is nothing to
  // aggregate; the tree degenerates to the star.
  if (num_sites <= fanout) return Flat(num_sites);

  Topology t;
  t.num_sites_ = num_sites;
  t.first_aggregator_id_ = num_sites;
  t.children_[kServerEndpoint];
  EndpointId next_id = num_sites;

  // Group the current layer fanout-at-a-time under fresh aggregators,
  // then recurse on the aggregator layer until it fits under the root.
  std::vector<EndpointId> layer;
  layer.reserve(static_cast<std::size_t>(num_sites));
  for (EndpointId s = 0; s < num_sites; ++s) layer.push_back(s);
  while (static_cast<int>(layer.size()) > fanout) {
    std::vector<EndpointId> next_layer;
    for (std::size_t i = 0; i < layer.size(); i += static_cast<std::size_t>(
             fanout)) {
      const EndpointId agg = next_id++;
      t.aggregator_set_[agg] = static_cast<int>(t.aggregators_.size());
      t.aggregators_.push_back(agg);
      const std::size_t end =
          std::min(layer.size(), i + static_cast<std::size_t>(fanout));
      for (std::size_t j = i; j < end; ++j) t.Link(layer[j], agg);
      next_layer.push_back(agg);
    }
    layer = std::move(next_layer);
  }
  for (const EndpointId node : layer) t.Link(node, kServerEndpoint);
  return t;
}

Topology Topology::FromParentMap(int num_sites,
                                 std::vector<EndpointId> site_parent,
                                 std::vector<EndpointId> aggregator_parent) {
  DBDC_CHECK(num_sites >= 0);
  DBDC_CHECK(static_cast<int>(site_parent.size()) == num_sites &&
             "one parent entry per site");
  Topology t;
  t.num_sites_ = num_sites;
  t.first_aggregator_id_ = num_sites;
  t.children_[kServerEndpoint];
  // Aggregators first so child lists come out in (aggregators, then
  // sites) ... no: children order should follow declaration order of the
  // child ids themselves. Register parents in ascending child-id order:
  // sites 0..n-1, then aggregators n..n+m-1 — deterministic and matching
  // KaryTree's ascending-order invariant for same-parent siblings.
  for (std::size_t k = 0; k < aggregator_parent.size(); ++k) {
    const EndpointId agg = num_sites + static_cast<EndpointId>(k);
    t.aggregator_set_[agg] = static_cast<int>(k);
    t.aggregators_.push_back(agg);
  }
  for (EndpointId s = 0; s < num_sites; ++s) t.Link(s, site_parent[s]);
  for (std::size_t k = 0; k < aggregator_parent.size(); ++k) {
    t.Link(num_sites + static_cast<EndpointId>(k), aggregator_parent[k]);
  }
  return t;
}

std::string Topology::Validate() const {
  for (const auto& [child, parent] : parents_) {
    if (parent != kServerEndpoint && aggregator_set_.count(parent) == 0) {
      return "endpoint " + std::to_string(child) +
             " has untracked parent " + std::to_string(parent);
    }
    // Walk to the root; more hops than tracked endpoints means a cycle.
    EndpointId node = child;
    std::size_t hops = 0;
    while (node != kServerEndpoint) {
      const auto it = parents_.find(node);
      if (it == parents_.end()) {
        return "endpoint " + std::to_string(node) + " (reached from " +
               std::to_string(child) + ") has no parent";
      }
      node = it->second;
      if (++hops > parents_.size()) {
        return "cycle through endpoint " + std::to_string(child);
      }
    }
  }
  for (const EndpointId agg : aggregators_) {
    if (parents_.count(agg) == 0) {
      return "aggregator " + std::to_string(agg) + " has no parent";
    }
  }
  return std::string();
}

int Topology::depth() const {
  int max_level = 0;
  for (const auto& [child, parent] : parents_) {
    (void)parent;
    max_level = std::max(max_level, LevelOf(child));
  }
  return max_level;
}

EndpointId Topology::ParentOf(EndpointId node) const {
  const auto it = parents_.find(node);
  DBDC_CHECK(it != parents_.end() && "untracked endpoint");
  return it->second;
}

const std::vector<EndpointId>& Topology::ChildrenOf(EndpointId node) const {
  static const std::vector<EndpointId> kEmpty;
  const auto it = children_.find(node);
  return it == children_.end() ? kEmpty : it->second;
}

int Topology::LevelOf(EndpointId node) const {
  if (node == kServerEndpoint) return 0;
  int level = 0;
  EndpointId cursor = node;
  while (cursor != kServerEndpoint) {
    cursor = ParentOf(cursor);
    ++level;
    DBDC_CHECK(level <= static_cast<int>(parents_.size()) &&
               "cycle in topology");
  }
  return level;
}

std::vector<EndpointId> Topology::AggregatorsBottomUp() const {
  std::vector<EndpointId> order = aggregators_;
  std::sort(order.begin(), order.end(),
            [this](EndpointId a, EndpointId b) {
              const int la = LevelOf(a);
              const int lb = LevelOf(b);
              return la != lb ? la > lb : a < b;
            });
  return order;
}

std::vector<EndpointId> Topology::AggregatorsTopDown() const {
  std::vector<EndpointId> order = AggregatorsBottomUp();
  std::reverse(order.begin(), order.end());
  return order;
}

void Topology::AddSite(EndpointId site) {
  DBDC_CHECK(site >= 0 && "site ids are non-negative");
  DBDC_CHECK(parents_.count(site) == 0 && "endpoint already tracked");
  DBDC_CHECK(aggregator_set_.count(site) == 0 &&
             "site id collides with an aggregator");
  // Join rule: deepest aggregator layer, least-loaded node, ties broken
  // by ascending endpoint id — a pure function of the current shape.
  EndpointId parent = kServerEndpoint;
  int best_level = 0;
  std::size_t best_load = 0;
  for (const EndpointId agg : aggregators_) {
    const int level = LevelOf(agg);
    const std::size_t load = ChildrenOf(agg).size();
    if (parent == kServerEndpoint || level > best_level ||
        (level == best_level && load < best_load)) {
      parent = agg;
      best_level = level;
      best_load = load;
    }
  }
  Link(site, parent);
  if (site >= first_aggregator_id_) first_aggregator_id_ = site + 1;
}

void Topology::RemoveSite(EndpointId site) {
  const auto it = parents_.find(site);
  DBDC_CHECK(it != parents_.end() && "untracked site");
  DBDC_CHECK(aggregator_set_.count(site) == 0 &&
             "use RemoveAggregator for aggregators");
  std::vector<EndpointId>& siblings = children_[it->second];
  siblings.erase(std::remove(siblings.begin(), siblings.end(), site),
                 siblings.end());
  parents_.erase(it);
}

void Topology::RemoveAggregator(EndpointId aggregator) {
  const auto set_it = aggregator_set_.find(aggregator);
  DBDC_CHECK(set_it != aggregator_set_.end() && "untracked aggregator");
  const auto parent_it = parents_.find(aggregator);
  DBDC_CHECK(parent_it != parents_.end());
  const EndpointId parent = parent_it->second;

  // Splice the orphans into the grandparent's child list at the dead
  // node's position, keeping their relative order — the shape after a
  // death is a pure function of the shape before it.
  std::vector<EndpointId> orphans;
  const auto child_it = children_.find(aggregator);
  if (child_it != children_.end()) {
    orphans = std::move(child_it->second);
    children_.erase(child_it);
  }
  std::vector<EndpointId>& siblings = children_[parent];
  const auto pos =
      std::find(siblings.begin(), siblings.end(), aggregator);
  DBDC_CHECK(pos != siblings.end());
  const auto insert_at = siblings.erase(pos);
  siblings.insert(insert_at, orphans.begin(), orphans.end());
  for (const EndpointId orphan : orphans) parents_[orphan] = parent;

  parents_.erase(parent_it);
  aggregator_set_.erase(set_it);
  aggregators_.erase(
      std::remove(aggregators_.begin(), aggregators_.end(), aggregator),
      aggregators_.end());
}

}  // namespace dbdc
