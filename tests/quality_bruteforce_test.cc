// Cross-checks the evaluation measures against independent brute-force
// reimplementations on randomized labelings.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "eval/external_indices.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

using Labels = std::vector<ClusterId>;

Labels RandomLabels(std::size_t n, int max_cluster, Rng* rng) {
  Labels labels(n);
  for (auto& label : labels) {
    label = static_cast<ClusterId>(rng->UniformInt(-1, max_cluster));
  }
  return labels;
}

/// O(n^2) per-object P^II straight from Def. 11.
double BruteForceP2(const Labels& distr, const Labels& central) {
  const std::size_t n = distr.size();
  if (n == 0) return 1.0;
  double total = 0.0;
  for (std::size_t x = 0; x < n; ++x) {
    if (distr[x] < 0 && central[x] < 0) {
      total += 1.0;
    } else if (distr[x] >= 0 && central[x] >= 0) {
      std::size_t inter = 0, uni = 0;
      for (std::size_t y = 0; y < n; ++y) {
        const bool in_d = distr[y] == distr[x] && distr[y] >= 0;
        const bool in_c = central[y] == central[x] && central[y] >= 0;
        if (in_d && in_c) ++inter;
        if (in_d || in_c) ++uni;
      }
      total += static_cast<double>(inter) / static_cast<double>(uni);
    }
  }
  return total / static_cast<double>(n);
}

/// O(n^2) P^I from Def. 10.
double BruteForceP1(const Labels& distr, const Labels& central, int qp) {
  const std::size_t n = distr.size();
  if (n == 0) return 1.0;
  double total = 0.0;
  for (std::size_t x = 0; x < n; ++x) {
    if (distr[x] < 0 && central[x] < 0) {
      total += 1.0;
    } else if (distr[x] >= 0 && central[x] >= 0) {
      int inter = 0;
      for (std::size_t y = 0; y < n; ++y) {
        if (distr[y] == distr[x] && central[y] == central[x]) ++inter;
      }
      if (inter >= qp) total += 1.0;
    }
  }
  return total / static_cast<double>(n);
}

/// O(n^2) Rand index with noise-as-singletons.
double BruteForceRand(const Labels& a, const Labels& b) {
  const std::size_t n = a.size();
  auto together = [](const Labels& l, std::size_t i, std::size_t j) {
    return l[i] >= 0 && l[i] == l[j];  // Noise is never together.
  };
  std::size_t agree = 0, pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ++pairs;
      if (together(a, i, j) == together(b, i, j)) ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(pairs);
}

class BruteForceCrossCheckTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BruteForceCrossCheckTest, P1AndP2MatchTheDefinitions) {
  Rng rng(GetParam());
  const Labels distr = RandomLabels(150, 4, &rng);
  const Labels central = RandomLabels(150, 3, &rng);
  EXPECT_NEAR(QualityP2(distr, central), BruteForceP2(distr, central),
              1e-12);
  for (const int qp : {1, 2, 5}) {
    EXPECT_NEAR(QualityP1(distr, central, qp),
                BruteForceP1(distr, central, qp), 1e-12)
        << "qp=" << qp;
  }
}

TEST_P(BruteForceCrossCheckTest, RandIndexMatchesPairCounting) {
  Rng rng(GetParam() + 17);
  const Labels a = RandomLabels(120, 3, &rng);
  const Labels b = RandomLabels(120, 4, &rng);
  EXPECT_NEAR(RandIndex(a, b), BruteForceRand(a, b), 1e-12);
}

TEST_P(BruteForceCrossCheckTest, NmiSymmetricAndBounded) {
  Rng rng(GetParam() + 29);
  const Labels a = RandomLabels(200, 5, &rng);
  const Labels b = RandomLabels(200, 2, &rng);
  const double ab = NormalizedMutualInformation(a, b);
  const double ba = NormalizedMutualInformation(b, a);
  EXPECT_NEAR(ab, ba, 1e-12);
  EXPECT_GE(ab, -1e-12);
  EXPECT_LE(ab, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceCrossCheckTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace dbdc
