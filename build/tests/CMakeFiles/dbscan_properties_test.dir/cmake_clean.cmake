file(REMOVE_RECURSE
  "CMakeFiles/dbscan_properties_test.dir/dbscan_properties_test.cc.o"
  "CMakeFiles/dbscan_properties_test.dir/dbscan_properties_test.cc.o.d"
  "dbscan_properties_test"
  "dbscan_properties_test.pdb"
  "dbscan_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscan_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
