#ifndef DBDC_DISTRIB_NETWORK_H_
#define DBDC_DISTRIB_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace dbdc {

/// Endpoint id on the simulated network. The server is kServerEndpoint;
/// sites use their non-negative site index.
using EndpointId = int;
inline constexpr EndpointId kServerEndpoint = -1;

/// A recorded transmission.
struct NetworkMessage {
  EndpointId from = 0;
  EndpointId to = 0;
  std::vector<std::uint8_t> payload;
};

/// In-process stand-in for the wide-area links between sites and server.
///
/// DBDC's efficiency claim rests on transmitting only the local models
/// instead of the raw data; this class makes that cost observable: every
/// model crosses it as real serialized bytes, and byte counters plus an
/// optional bandwidth/latency model translate them into transfer-time
/// estimates. (The paper reports no wire times — sites were simulated on
/// one machine — so counters are the faithful reproduction.)
class SimulatedNetwork {
 public:
  SimulatedNetwork() = default;

  /// Link model used by EstimateTransferSeconds.
  struct LinkModel {
    double bandwidth_bytes_per_sec = 1e6;  // ~8 Mbit/s WAN default.
    double latency_sec = 0.05;
  };

  /// Delivers `payload` from `from` to `to`, recording it. Returns the
  /// message index.
  std::size_t Send(EndpointId from, EndpointId to,
                   std::vector<std::uint8_t> payload);

  /// Messages received by `endpoint`, in arrival order.
  std::vector<const NetworkMessage*> Inbox(EndpointId endpoint) const;

  /// All recorded messages in send order.
  const std::vector<NetworkMessage>& messages() const { return messages_; }

  /// Total bytes sent from sites to the server (local models).
  std::uint64_t BytesUplink() const;
  /// Total bytes sent from the server to sites (global model broadcast).
  std::uint64_t BytesDownlink() const;
  std::uint64_t BytesTotal() const;

  /// Transfer-time estimate for a payload of `bytes` under `link`.
  static double EstimateTransferSeconds(std::uint64_t bytes,
                                        const LinkModel& link);

  void Clear() { messages_.clear(); }

 private:
  std::vector<NetworkMessage> messages_;
};

}  // namespace dbdc

#endif  // DBDC_DISTRIB_NETWORK_H_
