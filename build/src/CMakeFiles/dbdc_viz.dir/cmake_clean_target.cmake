file(REMOVE_RECURSE
  "libdbdc_viz.a"
)
