# Empty compiler generated dependencies file for protocol_invariants_test.
# This may be replaced when dependencies are built.
