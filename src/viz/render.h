#ifndef DBDC_VIZ_RENDER_H_
#define DBDC_VIZ_RENDER_H_

#include <span>
#include <string>

#include "cluster/optics.h"
#include "common/dataset.h"
#include "common/types.h"

namespace dbdc {

/// Renders a 2-d dataset as an ASCII scatter plot (for terminals and
/// logs): clusters print as letters a, b, c, ..., noise as '.', empty
/// cells as ' '. When several points share a character cell, the most
/// frequent cluster wins. `labels` may be empty (everything drawn 'o').
std::string AsciiScatter(const Dataset& data,
                         std::span<const ClusterId> labels, int width = 78,
                         int height = 24);

/// Writes a 2-d dataset as a binary PPM (P6) image, points colored by
/// cluster (noise is gray, background white) — the counterpart of the
/// paper's Fig. 6 scatter plots. Returns false on IO failure.
bool WriteScatterPpm(const std::string& path, const Dataset& data,
                     std::span<const ClusterId> labels, int width = 600,
                     int height = 600);

/// Renders an OPTICS reachability plot as ASCII bars (the visualization
/// Sec. 6 alludes to for choosing Eps_global interactively). Bars are
/// scaled to `height` rows; undefined reachabilities render at full
/// height. At most `width` ordering positions are shown (uniform
/// subsampling beyond that).
std::string AsciiReachabilityPlot(const OpticsResult& optics, int width = 78,
                                  int height = 16);

}  // namespace dbdc

#endif  // DBDC_VIZ_RENDER_H_
