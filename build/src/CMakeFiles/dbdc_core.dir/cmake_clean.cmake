file(REMOVE_RECURSE
  "CMakeFiles/dbdc_core.dir/core/dbdc.cc.o"
  "CMakeFiles/dbdc_core.dir/core/dbdc.cc.o.d"
  "CMakeFiles/dbdc_core.dir/core/global_model.cc.o"
  "CMakeFiles/dbdc_core.dir/core/global_model.cc.o.d"
  "CMakeFiles/dbdc_core.dir/core/local_model.cc.o"
  "CMakeFiles/dbdc_core.dir/core/local_model.cc.o.d"
  "CMakeFiles/dbdc_core.dir/core/model_codec.cc.o"
  "CMakeFiles/dbdc_core.dir/core/model_codec.cc.o.d"
  "CMakeFiles/dbdc_core.dir/core/optics_global.cc.o"
  "CMakeFiles/dbdc_core.dir/core/optics_global.cc.o.d"
  "CMakeFiles/dbdc_core.dir/core/relabel.cc.o"
  "CMakeFiles/dbdc_core.dir/core/relabel.cc.o.d"
  "CMakeFiles/dbdc_core.dir/core/server.cc.o"
  "CMakeFiles/dbdc_core.dir/core/server.cc.o.d"
  "CMakeFiles/dbdc_core.dir/core/site.cc.o"
  "CMakeFiles/dbdc_core.dir/core/site.cc.o.d"
  "CMakeFiles/dbdc_core.dir/core/streaming_site.cc.o"
  "CMakeFiles/dbdc_core.dir/core/streaming_site.cc.o.d"
  "libdbdc_core.a"
  "libdbdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
