file(REMOVE_RECURSE
  "CMakeFiles/param_estimation_test.dir/param_estimation_test.cc.o"
  "CMakeFiles/param_estimation_test.dir/param_estimation_test.cc.o.d"
  "param_estimation_test"
  "param_estimation_test.pdb"
  "param_estimation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
