#include "eval/silhouette.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace dbdc {

double SilhouetteCoefficient(const Dataset& data,
                             std::span<const ClusterId> labels,
                             const Metric& metric, std::size_t max_samples,
                             std::uint64_t seed, int threads) {
  DBDC_CHECK(labels.size() == data.size());
  std::vector<PointId> clustered;
  std::unordered_map<ClusterId, std::size_t> cluster_sizes;
  for (PointId p = 0; p < static_cast<PointId>(data.size()); ++p) {
    if (labels[p] >= 0) {
      clustered.push_back(p);
      ++cluster_sizes[labels[p]];
    }
  }
  if (cluster_sizes.size() < 2) return 0.0;

  std::vector<PointId> samples = clustered;
  if (samples.size() > max_samples) {
    Rng rng(seed);
    std::shuffle(samples.begin(), samples.end(), rng.engine());
    samples.resize(max_samples);
  }

  // Each sample's silhouette is independent (it reads all clustered
  // points but writes only its own slot); the final sum runs in sample
  // order on this thread, so every thread count produces the same bits.
  std::vector<double> scores(samples.size(), 0.0);
  ThreadPool pool(threads);
  pool.ParallelChunks(
      samples.size(),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        std::unordered_map<ClusterId, double> dist_sum;
        for (std::size_t s = begin; s < end; ++s) {
          const PointId p = samples[s];
          const ClusterId own = labels[p];
          if (cluster_sizes.at(own) <= 1) continue;  // Singleton: s = 0.
          dist_sum.clear();
          for (const PointId q : clustered) {
            if (q == p) continue;
            dist_sum[labels[q]] +=
                metric.Distance(data.point(p), data.point(q));
          }
          const double a =
              dist_sum[own] / static_cast<double>(cluster_sizes.at(own) - 1);
          double b = std::numeric_limits<double>::max();
          for (const auto& [cluster, sum] : dist_sum) {
            if (cluster == own) continue;
            b = std::min(b, sum / static_cast<double>(cluster_sizes.at(cluster)));
          }
          scores[s] = (b - a) / std::max(a, b);
        }
      });
  double total = 0.0;
  for (const double s : scores) total += s;
  return total / static_cast<double>(samples.size());
}

}  // namespace dbdc
