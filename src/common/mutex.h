#ifndef DBDC_COMMON_MUTEX_H_
#define DBDC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace dbdc {

/// Annotated mutex: a std::mutex the Clang Thread Safety Analysis can
/// reason about. Every shared-state surface in the library (ThreadPool,
/// obs::MetricsRegistry, obs::Tracer) uses this wrapper so that
/// DBDC_GUARDED_BY contracts on the data they protect are checked at
/// compile time under the `tsafety` preset (DESIGN.md §10).
class DBDC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DBDC_ACQUIRE() { mu_.lock(); }
  void Unlock() DBDC_RELEASE() { mu_.unlock(); }
  bool TryLock() DBDC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex; the analysis treats the scope of a MutexLock as
/// the region where the capability is held.
class DBDC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DBDC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DBDC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait() takes no predicate:
/// callers re-check their condition in a `while` loop *in their own
/// body*, where the analysis can see the guarded reads happening under
/// the lock (a predicate lambda would be a separate, unannotated
/// function and defeat the analysis).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks until notified (or spuriously
  /// woken), and re-acquires *mu before returning. The caller must hold
  /// *mu and must loop on its condition.
  void Wait(Mutex* mu) DBDC_REQUIRES(mu) { WaitInternal(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // The unlock/relock handshake happens inside std::condition_variable,
  // which the analysis cannot model; the wrapper re-establishes the
  // "held on entry, held on exit" contract that Wait() advertises.
  void WaitInternal(Mutex* mu) DBDC_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  std::condition_variable cv_;
};

}  // namespace dbdc

#endif  // DBDC_COMMON_MUTEX_H_
