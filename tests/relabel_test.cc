#include <gtest/gtest.h>

#include <vector>

#include "core/global_model.h"
#include "core/relabel.h"

namespace dbdc {
namespace {

/// Builds a GlobalModel directly from (center, eps, global cluster)
/// triples.
GlobalModel MakeGlobal(
    const std::vector<std::tuple<Point, double, ClusterId>>& reps) {
  GlobalModel global;
  DBDC_CHECK(!reps.empty());
  global.rep_points = Dataset(static_cast<int>(std::get<0>(reps[0]).size()));
  ClusterId max_cluster = -1;
  for (const auto& [center, eps, cluster] : reps) {
    global.rep_points.Add(center);
    global.rep_eps.push_back(eps);
    global.rep_global_cluster.push_back(cluster);
    global.rep_site.push_back(0);
    global.rep_local_cluster.push_back(0);
    max_cluster = std::max(max_cluster, cluster);
  }
  global.num_global_clusters = max_cluster + 1;
  global.eps_global_used = 1.0;
  return global;
}

TEST(RelabelTest, FigureFiveScenario) {
  // Fig. 5: local representatives R1, R2 (each their own local cluster)
  // and R3 from another site all belong to global cluster 0. Local noise
  // A, B fall inside the ε-neighborhood of R3 and get absorbed; C stays
  // noise.
  const GlobalModel global = MakeGlobal({
      {{0.0, 0.0}, 1.5, 0},   // R1
      {{3.0, 0.0}, 1.5, 0},   // R2
      {{6.0, 0.0}, 2.5, 0},   // R3 (remote site, big ε-range).
  });
  Dataset site(2);
  site.Add(Point{0.5, 0.0});   // Member of former local cluster 1.
  site.Add(Point{3.2, 0.0});   // Member of former local cluster 2.
  site.Add(Point{5.0, 0.0});   // A: former noise, within ε_R3 (dist 1.0).
  site.Add(Point{7.5, 0.5});   // B: former noise, within ε_R3.
  site.Add(Point{9.5, 0.0});   // C: outside every ε-range -> stays noise.
  const std::vector<ClusterId> labels =
      RelabelSite(site, global, Euclidean());
  EXPECT_EQ(labels[0], 0);  // Former cluster 1 merged into global 0.
  EXPECT_EQ(labels[1], 0);  // Former cluster 2 merged into global 0.
  EXPECT_EQ(labels[2], 0);  // A absorbed.
  EXPECT_EQ(labels[3], 0);  // B absorbed.
  EXPECT_EQ(labels[4], kNoise);  // C remains noise.
}

TEST(RelabelTest, NearestCoveringRepresentativeWins) {
  const GlobalModel global = MakeGlobal({
      {{0.0, 0.0}, 2.0, 0},
      {{3.0, 0.0}, 2.0, 1},
  });
  Dataset site(2);
  site.Add(Point{1.2, 0.0});  // Covered by both; nearer to rep 0.
  site.Add(Point{1.8, 0.0});  // Covered by both; nearer to rep 1.
  const std::vector<ClusterId> labels =
      RelabelSite(site, global, Euclidean());
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 1);
}

TEST(RelabelTest, RespectsPerRepresentativeRanges) {
  // Two reps with very different ε-ranges: coverage is per-rep, not
  // uniform.
  const GlobalModel global = MakeGlobal({
      {{0.0, 0.0}, 0.5, 0},
      {{10.0, 0.0}, 4.0, 1},
  });
  Dataset site(2);
  site.Add(Point{0.8, 0.0});   // 0.8 > 0.5: NOT covered by rep 0.
  site.Add(Point{13.5, 0.0});  // 3.5 <= 4.0: covered by rep 1.
  const std::vector<ClusterId> labels =
      RelabelSite(site, global, Euclidean());
  EXPECT_EQ(labels[0], kNoise);
  EXPECT_EQ(labels[1], 1);
}

TEST(RelabelTest, BoundaryIsInclusive) {
  const GlobalModel global = MakeGlobal({{{0.0, 0.0}, 1.0, 0}});
  Dataset site(2);
  site.Add(Point{1.0, 0.0});  // Exactly ε_r away.
  const std::vector<ClusterId> labels =
      RelabelSite(site, global, Euclidean());
  EXPECT_EQ(labels[0], 0);
}

TEST(RelabelTest, EmptySiteAndEmptyModel) {
  const GlobalModel global = MakeGlobal({{{0.0, 0.0}, 1.0, 0}});
  Dataset empty_site(2);
  EXPECT_TRUE(RelabelSite(empty_site, global, Euclidean()).empty());

  GlobalModel empty_model;
  Dataset site(2);
  site.Add(Point{1.0, 2.0});
  const std::vector<ClusterId> labels =
      RelabelSite(site, empty_model, Euclidean());
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], kNoise);
}

}  // namespace
}  // namespace dbdc
