#include "core/server.h"

#include <utility>

#include "common/timer.h"
#include "core/model_codec.h"

namespace dbdc {

DecodeStatus Server::AddLocalModelBytes(std::span<const std::uint8_t> bytes) {
  LocalModel model;
  const DecodeStatus status = DecodeLocalModel(bytes, &model);
  if (status != DecodeStatus::kOk) return status;
  locals_.push_back(std::move(model));
  return DecodeStatus::kOk;
}

void Server::AddLocalModel(LocalModel model) {
  locals_.push_back(std::move(model));
}

void Server::UpsertLocalModel(LocalModel model) {
  for (LocalModel& existing : locals_) {
    if (existing.site_id == model.site_id) {
      existing = std::move(model);
      return;
    }
  }
  locals_.push_back(std::move(model));
}

DecodeStatus Server::UpsertLocalModelBytes(
    std::span<const std::uint8_t> bytes) {
  LocalModel model;
  const DecodeStatus status = DecodeLocalModel(bytes, &model);
  if (status != DecodeStatus::kOk) return status;
  UpsertLocalModel(std::move(model));
  return DecodeStatus::kOk;
}

bool Server::RemoveLocalModel(int site_id) {
  for (std::size_t i = 0; i < locals_.size(); ++i) {
    if (locals_[i].site_id == site_id) {
      locals_.erase(locals_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

const GlobalModel& Server::BuildGlobal() {
  Timer timer;
  global_ = strategy_ != nullptr
                ? strategy_->Build(locals_, *metric_, params_)
                : BuildGlobalModel(locals_, *metric_, params_);
  global_seconds_ = timer.Seconds();
  return global_;
}

std::vector<std::uint8_t> Server::EncodeGlobalModelBytes() const {
  return EncodeGlobalModel(global_);
}

}  // namespace dbdc
