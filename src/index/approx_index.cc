#include "index/approx_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "obs/metrics.h"

namespace dbdc {
namespace {

// Splitmix-style integer mix for cell-coordinate hashing (the same scheme
// GridIndex uses for its spatial cells).
inline std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

// Upper bound of ||.||_2 / d_metric over difference vectors: the factor
// the projected query window must be inflated by so Cauchy–Schwarz
// coverage holds for the metric. L2: equality. L1: ||.||_2 <= ||.||_1.
// L∞: ||.||_2 <= sqrt(dim) * ||.||_∞.
double MetricInflation(const Metric& metric, int dim) {
  const std::string_view name = metric.name();
  if (name == "euclidean" || name == "manhattan") return 1.0;
  if (name == "chebyshev") {
    return std::sqrt(static_cast<double>(dim > 0 ? dim : 1));
  }
  DBDC_CHECK(false && "ApproxIndex supports euclidean/manhattan/chebyshev");
  return 0.0;
}

// Absolute slack added to each projected window edge, scaled by the score
// magnitude, so floating-point rounding in the dot products can never
// push a boundary neighbor's cell outside the scanned box. ~1e4 times any
// realistic accumulated dot-product error, and at most one extra cell per
// axis in the pathological case.
constexpr double kWindowPad = 1e-9;

// One registry flush per query (or per batch) — never per cell. The
// --metrics reconciler asserts generated == verified + pruned.
void FlushApproxQueryMetrics(std::uint64_t examined, std::uint64_t accepted,
                             const simd::KernelStats& kstats) {
  if (examined == 0) return;
  if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
    metrics->Add(obs::Counter::kApproxCandidatesGenerated, examined);
    metrics->Add(obs::Counter::kApproxCandidatesVerified, accepted);
    metrics->Add(obs::Counter::kApproxCandidatesPruned, examined - accepted);
    if (kstats.blocks_scored != 0) {  // Zero in reference-scan mode.
      metrics->Add(obs::Counter::kSimdBlocksScored, kstats.blocks_scored);
      metrics->Add(obs::Counter::kSimdCandidatesFiltered,
                   kstats.candidates_filtered);
    }
  }
}

}  // namespace

ApproxIndex::ApproxIndex(const Dataset& data, const Metric& metric,
                         double eps_hint, const ApproxIndexOptions& options,
                         bool index_all)
    : data_(&data),
      metric_(&metric),
      options_(options),
      euclidean_(IsEuclideanMetric(metric)),
      inflation_(MetricInflation(metric, data.dim())),
      eps_hint_(eps_hint) {
  DBDC_CHECK(std::isfinite(eps_hint) && eps_hint > 0.0);
  DBDC_CHECK(options_.num_projections >= 1);
  DBDC_CHECK(std::isfinite(options_.cell_width_factor) &&
             options_.cell_width_factor > 0.0);
  DBDC_CHECK(std::isfinite(options_.window_scale) &&
             options_.window_scale > 0.0);
  cell_width_ = options_.cell_width_factor * eps_hint * inflation_;
  // Seeded Gaussian directions, normalized to unit length so the
  // Cauchy–Schwarz window bound applies directly.
  const std::size_t sdim = static_cast<std::size_t>(data.dim());
  const std::size_t snp = static_cast<std::size_t>(options_.num_projections);
  Rng rng(options_.seed);
  directions_.resize(snp * sdim);
  for (std::size_t i = 0; i < snp; ++i) {
    double* dir = directions_.data() + i * sdim;
    double norm_sq = 0.0;
    do {
      norm_sq = 0.0;
      for (std::size_t j = 0; j < sdim; ++j) {
        dir[j] = rng.Gaussian(0.0, 1.0);
        norm_sq += dir[j] * dir[j];
      }
    } while (sdim > 0 && norm_sq < 1e-24);
    if (sdim > 0) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (std::size_t j = 0; j < sdim; ++j) dir[j] *= inv;
    }
  }
  if (index_all) {
    for (PointId id = 0; id < static_cast<PointId>(data.size()); ++id) {
      Insert(id);
    }
  }
}

void ApproxIndex::Scores(std::span<const double> p,
                         std::vector<double>* s) const {
  const std::size_t sdim = static_cast<std::size_t>(data_->dim());
  const std::size_t snp = static_cast<std::size_t>(options_.num_projections);
  s->resize(snp);
  for (std::size_t i = 0; i < snp; ++i) {
    const double* dir = directions_.data() + i * sdim;
    double dot = 0.0;
    for (std::size_t j = 0; j < sdim; ++j) dot += dir[j] * p[j];
    (*s)[i] = dot;
  }
}

void ApproxIndex::CellCoords(const std::vector<double>& s,
                             std::vector<std::int64_t>* c) const {
  c->resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    (*c)[i] = static_cast<std::int64_t>(std::floor(s[i] / cell_width_));
  }
}

ApproxIndex::CellKey ApproxIndex::HashCoords(
    const std::vector<std::int64_t>& c) const {
  std::uint64_t h = Mix(0x51ed270b0a1f2c3dULL, options_.seed);
  for (const std::int64_t v : c) h = Mix(h, static_cast<std::uint64_t>(v));
  return h;
}

void ApproxIndex::VerifyCell(std::span<const double> q, double eps,
                             double eps_sq, const std::vector<PointId>& ids,
                             std::uint64_t* examined,
                             simd::KernelStats* kstats,
                             std::vector<PointId>* out) const {
  *examined += ids.size();
  const int dim = data_->dim();
  const std::size_t sdim = static_cast<std::size_t>(dim);
  if (euclidean_) {
    if (simd::ReferenceScanEnabled()) {
      // Pre-batching scan: one inlined squared distance per candidate.
      // Only the filtered count is accounted — no kernel blocks ran.
      for (const PointId id : ids) {
        if (simd::ReferenceSquaredL2(
                q.data(), data_->raw() + static_cast<std::size_t>(id) * sdim,
                dim) <= eps_sq) {
          out->push_back(id);
        } else {
          ++kstats->candidates_filtered;
        }
      }
    } else {
      // A whole cell's candidate list is one block through the batched
      // kernel (squared distances vs eps², no sqrt, no virtual call).
      simd::FilterIdsSquaredEuclidean(q.data(), data_->raw(), dim, eps_sq,
                                      ids.data(), ids.size(), out, kstats);
    }
  } else {
    for (const PointId id : ids) {
      if (metric_->Distance(q, data_->point(id)) <= eps) out->push_back(id);
    }
  }
}

void ApproxIndex::ScanWindow(std::span<const double> q, double eps,
                             std::vector<double>* s,
                             std::vector<std::int64_t>* lo,
                             std::vector<std::int64_t>* hi,
                             std::vector<std::int64_t>* cur,
                             std::uint64_t* examined, std::uint64_t* accepted,
                             simd::KernelStats* kstats,
                             std::vector<PointId>* out) const {
  DBDC_CHECK(static_cast<int>(q.size()) == data_->dim());
  const std::size_t first_out = out->size();
  const int np = options_.num_projections;
  const std::size_t snp = static_cast<std::size_t>(np);
  Scores(q, s);
  lo->resize(snp);
  hi->resize(snp);
  cur->resize(snp);
  // Projected window half-width: covers every true ε-neighbor when
  // window_scale = 1.0 (see class comment), padded against fp rounding.
  const double window = options_.window_scale * inflation_ * eps;
  // Cell count of the window box, in floating point so extreme
  // eps/cell-width ratios saturate instead of overflowing.
  double box_cells = 1.0;
  for (std::size_t i = 0; i < snp; ++i) {
    const double si = (*s)[i];
    const double t = window + kWindowPad * (1.0 + std::fabs(si));
    (*lo)[i] = static_cast<std::int64_t>(std::floor((si - t) / cell_width_));
    (*hi)[i] = static_cast<std::int64_t>(std::floor((si + t) / cell_width_));
    box_cells *= static_cast<double>((*hi)[i] - (*lo)[i] + 1);
  }
  const double eps_sq = eps * eps;
  if (box_cells > static_cast<double>(cells_.size())) {
    // The window box spans more cells than exist: walking the occupied
    // cells is cheaper (and bounds every query at O(occupied cells +
    // candidates), whatever eps is).
    for (const auto& [key, cell] : cells_) {
      bool inside = true;
      for (std::size_t i = 0; i < snp; ++i) {
        if (cell.coords[i] < (*lo)[i] || cell.coords[i] > (*hi)[i]) {
          inside = false;
          break;
        }
      }
      if (inside) VerifyCell(q, eps, eps_sq, cell.ids, examined, kstats, out);
    }
  } else {
    // Odometer-style advance through the window box.
    *cur = *lo;
    while (true) {
      const auto it = cells_.find(HashCoords(*cur));
      if (it != cells_.end()) {
        VerifyCell(q, eps, eps_sq, it->second.ids, examined, kstats, out);
      }
      std::size_t axis = 0;
      while (axis < snp) {
        if (++(*cur)[axis] <= (*hi)[axis]) break;
        (*cur)[axis] = (*lo)[axis];
        ++axis;
      }
      if (axis == snp) break;
    }
  }
  *accepted += out->size() - first_out;
  // Sort + dedup the accepted slice: each point lives in exactly one cell,
  // so duplicates require a 64-bit cell-hash collision — but dedup is
  // cheap on the small accepted set and makes the ascending-id output
  // contract unconditional (bit-identical to LinearScanIndex at full
  // recall).
  std::sort(out->begin() + static_cast<std::ptrdiff_t>(first_out), out->end());
  out->erase(std::unique(out->begin() + static_cast<std::ptrdiff_t>(first_out),
                         out->end()),
             out->end());
}

void ApproxIndex::RangeQuery(std::span<const double> q, double eps,
                             std::vector<PointId>* out) const {
  out->clear();
  std::vector<double> s;
  std::vector<std::int64_t> lo, hi, cur;
  std::uint64_t examined = 0;
  std::uint64_t accepted = 0;
  simd::KernelStats kstats;
  ScanWindow(q, eps, &s, &lo, &hi, &cur, &examined, &accepted, &kstats, out);
  FlushApproxQueryMetrics(examined, accepted, kstats);
}

void ApproxIndex::BatchRangeQuery(std::span<const PointId> queries, double eps,
                                  std::vector<PointId>* out_ids,
                                  std::vector<std::size_t>* out_counts) const {
  out_ids->clear();
  out_counts->clear();
  out_counts->reserve(queries.size());
  std::vector<double> s;
  std::vector<std::int64_t> lo, hi, cur;
  std::uint64_t examined = 0;
  std::uint64_t accepted = 0;
  simd::KernelStats kstats;
  for (const PointId p : queries) {
    const std::size_t before = out_ids->size();
    ScanWindow(data_->point(p), eps, &s, &lo, &hi, &cur, &examined, &accepted,
               &kstats, out_ids);
    out_counts->push_back(out_ids->size() - before);
  }
  FlushApproxQueryMetrics(examined, accepted, kstats);
}

void ApproxIndex::KnnQuery(std::span<const double> q, int k,
                           std::vector<PointId>* out) const {
  out->clear();
  if (k <= 0 || count_ == 0) return;
  const std::size_t want = std::min<std::size_t>(static_cast<std::size_t>(k),
                                                 count_);
  // Expanding-radius search, exact once the k-th neighbor lies within the
  // scanned radius (at window_scale = 1.0; approximate below that, though
  // still terminating — the window eventually covers every occupied cell).
  double r = eps_hint_;
  std::vector<PointId> candidates;
  std::vector<std::pair<double, PointId>> scored;
  for (;;) {
    RangeQuery(q, r, &candidates);
    if (candidates.size() >= want) {
      scored.clear();
      scored.reserve(candidates.size());
      for (const PointId id : candidates) {
        scored.emplace_back(metric_->Distance(q, data_->point(id)), id);
      }
      // Pair order pins ties to (distance, id) ascending.
      std::sort(scored.begin(), scored.end());
      if (scored[want - 1].first <= r) {
        for (std::size_t i = 0; i < want; ++i) out->push_back(scored[i].second);
        return;
      }
    }
    r *= 2.0;
    DBDC_CHECK(r < std::numeric_limits<double>::max() / 4.0);
  }
}

void ApproxIndex::Insert(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  std::vector<double> s;
  std::vector<std::int64_t> c;
  Scores(data_->point(id), &s);
  CellCoords(s, &c);
  Cell& cell = cells_[HashCoords(c)];
  if (cell.ids.empty()) cell.coords = c;
  cell.ids.push_back(id);
  ++count_;
}

void ApproxIndex::Erase(PointId id) {
  DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < data_->size());
  std::vector<double> s;
  std::vector<std::int64_t> c;
  Scores(data_->point(id), &s);
  CellCoords(s, &c);
  const auto it = cells_.find(HashCoords(c));
  DBDC_CHECK(it != cells_.end());
  auto& ids = it->second.ids;
  const auto pos = std::find(ids.begin(), ids.end(), id);
  DBDC_CHECK(pos != ids.end());
  *pos = ids.back();
  ids.pop_back();
  if (ids.empty()) cells_.erase(it);
  --count_;
}

}  // namespace dbdc
