// Related-work comparison (paper Sec. 2.2 and Sec. 4): DBDC versus the
// two families it is contrasted against —
//  * distributed k-means (Dhillon & Modha [5]): iterative
//    broadcast/reduce rounds, requires k, assumes globular clusters;
//  * exact parallel DBSCAN (Xu et al. [21] in spirit): central spatial
//    partitioning + halo replication + merge, exact but
//    communication-heavy.
//
// Two workloads: the paper-style blob set A (everyone's easy case) and a
// blob-in-ring set (non-globular — the Sec. 4 argument for density-based
// clustering). Reported: quality vs the central DBSCAN reference, bytes
// on the wire, and the overall runtime under the common cost model.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baseline/distributed_kmeans.h"
#include "baseline/parallel_dbscan.h"
#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/external_indices.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

constexpr int kSites = 4;

struct Row {
  std::string workload;
  std::string method;
  double p2 = 0.0;   // Vs central DBSCAN.
  double ari = 0.0;  // Vs central DBSCAN.
  std::uint64_t bytes = 0;
  double overall_s = 0.0;
  int clusters = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

struct Workload {
  std::string name;
  SyntheticDataset synth;
  int true_k;
};

Workload MakeWorkload(int idx) {
  if (idx == 0) {
    return {"blobs (set A)", MakeTestDatasetA(), 13};
  }
  // Blob inside a ring: non-globular.
  Workload w;
  w.name = "ring + blob";
  w.true_k = 2;
  w.synth.name = "ring";
  w.synth.data = Dataset(2);
  Rng rng(11);
  AppendBlob({{50.0, 50.0}, 1.5, 2000}, 0, &rng, &w.synth.data,
             &w.synth.true_labels);
  AppendRing({50.0, 50.0}, 15.0, 0.5, 4000, 1, &rng, &w.synth.data,
             &w.synth.true_labels);
  w.synth.suggested_params = {1.5, 5};
  w.synth.num_components = 2;
  return w;
}

void BM_Comparison(benchmark::State& state) {
  const Workload workload = MakeWorkload(static_cast<int>(state.range(0)));
  const SyntheticDataset& synth = workload.synth;
  const Clustering central = RunCentralDbscan(
      synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
  for (auto _ : state) {
    // DBDC.
    DbdcConfig dbdc_config;
    dbdc_config.local_dbscan = synth.suggested_params;
    dbdc_config.num_sites = kSites;
    const DbdcResult dbdc = RunDbdc(synth.data, Euclidean(), dbdc_config);
    Rows().push_back(
        {workload.name, "DBDC(REP_Scor)",
         QualityP2(dbdc.labels, central.labels),
         AdjustedRandIndex(dbdc.labels, central.labels),
         dbdc.bytes_uplink + dbdc.bytes_downlink, dbdc.OverallSeconds(),
         dbdc.num_global_clusters});

    // Exact parallel DBSCAN.
    ParallelDbscanConfig par_config;
    par_config.dbscan = synth.suggested_params;
    par_config.num_workers = kSites;
    const ParallelDbscanResult par =
        RunParallelDbscan(synth.data, Euclidean(), par_config);
    Rows().push_back(
        {workload.name, "parallel DBSCAN [21]",
         QualityP2(par.clustering.labels, central.labels),
         AdjustedRandIndex(par.clustering.labels, central.labels),
         par.bytes_halo + par.bytes_merge, par.OverallSeconds(),
         par.clustering.num_clusters});

    // Distributed k-means with the generator's true k.
    DistributedKMeansConfig km_config;
    km_config.k = workload.true_k;
    km_config.num_sites = kSites;
    const DistributedKMeansResult km =
        RunDistributedKMeans(synth.data, km_config);
    Rows().push_back({workload.name, "distributed k-means [5]",
                      QualityP2(km.labels, central.labels),
                      AdjustedRandIndex(km.labels, central.labels),
                      km.bytes_total,
                      km.max_site_seconds + km.server_seconds,
                      workload.true_k});
    state.counters["done"] = 1;
  }
}

void RegisterAll() {
  for (const int idx : {0, 1}) {
    benchmark::RegisterBenchmark("baseline_comparison", BM_Comparison)
        ->Arg(idx)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Related-work comparison — DBDC vs parallel DBSCAN vs distributed "
      "k-means (4 sites/workers; quality vs central DBSCAN)");
  table.SetHeader({"workload", "method", "P^II [%]", "ARI", "wire bytes",
                   "overall [s]", "clusters"});
  for (const Row& row : Rows()) {
    table.AddRow({row.workload, row.method,
                  bench::Fmt("%.1f", 100.0 * row.p2),
                  bench::Fmt("%.3f", row.ari),
                  bench::Fmt("%llu",
                             static_cast<unsigned long long>(row.bytes)),
                  bench::Fmt("%.4f", row.overall_s),
                  bench::Fmt("%d", row.clusters)});
  }
  table.Print();
  std::printf(
      "Expected contrast: parallel DBSCAN is exact (ARI = 1) but ships "
      "halo points and needs central partitioning; DBDC trades a few "
      "quality points for far less coordination; distributed k-means "
      "needs k upfront, ignores noise, and collapses on the non-globular "
      "workload.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
