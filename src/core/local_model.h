#ifndef DBDC_CORE_LOCAL_MODEL_H_
#define DBDC_CORE_LOCAL_MODEL_H_

#include <memory>
#include <string_view>
#include <vector>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// One transmitted (representative, ε-range) pair: the representative
/// approximates every local object within eps_range of it (Sec. 5).
struct Representative {
  Point center;
  double eps_range = 0.0;
  /// Local cluster the representative describes (diagnostics/tests only;
  /// the global model treats representatives independently).
  ClusterId local_cluster = kNoise;
  /// Number of local objects the representative stands for (the objects
  /// within its ε-range for REP_Scor, the assigned objects for
  /// REP_kMeans). Not part of the EDBT'04 model — an implemented
  /// extension in the direction of the authors' follow-up work: it
  /// enables the *weighted* global core condition of GlobalModelParams,
  /// at 4 extra bytes per representative on the wire.
  std::uint32_t weight = 1;
};

/// The aggregated information a site sends to the server: one entry per
/// representative of each locally found cluster.
struct LocalModel {
  int site_id = 0;
  int dim = 0;
  int num_local_clusters = 0;
  std::vector<Representative> representatives;
};

/// The two local model schemes of the paper (Sec. 5.1 / 5.2).
enum class LocalModelType {
  kScor,    // REP_Scor: specific core points + specific ε-ranges.
  kKMeans,  // REP_kMeans: k-means centroids seeded by specific core points.
};

std::string_view LocalModelTypeName(LocalModelType type);

/// DbscanObserver that computes a complete set of specific core points
/// per cluster (Def. 6) on the fly, exactly as Sec. 4 describes: a core
/// point becomes *specific* iff no earlier specific core point of its
/// cluster lies within Eps of it. The DBSCAN processing order determines
/// the concrete set.
class SpecificCorePointCollector final : public DbscanObserver {
 public:
  SpecificCorePointCollector(const Dataset& data, const Metric& metric,
                             double eps)
      : data_(&data), metric_(&metric), eps_(eps) {}

  void OnClusterStarted(ClusterId cluster) override;
  void OnCorePoint(PointId id, ClusterId cluster) override;

  /// Specific core points per cluster, in discovery order.
  const std::vector<std::vector<PointId>>& per_cluster() const {
    return scor_;
  }

 private:
  const Dataset* data_;
  const Metric* metric_;
  double eps_;
  std::vector<std::vector<PointId>> scor_;
};

/// A local DBSCAN run together with the specific core points it produced.
struct LocalClustering {
  Clustering clustering;
  /// scor[c] = complete set of specific core points of cluster c.
  std::vector<std::vector<PointId>> scor;
};

/// Runs DBSCAN over the site's index and collects the specific core
/// points in the same pass.
LocalClustering RunLocalDbscan(const NeighborIndex& index,
                               const DbscanParams& params);

/// Builds the REP_Scor local model (Sec. 5.1): the representatives are
/// the specific core points themselves; each carries the specific ε-range
/// of Def. 7,  ε_s = Eps + max{dist(s, c) : c core ∧ c ∈ N_Eps(s)}.
LocalModel BuildScorModel(const NeighborIndex& index,
                          const LocalClustering& local,
                          const DbscanParams& params, int site_id);

/// Builds the REP_kMeans local model (Sec. 5.2): per cluster C, k-means
/// with k = |Scor_C| and the specific core points as starting centers;
/// the centroids become the representatives and each ε-range is the
/// maximum distance of the centroid's assigned objects,
/// ε_c = max{dist(o, c) : o assigned to c}.
///
/// k-means averages coordinates, so this model requires a vector space
/// (Euclidean geometry); use REP_Scor for general metric data.
LocalModel BuildKMeansModel(const NeighborIndex& index,
                            const LocalClustering& local,
                            const DbscanParams& params,
                            const KMeansParams& kmeans_params, int site_id);

/// Convenience dispatcher over the two model types.
LocalModel BuildLocalModel(LocalModelType type, const NeighborIndex& index,
                           const LocalClustering& local,
                           const DbscanParams& params,
                           const KMeansParams& kmeans_params, int site_id);

/// Lossy model condensation for constrained uplinks (extension): greedily
/// merges representatives of the same local cluster whose centers are
/// within `condense_eps` of each other, enlarging the survivor's ε-range
/// to ε_new = max(ε_survivor, dist + ε_merged) and summing the weights.
///
/// Guarantee: every local object covered by the input model remains
/// covered by the output model (ranges only grow over the merged areas),
/// so relabeling still reaches every cluster member — the trade-off is
/// coarser ranges, i.e. more aggressive absorption. condense_eps = 0
/// returns the model unchanged. Survivors are chosen heaviest-first
/// (deterministic).
LocalModel CondenseLocalModel(const LocalModel& model, double condense_eps,
                              const Metric& metric);

/// Strategy interface for the engine's BuildLocalModel stage: turns a
/// site's local clustering into the model it transmits. The paper's two
/// schemes and the condensation extension are the stock implementations;
/// a custom strategy can plug in any other summarization without
/// touching Site or the engine. Implementations must be deterministic
/// (same inputs, same model) and thread-compatible: one strategy
/// instance is shared by every site, so Build must be const and carry no
/// mutable state.
class LocalModelStrategy {
 public:
  virtual ~LocalModelStrategy() = default;

  virtual LocalModel Build(const NeighborIndex& index,
                           const LocalClustering& local,
                           const DbscanParams& params,
                           const KMeansParams& kmeans_params,
                           int site_id) const = 0;

  virtual std::string_view name() const = 0;
};

/// REP_Scor (Sec. 5.1) as a strategy — forwards to BuildScorModel.
class ScorModelStrategy final : public LocalModelStrategy {
 public:
  LocalModel Build(const NeighborIndex& index, const LocalClustering& local,
                   const DbscanParams& params, const KMeansParams& kmeans,
                   int site_id) const override;
  std::string_view name() const override { return "rep_scor"; }
};

/// REP_kMeans (Sec. 5.2) as a strategy — forwards to BuildKMeansModel.
class KMeansModelStrategy final : public LocalModelStrategy {
 public:
  LocalModel Build(const NeighborIndex& index, const LocalClustering& local,
                   const DbscanParams& params, const KMeansParams& kmeans,
                   int site_id) const override;
  std::string_view name() const override { return "rep_kmeans"; }
};

/// Decorator applying CondenseLocalModel to the inner strategy's model
/// before transmission (the constrained-uplink extension).
class CondensedModelStrategy final : public LocalModelStrategy {
 public:
  /// `metric` must outlive the strategy.
  CondensedModelStrategy(std::unique_ptr<LocalModelStrategy> inner,
                         double condense_eps, const Metric& metric);
  LocalModel Build(const NeighborIndex& index, const LocalClustering& local,
                   const DbscanParams& params, const KMeansParams& kmeans,
                   int site_id) const override;
  std::string_view name() const override { return "condensed"; }

 private:
  std::unique_ptr<LocalModelStrategy> inner_;
  double condense_eps_;
  const Metric* metric_;
};

/// Builds the strategy matching the legacy (model_type, condense_eps)
/// knobs: Scor or kMeans, wrapped in condensation when condense_eps > 0.
/// The returned strategy reproduces BuildLocalModel + CondenseLocalModel
/// bit for bit.
std::unique_ptr<LocalModelStrategy> MakeLocalModelStrategy(
    LocalModelType type, double condense_eps, const Metric& metric);

}  // namespace dbdc

#endif  // DBDC_CORE_LOCAL_MODEL_H_
