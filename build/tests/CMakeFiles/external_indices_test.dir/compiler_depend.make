# Empty compiler generated dependencies file for external_indices_test.
# This may be replaced when dependencies are built.
