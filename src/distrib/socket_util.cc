#include "distrib/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/timer.h"

namespace dbdc {
namespace {

void AssignError(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best effort: latency tuning, not correctness.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// The POSIX socket API traffics in `sockaddr*` views of the concrete
/// per-family structs; the cast is the API's own idiom.
sockaddr* AsSockaddr(sockaddr_in* addr) {
  return static_cast<sockaddr*>(static_cast<void*>(addr));
}

/// Remaining poll budget in whole milliseconds, >= 1 while the deadline
/// has not passed (poll(0) would busy-spin).
int RemainingMillis(const Timer& timer, double timeout_sec) {
  const double remaining = timeout_sec - timer.Seconds();
  if (remaining <= 0.0) return 0;
  const double ms = remaining * 1e3;
  if (ms >= 60000.0) return 60000;
  const int whole = static_cast<int>(ms);
  return whole < 1 ? 1 : whole;
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd ListenTcp(std::uint16_t port, int backlog, std::uint16_t* bound_port,
             std::string* error) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    AssignError(error, "socket");
    return Fd();
  }
  int one = 1;
  (void)setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd.get(), AsSockaddr(&addr), sizeof(addr)) != 0) {
    AssignError(error, "bind");
    return Fd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    AssignError(error, "listen");
    return Fd();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), AsSockaddr(&bound), &len) != 0) {
      AssignError(error, "getsockname");
      return Fd();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Fd ConnectTcp(const std::string& host, std::uint16_t port,
              double timeout_sec, std::string* error) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    AssignError(error, "socket");
    return Fd();
  }
  sockaddr_in addr = LoopbackAddr(port);
  const std::string resolved =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "cannot parse host '" + host + "' (IPv4 dotted quad "
               "or 'localhost' expected)";
    }
    return Fd();
  }
  // Nonblocking connect + poll gives the wall-clock timeout; the fd is
  // switched back to blocking for the session afterwards.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    AssignError(error, "fcntl");
    return Fd();
  }
  if (::connect(fd.get(), AsSockaddr(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      AssignError(error, "connect");
      return Fd();
    }
    Timer timer;
    for (;;) {
      pollfd pfd{fd.get(), POLLOUT, 0};
      const int ms = RemainingMillis(timer, timeout_sec);
      if (ms == 0) {
        if (error != nullptr) *error = "connect timed out";
        return Fd();
      }
      const int rc = ::poll(&pfd, 1, ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        AssignError(error, "poll");
        return Fd();
      }
      if (rc == 0) continue;  // Re-check the deadline.
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
          soerr != 0) {
        if (error != nullptr) {
          *error = std::string("connect: ") +
                   std::strerror(soerr != 0 ? soerr : errno);
        }
        return Fd();
      }
      break;
    }
  }
  if (::fcntl(fd.get(), F_SETFL, flags) != 0) {
    AssignError(error, "fcntl");
    return Fd();
  }
  SetNoDelay(fd.get());
  return fd;
}

Fd AcceptTcp(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    return Fd();
  }
}

bool WriteAllFd(int fd, std::span<const std::uint8_t> bytes,
                double timeout_sec) {
  Timer timer;
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ms = RemainingMillis(timer, timeout_sec);
      if (ms == 0) return false;
      const int rc = ::poll(&pfd, 1, ms);
      if (rc < 0 && errno != EINTR) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET / other hard error.
  }
  return true;
}

ReadResult ReadSomeFd(int fd, double timeout_sec, std::size_t max_bytes,
                      std::vector<std::uint8_t>* out) {
  Timer timer;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ms = RemainingMillis(timer, timeout_sec);
    const int rc = ::poll(&pfd, 1, ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    if (rc == 0) {
      if (timer.Seconds() >= timeout_sec) return ReadResult::kTimeout;
      continue;
    }
    const std::size_t prev = out->size();
    out->resize(prev + max_bytes);
    const ssize_t n = ::recv(fd, out->data() + prev, max_bytes, 0);
    if (n > 0) {
      out->resize(prev + static_cast<std::size_t>(n));
      return ReadResult::kData;
    }
    out->resize(prev);
    if (n == 0) return ReadResult::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ReadResult::kError;
  }
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace dbdc
