// Bit-identity suite for the batched SIMD distance kernels (DESIGN.md
// §11). The contract under test: every dispatch tier — scalar, SSE2,
// AVX2 — produces *bit-identical* outputs (distances, survivor id
// sequences, DBSCAN labels/core flags/observer events) for every dim,
// batch size, tail shape and alignment, so results can never depend on
// the host CPU. Tiers the machine cannot run are skipped (the scalar
// tier always runs, and on x86 CI hosts SSE2 is guaranteed).

#include "common/simd_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dbscan.h"
#include "common/distance.h"
#include "common/rng.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace dbdc {
namespace {

// Every tier this host can actually execute, scalar first.
std::vector<simd::Tier> SupportedTiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  const int detected = static_cast<int>(simd::DetectedTier());
  if (detected >= static_cast<int>(simd::Tier::kSse2)) {
    tiers.push_back(simd::Tier::kSse2);
  }
  if (detected >= static_cast<int>(simd::Tier::kAvx2)) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

// Restores CPUID auto-dispatch however a test exits.
struct TierGuard {
  TierGuard() = default;
  ~TierGuard() { simd::ResetForcedTier(); }
};

// Bit-level (memcmp) equality: catches -0.0 vs 0.0 and any ULP drift
// that value comparison under -ffast-math-style flags could mask.
void ExpectBitsEqual(const std::vector<double>& a,
                     const std::vector<double>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
  }
}

// Random rows with mixed signs, magnitudes, and exact duplicates of the
// query — the shapes that expose reassociation or compare-direction bugs.
std::vector<double> MakeRows(Rng* rng, std::size_t n, int dim,
                             const std::vector<double>& query) {
  std::vector<double> rows(n * static_cast<std::size_t>(dim));
  for (double& v : rows) v = rng->Uniform(-5.0, 5.0);
  for (std::size_t i = 0; i < n; i += 7) {  // exact-zero-distance rows
    std::copy(query.begin(), query.end(),
              rows.begin() + static_cast<std::ptrdiff_t>(
                                 i * static_cast<std::size_t>(dim)));
  }
  return rows;
}

const std::vector<int> kDims = {1, 2, 3, 5, 8};
const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 4, 5, 7,
                                         8, 9, 31, 32, 33, 100};

// --- Tier API ---------------------------------------------------------

TEST(SimdTierApiTest, NamesRoundTripAndParseIsStrict) {
  for (const simd::Tier tier : {simd::Tier::kScalar, simd::Tier::kSse2,
                                simd::Tier::kAvx2}) {
    simd::Tier parsed = simd::Tier::kAvx2;
    EXPECT_TRUE(simd::ParseTier(simd::TierName(tier), &parsed));
    EXPECT_EQ(parsed, tier);
  }
  simd::Tier out;
  EXPECT_FALSE(simd::ParseTier("", &out));
  EXPECT_FALSE(simd::ParseTier("AVX2", &out));   // strict: no case folding
  EXPECT_FALSE(simd::ParseTier("sse", &out));
  EXPECT_FALSE(simd::ParseTier("scalar ", &out));
  EXPECT_FALSE(simd::ParseTier("auto", &out));   // CLI keyword, not a tier
}

TEST(SimdTierApiTest, LanesPerTier) {
  EXPECT_EQ(simd::TierLanes(simd::Tier::kScalar), 1);
  EXPECT_EQ(simd::TierLanes(simd::Tier::kSse2), 2);
  EXPECT_EQ(simd::TierLanes(simd::Tier::kAvx2), 4);
}

TEST(SimdTierApiTest, ForceTierHonorsCpuCapability) {
  const TierGuard guard;
  EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
  for (const simd::Tier tier : SupportedTiers()) {
    EXPECT_TRUE(simd::ForceTier(tier)) << simd::TierName(tier);
    EXPECT_EQ(simd::ActiveTier(), tier);
  }
  // Tiers above the detected one must be refused without side effects.
  const simd::Tier before = simd::ActiveTier();
  for (const simd::Tier tier : {simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (static_cast<int>(tier) > static_cast<int>(simd::DetectedTier())) {
      EXPECT_FALSE(simd::ForceTier(tier)) << simd::TierName(tier);
      EXPECT_EQ(simd::ActiveTier(), before);
    }
  }
  simd::ResetForcedTier();
  EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
}

// --- BatchedSquaredEuclidean -----------------------------------------

TEST(SimdKernelTest, BatchedMatchesScalarReferenceBitForBit) {
  const TierGuard guard;
  Rng rng(11);
  for (const int dim : kDims) {
    for (const std::size_t n : kSizes) {
      std::vector<double> query(static_cast<std::size_t>(dim));
      for (double& v : query) v = rng.Uniform(-5.0, 5.0);
      const std::vector<double> rows = MakeRows(&rng, n, dim, query);

      // The reference is the scalar helper itself, row by row.
      std::vector<double> expected(n);
      for (std::size_t i = 0; i < n; ++i) {
        expected[i] = SquaredEuclideanDistance(
            query, {rows.data() + i * static_cast<std::size_t>(dim),
                    static_cast<std::size_t>(dim)});
      }
      for (const simd::Tier tier : SupportedTiers()) {
        ASSERT_TRUE(simd::ForceTier(tier));
        std::vector<double> got(n);
        simd::BatchedSquaredEuclidean(query.data(), rows.data(), n, dim,
                                      got.data());
        ExpectBitsEqual(expected, got,
                        std::string("tier=") +
                            std::string(simd::TierName(tier)) +
                            " dim=" + std::to_string(dim) +
                            " n=" + std::to_string(n));
      }
    }
  }
}

TEST(SimdKernelTest, BatchedHandlesUnalignedRowStarts) {
  // All loads are unaligned-safe: shifting the whole row block by one
  // double (8 bytes, guaranteed off any 16/32-byte vector boundary)
  // must not change a bit.
  const TierGuard guard;
  Rng rng(12);
  const int dim = 2;
  const std::size_t n = 33;
  std::vector<double> query = {0.25, -1.5};
  std::vector<double> storage((n + 1) * static_cast<std::size_t>(dim) + 1);
  for (double& v : storage) v = rng.Uniform(-3.0, 3.0);
  for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                   std::size_t{3}}) {
    const double* rows = storage.data() + offset;
    std::vector<double> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = SquaredEuclideanDistance(
          query, {rows + i * static_cast<std::size_t>(dim),
                  static_cast<std::size_t>(dim)});
    }
    for (const simd::Tier tier : SupportedTiers()) {
      ASSERT_TRUE(simd::ForceTier(tier));
      std::vector<double> got(n);
      simd::BatchedSquaredEuclidean(query.data(), rows, n, dim, got.data());
      ExpectBitsEqual(expected, got,
                      std::string("tier=") +
                          std::string(simd::TierName(tier)) +
                          " offset=" + std::to_string(offset));
    }
  }
}

// --- Fused filters ----------------------------------------------------

TEST(SimdKernelTest, FilterRowsMatchesScalarLoopAndAppends) {
  const TierGuard guard;
  Rng rng(13);
  for (const int dim : kDims) {
    for (const std::size_t n : kSizes) {
      std::vector<double> query(static_cast<std::size_t>(dim));
      for (double& v : query) v = rng.Uniform(-5.0, 5.0);
      const std::vector<double> rows = MakeRows(&rng, n, dim, query);
      const double eps_sq = rng.Uniform(0.5, 40.0);
      const PointId first_id = 1000;

      std::vector<PointId> expected = {-7};  // pre-seeded: append-only
      for (std::size_t i = 0; i < n; ++i) {
        if (SquaredEuclideanDistance(
                query, {rows.data() + i * static_cast<std::size_t>(dim),
                        static_cast<std::size_t>(dim)}) <= eps_sq) {
          expected.push_back(first_id + static_cast<PointId>(i));
        }
      }
      for (const simd::Tier tier : SupportedTiers()) {
        ASSERT_TRUE(simd::ForceTier(tier));
        std::vector<PointId> got = {-7};
        simd::KernelStats stats;
        simd::FilterRowsSquaredEuclidean(query.data(), rows.data(), n, dim,
                                         eps_sq, first_id, &got, &stats);
        EXPECT_EQ(got, expected)
            << "tier=" << simd::TierName(tier) << " dim=" << dim
            << " n=" << n;
        // ⌊n/W⌋ vector blocks + one block per scalar-tail candidate.
        const std::size_t lanes =
            static_cast<std::size_t>(simd::TierLanes(tier));
        EXPECT_EQ(stats.blocks_scored, n / lanes + n % lanes)
            << "tier=" << simd::TierName(tier) << " n=" << n;
        EXPECT_EQ(stats.candidates_filtered, n - (expected.size() - 1))
            << "tier=" << simd::TierName(tier) << " n=" << n;
        EXPECT_LE(stats.candidates_filtered,
                  stats.blocks_scored * lanes);
      }
    }
  }
}

TEST(SimdKernelTest, FilterIdsMatchesScalarLoopInGivenOrder) {
  const TierGuard guard;
  Rng rng(14);
  for (const int dim : kDims) {
    for (const std::size_t n : kSizes) {
      // A gathered id list over a larger base array: shuffled order with
      // duplicates, exactly what grid cells / tree leaves hand over.
      const std::size_t base_points = std::max<std::size_t>(n * 2, 8);
      std::vector<double> query(static_cast<std::size_t>(dim));
      for (double& v : query) v = rng.Uniform(-5.0, 5.0);
      const std::vector<double> base =
          MakeRows(&rng, base_points, dim, query);
      std::vector<PointId> ids(n);
      for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<PointId>(
            rng.UniformInt(0, static_cast<std::int64_t>(base_points) - 1));
      }
      const double eps_sq = rng.Uniform(0.5, 40.0);

      std::vector<PointId> expected;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t row = static_cast<std::size_t>(ids[i]) *
                                static_cast<std::size_t>(dim);
        if (SquaredEuclideanDistance(
                query, {base.data() + row, static_cast<std::size_t>(dim)}) <=
            eps_sq) {
          expected.push_back(ids[i]);
        }
      }
      for (const simd::Tier tier : SupportedTiers()) {
        ASSERT_TRUE(simd::ForceTier(tier));
        std::vector<PointId> got;
        simd::KernelStats stats;
        simd::FilterIdsSquaredEuclidean(query.data(), base.data(), dim,
                                        eps_sq, ids.data(), n, &got, &stats);
        EXPECT_EQ(got, expected)
            << "tier=" << simd::TierName(tier) << " dim=" << dim
            << " n=" << n;
        const std::size_t lanes =
            static_cast<std::size_t>(simd::TierLanes(tier));
        EXPECT_EQ(stats.blocks_scored, n / lanes + n % lanes);
        EXPECT_EQ(stats.candidates_filtered, n - expected.size());
      }
    }
  }
}

TEST(SimdKernelTest, ExactEpsBoundaryIsInclusiveOnEveryTier) {
  // d² == eps² exactly (integer coordinates): the fused compare must be
  // <= on every tier, in every lane position of a block.
  const TierGuard guard;
  const int dim = 2;
  const std::size_t n = 9;  // covers every AVX2 lane + a tail
  const std::vector<double> query = {0.0, 0.0};
  std::vector<double> rows;
  for (std::size_t i = 0; i < n; ++i) {  // all at squared distance 25
    rows.push_back(3.0);
    rows.push_back(4.0);
  }
  for (const simd::Tier tier : SupportedTiers()) {
    ASSERT_TRUE(simd::ForceTier(tier));
    std::vector<PointId> got;
    simd::KernelStats stats;
    simd::FilterRowsSquaredEuclidean(query.data(), rows.data(), n, dim,
                                     /*eps_sq=*/25.0, /*first_id=*/0, &got,
                                     &stats);
    EXPECT_EQ(got.size(), n) << simd::TierName(tier);
    EXPECT_EQ(stats.candidates_filtered, 0u) << simd::TierName(tier);
    // Nudge below the boundary: everything must now be rejected.
    got.clear();
    simd::KernelStats stats2;
    simd::FilterRowsSquaredEuclidean(
        query.data(), rows.data(), n, dim,
        std::nextafter(25.0, 0.0), 0, &got, &stats2);
    EXPECT_TRUE(got.empty()) << simd::TierName(tier);
    EXPECT_EQ(stats2.candidates_filtered, n) << simd::TierName(tier);
  }
}

// --- BatchRangeQuery --------------------------------------------------

TEST(SimdBatchRangeQueryTest, SegmentsEqualPerQueryRangeQuery) {
  const TierGuard guard;
  const SyntheticDataset ds = MakeTestDatasetC();
  std::vector<PointId> queries;
  for (PointId id = 0; id < static_cast<PointId>(ds.data.size());
       id += 3) {
    queries.push_back(id);
  }
  for (const IndexType index_type :
       {IndexType::kLinearScan, IndexType::kGrid, IndexType::kKdTree,
        IndexType::kRStarTreeBulk}) {
    const std::unique_ptr<NeighborIndex> index = CreateIndex(
        index_type, ds.data, Euclidean(), ds.suggested_params.eps);
    for (const simd::Tier tier : SupportedTiers()) {
      ASSERT_TRUE(simd::ForceTier(tier));
      std::vector<PointId> ids;
      std::vector<std::size_t> counts;
      index->BatchRangeQuery(queries, ds.suggested_params.eps, &ids,
                             &counts);
      ASSERT_EQ(counts.size(), queries.size());
      std::size_t offset = 0;
      std::vector<PointId> single;
      for (std::size_t j = 0; j < queries.size(); ++j) {
        index->RangeQuery(queries[j], ds.suggested_params.eps, &single);
        ASSERT_LE(offset + counts[j], ids.size());
        EXPECT_EQ(std::vector<PointId>(
                      ids.begin() + static_cast<std::ptrdiff_t>(offset),
                      ids.begin() +
                          static_cast<std::ptrdiff_t>(offset + counts[j])),
                  single)
            << IndexTypeName(index_type) << " tier=" << simd::TierName(tier)
            << " query=" << queries[j];
        offset += counts[j];
      }
      EXPECT_EQ(offset, ids.size());
      // Empty batch: outputs must come back cleared, not stale.
      index->BatchRangeQuery({}, ds.suggested_params.eps, &ids, &counts);
      EXPECT_TRUE(ids.empty());
      EXPECT_TRUE(counts.empty());
    }
  }
}

// --- End-to-end DBSCAN bit-identity matrix ----------------------------

struct RecordingObserver : DbscanObserver {
  std::vector<std::pair<PointId, ClusterId>> events;
  void OnClusterStarted(ClusterId cluster) override {
    events.emplace_back(-1, -10 - cluster);
  }
  void OnCorePoint(PointId id, ClusterId cluster) override {
    events.emplace_back(id, cluster);
  }
};

TEST(SimdDbscanBitIdentityTest, EveryIndexMetricThreadCountAndTier) {
  const TierGuard guard;
  const SyntheticDataset ds = MakeTestDatasetC();
  struct NamedMetric {
    const char* name;
    const Metric* metric;
  };
  const std::vector<NamedMetric> metrics = {{"euclidean", &Euclidean()},
                                            {"manhattan", &Manhattan()}};
  for (const NamedMetric& nm : metrics) {
    for (const IndexType index_type :
         {IndexType::kLinearScan, IndexType::kGrid, IndexType::kKdTree,
          IndexType::kRStarTreeBulk}) {
      const std::unique_ptr<NeighborIndex> index = CreateIndex(
          index_type, ds.data, *nm.metric, ds.suggested_params.eps);
      // Reference: forced-scalar, sequential.
      ASSERT_TRUE(simd::ForceTier(simd::Tier::kScalar));
      DbscanParams params = ds.suggested_params;
      params.threads = 1;
      RecordingObserver ref_observer;
      const Clustering reference =
          RunDbscan(*index, params, &ref_observer);
      for (const simd::Tier tier : SupportedTiers()) {
        ASSERT_TRUE(simd::ForceTier(tier));
        for (const int threads : {1, 4}) {
          params.threads = threads;
          RecordingObserver observer;
          const Clustering run = RunDbscan(*index, params, &observer);
          const std::string what =
              std::string("metric=") + nm.name +
              " index=" + std::string(IndexTypeName(index_type)) +
              " tier=" + std::string(simd::TierName(tier)) +
              " threads=" + std::to_string(threads);
          EXPECT_EQ(run.labels, reference.labels) << what;
          EXPECT_EQ(run.is_core, reference.is_core) << what;
          EXPECT_EQ(run.num_clusters, reference.num_clusters) << what;
          EXPECT_EQ(observer.events, ref_observer.events) << what;
        }
      }
    }
  }
}

TEST(SimdDbscanBitIdentityTest, ReferenceScanMatchesBatchedOnEveryIndex) {
  // The per-point reference scan (the benchmarks' "scalar" baseline — the
  // pre-batching loop each index kept) must agree with the blocked kernel
  // path on labels, core flags and observer events, on every tier.
  const TierGuard guard;
  struct ReferenceScanGuard {
    ~ReferenceScanGuard() { simd::SetReferenceScan(false); }
  } reference_guard;
  const SyntheticDataset ds = MakeTestDatasetC();
  for (const IndexType index_type :
       {IndexType::kLinearScan, IndexType::kGrid, IndexType::kKdTree,
        IndexType::kRStarTreeBulk}) {
    const std::unique_ptr<NeighborIndex> index = CreateIndex(
        index_type, ds.data, Euclidean(), ds.suggested_params.eps);
    DbscanParams params = ds.suggested_params;
    params.threads = 1;
    simd::SetReferenceScan(true);
    RecordingObserver ref_observer;
    const Clustering reference = RunDbscan(*index, params, &ref_observer);
    simd::SetReferenceScan(false);
    for (const simd::Tier tier : SupportedTiers()) {
      ASSERT_TRUE(simd::ForceTier(tier));
      RecordingObserver observer;
      const Clustering run = RunDbscan(*index, params, &observer);
      const std::string what =
          std::string("index=") + std::string(IndexTypeName(index_type)) +
          " tier=" + std::string(simd::TierName(tier));
      EXPECT_EQ(run.labels, reference.labels) << what;
      EXPECT_EQ(run.is_core, reference.is_core) << what;
      EXPECT_EQ(observer.events, ref_observer.events) << what;
    }
  }
}

TEST(SimdDbscanBitIdentityTest, DbdcResultReportsActiveTier) {
  const TierGuard guard;
  const SyntheticDataset ds = MakeTestDatasetC();
  DbdcConfig config;
  config.num_sites = 2;
  config.local_dbscan = ds.suggested_params;
  for (const simd::Tier tier : SupportedTiers()) {
    ASSERT_TRUE(simd::ForceTier(tier));
    const DbdcResult run = RunDbdc(ds.data, Euclidean(), config);
    EXPECT_EQ(run.simd_tier, simd::TierName(tier));
  }
  // The full pipeline, too, is tier-independent bit for bit.
  ASSERT_TRUE(simd::ForceTier(simd::Tier::kScalar));
  const DbdcResult reference = RunDbdc(ds.data, Euclidean(), config);
  for (const simd::Tier tier : SupportedTiers()) {
    ASSERT_TRUE(simd::ForceTier(tier));
    const DbdcResult run = RunDbdc(ds.data, Euclidean(), config);
    EXPECT_EQ(run.labels, reference.labels) << simd::TierName(tier);
    EXPECT_EQ(run.num_global_clusters, reference.num_global_clusters);
    EXPECT_EQ(run.bytes_uplink, reference.bytes_uplink);
  }
}

}  // namespace
}  // namespace dbdc
