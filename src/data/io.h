#ifndef DBDC_DATA_IO_H_
#define DBDC_DATA_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace dbdc {

/// Writes `data` as CSV (one point per row, full precision). When
/// `labels` is non-null (same length as the dataset), a final integer
/// label column is appended. Returns false on IO failure.
bool WriteDatasetCsv(const std::string& path, const Dataset& data,
                     const std::vector<ClusterId>* labels = nullptr);

/// Result of ReadDatasetCsv.
struct CsvDataset {
  Dataset data = Dataset(1);
  /// Present when the file carried a label column.
  std::optional<std::vector<ClusterId>> labels;
};

/// Reads a CSV of doubles; dimensionality is inferred from the first row.
/// With has_label_column, the last column is parsed as integer labels.
/// Returns nullopt on IO failure or malformed rows.
std::optional<CsvDataset> ReadDatasetCsv(const std::string& path,
                                         bool has_label_column = false);

}  // namespace dbdc

#endif  // DBDC_DATA_IO_H_
