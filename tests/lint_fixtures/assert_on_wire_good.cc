// Clean variant: DBDC_ASSERT is always on, and the DBDC_DCHECK_IS_ON()
// gate macro (a different token) must not fire the rule.
#include "common/check.h"

namespace dbdc {

void GoodWireCheck(unsigned magic) {
  DBDC_ASSERT(magic == 0x4d4c4244u && "bad magic aborts in every build");
#if DBDC_DCHECK_IS_ON()
  DBDC_ASSERT(magic != 0u);
#endif
}

}  // namespace dbdc
