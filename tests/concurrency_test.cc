// Concurrency tests aimed at the TSan preset: DbdcPipeline's threaded
// site execution must be free of data races and must produce results
// identical to the sequential run (site pipelines are fully independent;
// only the join publishes their results).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/dbdc.h"
#include "core/model_codec.h"
#include "data/generators.h"

namespace dbdc {
namespace {

DbdcConfig ManySitesConfig(int num_sites, const DbscanParams& params) {
  DbdcConfig config;
  config.local_dbscan = params;
  config.num_sites = num_sites;
  config.index_type = IndexType::kGrid;
  return config;
}

TEST(DbdcConcurrencyTest, ParallelSitesMatchSequentialExactly) {
  const SyntheticDataset synth = MakeTestDatasetC(17);
  for (const int num_sites : {2, 8, 16}) {
    DbdcConfig config = ManySitesConfig(num_sites, synth.suggested_params);

    config.parallel_sites = false;
    const DbdcResult sequential = RunDbdc(synth.data, Euclidean(), config);

    config.parallel_sites = true;
    const DbdcResult parallel = RunDbdc(synth.data, Euclidean(), config);

    // Determinism under threading: same partition (same seed), same local
    // models, same global model, same labels — byte-for-byte equal
    // outcome, not merely equivalent.
    EXPECT_EQ(parallel.labels, sequential.labels)
        << "labels diverge at " << num_sites << " sites";
    EXPECT_EQ(parallel.num_global_clusters, sequential.num_global_clusters);
    EXPECT_EQ(parallel.num_representatives, sequential.num_representatives);
    EXPECT_EQ(parallel.bytes_uplink, sequential.bytes_uplink);
    EXPECT_EQ(parallel.bytes_downlink, sequential.bytes_downlink);
    EXPECT_EQ(parallel.site_sizes, sequential.site_sizes);
    EXPECT_EQ(EncodeGlobalModel(parallel.global_model),
              EncodeGlobalModel(sequential.global_model));
  }
}

TEST(DbdcConcurrencyTest, RepeatedParallelRunsAreStable) {
  // Many sites on few cores forces heavy thread interleaving; every run
  // must still reproduce the same clustering. Under TSan this doubles as
  // a race detector for the site pipelines and the shared SiteConfig.
  const SyntheticDataset synth = MakeTestDatasetC(23);
  DbdcConfig config = ManySitesConfig(24, synth.suggested_params);
  config.parallel_sites = true;
  const DbdcResult first = RunDbdc(synth.data, Euclidean(), config);
  for (int run = 0; run < 3; ++run) {
    const DbdcResult again = RunDbdc(synth.data, Euclidean(), config);
    ASSERT_EQ(again.labels, first.labels) << "non-deterministic run " << run;
    ASSERT_EQ(again.num_global_clusters, first.num_global_clusters);
  }
}

TEST(DbdcConcurrencyTest, ParallelKMeansModelMatchesSequential) {
  // The REP_kMeans path exercises more per-site state (k-means buffers,
  // centroid updates) than REP_Scor; run it threaded as well.
  const SyntheticDataset synth = MakeTestDatasetC(29);
  DbdcConfig config = ManySitesConfig(8, synth.suggested_params);
  config.model_type = LocalModelType::kKMeans;

  config.parallel_sites = false;
  const DbdcResult sequential = RunDbdc(synth.data, Euclidean(), config);
  config.parallel_sites = true;
  const DbdcResult parallel = RunDbdc(synth.data, Euclidean(), config);
  EXPECT_EQ(parallel.labels, sequential.labels);
  EXPECT_EQ(parallel.num_representatives, sequential.num_representatives);
}

}  // namespace
}  // namespace dbdc
