#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "eval/external_indices.h"
#include "eval/quality.h"
#include "index/m_tree.h"
#include "index/vp_tree.h"

namespace dbdc {
namespace {

using Labels = std::vector<ClusterId>;

TEST(ExternalIndicesTest, PerfectAgreementScoresOne) {
  const Labels a = {0, 0, 1, 1, 2, 2};
  const Labels b = {5, 5, 3, 3, 9, 9};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
  EXPECT_NEAR(NormalizedMutualInformation(a, b), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Purity(a, b), 1.0);
}

TEST(ExternalIndicesTest, KnownRandIndexValue) {
  // Classic example: a = {0,0,1,1}, b = {0,1,0,1}: all 6 pairs disagree
  // on "together" except none; agreements = pairs separate in both = 2.
  const Labels a = {0, 0, 1, 1};
  const Labels b = {0, 1, 0, 1};
  // Pairs: (0,1) a-together b-separate; (2,3) same; (0,2) a-sep b-tog;
  // (1,3) same; (0,3),(1,2) separate in both -> 2 agreements of 6.
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 2.0 / 6.0);
}

TEST(ExternalIndicesTest, AriNearZeroForRandomLabels) {
  Rng rng(1);
  Labels a(2000), b(2000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<ClusterId>(rng.UniformInt(0, 4));
    b[i] = static_cast<ClusterId>(rng.UniformInt(0, 4));
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 0.05);
  EXPECT_GT(RandIndex(a, b), 0.5);  // RI is inflated; ARI corrects that.
}

TEST(ExternalIndicesTest, NoisePointsActAsSingletons) {
  // Two clusterings identical except noise markers: still perfect.
  const Labels a = {0, 0, kNoise, 1, 1, kNoise};
  const Labels b = {2, 2, kNoise, 0, 0, kNoise};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
  // Noise vs clustered disagree.
  const Labels c = {0, 0, 0, 1, 1, 1};
  EXPECT_LT(AdjustedRandIndex(a, c), 1.0);
}

TEST(ExternalIndicesTest, PurityOfRefinementIsOne) {
  // Every cluster of `a` is contained in one cluster of `b`.
  const Labels a = {0, 0, 1, 1, 2, 2};
  const Labels b = {0, 0, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Purity(a, b), 1.0);
  EXPECT_LT(Purity(b, a), 1.0);
}

TEST(ExternalIndicesTest, NmiZeroForConstantVersusBalanced) {
  const Labels constant = {0, 0, 0, 0};
  const Labels split = {0, 0, 1, 1};
  EXPECT_NEAR(NormalizedMutualInformation(constant, split), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// External *spatial* indices: the M-tree and VP-tree are the two
// backends PR 7's SIMD batching sweep did not touch, so they answer
// BatchRangeQuery through the NeighborIndex default fallback. The audit
// this PR ships: the CSR output must match the per-query RangeQuery path
// bit-identically — same ids, same per-query order, zero-count rows for
// empty-result queries keeping the offsets aligned — because the DBSCAN
// sweeps resolve their seed queues through the batched entry point and
// any drift would change labels between the paths.

template <typename IndexT>
void ExpectBatchMatchesPerQuery(const IndexT& index, const Dataset& data,
                                double eps) {
  std::vector<PointId> queries;
  for (PointId q = 0; q < static_cast<PointId>(data.size()); q += 3) {
    queries.push_back(q);
  }
  std::vector<PointId> batch_ids, single;
  std::vector<std::size_t> batch_counts;
  index.BatchRangeQuery(queries, eps, &batch_ids, &batch_counts);
  ASSERT_EQ(batch_counts.size(), queries.size());
  std::size_t offset = 0;
  for (std::size_t j = 0; j < queries.size(); ++j) {
    index.RangeQuery(queries[j], eps, &single);
    ASSERT_EQ(batch_counts[j], single.size()) << "query " << j;
    for (std::size_t i = 0; i < single.size(); ++i) {
      ASSERT_EQ(batch_ids[offset + i], single[i])
          << "query " << j << " position " << i;
    }
    offset += batch_counts[j];
  }
  EXPECT_EQ(offset, batch_ids.size());
}

template <typename IndexT>
void RunBatchFallbackAudit() {
  Rng rng(77);
  Dataset data(2);
  std::vector<ClusterId> unused;
  AppendBlob({{5.0, 5.0}, 0.4, 120}, 0, &rng, &data, &unused);
  AppendBlob({{15.0, 5.0}, 0.4, 120}, 1, &rng, &data, &unused);
  // Isolated far-away points. These backends are static and index every
  // point, so an indexed-point query always contains at least itself — a
  // zero-count CSR row is impossible by construction; the minimal row is
  // the singleton these points produce at small eps, and that is what
  // must keep the offsets aligned.
  data.Add(Point{500.0, 500.0});
  data.Add(Point{-500.0, 500.0});
  const IndexT index(data, Euclidean());
  for (const double eps : {0.05, 0.8, 30.0}) {
    ExpectBatchMatchesPerQuery(index, data, eps);
  }
  // Empty-result behavior lives on the span path (a query point outside
  // the indexed region): the output must be cleared, never left stale.
  std::vector<PointId> out{1, 2, 3};
  index.RangeQuery(Point{1000.0, -1000.0}, 0.5, &out);
  EXPECT_TRUE(out.empty());
  // And an empty batch yields empty, cleared CSR outputs.
  std::vector<PointId> batch_ids{9};
  std::vector<std::size_t> batch_counts{9};
  index.BatchRangeQuery(std::vector<PointId>{}, 1.0, &batch_ids,
                        &batch_counts);
  EXPECT_TRUE(batch_ids.empty());
  EXPECT_TRUE(batch_counts.empty());
}

TEST(ExternalSpatialIndicesTest, MTreeBatchFallbackMatchesPerQuery) {
  RunBatchFallbackAudit<MTree>();
}

TEST(ExternalSpatialIndicesTest, VpTreeBatchFallbackMatchesPerQuery) {
  RunBatchFallbackAudit<VpTree>();
}

TEST(ExternalIndicesTest, OrdersClusteringsConsistentlyWithP2) {
  // P^II and ARI must agree on which of two distributed clusterings is
  // closer to the reference — the sanity check for the paper's criterion.
  const Labels central = {0, 0, 0, 0, 1, 1, 1, 1};
  const Labels good = {0, 0, 0, 0, 1, 1, 1, 2};   // One point split off.
  const Labels bad = {0, 0, 1, 1, 2, 2, 3, 3};    // Everything split.
  EXPECT_GT(QualityP2(good, central), QualityP2(bad, central));
  EXPECT_GT(AdjustedRandIndex(good, central),
            AdjustedRandIndex(bad, central));
}

}  // namespace
}  // namespace dbdc
