file(REMOVE_RECURSE
  "CMakeFiles/dbdc_baseline.dir/baseline/distributed_kmeans.cc.o"
  "CMakeFiles/dbdc_baseline.dir/baseline/distributed_kmeans.cc.o.d"
  "CMakeFiles/dbdc_baseline.dir/baseline/parallel_dbscan.cc.o"
  "CMakeFiles/dbdc_baseline.dir/baseline/parallel_dbscan.cc.o.d"
  "libdbdc_baseline.a"
  "libdbdc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
