#include "core/global_model.h"

#include <algorithm>
#include <memory>

#include "cluster/dbscan.h"

namespace dbdc {
namespace {

/// DBSCAN with a weighted core condition: an object is core iff the
/// weights of its eps-neighbors (itself included) sum to at least
/// `min_weight`. With all weights 1 and min_weight = MinPts this is
/// plain DBSCAN.
Clustering RunWeightedDbscan(const NeighborIndex& index, double eps,
                             const std::vector<std::uint32_t>& weights,
                             std::uint32_t min_weight) {
  const std::size_t n = index.data().size();
  DBDC_CHECK(weights.size() == n);
  Clustering result;
  result.labels.assign(n, kUnclassified);
  result.is_core.assign(n, 0);

  std::vector<PointId> neighbors;
  std::vector<PointId> seeds;
  auto neighborhood_weight = [&](const std::vector<PointId>& ids) {
    std::uint64_t total = 0;
    for (const PointId id : ids) total += weights[id];
    return total;
  };

  ClusterId next_cluster = 0;
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    if (result.labels[p] != kUnclassified) continue;
    index.RangeQuery(p, eps, &neighbors);
    if (neighborhood_weight(neighbors) < min_weight) {
      result.labels[p] = kNoise;
      continue;
    }
    const ClusterId cluster = next_cluster++;
    result.labels[p] = cluster;
    result.is_core[p] = 1;
    seeds.clear();
    for (const PointId q : neighbors) {
      if (q == p) continue;
      if (result.labels[q] == kUnclassified || result.labels[q] == kNoise) {
        result.labels[q] = cluster;
        seeds.push_back(q);
      }
    }
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      index.RangeQuery(seeds[i], eps, &neighbors);
      if (neighborhood_weight(neighbors) < min_weight) continue;
      result.is_core[seeds[i]] = 1;
      for (const PointId r : neighbors) {
        if (result.labels[r] == kUnclassified || result.labels[r] == kNoise) {
          result.labels[r] = cluster;
          seeds.push_back(r);
        }
      }
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace

double DefaultEpsGlobal(std::span<const LocalModel> locals) {
  double max_eps = 0.0;
  for (const LocalModel& model : locals) {
    for (const Representative& rep : model.representatives) {
      max_eps = std::max(max_eps, rep.eps_range);
    }
  }
  return max_eps;
}

GlobalModel BuildGlobalModel(std::span<const LocalModel> locals,
                             const Metric& metric,
                             const GlobalModelParams& params) {
  int dim = 0;
  for (const LocalModel& model : locals) {
    if (model.dim > 0) {
      DBDC_CHECK(dim == 0 || dim == model.dim);
      dim = model.dim;
    }
  }
  GlobalModel global;
  if (dim == 0) return global;  // No site produced any representative.
  global.rep_points = Dataset(dim);

  for (const LocalModel& model : locals) {
    for (const Representative& rep : model.representatives) {
      global.rep_points.Add(rep.center);
      global.rep_eps.push_back(rep.eps_range);
      global.rep_weight.push_back(rep.weight);
      global.rep_site.push_back(model.site_id);
      global.rep_local_cluster.push_back(rep.local_cluster);
    }
  }
  const std::size_t m = global.rep_points.size();
  if (m == 0) return global;

  double eps_global = params.eps_global;
  if (eps_global <= 0.0) eps_global = DefaultEpsGlobal(locals);
  DBDC_CHECK(eps_global > 0.0);
  global.eps_global_used = eps_global;

  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(params.index_type, global.rep_points, metric, eps_global,
                  params.approx);
  const Clustering merged =
      params.min_weight_global > 0
          ? RunWeightedDbscan(*index, eps_global, global.rep_weight,
                              params.min_weight_global)
          : RunDbscan(*index, DbscanParams{eps_global, params.min_pts_global,
                                           params.num_threads});

  // Unmerged (noise) representatives keep singleton global clusters.
  global.rep_global_cluster.assign(m, kNoise);
  ClusterId next = merged.num_clusters;
  for (std::size_t i = 0; i < m; ++i) {
    const ClusterId c = merged.labels[i];
    global.rep_global_cluster[i] = c >= 0 ? c : next++;
  }
  global.num_global_clusters = next;
  return global;
}

GlobalModel DbscanGlobalStrategy::Build(std::span<const LocalModel> locals,
                                        const Metric& metric,
                                        const GlobalModelParams& params) const {
  return BuildGlobalModel(locals, metric, params);
}

}  // namespace dbdc
