// Invariants of the DBDC message protocol: exactly one uplink per site,
// one broadcast per site, every payload decodable, and the server's
// global model accounts for every transmitted representative.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dbdc.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "baseline/parallel_dbscan.h"
#include "core/model_codec.h"
#include "data/generators.h"

namespace dbdc {
namespace {

class ProtocolInvariantsTest : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolInvariantsTest, MessageStructureAndAccounting) {
  const int sites = GetParam();
  const SyntheticDataset synth = MakeTestDatasetC(31);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = sites;
  SimulatedNetwork network;
  const DbdcResult result =
      RunDbdc(synth.data, Euclidean(), config, &network);

  // One uplink message per site, one broadcast per site.
  EXPECT_EQ(network.Inbox(kServerEndpoint).size(),
            static_cast<std::size_t>(sites));
  std::size_t total_local_reps = 0;
  for (const NetworkMessage* msg : network.Inbox(kServerEndpoint)) {
    const auto model = DecodeLocalModel(msg->payload);
    ASSERT_TRUE(model.has_value());
    EXPECT_GE(model->site_id, 0);
    EXPECT_LT(model->site_id, sites);
    total_local_reps += model->representatives.size();
  }
  for (int s = 0; s < sites; ++s) {
    const auto inbox = network.Inbox(s);
    ASSERT_EQ(inbox.size(), 1u) << "site " << s;
    const auto global = DecodeGlobalModel(inbox[0]->payload);
    ASSERT_TRUE(global.has_value());
    // The broadcast model carries every transmitted representative.
    EXPECT_EQ(global->NumRepresentatives(), total_local_reps);
  }
  EXPECT_EQ(result.num_representatives, total_local_reps);
  EXPECT_EQ(result.global_model.NumRepresentatives(), total_local_reps);

  // Byte accounting matches the recorded messages exactly.
  EXPECT_EQ(result.bytes_uplink, network.BytesUplink());
  EXPECT_EQ(result.bytes_downlink, network.BytesDownlink());
  EXPECT_EQ(network.BytesTotal(),
            network.BytesUplink() + network.BytesDownlink());

  // Global cluster ids referenced by labels exist in the model.
  for (const ClusterId label : result.labels) {
    EXPECT_GE(label, kNoise);
    EXPECT_LT(label, result.num_global_clusters);
  }
}

INSTANTIATE_TEST_SUITE_P(SiteCounts, ProtocolInvariantsTest,
                         ::testing::Values(1, 3, 6));

TEST(ProtocolInvariantsTest, BackoffSaturatesAtHighAttemptCounts) {
  // Regression: the backoff used to be retry_backoff_sec * (1 << (k-1)),
  // which is undefined behavior (int overflow in the shift) from retry 32
  // on — and nothing bounds max_attempts below that. A transfer through a
  // total blackout must exhaust all 64 attempts with a finite, positive
  // elapsed time.
  SimulatedNetwork inner;
  FaultSpec spec;
  spec.drop_rate = 1.0;
  FaultyNetwork network(&inner, spec);

  ProtocolConfig config;
  config.enabled = true;
  config.max_attempts = 64;
  ReliableChannel channel(&network, config);
  const TransferOutcome out =
      channel.Transfer(0, kServerEndpoint, {1, 2, 3, 4});

  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.acked);
  EXPECT_EQ(out.attempts, 64);
  EXPECT_EQ(out.retries, 63);
  EXPECT_EQ(out.data_drops, 64);
  ASSERT_TRUE(std::isfinite(out.elapsed_seconds));
  EXPECT_GT(out.elapsed_seconds, 0.0);

  // More attempts may only add backoff time, never reduce or corrupt it.
  SimulatedNetwork inner32;
  FaultyNetwork network32(&inner32, spec);
  ProtocolConfig config32 = config;
  config32.max_attempts = 32;
  ReliableChannel channel32(&network32, config32);
  const TransferOutcome shorter =
      channel32.Transfer(0, kServerEndpoint, {1, 2, 3, 4});
  EXPECT_EQ(shorter.attempts, 32);
  EXPECT_LT(shorter.elapsed_seconds, out.elapsed_seconds);
}

TEST(ProtocolInvariantsTest, SingleWorkerParallelDbscanHasNoHalo) {
  // With one worker there is no boundary, hence no replication cost.
  const SyntheticDataset synth = MakeTestDatasetC(32);
  ParallelDbscanConfig config;
  config.dbscan = synth.suggested_params;
  config.num_workers = 1;
  const ParallelDbscanResult result =
      RunParallelDbscan(synth.data, Euclidean(), config);
  EXPECT_EQ(result.total_halo_points, 0u);
  EXPECT_EQ(result.bytes_halo, 0u);
}

}  // namespace
}  // namespace dbdc
