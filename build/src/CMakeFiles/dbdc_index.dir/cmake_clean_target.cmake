file(REMOVE_RECURSE
  "libdbdc_index.a"
)
