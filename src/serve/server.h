#ifndef DBDC_SERVE_SERVER_H_
#define DBDC_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "distrib/socket_util.h"
#include "serve/job_manager.h"
#include "serve/wire.h"

namespace dbdc::serve {

/// Knobs of a DbdcServer instance.
struct ServerOptions {
  /// TCP port to listen on (127.0.0.1 only); 0 = kernel-assigned
  /// ephemeral, read back via port().
  std::uint16_t port = 0;
  /// Admission control + executor pool of the embedded JobManager.
  JobLimits limits;
  /// Wall-clock bound on any single blocking socket write and the poll
  /// granularity of the IO loop.
  double io_timeout_sec = 10.0;
  /// Frames declaring a larger payload poison the session (admission
  /// control against hostile or insane clients).
  std::size_t max_frame_bytes = 1u << 30;
  /// Concurrent client connections; extra connects are accepted and
  /// immediately closed.
  int max_sessions = 16;
  /// When nonzero the server stops itself after serving this many jobs
  /// to completion — the clean-exit knob of the CI serving smoke test.
  std::uint64_t max_jobs_served = 0;
  /// Honor the wire Shutdown message (drain and exit). Off by default:
  /// an unauthenticated loopback peer should not be able to stop a
  /// long-lived server unless the operator opted in (--allow-shutdown).
  bool allow_remote_shutdown = false;
  /// Where diagnostics go. Library code performs no console IO (lint:
  /// no-console-io); the dbdc_server binary installs a stderr printer
  /// here. Null = silent. Called only from the IO thread.
  std::function<void(const std::string&)> log;
};

/// The dbdc_server daemon core (DESIGN.md §12): one IO thread
/// multiplexing a TCP listener and up to max_sessions client sessions
/// with poll(2), in front of a JobManager whose executor pool runs the
/// admitted clustering jobs.
///
/// Session conversation (all messages are DBFP frames, reassembled by
/// FrameAssembler): the client sends one JobRequest; the server answers
/// JobAccepted or JobRejected (offending field named on the wire),
/// streams a JobStatus per completed pipeline stage, and finishes with
/// JobResult — then closes the session. A session whose stream breaks
/// framing, or that dies mid-job, is dropped without touching any other
/// session; its job still runs to completion (admitted means promised),
/// the result simply has no one to go to.
///
/// Start() returns once the listener is bound; Stop() (or
/// max_jobs_served, or a permitted remote Shutdown) drains and joins.
class DbdcServer {
 public:
  explicit DbdcServer(ServerOptions options);
  /// Implies Stop().
  ~DbdcServer();

  DbdcServer(const DbdcServer&) = delete;
  DbdcServer& operator=(const DbdcServer&) = delete;

  /// Binds the listener and launches the IO thread. False + *error on
  /// bind failure. Call at most once.
  bool Start(std::string* error);

  /// The bound port (valid after Start() succeeds).
  std::uint16_t port() const { return port_; }

  /// Blocks until the server stops on its own (max_jobs_served reached
  /// or remote shutdown honored). Returns immediately if never started.
  void Wait();

  /// Asks the IO loop to exit, drains the job manager, joins. Jobs
  /// already admitted still run to completion. Idempotent.
  void Stop();

  /// Jobs whose terminal message (result or failure) was sent so far.
  std::uint64_t jobs_served() const;

 private:
  struct Session;

  void IoLoop();
  /// Handles every complete frame buffered in the session. Returns false
  /// when the session must be dropped.
  bool HandleSessionFrames(Session* session);
  /// Pushes status/result updates of the session's job. Returns false
  /// when the session is finished (terminal message sent) or broken.
  bool PumpJob(Session* session);
  /// Sends one serve message as a DBFP frame. False on write failure.
  bool SendMsg(Session* session, const std::vector<std::uint8_t>& payload);
  void Log(const std::string& line);

  const ServerOptions options_;
  JobManager manager_;
  Fd listen_fd_;
  std::uint16_t port_ = 0;
  std::thread io_thread_;
  bool started_ = false;

  mutable Mutex mu_;
  bool stop_requested_ DBDC_GUARDED_BY(mu_) = false;
  std::uint64_t jobs_served_ DBDC_GUARDED_BY(mu_) = 0;

  /// IO-thread-only state (never touched by other threads).
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace dbdc::serve

#endif  // DBDC_SERVE_SERVER_H_
