
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dbdc.cc" "src/CMakeFiles/dbdc_core.dir/core/dbdc.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/dbdc.cc.o.d"
  "/root/repo/src/core/global_model.cc" "src/CMakeFiles/dbdc_core.dir/core/global_model.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/global_model.cc.o.d"
  "/root/repo/src/core/local_model.cc" "src/CMakeFiles/dbdc_core.dir/core/local_model.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/local_model.cc.o.d"
  "/root/repo/src/core/model_codec.cc" "src/CMakeFiles/dbdc_core.dir/core/model_codec.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/model_codec.cc.o.d"
  "/root/repo/src/core/optics_global.cc" "src/CMakeFiles/dbdc_core.dir/core/optics_global.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/optics_global.cc.o.d"
  "/root/repo/src/core/relabel.cc" "src/CMakeFiles/dbdc_core.dir/core/relabel.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/relabel.cc.o.d"
  "/root/repo/src/core/server.cc" "src/CMakeFiles/dbdc_core.dir/core/server.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/server.cc.o.d"
  "/root/repo/src/core/site.cc" "src/CMakeFiles/dbdc_core.dir/core/site.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/site.cc.o.d"
  "/root/repo/src/core/streaming_site.cc" "src/CMakeFiles/dbdc_core.dir/core/streaming_site.cc.o" "gcc" "src/CMakeFiles/dbdc_core.dir/core/streaming_site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbdc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_distrib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dbdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
