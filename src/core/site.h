#ifndef DBDC_CORE_SITE_H_
#define DBDC_CORE_SITE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/local_model.h"
#include "core/model_codec.h"
#include "core/relabel.h"
#include "index/index_factory.h"

namespace dbdc {

/// Configuration of a site's local pipeline.
struct SiteConfig {
  DbscanParams dbscan;
  LocalModelType model_type = LocalModelType::kScor;
  KMeansParams kmeans;
  IndexType index_type = IndexType::kGrid;
  /// When > 0, the local model is condensed with this radius before
  /// transmission (CondenseLocalModel; smaller uplink, coarser ranges).
  double condense_eps = 0.0;
  /// Intra-site worker threads for the local DBSCAN range-query phase and
  /// for relabeling (1 = sequential, 0 = hardware concurrency). Results
  /// are bit-identical for every value.
  int num_threads = 1;
  /// Optional explicit local-model strategy (must outlive the site). Null
  /// (default) selects the strategy matching (model_type, condense_eps) —
  /// bit-identical to the legacy BuildLocalModel + CondenseLocalModel
  /// path. Appended last so existing positional aggregate initializers
  /// keep compiling unchanged.
  const LocalModelStrategy* model_strategy = nullptr;
  /// Tuning for index_type == kApprox; ignored by the exact indices.
  /// (Also appended past the positional initializers.)
  ApproxIndexOptions approx;
};

/// A local client site (Sec. 3): owns its horizontal partition of the
/// data, clusters it independently, derives the local model, and — once
/// the server broadcasts the global model — relabels its objects.
///
/// Sites never talk to each other, only to the server, and all
/// communication happens through serialized bytes (see model_codec.h) so
/// the transmission cost is measured faithfully.
class Site {
 public:
  /// `data` is the site's own copy of its partition; `origin_ids[i]` maps
  /// local point i back to the id in the original (conceptual) full
  /// dataset, for evaluation only — the algorithm never uses it.
  Site(int site_id, const Metric& metric, Dataset data,
       std::vector<PointId> origin_ids);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;
  Site(Site&&) = default;

  /// Phase 1+2: local DBSCAN and local model determination. Records the
  /// wall-clock time of each phase. Equivalent to RunLocalClustering()
  /// followed by BuildModel() — the engine drives the two stages
  /// separately; this fused call remains for one-shot callers and tests.
  void RunLocalPipeline(const SiteConfig& config);

  /// Phase 1 only (engine stage LocalCluster): builds the neighbor index
  /// and runs the local DBSCAN. Records local_clustering_seconds().
  void RunLocalClustering(const SiteConfig& config);

  /// Phase 2 only (engine stage BuildLocalModel): derives the local model
  /// from the clustering — via config.model_strategy when set, else the
  /// (model_type, condense_eps) default. Requires RunLocalClustering()
  /// first. Records model_seconds().
  void BuildModel(const SiteConfig& config);

  /// The local model, serialized for transmission to the server.
  std::vector<std::uint8_t> EncodeLocalModelBytes() const;

  /// Phase 4: relabels all local objects against the received global
  /// model (deserialized from `bytes`). On anything but kOk the payload
  /// is ignored (no relabeling happens) and the status says why it was
  /// rejected.
  ///
  /// `shared_context` optionally supplies a RelabelContext built once for
  /// the broadcast (the driver builds it from the server's model, which is
  /// byte-identical to the decoded one) so every site skips rebuilding the
  /// same representative index; null = build a private context.
  DecodeStatus ApplyGlobalModelBytes(
      std::span<const std::uint8_t> bytes,
      const RelabelContext* shared_context = nullptr);

  /// Phase 4, non-serialized variant (tests).
  void ApplyGlobalModel(const GlobalModel& global,
                        const RelabelContext* shared_context = nullptr);

  int site_id() const { return site_id_; }
  const Dataset& data() const { return data_; }
  const std::vector<PointId>& origin_ids() const { return origin_ids_; }

  /// Valid after RunLocalPipeline().
  const LocalClustering& local_clustering() const { return local_; }
  const LocalModel& local_model() const { return model_; }
  double local_clustering_seconds() const { return cluster_seconds_; }
  double model_seconds() const { return model_seconds_; }

  /// Valid after ApplyGlobalModel*(): global label per local point.
  const std::vector<ClusterId>& global_labels() const {
    return global_labels_;
  }
  double relabel_seconds() const { return relabel_seconds_; }

 private:
  int site_id_;
  const Metric* metric_;
  Dataset data_;
  std::vector<PointId> origin_ids_;
  std::unique_ptr<NeighborIndex> index_;
  LocalClustering local_;
  LocalModel model_;
  /// Thread knob captured from the last RunLocalPipeline (relabeling has
  /// no SiteConfig of its own).
  int num_threads_ = 1;
  std::vector<ClusterId> global_labels_;
  double cluster_seconds_ = 0.0;
  double model_seconds_ = 0.0;
  double relabel_seconds_ = 0.0;
};

}  // namespace dbdc

#endif  // DBDC_CORE_SITE_H_
