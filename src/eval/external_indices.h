#ifndef DBDC_EVAL_EXTERNAL_INDICES_H_
#define DBDC_EVAL_EXTERNAL_INDICES_H_

#include <span>

#include "common/types.h"

namespace dbdc {

/// Standard external clustering-agreement indices, used as cross-checks
/// for the paper's P^I / P^II criteria (they are not part of the paper's
/// evaluation, but let us verify that P^II orders clusterings the same
/// way established measures do).
///
/// Noise handling: each noise point (label kNoise) is treated as a
/// singleton cluster of its own, the common convention when comparing
/// DBSCAN-style clusterings.

/// Rand index in [0, 1]: the fraction of point pairs on which the two
/// clusterings agree. Requires at least 2 points.
double RandIndex(std::span<const ClusterId> a, std::span<const ClusterId> b);

/// Adjusted Rand index in [-1, 1] (1 = identical, ~0 = random).
double AdjustedRandIndex(std::span<const ClusterId> a,
                         std::span<const ClusterId> b);

/// Normalized mutual information in [0, 1] (arithmetic-mean
/// normalization). Two identical clusterings score 1; a constant
/// labeling against anything scores 0.
double NormalizedMutualInformation(std::span<const ClusterId> a,
                                   std::span<const ClusterId> b);

/// Purity of clustering `a` against reference `b` in (0, 1]: each cluster
/// of `a` votes for its dominant reference cluster.
double Purity(std::span<const ClusterId> a, std::span<const ClusterId> b);

}  // namespace dbdc

#endif  // DBDC_EVAL_EXTERNAL_INDICES_H_
