file(REMOVE_RECURSE
  "CMakeFiles/dbdc_index.dir/index/grid_index.cc.o"
  "CMakeFiles/dbdc_index.dir/index/grid_index.cc.o.d"
  "CMakeFiles/dbdc_index.dir/index/index_factory.cc.o"
  "CMakeFiles/dbdc_index.dir/index/index_factory.cc.o.d"
  "CMakeFiles/dbdc_index.dir/index/kd_tree_index.cc.o"
  "CMakeFiles/dbdc_index.dir/index/kd_tree_index.cc.o.d"
  "CMakeFiles/dbdc_index.dir/index/linear_scan_index.cc.o"
  "CMakeFiles/dbdc_index.dir/index/linear_scan_index.cc.o.d"
  "CMakeFiles/dbdc_index.dir/index/m_tree.cc.o"
  "CMakeFiles/dbdc_index.dir/index/m_tree.cc.o.d"
  "CMakeFiles/dbdc_index.dir/index/rstar_tree.cc.o"
  "CMakeFiles/dbdc_index.dir/index/rstar_tree.cc.o.d"
  "CMakeFiles/dbdc_index.dir/index/vp_tree.cc.o"
  "CMakeFiles/dbdc_index.dir/index/vp_tree.cc.o.d"
  "libdbdc_index.a"
  "libdbdc_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
