#ifndef DBDC_SERVE_JOB_MANAGER_H_
#define DBDC_SERVE_JOB_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/wire.h"

namespace dbdc::serve {

/// Admission-control limits of a multi-tenant server. Anything over a
/// limit is rejected at submit time with the offending field named —
/// backpressure by refusal, never by unbounded queueing.
struct JobLimits {
  /// Executor threads = jobs clustering concurrently.
  int max_active = 2;
  /// Jobs admitted but waiting for an executor; submits beyond
  /// max_active + max_queued are rejected ("server.queue").
  int max_queued = 8;
  /// Largest dataset a job may ship ("data.points").
  std::size_t max_points = 2'000'000;
  /// Largest num_sites a job may request ("num_sites").
  int max_sites = 256;
  /// Per-job worker-thread ceiling: requested num_threads (and the
  /// intra-stage dbscan threads) are *clamped* to this, not rejected —
  /// legal because labels are bit-identical for every thread count, so
  /// clamping changes resource use, never results. 0 = no clamp.
  int max_threads_per_job = 4;
  /// Server-side aggregation override (dbdc_server --aggregator): >= 2
  /// forces every job onto a k-ary aggregation tree of this fanout,
  /// whatever topology the request asked for. Legal for the same reason
  /// as the thread clamp: lossless aggregation keeps labels bit-identical
  /// to the flat run, so forcing the tree changes root-link bytes, never
  /// results. 0 = honor the request's topology.
  int force_tree_fanout = 0;
};

/// Lifecycle of a job inside the manager.
enum class JobState {
  kQueued = 0,
  kRunning,
  kDone,
  /// Validation passed at admission but execution still failed (e.g.
  /// auto_params produced an estimate the config rejects).
  kFailed,
};

/// What Submit() decided.
struct AdmitDecision {
  bool accepted = false;
  std::uint64_t job_id = 0;
  /// Jobs ahead in the queue at admission.
  int queue_depth = 0;
  /// On rejection: offending field + reason (JobRejected wire fields).
  std::string field;
  std::string message;
};

/// Point-in-time progress of a job (session polling).
struct JobProgress {
  JobState state = JobState::kQueued;
  /// Pipeline stages completed (0..kNumStages).
  int stages_done = 0;
};

/// Terminal outcome of a job.
struct JobOutcome {
  JobState state = JobState::kDone;
  /// Engine result (valid iff state == kDone). Its metrics_snapshot is
  /// the job's *own* registry — concurrent jobs never mix counters.
  DbdcResult result;
  /// DBSCAN parameters actually used (differ from the request's when
  /// auto_params ran).
  DbscanParams params_used;
  /// Failure reason (state == kFailed): field + message, like a wire
  /// rejection.
  std::string field;
  std::string message;
};

/// The multi-tenant job engine of dbdc_server (DESIGN.md §12): a bounded
/// admission queue in front of a fixed pool of executor threads, one
/// isolated DbdcEngine run per job.
///
/// Isolation: every job runs under its own obs::ObsScope holding a
/// per-job MetricsRegistry and Tracer, so the snapshot embedded in its
/// DbdcResult covers exactly that job — the serving test runs jobs of
/// different sizes concurrently and asserts the kDatasetPoints gauge of
/// each snapshot. Engines, transports (each job gets a private lossless
/// SimulatedNetwork, which is also what makes a remote run byte-identical
/// to a local one), and thread pools are per-job by construction.
///
/// Degradation: a job whose config enables the protocol gets the full
/// retry/deadline treatment inside its own engine; a failing job flips
/// to kFailed with a field/message, never takes the server down.
///
/// Thread-safe; Submit/Poll/Wait may be called from any thread.
class JobManager {
 public:
  explicit JobManager(const JobLimits& limits);
  /// Implies Shutdown().
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validates the request (limits, metric name, DbdcConfig::Validate,
  /// options) and either enqueues it or rejects it with the offending
  /// field. Rejection is the backpressure mechanism: a full queue is
  /// "server.queue: ...".
  AdmitDecision Submit(JobRequest request);

  /// Progress of an admitted job. Aborts on an unknown id.
  JobProgress Poll(std::uint64_t job_id) const;

  /// Blocks until the job reaches a terminal state and returns the
  /// outcome. The outcome stays retrievable until the manager dies.
  const JobOutcome& Wait(std::uint64_t job_id);

  /// Stops accepting work, finishes the jobs already admitted (queued
  /// jobs still run — admitted means promised), and joins the executors.
  /// Idempotent.
  void Shutdown();

  /// Jobs that reached a terminal state (kDone or kFailed) so far.
  std::uint64_t jobs_finished() const;

  const JobLimits& limits() const { return limits_; }

 private:
  struct Job;

  void ExecutorLoop();
  /// Runs one job under its private observability scope.
  void RunJob(Job* job);

  const JobLimits limits_;
  mutable Mutex mu_;
  CondVar work_cv_;  // Signaled on enqueue and shutdown.
  CondVar done_cv_;  // Signaled on every terminal transition.
  bool shutdown_ DBDC_GUARDED_BY(mu_) = false;
  std::uint64_t next_job_id_ DBDC_GUARDED_BY(mu_) = 1;
  std::uint64_t finished_ DBDC_GUARDED_BY(mu_) = 0;
  std::deque<Job*> queue_ DBDC_GUARDED_BY(mu_);
  int active_ DBDC_GUARDED_BY(mu_) = 0;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_ DBDC_GUARDED_BY(mu_);
  std::vector<std::thread> executors_;
};

}  // namespace dbdc::serve

#endif  // DBDC_SERVE_JOB_MANAGER_H_
