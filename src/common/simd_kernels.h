#ifndef DBDC_COMMON_SIMD_KERNELS_H_
#define DBDC_COMMON_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace dbdc::simd {

/// The batched squared-L2 kernel tiers, ordered by capability. The active
/// tier is resolved once per process from CPUID (mirroring the one-time
/// IsEuclideanMetric dispatch) and can be forced down for attribution and
/// testing (`dbdc_cli --simd=...`, DBDC_SIMD=OFF).
///
/// Determinism contract (DESIGN.md §11): every tier vectorizes *across
/// candidates* — one SIMD lane per candidate point, accumulating over the
/// coordinate axes in ascending order, exactly like the scalar loop in
/// SquaredEuclideanDistance. Each pair's sum is therefore the bit-identical
/// sequence of IEEE additions in every tier (no horizontal reductions, no
/// FMA contraction), so labels, core flags and observer events cannot
/// depend on the tier, the block size, or where a tail lane falls.
enum class Tier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Stable lower-case tier name ("scalar", "sse2", "avx2").
std::string_view TierName(Tier tier);

/// Parses "scalar" / "sse2" / "avx2" (strict; anything else is rejected).
bool ParseTier(std::string_view name, Tier* out);

/// Highest tier this CPU supports, detected once via CPUID. Always
/// kScalar when the library was built with DBDC_SIMD=OFF or for a
/// non-x86 target.
Tier DetectedTier();

/// The tier the kernels will actually run: the forced tier when one is
/// set, otherwise DetectedTier().
Tier ActiveTier();

/// Candidates processed per SIMD block at `tier` (1 / 2 / 4).
int TierLanes(Tier tier);

/// Forces every subsequent kernel call onto `tier`. Returns false (and
/// changes nothing) when the CPU cannot run `tier`. Not intended to be
/// flipped concurrently with in-flight queries.
bool ForceTier(Tier tier);

/// Restores CPUID auto-dispatch.
void ResetForcedTier();

/// Reference-scan mode: every index's euclidean ε-query runs the
/// per-point loop the batched kernels replaced (one ReferenceSquaredL2
/// call per candidate, linear scan walks `present_` point by point)
/// instead of blocked kernel calls. This is the benchmarks' "scalar"
/// baseline — the pre-batching code path, kept verbatim so the measured
/// speedup is before-vs-after, not tier-vs-tier — and a cross-check that
/// the blocked scans emit identical labels. Not intended to be flipped
/// concurrently with in-flight queries.
void SetReferenceScan(bool enabled);
bool ReferenceScanEnabled();

/// The per-pair scalar loop every kernel tier is defined against:
/// coordinate deltas squared and accumulated in ascending-axis order,
/// no FMA. Inline so the reference scan pays exactly what the old
/// devirtualized fast paths paid — an inlined loop, not a call.
inline double ReferenceSquaredL2(const double* a, const double* b, int dim) {
  double sum = 0.0;
  for (int k = 0; k < dim; ++k) {
    const double d = a[k] - b[k];
    sum += d * d;
  }
  return sum;
}

/// Per-call kernel accounting, accumulated by the caller across one
/// ε-query and flushed to the obs registry in a single Add (the same
/// one-add-per-query pattern as the fast-path counters).
struct KernelStats {
  /// Blocks evaluated: ⌊candidates / W⌋ full W-lane vector blocks plus one
  /// block per scalar-tail candidate, W = TierLanes(active) — i.e.
  /// ⌊n/W⌋ + (n mod W) per call (exactly n on the scalar tier).
  std::uint64_t blocks_scored = 0;
  /// Candidates the fused eps² compare rejected.
  std::uint64_t candidates_filtered = 0;

  void MergeInto(KernelStats* total) const {
    total->blocks_scored += blocks_scored;
    total->candidates_filtered += candidates_filtered;
  }
};

/// Squared L2 distance from `query` to each of `n` contiguous row-major
/// `rows` of `dim` doubles; out[i] is bit-identical to
/// SquaredEuclideanDistance(query, rows + i*dim) in every tier.
void BatchedSquaredEuclidean(const double* query, const double* rows,
                             std::size_t n, int dim, double* out);

/// Fused compare-against-eps² over contiguous rows: appends first_id + i
/// to *out for every row i with squared distance <= eps_sq, in ascending
/// i (the order the scalar loop emits). Used where candidate rows are
/// physically consecutive (linear scan runs).
void FilterRowsSquaredEuclidean(const double* query, const double* rows,
                                std::size_t n, int dim, double eps_sq,
                                PointId first_id, std::vector<PointId>* out,
                                KernelStats* stats);

/// Fused compare-against-eps² over gathered candidates: appends ids[i] to
/// *out for every candidate with squared distance from `query` to row
/// base + ids[i]*dim <= eps_sq, preserving the ids[] order. Used by the
/// cell/leaf scans of the grid, k-d tree and R*-tree indices.
void FilterIdsSquaredEuclidean(const double* query, const double* base,
                               int dim, double eps_sq, const PointId* ids,
                               std::size_t n, std::vector<PointId>* out,
                               KernelStats* stats);

}  // namespace dbdc::simd

#endif  // DBDC_COMMON_SIMD_KERNELS_H_
