// Ablation (DESIGN.md): how the choice of spatial access method affects
// DBSCAN's runtime — the paper attributes DBSCAN's "between O(n log n)
// and O(n^2)" behavior to the index (it used an R*-tree). Compares all
// five implemented indices on the same workload: build time and the full
// DBSCAN run.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace dbdc {
namespace {

constexpr std::size_t kN = 20000;

struct AblationRow {
  std::string index;
  double build_s = 0.0;
  double dbscan_s = 0.0;
  int clusters = 0;
};

std::vector<AblationRow>& Rows() {
  static auto* rows = new std::vector<AblationRow>();
  return *rows;
}

const SyntheticDataset& Workload() {
  static const auto* synth = new SyntheticDataset(MakeScaledDataset(kN));
  return *synth;
}

void BM_DbscanWithIndex(benchmark::State& state) {
  const IndexType type = static_cast<IndexType>(state.range(0));
  const SyntheticDataset& synth = Workload();
  for (auto _ : state) {
    Timer build_timer;
    const auto index = CreateIndex(type, synth.data, Euclidean(),
                                   synth.suggested_params.eps);
    const double build_s = build_timer.Seconds();
    Timer run_timer;
    const Clustering result = RunDbscan(*index, synth.suggested_params);
    const double dbscan_s = run_timer.Seconds();
    benchmark::DoNotOptimize(result.num_clusters);
    Rows().push_back(AblationRow{std::string(IndexTypeName(type)), build_s,
                                 dbscan_s, result.num_clusters});
    state.counters["build_s"] = build_s;
    state.counters["dbscan_s"] = dbscan_s;
  }
}

void RegisterAll() {
  for (const IndexType type :
       {IndexType::kGrid, IndexType::kKdTree, IndexType::kRStarTree,
        IndexType::kRStarTreeBulk, IndexType::kMTree,
        IndexType::kLinearScan}) {
    benchmark::RegisterBenchmark(
        ("dbscan_" + std::string(IndexTypeName(type))).c_str(),
        BM_DbscanWithIndex)
        ->Arg(static_cast<int>(type))
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Ablation — spatial index choice for DBSCAN (scaled data set, "
      "n = 20000)");
  table.SetHeader({"index", "build [s]", "DBSCAN [s]", "total [s]",
                   "clusters"});
  for (const AblationRow& row : Rows()) {
    table.AddRow({row.index, bench::Fmt("%.4f", row.build_s),
                  bench::Fmt("%.4f", row.dbscan_s),
                  bench::Fmt("%.4f", row.build_s + row.dbscan_s),
                  bench::Fmt("%d", row.clusters)});
  }
  table.Print();
  std::printf("All indices must find the same clusters; the grid is the "
              "fastest on this low-dimensional workload, the R*-tree is "
              "the paper's choice, and the linear scan shows the "
              "unindexed O(n^2) baseline.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
