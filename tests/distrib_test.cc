#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "distrib/network.h"
#include "distrib/partitioner.h"
#include "test_util.h"

namespace dbdc {
namespace {

void ExpectIsPartition(const std::vector<std::vector<PointId>>& parts,
                       std::size_t n) {
  std::vector<int> seen(n, 0);
  for (const auto& part : parts) {
    for (const PointId id : part) {
      ASSERT_GE(id, 0);
      ASSERT_LT(static_cast<std::size_t>(id), n);
      ++seen[id];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i], 1) << "point " << i << " assigned " << seen[i]
                          << " times";
  }
}

class PartitionerContractTest
    : public ::testing::TestWithParam<const Partitioner*> {};

TEST_P(PartitionerContractTest, ProducesAnExactPartition) {
  Rng rng(1);
  const Dataset data = RandomDataset(503, 2, 0.0, 10.0, &rng);
  for (const int k : {1, 2, 7, 16}) {
    Rng part_rng(5);
    const auto parts = GetParam()->Partition(data, k, &part_rng);
    ASSERT_EQ(parts.size(), static_cast<std::size_t>(k));
    ExpectIsPartition(parts, data.size());
  }
}

const UniformRandomPartitioner kUniform;
const RoundRobinPartitioner kRoundRobin;
const SpatialSlabPartitioner kSlab;
const SizeSkewedPartitioner kSkewed;

INSTANTIATE_TEST_SUITE_P(AllPartitioners, PartitionerContractTest,
                         ::testing::Values(&kUniform, &kRoundRobin, &kSlab,
                                           &kSkewed),
                         [](const auto& info) {
                           return std::string(info.param->name());
                         });

TEST(UniformRandomPartitionerTest, BalancedAndSeedDeterministic) {
  Rng rng(2);
  const Dataset data = RandomDataset(1000, 2, 0.0, 10.0, &rng);
  Rng r1(42), r2(42), r3(43);
  const auto a = kUniform.Partition(data, 4, &r1);
  const auto b = kUniform.Partition(data, 4, &r2);
  const auto c = kUniform.Partition(data, 4, &r3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const auto& part : a) EXPECT_EQ(part.size(), 250u);
}

TEST(SpatialSlabPartitionerTest, SlabsAreSpatiallyDisjoint) {
  Rng rng(3);
  const Dataset data = RandomDataset(400, 2, 0.0, 10.0, &rng);
  Rng part_rng(1);
  const auto parts = kSlab.Partition(data, 4, &part_rng);
  // max x of slab i <= min x of slab i+1.
  for (int s = 0; s + 1 < 4; ++s) {
    double hi = -1e18, lo = 1e18;
    for (const PointId id : parts[s]) {
      hi = std::max(hi, data.point(id)[0]);
    }
    for (const PointId id : parts[s + 1]) {
      lo = std::min(lo, data.point(id)[0]);
    }
    EXPECT_LE(hi, lo);
  }
}

TEST(SizeSkewedPartitionerTest, SitesShrinkGeometrically) {
  Rng rng(4);
  const Dataset data = RandomDataset(2000, 2, 0.0, 10.0, &rng);
  Rng part_rng(9);
  const SizeSkewedPartitioner skew(0.5);
  const auto parts = skew.Partition(data, 4, &part_rng);
  EXPECT_GT(parts[0].size(), parts[1].size());
  EXPECT_GT(parts[1].size(), parts[2].size());
  EXPECT_GT(parts[2].size(), parts[3].size());
}

TEST(SimulatedNetworkTest, CountsUplinkAndDownlinkBytes) {
  SimulatedNetwork net;
  net.Send(0, kServerEndpoint, std::vector<std::uint8_t>(100));
  net.Send(1, kServerEndpoint, std::vector<std::uint8_t>(50));
  net.Send(kServerEndpoint, 0, std::vector<std::uint8_t>(30));
  net.Send(kServerEndpoint, 1, std::vector<std::uint8_t>(30));
  EXPECT_EQ(net.BytesUplink(), 150u);
  EXPECT_EQ(net.BytesDownlink(), 60u);
  EXPECT_EQ(net.BytesTotal(), 210u);
  EXPECT_EQ(net.messages().size(), 4u);
}

TEST(SimulatedNetworkTest, InboxFiltersByRecipientInOrder) {
  SimulatedNetwork net;
  net.Send(0, kServerEndpoint, {1});
  net.Send(kServerEndpoint, 1, {2});
  net.Send(1, kServerEndpoint, {3});
  const auto inbox = net.Inbox(kServerEndpoint);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0]->from, 0);
  EXPECT_EQ(inbox[1]->from, 1);
  EXPECT_EQ(net.Inbox(1).size(), 1u);
  EXPECT_TRUE(net.Inbox(7).empty());
}

TEST(SimulatedNetworkTest, TransferTimeModel) {
  SimulatedNetwork::LinkModel link;
  link.bandwidth_bytes_per_sec = 1000.0;
  link.latency_sec = 0.1;
  EXPECT_DOUBLE_EQ(SimulatedNetwork::EstimateTransferSeconds(500, link),
                   0.1 + 0.5);
}

}  // namespace
}  // namespace dbdc
