file(REMOVE_RECURSE
  "libdbdc_common.a"
)
