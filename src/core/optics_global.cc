#include "core/optics_global.h"

#include <memory>

namespace dbdc {

OpticsGlobalModelBuilder::OpticsGlobalModelBuilder(
    std::span<const LocalModel> locals, const Metric& metric,
    double max_eps_global, IndexType index_type,
    const ApproxIndexOptions& approx) {
  int dim = 0;
  for (const LocalModel& model : locals) {
    if (model.dim > 0) {
      DBDC_CHECK(dim == 0 || dim == model.dim);
      dim = model.dim;
    }
  }
  if (dim == 0) return;
  reps_.rep_points = Dataset(dim);
  for (const LocalModel& model : locals) {
    for (const Representative& rep : model.representatives) {
      reps_.rep_points.Add(rep.center);
      reps_.rep_eps.push_back(rep.eps_range);
      reps_.rep_weight.push_back(rep.weight);
      reps_.rep_site.push_back(model.site_id);
      reps_.rep_local_cluster.push_back(rep.local_cluster);
    }
  }
  if (reps_.rep_points.size() == 0) return;

  default_eps_global_ = DefaultEpsGlobal(locals);
  max_eps_global_ =
      max_eps_global > 0.0 ? max_eps_global : 4.0 * default_eps_global_;
  DBDC_CHECK(max_eps_global_ > 0.0);

  const std::unique_ptr<NeighborIndex> index = CreateIndex(
      index_type, reps_.rep_points, metric, max_eps_global_, approx);
  optics_ = RunOptics(*index, OpticsParams{max_eps_global_, 2});
}

GlobalModel OpticsGlobalModelBuilder::Extract(double eps_global) const {
  const std::size_t m = reps_.rep_eps.size();
  GlobalModel global = reps_;
  global.eps_global_used = eps_global;
  if (m == 0) return global;
  DBDC_CHECK(eps_global > 0.0 && eps_global <= max_eps_global_);

  const Clustering merged = ExtractDbscanClustering(optics_, eps_global);
  global.rep_global_cluster.assign(m, kNoise);
  ClusterId next = merged.num_clusters;
  for (std::size_t i = 0; i < m; ++i) {
    const ClusterId c = merged.labels[i];
    global.rep_global_cluster[i] = c >= 0 ? c : next++;
  }
  global.num_global_clusters = next;
  return global;
}

GlobalModel OpticsGlobalStrategy::Build(std::span<const LocalModel> locals,
                                        const Metric& metric,
                                        const GlobalModelParams& params) const {
  DBDC_CHECK(params.min_weight_global == 0 &&
             "optics_global does not support the weighted core condition");
  const OpticsGlobalModelBuilder builder(locals, metric, max_eps_global_,
                                         params.index_type, params.approx);
  const double eps_global = params.eps_global > 0.0
                                ? params.eps_global
                                : builder.default_eps_global();
  // Extract(0.0) is only reachable with zero representatives, where it
  // returns the empty model before validating eps.
  return builder.Extract(eps_global);
}

}  // namespace dbdc
