// Exercises the runtime contract layer (common/check.h): the DBDC_ASSERT
// based invariant validators for the R*-tree, the DBSCAN postconditions
// and the model codec — both the accepting direction (valid structures
// pass) and the aborting direction (corrupted structures die with a
// DBDC_ASSERT message).

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "cluster/dbscan.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/model_codec.h"
#include "index/linear_scan_index.h"
#include "index/rstar_tree.h"
#include "test_util.h"

namespace dbdc {
namespace {

// ---------------------------------------------------------------------------
// R*-tree structural validation.

TEST(RStarInvariantsTest, HoldThroughInsertAndEraseChurn) {
  Rng rng(7);
  const Dataset data = RandomDataset(600, 3, 0.0, 10.0, &rng);
  RStarTree tree(data, Euclidean());
  tree.CheckInvariants();
  // Erase a third, validate, reinsert, validate again.
  for (PointId id = 0; id < 600; id += 3) tree.Erase(id);
  tree.CheckInvariants();
  for (PointId id = 0; id < 600; id += 3) tree.Insert(id);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 600u);
}

TEST(RStarInvariantsTest, HoldAfterBulkLoad) {
  Rng rng(11);
  const Dataset data = RandomDataset(900, 2, 0.0, 50.0, &rng);
  // In Debug / DBDC_DCHECKS builds the constructor self-checks after the
  // bulk load; the explicit call covers Release builds too.
  RStarTree tree(data, Euclidean(), /*index_all=*/true,
                 RStarTree::Construction::kBulkLoadStr);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 900u);
}

// ---------------------------------------------------------------------------
// DBSCAN postcondition validation.

TEST(DbscanInvariantsTest, RealRunPassesValidation) {
  Rng rng(3);
  const Dataset data = RandomDataset(400, 2, 0.0, 20.0, &rng);
  const LinearScanIndex index(data, Euclidean());
  const DbscanParams params{1.5, 4};
  const Clustering clustering = RunDbscan(index, params);
  ValidateDbscanResult(index, params, clustering);  // Must not abort.
  EXPECT_GE(clustering.num_clusters, 1);
}

using DbscanInvariantsDeathTest = ::testing::Test;

TEST(DbscanInvariantsDeathTest, DetectsCorruptedCoreFlag) {
  Rng rng(3);
  const Dataset data = RandomDataset(200, 2, 0.0, 15.0, &rng);
  const LinearScanIndex index(data, Euclidean());
  const DbscanParams params{1.5, 4};
  Clustering clustering = RunDbscan(index, params);
  ASSERT_GT(clustering.CountCore(), 0u);
  for (std::size_t i = 0; i < clustering.is_core.size(); ++i) {
    if (clustering.is_core[i] != 0) {
      clustering.is_core[i] = 0;  // Forge: a core point loses its flag.
      break;
    }
  }
  EXPECT_DEATH(ValidateDbscanResult(index, params, clustering),
               "DBDC_ASSERT");
}

TEST(DbscanInvariantsDeathTest, DetectsClusterSpanningBeyondConnectivity) {
  Rng rng(5);
  const Dataset data = RandomDataset(300, 2, 0.0, 25.0, &rng);
  const LinearScanIndex index(data, Euclidean());
  const DbscanParams params{1.5, 4};
  Clustering clustering = RunDbscan(index, params);
  if (clustering.num_clusters < 2) {
    GTEST_SKIP() << "need two clusters to forge a cross-cluster merge";
  }
  // Forge: relabel every point of cluster 1 into cluster 0. The merged
  // "cluster" now spans two ε-connected components.
  for (auto& label : clustering.labels) {
    if (label == 1) label = 0;
  }
  for (auto& label : clustering.labels) {
    if (label == clustering.num_clusters - 1) label = 1;
  }
  clustering.num_clusters -= 1;
  EXPECT_DEATH(ValidateDbscanResult(index, params, clustering),
               "DBDC_ASSERT");
}

TEST(DbscanInvariantsDeathTest, DetectsUnlabeledCorePoint) {
  Rng rng(9);
  const Dataset data = RandomDataset(200, 2, 0.0, 15.0, &rng);
  const LinearScanIndex index(data, Euclidean());
  const DbscanParams params{1.5, 4};
  Clustering clustering = RunDbscan(index, params);
  bool forged = false;
  for (std::size_t i = 0; i < clustering.labels.size(); ++i) {
    if (clustering.is_core[i] != 0) {
      clustering.labels[i] = kNoise;  // Forge: core point marked noise.
      forged = true;
      break;
    }
  }
  ASSERT_TRUE(forged);
  EXPECT_DEATH(ValidateDbscanResult(index, params, clustering),
               "DBDC_ASSERT");
}

// ---------------------------------------------------------------------------
// Codec model validation.

LocalModel ValidLocalModel() {
  LocalModel model;
  model.site_id = 2;
  model.dim = 2;
  model.num_local_clusters = 1;
  model.representatives = {{{1.0, 2.0}, 0.5, 0, 3}, {{4.0, 5.0}, 1.5, 0, 8}};
  return model;
}

GlobalModel ValidGlobalModel() {
  GlobalModel model;
  model.rep_points = Dataset(2);
  model.rep_points.Add(Point{1.0, 2.0});
  model.rep_eps = {0.75};
  model.rep_weight = {4};
  model.rep_global_cluster = {0};
  model.rep_site = {0};
  model.rep_local_cluster = {0};
  model.num_global_clusters = 1;
  model.eps_global_used = 1.5;
  return model;
}

TEST(CodecInvariantsTest, ValidModelsPassAndRoundTripByteExactly) {
  const LocalModel local = ValidLocalModel();
  ValidateLocalModel(local);  // Must not abort.
  const std::vector<std::uint8_t> bytes = EncodeLocalModel(local);
  const auto decoded = DecodeLocalModel(bytes);
  ASSERT_TRUE(decoded.has_value());
  ValidateLocalModel(*decoded);
  EXPECT_EQ(EncodeLocalModel(*decoded), bytes);

  const GlobalModel global = ValidGlobalModel();
  ValidateGlobalModel(global);
  const std::vector<std::uint8_t> gbytes = EncodeGlobalModel(global);
  const auto gdecoded = DecodeGlobalModel(gbytes);
  ASSERT_TRUE(gdecoded.has_value());
  ValidateGlobalModel(*gdecoded);
  EXPECT_EQ(EncodeGlobalModel(*gdecoded), gbytes);
}

using CodecInvariantsDeathTest = ::testing::Test;

TEST(CodecInvariantsDeathTest, DetectsDimensionMismatch) {
  LocalModel model = ValidLocalModel();
  model.representatives[0].center.push_back(9.0);
  EXPECT_DEATH(ValidateLocalModel(model), "DBDC_ASSERT");
}

TEST(CodecInvariantsDeathTest, DetectsNonFiniteEpsRange) {
  LocalModel model = ValidLocalModel();
  model.representatives[1].eps_range =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(ValidateLocalModel(model), "DBDC_ASSERT");
}

TEST(CodecInvariantsDeathTest, DetectsZeroWeight) {
  LocalModel model = ValidLocalModel();
  model.representatives[0].weight = 0;
  EXPECT_DEATH(ValidateLocalModel(model), "DBDC_ASSERT");
}

TEST(CodecInvariantsDeathTest, DetectsGlobalParallelArrayMismatch) {
  GlobalModel model = ValidGlobalModel();
  model.rep_site.push_back(1);
  EXPECT_DEATH(ValidateGlobalModel(model), "DBDC_ASSERT");
}

TEST(CodecInvariantsDeathTest, DetectsGlobalClusterIdOutOfRange) {
  GlobalModel model = ValidGlobalModel();
  model.rep_global_cluster[0] = model.num_global_clusters;
  EXPECT_DEATH(ValidateGlobalModel(model), "DBDC_ASSERT");
}

TEST(CodecInvariantsDeathTest, EncoderRejectsInvalidModel) {
  LocalModel model = ValidLocalModel();
  model.representatives[0].local_cluster = -3;
  EXPECT_DEATH(EncodeLocalModel(model), "DBDC_ASSERT");
}

// ---------------------------------------------------------------------------
// DBDC_DCHECK semantics.

TEST(CheckMacroTest, DcheckCompiledInExactlyWhenAdvertised) {
  int evaluations = 0;
  DBDC_DCHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, DBDC_DCHECK_IS_ON() ? 1 : 0);
}

TEST(CheckMacroTest, AssertAbortsWithLocation) {
  EXPECT_DEATH(DBDC_ASSERT(1 + 1 == 3), "DBDC_ASSERT failed at .*:[0-9]+");
}

}  // namespace
}  // namespace dbdc
