#include <gtest/gtest.h>

#include <vector>

#include "data/generators.h"
#include "eval/diagnostics.h"
#include "eval/silhouette.h"
#include "test_util.h"

namespace dbdc {
namespace {

using Labels = std::vector<ClusterId>;

// ---------------------------------------------------------------------------
// Diagnostics.

TEST(DiagnosticsTest, PerfectMatchHasNoEvents) {
  const Labels labels = {0, 0, 0, 1, 1, 1, kNoise};
  const DiagnosticsReport report = DiagnoseClustering(labels, labels);
  EXPECT_TRUE(report.splits.empty());
  EXPECT_TRUE(report.merges.empty());
  EXPECT_EQ(report.noise_agreed, 1u);
  EXPECT_EQ(report.noise_absorbed, 0u);
  EXPECT_EQ(report.noise_lost, 0u);
  EXPECT_EQ(report.num_distributed_clusters, 2);
  ASSERT_EQ(report.best_match_per_distributed.size(), 2u);
  for (const ClusterOverlap& match : report.best_match_per_distributed) {
    EXPECT_DOUBLE_EQ(match.jaccard, 1.0);
  }
}

TEST(DiagnosticsTest, DetectsASplit) {
  const Labels central = {0, 0, 0, 0, 0, 0};
  const Labels distr = {0, 0, 0, 1, 1, 1};
  const DiagnosticsReport report = DiagnoseClustering(distr, central);
  ASSERT_EQ(report.splits.size(), 1u);
  EXPECT_EQ(report.splits[0].central, 0);
  EXPECT_EQ(report.splits[0].parts, (std::vector<ClusterId>{0, 1}));
  EXPECT_TRUE(report.merges.empty());
}

TEST(DiagnosticsTest, DetectsAMerge) {
  const Labels central = {0, 0, 0, 1, 1, 1};
  const Labels distr = {4, 4, 4, 4, 4, 4};
  const DiagnosticsReport report = DiagnoseClustering(distr, central);
  ASSERT_EQ(report.merges.size(), 1u);
  EXPECT_EQ(report.merges[0].distributed, 4);
  EXPECT_EQ(report.merges[0].parts, (std::vector<ClusterId>{0, 1}));
  EXPECT_TRUE(report.splits.empty());
}

TEST(DiagnosticsTest, CountsNoiseExchanges) {
  //                   absorbed     lost        agreed
  const Labels distr = {0,          kNoise,     kNoise, 0};
  const Labels central = {kNoise,   0,          kNoise, 0};
  const DiagnosticsReport report = DiagnoseClustering(distr, central);
  EXPECT_EQ(report.noise_absorbed, 1u);
  EXPECT_EQ(report.noise_lost, 1u);
  EXPECT_EQ(report.noise_agreed, 1u);
}

TEST(DiagnosticsTest, MinOverlapFractionFiltersIncidentalContact) {
  // Distributed cluster 1 touches central 0 with a single point out of
  // 100 — not a split at 5%, but a split at 0.
  Labels central(101, 0);
  Labels distr(101, 0);
  distr[100] = 1;
  EXPECT_TRUE(DiagnoseClustering(distr, central, 0.05).splits.empty());
  EXPECT_EQ(DiagnoseClustering(distr, central, 0.0).splits.size(), 1u);
}

TEST(DiagnosticsTest, FormatMentionsEvents) {
  const Labels central = {0, 0, 0, 0};
  const Labels distr = {0, 0, 1, 1};
  const std::string text =
      FormatDiagnostics(DiagnoseClustering(distr, central));
  EXPECT_NE(text.find("SPLIT"), std::string::npos);
  const std::string clean = FormatDiagnostics(
      DiagnoseClustering(central, central));
  EXPECT_NE(clean.find("one-to-one"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Silhouette.

TEST(SilhouetteTest, WellSeparatedBlobsScoreHigh) {
  Dataset data(2);
  Labels labels;
  Rng rng(1);
  AppendBlob({{0.0, 0.0}, 0.5, 100}, 0, &rng, &data, &labels);
  AppendBlob({{20.0, 0.0}, 0.5, 100}, 1, &rng, &data, &labels);
  EXPECT_GT(SilhouetteCoefficient(data, labels, Euclidean()), 0.9);
}

TEST(SilhouetteTest, WrongAssignmentScoresNegative) {
  Dataset data(2);
  Rng rng(2);
  Labels truth;
  AppendBlob({{0.0, 0.0}, 0.5, 50}, 0, &rng, &data, &truth);
  AppendBlob({{20.0, 0.0}, 0.5, 50}, 1, &rng, &data, &truth);
  // Swap half of each cluster's labels: many points now sit far from
  // their own cluster and close to the other.
  Labels scrambled = truth;
  for (int i = 0; i < 25; ++i) scrambled[i] = 1;
  for (int i = 50; i < 75; ++i) scrambled[i] = 0;
  EXPECT_LT(SilhouetteCoefficient(data, scrambled, Euclidean()),
            SilhouetteCoefficient(data, truth, Euclidean()));
  EXPECT_LT(SilhouetteCoefficient(data, scrambled, Euclidean()), 0.1);
}

TEST(SilhouetteTest, NoiseIsExcluded) {
  Dataset data(2);
  Rng rng(3);
  Labels labels;
  AppendBlob({{0.0, 0.0}, 0.5, 60}, 0, &rng, &data, &labels);
  AppendBlob({{20.0, 0.0}, 0.5, 60}, 1, &rng, &data, &labels);
  const double without_noise = SilhouetteCoefficient(data, labels,
                                                     Euclidean());
  AppendUniformNoise(40, -10.0, 30.0, &rng, &data, &labels);
  const double with_noise = SilhouetteCoefficient(data, labels, Euclidean());
  EXPECT_NEAR(without_noise, with_noise, 1e-9);
}

TEST(SilhouetteTest, FewerThanTwoClustersScoresZero) {
  Dataset data(2);
  Labels labels;
  Rng rng(4);
  AppendBlob({{0.0, 0.0}, 0.5, 50}, 0, &rng, &data, &labels);
  EXPECT_DOUBLE_EQ(SilhouetteCoefficient(data, labels, Euclidean()), 0.0);
  const Labels all_noise(50, kNoise);
  EXPECT_DOUBLE_EQ(SilhouetteCoefficient(data, all_noise, Euclidean()), 0.0);
}

TEST(SilhouetteTest, SubsamplingApproximatesTheExactValue) {
  Dataset data(2);
  Labels labels;
  Rng rng(5);
  AppendBlob({{0.0, 0.0}, 1.0, 400}, 0, &rng, &data, &labels);
  AppendBlob({{10.0, 0.0}, 1.0, 400}, 1, &rng, &data, &labels);
  const double exact =
      SilhouetteCoefficient(data, labels, Euclidean(), /*max_samples=*/10000);
  const double sampled =
      SilhouetteCoefficient(data, labels, Euclidean(), /*max_samples=*/200);
  EXPECT_NEAR(exact, sampled, 0.05);
}

}  // namespace
}  // namespace dbdc
