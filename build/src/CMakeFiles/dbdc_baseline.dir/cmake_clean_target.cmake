file(REMOVE_RECURSE
  "libdbdc_baseline.a"
)
