file(REMOVE_RECURSE
  "CMakeFiles/retail_chain.dir/retail_chain.cpp.o"
  "CMakeFiles/retail_chain.dir/retail_chain.cpp.o.d"
  "retail_chain"
  "retail_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
